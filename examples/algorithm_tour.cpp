// Tour of the algorithm zoo on instances engineered to favor each family,
// including the paper's Lemma 2-4 worst-case constructions.
//
//   ./build/examples/algorithm_tour
#include <iostream>

#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/algorithms.h"
#include "core/bounds.h"
#include "core/lower_bounds.h"

namespace {

void Show(const char* title, const qp::core::Hypergraph& hypergraph,
          const qp::core::Valuations& valuations, double optimal) {
  using namespace qp;
  std::cout << "--- " << title << " ---\n";
  std::cout << hypergraph.StatsString() << ", OPT = " << optimal << "\n";
  TablePrinter table({"algorithm", "revenue", "fraction of OPT"});
  for (const auto& result : core::RunAllAlgorithms(hypergraph, valuations)) {
    table.AddRow({result.algorithm, StrFormat("%.3f", result.revenue),
                  StrFormat("%.3f", result.revenue / optimal)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace qp;

  // 1. Uniform-friendly: identical bundles and valuations.
  {
    core::Hypergraph h(4);
    core::Valuations v;
    for (int e = 0; e < 8; ++e) {
      h.AddEdge({static_cast<uint32_t>(e % 4)});
      v.push_back(5.0);
    }
    Show("identical valuations (UBP optimal)", h, v, 40.0);
  }

  // 2. Lemma 2: harmonic singleton buyers — uniform bundle pricing caps at
  // O(1) while item pricings extract H_m.
  {
    core::GapInstance lemma2 = core::MakeLemma2Instance(64);
    Show("Lemma 2 (uniform bundle pricing loses log m)", lemma2.hypergraph,
         lemma2.valuations, lemma2.optimal_revenue);
  }

  // 3. Lemma 3: partition classes — item pricing caps at O(n) of n log n.
  {
    core::GapInstance lemma3 = core::MakeLemma3Instance(32);
    Show("Lemma 3 (item pricing loses log n)", lemma3.hypergraph,
         lemma3.valuations, lemma3.optimal_revenue);
  }

  // 4. Lemma 4: the laminar family where *both* families lose log m.
  {
    core::GapInstance lemma4 = core::MakeLemma4Instance(4);
    Show("Lemma 4 (both families lose log m)", lemma4.hypergraph,
         lemma4.valuations, lemma4.optimal_revenue);
  }

  std::cout << "Takeaway (paper Section 7): no single succinct family wins "
               "everywhere;\nLPIP is the most consistent, UBP is unbeatable "
               "when valuations are flat,\nand the gaps of Lemmas 2-4 are "
               "real but logarithmic.\n";
  return 0;
}
