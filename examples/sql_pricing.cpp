// Demonstrates the query side of the framework: how SQL maps to conflict
// sets, why information-contained queries cost less (no information
// arbitrage), and why prices are subadditive under combination (no
// combination arbitrage). Mirrors Examples 2-4 of the paper.
//
//   ./build/examples/sql_pricing
#include <algorithm>
#include <iostream>

#include "common/rng.h"
#include "common/str_util.h"
#include "core/algorithms.h"
#include "db/eval.h"
#include "db/parser.h"
#include "market/conflict.h"
#include "market/hypergraph_builder.h"
#include "workloads/world.h"

int main() {
  using namespace qp;

  workload::WorldData world = workload::MakeWorldData(/*seed=*/11);
  db::Database& database = *world.database;
  Rng rng(3);
  auto support =
      market::GenerateSupport(database, {.size = 1500, .max_retries = 32}, rng);
  QP_CHECK_OK(support.status());

  // Example 2 of the paper: a count of one gender-like slice vs the full
  // group-by — the second *determines* the first, so its conflict set is a
  // superset and any monotone pricing charges at least as much.
  const char* narrow_sql =
      "select count(*) from Country where Continent = 'Asia'";
  const char* wide_sql =
      "select Continent, count(*) from Country group by Continent";

  auto narrow = db::ParseQuery(narrow_sql, database);
  auto wide = db::ParseQuery(wide_sql, database);
  QP_CHECK_OK(narrow.status());
  QP_CHECK_OK(wide.status());

  market::ConflictSetEngine engine(&database);
  auto narrow_set = engine.ConflictSet(*narrow, *support);
  auto wide_set = engine.ConflictSet(*wide, *support);
  std::cout << "conflict set sizes: narrow query " << narrow_set.size()
            << ", group-by query " << wide_set.size() << "\n";
  bool subset = std::includes(wide_set.begin(), wide_set.end(),
                              narrow_set.begin(), narrow_set.end());
  std::cout << "narrow subset-of wide (information containment): "
            << (subset ? "yes" : "no") << "\n\n";

  // Build a small market over a few queries and price it.
  std::vector<const char*> sqls = {
      narrow_sql,
      wide_sql,
      "select avg(Population) from Country",
      "select Name from Country where Population > 100000000",
      "select * from City where CountryCode = 'AAAB'",
  };
  std::vector<db::BoundQuery> queries;
  for (const char* sql : sqls) {
    auto q = db::ParseQuery(sql, database);
    QP_CHECK_OK(q.status());
    queries.push_back(*q);
  }
  market::BuildResult built =
      market::BuildHypergraph(database, queries, *support);

  core::Valuations valuations = {5, 9, 4, 7, 3};
  core::PricingResult lpip = core::RunLpip(built.hypergraph, valuations);
  std::cout << "LPIP prices (monotone + subadditive => arbitrage-free):\n";
  for (size_t i = 0; i < sqls.size(); ++i) {
    std::cout << "  " << StrFormat("%6.2f", lpip.pricing->Price(
                                                built.hypergraph.edge(i)))
              << "  " << sqls[i] << "\n";
  }

  // No information arbitrage: the narrow query costs no more than the
  // group-by that determines it.
  double p_narrow = lpip.pricing->Price(built.hypergraph.edge(0));
  double p_wide = lpip.pricing->Price(built.hypergraph.edge(1));
  std::cout << "\np(narrow) = " << p_narrow << " <= p(wide) = " << p_wide
            << "  (no information arbitrage)\n";

  // No combination arbitrage: a combined bundle costs at most the sum.
  std::vector<uint32_t> combined;
  std::set_union(built.hypergraph.edge(2).begin(),
                 built.hypergraph.edge(2).end(),
                 built.hypergraph.edge(3).begin(),
                 built.hypergraph.edge(3).end(),
                 std::back_inserter(combined));
  double p_union = lpip.pricing->Price(combined);
  double p2 = lpip.pricing->Price(built.hypergraph.edge(2));
  double p3 = lpip.pricing->Price(built.hypergraph.edge(3));
  std::cout << "p(Q3||Q4) = " << p_union << " <= p(Q3) + p(Q4) = " << p2 + p3
            << "  (no combination arbitrage)\n";
  return 0;
}
