// Quickstart: build a tiny pricing instance by hand, run every algorithm,
// and verify the resulting pricing functions are arbitrage-free.
//
//   ./build/examples/quickstart
#include <iostream>

#include "core/algorithms.h"
#include "core/bounds.h"
#include "market/arbitrage.h"

int main() {
  using namespace qp;

  // A data market with 6 support instances (items) and 5 buyer queries
  // whose conflict sets are the bundles below, with buyer valuations.
  core::Hypergraph market(6);
  core::Valuations valuations;
  market.AddEdge({0, 1});
  valuations.push_back(8.0);  // buyer 1 pays up to $8 for this answer
  market.AddEdge({1, 2, 3});
  valuations.push_back(6.0);
  market.AddEdge({3});
  valuations.push_back(3.0);
  market.AddEdge({4, 5});
  valuations.push_back(5.0);
  market.AddEdge({0, 1, 2, 3, 4, 5});
  valuations.push_back(12.0);

  std::cout << "Instance: " << market.StatsString() << "\n";
  std::cout << "Sum of valuations: " << core::SumOfValuations(valuations)
            << "  (upper bound on any revenue)\n";
  std::cout << "Subadditive LP bound: "
            << core::SubadditiveBound(market, valuations) << "\n\n";

  // Run all six pricing algorithms from the paper.
  for (const auto& result : core::RunAllAlgorithms(market, valuations)) {
    std::cout << result.algorithm << ": revenue " << result.revenue << "  ["
              << result.pricing->Describe() << "]\n";

    // Theorem 1: monotone + subadditive == arbitrage-free.
    auto report =
        market::CheckArbitrageFreeExhaustive(*result.pricing, market.num_items());
    if (!report.arbitrage_free()) {
      std::cout << "  ARBITRAGE VIOLATION: " << report.violation << "\n";
      return 1;
    }
  }
  std::cout << "\nAll pricings verified arbitrage-free (Theorem 1).\n";
  return 0;
}
