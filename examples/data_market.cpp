// End-to-end data market on the world dataset, served by the stateful
// pricing engine: generate the seller's database, stand up a
// serve::PricingEngine over a Qirana-style support set, let buyers arrive
// with SQL queries (posted-price purchases against the published book),
// then grow the market with a late buyer batch and reprice incrementally.
//
//   ./build/examples/data_market
#include <iostream>

#include "common/rng.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/bounds.h"
#include "db/parser.h"
#include "market/support.h"
#include "serve/pricing_engine.h"
#include "workloads/world.h"

int main() {
  using namespace qp;

  // The seller's database.
  workload::WorldData world = workload::MakeWorldData(/*seed=*/42);
  std::cout << "Seller dataset: " << world.database->TotalRows()
            << " rows across " << world.database->num_tables() << " tables\n";

  struct Buyer {
    const char* sql;
    double valuation;
  };
  std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 1.0},
      {"select max(Population) from Country", 8.0},
      {"select CountryCode, sum(Population) from City group by CountryCode",
       35.0},
      {"select Name, Language from Country, CountryLanguage where Code = "
       "CountryCode",
       40.0},
      {"select distinct GovernmentForm from Country", 6.0},
  };

  auto parse = [&](const char* sql) {
    auto q = db::ParseQuery(sql, *world.database);
    QP_CHECK_OK(q.status());
    return *q;
  };

  // Qirana-style support set: 2000 neighboring databases; the engine owns
  // the market end-to-end from here.
  Rng rng(7);
  auto support = market::GenerateSupport(
      *world.database, {.size = 2000, .max_retries = 32}, rng);
  QP_CHECK_OK(support.status());
  serve::PricingEngine engine(world.database.get(), *support, {});

  // Act 1: the initial buyer cohort arrives; the broker prices the market
  // and posts a price book.
  std::vector<db::BoundQuery> queries;
  core::Valuations valuations;
  for (const Buyer& buyer : buyers) {
    queries.push_back(parse(buyer.sql));
    valuations.push_back(buyer.valuation);
  }
  QP_CHECK_OK(engine.AppendBuyers(queries, valuations));
  auto book = engine.snapshot();
  std::cout << "Hypergraph: " << engine.hypergraph().StatsString()
            << "\nPrice book v" << book->version() << " serves "
            << book->best().algorithm << " (book revenue "
            << StrFormat("%.2f", book->best().revenue) << ")\n\n";

  // Act 2: the same buyers purchase at posted prices.
  TablePrinter table({"buyer query", "valuation", "price", "sold"});
  for (size_t i = 0; i < buyers.size(); ++i) {
    serve::PurchaseOutcome outcome =
        engine.Purchase(queries[i], buyers[i].valuation);
    std::string sql = buyers[i].sql;
    if (sql.size() > 48) sql = sql.substr(0, 45) + "...";
    table.AddRow({sql, StrFormat("%.2f", buyers[i].valuation),
                  StrFormat("%.2f", outcome.quote.price),
                  outcome.accepted ? "yes" : "no"});
  }
  table.Print(std::cout);
  serve::EngineStats stats = engine.stats();
  std::cout << "\nBroker revenue: " << StrFormat("%.2f", stats.sale_revenue)
            << " / " << StrFormat("%.2f", core::SumOfValuations(valuations))
            << " (sum of valuations), " << stats.purchases_accepted << "/"
            << stats.purchases << " sales\n\n";

  // Act 3: the market evolves — two bargain hunters arrive, and the
  // broker repricing incrementally reuses most of the solved book.
  std::vector<db::BoundQuery> late = {
      parse("select distinct Continent from Country"),
      parse("select Name from City where Population > 5000000"),
  };
  QP_CHECK_OK(engine.AppendBuyers(late, {2.0, 3.5}));
  book = engine.snapshot();
  stats = engine.stats();
  std::cout << "Two late buyers arrive -> price book v" << book->version()
            << " republished in "
            << StrFormat("%.1f ms", 1e3 * stats.last_reprice.seconds) << ": "
            << stats.last_reprice.lpip_reused << "/"
            << stats.last_reprice.lpip_candidates
            << " LPIP thresholds reused, " << stats.last_reprice.lps_solved
            << " LPs solved\n";
  for (size_t i = 0; i < late.size(); ++i) {
    serve::Quote quote = engine.QuoteBundle(
        engine.hypergraph().edge(static_cast<int>(queries.size() + i)));
    std::cout << "  late buyer " << i + 1 << " quoted "
              << StrFormat("%.2f", quote.price) << " (book v" << quote.version
              << ", " << quote.algorithm << ")\n";
  }
  return 0;
}
