// End-to-end data market on the world dataset, served by the SHARDED
// pricing stack: generate the seller's database, partition a Qirana-style
// support set into item-disjoint shards seeded with the expected buyer
// workload (market::SupportPartitioner), stand up a
// serve::ShardedPricingEngine — N PricingEngine shards behind a merging
// router, all sharing one const database — let buyers arrive with SQL
// queries (posted-price purchases against the merged book), then grow the
// market with a late buyer batch repriced shard-locally in parallel.
//
//   ./build/examples/data_market
#include <iostream>

#include "common/rng.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/bounds.h"
#include "db/parser.h"
#include "market/support.h"
#include "market/support_partitioner.h"
#include "serve/sharded_engine.h"
#include "workloads/world.h"

int main() {
  using namespace qp;

  // The seller's database.
  workload::WorldData world = workload::MakeWorldData(/*seed=*/42);
  std::cout << "Seller dataset: " << world.database->TotalRows()
            << " rows across " << world.database->num_tables() << " tables\n";

  struct Buyer {
    const char* sql;
    double valuation;
  };
  std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 1.0},
      {"select max(Population) from Country", 8.0},
      {"select CountryCode, sum(Population) from City group by CountryCode",
       35.0},
      {"select Name, Language from Country, CountryLanguage where Code = "
       "CountryCode",
       40.0},
      {"select distinct GovernmentForm from Country", 6.0},
  };

  auto parse = [&](const char* sql) {
    auto q = db::ParseQuery(sql, *world.database);
    QP_CHECK_OK(q.status());
    return *q;
  };

  std::vector<db::BoundQuery> queries;
  core::Valuations valuations;
  for (const Buyer& buyer : buyers) {
    queries.push_back(parse(buyer.sql));
    valuations.push_back(buyer.valuation);
  }
  std::vector<db::BoundQuery> late = {
      parse("select distinct Continent from Country"),
      parse("select Name from City where Population > 5000000"),
  };

  // Qirana-style support set: 2000 neighboring databases, partitioned
  // into item-disjoint shards. Seeding the partitioner with the expected
  // workload (initial + late queries) keeps every conflict set inside
  // one shard, so shard books compose into the global book exactly.
  Rng rng(7);
  auto support = market::GenerateSupport(
      *world.database, {.size = 2000, .max_retries = 32}, rng);
  QP_CHECK_OK(support.status());
  std::vector<db::BoundQuery> corpus = queries;
  corpus.insert(corpus.end(), late.begin(), late.end());
  market::SupportPartition partition = market::SupportPartitioner::FromQueries(
      world.database.get(), *support, corpus, {.num_threads = 2},
      {.num_shards = 3});
  std::cout << "Support: " << partition.num_items() << " deltas over "
            << partition.num_shards << " shards (";
  for (int s = 0; s < partition.num_shards; ++s) {
    std::cout << (s ? "/" : "") << partition.shard_items[s].size();
  }
  std::cout << " items)\n";

  // Partitioning already probed every corpus query's conflict set
  // (partition.seed_edges) — probing is the dominant cost, so the
  // appends below reuse those edges instead of re-probing.
  std::vector<std::vector<uint32_t>> initial_edges(
      partition.seed_edges.begin(),
      partition.seed_edges.begin() + static_cast<long>(queries.size()));
  std::vector<std::vector<uint32_t>> late_edges(
      partition.seed_edges.begin() + static_cast<long>(queries.size()),
      partition.seed_edges.end());

  serve::ShardedEngineOptions options;
  options.num_threads = 3;  // appends/solves fan across the shards
  serve::ShardedPricingEngine engine(world.database.get(), partition, options);

  // Act 1: the initial buyer cohort arrives; every shard prices its
  // sub-market in parallel and the router serves the merged book.
  QP_CHECK_OK(engine.AppendBuyersPrecomputed(initial_edges, valuations));
  serve::MergedBookView book = engine.snapshot();
  serve::ShardedEngineStats stats = engine.stats();
  std::cout << "Merged book v" << book.version() << " (merged revenue "
            << StrFormat("%.2f", book.best_revenue()) << "; per shard:";
  for (int s = 0; s < engine.num_shards(); ++s) {
    std::cout << " " << book.shard(s).best().algorithm << " "
              << StrFormat("%.2f", book.shard(s).best().revenue);
  }
  std::cout << ")\n\n";

  // Act 2: the same buyers purchase at posted prices (global conflict
  // probe through the router's prepared-query cache, additive quote
  // across owning shards, atomic sale accounting).
  TablePrinter table({"buyer query", "valuation", "price", "sold"});
  for (size_t i = 0; i < buyers.size(); ++i) {
    serve::PurchaseOutcome outcome =
        engine.Purchase(queries[i], buyers[i].valuation);
    std::string sql = buyers[i].sql;
    if (sql.size() > 48) sql = sql.substr(0, 45) + "...";
    table.AddRow({sql, StrFormat("%.2f", buyers[i].valuation),
                  StrFormat("%.2f", outcome.quote.price),
                  outcome.accepted ? "yes" : "no"});
  }
  table.Print(std::cout);
  stats = engine.stats();
  std::cout << "\nBroker revenue: "
            << StrFormat("%.2f", stats.merged.sale_revenue) << " / "
            << StrFormat("%.2f", core::SumOfValuations(valuations))
            << " (sum of valuations), " << stats.merged.purchases_accepted
            << "/" << stats.merged.purchases << " sales, "
            << stats.cross_shard_quotes << " cross-shard quotes\n";

  // A returning buyer re-prices the same SQL: the probe reuses the
  // router's prepared-query state instead of re-preparing.
  engine.Purchase(queries[0], buyers[0].valuation);
  stats = engine.stats();
  std::cout << "Returning buyer re-quoted; prepared-query cache: "
            << stats.merged.prepared.hits << " hit(s) / "
            << stats.merged.prepared.misses << " misses\n\n";

  // Act 3: the market evolves — two bargain hunters arrive (their
  // conflict sets were probed during partitioning too). Only the shards
  // owning them reprice (incrementally); the rest keep serving their
  // generation untouched.
  QP_CHECK_OK(engine.AppendBuyersPrecomputed(late_edges, {2.0, 3.5}));
  book = engine.snapshot();
  stats = engine.stats();
  std::cout << "Two late buyers arrive -> merged book v" << book.version()
            << " (" << stats.cross_shard_appends << " cross-shard appends; "
            << "last generations: "
            << stats.merged.last_reprice.lpip_reused << "/"
            << stats.merged.last_reprice.lpip_candidates
            << " LPIP thresholds reused, " << stats.merged.last_reprice.lps_solved
            << " LPs solved across shards)\n";
  for (size_t i = 0; i < late.size(); ++i) {
    serve::PurchaseOutcome outcome = engine.Purchase(late[i], 1e9);
    std::cout << "  late buyer " << i + 1 << " quoted "
              << StrFormat("%.2f", outcome.quote.price) << " (merged book v"
              << outcome.quote.version << ", " << outcome.quote.algorithm
              << ")\n";
  }
  return 0;
}
