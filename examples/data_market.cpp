// End-to-end data market on the world dataset: generate the seller's
// database, take buyer SQL queries, build the support set and conflict-set
// hypergraph (the Qirana pipeline), price the queries with LPIP, and quote
// each buyer a price.
//
//   ./build/examples/data_market
#include <iostream>

#include "common/rng.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/algorithms.h"
#include "core/bounds.h"
#include "core/valuation.h"
#include "market/hypergraph_builder.h"
#include "market/support.h"
#include "db/parser.h"
#include "workloads/world.h"

int main() {
  using namespace qp;

  // The seller's database.
  workload::WorldData world = workload::MakeWorldData(/*seed=*/42);
  std::cout << "Seller dataset: " << world.database->TotalRows()
            << " rows across " << world.database->num_tables() << " tables\n";

  // Buyers arrive with queries (and private valuations, which the broker
  // learned through market research).
  struct Buyer {
    const char* sql;
    double valuation;
  };
  std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 1.0},
      {"select max(Population) from Country", 8.0},
      {"select CountryCode, sum(Population) from City group by CountryCode",
       35.0},
      {"select Name, Language from Country, CountryLanguage where Code = "
       "CountryCode",
       40.0},
      {"select distinct GovernmentForm from Country", 6.0},
  };

  std::vector<db::BoundQuery> queries;
  core::Valuations valuations;
  for (const Buyer& buyer : buyers) {
    auto q = db::ParseQuery(buyer.sql, *world.database);
    QP_CHECK_OK(q.status());
    queries.push_back(*q);
    valuations.push_back(buyer.valuation);
  }

  // Qirana-style support set: 2000 neighboring databases.
  Rng rng(7);
  auto support = market::GenerateSupport(
      *world.database, {.size = 2000, .max_retries = 32}, rng);
  QP_CHECK_OK(support.status());

  market::BuildResult built =
      market::BuildHypergraph(*world.database, queries, *support);
  std::cout << "Hypergraph: " << built.hypergraph.StatsString() << " (built in "
            << StrFormat("%.2f", built.seconds) << "s)\n\n";

  // Price with LPIP (the paper's consistently best algorithm).
  core::PricingResult pricing =
      core::RunLpip(built.hypergraph, valuations, {.max_candidates = 32});

  TablePrinter table({"buyer query", "valuation", "price", "sold"});
  double revenue = 0.0;
  for (size_t i = 0; i < buyers.size(); ++i) {
    double price = pricing.pricing->Price(built.hypergraph.edge(i));
    bool sold = price <= valuations[i] + core::kSellTolerance;
    if (sold) revenue += price;
    std::string sql = buyers[i].sql;
    if (sql.size() > 48) sql = sql.substr(0, 45) + "...";
    table.AddRow({sql, StrFormat("%.2f", valuations[i]),
                  StrFormat("%.2f", price), sold ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::cout << "\nBroker revenue: " << StrFormat("%.2f", revenue) << " / "
            << StrFormat("%.2f", core::SumOfValuations(valuations))
            << " (sum of valuations)\n";
  return 0;
}
