// End-to-end integration: workload -> support -> conflict sets ->
// hypergraph -> valuations -> pricing algorithms -> revenue, with the
// incremental engine cross-checked against the naive oracle on real
// workload queries.
#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/bounds.h"
#include "core/valuation.h"
#include "market/arbitrage.h"
#include "market/hypergraph_builder.h"
#include "workloads/ssb.h"
#include "workloads/tpch.h"
#include "workloads/world_queries.h"

namespace qp {
namespace {

TEST(PipelineTest, SkewedWorkloadEndToEnd) {
  auto workload = workload::MakeSkewedWorkload();
  ASSERT_TRUE(workload.ok());
  Rng rng(1001);
  auto support = market::GenerateSupport(*workload->database,
                                         {.size = 400, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  // Subsample queries for test speed; keep the paper's shape diversity.
  std::vector<db::BoundQuery> queries;
  for (size_t i = 0; i < workload->queries.size(); i += 7) {
    queries.push_back(workload->queries[i]);
  }
  market::BuildResult built =
      market::BuildHypergraph(*workload->database, queries, *support);
  EXPECT_EQ(built.hypergraph.num_edges(), static_cast<int>(queries.size()));
  EXPECT_GT(built.hypergraph.MaxDegree(), 0u);

  core::Valuations v =
      core::SampleUniformValuations(built.hypergraph, 100, rng);
  auto results = core::RunAllAlgorithms(built.hypergraph, v);
  double sum = core::SumOfValuations(v);
  double best = 0;
  for (const auto& r : results) {
    EXPECT_GE(r.revenue, 0.0) << r.algorithm;
    EXPECT_LE(r.revenue, sum * (1 + 1e-9)) << r.algorithm;
    best = std::max(best, r.revenue);
  }
  // The paper's headline: succinct pricings extract a sizeable fraction of
  // the total valuation on the skewed workload.
  EXPECT_GT(best, 0.3 * sum);
}

TEST(PipelineTest, IncrementalMatchesNaiveOnRealWorkloads) {
  auto workload = workload::MakeSkewedWorkload();
  ASSERT_TRUE(workload.ok());
  Rng rng(1002);
  auto support = market::GenerateSupport(*workload->database,
                                         {.size = 150, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  market::ConflictSetEngine engine(workload->database.get());
  for (size_t i = 0; i < workload->queries.size(); i += 31) {
    auto fast = engine.ConflictSet(workload->queries[i], *support);
    auto slow = market::NaiveConflictSet(*workload->database,
                                         workload->queries[i], *support);
    ASSERT_EQ(fast, slow) << workload->sql[i];
  }
}

TEST(PipelineTest, TpchSmallEndToEnd) {
  auto workload = workload::MakeTpchWorkload({.scale_factor = 0.002, .seed = 3});
  ASSERT_TRUE(workload.ok());
  Rng rng(1003);
  auto support = market::GenerateSupport(*workload->database,
                                         {.size = 300, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  market::BuildResult built = market::BuildHypergraph(
      *workload->database, workload->queries, *support);
  // TPC-H produces some empty conflict sets (paper Table 3 discussion).
  int empty = 0;
  for (int e = 0; e < built.hypergraph.num_edges(); ++e) {
    empty += built.hypergraph.edge_size(e) == 0;
  }
  EXPECT_GT(built.hypergraph.num_edges(), 0);
  EXPECT_GE(empty, 0);
  core::Valuations v = core::SampleZipfValuations(built.hypergraph, 2.0, rng);
  core::PricingResult lpip = core::RunLpip(built.hypergraph, v,
                                           {.max_candidates = 8});
  EXPECT_GE(lpip.revenue, 0.0);
}

TEST(PipelineTest, ProducedPricingsAreArbitrageFreeOnWorkloadHypergraphs) {
  auto workload = workload::MakeSsbWorkload({.scale_factor = 0.002, .seed = 5});
  ASSERT_TRUE(workload.ok());
  Rng rng(1004);
  auto support = market::GenerateSupport(*workload->database,
                                         {.size = 120, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  std::vector<db::BoundQuery> queries;
  for (size_t i = 0; i < workload->queries.size(); i += 50) {
    queries.push_back(workload->queries[i]);
  }
  market::BuildResult built =
      market::BuildHypergraph(*workload->database, queries, *support);
  core::Valuations v =
      core::ScaleExponentialValuations(built.hypergraph, 1.0, rng);
  for (const auto& result : core::RunAllAlgorithms(built.hypergraph, v)) {
    // Sampled check (support too large for the exhaustive verifier).
    Rng check_rng(42);
    auto report = market::CheckArbitrageFree(
        *result.pricing, built.hypergraph.num_items(), check_rng, 500);
    EXPECT_TRUE(report.arbitrage_free())
        << result.algorithm << ": " << report.violation;
  }
}

}  // namespace
}  // namespace qp
