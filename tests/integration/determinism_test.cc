// End-to-end determinism: the whole pipeline (workload -> support ->
// hypergraph -> valuations -> all six algorithms) must be a pure function
// of the Rng seed. Revenues and every per-edge price are compared with
// operator== (bit-identical doubles), which is the invariant future
// parallelization work has to preserve.
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/valuation.h"
#include "market/hypergraph_builder.h"
#include "market/support.h"
#include "workloads/world_queries.h"

namespace qp {
namespace {

struct PipelineOutput {
  std::vector<std::string> algorithms;
  std::vector<double> revenues;
  // edge_prices[a][e] = price algorithm a charges for edge e's bundle.
  std::vector<std::vector<double>> edge_prices;
  int num_edges = 0;
};

PipelineOutput RunPipeline(uint64_t seed) {
  // Non-fatal EXPECTs plus early returns: fatal ASSERTs are unavailable in
  // a non-void helper, and dereferencing an error-state Result is UB.
  auto workload = workload::MakeSkewedWorkload();
  EXPECT_TRUE(workload.ok());
  if (!workload.ok()) return {};
  Rng rng(seed);
  auto support = market::GenerateSupport(*workload->database,
                                         {.size = 120, .max_retries = 32}, rng);
  EXPECT_TRUE(support.ok());
  if (!support.ok()) return {};
  // Subsample for speed, as in pipeline_test.cc.
  std::vector<db::BoundQuery> queries;
  for (size_t i = 0; i < workload->queries.size(); i += 13) {
    queries.push_back(workload->queries[i]);
  }
  market::BuildResult built =
      market::BuildHypergraph(*workload->database, queries, *support);
  core::Valuations v =
      core::SampleUniformValuations(built.hypergraph, 100, rng);

  PipelineOutput out;
  out.num_edges = built.hypergraph.num_edges();
  for (const auto& r : core::RunAllAlgorithms(built.hypergraph, v)) {
    out.algorithms.push_back(r.algorithm);
    out.revenues.push_back(r.revenue);
    std::vector<double> prices;
    prices.reserve(static_cast<size_t>(out.num_edges));
    for (int e = 0; e < built.hypergraph.num_edges(); ++e) {
      prices.push_back(r.pricing->Price(built.hypergraph.edge(e)));
    }
    out.edge_prices.push_back(std::move(prices));
  }
  return out;
}

TEST(DeterminismTest, IdenticalSeedsGiveBitIdenticalResults) {
  PipelineOutput a = RunPipeline(424242);
  PipelineOutput b = RunPipeline(424242);

  ASSERT_EQ(a.num_edges, b.num_edges);
  ASSERT_GT(a.num_edges, 0);
  ASSERT_EQ(a.algorithms, b.algorithms);
  ASSERT_EQ(a.revenues.size(), b.revenues.size());
  for (size_t i = 0; i < a.revenues.size(); ++i) {
    // Exact comparison on purpose: same seed must mean the same bits.
    EXPECT_EQ(a.revenues[i], b.revenues[i]) << a.algorithms[i];
    ASSERT_EQ(a.edge_prices[i].size(), b.edge_prices[i].size());
    for (size_t e = 0; e < a.edge_prices[i].size(); ++e) {
      EXPECT_EQ(a.edge_prices[i][e], b.edge_prices[i][e])
          << a.algorithms[i] << " edge " << e;
    }
  }
}

TEST(DeterminismTest, DifferentSeedsPerturbTheInstance) {
  // Sanity check that the pipeline actually consumes the seed (otherwise
  // the test above would pass vacuously).
  PipelineOutput a = RunPipeline(1);
  PipelineOutput b = RunPipeline(2);
  EXPECT_NE(a.revenues, b.revenues);
}

// The parallel candidate sweep must be schedule-independent: LPIP and CIP
// partition work into fixed chains whose contents and reduction order do
// not depend on the thread count, so every price must be bit-identical
// between a serial and a multi-threaded run.
TEST(DeterminismTest, ThreadCountDoesNotChangePrices) {
  auto workload = workload::MakeSkewedWorkload();
  ASSERT_TRUE(workload.ok());
  Rng rng(777);
  auto support = market::GenerateSupport(*workload->database,
                                         {.size = 150, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  std::vector<db::BoundQuery> queries;
  for (size_t i = 0; i < workload->queries.size(); i += 7) {
    queries.push_back(workload->queries[i]);
  }
  market::BuildResult built =
      market::BuildHypergraph(*workload->database, queries, *support);
  ASSERT_GT(built.hypergraph.num_edges(), 0);
  core::Valuations v =
      core::SampleUniformValuations(built.hypergraph, 100, rng);

  auto run = [&](int num_threads) {
    core::AlgorithmOptions options;
    options.lpip.num_threads = num_threads;
    options.cip.num_threads = num_threads;
    // Short chains so several run concurrently even on this small instance.
    options.lpip.chain_length = 2;
    options.cip.chain_length = 1;
    struct Out {
      std::vector<double> lpip_weights;
      std::vector<double> cip_weights;
      double lpip_revenue;
      double cip_revenue;
      int lpip_lps;
      int cip_lps;
    } out;
    core::SharedPrecompute shared = core::ComputeShared(built.hypergraph, v);
    core::AlgorithmOptions resolved = core::WithShared(options, shared);
    core::PricingResult lpip =
        core::RunLpip(built.hypergraph, v, resolved.lpip);
    core::PricingResult cip = core::RunCip(built.hypergraph, v, resolved.cip);
    out.lpip_weights =
        static_cast<const core::ItemPricing*>(lpip.pricing.get())->weights();
    out.cip_weights =
        static_cast<const core::ItemPricing*>(cip.pricing.get())->weights();
    out.lpip_revenue = lpip.revenue;
    out.cip_revenue = cip.revenue;
    out.lpip_lps = lpip.lps_solved;
    out.cip_lps = cip.lps_solved;
    return out;
  };

  auto serial = run(1);
  auto parallel = run(4);
  EXPECT_EQ(serial.lpip_lps, parallel.lpip_lps);
  EXPECT_EQ(serial.cip_lps, parallel.cip_lps);
  // Exact comparisons on purpose: the thread count must not change a bit.
  EXPECT_EQ(serial.lpip_revenue, parallel.lpip_revenue);
  EXPECT_EQ(serial.cip_revenue, parallel.cip_revenue);
  EXPECT_EQ(serial.lpip_weights, parallel.lpip_weights);
  EXPECT_EQ(serial.cip_weights, parallel.cip_weights);
}

}  // namespace
}  // namespace qp
