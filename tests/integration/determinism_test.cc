// End-to-end determinism: the whole pipeline (workload -> support ->
// hypergraph -> valuations -> all six algorithms) must be a pure function
// of the Rng seed. Revenues and every per-edge price are compared with
// operator== (bit-identical doubles), which is the invariant future
// parallelization work has to preserve.
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/valuation.h"
#include "market/hypergraph_builder.h"
#include "market/support.h"
#include "workloads/world_queries.h"

namespace qp {
namespace {

struct PipelineOutput {
  std::vector<std::string> algorithms;
  std::vector<double> revenues;
  // edge_prices[a][e] = price algorithm a charges for edge e's bundle.
  std::vector<std::vector<double>> edge_prices;
  int num_edges = 0;
};

PipelineOutput RunPipeline(uint64_t seed) {
  // Non-fatal EXPECTs plus early returns: fatal ASSERTs are unavailable in
  // a non-void helper, and dereferencing an error-state Result is UB.
  auto workload = workload::MakeSkewedWorkload();
  EXPECT_TRUE(workload.ok());
  if (!workload.ok()) return {};
  Rng rng(seed);
  auto support = market::GenerateSupport(*workload->database,
                                         {.size = 120, .max_retries = 32}, rng);
  EXPECT_TRUE(support.ok());
  if (!support.ok()) return {};
  // Subsample for speed, as in pipeline_test.cc.
  std::vector<db::BoundQuery> queries;
  for (size_t i = 0; i < workload->queries.size(); i += 13) {
    queries.push_back(workload->queries[i]);
  }
  market::BuildResult built =
      market::BuildHypergraph(*workload->database, queries, *support);
  core::Valuations v =
      core::SampleUniformValuations(built.hypergraph, 100, rng);

  PipelineOutput out;
  out.num_edges = built.hypergraph.num_edges();
  for (const auto& r : core::RunAllAlgorithms(built.hypergraph, v)) {
    out.algorithms.push_back(r.algorithm);
    out.revenues.push_back(r.revenue);
    std::vector<double> prices;
    prices.reserve(static_cast<size_t>(out.num_edges));
    for (int e = 0; e < built.hypergraph.num_edges(); ++e) {
      prices.push_back(r.pricing->Price(built.hypergraph.edge(e)));
    }
    out.edge_prices.push_back(std::move(prices));
  }
  return out;
}

TEST(DeterminismTest, IdenticalSeedsGiveBitIdenticalResults) {
  PipelineOutput a = RunPipeline(424242);
  PipelineOutput b = RunPipeline(424242);

  ASSERT_EQ(a.num_edges, b.num_edges);
  ASSERT_GT(a.num_edges, 0);
  ASSERT_EQ(a.algorithms, b.algorithms);
  ASSERT_EQ(a.revenues.size(), b.revenues.size());
  for (size_t i = 0; i < a.revenues.size(); ++i) {
    // Exact comparison on purpose: same seed must mean the same bits.
    EXPECT_EQ(a.revenues[i], b.revenues[i]) << a.algorithms[i];
    ASSERT_EQ(a.edge_prices[i].size(), b.edge_prices[i].size());
    for (size_t e = 0; e < a.edge_prices[i].size(); ++e) {
      EXPECT_EQ(a.edge_prices[i][e], b.edge_prices[i][e])
          << a.algorithms[i] << " edge " << e;
    }
  }
}

TEST(DeterminismTest, DifferentSeedsPerturbTheInstance) {
  // Sanity check that the pipeline actually consumes the seed (otherwise
  // the test above would pass vacuously).
  PipelineOutput a = RunPipeline(1);
  PipelineOutput b = RunPipeline(2);
  EXPECT_NE(a.revenues, b.revenues);
}

}  // namespace
}  // namespace qp
