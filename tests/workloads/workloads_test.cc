#include <set>

#include <gtest/gtest.h>

#include "db/eval.h"
#include "workloads/ssb.h"
#include "workloads/tpch.h"
#include "workloads/world.h"
#include "workloads/world_queries.h"

namespace qp::workload {
namespace {

TEST(WorldDataTest, PaperShapes) {
  WorldData world = MakeWorldData();
  ASSERT_NE(world.database, nullptr);
  const db::Table* country = world.database->FindTable("Country");
  const db::Table* city = world.database->FindTable("City");
  const db::Table* lang = world.database->FindTable("CountryLanguage");
  ASSERT_NE(country, nullptr);
  ASSERT_NE(city, nullptr);
  ASSERT_NE(lang, nullptr);
  // 5000 tuples over 21 attributes (paper Section 6.2).
  EXPECT_EQ(country->num_rows() + city->num_rows() + lang->num_rows(), 5000);
  EXPECT_EQ(country->schema().num_columns() + city->schema().num_columns() +
                lang->schema().num_columns(),
            21);
  EXPECT_EQ(country->num_rows(), 235);
  EXPECT_EQ(world.country_codes.size(), 235u);
  EXPECT_EQ(world.continents.size(), 7u);
  EXPECT_EQ(world.languages.size(), 120u);
}

TEST(WorldDataTest, CountryCodesUnique) {
  WorldData world = MakeWorldData();
  std::set<std::string> codes(world.country_codes.begin(),
                              world.country_codes.end());
  EXPECT_EQ(codes.size(), world.country_codes.size());
}

TEST(WorldDataTest, CityIdsAreSequential) {
  WorldData world = MakeWorldData();
  const db::Table* city = world.database->FindTable("City");
  for (int r = 0; r < city->num_rows(); ++r) {
    EXPECT_EQ(city->cell(r, 0).as_int(), r + 1);
  }
}

TEST(WorldDataTest, DeterministicForSeed) {
  WorldData a = MakeWorldData(3), b = MakeWorldData(3);
  const db::Table* ta = a.database->FindTable("Country");
  const db::Table* tb = b.database->FindTable("Country");
  for (int r = 0; r < ta->num_rows(); ++r) {
    for (int c = 0; c < ta->schema().num_columns(); ++c) {
      EXPECT_EQ(ta->cell(r, c).Compare(tb->cell(r, c)), 0);
    }
  }
}

TEST(SkewedWorkloadTest, Exactly986QueriesAllBind) {
  auto workload = MakeSkewedWorkload();
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->queries.size(), 986u);
  EXPECT_EQ(workload->sql.size(), 986u);
  EXPECT_EQ(workload->name, "skewed");
}

TEST(SkewedWorkloadTest, QueriesEvaluate) {
  auto workload = MakeSkewedWorkload();
  ASSERT_TRUE(workload.ok());
  // Spot-evaluate a sample (every 40th query) end to end.
  for (size_t i = 0; i < workload->queries.size(); i += 40) {
    db::ResultTable r =
        db::Evaluate(workload->queries[i], *workload->database);
    (void)r;
  }
  SUCCEED();
}

TEST(UniformWorkloadTest, Exactly1000SameSelectivity) {
  auto workload = MakeUniformWorkload();
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->queries.size(), 1000u);
  // Every query returns the same number of rows (identical selectivity).
  std::set<size_t> sizes;
  for (size_t i = 0; i < workload->queries.size(); i += 100) {
    sizes.insert(
        db::Evaluate(workload->queries[i], *workload->database).rows.size());
  }
  EXPECT_EQ(sizes.size(), 1u);
}

TEST(TpchWorkloadTest, Exactly220QueriesAllBind) {
  auto workload = MakeTpchWorkload({.scale_factor = 0.002, .seed = 7});
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->queries.size(), 220u);
}

TEST(TpchWorkloadTest, ParameterDomains) {
  EXPECT_EQ(TpchPartTypes().size(), 150u);
  EXPECT_EQ(TpchContainers().size(), 40u);
  EXPECT_EQ(TpchMaterials().size(), 5u);
}

TEST(TpchDataTest, TablesAndScaling) {
  auto small = MakeTpchData({.scale_factor = 0.002, .seed = 7});
  EXPECT_EQ(small->num_tables(), 8);
  const db::Table* lineitem = small->FindTable("lineitem");
  ASSERT_NE(lineitem, nullptr);
  auto bigger = MakeTpchData({.scale_factor = 0.004, .seed = 7});
  EXPECT_GT(bigger->FindTable("lineitem")->num_rows(), lineitem->num_rows());
}

TEST(TpchDataTest, QueriesEvaluate) {
  auto workload = MakeTpchWorkload({.scale_factor = 0.002, .seed = 7});
  ASSERT_TRUE(workload.ok());
  for (size_t i = 0; i < workload->queries.size(); i += 25) {
    db::ResultTable r =
        db::Evaluate(workload->queries[i], *workload->database);
    (void)r;
  }
  SUCCEED();
}

TEST(SsbWorkloadTest, Exactly701QueriesAllBind) {
  auto workload = MakeSsbWorkload({.scale_factor = 0.002, .seed = 7});
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->queries.size(), 701u);
}

TEST(SsbDataTest, GeographyIsConsistent) {
  auto data = MakeSsbData({.scale_factor = 0.002, .seed = 7});
  const db::Table* supplier = data->FindTable("supplier");
  ASSERT_NE(supplier, nullptr);
  // nation i % 25 -> region (i % 25) % 5, cities share the mapping.
  for (int r = 0; r < supplier->num_rows(); ++r) {
    std::string city = supplier->cell(r, 2).as_string();
    std::string nation = supplier->cell(r, 3).as_string();
    int city_idx = std::stoi(city.substr(4));
    EXPECT_EQ(nation, "NATION" + std::to_string(city_idx % 25));
  }
}

TEST(SsbDataTest, QueriesEvaluate) {
  auto workload = MakeSsbWorkload({.scale_factor = 0.002, .seed = 7});
  ASSERT_TRUE(workload.ok());
  for (size_t i = 0; i < workload->queries.size(); i += 70) {
    db::ResultTable r =
        db::Evaluate(workload->queries[i], *workload->database);
    (void)r;
  }
  SUCCEED();
}

}  // namespace
}  // namespace qp::workload
