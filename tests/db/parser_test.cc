#include "db/parser.h"

#include <gtest/gtest.h>

#include "db/tokenizer.h"
#include "tests/testing/test_db.h"

namespace qp::db {
namespace {

TEST(TokenizerTest, BasicTokens) {
  auto toks = Tokenize("select Name, 42 from T where x >= 1.5");
  ASSERT_TRUE(toks.ok());
  const auto& t = *toks;
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_TRUE(t[2].IsSymbol(","));
  EXPECT_EQ(t[3].type, TokenType::kInteger);
  EXPECT_EQ(t[3].int_value, 42);
  EXPECT_TRUE(t[8].IsSymbol(">="));
  EXPECT_EQ(t[9].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(t[9].float_value, 1.5);
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(TokenizerTest, StringsAndEscapes) {
  auto toks = Tokenize("where name = 'O''Brien'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[3].type, TokenType::kString);
  EXPECT_EQ((*toks)[3].text, "O'Brien");
}

TEST(TokenizerTest, NormalizesNotEquals) {
  auto toks = Tokenize("a != b");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[1].IsSymbol("<>"));
}

TEST(TokenizerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("select 'oops").ok());
}

TEST(TokenizerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Tokenize("select @x").ok());
}

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = testing::MakeTestDatabase(); }

  BoundQuery MustParse(const std::string& sql) {
    auto q = ParseQuery(sql, *db_);
    EXPECT_TRUE(q.ok()) << sql << " -> " << q.status();
    return q.ok() ? *q : BoundQuery{};
  }

  Status ParseError(const std::string& sql) {
    auto q = ParseQuery(sql, *db_);
    EXPECT_FALSE(q.ok()) << sql << " unexpectedly parsed";
    return q.ok() ? Status::OK() : q.status();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ParserTest, SimpleSelect) {
  BoundQuery q = MustParse("select Name from Country");
  EXPECT_EQ(q.table_indices.size(), 1u);
  EXPECT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].kind, SelectItem::Kind::kColumn);
  EXPECT_EQ(q.select[0].column, 1);  // Country.Name
  EXPECT_FALSE(q.distinct);
  EXPECT_EQ(q.limit, -1);
}

TEST_F(ParserTest, SelectStarExpands) {
  BoundQuery q = MustParse("select * from City");
  EXPECT_EQ(q.select.size(), 4u);
}

TEST_F(ParserTest, CaseInsensitiveKeywordsAndNames) {
  BoundQuery q = MustParse("SELECT name FROM country WHERE continent = 'Asia'");
  EXPECT_EQ(q.select[0].column, 1);
  EXPECT_NE(q.predicate, nullptr);
}

TEST_F(ParserTest, AggregatesParse) {
  BoundQuery q = MustParse(
      "select count(*), count(Name), count(distinct Continent), "
      "sum(Population), avg(Population), min(Population), max(Population) "
      "from Country");
  ASSERT_EQ(q.select.size(), 7u);
  EXPECT_EQ(q.select[0].agg, AggFunc::kCount);
  EXPECT_EQ(q.select[0].column, -1);
  EXPECT_EQ(q.select[1].agg, AggFunc::kCount);
  EXPECT_EQ(q.select[1].column, 1);
  EXPECT_EQ(q.select[2].agg, AggFunc::kCountDistinct);
  EXPECT_EQ(q.select[3].agg, AggFunc::kSum);
  EXPECT_EQ(q.select[4].agg, AggFunc::kAvg);
  EXPECT_EQ(q.select[5].agg, AggFunc::kMin);
  EXPECT_EQ(q.select[6].agg, AggFunc::kMax);
}

TEST_F(ParserTest, GroupByAndLimit) {
  BoundQuery q = MustParse(
      "select Continent, max(Population) from Country group by Continent");
  EXPECT_EQ(q.group_by, std::vector<int>{2});
  BoundQuery q2 = MustParse("select * from Country limit 2");
  EXPECT_EQ(q2.limit, 2);
}

TEST_F(ParserTest, JoinExtractionImplicitSyntax) {
  BoundQuery q = MustParse(
      "select Name from Country, CountryLanguage where Code = CountryCode "
      "and Language = 'Greek'");
  EXPECT_EQ(q.table_indices.size(), 2u);
  EXPECT_EQ(q.join_left, 0);       // Country.Code
  EXPECT_EQ(q.join_right, 5 + 0);  // CountryLanguage.CountryCode (offset 5)
  ASSERT_NE(q.predicate, nullptr);  // residual Language = 'Greek'
}

TEST_F(ParserTest, JoinOnlyPredicateBecomesNull) {
  BoundQuery q = MustParse(
      "select Name, Language from Country, CountryLanguage where Code = "
      "CountryCode");
  EXPECT_EQ(q.join_left, 0);
  EXPECT_EQ(q.predicate, nullptr);
}

TEST_F(ParserTest, AliasesBindQualifiedColumns) {
  BoundQuery q = MustParse(
      "select C.Name from Country C, CountryLanguage L where C.Code = "
      "L.CountryCode and L.Percentage >= 50");
  EXPECT_EQ(q.select[0].column, 1);
  EXPECT_EQ(q.join_left, 0);
  EXPECT_EQ(q.join_right, 5);
}

TEST_F(ParserTest, AmbiguousColumnRejected) {
  // Population exists in Country and City.
  ParseError("select Population from Country, City where Code = CountryCode");
}

TEST_F(ParserTest, QualifiedAmbiguousColumnAccepted) {
  BoundQuery q = MustParse(
      "select City.Population from Country, City where Code = CountryCode");
  EXPECT_EQ(q.select[0].column, 5 + 3);
}

TEST_F(ParserTest, BetweenLikeIn) {
  BoundQuery q = MustParse(
      "select Name from Country where Population between 1 and 10 or Name "
      "like 'A%' or Code in ('USA', 'FRA')");
  ASSERT_NE(q.predicate, nullptr);
  EXPECT_EQ(q.predicate->kind(), ExprKind::kOr);
}

TEST_F(ParserTest, NegativeLiterals) {
  BoundQuery q = MustParse("select Name from Country where Population > -5");
  ASSERT_NE(q.predicate, nullptr);
}

TEST_F(ParserTest, DistinctLiteral) {
  BoundQuery q = MustParse("select distinct 1 from City where Population > 5");
  EXPECT_TRUE(q.distinct);
  EXPECT_EQ(q.select[0].kind, SelectItem::Kind::kLiteral);
}

TEST_F(ParserTest, ErrorsAreInformative) {
  EXPECT_EQ(ParseError("selec Name from Country").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseError("select Name from Nowhere").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseError("select Nope from Country").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseError("select Name from Country where").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseError("select Name from Country limit x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseError("select Name from Country trailing junk").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, TwoTablesWithoutJoinRejected) {
  EXPECT_EQ(ParseError("select Code from Country, City").code(),
            StatusCode::kUnimplemented);
}

TEST_F(ParserTest, ThreeTablesRejected) {
  EXPECT_EQ(
      ParseError("select Name from Country, City, CountryLanguage").code(),
      StatusCode::kUnimplemented);
}

TEST_F(ParserTest, AggregateMixedWithUngroupedColumnRejected) {
  ParseError("select Name, count(*) from Country");
}

TEST_F(ParserTest, ValidationPassesOnParsedQueries) {
  BoundQuery q = MustParse(
      "select Continent, count(Code) from Country group by Continent");
  EXPECT_TRUE(q.Validate(*db_).ok());
}

TEST_F(ParserTest, SensitiveColumnsForPlainQuery) {
  BoundQuery q = MustParse("select Name from Country where Continent = 'Asia'");
  auto cols = q.SensitiveColumns();
  // (Country=0, Name=1), (Country=0, Continent=2).
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(cols[1], (std::pair<int, int>{0, 2}));
}

TEST_F(ParserTest, SensitiveColumnsBareCountStarIsEmpty) {
  BoundQuery q = MustParse("select count(*) from City");
  EXPECT_TRUE(q.SensitiveColumns().empty());
}

TEST_F(ParserTest, SensitiveColumnsIncludeJoinKeys) {
  BoundQuery q = MustParse(
      "select Name from Country, CountryLanguage where Code = CountryCode");
  auto cols = q.SensitiveColumns();
  // Country.Code, Country.Name, CountryLanguage.CountryCode.
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], (std::pair<int, int>{0, 0}));
  EXPECT_EQ(cols[1], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(cols[2], (std::pair<int, int>{2, 0}));
}

}  // namespace
}  // namespace qp::db
