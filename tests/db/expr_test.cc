#include "db/expr.h"

#include <gtest/gtest.h>

namespace qp::db {
namespace {

Row TestRow() {
  return {Value::Int(10), Value::Str("Paris"), Value::Real(2.5), Value::Null()};
}

TEST(ExprTest, ColumnAndLiteral) {
  Row row = TestRow();
  EXPECT_EQ(Expr::Column(0)->Evaluate(row).as_int(), 10);
  EXPECT_EQ(Expr::Column(1)->Evaluate(row).as_string(), "Paris");
  EXPECT_EQ(Expr::Literal(Value::Int(7))->Evaluate(row).as_int(), 7);
}

TEST(ExprTest, ComparisonOperators) {
  Row row = TestRow();
  auto col0 = Expr::Column(0);
  auto lit5 = Expr::Literal(Value::Int(5));
  auto lit10 = Expr::Literal(Value::Int(10));
  EXPECT_TRUE(Expr::Compare(CompareOp::kGt, col0, lit5)->EvaluateBool(row));
  EXPECT_FALSE(Expr::Compare(CompareOp::kLt, col0, lit5)->EvaluateBool(row));
  EXPECT_TRUE(Expr::Compare(CompareOp::kEq, col0, lit10)->EvaluateBool(row));
  EXPECT_TRUE(Expr::Compare(CompareOp::kGe, col0, lit10)->EvaluateBool(row));
  EXPECT_TRUE(Expr::Compare(CompareOp::kLe, col0, lit10)->EvaluateBool(row));
  EXPECT_FALSE(Expr::Compare(CompareOp::kNe, col0, lit10)->EvaluateBool(row));
}

TEST(ExprTest, StringComparison) {
  Row row = TestRow();
  auto name = Expr::Column(1);
  EXPECT_TRUE(Expr::Compare(CompareOp::kEq, name,
                            Expr::Literal(Value::Str("Paris")))
                  ->EvaluateBool(row));
  EXPECT_TRUE(Expr::Compare(CompareOp::kLt, name,
                            Expr::Literal(Value::Str("Q")))
                  ->EvaluateBool(row));
}

TEST(ExprTest, NullComparisonsAreFalse) {
  Row row = TestRow();
  auto null_col = Expr::Column(3);
  auto lit = Expr::Literal(Value::Int(0));
  EXPECT_FALSE(Expr::Compare(CompareOp::kEq, null_col, lit)->EvaluateBool(row));
  EXPECT_FALSE(Expr::Compare(CompareOp::kNe, null_col, lit)->EvaluateBool(row));
  EXPECT_FALSE(Expr::Compare(CompareOp::kLt, null_col, lit)->EvaluateBool(row));
}

TEST(ExprTest, Between) {
  Row row = TestRow();
  EXPECT_TRUE(Expr::Between(Expr::Column(0), Value::Int(5), Value::Int(15))
                  ->EvaluateBool(row));
  EXPECT_TRUE(Expr::Between(Expr::Column(0), Value::Int(10), Value::Int(10))
                  ->EvaluateBool(row));
  EXPECT_FALSE(Expr::Between(Expr::Column(0), Value::Int(11), Value::Int(15))
                   ->EvaluateBool(row));
  EXPECT_FALSE(Expr::Between(Expr::Column(3), Value::Int(0), Value::Int(1))
                   ->EvaluateBool(row));  // NULL
}

TEST(ExprTest, Like) {
  Row row = TestRow();
  EXPECT_TRUE(Expr::Like(Expr::Column(1), "P%")->EvaluateBool(row));
  EXPECT_TRUE(Expr::Like(Expr::Column(1), "%ri%")->EvaluateBool(row));
  EXPECT_FALSE(Expr::Like(Expr::Column(1), "Q%")->EvaluateBool(row));
  // LIKE on a non-string (int) is false.
  EXPECT_FALSE(Expr::Like(Expr::Column(0), "1%")->EvaluateBool(row));
}

TEST(ExprTest, InList) {
  Row row = TestRow();
  EXPECT_TRUE(Expr::InList(Expr::Column(0),
                           {Value::Int(1), Value::Int(10), Value::Int(20)})
                  ->EvaluateBool(row));
  EXPECT_FALSE(
      Expr::InList(Expr::Column(0), {Value::Int(1)})->EvaluateBool(row));
  EXPECT_FALSE(Expr::InList(Expr::Column(3), {Value::Null()})
                   ->EvaluateBool(row));  // NULL never IN
}

TEST(ExprTest, BooleanConnectives) {
  Row row = TestRow();
  auto t = Expr::Compare(CompareOp::kEq, Expr::Column(0),
                         Expr::Literal(Value::Int(10)));
  auto f = Expr::Compare(CompareOp::kEq, Expr::Column(0),
                         Expr::Literal(Value::Int(11)));
  EXPECT_TRUE(Expr::And(t, t)->EvaluateBool(row));
  EXPECT_FALSE(Expr::And(t, f)->EvaluateBool(row));
  EXPECT_TRUE(Expr::Or(f, t)->EvaluateBool(row));
  EXPECT_FALSE(Expr::Or(f, f)->EvaluateBool(row));
  EXPECT_TRUE(Expr::Not(f)->EvaluateBool(row));
  EXPECT_FALSE(Expr::Not(t)->EvaluateBool(row));
}

TEST(ExprTest, ArithmeticIntStaysExact) {
  Row row = TestRow();
  auto sum = Expr::Arith(ArithOp::kAdd, Expr::Column(0),
                         Expr::Literal(Value::Int(5)));
  Value v = sum->Evaluate(row);
  EXPECT_EQ(v.type(), ValueType::kInt);
  EXPECT_EQ(v.as_int(), 15);
  auto prod = Expr::Arith(ArithOp::kMul, Expr::Column(0),
                          Expr::Literal(Value::Int(3)));
  EXPECT_EQ(prod->Evaluate(row).as_int(), 30);
}

TEST(ExprTest, ArithmeticDivisionIsDouble) {
  Row row = TestRow();
  auto div = Expr::Arith(ArithOp::kDiv, Expr::Column(0),
                         Expr::Literal(Value::Int(4)));
  Value v = div->Evaluate(row);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.as_double(), 2.5);
  auto by_zero = Expr::Arith(ArithOp::kDiv, Expr::Column(0),
                             Expr::Literal(Value::Int(0)));
  EXPECT_TRUE(by_zero->Evaluate(row).is_null());
}

TEST(ExprTest, ArithmeticNullPropagates) {
  Row row = TestRow();
  auto sum = Expr::Arith(ArithOp::kAdd, Expr::Column(3),
                         Expr::Literal(Value::Int(5)));
  EXPECT_TRUE(sum->Evaluate(row).is_null());
}

TEST(ExprTest, CollectColumns) {
  auto e = Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::Column(2), Expr::Column(0)),
      Expr::Like(Expr::Column(1), "x%"));
  std::vector<int> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<int>{2, 0, 1}));
}

TEST(ExprTest, ToStringRendersSqlIsh) {
  auto e = Expr::And(Expr::Compare(CompareOp::kGe, Expr::Column(0),
                                   Expr::Literal(Value::Int(5))),
                     Expr::Like(Expr::Column(1), "A%"));
  std::vector<std::string> names{"pop", "name"};
  EXPECT_EQ(e->ToString(&names), "(pop >= 5 AND name LIKE 'A%')");
}

}  // namespace
}  // namespace qp::db
