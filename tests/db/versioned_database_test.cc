// Versioned-catalog unit suite. The contracts pinned here:
//  (a) Commit publishes generations without touching the base database:
//      LogicalCell serves the committed value while the base cell keeps
//      its original bytes until a fold runs;
//  (b) folding triggers on the fold_every cadence, writes exactly the
//      overlay's cells into the base, republishes the same generation
//      number (a fold changes no logical value), and resets the pending
//      gauge;
//  (c) the fold gate defers to pinned readers — a live epoch guard taken
//      before the commits forces fold_retries instead of folds, and the
//      fold lands once the guard releases;
//  (d) head_generation()/stats() are pin-free gauges (quote paths count
//      pins; gauges must not add any), while LogicalCell pins exactly
//      once;
//  (e) a reader pinned on an old generation keeps a valid view of it
//      after later commits (epoch reclamation, not refcounts).
#include "db/versioned_database.h"

#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "common/epoch.h"
#include "db/database.h"
#include "db/value.h"
#include "tests/testing/test_db.h"

namespace qp::db {
namespace {

// Country.Name: distinct across rows, so swapping in another row's value
// is a guaranteed-visible edit.
constexpr int kTable = 0;
constexpr int kNameCol = 1;

std::unique_ptr<Database> Db() { return testing::MakeTestDatabase(); }

// (a) commits accumulate in the overlay; the base stays const.
TEST(VersionedDatabaseTest, CommitPublishesWithoutTouchingBase) {
  auto db = Db();
  common::EpochManager epochs;
  VersionedDatabase catalog(db.get(), &epochs, /*fold_every=*/0);

  EXPECT_EQ(catalog.head_generation(), 0u);
  Value original = db->table(kTable).cell(0, kNameCol);
  Value edited = db->table(kTable).cell(1, kNameCol);
  ASSERT_NE(original, edited);

  catalog.Commit(*db, kTable, 0, kNameCol, edited);
  EXPECT_EQ(catalog.head_generation(), 1u);
  // Logical read serves the committed value; the base cell is untouched.
  EXPECT_EQ(catalog.LogicalCell(kTable, 0, kNameCol), edited);
  EXPECT_EQ(db->table(kTable).cell(0, kNameCol), original);

  // Re-committing the same cell replaces in place: generation counts
  // commits, pending counts distinct cells.
  catalog.Commit(*db, kTable, 0, kNameCol, original);
  VersionedDatabase::Stats stats = catalog.stats();
  EXPECT_EQ(catalog.head_generation(), 2u);
  EXPECT_EQ(stats.generations_published, 2u);
  EXPECT_EQ(stats.deltas_pending, 1u);
  EXPECT_EQ(stats.folds, 0u);
  EXPECT_EQ(catalog.LogicalCell(kTable, 0, kNameCol), original);

  // Cells no commit touched fall through to the base.
  EXPECT_EQ(catalog.LogicalCell(kTable, 2, kNameCol),
            db->table(kTable).cell(2, kNameCol));
}

// (b) the fold_every-th distinct cell folds the overlay into the base
// and republishes the same generation number with nothing pending.
TEST(VersionedDatabaseTest, FoldsOnCadenceAndPreservesLogicalReads) {
  auto db = Db();
  common::EpochManager epochs;
  VersionedDatabase catalog(db.get(), &epochs, /*fold_every=*/2);

  Value a = db->table(kTable).cell(1, kNameCol);
  Value b = db->table(kTable).cell(0, kNameCol);
  catalog.Commit(*db, kTable, 0, kNameCol, a);
  EXPECT_EQ(catalog.stats().folds, 0u);
  catalog.Commit(*db, kTable, 1, kNameCol, b);  // second cell: fold fires

  VersionedDatabase::Stats stats = catalog.stats();
  EXPECT_EQ(stats.folds, 1u);
  EXPECT_EQ(stats.fold_retries, 0u);
  EXPECT_EQ(stats.deltas_folded, 2u);
  EXPECT_EQ(stats.deltas_pending, 0u);
  // A fold republishes the head number: no logical value changed.
  EXPECT_EQ(catalog.head_generation(), 2u);
  // The base now carries the folded values, and logical reads agree.
  EXPECT_EQ(db->table(kTable).cell(0, kNameCol), a);
  EXPECT_EQ(db->table(kTable).cell(1, kNameCol), b);
  EXPECT_EQ(catalog.LogicalCell(kTable, 0, kNameCol), a);
  EXPECT_EQ(catalog.LogicalCell(kTable, 1, kNameCol), b);
}

// (c) a reader pinned before the commits blocks the fold (fold_retries,
// base untouched); releasing the pin lets TryFold land.
TEST(VersionedDatabaseTest, FoldDefersToPinnedReaders) {
  auto db = Db();
  common::EpochManager epochs;
  VersionedDatabase catalog(db.get(), &epochs, /*fold_every=*/2);

  Value original0 = db->table(kTable).cell(0, kNameCol);
  Value a = db->table(kTable).cell(1, kNameCol);
  Value b = db->table(kTable).cell(0, kNameCol);

  common::EpochManager::Guard reader(epochs);  // pinned at the old epoch
  catalog.Commit(*db, kTable, 0, kNameCol, a);
  catalog.Commit(*db, kTable, 1, kNameCol, b);

  VersionedDatabase::Stats stats = catalog.stats();
  EXPECT_EQ(stats.folds, 0u);
  EXPECT_GE(stats.fold_retries, 1u);
  EXPECT_EQ(stats.deltas_pending, 2u);
  EXPECT_EQ(db->table(kTable).cell(0, kNameCol), original0);
  // Logical reads never waited on the fold.
  EXPECT_EQ(catalog.LogicalCell(kTable, 0, kNameCol), a);

  // Still pinned: an explicit retry is refused too.
  EXPECT_FALSE(catalog.TryFold(*db));

  reader.Release();
  EXPECT_TRUE(catalog.TryFold(*db));
  stats = catalog.stats();
  EXPECT_EQ(stats.folds, 1u);
  EXPECT_EQ(stats.deltas_pending, 0u);
  EXPECT_EQ(stats.deltas_folded, 2u);
  EXPECT_EQ(db->table(kTable).cell(0, kNameCol), a);
  EXPECT_EQ(catalog.head_generation(), 2u);
}

// (d) gauges are pin-free; LogicalCell pins exactly once per read.
TEST(VersionedDatabaseTest, GaugesArePinFreeLogicalReadsPinOnce) {
  auto db = Db();
  common::EpochManager epochs;
  VersionedDatabase catalog(db.get(), &epochs, /*fold_every=*/0);
  catalog.Commit(*db, kTable, 0, kNameCol, db->table(kTable).cell(1, kNameCol));

  uint64_t pins = epochs.stats().pins;
  for (int i = 0; i < 10; ++i) {
    (void)catalog.head_generation();
    (void)catalog.stats();
  }
  EXPECT_EQ(epochs.stats().pins, pins);

  for (int i = 0; i < 10; ++i) {
    (void)catalog.LogicalCell(kTable, 0, kNameCol);
  }
  EXPECT_EQ(epochs.stats().pins, pins + 10);
}

// (e) an old pinned generation stays readable across later commits, and
// retirements reclaim once the reader is gone.
TEST(VersionedDatabaseTest, PinnedGenerationSurvivesLaterCommits) {
  auto db = Db();
  common::EpochManager epochs;
  VersionedDatabase catalog(db.get(), &epochs, /*fold_every=*/0);

  Value first = db->table(kTable).cell(1, kNameCol);
  catalog.Commit(*db, kTable, 0, kNameCol, first);

  common::EpochManager::Guard reader(epochs);
  const VersionedDatabase::Generation* pinned = catalog.head();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->number, 1u);

  // Later commits move the head; the pinned snapshot is unaffected.
  catalog.Commit(*db, kTable, 2, kNameCol, db->table(kTable).cell(3, kNameCol));
  catalog.Commit(*db, kTable, 4, kNameCol, db->table(kTable).cell(5, kNameCol));
  EXPECT_EQ(catalog.head_generation(), 3u);
  EXPECT_EQ(pinned->number, 1u);
  const Value* overlay_value = pinned->overlay.Find(kTable, 0, kNameCol);
  ASSERT_NE(overlay_value, nullptr);
  EXPECT_EQ(*overlay_value, first);
  // The staleness of this reader is the commits it cannot see yet.
  EXPECT_EQ(catalog.head_generation() - pinned->number, 2u);

  reader.Release();
  // Superseded generations retire through the epoch manager; with the
  // reader gone the next commit's reclaim pass frees all of them.
  catalog.Commit(*db, kTable, 0, kNameCol, first);
  common::EpochManager::Stats es = epochs.stats();
  EXPECT_GT(es.retired, 0u);
  EXPECT_EQ(es.pending, 0u);
}

}  // namespace
}  // namespace qp::db
