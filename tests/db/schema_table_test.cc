#include <gtest/gtest.h>

#include "db/database.h"
#include "db/schema.h"
#include "db/table.h"
#include "tests/testing/test_db.h"

namespace qp::db {
namespace {

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s({{"Code", ValueType::kString}, {"Population", ValueType::kInt}});
  EXPECT_EQ(s.num_columns(), 2);
  EXPECT_EQ(s.FindColumn("code"), 0);
  EXPECT_EQ(s.FindColumn("CODE"), 0);
  EXPECT_EQ(s.FindColumn("population"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
}

TEST(SchemaTest, ColumnMetadata) {
  Schema s({{"A", ValueType::kInt}});
  EXPECT_EQ(s.column(0).name, "A");
  EXPECT_EQ(s.column(0).type, ValueType::kInt);
}

TEST(TableTest, AppendRowChecksArity) {
  Table t("T", Schema({{"a", ValueType::kInt}, {"b", ValueType::kString}}));
  EXPECT_TRUE(t.AppendRow({Value::Int(1), Value::Str("x")}).ok());
  EXPECT_FALSE(t.AppendRow({Value::Int(1)}).ok());
  EXPECT_EQ(t.num_rows(), 1);
}

TEST(TableTest, AppendRowChecksTypes) {
  Table t("T", Schema({{"a", ValueType::kInt}}));
  EXPECT_FALSE(t.AppendRow({Value::Str("not an int")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Null()}).ok());  // NULL fits any column
  EXPECT_TRUE(t.AppendRow({Value::Int(3)}).ok());
}

TEST(TableTest, CellAccessAndSetCell) {
  Table t("T", Schema({{"a", ValueType::kInt}}));
  QP_CHECK_OK(t.AppendRow({Value::Int(1)}));
  EXPECT_EQ(t.cell(0, 0).as_int(), 1);
  t.SetCell(0, 0, Value::Int(9));
  EXPECT_EQ(t.cell(0, 0).as_int(), 9);
}

TEST(DatabaseTest, AddAndFindTables) {
  auto db = testing::MakeTestDatabase();
  EXPECT_EQ(db->num_tables(), 3);
  EXPECT_NE(db->FindTable("country"), nullptr);
  EXPECT_NE(db->FindTable("COUNTRY"), nullptr);
  EXPECT_EQ(db->FindTable("nope"), nullptr);
  EXPECT_EQ(db->FindTableIndex("City"), 1);
  EXPECT_EQ(db->FindTableIndex("missing"), -1);
}

TEST(DatabaseTest, DuplicateTableRejected) {
  Database db;
  QP_CHECK_OK(db.AddTable(Table("T", Schema({{"a", ValueType::kInt}}))));
  EXPECT_EQ(db.AddTable(Table("t", Schema({{"b", ValueType::kInt}}))).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, TotalRows) {
  auto db = testing::MakeTestDatabase();
  EXPECT_EQ(db->TotalRows(), 6 + 9 + 8);
}

}  // namespace
}  // namespace qp::db
