#include "db/eval.h"

#include <gtest/gtest.h>

#include "db/parser.h"
#include "tests/testing/test_db.h"

namespace qp::db {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = testing::MakeTestDatabase(); }

  ResultTable Run(const std::string& sql) {
    auto q = ParseQuery(sql, *db_);
    EXPECT_TRUE(q.ok()) << sql << " -> " << q.status();
    return Evaluate(*q, *db_);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(EvalTest, SelectStar) {
  ResultTable r = Run("select * from Country");
  EXPECT_EQ(r.rows.size(), 6u);
  EXPECT_EQ(r.rows[0].size(), 5u);
}

TEST_F(EvalTest, SelectionFiltersRows) {
  ResultTable r = Run("select Name from Country where Continent = 'Europe'");
  ASSERT_EQ(r.rows.size(), 2u);
  // Canonical sort: France before Germany.
  EXPECT_EQ(r.rows[0][0].as_string(), "France");
  EXPECT_EQ(r.rows[1][0].as_string(), "Germany");
}

TEST_F(EvalTest, ProjectionKeepsSelectedColumns) {
  ResultTable r =
      Run("select Name, Population from Country where Code = 'JPN'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_string(), "Japan");
  EXPECT_EQ(r.rows[0][1].as_int(), 125000000);
}

TEST_F(EvalTest, CountStar) {
  ResultTable r = Run("select count(*) from City");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 9);
}

TEST_F(EvalTest, CountWithPredicate) {
  ResultTable r =
      Run("select count(Name) from Country where Continent = 'Asia'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 2);
}

TEST_F(EvalTest, CountDistinct) {
  ResultTable r = Run("select count(distinct Continent) from Country");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 4);
}

TEST_F(EvalTest, SumAndAvg) {
  ResultTable r =
      Run("select sum(Population), avg(Population) from City where "
          "CountryCode = 'JPN'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 13900000 + 2700000);
  EXPECT_DOUBLE_EQ(r.rows[0][1].as_double(), (13900000 + 2700000) / 2.0);
}

TEST_F(EvalTest, MinMax) {
  ResultTable r = Run("select min(Population), max(Population) from City");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 2100000);
  EXPECT_EQ(r.rows[0][1].as_int(), 13900000);
}

TEST_F(EvalTest, AggregateOverEmptyInput) {
  ResultTable r =
      Run("select count(*), sum(Population), min(Population) from City where "
          "CountryCode = 'XXX'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST_F(EvalTest, GroupByWithAggregate) {
  ResultTable r =
      Run("select Continent, count(Code) from Country group by Continent");
  ASSERT_EQ(r.rows.size(), 4u);
  // Canonically sorted by continent name.
  EXPECT_EQ(r.rows[0][0].as_string(), "Asia");
  EXPECT_EQ(r.rows[0][1].as_int(), 2);
  EXPECT_EQ(r.rows[1][0].as_string(), "Europe");
  EXPECT_EQ(r.rows[1][1].as_int(), 2);
}

TEST_F(EvalTest, GroupByMax) {
  ResultTable r =
      Run("select CountryCode, max(Population) from City group by "
          "CountryCode");
  ASSERT_EQ(r.rows.size(), 6u);
  for (const Row& row : r.rows) {
    if (row[0].as_string() == "JPN") {
      EXPECT_EQ(row[1].as_int(), 13900000);
    }
    if (row[0].as_string() == "IND") {
      EXPECT_EQ(row[1].as_int(), 12400000);
    }
  }
}

TEST_F(EvalTest, GroupByEmptyInputHasNoGroups) {
  ResultTable r =
      Run("select CountryCode, count(ID) from City where Population > "
          "99999999 group by CountryCode");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(EvalTest, Distinct) {
  ResultTable r = Run("select distinct Continent from Country");
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(EvalTest, DistinctLiteralProbe) {
  // Paper workload Q28 pattern: "select distinct 1 from ... where ..."
  ResultTable hit =
      Run("select distinct 1 from City where Population > 13000000");
  ASSERT_EQ(hit.rows.size(), 1u);
  EXPECT_EQ(hit.rows[0][0].as_int(), 1);
  ResultTable miss =
      Run("select distinct 1 from City where Population > 99999999");
  EXPECT_TRUE(miss.rows.empty());
}

TEST_F(EvalTest, LimitAfterCanonicalSort) {
  ResultTable r = Run("select Name from City limit 3");
  ASSERT_EQ(r.rows.size(), 3u);
  // Deterministic: lexicographically smallest three city names.
  EXPECT_EQ(r.rows[0][0].as_string(), "Berlin");
  EXPECT_EQ(r.rows[1][0].as_string(), "Delhi");
  EXPECT_EQ(r.rows[2][0].as_string(), "Los Angeles");
}

TEST_F(EvalTest, JoinImplicitStyle) {
  ResultTable r =
      Run("select Name from Country, CountryLanguage where Code = "
          "CountryCode and Language = 'English'");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].as_string(), "India");
  EXPECT_EQ(r.rows[1][0].as_string(), "United States");
}

TEST_F(EvalTest, JoinWithAliasesAndResidual) {
  ResultTable r =
      Run("select C.Name from Country C, CountryLanguage L where C.Code = "
          "L.CountryCode and L.Language = 'English' and L.Percentage >= 50");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_string(), "United States");
}

TEST_F(EvalTest, JoinSelectStarConcatenatesSchemas) {
  ResultTable r =
      Run("select * from Country, CountryLanguage where Code = CountryCode "
          "and Language = 'French'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].size(), 5u + 4u);
  EXPECT_EQ(r.rows[0][1].as_string(), "France");
  EXPECT_EQ(r.rows[0][6].as_string(), "French");
}

TEST_F(EvalTest, JoinWithAggregation) {
  ResultTable r =
      Run("select count(*) from Country, City where Code = CountryCode and "
          "Continent = 'Asia'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 4);  // Tokyo, Osaka, Mumbai, Delhi
}

TEST_F(EvalTest, BetweenPredicate) {
  ResultTable r =
      Run("select Name from Country where Population between 60000000 and "
          "130000000");
  EXPECT_EQ(r.rows.size(), 3u);  // FRA, DEU, JPN
}

TEST_F(EvalTest, LikePredicate) {
  ResultTable r = Run("select Name from Country where Name like '%an%'");
  // France? no. Germany, Japan: yes... 'United States' no, 'Germany' yes,
  // 'Japan' yes, 'France' contains 'an'? F-r-a-n-c-e -> "an" yes.
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(EvalTest, OrAndParens) {
  ResultTable r =
      Run("select Name from Country where (Continent = 'Asia' or Continent "
          "= 'Europe') and Population > 80000000");
  ASSERT_EQ(r.rows.size(), 3u);  // DEU 83M, JPN 125M, IND 1380M
}

TEST_F(EvalTest, ResultEqualsAndFingerprint) {
  ResultTable a = Run("select Name from Country where Continent = 'Asia'");
  ResultTable b = Run("select Name from Country where Continent = 'Asia'");
  EXPECT_TRUE(a.Equals(b));
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  ResultTable c = Run("select Name from Country where Continent = 'Europe'");
  EXPECT_FALSE(a.Equals(c));
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST_F(EvalTest, FingerprintIsOrderIndependentButRowSensitive) {
  ResultTable a, b;
  a.rows = {{Value::Int(1), Value::Int(2)}, {Value::Int(3), Value::Int(4)}};
  b.rows = {{Value::Int(3), Value::Int(4)}, {Value::Int(1), Value::Int(2)}};
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  ResultTable c;
  c.rows = {{Value::Int(2), Value::Int(1)}, {Value::Int(3), Value::Int(4)}};
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST_F(EvalTest, GroupByWithoutAggregatesDeduplicates) {
  ResultTable r = Run("select Continent from Country group by Continent");
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(EvalTest, AvgOfDoubles) {
  ResultTable r = Run("select avg(LifeExpectancy) from Country where "
                      "Continent = 'Europe'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][1 - 1].as_double(), (82.5 + 81.0) / 2.0);
}

}  // namespace
}  // namespace qp::db
