#include "db/eval.h"

#include <gtest/gtest.h>

#include "db/parser.h"
#include "tests/testing/test_db.h"

namespace qp::db {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = testing::MakeTestDatabase(); }

  ResultTable Run(const std::string& sql) {
    auto q = ParseQuery(sql, *db_);
    EXPECT_TRUE(q.ok()) << sql << " -> " << q.status();
    return Evaluate(*q, *db_);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(EvalTest, SelectStar) {
  ResultTable r = Run("select * from Country");
  EXPECT_EQ(r.rows.size(), 6u);
  EXPECT_EQ(r.rows[0].size(), 5u);
}

TEST_F(EvalTest, SelectionFiltersRows) {
  ResultTable r = Run("select Name from Country where Continent = 'Europe'");
  ASSERT_EQ(r.rows.size(), 2u);
  // Canonical sort: France before Germany.
  EXPECT_EQ(r.rows[0][0].as_string(), "France");
  EXPECT_EQ(r.rows[1][0].as_string(), "Germany");
}

TEST_F(EvalTest, ProjectionKeepsSelectedColumns) {
  ResultTable r =
      Run("select Name, Population from Country where Code = 'JPN'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_string(), "Japan");
  EXPECT_EQ(r.rows[0][1].as_int(), 125000000);
}

TEST_F(EvalTest, CountStar) {
  ResultTable r = Run("select count(*) from City");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 9);
}

TEST_F(EvalTest, CountWithPredicate) {
  ResultTable r =
      Run("select count(Name) from Country where Continent = 'Asia'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 2);
}

TEST_F(EvalTest, CountDistinct) {
  ResultTable r = Run("select count(distinct Continent) from Country");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 4);
}

TEST_F(EvalTest, SumAndAvg) {
  ResultTable r =
      Run("select sum(Population), avg(Population) from City where "
          "CountryCode = 'JPN'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 13900000 + 2700000);
  EXPECT_DOUBLE_EQ(r.rows[0][1].as_double(), (13900000 + 2700000) / 2.0);
}

TEST_F(EvalTest, MinMax) {
  ResultTable r = Run("select min(Population), max(Population) from City");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 2100000);
  EXPECT_EQ(r.rows[0][1].as_int(), 13900000);
}

TEST_F(EvalTest, AggregateOverEmptyInput) {
  ResultTable r =
      Run("select count(*), sum(Population), min(Population) from City where "
          "CountryCode = 'XXX'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST_F(EvalTest, GroupByWithAggregate) {
  ResultTable r =
      Run("select Continent, count(Code) from Country group by Continent");
  ASSERT_EQ(r.rows.size(), 4u);
  // Canonically sorted by continent name.
  EXPECT_EQ(r.rows[0][0].as_string(), "Asia");
  EXPECT_EQ(r.rows[0][1].as_int(), 2);
  EXPECT_EQ(r.rows[1][0].as_string(), "Europe");
  EXPECT_EQ(r.rows[1][1].as_int(), 2);
}

TEST_F(EvalTest, GroupByMax) {
  ResultTable r =
      Run("select CountryCode, max(Population) from City group by "
          "CountryCode");
  ASSERT_EQ(r.rows.size(), 6u);
  for (const Row& row : r.rows) {
    if (row[0].as_string() == "JPN") {
      EXPECT_EQ(row[1].as_int(), 13900000);
    }
    if (row[0].as_string() == "IND") {
      EXPECT_EQ(row[1].as_int(), 12400000);
    }
  }
}

TEST_F(EvalTest, GroupByEmptyInputHasNoGroups) {
  ResultTable r =
      Run("select CountryCode, count(ID) from City where Population > "
          "99999999 group by CountryCode");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(EvalTest, Distinct) {
  ResultTable r = Run("select distinct Continent from Country");
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(EvalTest, DistinctLiteralProbe) {
  // Paper workload Q28 pattern: "select distinct 1 from ... where ..."
  ResultTable hit =
      Run("select distinct 1 from City where Population > 13000000");
  ASSERT_EQ(hit.rows.size(), 1u);
  EXPECT_EQ(hit.rows[0][0].as_int(), 1);
  ResultTable miss =
      Run("select distinct 1 from City where Population > 99999999");
  EXPECT_TRUE(miss.rows.empty());
}

TEST_F(EvalTest, LimitAfterCanonicalSort) {
  ResultTable r = Run("select Name from City limit 3");
  ASSERT_EQ(r.rows.size(), 3u);
  // Deterministic: lexicographically smallest three city names.
  EXPECT_EQ(r.rows[0][0].as_string(), "Berlin");
  EXPECT_EQ(r.rows[1][0].as_string(), "Delhi");
  EXPECT_EQ(r.rows[2][0].as_string(), "Los Angeles");
}

TEST_F(EvalTest, JoinImplicitStyle) {
  ResultTable r =
      Run("select Name from Country, CountryLanguage where Code = "
          "CountryCode and Language = 'English'");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].as_string(), "India");
  EXPECT_EQ(r.rows[1][0].as_string(), "United States");
}

TEST_F(EvalTest, JoinWithAliasesAndResidual) {
  ResultTable r =
      Run("select C.Name from Country C, CountryLanguage L where C.Code = "
          "L.CountryCode and L.Language = 'English' and L.Percentage >= 50");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_string(), "United States");
}

TEST_F(EvalTest, JoinSelectStarConcatenatesSchemas) {
  ResultTable r =
      Run("select * from Country, CountryLanguage where Code = CountryCode "
          "and Language = 'French'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].size(), 5u + 4u);
  EXPECT_EQ(r.rows[0][1].as_string(), "France");
  EXPECT_EQ(r.rows[0][6].as_string(), "French");
}

TEST_F(EvalTest, JoinWithAggregation) {
  ResultTable r =
      Run("select count(*) from Country, City where Code = CountryCode and "
          "Continent = 'Asia'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].as_int(), 4);  // Tokyo, Osaka, Mumbai, Delhi
}

TEST_F(EvalTest, BetweenPredicate) {
  ResultTable r =
      Run("select Name from Country where Population between 60000000 and "
          "130000000");
  EXPECT_EQ(r.rows.size(), 3u);  // FRA, DEU, JPN
}

TEST_F(EvalTest, LikePredicate) {
  ResultTable r = Run("select Name from Country where Name like '%an%'");
  // France? no. Germany, Japan: yes... 'United States' no, 'Germany' yes,
  // 'Japan' yes, 'France' contains 'an'? F-r-a-n-c-e -> "an" yes.
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(EvalTest, OrAndParens) {
  ResultTable r =
      Run("select Name from Country where (Continent = 'Asia' or Continent "
          "= 'Europe') and Population > 80000000");
  ASSERT_EQ(r.rows.size(), 3u);  // DEU 83M, JPN 125M, IND 1380M
}

TEST_F(EvalTest, ResultEqualsAndFingerprint) {
  ResultTable a = Run("select Name from Country where Continent = 'Asia'");
  ResultTable b = Run("select Name from Country where Continent = 'Asia'");
  EXPECT_TRUE(a.Equals(b));
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  ResultTable c = Run("select Name from Country where Continent = 'Europe'");
  EXPECT_FALSE(a.Equals(c));
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST_F(EvalTest, FingerprintIsOrderIndependentButRowSensitive) {
  ResultTable a, b;
  a.rows = {{Value::Int(1), Value::Int(2)}, {Value::Int(3), Value::Int(4)}};
  b.rows = {{Value::Int(3), Value::Int(4)}, {Value::Int(1), Value::Int(2)}};
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  ResultTable c;
  c.rows = {{Value::Int(2), Value::Int(1)}, {Value::Int(3), Value::Int(4)}};
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST_F(EvalTest, GroupByWithoutAggregatesDeduplicates) {
  ResultTable r = Run("select Continent from Country group by Continent");
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(EvalTest, AvgOfDoubles) {
  ResultTable r = Run("select avg(LifeExpectancy) from Country where "
                      "Continent = 'Europe'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][1 - 1].as_double(), (82.5 + 81.0) / 2.0);
}

// --- DeltaOverlay read path ------------------------------------------------
//
// Evaluate(query, db, overlay) must be bit-identical to mutating the
// overlaid cells in place, evaluating, and reverting — without ever
// writing to the database.

class OverlayEvalTest : public EvalTest {
 protected:
  // Reference semantics: apply the patch in place, evaluate, revert.
  ResultTable EvaluateInPlace(const BoundQuery& q, int table, int row,
                              int col, const Value& value) {
    Table& t = db_->table(table);
    Value saved = t.cell(row, col);
    t.SetCell(row, col, value);
    ResultTable result = Evaluate(q, *db_);
    t.SetCell(row, col, std::move(saved));
    return result;
  }

  void CheckOverlayMatchesInPlace(const std::string& sql, int table, int row,
                                  int col, Value value) {
    auto q = ParseQuery(sql, *db_);
    ASSERT_TRUE(q.ok()) << sql << " -> " << q.status();
    ResultTable in_place = EvaluateInPlace(*q, table, row, col, value);
    DeltaOverlay overlay(table, row, col, value);
    ResultTable overlaid = Evaluate(*q, *db_, overlay);
    EXPECT_TRUE(overlaid.Equals(in_place))
        << sql << " patch t" << table << " r" << row << " c" << col << " -> "
        << value.ToString() << "\noverlay:\n" << overlaid.ToString()
        << "in-place:\n" << in_place.ToString();
  }
};

TEST_F(OverlayEvalTest, LookupPrecedence) {
  DeltaOverlay overlay;
  EXPECT_TRUE(overlay.empty());
  overlay.Set(0, 1, 2, Value::Str("Asia"));
  EXPECT_FALSE(overlay.empty());
  // Patched cell reads the overlay; everything else falls through.
  EXPECT_EQ(overlay.Cell(*db_, 0, 1, 2).as_string(), "Asia");
  EXPECT_EQ(overlay.Cell(*db_, 0, 1, 1).as_string(), "France");
  EXPECT_EQ(overlay.Cell(*db_, 0, 2, 2).as_string(), "Europe");
  ASSERT_NE(overlay.Find(0, 1, 2), nullptr);
  EXPECT_EQ(overlay.Find(0, 1, 3), nullptr);
  EXPECT_TRUE(overlay.TouchesRow(0, 1));
  EXPECT_FALSE(overlay.TouchesRow(0, 2));
  EXPECT_TRUE(overlay.TouchesTable(0));
  EXPECT_FALSE(overlay.TouchesTable(1));
  // Set on the same cell replaces, never duplicates.
  overlay.Set(0, 1, 2, Value::Str("Oceania"));
  ASSERT_EQ(overlay.entries().size(), 1u);
  EXPECT_EQ(overlay.Cell(*db_, 0, 1, 2).as_string(), "Oceania");
  // The base database was never written.
  EXPECT_EQ(db_->table(0).cell(1, 2).as_string(), "Europe");
}

TEST_F(OverlayEvalTest, PatchedRowAppliesEveryEntryForTheRow) {
  DeltaOverlay overlay;
  overlay.Set(0, 3, 2, Value::Str("Oceania"));
  overlay.Set(0, 3, 3, Value::Int(1));
  overlay.Set(0, 0, 3, Value::Int(7));  // different row: not applied
  Row patched = overlay.PatchedRow(*db_, 0, 3);
  EXPECT_EQ(patched[2].as_string(), "Oceania");
  EXPECT_EQ(patched[3].as_int(), 1);
  EXPECT_EQ(patched[1].as_string(), "Japan");
}

TEST_F(OverlayEvalTest, MatchesInPlaceAcrossQueryShapes) {
  const char* queries[] = {
      "select * from Country",
      "select Name from Country where Continent = \'Europe\'",
      "select distinct Continent from Country",
      "select count(Name) from Country where Continent = \'Asia\'",
      "select Continent, count(Code) from Country group by Continent",
      "select CountryCode, sum(Population) from City group by CountryCode",
      "select avg(LifeExpectancy) from Country",  // double accumulation
      "select Name from City limit 3",            // LIMIT after canonical sort
      "select Name from Country, CountryLanguage where Code = CountryCode "
      "and Language = \'English\'",
  };
  struct Patch {
    int table, row, col;
    Value value;
  };
  const Patch patches[] = {
      {0, 1, 2, Value::Str("Asia")},        // France -> Asia
      {0, 3, 3, Value::Int(1)},             // Japan population
      {0, 0, 4, Value::Real(11.25)},        // USA life expectancy
      {1, 4, 3, Value::Int(99)},            // Tokyo population
      {2, 0, 0, Value::Str("FRA")},         // join key repoint
      {2, 6, 1, Value::Str("Tamil")},       // language rename
  };
  for (const char* sql : queries) {
    for (const Patch& p : patches) {
      CheckOverlayMatchesInPlace(sql, p.table, p.row, p.col, p.value);
    }
  }
}

TEST_F(OverlayEvalTest, GatherInputRowsSeesPatchedJoinKeys) {
  auto q = ParseQuery(
      "select Name from Country, CountryLanguage where Code = CountryCode "
      "and Language = \'English\'",
      *db_);
  ASSERT_TRUE(q.ok());
  // Repoint (USA, English) to FRA: France gains an English match.
  DeltaOverlay overlay(2, 0, 0, Value::Str("FRA"));
  std::vector<Row> base = GatherInputRows(*q, *db_);
  std::vector<Row> patched = GatherInputRows(*q, *db_, overlay);
  EXPECT_EQ(base.size(), patched.size());
  bool fra = false;
  for (const Row& r : patched) fra = fra || r[0].as_string() == "FRA";
  EXPECT_TRUE(fra);
}

}  // namespace
}  // namespace qp::db
