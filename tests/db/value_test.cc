#include "db/value.h"

#include <gtest/gtest.h>

namespace qp::db {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, FactoryTypes) {
  EXPECT_EQ(Value::Int(5).type(), ValueType::kInt);
  EXPECT_EQ(Value::Real(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::Str("x").type(), ValueType::kString);
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::Int(-7).as_int(), -7);
  EXPECT_DOUBLE_EQ(Value::Real(1.25).as_double(), 1.25);
  EXPECT_EQ(Value::Str("abc").as_string(), "abc");
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value::Int(3).ToNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).ToNumeric(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Null().ToNumeric(), 0.0);
}

TEST(ValueTest, CompareSameTypes) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(3).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::Str("a").Compare(Value::Str("b")), 0);
  EXPECT_EQ(Value::Str("a").Compare(Value::Str("a")), 0);
  EXPECT_LT(Value::Real(1.5).Compare(Value::Real(2.5)), 0);
}

TEST(ValueTest, CompareMixedNumerics) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Real(2.5)), 0);
  EXPECT_GT(Value::Real(2.5).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, TypeOrderingNullNumericString) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(999).Compare(Value::Str("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, EqualityOperators) {
  EXPECT_TRUE(Value::Int(2) == Value::Real(2.0));
  EXPECT_TRUE(Value::Int(2) != Value::Int(3));
  EXPECT_TRUE(Value::Int(2) < Value::Int(3));
}

TEST(ValueTest, HashConsistentWithEquality) {
  // int 2 == double 2.0 must hash identically.
  EXPECT_EQ(Value::Int(2).Hash(), Value::Real(2.0).Hash());
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_NE(Value::Int(1).Hash(), Value::Int(2).Hash());
  EXPECT_NE(Value::Str("1").Hash(), Value::Int(1).Hash());
  EXPECT_NE(Value::Null().Hash(), Value::Int(0).Hash());
}

TEST(ValueTest, HashOfFractionalDoubles) {
  EXPECT_EQ(Value::Real(2.5).Hash(), Value::Real(2.5).Hash());
  EXPECT_NE(Value::Real(2.5).Hash(), Value::Real(2.0).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Real(1.5).ToString(), "1.5");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
}

}  // namespace
}  // namespace qp::db
