#include "tests/testing/fault_proxy.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace qp::testing {
namespace {

/// Hard-reset close: SO_LINGER with zero timeout makes close() send RST
/// instead of FIN, so the peer sees ECONNRESET mid-stream.
void ResetClose(int fd) {
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  close(fd);
}

/// Blocking-ish write to a non-blocking fd: poll for POLLOUT on EAGAIN.
/// MSG_NOSIGNAL because the destination may already be gone.
bool WriteAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      int rc = poll(&pfd, 1, 1000);
      if (rc < 0 && errno == EINTR) continue;  // interrupted, not stuck
      if (rc <= 0) return false;               // timeout or hard error
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace

Status FaultProxy::Start() {
  if (started_) return Status::FailedPrecondition("FaultProxy already started");
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 16) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("proxy bind/listen failed: " +
                            std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void FaultProxy::Stop() {
  if (!started_) return;
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
  stopping_.store(false);
}

void FaultProxy::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    if (poll(&pfd, 1, 50) <= 0) continue;
    int client_fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client_fd < 0) continue;

    int server_fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in target{};
    target.sin_family = AF_INET;
    target.sin_port = htons(options_.target_port);
    if (server_fd < 0 ||
        inet_pton(AF_INET, options_.target_address.c_str(),
                  &target.sin_addr) != 1 ||
        connect(server_fd, reinterpret_cast<sockaddr*>(&target),
                sizeof(target)) != 0) {
      // Can't reach the real server: drop the client on the floor, which
      // is itself a fine fault to inject.
      if (server_fd >= 0) close(server_fd);
      close(client_fd);
      continue;
    }
    // Non-blocking after the (blocking) connect so PumpConn can poll.
    int flags = fcntl(server_fd, F_GETFL, 0);
    fcntl(server_fd, F_SETFL, flags | O_NONBLOCK);

    connections_.fetch_add(1);
    std::lock_guard<std::mutex> lock(threads_mutex_);
    conn_threads_.emplace_back(
        [this, client_fd, server_fd] { PumpConn(client_fd, server_fd); });
  }
}

bool FaultProxy::Forward(int dst, const char* data, size_t n) {
  size_t chunk = options_.chunk_bytes == 0 ? n : options_.chunk_bytes;
  size_t pos = 0;
  while (pos < n) {
    size_t take = std::min(chunk, n - pos);
    int copies = options_.duplicate_chunks ? 2 : 1;
    for (int c = 0; c < copies; ++c) {
      if (!WriteAll(dst, data + pos, take)) return false;
      bytes_forwarded_.fetch_add(take);
    }
    pos += take;
    if (options_.chunk_delay_us > 0 && pos < n) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.chunk_delay_us));
    }
  }
  return true;
}

void FaultProxy::PumpConn(int client_fd, int server_fd) {
  char buf[16 * 1024];
  size_t conn_forwarded = 0;
  while (!stopping_.load()) {
    if (options_.reset_after_bytes > 0 &&
        conn_forwarded >= options_.reset_after_bytes) {
      ResetClose(client_fd);
      ResetClose(server_fd);
      resets_injected_.fetch_add(1);
      return;
    }
    pollfd fds[2] = {{client_fd, POLLIN, 0}, {server_fd, POLLIN, 0}};
    int rc = poll(fds, 2, 50);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    bool dead = false;
    for (int i = 0; i < 2 && !dead; ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      int src = i == 0 ? client_fd : server_fd;
      int dst = i == 0 ? server_fd : client_fd;
      for (;;) {
        ssize_t n = read(src, buf, sizeof(buf));
        if (n > 0) {
          if (!Forward(dst, buf, static_cast<size_t>(n))) {
            dead = true;
            break;
          }
          conn_forwarded += static_cast<size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        dead = true;  // EOF or hard error on either side ends the pump
        break;
      }
    }
    if (dead) break;
  }
  close(client_fd);
  close(server_fd);
}

}  // namespace qp::testing
