// Shared numeric tolerances for the test suites. Every suite used to
// redeclare its own kTol; keep the values here so LP-backed and exact
// comparisons stay consistent across modules.
#ifndef QP_TESTS_TESTING_TOLERANCE_H_
#define QP_TESTS_TESTING_TOLERANCE_H_

namespace qp::testing {

/// Default tolerance for revenue / price comparisons.
inline constexpr double kTol = 1e-6;

/// Looser tolerance for quantities that pass through an LP solve.
inline constexpr double kLpTol = 1e-4;

/// Tight tolerance for bookkeeping identities (reported revenue vs the
/// pricing function re-evaluated on the same instance).
inline constexpr double kExactTol = 1e-9;

}  // namespace qp::testing

#endif  // QP_TESTS_TESTING_TOLERANCE_H_
