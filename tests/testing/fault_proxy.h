// Fault-injecting TCP proxy for RPC resilience tests.
//
// Sits between an RpcClient and an RpcServer on loopback and mangles
// the byte stream on the way through:
//
//  * chunk_bytes + chunk_delay_us — re-chunk the stream into tiny
//    writes with delays, so frames arrive torn across many reads
//    (exercises partial-frame reassembly and recv deadlines).
//  * reset_after_bytes — after forwarding N bytes (both directions
//    combined, per connection), close both sides with SO_LINGER(0) so
//    each peer sees a hard RST mid-stream (exercises reconnect paths
//    and the server's MSG_NOSIGNAL discipline).
//  * duplicate_chunks — write every forwarded chunk twice, corrupting
//    the length-prefixed stream (exercises protocol-error handling:
//    the server must drop the connection, not trust garbage).
//
// One thread per proxied connection polls both sockets; Stop() (also
// the destructor) tears everything down. Test-only: plain loopback
// sockets, no TLS, no backpressure beyond the kernel buffers.
#ifndef QP_TESTS_TESTING_FAULT_PROXY_H_
#define QP_TESTS_TESTING_FAULT_PROXY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace qp::testing {

struct FaultProxyOptions {
  /// Where to forward (the real server).
  std::string target_address = "127.0.0.1";
  uint16_t target_port = 0;
  /// Forward in chunks of this many bytes; 0 forwards whole reads.
  size_t chunk_bytes = 0;
  /// Microseconds to sleep between chunks (needs chunk_bytes > 0).
  int chunk_delay_us = 0;
  /// After this many forwarded bytes on a connection (both directions
  /// combined), RST both sides. 0 = never.
  size_t reset_after_bytes = 0;
  /// Write every chunk twice — corrupts the stream past the first
  /// duplicated byte.
  bool duplicate_chunks = false;
};

class FaultProxy {
 public:
  explicit FaultProxy(FaultProxyOptions options) : options_(options) {}
  ~FaultProxy() { Stop(); }

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// Binds an ephemeral loopback port (read it back via port()) and
  /// starts accepting.
  Status Start();
  /// Stops accepting, tears down every proxied connection, joins all
  /// threads. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

  struct Stats {
    uint64_t connections = 0;
    uint64_t bytes_forwarded = 0;
    uint64_t resets_injected = 0;
  };
  Stats stats() const {
    return {connections_.load(), bytes_forwarded_.load(),
            resets_injected_.load()};
  }

 private:
  void AcceptLoop();
  void PumpConn(int client_fd, int server_fd);
  /// Forwards `n` bytes applying the configured chunking/duplication;
  /// returns false when the destination died.
  bool Forward(int dst, const char* data, size_t n);

  FaultProxyOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread accept_thread_;
  std::mutex threads_mutex_;
  std::vector<std::thread> conn_threads_;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> bytes_forwarded_{0};
  std::atomic<uint64_t> resets_injected_{0};
};

}  // namespace qp::testing

#endif  // QP_TESTS_TESTING_FAULT_PROXY_H_
