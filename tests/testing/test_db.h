// Shared miniature database used across db/market tests: a 3-table
// world-like schema small enough to reason about by hand.
#ifndef QP_TESTS_TESTING_TEST_DB_H_
#define QP_TESTS_TESTING_TEST_DB_H_

#include <memory>

#include "db/database.h"

namespace qp::db::testing {

inline std::unique_ptr<Database> MakeTestDatabase() {
  auto db = std::make_unique<Database>();

  Table country("Country", Schema({{"Code", ValueType::kString},
                                   {"Name", ValueType::kString},
                                   {"Continent", ValueType::kString},
                                   {"Population", ValueType::kInt},
                                   {"LifeExpectancy", ValueType::kDouble}}));
  auto add_country = [&](const char* code, const char* name, const char* cont,
                         int64_t pop, double life) {
    QP_CHECK_OK(country.AppendRow({Value::Str(code), Value::Str(name),
                                   Value::Str(cont), Value::Int(pop),
                                   Value::Real(life)}));
  };
  add_country("USA", "United States", "North America", 331000000, 78.5);
  add_country("FRA", "France", "Europe", 67000000, 82.5);
  add_country("DEU", "Germany", "Europe", 83000000, 81.0);
  add_country("JPN", "Japan", "Asia", 125000000, 84.5);
  add_country("BRA", "Brazil", "South America", 213000000, 75.5);
  add_country("IND", "India", "Asia", 1380000000, 69.5);
  QP_CHECK_OK(db->AddTable(std::move(country)));

  Table city("City", Schema({{"ID", ValueType::kInt},
                             {"Name", ValueType::kString},
                             {"CountryCode", ValueType::kString},
                             {"Population", ValueType::kInt}}));
  auto add_city = [&](int64_t id, const char* name, const char* code,
                      int64_t pop) {
    QP_CHECK_OK(city.AppendRow(
        {Value::Int(id), Value::Str(name), Value::Str(code), Value::Int(pop)}));
  };
  add_city(1, "New York", "USA", 8400000);
  add_city(2, "Los Angeles", "USA", 3900000);
  add_city(3, "Paris", "FRA", 2100000);
  add_city(4, "Berlin", "DEU", 3600000);
  add_city(5, "Tokyo", "JPN", 13900000);
  add_city(6, "Osaka", "JPN", 2700000);
  add_city(7, "Sao Paulo", "BRA", 12300000);
  add_city(8, "Mumbai", "IND", 12400000);
  add_city(9, "Delhi", "IND", 11000000);
  QP_CHECK_OK(db->AddTable(std::move(city)));

  Table lang("CountryLanguage", Schema({{"CountryCode", ValueType::kString},
                                        {"Language", ValueType::kString},
                                        {"IsOfficial", ValueType::kString},
                                        {"Percentage", ValueType::kInt}}));
  auto add_lang = [&](const char* code, const char* language, const char* off,
                      int64_t pct) {
    QP_CHECK_OK(lang.AppendRow({Value::Str(code), Value::Str(language),
                                Value::Str(off), Value::Int(pct)}));
  };
  add_lang("USA", "English", "T", 86);
  add_lang("USA", "Spanish", "F", 10);
  add_lang("FRA", "French", "T", 93);
  add_lang("DEU", "German", "T", 91);
  add_lang("JPN", "Japanese", "T", 99);
  add_lang("BRA", "Portuguese", "T", 97);
  add_lang("IND", "Hindi", "T", 41);
  add_lang("IND", "English", "F", 12);
  QP_CHECK_OK(db->AddTable(std::move(lang)));

  return db;
}

}  // namespace qp::db::testing

#endif  // QP_TESTS_TESTING_TEST_DB_H_
