// Pinned-seed random pricing instances shared by the core / lp / market
// suites (previously copy-pasted into each test file).
#ifndef QP_TESTS_TESTING_RANDOM_INSTANCES_H_
#define QP_TESTS_TESTING_RANDOM_INSTANCES_H_

#include "common/rng.h"
#include "core/hypergraph.h"
#include "core/valuation.h"

namespace qp::testing {

/// Random hypergraph on `n` items with `m` non-empty edges of size
/// 1..max_edge (duplicate items within an edge are allowed; Hypergraph
/// dedupes). Empty edges are exercised by dedicated tests.
core::Hypergraph RandomHypergraph(Rng& rng, uint32_t n, int m, int max_edge);

/// `m` valuations drawn uniformly from [lo, hi).
core::Valuations RandomValuations(Rng& rng, int m, double lo = 0.5,
                                  double hi = 20);

}  // namespace qp::testing

#endif  // QP_TESTS_TESTING_RANDOM_INSTANCES_H_
