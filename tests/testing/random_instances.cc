#include "tests/testing/random_instances.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace qp::testing {

core::Hypergraph RandomHypergraph(Rng& rng, uint32_t n, int m, int max_edge) {
  core::Hypergraph h(n);
  for (int e = 0; e < m; ++e) {
    int size = static_cast<int>(rng.UniformInt(1, max_edge));
    std::vector<uint32_t> items;
    for (int s = 0; s < size; ++s) {
      items.push_back(static_cast<uint32_t>(rng.UniformInt(0, n - 1)));
    }
    h.AddEdge(std::move(items));
  }
  return h;
}

core::Valuations RandomValuations(Rng& rng, int m, double lo, double hi) {
  core::Valuations v(m);
  for (double& x : v) x = rng.UniformReal(lo, hi);
  return v;
}

}  // namespace qp::testing
