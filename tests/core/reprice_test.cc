// Incremental repricing (core/reprice.h): the seeded full solve matches
// RunAllAlgorithms, and RepriceAfterAppend matches a cold re-solve of the
// grown instance while provably doing less LP work.
#include "core/reprice.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/algorithms.h"
#include "tests/testing/random_instances.h"

namespace qp::core {
namespace {

// Options under which the incremental path is replay-identical to the
// cold reference: every LPIP threshold (no subsampling) solved standalone
// (chain_length 1), so a changed-candidate sweep builds exactly the LPs a
// full sweep would. CIP needs no special geometry — the incremental path
// replays RunCip on bit-equal refined classes.
AlgorithmOptions MatchedOptions() {
  AlgorithmOptions options;
  options.lpip.max_candidates = 0;
  options.lpip.chain_length = 1;
  options.lpip.num_threads = 1;
  options.cip.num_threads = 1;
  return options;
}

// Grows `h` by `extra` random edges whose valuations sit strictly below
// `ceiling`, so every pre-existing LPIP threshold keeps its family.
void AppendLowValuationBuyers(Rng& rng, Hypergraph& h, Valuations& v,
                              int extra, double ceiling) {
  const uint32_t n = h.num_items();
  for (int t = 0; t < extra; ++t) {
    int size = static_cast<int>(rng.UniformInt(1, 3));
    std::vector<uint32_t> items;
    for (int s = 0; s < size; ++s) {
      items.push_back(static_cast<uint32_t>(rng.UniformInt(0, n - 1)));
    }
    h.AddEdge(std::move(items));
    v.push_back(rng.UniformReal(0.2, ceiling));
  }
}

int TotalLps(const std::vector<PricingResult>& results) {
  int total = 0;
  for (const PricingResult& r : results) total += r.lps_solved;
  return total;
}

TEST(RepriceTest, SeededSolveMatchesRunAllAlgorithms) {
  for (uint64_t seed : {11u, 23u, 47u}) {
    Rng rng(seed);
    Hypergraph h = qp::testing::RandomHypergraph(rng, 14, 24, 4);
    Valuations v = qp::testing::RandomValuations(rng, 24, 5.0, 20.0);

    AlgorithmOptions options = MatchedOptions();
    std::vector<PricingResult> cold = RunAllAlgorithms(h, v, options);
    RepriceState state;
    std::vector<PricingResult> seeded = SolveAllWithState(h, v, options, state);

    ASSERT_EQ(cold.size(), seeded.size());
    for (size_t i = 0; i < cold.size(); ++i) {
      EXPECT_EQ(cold[i].algorithm, seeded[i].algorithm);
      EXPECT_DOUBLE_EQ(cold[i].revenue, seeded[i].revenue)
          << cold[i].algorithm << " seed " << seed;
      EXPECT_EQ(cold[i].lps_solved, seeded[i].lps_solved)
          << cold[i].algorithm << " seed " << seed;
    }
    EXPECT_EQ(state.generation, 1);
  }
}

TEST(RepriceTest, RepriceMatchesColdSolveOnGrownInstance) {
  for (uint64_t seed : {3u, 17u, 29u, 71u}) {
    Rng rng(seed);
    Hypergraph h = qp::testing::RandomHypergraph(rng, 14, 24, 4);
    Valuations v = qp::testing::RandomValuations(rng, 24, 5.0, 20.0);

    AlgorithmOptions options = MatchedOptions();
    RepriceState state;
    SolveAllWithState(h, v, options, state);

    const int first_new_edge = h.num_edges();
    AppendLowValuationBuyers(rng, h, v, 8, 3.0);
    std::vector<PricingResult> incremental =
        RepriceAfterAppend(h, v, first_new_edge, options, state);
    std::vector<PricingResult> cold = RunAllAlgorithms(h, v, options);

    ASSERT_EQ(cold.size(), incremental.size());
    for (size_t i = 0; i < cold.size(); ++i) {
      EXPECT_EQ(cold[i].algorithm, incremental[i].algorithm);
      EXPECT_NEAR(cold[i].revenue, incremental[i].revenue,
                  1e-9 * (1.0 + std::abs(cold[i].revenue)))
          << cold[i].algorithm << " seed " << seed;
    }
    // CIP replays the cold trajectory on bit-equal refined classes, so
    // its answer is not merely close — it is the same double.
    EXPECT_DOUBLE_EQ(cold[3].revenue, incremental[3].revenue)
        << "seed " << seed;
    EXPECT_EQ(state.generation, 2);
  }
}

TEST(RepriceTest, RepriceSolvesStrictlyFewerLps) {
  Rng rng(5);
  Hypergraph h = qp::testing::RandomHypergraph(rng, 14, 24, 4);
  Valuations v = qp::testing::RandomValuations(rng, 24, 5.0, 20.0);

  AlgorithmOptions options = MatchedOptions();
  RepriceState state;
  SolveAllWithState(h, v, options, state);

  const int first_new_edge = h.num_edges();
  AppendLowValuationBuyers(rng, h, v, 8, 3.0);
  std::vector<PricingResult> incremental =
      RepriceAfterAppend(h, v, first_new_edge, options, state);
  std::vector<PricingResult> cold = RunAllAlgorithms(h, v, options);

  EXPECT_LT(TotalLps(incremental), TotalLps(cold));
  EXPECT_EQ(state.last.lps_solved, TotalLps(incremental));
  // Every pre-append threshold sits above the appended valuations, so all
  // of them must have been answered from the retained book.
  EXPECT_GT(state.last.lpip_reused, 0);
  EXPECT_EQ(state.last.lpip_candidates - state.last.lpip_reused +
                state.last.lpip_winner_refreshes,
            incremental[2].lps_solved);
}

TEST(RepriceTest, SuccessiveAppendsStayConsistent) {
  Rng rng(9);
  Hypergraph h = qp::testing::RandomHypergraph(rng, 12, 18, 4);
  Valuations v = qp::testing::RandomValuations(rng, 18, 5.0, 20.0);

  AlgorithmOptions options = MatchedOptions();
  RepriceState state;
  SolveAllWithState(h, v, options, state);

  for (int round = 0; round < 3; ++round) {
    const int first_new_edge = h.num_edges();
    AppendLowValuationBuyers(rng, h, v, 4, 3.0);
    std::vector<PricingResult> incremental =
        RepriceAfterAppend(h, v, first_new_edge, options, state);
    std::vector<PricingResult> cold = RunAllAlgorithms(h, v, options);
    for (size_t i = 0; i < cold.size(); ++i) {
      EXPECT_NEAR(cold[i].revenue, incremental[i].revenue,
                  1e-9 * (1.0 + std::abs(cold[i].revenue)))
          << cold[i].algorithm << " round " << round;
    }
  }
  EXPECT_EQ(state.generation, 4);
}

TEST(RepriceTest, AppendWithHighValuationsStillMatches) {
  // Arrivals above existing thresholds change every family: nothing is
  // reusable, but results must still match the cold path.
  Rng rng(13);
  Hypergraph h = qp::testing::RandomHypergraph(rng, 12, 16, 4);
  Valuations v = qp::testing::RandomValuations(rng, 16, 2.0, 8.0);

  AlgorithmOptions options = MatchedOptions();
  RepriceState state;
  SolveAllWithState(h, v, options, state);

  const int first_new_edge = h.num_edges();
  for (int t = 0; t < 4; ++t) {
    std::vector<uint32_t> items = {
        static_cast<uint32_t>(rng.UniformInt(0, 11)),
        static_cast<uint32_t>(rng.UniformInt(0, 11))};
    h.AddEdge(std::move(items));
    v.push_back(rng.UniformReal(10.0, 30.0));
  }
  std::vector<PricingResult> incremental =
      RepriceAfterAppend(h, v, first_new_edge, options, state);
  std::vector<PricingResult> cold = RunAllAlgorithms(h, v, options);
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_NEAR(cold[i].revenue, incremental[i].revenue,
                1e-9 * (1.0 + std::abs(cold[i].revenue)))
        << cold[i].algorithm;
  }
  EXPECT_EQ(state.last.lpip_reused, 0);
}

TEST(RepriceTest, PricingResultCloneIsDeep) {
  Rng rng(21);
  Hypergraph h = qp::testing::RandomHypergraph(rng, 8, 10, 3);
  Valuations v = qp::testing::RandomValuations(rng, 10, 1.0, 9.0);
  PricingResult original = RunLpip(h, v);
  PricingResult copy = original.Clone();
  ASSERT_NE(copy.pricing, nullptr);
  EXPECT_NE(copy.pricing.get(), original.pricing.get());
  EXPECT_EQ(copy.algorithm, original.algorithm);
  EXPECT_DOUBLE_EQ(copy.revenue, original.revenue);
  EXPECT_EQ(copy.lps_solved, original.lps_solved);
  for (int e = 0; e < h.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(copy.pricing->Price(h.edge(e)),
                     original.pricing->Price(h.edge(e)));
  }
  // Destroying the original must leave the clone usable (deep copy).
  original = PricingResult{};
  EXPECT_GE(copy.pricing->Price(h.edge(0)), 0.0);
}

}  // namespace
}  // namespace qp::core
