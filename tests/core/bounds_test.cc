#include "core/bounds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/algorithms.h"
#include "core/lower_bounds.h"
#include "tests/testing/random_instances.h"
#include "tests/testing/tolerance.h"

namespace qp::core {
namespace {

using qp::testing::kTol;

TEST(SumOfValuationsTest, Sums) {
  EXPECT_DOUBLE_EQ(SumOfValuations({1, 2, 3.5}), 6.5);
  EXPECT_DOUBLE_EQ(SumOfValuations({}), 0.0);
}

TEST(SubadditiveBoundTest, PrivateItemsMakeBoundTight) {
  // Disjoint edges: every edge has private items, no cover constraints
  // exist, so the bound equals the sum of valuations (which is achievable).
  Hypergraph h(6);
  h.AddEdge({0, 1});
  h.AddEdge({2, 3});
  h.AddEdge({4, 5});
  Valuations v{3, 4, 5};
  EXPECT_NEAR(SubadditiveBound(h, v), 12.0, kTol);
}

TEST(SubadditiveBoundTest, CoverConstraintBites) {
  // Edge {0,1} with huge value covered by cheap {0} and {1}: its bound
  // price collapses to the sum of the small ones.
  Hypergraph h(2);
  h.AddEdge({0});
  h.AddEdge({1});
  h.AddEdge({0, 1});
  Valuations v{1, 1, 100};
  double bound = SubadditiveBound(h, v);
  // p_big <= p_0 + p_1 <= 2, so bound <= 1 + 1 + 2 = 4 (vs sum = 102).
  EXPECT_NEAR(bound, 4.0, kTol);
}

TEST(SubadditiveBoundTest, NeverExceedsSumOfValuations) {
  // Note: the paper's greedy-cover bound is a *heuristic* estimate of the
  // optimal subadditive revenue. The paper itself observes it can fall
  // short ("the subadditive bound not being as good as it should be",
  // Section 6.3), so the only universal invariant is <= sum(v).
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    Hypergraph h = testing::RandomHypergraph(rng, 12, 10, 4);
    Valuations v = testing::RandomValuations(rng, h.num_edges(), 0.5, 10);
    double bound = SubadditiveBound(h, v);
    EXPECT_LE(bound, SumOfValuations(v) + kTol);
    EXPECT_GE(bound, 0.0);
  }
}

TEST(SubadditiveBoundTest, ConstraintBudgetRespected) {
  Hypergraph h(2);
  h.AddEdge({0});
  h.AddEdge({1});
  h.AddEdge({0, 1});
  Valuations v{1, 1, 100};
  SubadditiveBoundOptions opts;
  opts.max_constraints = 0;  // default: all
  EXPECT_NEAR(SubadditiveBound(h, v, opts), 4.0, kTol);
}

TEST(SubadditiveBoundTest, EmptyEdgesContributeTheirValue) {
  // An empty edge has no cover; its price is bounded only by v_e.
  Hypergraph h(1);
  h.AddEdge({});
  h.AddEdge({0});
  Valuations v{5, 2};
  EXPECT_NEAR(SubadditiveBound(h, v), 7.0, kTol);
}

// --- Lower-bound gap instances (Lemmas 2-4) -----------------------------

TEST(Lemma2Test, UniformBundleGapGrowsLogarithmically) {
  GapInstance inst = MakeLemma2Instance(256);
  EXPECT_EQ(inst.hypergraph.num_edges(), 256);
  // OPT = H_256 ~ 6.12; any uniform bundle price gets < 1 + ln(...)/...:
  // the lemma's bound says O(1) — concretely at most 1 here (price 1/c
  // sells <= c edges for revenue <= 1).
  PricingResult ubp = RunUbp(inst.hypergraph, inst.valuations);
  EXPECT_LE(ubp.revenue, 1.0 + kTol);
  EXPECT_GE(inst.optimal_revenue, 6.1);
  // Item pricing recovers everything (additive instance).
  PricingResult lpip = RunLpip(inst.hypergraph, inst.valuations);
  EXPECT_NEAR(lpip.revenue, inst.optimal_revenue, 1e-4);
}

TEST(Lemma3Test, ItemPricingCappedAtLinearRevenue) {
  const int n = 32;
  GapInstance inst = MakeLemma3Instance(n);
  // m = sum ceil(n/i) ~ n ln n edges, all valued 1.
  EXPECT_NEAR(inst.optimal_revenue,
              static_cast<double>(inst.hypergraph.num_edges()), kTol);
  // Uniform bundle price 1 extracts everything.
  PricingResult ubp = RunUbp(inst.hypergraph, inst.valuations);
  EXPECT_NEAR(ubp.revenue, inst.optimal_revenue, kTol);
  // Item pricings are stuck at O(n): allow the lemma's constant slack.
  PricingResult uip = RunUip(inst.hypergraph, inst.valuations);
  EXPECT_LE(uip.revenue, 3.0 * n);
}

TEST(Lemma4Test, LaminarInstanceShape) {
  const int t = 4;
  GapInstance inst = MakeLemma4Instance(t);
  EXPECT_EQ(inst.hypergraph.num_items(), 16u);
  // m = sum over depth of 2^l copies-per-set * sets: copies 2^l 3^(t-l).
  int expected_edges = 0;
  for (int l = 0; l <= t; ++l) {
    expected_edges += (1 << l) * (1 << l) * static_cast<int>(std::pow(3, t - l));
  }
  EXPECT_EQ(inst.hypergraph.num_edges(), expected_edges);
  EXPECT_NEAR(inst.optimal_revenue, (t + 1) * std::pow(3, t), kTol);
}

TEST(Lemma4Test, BothSimpleFamiliesLoseLogFactor) {
  const int t = 5;
  GapInstance inst = MakeLemma4Instance(t);
  double pow3t = std::pow(3.0, t);
  PricingResult ubp = RunUbp(inst.hypergraph, inst.valuations);
  PricingResult uip = RunUip(inst.hypergraph, inst.valuations);
  // Appendix A: both are O(3^t) while OPT = (t+1) 3^t. Exact constants:
  // UBP revenue at price (3/4)^k is 3^{t+1}(4/3 - (3/4)^k) < 4 * 3^t;
  // uniform item pricing tops out below 3 * 3^t.
  EXPECT_LE(ubp.revenue, 4.0 * pow3t + kTol);
  EXPECT_LE(uip.revenue, 3.0 * pow3t + kTol);
  EXPECT_NEAR(inst.optimal_revenue, (t + 1) * pow3t, kTol);
  // And they do extract a constant fraction of 3^t.
  EXPECT_GE(ubp.revenue, pow3t - kTol);
}

}  // namespace
}  // namespace qp::core
