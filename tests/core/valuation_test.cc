#include "core/valuation.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace qp::core {
namespace {

Hypergraph SizedEdges() {
  Hypergraph h(16);
  h.AddEdge({0});                    // size 1
  h.AddEdge({0, 1, 2, 3});           // size 4
  h.AddEdge({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});  // 16
  h.AddEdge({});                     // empty
  return h;
}

TEST(ValuationTest, UniformRange) {
  Hypergraph h = SizedEdges();
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    Valuations v = SampleUniformValuations(h, 100, rng);
    ASSERT_EQ(v.size(), 4u);
    for (double x : v) {
      EXPECT_GE(x, 1.0);
      EXPECT_LE(x, 100.0);
    }
  }
}

TEST(ValuationTest, UniformMean) {
  Hypergraph h = SizedEdges();
  Rng rng(2);
  double sum = 0;
  const int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    sum += SampleUniformValuations(h, 100, rng)[0];
  }
  EXPECT_NEAR(sum / kTrials, 50.5, 1.0);
}

TEST(ValuationTest, ZipfIntegersInRange) {
  Hypergraph h = SizedEdges();
  Rng rng(3);
  Valuations v = SampleZipfValuations(h, 2.0, rng);
  for (double x : v) {
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 1e6);
    EXPECT_DOUBLE_EQ(x, std::floor(x));  // integer support
  }
}

TEST(ValuationTest, ZipfSkewsTowardOne) {
  Hypergraph h = SizedEdges();
  Rng rng(4);
  int ones = 0;
  const int kTrials = 5000;
  for (int t = 0; t < kTrials; ++t) {
    Valuations v = SampleZipfValuations(h, 2.5, rng);
    ones += (v[0] == 1.0);
  }
  EXPECT_GT(ones, kTrials / 2);  // zeta(2.5): P(1) ~ 0.75
}

TEST(ValuationTest, ExponentialScalesWithEdgeSize) {
  Hypergraph h = SizedEdges();
  Rng rng(5);
  double sum1 = 0, sum16 = 0;
  const int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    Valuations v = ScaleExponentialValuations(h, 1.0, rng);
    EXPECT_DOUBLE_EQ(v[3], 0.0);  // empty edge
    sum1 += v[0];
    sum16 += v[2];
  }
  EXPECT_NEAR(sum1 / kTrials, 1.0, 0.05);    // mean |e|^1 = 1
  EXPECT_NEAR(sum16 / kTrials, 16.0, 0.5);   // mean 16
}

TEST(ValuationTest, ExponentialKappaExponent) {
  Hypergraph h = SizedEdges();
  Rng rng(6);
  double sum4 = 0;
  const int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    sum4 += ScaleExponentialValuations(h, 2.0, rng)[1];  // |e|=4 -> mean 16
  }
  EXPECT_NEAR(sum4 / kTrials, 16.0, 0.5);
}

TEST(ValuationTest, NormalScalesAndClamps) {
  Hypergraph h = SizedEdges();
  Rng rng(7);
  double sum = 0;
  const int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    Valuations v = ScaleNormalValuations(h, 1.0, rng);
    EXPECT_DOUBLE_EQ(v[3], 0.0);
    for (double x : v) EXPECT_GE(x, 0.0);
    sum += v[2];  // mu = 16, sigma^2 = 10
  }
  EXPECT_NEAR(sum / kTrials, 16.0, 0.25);
}

TEST(ValuationTest, FractionalKappa) {
  Hypergraph h = SizedEdges();
  Rng rng(8);
  double sum = 0;
  const int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    sum += ScaleNormalValuations(h, 0.5, rng)[1];  // mu = sqrt(4) = 2
  }
  // Clamping N(2, 10) at zero shifts the mean up:
  // E[max(0,X)] = mu Phi(mu/sigma) + sigma phi(mu/sigma) ~ 2.508.
  EXPECT_NEAR(sum / kTrials, 2.508, 0.15);
}

TEST(ValuationTest, AdditiveModelSumsItemPrices) {
  Hypergraph h = SizedEdges();
  Rng rng(9);
  Valuations v = AdditiveItemValuations(h, LevelDistribution::kUniform, 10, rng);
  // Each item price is in [1, 11]; sizes 1/4/16/0.
  EXPECT_GE(v[0], 1.0);
  EXPECT_LE(v[0], 11.0);
  EXPECT_GE(v[1], 4.0);
  EXPECT_LE(v[1], 44.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
  // The size-16 edge contains the size-4 edge: additive => strictly more.
  EXPECT_GT(v[2], v[1]);
}

TEST(ValuationTest, AdditiveModelBinomialLevels) {
  Hypergraph h = SizedEdges();
  Rng rng(10);
  double sum = 0;
  const int kTrials = 5000;
  for (int t = 0; t < kTrials; ++t) {
    Valuations v =
        AdditiveItemValuations(h, LevelDistribution::kBinomial, 10, rng);
    sum += v[0];
  }
  // Level ~ Binomial(10, .5): mean 5; price ~ level + 0.5.
  EXPECT_NEAR(sum / kTrials, 5.5, 0.2);
}

TEST(ValuationTest, DeterministicGivenSeed) {
  Hypergraph h = SizedEdges();
  Rng a(42), b(42);
  EXPECT_EQ(SampleUniformValuations(h, 50, a),
            SampleUniformValuations(h, 50, b));
  Rng c(42), d(42);
  EXPECT_EQ(AdditiveItemValuations(h, LevelDistribution::kBinomial, 8, c),
            AdditiveItemValuations(h, LevelDistribution::kBinomial, 8, d));
}

}  // namespace
}  // namespace qp::core
