// Brute-force cross-checks of the paper's approximation guarantees on
// pinned-seed random instances small enough (n <= 8 items, m <= 6 edges)
// for the exact oracles in core/brute_force.h.
//
// For every algorithm we assert (a) revenue never exceeds the welfare
// upper bound sum(v), (b) revenue never exceeds the brute-force optimum
// of its pricing class, and (c) revenue reaches the paper-stated fraction
// of the brute-force optimum:
//
//   UBP       exact for uniform bundle prices; >= sum(v)/H_m   (Lemma 1)
//   UIP       exact for uniform item prices; >= OPT/(H_n + H_m)
//             (Guruswami et al. single-price guarantee)
//   LPIP      >= OPT/H_m over item pricings                    (Theorem 2)
//   CIP       >= OPT/((1+eps) * 2 * H_B) over item pricings
//             (Cheung & Swamy, eps = 1 default grid)
//   Layering  >= sum(v)/B >= OPT/B                             (Theorem 1)
//   XOS       dominates its components pointwise; bounded by sum(v)
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/algorithms.h"
#include "core/bounds.h"
#include "core/brute_force.h"
#include "tests/testing/random_instances.h"
#include "tests/testing/tolerance.h"

namespace qp::core {
namespace {

using qp::testing::kLpTol;
using qp::testing::kTol;
using qp::testing::RandomHypergraph;
using qp::testing::RandomValuations;

double Harmonic(int k) {
  double h = 0;
  for (int i = 1; i <= k; ++i) h += 1.0 / i;
  return h;
}

class ApproximationGuaranteeTest : public ::testing::TestWithParam<int> {};

TEST_P(ApproximationGuaranteeTest, AllAlgorithmsMeetPaperBounds) {
  Rng rng(9000 + GetParam());
  const uint32_t n = 4 + static_cast<uint32_t>(rng.UniformInt(0, 4));  // <= 8
  const int m = 2 + static_cast<int>(rng.UniformInt(0, 4));            // <= 6
  Hypergraph h = RandomHypergraph(rng, n, m, 3);
  Valuations v = RandomValuations(rng, h.num_edges());

  const double welfare = SumOfValuations(v);
  const double opt_bundle = BruteForceUniformBundleRevenue(v);
  const double opt_item = BruteForceItemPricingRevenue(h, v);
  const double opt = std::max(opt_bundle, opt_item);
  const int b = static_cast<int>(h.MaxDegree());
  ASSERT_GE(b, 1);

  auto results = RunAllAlgorithms(h, v);
  ASSERT_EQ(results.size(), 6u);
  for (const auto& r : results) {
    EXPECT_GE(r.revenue, -kTol) << r.algorithm;
    EXPECT_LE(r.revenue, welfare + kTol) << r.algorithm << ": beyond welfare";
  }

  // Pin the slots to names so a future reorder of RunAllAlgorithms cannot
  // silently check a bound against the wrong algorithm.
  ASSERT_EQ(results[0].algorithm, "UBP");
  ASSERT_EQ(results[1].algorithm, "UIP");
  ASSERT_EQ(results[2].algorithm, "LPIP");
  ASSERT_EQ(results[3].algorithm, "CIP");
  ASSERT_EQ(results[4].algorithm, "Layering");
  ASSERT_EQ(results[5].algorithm, "XOS");
  const PricingResult& ubp = results[0];
  const PricingResult& uip = results[1];
  const PricingResult& lpip = results[2];
  const PricingResult& cip = results[3];
  const PricingResult& layering = results[4];
  const PricingResult& xos = results[5];

  // UBP is exactly optimal among uniform bundle prices, and Lemma 1 gives
  // the logarithmic fraction of welfare (hence of any optimum).
  EXPECT_NEAR(ubp.revenue, opt_bundle, kTol);
  EXPECT_GE(ubp.revenue, welfare / Harmonic(m) - kTol);
  EXPECT_GE(ubp.revenue, opt / Harmonic(m) - kTol);

  // UIP is exactly optimal among uniform item prices and meets the
  // single-price logarithmic guarantee against the item-pricing optimum.
  EXPECT_NEAR(uip.revenue, BruteForceUniformItemRevenue(h, v), kTol);
  EXPECT_LE(uip.revenue, opt_item + kLpTol);
  EXPECT_GE(uip.revenue,
            opt_item / (Harmonic(static_cast<int>(n)) + Harmonic(m)) - kTol);

  // LPIP: item pricing, O(log m) fraction of the item-pricing optimum.
  EXPECT_LE(lpip.revenue, opt_item + kLpTol);
  EXPECT_GE(lpip.revenue, opt_item / Harmonic(m) - kLpTol);

  // CIP: item pricing; guarantee degrades with the capacity grid (eps = 1)
  // and the max degree B.
  EXPECT_LE(cip.revenue, opt_item + kLpTol);
  EXPECT_GE(cip.revenue, opt_item / (2.0 * 2.0 * Harmonic(b)) - kLpTol);

  // Layering: B-approximation via the layer that carries sum(v)/B.
  EXPECT_LE(layering.revenue, opt_item + kLpTol);
  EXPECT_GE(layering.revenue, welfare / b - kTol);
  EXPECT_GE(layering.revenue, opt / b - kTol);

  // XOS prices dominate both components pointwise. Note XOS pricings form
  // a strictly richer class than additive item pricings, so revenue may
  // exceed opt_item (it does on some seeds); only the welfare bound
  // (checked above) applies.
  const auto& lpip_prices = *lpip.pricing;
  const auto& cip_prices = *cip.pricing;
  for (int e = 0; e < h.num_edges(); ++e) {
    double px = xos.pricing->Price(h.edge(e));
    EXPECT_GE(px, lpip_prices.Price(h.edge(e)) - kTol);
    EXPECT_GE(px, cip_prices.Price(h.edge(e)) - kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(PinnedSeeds, ApproximationGuaranteeTest,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace qp::core
