#include "core/hypergraph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/testing/random_instances.h"

namespace qp::core {
namespace {

Hypergraph Diamond() {
  // 4 items; edges {0,1}, {1,2}, {2,3}, {0,1,2,3}, {} (one empty).
  Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({2, 3});
  h.AddEdge({0, 1, 2, 3});
  h.AddEdge({});
  return h;
}

TEST(HypergraphTest, BasicCounts) {
  Hypergraph h = Diamond();
  EXPECT_EQ(h.num_items(), 4u);
  EXPECT_EQ(h.num_edges(), 5);
  EXPECT_EQ(h.edge_size(0), 2);
  EXPECT_EQ(h.edge_size(4), 0);
}

TEST(HypergraphTest, AddEdgeSortsAndDedupes) {
  Hypergraph h(5);
  int e = h.AddEdge({3, 1, 3, 0});
  EXPECT_EQ(h.edge(e), (std::vector<uint32_t>{0, 1, 3}));
}

TEST(HypergraphTest, Degrees) {
  Hypergraph h = Diamond();
  auto deg = h.ItemDegrees();
  EXPECT_EQ(deg, (std::vector<uint32_t>{2, 3, 3, 2}));
  EXPECT_EQ(h.MaxDegree(), 3u);
}

TEST(HypergraphTest, EdgeSizeStats) {
  Hypergraph h = Diamond();
  EXPECT_EQ(h.MaxEdgeSize(), 4u);
  EXPECT_DOUBLE_EQ(h.AvgEdgeSize(), (2 + 2 + 2 + 4 + 0) / 5.0);
}

TEST(HypergraphTest, UniqueItemEdges) {
  Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({3});
  // {0,1} via item 0, {1,2} via item 2, {3} via item 3.
  EXPECT_EQ(h.NumEdgesWithUniqueItem(), 3);
  Hypergraph h2(2);
  h2.AddEdge({0, 1});
  h2.AddEdge({0, 1});
  EXPECT_EQ(h2.NumEdgesWithUniqueItem(), 0);  // duplicates share everything
}

TEST(HypergraphTest, EmptyHypergraphStats) {
  Hypergraph h(0);
  EXPECT_EQ(h.MaxDegree(), 0u);
  EXPECT_DOUBLE_EQ(h.AvgEdgeSize(), 0.0);
}

TEST(ItemClassesTest, IdenticalItemsMerge) {
  // Items 0 and 1 always co-occur; 2 alone; 3 in no edge.
  Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({0, 1, 2});
  ItemClasses classes = ItemClasses::Compute(h);
  EXPECT_EQ(classes.num_classes(), 2u);
  EXPECT_EQ(classes.class_of_item[0], classes.class_of_item[1]);
  EXPECT_NE(classes.class_of_item[0], classes.class_of_item[2]);
  EXPECT_EQ(classes.class_of_item[3], ItemClasses::kNoClass);
  EXPECT_EQ(classes.class_size[classes.class_of_item[0]], 2u);
  EXPECT_EQ(classes.class_size[classes.class_of_item[2]], 1u);
}

TEST(ItemClassesTest, EdgeClassesCoverEdges) {
  Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({0, 1, 2});
  h.AddEdge({});
  ItemClasses classes = ItemClasses::Compute(h);
  EXPECT_EQ(classes.edge_classes[0].size(), 1u);
  EXPECT_EQ(classes.edge_classes[1].size(), 2u);
  EXPECT_TRUE(classes.edge_classes[2].empty());
}

TEST(ItemClassesTest, DistinctSignaturesStaySeparate) {
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  ItemClasses classes = ItemClasses::Compute(h);
  EXPECT_EQ(classes.num_classes(), 3u);  // {0}, {1}, {2} all differ
}

TEST(ItemClassesTest, ExpandClassWeightsSplitsEvenly) {
  Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({0, 1, 2});
  ItemClasses classes = ItemClasses::Compute(h);
  std::vector<double> class_weights(classes.num_classes(), 0.0);
  class_weights[classes.class_of_item[0]] = 6.0;  // class {0,1}
  class_weights[classes.class_of_item[2]] = 5.0;  // class {2}
  auto weights = classes.ExpandClassWeights(class_weights, 4);
  EXPECT_DOUBLE_EQ(weights[0], 3.0);
  EXPECT_DOUBLE_EQ(weights[1], 3.0);
  EXPECT_DOUBLE_EQ(weights[2], 5.0);
  EXPECT_DOUBLE_EQ(weights[3], 0.0);
  // Edge prices are preserved: edge {0,1} costs 6, edge {0,1,2} costs 11.
}

TEST(HypergraphTest, IncidenceMergesAppendedEdges) {
  Hypergraph h(5);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2, 3});
  const ItemIncidence& first = h.incidence();  // cold build
  EXPECT_EQ(first.degree(1), 2);
  EXPECT_EQ(h.incidence_maintenance().full_builds, 1);

  h.AddEdge({0, 3});
  h.AddEdge({});
  h.AddEdge({2, 4});
  const ItemIncidence& merged = h.incidence();  // merge, not rebuild
  EXPECT_EQ(h.incidence_maintenance().full_builds, 1);
  EXPECT_EQ(h.incidence_maintenance().merges, 1);

  // The merged index must equal a from-scratch build of the same graph.
  Hypergraph fresh(5);
  for (int e = 0; e < h.num_edges(); ++e) fresh.AddEdge(h.edge(e));
  const ItemIncidence& rebuilt = fresh.incidence();
  EXPECT_EQ(merged.start, rebuilt.start);
  EXPECT_EQ(merged.edge, rebuilt.edge);
  // And within every item, edge ids stay ascending.
  for (uint32_t j = 0; j < 5; ++j) {
    EXPECT_TRUE(std::is_sorted(merged.begin(j), merged.end(j))) << j;
  }
}

TEST(HypergraphTest, IncidenceMergeIsRepeatable) {
  Rng rng(77);
  Hypergraph h = qp::testing::RandomHypergraph(rng, 20, 15, 5);
  h.incidence();
  for (int round = 0; round < 3; ++round) {
    for (int t = 0; t < 4; ++t) {
      std::vector<uint32_t> items;
      int size = static_cast<int>(rng.UniformInt(0, 4));  // empties too
      for (int s = 0; s < size; ++s) {
        items.push_back(static_cast<uint32_t>(rng.UniformInt(0, 19)));
      }
      h.AddEdge(std::move(items));
    }
    const ItemIncidence& merged = h.incidence();
    Hypergraph fresh(20);
    for (int e = 0; e < h.num_edges(); ++e) fresh.AddEdge(h.edge(e));
    const ItemIncidence& rebuilt = fresh.incidence();
    ASSERT_EQ(merged.start, rebuilt.start) << "round " << round;
    ASSERT_EQ(merged.edge, rebuilt.edge) << "round " << round;
  }
  EXPECT_EQ(h.incidence_maintenance().full_builds, 1);
  EXPECT_EQ(h.incidence_maintenance().merges, 3);
}

void ExpectClassesEqual(const ItemClasses& a, const ItemClasses& b) {
  EXPECT_EQ(a.class_of_item, b.class_of_item);
  EXPECT_EQ(a.class_size, b.class_size);
  EXPECT_EQ(a.class_rep, b.class_rep);
  EXPECT_EQ(a.edge_classes, b.edge_classes);
}

TEST(ItemClassesTest, RefineMatchesComputeOnSplit) {
  // Items 0 and 1 share every edge until a new edge separates them.
  Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({0, 1, 2});
  ItemClasses refined = ItemClasses::Compute(h);
  ASSERT_EQ(refined.num_classes(), 2u);

  int first_new = h.num_edges();
  h.AddEdge({1, 3});  // splits {0,1}; first appearance of 3
  refined.Refine(h, first_new);
  ExpectClassesEqual(refined, ItemClasses::Compute(h));
  EXPECT_EQ(refined.num_classes(), 4u);  // {0}, {1}, {2}, {3}
}

TEST(ItemClassesTest, RefineHandlesWholeClassAndEmptyEdges) {
  Hypergraph h(5);
  h.AddEdge({0, 1});
  h.AddEdge({2, 3});
  ItemClasses refined = ItemClasses::Compute(h);

  int first_new = h.num_edges();
  h.AddEdge({0, 1});  // whole class {0,1} extends, no split
  h.AddEdge({});      // empty edge
  refined.Refine(h, first_new);
  ExpectClassesEqual(refined, ItemClasses::Compute(h));

  first_new = h.num_edges();
  h.AddEdge({});  // append of only empty edges
  refined.Refine(h, first_new);
  ExpectClassesEqual(refined, ItemClasses::Compute(h));
}

TEST(ItemClassesTest, RefineMatchesComputeOnRandomAppends) {
  for (uint64_t seed : {1u, 8u, 31u}) {
    Rng rng(seed);
    Hypergraph h = qp::testing::RandomHypergraph(rng, 24, 20, 5);
    ItemClasses refined = ItemClasses::Compute(h);
    for (int round = 0; round < 4; ++round) {
      int first_new = h.num_edges();
      int extra = static_cast<int>(rng.UniformInt(1, 5));
      for (int t = 0; t < extra; ++t) {
        std::vector<uint32_t> items;
        int size = static_cast<int>(rng.UniformInt(0, 5));
        for (int s = 0; s < size; ++s) {
          items.push_back(static_cast<uint32_t>(rng.UniformInt(0, 23)));
        }
        h.AddEdge(std::move(items));
      }
      refined.Refine(h, first_new);
      ItemClasses fresh = ItemClasses::Compute(h);
      ASSERT_EQ(refined.class_of_item, fresh.class_of_item)
          << "seed " << seed << " round " << round;
      ASSERT_EQ(refined.class_size, fresh.class_size);
      ASSERT_EQ(refined.class_rep, fresh.class_rep);
      ASSERT_EQ(refined.edge_classes, fresh.edge_classes);
    }
  }
}

TEST(ItemClassesTest, CompressionPreservesEdgePrices) {
  Hypergraph h(6);
  h.AddEdge({0, 1, 2});
  h.AddEdge({0, 1, 2, 3});
  h.AddEdge({3, 4, 5});
  ItemClasses classes = ItemClasses::Compute(h);
  std::vector<double> class_weights(classes.num_classes());
  for (size_t c = 0; c < class_weights.size(); ++c) {
    class_weights[c] = static_cast<double>(c + 1);
  }
  auto weights = classes.ExpandClassWeights(class_weights, 6);
  for (int e = 0; e < h.num_edges(); ++e) {
    double by_item = 0.0;
    for (uint32_t j : h.edge(e)) by_item += weights[j];
    double by_class = 0.0;
    for (uint32_t cls : classes.edge_classes[e]) by_class += class_weights[cls];
    EXPECT_NEAR(by_item, by_class, 1e-12);
  }
}

}  // namespace
}  // namespace qp::core
