#include "core/pricing.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/algorithms.h"
#include "lp/simplex.h"
#include "tests/testing/random_instances.h"

namespace qp::core {
namespace {

TEST(UniformBundlePricingTest, ConstantPrice) {
  UniformBundlePricing p(7.5);
  EXPECT_DOUBLE_EQ(p.Price({0, 1, 2}), 7.5);
  EXPECT_DOUBLE_EQ(p.Price({}), 7.5);
  EXPECT_DOUBLE_EQ(p.bundle_price(), 7.5);
}

TEST(ItemPricingTest, SumsWeights) {
  ItemPricing p({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(p.Price({0, 2}), 5.0);
  EXPECT_DOUBLE_EQ(p.Price({}), 0.0);
  EXPECT_DOUBLE_EQ(p.Price({0, 1, 2}), 7.0);
}

TEST(XosPricingTest, TakesMaxComponent) {
  XosPricing p({{1.0, 0.0, 0.0}, {0.0, 0.0, 2.0}});
  EXPECT_DOUBLE_EQ(p.Price({0}), 1.0);
  EXPECT_DOUBLE_EQ(p.Price({2}), 2.0);
  EXPECT_DOUBLE_EQ(p.Price({0, 2}), 2.0);  // max(1, 2)
  EXPECT_DOUBLE_EQ(p.Price({}), 0.0);
}

TEST(XosPricingTest, DominatesComponentsPointwise) {
  XosPricing xos({{1.0, 3.0}, {2.0, 1.0}});
  ItemPricing a({1.0, 3.0}), b({2.0, 1.0});
  for (std::vector<uint32_t> bundle :
       {std::vector<uint32_t>{0}, {1}, {0, 1}}) {
    EXPECT_GE(xos.Price(bundle), a.Price(bundle) - 1e-12);
    EXPECT_GE(xos.Price(bundle), b.Price(bundle) - 1e-12);
  }
}

TEST(RevenueTest, CountsOnlySoldBundles) {
  Hypergraph h(3);
  h.AddEdge({0});
  h.AddEdge({1});
  h.AddEdge({0, 1});
  Valuations v{5.0, 1.0, 4.0};
  ItemPricing p({2.0, 2.0, 0.0});
  // Prices: 2 (sold, v=5), 2 (not sold, v=1), 4 (sold, v=4).
  EXPECT_DOUBLE_EQ(Revenue(p, h, v), 6.0);
}

TEST(RevenueTest, EmptyBundleSellsAtZero) {
  Hypergraph h(2);
  h.AddEdge({});
  Valuations v{3.0};
  ItemPricing p({10.0, 10.0});
  EXPECT_DOUBLE_EQ(Revenue(p, h, v), 0.0);  // sold, contributes 0
}

TEST(RevenueTest, UniformBundleOnEmptyBundle) {
  Hypergraph h(2);
  h.AddEdge({});
  h.AddEdge({0});
  Valuations v{3.0, 1.0};
  UniformBundlePricing p(2.0);
  // Empty bundle priced 2 <= 3: sold. Edge {0} priced 2 > 1: not sold.
  EXPECT_DOUBLE_EQ(Revenue(p, h, v), 2.0);
}

TEST(RevenueTest, SellToleranceAbsorbsLpNoise) {
  Hypergraph h(1);
  h.AddEdge({0});
  Valuations v{1.0};
  ItemPricing p({1.0 + 1e-9});  // epsilon above the valuation
  EXPECT_DOUBLE_EQ(Revenue(p, h, v), 1.0 + 1e-9);
}

TEST(RevenueTest, EdgePricesMatchesPricingFunction) {
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({2});
  ItemPricing p({1.0, 2.0, 3.0});
  auto prices = EdgePrices(p, h);
  ASSERT_EQ(prices.size(), 2u);
  EXPECT_DOUBLE_EQ(prices[0], 3.0);
  EXPECT_DOUBLE_EQ(prices[1], 3.0);
  EXPECT_DOUBLE_EQ(RevenueFromPrices(prices, {3.0, 3.0}), 6.0);
  EXPECT_DOUBLE_EQ(RevenueFromPrices(prices, {2.9, 3.0}), 3.0);
}

TEST(SellToleranceTest, SitsAboveTheSolverFeasibilityTolerance) {
  // The contract documented at kSellTolerance: LP-derived prices respect
  // p(e) <= v_e only up to the simplex feasibility tolerance, so the sell
  // test must keep at least an order of magnitude of headroom over the
  // solver default. This pins the two constants against each other so a
  // future solver-tolerance change cannot silently break the "an LP
  // constrained to sell e actually sells e" guarantee.
  EXPECT_GE(kSellTolerance, 10.0 * lp::SimplexOptions{}.feasibility_tol);
}

TEST(SellToleranceTest, LpDerivedPricesStillSell) {
  // End-to-end regression on the same contract: every edge inside the
  // best LPIP threshold family is LP-constrained to sell; with the
  // documented tolerance its realized price must pass the sell test, and
  // the realized revenue can therefore never drop below the single best
  // bundle sale (which the LP family always contains).
  for (uint64_t seed : {2u, 19u, 53u}) {
    Rng rng(seed);
    Hypergraph h = qp::testing::RandomHypergraph(rng, 12, 18, 4);
    Valuations v = qp::testing::RandomValuations(rng, 18, 1.0, 16.0);
    PricingResult lpip = RunLpip(h, v);
    ASSERT_NE(lpip.pricing, nullptr);
    int sold = 0;
    double sold_revenue = 0.0;
    for (int e = 0; e < h.num_edges(); ++e) {
      double price = lpip.pricing->Price(h.edge(e));
      if (price <= v[e] + kSellTolerance) {
        ++sold;
        sold_revenue += price;
      }
    }
    EXPECT_GT(sold, 0) << "seed " << seed;
    // Revenue() must agree with an explicit sweep using kSellTolerance —
    // the sell rule lives in exactly one place.
    EXPECT_DOUBLE_EQ(lpip.revenue, sold_revenue) << "seed " << seed;
    double best_single = 0.0;
    for (double value : v) best_single = std::max(best_single, value);
    EXPECT_GE(lpip.revenue + 1e-12, best_single) << "seed " << seed;
  }
}

TEST(PricingCloneTest, ClonesAreIndependentAndEqual) {
  ItemPricing p({1.0, 2.0});
  auto clone = p.Clone();
  EXPECT_DOUBLE_EQ(clone->Price({0, 1}), 3.0);
  XosPricing x({{1.0, 0.0}});
  EXPECT_DOUBLE_EQ(x.Clone()->Price({0}), 1.0);
  UniformBundlePricing u(4.0);
  EXPECT_DOUBLE_EQ(u.Clone()->Price({}), 4.0);
}

TEST(PricingDescribeTest, MentionsFamily) {
  EXPECT_NE(UniformBundlePricing(1).Describe().find("uniform"),
            std::string::npos);
  EXPECT_NE(ItemPricing({1.0}).Describe().find("item"), std::string::npos);
  XosPricing xos(std::vector<std::vector<double>>{{1.0}});
  EXPECT_NE(xos.Describe().find("XOS"), std::string::npos);
}

}  // namespace
}  // namespace qp::core
