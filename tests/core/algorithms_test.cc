#include "core/algorithms.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/brute_force.h"
#include "core/bounds.h"
#include "core/valuation.h"
#include "tests/testing/random_instances.h"
#include "tests/testing/tolerance.h"

namespace qp::core {
namespace {

using qp::testing::kTol;
using qp::testing::RandomHypergraph;
using qp::testing::RandomValuations;

// --- UBP ---------------------------------------------------------------

TEST(UbpTest, HandInstance) {
  // Valuations 10, 4, 4, 4: price 4 sells all (16) beats price 10 (10).
  Hypergraph h(4);
  for (uint32_t j = 0; j < 4; ++j) h.AddEdge({j});
  Valuations v{10, 4, 4, 4};
  PricingResult r = RunUbp(h, v);
  EXPECT_NEAR(r.revenue, 16.0, kTol);
  EXPECT_EQ(r.algorithm, "UBP");
}

TEST(UbpTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    Hypergraph h = RandomHypergraph(rng, 12, 10, 4);
    Valuations v = RandomValuations(rng, h.num_edges());
    PricingResult r = RunUbp(h, v);
    EXPECT_NEAR(r.revenue, BruteForceUniformBundleRevenue(v), kTol);
  }
}

TEST(UbpTest, Lemma1LogarithmicGuarantee) {
  // UBP >= sum(v) / H_m on any instance.
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    int m = 1 + static_cast<int>(rng.UniformInt(1, 40));
    Hypergraph h = RandomHypergraph(rng, 20, m, 5);
    Valuations v = RandomValuations(rng, m);
    double harmonic = 0;
    for (int i = 1; i <= m; ++i) harmonic += 1.0 / i;
    PricingResult r = RunUbp(h, v);
    EXPECT_GE(r.revenue, SumOfValuations(v) / harmonic - kTol);
  }
}

// --- UIP ---------------------------------------------------------------

TEST(UipTest, HandInstance) {
  // Edges {0} v=3 (q=3), {1,2} v=4 (q=2): w=2 sells both: 2+4=6;
  // w=3 sells only first: 3. UIP should find 6.
  Hypergraph h(3);
  h.AddEdge({0});
  h.AddEdge({1, 2});
  Valuations v{3, 4};
  PricingResult r = RunUip(h, v);
  EXPECT_NEAR(r.revenue, 6.0, kTol);
}

TEST(UipTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    Hypergraph h = RandomHypergraph(rng, 12, 12, 5);
    Valuations v = RandomValuations(rng, h.num_edges());
    PricingResult r = RunUip(h, v);
    EXPECT_NEAR(r.revenue, BruteForceUniformItemRevenue(h, v), kTol);
  }
}

TEST(UipTest, EmptyEdgesIgnoredGracefully) {
  Hypergraph h(2);
  h.AddEdge({});
  h.AddEdge({0});
  Valuations v{100, 5};
  PricingResult r = RunUip(h, v);
  EXPECT_NEAR(r.revenue, 5.0, kTol);
}

// --- Layering ----------------------------------------------------------

TEST(LayeringTest, DisjointEdgesExtractFullRevenue) {
  Hypergraph h(6);
  h.AddEdge({0, 1});
  h.AddEdge({2, 3});
  h.AddEdge({4, 5});
  Valuations v{3, 5, 7};
  PricingResult r = RunLayering(h, v);
  EXPECT_NEAR(r.revenue, 15.0, kTol);  // single layer, all unique items
}

TEST(LayeringTest, BApproximationGuarantee) {
  Rng rng(14);
  for (int trial = 0; trial < 25; ++trial) {
    Hypergraph h = RandomHypergraph(rng, 15, 12, 4);
    Valuations v = RandomValuations(rng, h.num_edges());
    PricingResult r = RunLayering(h, v);
    double bound = SumOfValuations(v) / std::max(1u, h.MaxDegree());
    EXPECT_GE(r.revenue, bound - kTol) << "trial " << trial;
  }
}

TEST(LayeringTest, PicksHighValueLayer) {
  // Two "layers": edge {0} & {1} (values 1, 1) vs overlapping {0,1}
  // (value 10). Layer 1 = minimal cover {{0},{1}}? Greedy order: {0} then
  // {1} both selected, {0,1} redundant... cover = {{0},{1}} value 2; layer 2
  // = {{0,1}} value 10. Best layer = 10.
  Hypergraph h(2);
  h.AddEdge({0});
  h.AddEdge({1});
  h.AddEdge({0, 1});
  Valuations v{1, 1, 10};
  PricingResult r = RunLayering(h, v);
  EXPECT_GE(r.revenue, 10.0 - kTol);
}

// --- LPIP --------------------------------------------------------------

TEST(LpipTest, BeatsUniformOnAsymmetricInstance) {
  // Items 0,1; edges {0} v=10, {1} v=1. Non-uniform weights (10, 1)
  // extract 11; any uniform w extracts max(2w for w<=1, 10) = 10.
  Hypergraph h(2);
  h.AddEdge({0});
  h.AddEdge({1});
  Valuations v{10, 1};
  PricingResult lpip = RunLpip(h, v);
  EXPECT_NEAR(lpip.revenue, 11.0, kTol);
  PricingResult uip = RunUip(h, v);
  EXPECT_LT(uip.revenue, 10.0 + kTol);
}

TEST(LpipTest, AtLeastTopValuationOnNonEmptyInstances) {
  Rng rng(15);
  for (int trial = 0; trial < 20; ++trial) {
    Hypergraph h = RandomHypergraph(rng, 12, 10, 4);
    Valuations v = RandomValuations(rng, h.num_edges());
    PricingResult r = RunLpip(h, v);
    double top = *std::max_element(v.begin(), v.end());
    EXPECT_GE(r.revenue, top - kTol);
  }
}

TEST(LpipTest, NeverExceedsBruteForceOptimum) {
  Rng rng(16);
  for (int trial = 0; trial < 12; ++trial) {
    Hypergraph h = RandomHypergraph(rng, 8, 7, 3);
    Valuations v = RandomValuations(rng, h.num_edges());
    PricingResult r = RunLpip(h, v);
    double opt = BruteForceItemPricingRevenue(h, v);
    EXPECT_LE(r.revenue, opt + 1e-4) << "trial " << trial;
    // LPIP is strong in practice: expect at least half the optimum here.
    EXPECT_GE(r.revenue, 0.5 * opt - kTol) << "trial " << trial;
  }
}

TEST(LpipTest, CandidateSubsamplingStillReasonable) {
  Rng rng(17);
  Hypergraph h = RandomHypergraph(rng, 20, 30, 5);
  Valuations v = RandomValuations(rng, h.num_edges());
  PricingResult full = RunLpip(h, v);
  LpipOptions sparse;
  sparse.max_candidates = 5;
  PricingResult sampled = RunLpip(h, v, sparse);
  EXPECT_LE(sampled.revenue, full.revenue + kTol);
  EXPECT_GE(sampled.revenue, 0.5 * full.revenue);
  EXPECT_LT(sampled.lps_solved, full.lps_solved);
}

TEST(LpipTest, CompressionMatchesUncompressed) {
  Rng rng(18);
  for (int trial = 0; trial < 10; ++trial) {
    Hypergraph h = RandomHypergraph(rng, 10, 8, 4);
    Valuations v = RandomValuations(rng, h.num_edges());
    LpipOptions with, without;
    with.use_compression = true;
    without.use_compression = false;
    double a = RunLpip(h, v, with).revenue;
    double b = RunLpip(h, v, without).revenue;
    EXPECT_NEAR(a, b, 1e-5) << "trial " << trial;
  }
}

// --- CIP ---------------------------------------------------------------

TEST(CipTest, DisjointSingletonsExtractFullRevenue) {
  Hypergraph h(4);
  for (uint32_t j = 0; j < 4; ++j) h.AddEdge({j});
  Valuations v{1.0, 0.5, 2.0, 0.25};
  PricingResult r = RunCip(h, v);
  EXPECT_NEAR(r.revenue, 3.75, 1e-5);
}

TEST(CipTest, RevenueWithinBounds) {
  Rng rng(19);
  for (int trial = 0; trial < 15; ++trial) {
    Hypergraph h = RandomHypergraph(rng, 10, 8, 4);
    Valuations v = RandomValuations(rng, h.num_edges());
    PricingResult r = RunCip(h, v);
    EXPECT_GE(r.revenue, -kTol);
    EXPECT_LE(r.revenue, SumOfValuations(v) + kTol);
    EXPECT_LE(r.revenue, BruteForceItemPricingRevenue(h, v) + 1e-4);
  }
}

TEST(CipTest, EpsilonControlsLpCount) {
  Rng rng(20);
  Hypergraph h = RandomHypergraph(rng, 12, 24, 6);
  Valuations v = RandomValuations(rng, h.num_edges());
  CipOptions fine, coarse;
  fine.eps = 0.2;
  coarse.eps = 4.0;
  PricingResult rf = RunCip(h, v, fine);
  PricingResult rc = RunCip(h, v, coarse);
  EXPECT_GT(rf.lps_solved, rc.lps_solved);
  // The finer grid can only help.
  EXPECT_GE(rf.revenue, rc.revenue - 1e-6);
}

// --- XOS ---------------------------------------------------------------

TEST(XosTest, MaxOfComponentsCanLoseRevenue) {
  // Paper Section 6.3: the max can overshoot and lose sales. Components:
  // a = (3, 0), b = (0, 3); edge {0,1} with v = 3. Both components alone
  // price it 3 (sold); XOS prices max(3,3) = 3, still sold. Make them
  // asymmetric: a = (3, 1): price 4 > 3 - unsold under XOS if the other
  // component is (0,3) -> max(4,3)=4.
  Hypergraph h(2);
  h.AddEdge({0, 1});
  Valuations v{3.0};
  ItemPricing a({3.0, 1.0});
  ItemPricing b({0.0, 3.0});
  PricingResult xos = RunXos(h, v, a, b);
  EXPECT_NEAR(xos.revenue, 0.0, kTol);  // overshoots and loses the sale
  EXPECT_NEAR(Revenue(b, h, v), 3.0, kTol);
}

TEST(XosTest, PricesDominateComponents) {
  Rng rng(21);
  Hypergraph h = RandomHypergraph(rng, 10, 8, 4);
  Valuations v = RandomValuations(rng, h.num_edges());
  PricingResult lpip = RunLpip(h, v);
  PricingResult cip = RunCip(h, v);
  const auto& a = *static_cast<const ItemPricing*>(lpip.pricing.get());
  const auto& b = *static_cast<const ItemPricing*>(cip.pricing.get());
  PricingResult xos = RunXos(h, v, a, b);
  for (int e = 0; e < h.num_edges(); ++e) {
    double px = xos.pricing->Price(h.edge(e));
    EXPECT_GE(px, a.Price(h.edge(e)) - kTol);
    EXPECT_GE(px, b.Price(h.edge(e)) - kTol);
  }
}

// --- Cross-cutting properties -------------------------------------------

class AllAlgorithmsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AllAlgorithmsPropertyTest, RevenueInvariants) {
  Rng rng(100 + GetParam());
  Hypergraph h = RandomHypergraph(rng, 14, 12, 5);
  Valuations v = RandomValuations(rng, h.num_edges());
  auto results = RunAllAlgorithms(h, v);
  ASSERT_EQ(results.size(), 6u);
  double sum = SumOfValuations(v);
  for (const auto& r : results) {
    EXPECT_GE(r.revenue, -kTol) << r.algorithm;
    EXPECT_LE(r.revenue, sum + kTol) << r.algorithm;
    // Reported revenue must equal the pricing function's actual revenue.
    EXPECT_NEAR(r.revenue, Revenue(*r.pricing, h, v), 1e-9) << r.algorithm;
    EXPECT_GE(r.seconds, 0.0);
  }
  EXPECT_EQ(results[0].algorithm, "UBP");
  EXPECT_EQ(results[1].algorithm, "UIP");
  EXPECT_EQ(results[2].algorithm, "LPIP");
  EXPECT_EQ(results[3].algorithm, "CIP");
  EXPECT_EQ(results[4].algorithm, "Layering");
  EXPECT_EQ(results[5].algorithm, "XOS");
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllAlgorithmsPropertyTest,
                         ::testing::Range(0, 6));

TEST(RefineUbpTest, RefinementNeverBelowItemLpObjective) {
  // Paper Section 6.3: LP refinement of UBP's sold set boosts revenue.
  // Skewed instance: UBP must choose one price; refinement reprices.
  Hypergraph h(4);
  h.AddEdge({0});
  h.AddEdge({1});
  h.AddEdge({2});
  h.AddEdge({3});
  Valuations v{8, 5, 2, 1};
  PricingResult ubp = RunUbp(h, v);
  auto refined = RefineUbpWithItemLp(h, v);
  ASSERT_TRUE(refined.has_value());
  // UBP: price 5 sells {8,5} -> 10. Refined LP reprices the sold set
  // per item: e0 at 8, e1 at 5 -> 13.
  EXPECT_NEAR(ubp.revenue, 10.0, kTol);
  EXPECT_NEAR(refined->revenue, 13.0, kTol);
  EXPECT_GE(refined->revenue, ubp.revenue - kTol);
}

TEST(AlgorithmNameTest, AllNamesDistinct) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kUbp), "UBP");
  EXPECT_STREQ(AlgorithmName(Algorithm::kUip), "UIP");
  EXPECT_STREQ(AlgorithmName(Algorithm::kLpip), "LPIP");
  EXPECT_STREQ(AlgorithmName(Algorithm::kCip), "CIP");
  EXPECT_STREQ(AlgorithmName(Algorithm::kLayering), "Layering");
  EXPECT_STREQ(AlgorithmName(Algorithm::kXos), "XOS");
}

TEST(EmptyEdgeRobustnessTest, AllAlgorithmsHandleEmptyEdges) {
  Hypergraph h(3);
  h.AddEdge({});
  h.AddEdge({0, 1});
  h.AddEdge({});
  h.AddEdge({2});
  Valuations v{5, 3, 1, 2};
  auto results = RunAllAlgorithms(h, v);
  for (const auto& r : results) {
    EXPECT_GE(r.revenue, -kTol) << r.algorithm;
    EXPECT_NEAR(r.revenue, Revenue(*r.pricing, h, v), 1e-9) << r.algorithm;
  }
  // UBP can monetize empty edges; item pricings cannot.
  EXPECT_GE(results[0].revenue, 5.0 - kTol);
}

TEST(DegenerateInstanceTest, SingleEdge) {
  Hypergraph h(2);
  h.AddEdge({0, 1});
  Valuations v{7};
  for (auto& r : RunAllAlgorithms(h, v)) {
    if (r.algorithm == "XOS") continue;  // max may overshoot; others exact
    EXPECT_NEAR(r.revenue, 7.0, 1e-5) << r.algorithm;
  }
}

TEST(DegenerateInstanceTest, ZeroValuations) {
  Hypergraph h(2);
  h.AddEdge({0});
  h.AddEdge({1});
  Valuations v{0, 0};
  for (auto& r : RunAllAlgorithms(h, v)) {
    EXPECT_NEAR(r.revenue, 0.0, kTol) << r.algorithm;
  }
}

}  // namespace
}  // namespace qp::core
