#include "core/online.h"

#include <gtest/gtest.h>

namespace qp::core {
namespace {

OnlinePricingOptions SmallGrid() {
  OnlinePricingOptions options;
  options.min_price = 1.0;
  options.max_price = 64.0;
  options.grid_size = 7;  // 1, 2, 4, ..., 64
  options.gamma = 0.07;
  return options;
}

TEST(Exp3Test, GridIsGeometric) {
  Exp3PriceLearner learner(SmallGrid(), 1);
  ASSERT_EQ(learner.grid().size(), 7u);
  EXPECT_NEAR(learner.grid().front(), 1.0, 1e-9);
  EXPECT_NEAR(learner.grid().back(), 64.0, 1e-6);
  for (size_t i = 1; i < learner.grid().size(); ++i) {
    EXPECT_NEAR(learner.grid()[i] / learner.grid()[i - 1], 2.0, 1e-6);
  }
}

TEST(Exp3Test, PostedPricesComeFromGrid) {
  Exp3PriceLearner learner(SmallGrid(), 2);
  for (int t = 0; t < 200; ++t) {
    double price = learner.PostPrice();
    bool on_grid = false;
    for (double g : learner.grid()) on_grid |= (std::abs(g - price) < 1e-9);
    EXPECT_TRUE(on_grid);
    learner.Observe(price <= 8.0);
  }
  EXPECT_EQ(learner.rounds(), 200);
}

TEST(Exp3Test, RevenueAccounting) {
  Exp3PriceLearner learner(SmallGrid(), 3);
  double expected = 0.0;
  for (int t = 0; t < 50; ++t) {
    double price = learner.PostPrice();
    bool accepted = price <= 16.0;
    if (accepted) expected += price;
    learner.Observe(accepted);
  }
  EXPECT_DOUBLE_EQ(learner.total_revenue(), expected);
}

TEST(Exp3Test, LearnsFixedValuationBuyers) {
  // All buyers value the bundle at 16: the best grid price is 16. After
  // enough rounds the learner's average revenue should approach it.
  std::vector<double> buyers(6000, 16.0);
  OnlineSimulationResult result = SimulateOnlinePricing(buyers, SmallGrid(), 4);
  EXPECT_NEAR(result.best_fixed_price, 16.0, 1e-6);
  EXPECT_DOUBLE_EQ(result.best_fixed_revenue, 16.0 * 6000);
  // Far better than uniform-random guessing (which averages ~ (sold
  // prices)/7 ~ 31/7 * ... ) and within a constant factor of the best arm.
  EXPECT_GT(result.learner_revenue, 0.5 * result.best_fixed_revenue);
}

TEST(Exp3Test, RegretIsSublinearish) {
  // Buyers alternate between two valuations; regret relative to the best
  // fixed price should be a modest fraction of total.
  std::vector<double> buyers;
  Rng rng(5);
  for (int t = 0; t < 8000; ++t) {
    buyers.push_back(rng.Bernoulli(0.5) ? 4.0 : 32.0);
  }
  OnlineSimulationResult result = SimulateOnlinePricing(buyers, SmallGrid(), 6);
  EXPECT_GE(result.regret, -1e-9);
  EXPECT_LT(result.regret, 0.5 * result.best_fixed_revenue);
}

TEST(Exp3Test, DeterministicGivenSeed) {
  std::vector<double> buyers(500, 10.0);
  auto a = SimulateOnlinePricing(buyers, SmallGrid(), 7);
  auto b = SimulateOnlinePricing(buyers, SmallGrid(), 7);
  EXPECT_DOUBLE_EQ(a.learner_revenue, b.learner_revenue);
}

TEST(Exp3Test, GridBoundaryArmsAreReachableAndLearnable) {
  // Buyers value the bundle exactly at the grid extremes: the learner
  // must be able to converge onto the boundary arms, not just interior
  // ones (an off-by-one in the grid or the arm draw would starve them).
  {
    std::vector<double> buyers(6000, 1.0);  // only the lowest arm sells
    OnlineSimulationResult low = SimulateOnlinePricing(buyers, SmallGrid(), 41);
    EXPECT_NEAR(low.best_fixed_price, 1.0, 1e-9);
    // Rewards are normalized by the top grid price, so the bottom arm
    // learns slowly; require it to clearly beat uniform-random arm play
    // (revenue/K) rather than near-optimality.
    double uniform_play = low.best_fixed_revenue /
                          static_cast<double>(SmallGrid().grid_size);
    EXPECT_GT(low.learner_revenue, 1.25 * uniform_play);
  }
  {
    std::vector<double> buyers(6000, 64.0);  // the top arm dominates
    OnlineSimulationResult high =
        SimulateOnlinePricing(buyers, SmallGrid(), 42);
    EXPECT_NEAR(high.best_fixed_price, 64.0, 1e-6);
    EXPECT_DOUBLE_EQ(high.best_fixed_revenue, 64.0 * 6000);
    EXPECT_GT(high.learner_revenue, 0.5 * high.best_fixed_revenue);
  }
}

TEST(Exp3Test, BuyersBelowGridSellNothing) {
  // Valuations strictly under the lowest arm: no price on the grid ever
  // sells, so both the learner and the best fixed arm earn zero.
  std::vector<double> buyers(500, 0.5);
  OnlineSimulationResult result = SimulateOnlinePricing(buyers, SmallGrid(), 43);
  EXPECT_DOUBLE_EQ(result.best_fixed_revenue, 0.0);
  EXPECT_DOUBLE_EQ(result.learner_revenue, 0.0);
  EXPECT_DOUBLE_EQ(result.regret, 0.0);
}

TEST(Exp3Test, RegretAccountingIsExactOnPinnedInstance) {
  // Regret is defined as best-fixed minus learner revenue; check the
  // arithmetic end-to-end on a pinned stream, including the best-fixed
  // computation itself (price p earns p * #{v_t >= p}).
  std::vector<double> buyers = {2.0, 2.0, 8.0, 8.0, 8.0, 32.0};
  OnlineSimulationResult result = SimulateOnlinePricing(buyers, SmallGrid(), 44);
  // Grid arms 1,2,4,8,16,32,64: revenue(2) = 2*6 = 12, revenue(8) = 8*4 =
  // 32, revenue(32) = 32. Ties resolve to a maximizer; both price 8 and
  // price 32 earn 32.
  EXPECT_DOUBLE_EQ(result.best_fixed_revenue, 32.0);
  EXPECT_TRUE(result.best_fixed_price == 8.0 || result.best_fixed_price == 32.0)
      << result.best_fixed_price;
  EXPECT_DOUBLE_EQ(result.regret,
                   result.best_fixed_revenue - result.learner_revenue);
  EXPECT_GE(result.learner_revenue, 0.0);
  EXPECT_LE(result.learner_revenue, result.best_fixed_revenue + 1e-12);
}

TEST(Exp3Test, DeterministicAcrossDistinctLearnerInstances) {
  // Fixed-seed determinism must hold for the learner object itself, not
  // just the simulation wrapper: two learners stepped identically post
  // identical prices and end with identical weights.
  Exp3PriceLearner a(SmallGrid(), 99), b(SmallGrid(), 99);
  for (int t = 0; t < 300; ++t) {
    double pa = a.PostPrice();
    double pb = b.PostPrice();
    ASSERT_DOUBLE_EQ(pa, pb) << "round " << t;
    bool accepted = pa <= 12.0;
    a.Observe(accepted);
    b.Observe(accepted);
  }
  ASSERT_EQ(a.weights().size(), b.weights().size());
  for (size_t i = 0; i < a.weights().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.weights()[i], b.weights()[i]) << "arm " << i;
  }
  EXPECT_DOUBLE_EQ(a.total_revenue(), b.total_revenue());
}

TEST(Exp3Test, AnytimeGammaWorks) {
  OnlinePricingOptions options = SmallGrid();
  options.gamma = 0.0;  // anytime schedule
  std::vector<double> buyers(3000, 8.0);
  auto result = SimulateOnlinePricing(buyers, options, 8);
  EXPECT_GT(result.learner_revenue, 0.35 * result.best_fixed_revenue);
}

}  // namespace
}  // namespace qp::core
