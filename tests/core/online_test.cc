#include "core/online.h"

#include <gtest/gtest.h>

namespace qp::core {
namespace {

OnlinePricingOptions SmallGrid() {
  OnlinePricingOptions options;
  options.min_price = 1.0;
  options.max_price = 64.0;
  options.grid_size = 7;  // 1, 2, 4, ..., 64
  options.gamma = 0.07;
  return options;
}

TEST(Exp3Test, GridIsGeometric) {
  Exp3PriceLearner learner(SmallGrid(), 1);
  ASSERT_EQ(learner.grid().size(), 7u);
  EXPECT_NEAR(learner.grid().front(), 1.0, 1e-9);
  EXPECT_NEAR(learner.grid().back(), 64.0, 1e-6);
  for (size_t i = 1; i < learner.grid().size(); ++i) {
    EXPECT_NEAR(learner.grid()[i] / learner.grid()[i - 1], 2.0, 1e-6);
  }
}

TEST(Exp3Test, PostedPricesComeFromGrid) {
  Exp3PriceLearner learner(SmallGrid(), 2);
  for (int t = 0; t < 200; ++t) {
    double price = learner.PostPrice();
    bool on_grid = false;
    for (double g : learner.grid()) on_grid |= (std::abs(g - price) < 1e-9);
    EXPECT_TRUE(on_grid);
    learner.Observe(price <= 8.0);
  }
  EXPECT_EQ(learner.rounds(), 200);
}

TEST(Exp3Test, RevenueAccounting) {
  Exp3PriceLearner learner(SmallGrid(), 3);
  double expected = 0.0;
  for (int t = 0; t < 50; ++t) {
    double price = learner.PostPrice();
    bool accepted = price <= 16.0;
    if (accepted) expected += price;
    learner.Observe(accepted);
  }
  EXPECT_DOUBLE_EQ(learner.total_revenue(), expected);
}

TEST(Exp3Test, LearnsFixedValuationBuyers) {
  // All buyers value the bundle at 16: the best grid price is 16. After
  // enough rounds the learner's average revenue should approach it.
  std::vector<double> buyers(6000, 16.0);
  OnlineSimulationResult result = SimulateOnlinePricing(buyers, SmallGrid(), 4);
  EXPECT_NEAR(result.best_fixed_price, 16.0, 1e-6);
  EXPECT_DOUBLE_EQ(result.best_fixed_revenue, 16.0 * 6000);
  // Far better than uniform-random guessing (which averages ~ (sold
  // prices)/7 ~ 31/7 * ... ) and within a constant factor of the best arm.
  EXPECT_GT(result.learner_revenue, 0.5 * result.best_fixed_revenue);
}

TEST(Exp3Test, RegretIsSublinearish) {
  // Buyers alternate between two valuations; regret relative to the best
  // fixed price should be a modest fraction of total.
  std::vector<double> buyers;
  Rng rng(5);
  for (int t = 0; t < 8000; ++t) {
    buyers.push_back(rng.Bernoulli(0.5) ? 4.0 : 32.0);
  }
  OnlineSimulationResult result = SimulateOnlinePricing(buyers, SmallGrid(), 6);
  EXPECT_GE(result.regret, -1e-9);
  EXPECT_LT(result.regret, 0.5 * result.best_fixed_revenue);
}

TEST(Exp3Test, DeterministicGivenSeed) {
  std::vector<double> buyers(500, 10.0);
  auto a = SimulateOnlinePricing(buyers, SmallGrid(), 7);
  auto b = SimulateOnlinePricing(buyers, SmallGrid(), 7);
  EXPECT_DOUBLE_EQ(a.learner_revenue, b.learner_revenue);
}

TEST(Exp3Test, AnytimeGammaWorks) {
  OnlinePricingOptions options = SmallGrid();
  options.gamma = 0.0;  // anytime schedule
  std::vector<double> buyers(3000, 8.0);
  auto result = SimulateOnlinePricing(buyers, options, 8);
  EXPECT_GT(result.learner_revenue, 0.35 * result.best_fixed_revenue);
}

}  // namespace
}  // namespace qp::core
