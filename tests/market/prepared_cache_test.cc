// PreparedQueryCache capacity contract: at most max_entries cached,
// approximate-LRU eviction, eviction never invalidates pinned state, and
// the whole thing holds under concurrent shared-lock lookups.
#include "market/prepared_cache.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/parser.h"
#include "tests/testing/test_db.h"

namespace qp::market {
namespace {

std::vector<db::BoundQuery> DistinctQueries(const db::Database& db, int n) {
  // Distinct SQL texts = distinct cache keys; the predicate constant
  // varies so every query is its own entry.
  std::vector<db::BoundQuery> queries;
  for (int i = 0; i < n; ++i) {
    auto q = db::ParseQuery(
        "select Name from Country where Population > " + std::to_string(i),
        db);
    QP_CHECK_OK(q.status());
    queries.push_back(*q);
  }
  return queries;
}

TEST(PreparedCacheTest, UnboundedByDefault) {
  auto db = db::testing::MakeTestDatabase();
  PreparedQueryCache cache(db.get());
  auto queries = DistinctQueries(*db, 20);
  for (const auto& q : queries) cache.GetOrPrepare(q);
  PreparedQueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 20u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.max_entries(), 0u);
}

TEST(PreparedCacheTest, CapHoldsAndEvictionsAreCounted) {
  auto db = db::testing::MakeTestDatabase();
  const size_t kCap = 4;
  PreparedQueryCache cache(db.get(), kCap);
  auto queries = DistinctQueries(*db, 10);
  for (const auto& q : queries) {
    cache.GetOrPrepare(q);
    EXPECT_LE(cache.stats().entries, kCap);
  }
  PreparedQueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, kCap);
  EXPECT_EQ(stats.evictions, 10u - kCap);
  EXPECT_EQ(stats.misses, 10u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(PreparedCacheTest, EvictionIsLeastRecentlyUsed) {
  auto db = db::testing::MakeTestDatabase();
  const size_t kCap = 3;
  PreparedQueryCache cache(db.get(), kCap);
  auto queries = DistinctQueries(*db, 4);
  // Fill: 0, 1, 2. Touch 0 and 2 so 1 is the LRU entry.
  cache.GetOrPrepare(queries[0]);
  cache.GetOrPrepare(queries[1]);
  cache.GetOrPrepare(queries[2]);
  cache.GetOrPrepare(queries[0]);
  cache.GetOrPrepare(queries[2]);
  // Insert 3: evicts 1.
  cache.GetOrPrepare(queries[3]);
  uint64_t misses_before = cache.stats().misses;
  // 0, 2, 3 are still hits...
  cache.GetOrPrepare(queries[0]);
  cache.GetOrPrepare(queries[2]);
  cache.GetOrPrepare(queries[3]);
  EXPECT_EQ(cache.stats().misses, misses_before);
  // ...and 1 re-prepares.
  cache.GetOrPrepare(queries[1]);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(PreparedCacheTest, EvictedEntriesStayValidWhilePinned) {
  auto db = db::testing::MakeTestDatabase();
  PreparedQueryCache cache(db.get(), 1);
  auto queries = DistinctQueries(*db, 3);
  // Pin entry 0, then overflow it out of the cache twice over.
  std::shared_ptr<const PreparedConflictQuery> pinned =
      cache.GetOrPrepare(queries[0]);
  cache.GetOrPrepare(queries[1]);
  cache.GetOrPrepare(queries[2]);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_GE(cache.stats().evictions, 2u);
  // The aliasing shared_ptr keeps the evicted entry (query copy included)
  // alive; probing it still works.
  ConflictStats stats;
  for (int i = 0; i < db->table(0).num_rows() && i < 4; ++i) {
    CellDelta delta;
    delta.table = 0;
    delta.row = i;
    pinned->Probe(delta, stats);  // must not crash or read freed memory
  }
}

TEST(PreparedCacheTest, ConcurrentLookupsRaceEvictions) {
  auto db = db::testing::MakeTestDatabase();
  const size_t kCap = 4;
  PreparedQueryCache cache(db.get(), kCap);
  auto queries = DistinctQueries(*db, 12);

  constexpr int kThreads = 4;
  constexpr int kIterations = 200;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kIterations; ++i) {
        // Working set (3x the cap) shared across threads: constant
        // hit/miss/eviction churn under the shared-lock fast path.
        const db::BoundQuery& q =
            queries[static_cast<size_t>(t * 7 + i) % queries.size()];
        std::shared_ptr<const PreparedConflictQuery> prepared =
            cache.GetOrPrepare(q);
        if (prepared == nullptr) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  PreparedQueryCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, kCap);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIterations);
}

}  // namespace
}  // namespace qp::market
