#include "market/support_selection.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "db/parser.h"
#include "market/hypergraph_builder.h"
#include "tests/testing/test_db.h"

namespace qp::market {
namespace {

std::vector<db::BoundQuery> Queries(const db::Database& db) {
  std::vector<db::BoundQuery> queries;
  for (const char* sql : {
           "select Name from Country where Continent = 'Europe'",
           "select Name from Country where Continent = 'Asia'",
           "select max(Population) from City",
           "select count(Language) from CountryLanguage where CountryCode "
           "= 'USA'",
       }) {
    auto q = db::ParseQuery(sql, db);
    EXPECT_TRUE(q.ok()) << sql;
    queries.push_back(*q);
  }
  return queries;
}

TEST(SupportSelectionTest, GivesEveryFixableQueryAPrivateItem) {
  auto db = db::testing::MakeTestDatabase();
  auto queries = Queries(*db);
  // Start from an empty support: nothing has a private item.
  Rng rng(11);
  SupportSelectionResult result = AugmentSupportWithUniqueItems(
      *db, queries, /*base_support=*/{}, {.candidates_per_query = 128}, rng);
  EXPECT_EQ(result.queries_fixed + result.queries_unfixable,
            static_cast<int>(queries.size()));
  EXPECT_GE(result.queries_fixed, 3);  // all of these queries are fixable

  BuildResult built = BuildHypergraph(*db, queries, result.support);
  auto degrees = built.hypergraph.ItemDegrees();
  int with_private = 0;
  for (int e = 0; e < built.hypergraph.num_edges(); ++e) {
    for (uint32_t j : built.hypergraph.edge(e)) {
      if (degrees[j] == 1) {
        ++with_private;
        break;
      }
    }
  }
  EXPECT_EQ(with_private, result.queries_fixed);
}

TEST(SupportSelectionTest, PrivateItemsUnlockFullLayeringRevenue) {
  auto db = db::testing::MakeTestDatabase();
  auto queries = Queries(*db);
  Rng rng(13);
  SupportSelectionResult result = AugmentSupportWithUniqueItems(
      *db, queries, {}, {.candidates_per_query = 128}, rng);
  ASSERT_GE(result.queries_fixed, 3);
  BuildResult built = BuildHypergraph(*db, queries, result.support);
  core::Valuations v{7, 5, 3, 2};
  // Section 7.2: with a unique item per edge, pricing extracts everything
  // from the fixed queries.
  core::PricingResult layering = core::RunLayering(built.hypergraph, v);
  double fixable_value = 0;
  auto degrees = built.hypergraph.ItemDegrees();
  for (int e = 0; e < built.hypergraph.num_edges(); ++e) {
    for (uint32_t j : built.hypergraph.edge(e)) {
      if (degrees[j] == 1) {
        fixable_value += v[e];
        break;
      }
    }
  }
  EXPECT_GE(layering.revenue, fixable_value - 1e-6);
}

TEST(SupportSelectionTest, PreservesBaseSupport) {
  auto db = db::testing::MakeTestDatabase();
  auto queries = Queries(*db);
  Rng base_rng(17);
  auto base = GenerateSupport(*db, {.size = 40, .max_retries = 32}, base_rng);
  ASSERT_TRUE(base.ok());
  Rng rng(19);
  SupportSelectionResult result = AugmentSupportWithUniqueItems(
      *db, queries, *base, {.candidates_per_query = 64}, rng);
  ASSERT_GE(result.support.size(), base->size());
  for (size_t i = 0; i < base->size(); ++i) {
    EXPECT_EQ(result.support[i].table, (*base)[i].table);
    EXPECT_EQ(result.support[i].row, (*base)[i].row);
    EXPECT_EQ(result.support[i].column, (*base)[i].column);
  }
}

TEST(SupportSelectionTest, BareCountStarIsUnfixable) {
  auto db = db::testing::MakeTestDatabase();
  auto q = db::ParseQuery("select count(*) from City", *db);
  ASSERT_TRUE(q.ok());
  Rng rng(23);
  SupportSelectionResult result = AugmentSupportWithUniqueItems(
      *db, {*q}, {}, {.candidates_per_query = 16}, rng);
  EXPECT_EQ(result.queries_fixed, 0);
  EXPECT_EQ(result.queries_unfixable, 1);
  EXPECT_TRUE(result.support.empty());
}

TEST(SupportSelectionTest, DatabaseLeftIntact) {
  auto db = db::testing::MakeTestDatabase();
  auto reference = db::testing::MakeTestDatabase();
  auto queries = Queries(*db);
  Rng rng(29);
  AugmentSupportWithUniqueItems(*db, queries, {}, {.candidates_per_query = 32},
                                rng);
  for (int t = 0; t < db->num_tables(); ++t) {
    for (int r = 0; r < db->table(t).num_rows(); ++r) {
      for (int c = 0; c < db->table(t).schema().num_columns(); ++c) {
        ASSERT_EQ(
            db->table(t).cell(r, c).Compare(reference->table(t).cell(r, c)),
            0);
      }
    }
  }
}

}  // namespace
}  // namespace qp::market
