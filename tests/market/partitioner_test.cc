// SupportPartitioner correctness: no seed edge ever crosses shards,
// the partition is deterministic (and invariant to the probe thread
// count that produced the seed edges), balance holds for residual
// singletons, and the global<->local maps round-trip.
#include "market/support_partitioner.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/parser.h"
#include "market/incremental_builder.h"
#include "tests/testing/random_instances.h"
#include "tests/testing/test_db.h"

namespace qp::market {
namespace {

// Fabricated support: the partitioner only looks at support *size* (the
// deltas are split, not probed), so placeholder deltas suffice.
SupportSet FakeSupport(uint32_t n) {
  SupportSet support;
  support.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    CellDelta delta;
    delta.table = 0;
    delta.row = static_cast<int>(i);
    delta.column = static_cast<int>(i % 3);
    support.push_back(delta);
  }
  return support;
}

std::vector<std::vector<uint32_t>> EdgesOf(const core::Hypergraph& h) {
  std::vector<std::vector<uint32_t>> edges;
  for (int e = 0; e < h.num_edges(); ++e) edges.push_back(h.edge(e));
  return edges;
}

bool SamePartition(const SupportPartition& a, const SupportPartition& b) {
  return a.num_shards == b.num_shards && a.shard_of_item == b.shard_of_item &&
         a.local_of_item == b.local_of_item && a.shard_items == b.shard_items;
}

TEST(SupportPartitionerTest, NoSeedEdgeCrossesShards) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    Rng rng(seed);
    const uint32_t n = 60;
    core::Hypergraph h =
        qp::testing::RandomHypergraph(rng, n, /*m=*/40, /*max_edge=*/5);
    std::vector<std::vector<uint32_t>> edges = EdgesOf(h);
    for (int num_shards : {1, 2, 3, 5, 8}) {
      SupportPartition partition = SupportPartitioner::Partition(
          FakeSupport(n), edges, {.num_shards = num_shards});
      ASSERT_EQ(partition.num_shards, num_shards);
      for (const std::vector<uint32_t>& edge : edges) {
        if (edge.empty()) continue;
        int shard = partition.shard_of_item[edge.front()];
        for (uint32_t item : edge) {
          EXPECT_EQ(partition.shard_of_item[item], shard)
              << "edge crosses shards at item " << item << " (seed " << seed
              << ", shards " << num_shards << ")";
        }
      }
    }
  }
}

TEST(SupportPartitionerTest, MapsAndShardSupportsAreConsistent) {
  Rng rng(11);
  const uint32_t n = 40;
  core::Hypergraph h = qp::testing::RandomHypergraph(rng, n, 25, 4);
  SupportSet support = FakeSupport(n);
  SupportPartition partition =
      SupportPartitioner::Partition(support, EdgesOf(h), {.num_shards = 3});

  ASSERT_EQ(partition.support.size(), support.size());
  ASSERT_EQ(partition.shard_of_item.size(), n);
  ASSERT_EQ(partition.local_of_item.size(), n);
  size_t total = 0;
  for (int s = 0; s < partition.num_shards; ++s) {
    const auto& items = partition.shard_items[static_cast<size_t>(s)];
    total += items.size();
    EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
    ASSERT_EQ(partition.shard_support[static_cast<size_t>(s)].size(),
              items.size());
    for (size_t l = 0; l < items.size(); ++l) {
      uint32_t global = items[l];
      EXPECT_EQ(partition.shard_of_item[global], s);
      EXPECT_EQ(partition.local_of_item[global], l);
      // The shard-local delta is the global delta, verbatim.
      const CellDelta& local =
          partition.shard_support[static_cast<size_t>(s)][l];
      EXPECT_EQ(local.table, support[global].table);
      EXPECT_EQ(local.row, support[global].row);
      EXPECT_EQ(local.column, support[global].column);
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(n));
}

TEST(SupportPartitionerTest, SingletonsBalanceShardSizes) {
  // With no seed edges every item is a residual singleton: shard sizes
  // must differ by at most one.
  const uint32_t n = 17;
  SupportPartition partition =
      SupportPartitioner::Partition(FakeSupport(n), {}, {.num_shards = 4});
  size_t min_size = n, max_size = 0;
  for (const auto& items : partition.shard_items) {
    min_size = std::min(min_size, items.size());
    max_size = std::max(max_size, items.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
  EXPECT_GE(min_size, 1u);
}

TEST(SupportPartitionerTest, ClampsShardCount) {
  EXPECT_EQ(SupportPartitioner::Partition(FakeSupport(5), {}, {.num_shards = 0})
                .num_shards,
            1);
  EXPECT_EQ(
      SupportPartitioner::Partition(FakeSupport(5), {}, {.num_shards = 12})
          .num_shards,
      5);
  // Empty support: degenerate one-shard partition, no maps.
  SupportPartition empty =
      SupportPartitioner::Partition({}, {}, {.num_shards = 3});
  EXPECT_EQ(empty.num_shards, 1);
  EXPECT_TRUE(empty.shard_items[0].empty());
}

TEST(SupportPartitionerTest, SingleShardIsTheIdentityMap) {
  Rng rng(3);
  const uint32_t n = 30;
  core::Hypergraph h = qp::testing::RandomHypergraph(rng, n, 12, 4);
  SupportPartition partition = SupportPartitioner::Partition(
      FakeSupport(n), EdgesOf(h), {.num_shards = 1});
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(partition.shard_of_item[i], 0);
    EXPECT_EQ(partition.local_of_item[i], i);
  }
}

TEST(SupportPartitionerTest, SplitBundlePreservesItemsAndOrder) {
  Rng rng(5);
  const uint32_t n = 24;
  core::Hypergraph h = qp::testing::RandomHypergraph(rng, n, 10, 4);
  SupportPartition partition = SupportPartitioner::Partition(
      FakeSupport(n), EdgesOf(h), {.num_shards = 3});

  std::vector<uint32_t> bundle = {23, 0, 7, 15, 3};
  std::vector<std::vector<uint32_t>> parts = partition.SplitBundle(bundle);
  ASSERT_EQ(parts.size(), 3u);
  // Every bundle item lands exactly once, as its local id, and the
  // per-shard order follows the bundle order.
  size_t placed = 0;
  std::vector<size_t> cursor(parts.size(), 0);
  for (uint32_t item : bundle) {
    auto s = static_cast<size_t>(partition.shard_of_item[item]);
    ASSERT_LT(cursor[s], parts[s].size());
    EXPECT_EQ(parts[s][cursor[s]], partition.local_of_item[item]);
    ++cursor[s];
    ++placed;
  }
  for (size_t s = 0; s < parts.size(); ++s) {
    EXPECT_EQ(cursor[s], parts[s].size());
  }
  EXPECT_EQ(placed, bundle.size());
}

TEST(SupportPartitionerTest, DeterministicAcrossCallsAndProbeThreadCounts) {
  // The partition is a pure function of (support, seed edges); seed edges
  // from the real conflict engine are bit-identical for every probe
  // thread count, so FromQueries must agree at every width too.
  auto db = db::testing::MakeTestDatabase();
  Rng rng(7);
  auto support =
      GenerateSupport(*db, {.size = 80, .max_retries = 32}, rng);
  QP_CHECK_OK(support.status());
  std::vector<db::BoundQuery> queries;
  for (const char* sql : {
           "select * from Country",
           "select Name from Country where Continent = 'Europe'",
           "select CountryCode, sum(Population) from City group by "
           "CountryCode",
           "select max(Population) from Country",
       }) {
    auto q = db::ParseQuery(sql, *db);
    QP_CHECK_OK(q.status());
    queries.push_back(*q);
  }

  PartitionOptions options{.num_shards = 3};
  SupportPartition serial = SupportPartitioner::FromQueries(
      db.get(), *support, queries, {.num_threads = 1}, options);
  SupportPartition parallel = SupportPartitioner::FromQueries(
      db.get(), *support, queries, {.num_threads = 4}, options);
  SupportPartition again = SupportPartitioner::FromQueries(
      db.get(), *support, queries, {.num_threads = 4}, options);
  EXPECT_TRUE(SamePartition(serial, parallel));
  EXPECT_TRUE(SamePartition(parallel, again));

  // And the seeded queries are partition-respecting by construction.
  IncrementalBuilder prober(db.get(), *support, {});
  for (const db::BoundQuery& query : queries) {
    std::vector<uint32_t> edge = prober.ConflictSetFor(query);
    if (edge.empty()) continue;
    int shard = serial.shard_of_item[edge.front()];
    for (uint32_t item : edge) {
      EXPECT_EQ(serial.shard_of_item[item], shard);
    }
  }
}

}  // namespace
}  // namespace qp::market
