#include "market/conflict.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/eval.h"
#include "db/parser.h"
#include "tests/testing/test_db.h"

namespace qp::market {
namespace {

// The full battery of query shapes: every evaluation mode of the
// incremental engine plus both fallback triggers (LIMIT, double SUM/AVG).
const char* kQueries[] = {
    // Projection, single table.
    "select * from Country",
    "select Name from Country where Continent = 'Europe'",
    "select Name, Population from Country where Population > 100000000",
    "select Name from Country where Name like '%an%'",
    "select Name from City where Population between 3000000 and 13000000",
    "select distinct Continent from Country",
    "select distinct 1 from City where Population > 13000000",
    "select distinct CountryCode from CountryLanguage where IsOfficial = 'T'",
    // Aggregates, single table.
    "select count(*) from City",
    "select count(Name) from Country where Continent = 'Asia'",
    "select count(distinct Continent) from Country",
    "select sum(Population) from City where CountryCode = 'JPN'",
    "select avg(Population) from Country",
    "select min(Population), max(Population) from City",
    "select Continent, count(Code) from Country group by Continent",
    "select CountryCode, max(Population) from City group by CountryCode",
    "select CountryCode, sum(Population) from City group by CountryCode",
    "select Continent, min(Name) from Country group by Continent",
    "select Continent from Country group by Continent",
    // Joins.
    "select Name from Country, CountryLanguage where Code = CountryCode and "
    "Language = 'English'",
    "select C.Name from Country C, CountryLanguage L where C.Code = "
    "L.CountryCode and L.Percentage >= 50",
    "select * from Country, CountryLanguage where Code = CountryCode and "
    "Language = 'French'",
    "select Name, Language from Country, CountryLanguage where Code = "
    "CountryCode",
    "select distinct Continent from Country, City where Code = CountryCode "
    "and City.Population > 3000000",
    // Joins with aggregation.
    "select count(*) from Country, City where Code = CountryCode and "
    "Continent = 'Asia'",
    "select Continent, count(*) from Country, City where Code = CountryCode "
    "group by Continent",
    "select Continent, sum(City.Population) from Country, City where Code = "
    "CountryCode group by Continent",
    // Global aggregates over empty inputs (regression: the global group
    // exists even when no row matches; deltas can create first matches).
    "select sum(Population) from City where CountryCode = 'XXX'",
    "select count(Name), min(Population) from Country where Continent = "
    "'Atlantis'",
    "select count(*) from Country, City where Code = CountryCode and "
    "Continent = 'Atlantis'",
    // Fallback paths.
    "select Name from City limit 3",
    "select * from Country limit 2",
    "select avg(LifeExpectancy) from Country",  // double AVG
    "select sum(LifeExpectancy) from Country where Continent = 'Europe'",
    "select Continent, avg(LifeExpectancy) from Country group by Continent",
};

// The pre-overlay reference semantics: apply the delta in place,
// re-evaluate, compare, revert. The overlay engines must reproduce this
// bit-for-bit — it is the definition C_S(Q, D) was implemented against
// before probing became read-only.
std::vector<uint32_t> InPlaceConflictSet(db::Database& db,
                                         const db::BoundQuery& query,
                                         const SupportSet& support) {
  db::ResultTable base = db::Evaluate(query, db);
  std::vector<uint32_t> conflicts;
  for (uint32_t i = 0; i < support.size(); ++i) {
    db::Value saved = ApplyDelta(db, support[i]);
    db::ResultTable perturbed = db::Evaluate(query, db);
    UndoDelta(db, support[i], saved);
    if (!perturbed.Equals(base)) conflicts.push_back(i);
  }
  return conflicts;
}

class ConflictEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ConflictEquivalenceTest, OverlayEnginesMatchInPlaceSemantics) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(500 + GetParam());
  auto support = GenerateSupport(*db, {.size = 120, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  ConflictSetEngine engine(db.get());
  for (const char* sql : kQueries) {
    auto query = db::ParseQuery(sql, *db);
    ASSERT_TRUE(query.ok()) << sql << ": " << query.status();
    auto in_place = InPlaceConflictSet(*db, *query, *support);
    auto naive = NaiveConflictSet(*db, *query, *support);
    auto fast = engine.ConflictSet(*query, *support);
    EXPECT_EQ(naive, in_place) << sql;
    EXPECT_EQ(fast, in_place) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictEquivalenceTest, ::testing::Range(0, 5));

TEST(ConflictSetTest, DatabaseNeverModifiedDuringProbing) {
  // Probing is read-only: the engine takes a const database (a
  // compile-time guarantee) and the contents stay bit-identical to an
  // untouched reference copy — including for fallback (LIMIT) queries,
  // which re-evaluate through overlays.
  auto db = db::testing::MakeTestDatabase();
  auto reference = db::testing::MakeTestDatabase();
  Rng rng(21);
  auto support = GenerateSupport(*db, {.size = 80, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  const db::Database& const_db = *db;
  ConflictSetEngine engine(&const_db);
  for (const char* sql :
       {"select Continent, count(Code) from Country group by Continent",
        "select Name from City limit 3"}) {
    auto query = db::ParseQuery(sql, *db);
    ASSERT_TRUE(query.ok());
    engine.ConflictSet(*query, *support);
  }
  for (int t = 0; t < db->num_tables(); ++t) {
    for (int r = 0; r < db->table(t).num_rows(); ++r) {
      for (int c = 0; c < db->table(t).schema().num_columns(); ++c) {
        EXPECT_EQ(db->table(t).cell(r, c).Compare(
                      reference->table(t).cell(r, c)),
                  0);
      }
    }
  }
}

TEST(ConflictSetTest, ManyConcurrentProbesAgainstOneDatabase) {
  // One const database, one engine, many threads computing conflict sets
  // for the full query battery at once. Every thread must reproduce the
  // single-threaded answer, and the shared engine totals must aggregate
  // exactly (no lost updates).
  auto db = db::testing::MakeTestDatabase();
  Rng rng(97);
  auto support = GenerateSupport(*db, {.size = 60, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());

  std::vector<db::BoundQuery> queries;
  for (const char* sql : kQueries) {
    auto query = db::ParseQuery(sql, *db);
    ASSERT_TRUE(query.ok()) << sql;
    queries.push_back(*query);
  }

  ConflictSetEngine reference_engine(db.get());
  ConflictStats reference_stats;
  std::vector<std::vector<uint32_t>> expected;
  for (const db::BoundQuery& q : queries) {
    expected.push_back(
        reference_engine.ConflictSet(q, *support, reference_stats));
  }

  constexpr int kThreads = 8;
  ConflictSetEngine shared_engine(db.get());
  std::vector<ConflictStats> per_thread(kThreads);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (size_t q = 0; q < queries.size(); ++q) {
        auto conflicts =
            shared_engine.ConflictSet(queries[q], *support, per_thread[t]);
        if (conflicts != expected[q]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Index-ordered merge of the per-thread stats equals the engine totals
  // equals kThreads * the single-threaded run.
  ConflictStats merged;
  for (const ConflictStats& s : per_thread) merged.Merge(s);
  ConflictStats totals = shared_engine.stats();
  EXPECT_EQ(merged.probes, totals.probes);
  EXPECT_EQ(merged.pruned, totals.pruned);
  EXPECT_EQ(merged.fallback_queries, totals.fallback_queries);
  EXPECT_EQ(totals.probes, kThreads * reference_stats.probes);
  EXPECT_EQ(totals.pruned, kThreads * reference_stats.pruned);
  EXPECT_EQ(totals.fallback_queries,
            kThreads * reference_stats.fallback_queries);
}

TEST(ConflictSetTest, PreparedQueryIsShareableAcrossThreads) {
  // One PreparedConflictQuery probed concurrently: per-query prepared
  // state is immutable after construction, so threads share it without
  // synchronization and agree with the serial answer (join-partner
  // machinery included).
  auto db = db::testing::MakeTestDatabase();
  Rng rng(131);
  auto support = GenerateSupport(*db, {.size = 100, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  auto query = db::ParseQuery(
      "select Continent, sum(City.Population) from Country, City where "
      "Code = CountryCode group by Continent",
      *db);
  ASSERT_TRUE(query.ok());

  PreparedConflictQuery prepared(*db, *query);
  ConflictStats serial_stats;
  std::vector<char> expected;
  for (const CellDelta& delta : *support) {
    expected.push_back(prepared.Probe(delta, serial_stats) ? 1 : 0);
  }

  constexpr int kThreads = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      ConflictStats local;
      for (size_t i = 0; i < support->size(); ++i) {
        bool hit = prepared.Probe((*support)[i], local);
        if (hit != (expected[i] != 0)) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConflictSetTest, InsensitiveColumnsArePruned) {
  auto db = db::testing::MakeTestDatabase();
  // Query touches only Country.Continent and Country.Name.
  auto query = db::ParseQuery(
      "select Name from Country where Continent = 'Asia'", *db);
  ASSERT_TRUE(query.ok());
  // Delta on City.Population can never conflict.
  SupportSet support{CellDelta{1, 0, 3, db::Value::Int(123)}};
  ConflictSetEngine engine(db.get());
  EXPECT_TRUE(engine.ConflictSet(*query, support).empty());
  EXPECT_EQ(engine.stats().pruned, 1);
  EXPECT_EQ(engine.stats().probes, 0);
}

TEST(ConflictSetTest, KnownConflicts) {
  auto db = db::testing::MakeTestDatabase();
  auto query = db::ParseQuery(
      "select count(Name) from Country where Continent = 'Asia'", *db);
  ASSERT_TRUE(query.ok());
  // Flipping France's continent to Asia changes the count: conflict.
  // Row 1 = FRA, column 2 = Continent.
  SupportSet support{
      CellDelta{0, 1, 2, db::Value::Str("Asia")},          // changes count
      CellDelta{0, 1, 2, db::Value::Str("South America")}, // Europe->SA: no
      CellDelta{0, 3, 2, db::Value::Str("Europe")},        // JPN out of Asia
      CellDelta{0, 1, 3, db::Value::Int(999)},             // population: no
  };
  ConflictSetEngine engine(db.get());
  auto conflicts = engine.ConflictSet(*query, support);
  EXPECT_EQ(conflicts, (std::vector<uint32_t>{0, 2}));
}

TEST(ConflictSetTest, JoinKeyDeltaMovesMatches) {
  auto db = db::testing::MakeTestDatabase();
  auto query = db::ParseQuery(
      "select Name from Country, CountryLanguage where Code = CountryCode "
      "and Language = 'English'",
      *db);
  ASSERT_TRUE(query.ok());
  // CountryLanguage row 0 = (USA, English). Repointing it to FRA changes
  // the result (France appears instead of the USA).
  SupportSet support{
      CellDelta{2, 0, 0, db::Value::Str("FRA")},
      // Hindi -> something else: India still has English via row 7; the
      // result only contains Name so nothing changes.
      CellDelta{2, 6, 1, db::Value::Str("Tamil")},
  };
  auto naive = NaiveConflictSet(*db, *query, support);
  ConflictSetEngine engine(db.get());
  EXPECT_EQ(engine.ConflictSet(*query, support), naive);
  EXPECT_EQ(naive, (std::vector<uint32_t>{0}));
}

TEST(ConflictSetTest, EmptyConflictSetForIrrelevantQuery) {
  auto db = db::testing::MakeTestDatabase();
  auto query = db::ParseQuery("select count(*) from City", *db);
  ASSERT_TRUE(query.ok());
  Rng rng(31);
  auto support = GenerateSupport(*db, {.size = 60, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  // Cell deltas never change row counts: bare COUNT(*) has no conflicts.
  ConflictSetEngine engine(db.get());
  EXPECT_TRUE(engine.ConflictSet(*query, *support).empty());
}

TEST(ConflictSetTest, StatsMergeIsExact) {
  ConflictStats a{.probes = 3, .pruned = 10, .fallback_queries = 1};
  ConflictStats b{.probes = 4, .pruned = 0, .fallback_queries = 2};
  a.Merge(b);
  EXPECT_EQ(a.probes, 7);
  EXPECT_EQ(a.pruned, 10);
  EXPECT_EQ(a.fallback_queries, 3);
}

TEST(ConflictSetTest, StatsAccumulateAcrossQueries) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(41);
  auto support = GenerateSupport(*db, {.size = 40, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  ConflictSetEngine engine(db.get());
  auto q1 = db::ParseQuery("select Name from Country", *db);
  auto q2 = db::ParseQuery("select Name from City limit 2", *db);
  ASSERT_TRUE(q1.ok() && q2.ok());
  engine.ConflictSet(*q1, *support);
  engine.ConflictSet(*q2, *support);
  EXPECT_EQ(engine.stats().fallback_queries, 1);
  EXPECT_GT(engine.stats().probes, 0);
  EXPECT_GT(engine.stats().pruned, 0);
}

}  // namespace
}  // namespace qp::market
