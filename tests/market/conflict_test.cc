#include "market/conflict.h"

#include <gtest/gtest.h>

#include "db/parser.h"
#include "tests/testing/test_db.h"

namespace qp::market {
namespace {

// The full battery of query shapes: every evaluation mode of the
// incremental engine plus both fallback triggers (LIMIT, double SUM/AVG).
const char* kQueries[] = {
    // Projection, single table.
    "select * from Country",
    "select Name from Country where Continent = 'Europe'",
    "select Name, Population from Country where Population > 100000000",
    "select Name from Country where Name like '%an%'",
    "select Name from City where Population between 3000000 and 13000000",
    "select distinct Continent from Country",
    "select distinct 1 from City where Population > 13000000",
    "select distinct CountryCode from CountryLanguage where IsOfficial = 'T'",
    // Aggregates, single table.
    "select count(*) from City",
    "select count(Name) from Country where Continent = 'Asia'",
    "select count(distinct Continent) from Country",
    "select sum(Population) from City where CountryCode = 'JPN'",
    "select avg(Population) from Country",
    "select min(Population), max(Population) from City",
    "select Continent, count(Code) from Country group by Continent",
    "select CountryCode, max(Population) from City group by CountryCode",
    "select CountryCode, sum(Population) from City group by CountryCode",
    "select Continent, min(Name) from Country group by Continent",
    "select Continent from Country group by Continent",
    // Joins.
    "select Name from Country, CountryLanguage where Code = CountryCode and "
    "Language = 'English'",
    "select C.Name from Country C, CountryLanguage L where C.Code = "
    "L.CountryCode and L.Percentage >= 50",
    "select * from Country, CountryLanguage where Code = CountryCode and "
    "Language = 'French'",
    "select Name, Language from Country, CountryLanguage where Code = "
    "CountryCode",
    "select distinct Continent from Country, City where Code = CountryCode "
    "and City.Population > 3000000",
    // Joins with aggregation.
    "select count(*) from Country, City where Code = CountryCode and "
    "Continent = 'Asia'",
    "select Continent, count(*) from Country, City where Code = CountryCode "
    "group by Continent",
    "select Continent, sum(City.Population) from Country, City where Code = "
    "CountryCode group by Continent",
    // Global aggregates over empty inputs (regression: the global group
    // exists even when no row matches; deltas can create first matches).
    "select sum(Population) from City where CountryCode = 'XXX'",
    "select count(Name), min(Population) from Country where Continent = "
    "'Atlantis'",
    "select count(*) from Country, City where Code = CountryCode and "
    "Continent = 'Atlantis'",
    // Fallback paths.
    "select Name from City limit 3",
    "select * from Country limit 2",
    "select avg(LifeExpectancy) from Country",  // double AVG
    "select sum(LifeExpectancy) from Country where Continent = 'Europe'",
    "select Continent, avg(LifeExpectancy) from Country group by Continent",
};

class ConflictEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ConflictEquivalenceTest, IncrementalMatchesNaive) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(500 + GetParam());
  auto support = GenerateSupport(*db, {.size = 120, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  ConflictSetEngine engine(db.get());
  for (const char* sql : kQueries) {
    auto query = db::ParseQuery(sql, *db);
    ASSERT_TRUE(query.ok()) << sql << ": " << query.status();
    auto naive = NaiveConflictSet(*db, *query, *support);
    auto fast = engine.ConflictSet(*query, *support);
    EXPECT_EQ(fast, naive) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictEquivalenceTest, ::testing::Range(0, 5));

TEST(ConflictSetTest, DatabaseRestoredAfterProbing) {
  auto db = db::testing::MakeTestDatabase();
  auto reference = db::testing::MakeTestDatabase();
  Rng rng(21);
  auto support = GenerateSupport(*db, {.size = 80, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  ConflictSetEngine engine(db.get());
  auto query = db::ParseQuery(
      "select Continent, count(Code) from Country group by Continent", *db);
  ASSERT_TRUE(query.ok());
  engine.ConflictSet(*query, *support);
  for (int t = 0; t < db->num_tables(); ++t) {
    for (int r = 0; r < db->table(t).num_rows(); ++r) {
      for (int c = 0; c < db->table(t).schema().num_columns(); ++c) {
        EXPECT_EQ(db->table(t).cell(r, c).Compare(
                      reference->table(t).cell(r, c)),
                  0);
      }
    }
  }
}

TEST(ConflictSetTest, InsensitiveColumnsArePruned) {
  auto db = db::testing::MakeTestDatabase();
  // Query touches only Country.Continent and Country.Name.
  auto query = db::ParseQuery(
      "select Name from Country where Continent = 'Asia'", *db);
  ASSERT_TRUE(query.ok());
  // Delta on City.Population can never conflict.
  SupportSet support{CellDelta{1, 0, 3, db::Value::Int(123)}};
  ConflictSetEngine engine(db.get());
  EXPECT_TRUE(engine.ConflictSet(*query, support).empty());
  EXPECT_EQ(engine.stats().pruned, 1);
  EXPECT_EQ(engine.stats().probes, 0);
}

TEST(ConflictSetTest, KnownConflicts) {
  auto db = db::testing::MakeTestDatabase();
  auto query = db::ParseQuery(
      "select count(Name) from Country where Continent = 'Asia'", *db);
  ASSERT_TRUE(query.ok());
  // Flipping France's continent to Asia changes the count: conflict.
  // Row 1 = FRA, column 2 = Continent.
  SupportSet support{
      CellDelta{0, 1, 2, db::Value::Str("Asia")},          // changes count
      CellDelta{0, 1, 2, db::Value::Str("South America")}, // Europe->SA: no
      CellDelta{0, 3, 2, db::Value::Str("Europe")},        // JPN out of Asia
      CellDelta{0, 1, 3, db::Value::Int(999)},             // population: no
  };
  ConflictSetEngine engine(db.get());
  auto conflicts = engine.ConflictSet(*query, support);
  EXPECT_EQ(conflicts, (std::vector<uint32_t>{0, 2}));
}

TEST(ConflictSetTest, JoinKeyDeltaMovesMatches) {
  auto db = db::testing::MakeTestDatabase();
  auto query = db::ParseQuery(
      "select Name from Country, CountryLanguage where Code = CountryCode "
      "and Language = 'English'",
      *db);
  ASSERT_TRUE(query.ok());
  // CountryLanguage row 0 = (USA, English). Repointing it to FRA changes
  // the result (France appears instead of the USA).
  SupportSet support{
      CellDelta{2, 0, 0, db::Value::Str("FRA")},
      // Hindi -> something else: India still has English via row 7; the
      // result only contains Name so nothing changes.
      CellDelta{2, 6, 1, db::Value::Str("Tamil")},
  };
  auto naive = NaiveConflictSet(*db, *query, support);
  ConflictSetEngine engine(db.get());
  EXPECT_EQ(engine.ConflictSet(*query, support), naive);
  EXPECT_EQ(naive, (std::vector<uint32_t>{0}));
}

TEST(ConflictSetTest, EmptyConflictSetForIrrelevantQuery) {
  auto db = db::testing::MakeTestDatabase();
  auto query = db::ParseQuery("select count(*) from City", *db);
  ASSERT_TRUE(query.ok());
  Rng rng(31);
  auto support = GenerateSupport(*db, {.size = 60, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  // Cell deltas never change row counts: bare COUNT(*) has no conflicts.
  ConflictSetEngine engine(db.get());
  EXPECT_TRUE(engine.ConflictSet(*query, *support).empty());
}

TEST(ConflictSetTest, StatsAccumulateAcrossQueries) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(41);
  auto support = GenerateSupport(*db, {.size = 40, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  ConflictSetEngine engine(db.get());
  auto q1 = db::ParseQuery("select Name from Country", *db);
  auto q2 = db::ParseQuery("select Name from City limit 2", *db);
  ASSERT_TRUE(q1.ok() && q2.ok());
  engine.ConflictSet(*q1, *support);
  engine.ConflictSet(*q2, *support);
  EXPECT_EQ(engine.stats().fallback_queries, 1);
  EXPECT_GT(engine.stats().probes, 0);
  EXPECT_GT(engine.stats().pruned, 0);
}

}  // namespace
}  // namespace qp::market
