#include "market/hypergraph_builder.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "db/parser.h"
#include "tests/testing/test_db.h"

namespace qp::market {
namespace {

std::vector<db::BoundQuery> TestQueries(const db::Database& db) {
  std::vector<db::BoundQuery> queries;
  for (const char* sql : {
           "select Name from Country where Continent = 'Europe'",
           "select count(*) from City",  // empty conflict set
           "select Continent, count(Code) from Country group by Continent",
           "select Name from Country, CountryLanguage where Code = "
           "CountryCode and Language = 'English'",
       }) {
    auto q = db::ParseQuery(sql, db);
    EXPECT_TRUE(q.ok()) << sql;
    queries.push_back(*q);
  }
  return queries;
}

TEST(HypergraphBuilderTest, EdgesMatchConflictSets) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(71);
  auto support = GenerateSupport(*db, {.size = 100, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  auto queries = TestQueries(*db);
  BuildResult result = BuildHypergraph(*db, queries, *support);
  EXPECT_EQ(result.hypergraph.num_items(), 100u);
  ASSERT_EQ(result.hypergraph.num_edges(), 4);
  for (int e = 0; e < 4; ++e) {
    EXPECT_EQ(result.hypergraph.edge(e), result.conflict_sets[e]);
  }
  // Bare COUNT(*) has an empty conflict set (edge of size zero).
  EXPECT_EQ(result.hypergraph.edge_size(1), 0);
  EXPECT_GE(result.seconds, 0.0);
}

TEST(HypergraphBuilderTest, IncrementalAndNaiveAgree) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(72);
  auto support = GenerateSupport(*db, {.size = 80, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  auto queries = TestQueries(*db);
  BuildResult fast = BuildHypergraph(*db, queries, *support, {.incremental = true});
  BuildResult slow = BuildHypergraph(*db, queries, *support, {.incremental = false});
  ASSERT_EQ(fast.hypergraph.num_edges(), slow.hypergraph.num_edges());
  for (int e = 0; e < fast.hypergraph.num_edges(); ++e) {
    EXPECT_EQ(fast.conflict_sets[e], slow.conflict_sets[e]) << "edge " << e;
  }
}

TEST(HypergraphBuilderTest, DeterministicAcrossRuns) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(73);
  auto support = GenerateSupport(*db, {.size = 60, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  auto queries = TestQueries(*db);
  BuildResult a = BuildHypergraph(*db, queries, *support);
  BuildResult b = BuildHypergraph(*db, queries, *support);
  for (int e = 0; e < a.hypergraph.num_edges(); ++e) {
    EXPECT_EQ(a.conflict_sets[e], b.conflict_sets[e]);
  }
}

TEST(HypergraphBuilderTest, ParallelBuildIsThreadCountIndependent) {
  // Edge construction fans out over the thread pool into per-query slots
  // with an index-ordered reduction: edges AND merged build stats must be
  // bit-identical for every thread count.
  auto db = db::testing::MakeTestDatabase();
  Rng rng(74);
  auto support = GenerateSupport(*db, {.size = 120, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  auto queries = TestQueries(*db);
  BuildResult serial = BuildHypergraph(*db, queries, *support,
                                       {.incremental = true, .num_threads = 1});
  for (int threads : {2, 4, 7}) {
    BuildResult parallel = BuildHypergraph(
        *db, queries, *support, {.incremental = true, .num_threads = threads});
    ASSERT_EQ(parallel.hypergraph.num_edges(), serial.hypergraph.num_edges())
        << threads << " threads";
    for (int e = 0; e < serial.hypergraph.num_edges(); ++e) {
      EXPECT_EQ(parallel.conflict_sets[e], serial.conflict_sets[e])
          << threads << " threads, edge " << e;
      EXPECT_EQ(parallel.hypergraph.edge(e), serial.hypergraph.edge(e));
    }
    EXPECT_EQ(parallel.stats.probes, serial.stats.probes);
    EXPECT_EQ(parallel.stats.pruned, serial.stats.pruned);
    EXPECT_EQ(parallel.stats.fallback_queries, serial.stats.fallback_queries);
  }
}

TEST(IncrementalBuilderTest, ConflictSetForIsSafeDuringAppend) {
  // The builder's read side: ConflictSetFor runs concurrently with one
  // writer appending batches, and always returns the same (support-only
  // dependent) conflict set.
  auto db = db::testing::MakeTestDatabase();
  Rng rng(75);
  auto support = GenerateSupport(*db, {.size = 80, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  auto queries = TestQueries(*db);

  IncrementalBuilder builder(db.get(), *support, {.num_threads = 2});
  const std::vector<uint32_t> expected = builder.ConflictSetFor(queries[0]);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      if (builder.ConflictSetFor(queries[0]) != expected) {
        mismatches.fetch_add(1);
      }
    }
  });
  for (int round = 0; round < 8; ++round) builder.Append(queries);
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(builder.hypergraph().num_edges(),
            8 * static_cast<int>(queries.size()));
  // Build-side stats merged per query slot; totals also cover the
  // reader's probes (atomic accumulation, so nothing was lost).
  EXPECT_GE(builder.stats().probes, builder.build_stats().probes);
}

}  // namespace
}  // namespace qp::market
