#include "market/hypergraph_builder.h"

#include <gtest/gtest.h>

#include "db/parser.h"
#include "tests/testing/test_db.h"

namespace qp::market {
namespace {

std::vector<db::BoundQuery> TestQueries(const db::Database& db) {
  std::vector<db::BoundQuery> queries;
  for (const char* sql : {
           "select Name from Country where Continent = 'Europe'",
           "select count(*) from City",  // empty conflict set
           "select Continent, count(Code) from Country group by Continent",
           "select Name from Country, CountryLanguage where Code = "
           "CountryCode and Language = 'English'",
       }) {
    auto q = db::ParseQuery(sql, db);
    EXPECT_TRUE(q.ok()) << sql;
    queries.push_back(*q);
  }
  return queries;
}

TEST(HypergraphBuilderTest, EdgesMatchConflictSets) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(71);
  auto support = GenerateSupport(*db, {.size = 100, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  auto queries = TestQueries(*db);
  BuildResult result = BuildHypergraph(*db, queries, *support);
  EXPECT_EQ(result.hypergraph.num_items(), 100u);
  ASSERT_EQ(result.hypergraph.num_edges(), 4);
  for (int e = 0; e < 4; ++e) {
    EXPECT_EQ(result.hypergraph.edge(e), result.conflict_sets[e]);
  }
  // Bare COUNT(*) has an empty conflict set (edge of size zero).
  EXPECT_EQ(result.hypergraph.edge_size(1), 0);
  EXPECT_GE(result.seconds, 0.0);
}

TEST(HypergraphBuilderTest, IncrementalAndNaiveAgree) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(72);
  auto support = GenerateSupport(*db, {.size = 80, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  auto queries = TestQueries(*db);
  BuildResult fast = BuildHypergraph(*db, queries, *support, {.incremental = true});
  BuildResult slow = BuildHypergraph(*db, queries, *support, {.incremental = false});
  ASSERT_EQ(fast.hypergraph.num_edges(), slow.hypergraph.num_edges());
  for (int e = 0; e < fast.hypergraph.num_edges(); ++e) {
    EXPECT_EQ(fast.conflict_sets[e], slow.conflict_sets[e]) << "edge " << e;
  }
}

TEST(HypergraphBuilderTest, DeterministicAcrossRuns) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(73);
  auto support = GenerateSupport(*db, {.size = 60, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  auto queries = TestQueries(*db);
  BuildResult a = BuildHypergraph(*db, queries, *support);
  BuildResult b = BuildHypergraph(*db, queries, *support);
  for (int e = 0; e < a.hypergraph.num_edges(); ++e) {
    EXPECT_EQ(a.conflict_sets[e], b.conflict_sets[e]);
  }
}

}  // namespace
}  // namespace qp::market
