#include "market/support.h"

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "tests/testing/test_db.h"

namespace qp::market {
namespace {

TEST(SupportTest, GeneratesRequestedSize) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(1);
  auto support = GenerateSupport(*db, {.size = 50, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok()) << support.status();
  EXPECT_EQ(support->size(), 50u);
}

TEST(SupportTest, DeltasAreDistinct) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(2);
  auto support = GenerateSupport(*db, {.size = 100, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  std::set<std::tuple<int, int, int, std::string>> seen;
  for (const CellDelta& d : *support) {
    EXPECT_TRUE(
        seen.insert({d.table, d.row, d.column, d.new_value.ToString()}).second);
  }
}

TEST(SupportTest, DeltasActuallyChangeCells) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(3);
  auto support = GenerateSupport(*db, {.size = 100, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  for (const CellDelta& d : *support) {
    const db::Value& current = db->table(d.table).cell(d.row, d.column);
    EXPECT_NE(current.Compare(d.new_value), 0)
        << "delta does not change table " << d.table << " row " << d.row;
  }
}

TEST(SupportTest, DeltasStayInBoundsAndTyped) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(4);
  auto support = GenerateSupport(*db, {.size = 200, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  for (const CellDelta& d : *support) {
    ASSERT_GE(d.table, 0);
    ASSERT_LT(d.table, db->num_tables());
    const db::Table& t = db->table(d.table);
    ASSERT_GE(d.row, 0);
    ASSERT_LT(d.row, t.num_rows());
    ASSERT_GE(d.column, 0);
    ASSERT_LT(d.column, t.schema().num_columns());
    // Same-type perturbations (swap from the column's domain).
    EXPECT_EQ(d.new_value.type(), t.schema().column(d.column).type);
  }
}

TEST(SupportTest, DeterministicGivenSeed) {
  auto db = db::testing::MakeTestDatabase();
  Rng a(7), b(7);
  auto s1 = GenerateSupport(*db, {.size = 30, .max_retries = 32}, a);
  auto s2 = GenerateSupport(*db, {.size = 30, .max_retries = 32}, b);
  ASSERT_TRUE(s1.ok() && s2.ok());
  for (size_t i = 0; i < s1->size(); ++i) {
    EXPECT_EQ((*s1)[i].table, (*s2)[i].table);
    EXPECT_EQ((*s1)[i].row, (*s2)[i].row);
    EXPECT_EQ((*s1)[i].column, (*s2)[i].column);
    EXPECT_EQ((*s1)[i].new_value.Compare((*s2)[i].new_value), 0);
  }
}

TEST(SupportTest, ApplyUndoRoundTrips) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(8);
  auto support = GenerateSupport(*db, {.size = 20, .max_retries = 32}, rng);
  ASSERT_TRUE(support.ok());
  for (const CellDelta& d : *support) {
    db::Value before = db->table(d.table).cell(d.row, d.column);
    db::Value saved = ApplyDelta(*db, d);
    EXPECT_EQ(saved.Compare(before), 0);
    EXPECT_EQ(db->table(d.table).cell(d.row, d.column).Compare(d.new_value), 0);
    UndoDelta(*db, d, saved);
    EXPECT_EQ(db->table(d.table).cell(d.row, d.column).Compare(before), 0);
  }
}

TEST(SupportTest, ZeroSizeSupportIsEmpty) {
  auto db = db::testing::MakeTestDatabase();
  Rng rng(9);
  auto support = GenerateSupport(*db, {.size = 0, .max_retries = 4}, rng);
  ASSERT_TRUE(support.ok());
  EXPECT_TRUE(support->empty());
}

TEST(SupportTest, EmptyDatabaseFails) {
  db::Database empty;
  Rng rng(10);
  EXPECT_FALSE(GenerateSupport(empty, {.size = 5, .max_retries = 4}, rng).ok());
}

}  // namespace
}  // namespace qp::market
