#include "market/arbitrage.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/valuation.h"

namespace qp::market {
namespace {

// A deliberately broken "pricing" for negative tests: charges less for a
// superset (violates monotonicity).
class DecreasingPricing : public core::PricingFunction {
 public:
  double Price(const std::vector<uint32_t>& bundle) const override {
    return 10.0 - static_cast<double>(bundle.size());
  }
  std::string Describe() const override { return "decreasing"; }
  std::unique_ptr<core::PricingFunction> Clone() const override {
    return std::make_unique<DecreasingPricing>();
  }
};

// Superadditive pricing (violates subadditivity): quadratic in size.
class QuadraticPricing : public core::PricingFunction {
 public:
  double Price(const std::vector<uint32_t>& bundle) const override {
    return static_cast<double>(bundle.size() * bundle.size());
  }
  std::string Describe() const override { return "quadratic"; }
  std::unique_ptr<core::PricingFunction> Clone() const override {
    return std::make_unique<QuadraticPricing>();
  }
};

TEST(ArbitrageCheckTest, UniformBundleIsArbitrageFree) {
  core::UniformBundlePricing p(5.0);
  auto report = CheckArbitrageFreeExhaustive(p, 6);
  EXPECT_TRUE(report.arbitrage_free()) << report.violation;
}

TEST(ArbitrageCheckTest, ItemPricingIsArbitrageFree) {
  core::ItemPricing p({1.0, 0.0, 2.5, 0.25, 3.0, 0.0});
  auto report = CheckArbitrageFreeExhaustive(p, 6);
  EXPECT_TRUE(report.arbitrage_free()) << report.violation;
}

TEST(ArbitrageCheckTest, XosPricingIsArbitrageFree) {
  core::XosPricing p({{1.0, 0.0, 2.0, 0.0}, {0.0, 3.0, 0.0, 0.5}});
  auto report = CheckArbitrageFreeExhaustive(p, 4);
  EXPECT_TRUE(report.arbitrage_free()) << report.violation;
}

TEST(ArbitrageCheckTest, DetectsMonotonicityViolation) {
  DecreasingPricing p;
  auto report = CheckArbitrageFreeExhaustive(p, 5);
  EXPECT_FALSE(report.monotone);
  EXPECT_FALSE(report.violation.empty());
  EXPECT_NE(report.violation.find("monotonicity"), std::string::npos);
}

TEST(ArbitrageCheckTest, DetectsSubadditivityViolation) {
  QuadraticPricing p;
  auto report = CheckArbitrageFreeExhaustive(p, 5);
  EXPECT_FALSE(report.subadditive);
  EXPECT_NE(report.violation.find("subadditivity"), std::string::npos);
}

TEST(ArbitrageCheckTest, SamplerAgreesOnViolations) {
  Rng rng(51);
  DecreasingPricing bad;
  EXPECT_FALSE(CheckArbitrageFree(bad, 8, rng).monotone);
  core::ItemPricing good({1, 2, 3, 4, 5, 6, 7, 8});
  Rng rng2(52);
  EXPECT_TRUE(CheckArbitrageFree(good, 8, rng2).arbitrage_free());
}

// Theorem 1 in practice: every pricing produced by every algorithm must be
// monotone + subadditive, i.e. arbitrage-free.
class AlgorithmsArbitrageFreeTest : public ::testing::TestWithParam<int> {};

TEST_P(AlgorithmsArbitrageFreeTest, AllProducedPricingsAreArbitrageFree) {
  Rng rng(600 + GetParam());
  core::Hypergraph h(10);
  for (int e = 0; e < 12; ++e) {
    std::vector<uint32_t> items;
    int size = static_cast<int>(rng.UniformInt(1, 5));
    for (int s = 0; s < size; ++s) {
      items.push_back(static_cast<uint32_t>(rng.UniformInt(0, 9)));
    }
    h.AddEdge(std::move(items));
  }
  core::Valuations v = core::SampleUniformValuations(h, 50, rng);
  for (const auto& result : core::RunAllAlgorithms(h, v)) {
    auto report = CheckArbitrageFreeExhaustive(*result.pricing, 10);
    EXPECT_TRUE(report.arbitrage_free())
        << result.algorithm << ": " << report.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmsArbitrageFreeTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace qp::market
