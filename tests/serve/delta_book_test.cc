// Delta-chain price-book determinism suite. The contracts pinned here:
//  (a) a delta-chain engine (consolidate_every = K) quotes bit-identical
//      to a deep-copy engine (consolidate_every = 1) at every
//      generation, in particular straddling consolidation boundaries
//      (K-1, K, K+1 deltas on the chain), for every build thread count,
//      monolithic and sharded;
//  (b) BookView::Materialize folds a chain into a snapshot bit-identical
//      to the cold full-copy snapshot of the same generation;
//  (c) the quote hot path pins epochs instead of shared_ptr refcounts —
//      EngineStats::epoch.pins counts every quote;
//  (d) a PriceBookSnapshot cannot be built over an empty result set
//      (the best() out-of-bounds regression).
#include "serve/delta_book.h"

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/algorithms.h"
#include "db/parser.h"
#include "market/support.h"
#include "market/support_partitioner.h"
#include "serve/price_book.h"
#include "serve/pricing_engine.h"
#include "serve/sharded_engine.h"
#include "tests/testing/test_db.h"

namespace qp::serve {
namespace {

struct Buyer {
  const char* sql;
  double valuation;
};

// One buyer per generation: enough appends to push a K=4 chain through
// several consolidation cycles.
const std::vector<Buyer>& Buyers() {
  static const std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 6.0},
      {"select max(Population) from Country", 8.0},
      {"select CountryCode, sum(Population) from City group by CountryCode",
       35.0},
      {"select distinct Continent from Country", 1.5},
      {"select Name from City where Population > 10000000", 2.5},
      {"select min(LifeExpectancy) from Country", 0.75},
      {"select Language from CountryLanguage where IsOfficial = 'T'", 4.0},
      {"select avg(Percentage) from CountryLanguage", 3.0},
  };
  return buyers;
}

struct Market {
  std::unique_ptr<db::Database> db;
  market::SupportSet support;
  std::vector<db::BoundQuery> queries;
  core::Valuations valuations;
};

Market MakeMarket(int support_size = 150) {
  Market m;
  m.db = db::testing::MakeTestDatabase();
  Rng rng(7);
  auto support = market::GenerateSupport(
      *m.db, {.size = support_size, .max_retries = 32}, rng);
  QP_CHECK_OK(support.status());
  m.support = *support;
  for (const Buyer& buyer : Buyers()) {
    auto q = db::ParseQuery(buyer.sql, *m.db);
    QP_CHECK_OK(q.status());
    m.queries.push_back(*q);
    m.valuations.push_back(buyer.valuation);
  }
  return m;
}

EngineOptions Options(uint32_t consolidate_every, int build_threads = 1) {
  EngineOptions options;
  options.algorithms.lpip.max_candidates = 0;
  options.algorithms.lpip.chain_length = 1;
  options.consolidate_every = consolidate_every;
  options.build.num_threads = build_threads;
  return options;
}

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

// Probe bundles covering the resolution paths: singletons, a short run,
// a strided spread, and the empty bundle.
std::vector<std::vector<uint32_t>> ProbeBundles(uint32_t num_items) {
  std::vector<std::vector<uint32_t>> bundles;
  bundles.push_back({});
  for (uint32_t i = 0; i < num_items; i += 37) bundles.push_back({i});
  std::vector<uint32_t> run;
  for (uint32_t i = 0; i < num_items && i < 8; ++i) run.push_back(i);
  bundles.push_back(run);
  std::vector<uint32_t> strided;
  for (uint32_t i = 0; i < num_items; i += 11) strided.push_back(i);
  bundles.push_back(strided);
  return bundles;
}

// Bitwise comparison of two quotes for the same bundle.
void ExpectQuoteBitsEqual(const Quote& chain, const Quote& deep) {
  EXPECT_EQ(Bits(chain.price), Bits(deep.price));
  EXPECT_EQ(chain.version, deep.version);
  EXPECT_EQ(chain.algorithm, deep.algorithm);
}

// Bitwise comparison of two snapshots (prices probed per result, since
// pricing parameters live behind the PricingFunction interface).
void ExpectSnapshotBitsEqual(const PriceBookSnapshot& a,
                             const PriceBookSnapshot& b,
                             const std::vector<std::vector<uint32_t>>& probes) {
  ASSERT_EQ(a.results().size(), b.results().size());
  EXPECT_EQ(a.version(), b.version());
  EXPECT_EQ(a.best_index(), b.best_index());
  for (size_t i = 0; i < a.results().size(); ++i) {
    EXPECT_EQ(a.results()[i].algorithm, b.results()[i].algorithm);
    EXPECT_EQ(Bits(a.results()[i].revenue), Bits(b.results()[i].revenue));
    EXPECT_EQ(a.results()[i].lps_solved, b.results()[i].lps_solved);
    for (const std::vector<uint32_t>& bundle : probes) {
      EXPECT_EQ(Bits(a.results()[i].pricing->Price(bundle)),
                Bits(b.results()[i].pricing->Price(bundle)));
    }
  }
}

TEST(DeltaBookTest, EmptySnapshotDies) {
  core::RepriceStats stats;
  std::vector<core::PricingResult> none;
  EXPECT_DEATH(PriceBookSnapshot(1, std::move(none), stats, 10, 0),
               "no results");
}

// (a) monolithic: appends one buyer at a time so the K=4 chain crosses
// its consolidation boundary twice; every generation — in particular at
// chain lengths K-1, K and K+1 — quotes bit-identical to the deep-copy
// engine, and the folded snapshot matches too.
TEST(DeltaBookTest, ChainQuotesMatchDeepCopyAcrossConsolidation) {
  Market m = MakeMarket();
  constexpr uint32_t kEvery = 4;
  PricingEngine chain_engine(m.db.get(), m.support, Options(kEvery));
  PricingEngine deep_engine(m.db.get(), m.support, Options(1));
  auto probes = ProbeBundles(static_cast<uint32_t>(m.support.size()));

  bool crossed = false;
  for (size_t g = 0; g < m.queries.size(); ++g) {
    QP_CHECK_OK(chain_engine.AppendBuyers({m.queries[g]},
                                          {m.valuations[g]}));
    QP_CHECK_OK(deep_engine.AppendBuyers({m.queries[g]}, {m.valuations[g]}));

    for (const std::vector<uint32_t>& bundle : probes) {
      ExpectQuoteBitsEqual(chain_engine.QuoteBundle(bundle),
                           deep_engine.QuoteBundle(bundle));
    }
    ExpectSnapshotBitsEqual(*chain_engine.snapshot(), *deep_engine.snapshot(),
                            probes);
    if (chain_engine.stats().publish.chain_length == 0 && g > 0) {
      crossed = true;  // the chain consolidated at least once mid-run
    }
  }
  EXPECT_TRUE(crossed);

  // The delta path actually exercised deltas (not all fallbacks), and
  // the deep-copy engine never grew a chain.
  EngineStats cs = chain_engine.stats();
  EXPECT_GT(cs.publish.deltas, 0u);
  EXPECT_LT(cs.publish.bases, deep_engine.stats().publish.bases);
  EXPECT_EQ(deep_engine.stats().publish.deltas, 0u);
  EXPECT_EQ(deep_engine.stats().publish.chain_length, 0u);
}

// (a) thread counts: parallel hypergraph build publishes the same
// delta chain bit for bit.
TEST(DeltaBookTest, ChainQuotesIdenticalAcrossBuildThreadCounts) {
  Market m = MakeMarket();
  PricingEngine serial(m.db.get(), m.support, Options(4, /*build_threads=*/1));
  PricingEngine parallel(m.db.get(), m.support,
                         Options(4, /*build_threads=*/4));
  auto probes = ProbeBundles(static_cast<uint32_t>(m.support.size()));

  for (size_t g = 0; g < m.queries.size(); ++g) {
    QP_CHECK_OK(serial.AppendBuyers({m.queries[g]}, {m.valuations[g]}));
    QP_CHECK_OK(parallel.AppendBuyers({m.queries[g]}, {m.valuations[g]}));
    for (const std::vector<uint32_t>& bundle : probes) {
      ExpectQuoteBitsEqual(serial.QuoteBundle(bundle),
                           parallel.QuoteBundle(bundle));
    }
  }
  EXPECT_EQ(serial.stats().publish.deltas, parallel.stats().publish.deltas);
  EXPECT_EQ(serial.stats().publish.bases, parallel.stats().publish.bases);
}

// (b) Materialize == the cold snapshot the writer would have published
// with full copies, at every chain length.
TEST(DeltaBookTest, MaterializeMatchesColdSnapshot) {
  Market m = MakeMarket();
  PricingEngine chain_engine(m.db.get(), m.support, Options(4));
  PricingEngine deep_engine(m.db.get(), m.support, Options(1));
  auto probes = ProbeBundles(static_cast<uint32_t>(m.support.size()));

  for (size_t g = 0; g < m.queries.size(); ++g) {
    QP_CHECK_OK(chain_engine.AppendBuyers({m.queries[g]},
                                          {m.valuations[g]}));
    QP_CHECK_OK(deep_engine.AppendBuyers({m.queries[g]}, {m.valuations[g]}));
    common::EpochManager::Guard guard(chain_engine.epochs());
    BookView view = chain_engine.book_view();
    std::shared_ptr<const PriceBookSnapshot> folded = view.Materialize();
    ExpectSnapshotBitsEqual(*folded, *deep_engine.snapshot(), probes);
    // The view itself resolves every probe exactly as its folded form.
    for (const std::vector<uint32_t>& bundle : probes) {
      ExpectQuoteBitsEqual(view.QuoteBundle(bundle),
                           folded->QuoteBundle(bundle));
    }
  }
}

// (a) sharded: the merged view over delta-chain shards quotes
// bit-identical to a deep-copy-cadence router, generation by generation.
TEST(DeltaBookTest, ShardedChainMatchesShardedDeepCopy) {
  Market m = MakeMarket();
  auto partition_for = [&]() {
    return market::SupportPartitioner::FromQueries(
        m.db.get(), m.support, m.queries, {}, {.num_shards = 3});
  };
  ShardedEngineOptions chain_options;
  chain_options.engine = Options(4);
  ShardedEngineOptions deep_options;
  deep_options.engine = Options(1);
  ShardedPricingEngine chain_router(m.db.get(), partition_for(),
                                    chain_options);
  ShardedPricingEngine deep_router(m.db.get(), partition_for(), deep_options);
  auto probes = ProbeBundles(static_cast<uint32_t>(m.support.size()));

  for (size_t g = 0; g < m.queries.size(); ++g) {
    QP_CHECK_OK(chain_router.AppendBuyers({m.queries[g]}, {m.valuations[g]}));
    QP_CHECK_OK(deep_router.AppendBuyers({m.queries[g]}, {m.valuations[g]}));
    MergedBookView chain_view = chain_router.snapshot();
    MergedBookView deep_view = deep_router.snapshot();
    EXPECT_EQ(chain_view.version_vector(), deep_view.version_vector());
    EXPECT_EQ(Bits(chain_view.best_revenue()), Bits(deep_view.best_revenue()));
    for (const std::vector<uint32_t>& bundle : probes) {
      ExpectQuoteBitsEqual(chain_view.QuoteBundle(bundle),
                           deep_view.QuoteBundle(bundle));
      ExpectQuoteBitsEqual(chain_router.QuoteBundle(bundle),
                           deep_router.QuoteBundle(bundle));
    }
  }
  EXPECT_GT(chain_router.stats().merged.publish.deltas, 0u);
  EXPECT_EQ(deep_router.stats().merged.publish.deltas, 0u);
}

// (c) quoting pins epochs — the refcount-free hot path is observable:
// every QuoteBundle / QuoteBatch / merged snapshot takes exactly one pin.
TEST(DeltaBookTest, QuotePathPinsEpochsNotRefcounts) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, Options(4));
  QP_CHECK_OK(engine.AppendBuyers(m.queries, m.valuations));

  uint64_t pins = engine.stats().epoch.pins;
  const int kQuotes = 25;
  for (int i = 0; i < kQuotes; ++i) engine.QuoteBundle({0, 1, 2});
  EXPECT_EQ(engine.stats().epoch.pins, pins + kQuotes);

  // A batch amortizes: one pin for the whole span.
  std::vector<std::vector<uint32_t>> bundles(10, {1, 2});
  pins = engine.stats().epoch.pins;
  engine.QuoteBatch(bundles);
  EXPECT_EQ(engine.stats().epoch.pins, pins + 1);

  // Sharded: one pin per merged view, covering every shard.
  ShardedEngineOptions options;
  options.engine = Options(4);
  ShardedPricingEngine router(
      m.db.get(),
      market::SupportPartitioner::FromQueries(m.db.get(), m.support, m.queries,
                                              {}, {.num_shards = 3}),
      options);
  QP_CHECK_OK(router.AppendBuyers(m.queries, m.valuations));
  uint64_t router_pins = router.stats().merged.epoch.pins;
  MergedBookView view = router.snapshot();
  EXPECT_EQ(router.stats().merged.epoch.pins, router_pins + 1);
}

// Retired chains actually reclaim: after enough churn nothing stays
// pending once readers are gone, and consolidations retired chains.
TEST(DeltaBookTest, ConsolidationRetiresAndReclaims) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, Options(2));
  for (size_t g = 0; g < m.queries.size(); ++g) {
    QP_CHECK_OK(engine.AppendBuyers({m.queries[g]}, {m.valuations[g]}));
  }
  EngineStats stats = engine.stats();
  EXPECT_GT(stats.epoch.retired, 0u);
  // Chains only retire at consolidation, where the writer reclaims with
  // no reader pinned: nothing may stay pending.
  EXPECT_EQ(stats.epoch.reclaimed, stats.epoch.retired);
  EXPECT_EQ(stats.epoch.pending, 0u);
}

}  // namespace
}  // namespace qp::serve
