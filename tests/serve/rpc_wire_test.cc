// Wire-protocol hardening: every encode/decode pair roundtrips, and no
// hostile input — truncated frames, oversized or undersized length
// prefixes, corrupt counts, trailing garbage, byte-by-byte delivery —
// crashes, over-reads, or decodes successfully.
#include "serve/rpc/wire.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qp::serve::rpc {
namespace {

Quote MakeQuote() {
  Quote quote;
  quote.price = 12.5;
  quote.version = 7;
  quote.shard_versions = {3, 4};
  quote.algorithm = "LPIP+XOS";
  return quote;
}

void ExpectQuoteEq(const Quote& a, const Quote& b) {
  EXPECT_EQ(a.price, b.price);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.shard_versions, b.shard_versions);
  EXPECT_EQ(a.algorithm, b.algorithm);
}

// Extracts the single frame an encoder produced. `bytes` must outlive
// the returned frame (its body aliases the buffer).
Frame MustExtract(const std::vector<uint8_t>& bytes) {
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(ExtractFrame(bytes.data(), bytes.size(), &consumed, &frame),
            ExtractResult::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  return frame;
}

TEST(RpcWireTest, FramesNeedEveryByte) {
  std::vector<uint8_t> frame = EncodeQuoteRequest(42, {1, 2, 3});
  // Every strict prefix is kNeedMore — never an error, never a frame.
  for (size_t n = 0; n < frame.size(); ++n) {
    Frame out;
    size_t consumed = 0;
    EXPECT_EQ(ExtractFrame(frame.data(), n, &consumed, &out),
              ExtractResult::kNeedMore)
        << "prefix " << n;
  }
  Frame out = MustExtract(frame);
  EXPECT_EQ(out.type, MsgType::kQuote);
  EXPECT_EQ(out.request_id, 42u);
  std::vector<uint32_t> bundle;
  EXPECT_TRUE(DecodeQuoteRequest(out.body, &bundle));
  EXPECT_EQ(bundle, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(RpcWireTest, BadLengthPrefixesAreFramingErrors) {
  auto with_length = [](uint32_t payload) {
    std::vector<uint8_t> bytes;
    WireWriter w(&bytes);
    w.U32(payload);
    return bytes;
  };
  Frame out;
  size_t consumed = 0;
  // Too small to hold the message header.
  for (uint32_t bad : {0u, 1u, uint32_t(kMessageHeaderBytes) - 1}) {
    std::vector<uint8_t> bytes = with_length(bad);
    EXPECT_EQ(ExtractFrame(bytes.data(), bytes.size(), &consumed, &out),
              ExtractResult::kError)
        << bad;
  }
  // Oversized: rejected from the 4-byte prefix alone, before any payload
  // arrives (a hostile length must never size a buffer).
  std::vector<uint8_t> huge = with_length(kMaxFrameBytes + 1);
  EXPECT_EQ(ExtractFrame(huge.data(), huge.size(), &consumed, &out),
            ExtractResult::kError);
  std::vector<uint8_t> max32 = with_length(0xFFFFFFFFu);
  EXPECT_EQ(ExtractFrame(max32.data(), max32.size(), &consumed, &out),
            ExtractResult::kError);
  // A tighter per-connection cap applies even below the global bound.
  std::vector<uint8_t> frame = EncodeQuoteRequest(1, std::vector<uint32_t>(64));
  EXPECT_EQ(ExtractFrame(frame.data(), frame.size(), &consumed, &out,
                         /*max_frame=*/16),
            ExtractResult::kError);
}

TEST(RpcWireTest, BackToBackFramesExtractInOrder) {
  std::vector<uint8_t> stream = EncodeQuoteRequest(1, {5});
  std::vector<uint8_t> second = EncodeStatsRequest(2);
  stream.insert(stream.end(), second.begin(), second.end());
  Frame out;
  size_t consumed = 0;
  ASSERT_EQ(ExtractFrame(stream.data(), stream.size(), &consumed, &out),
            ExtractResult::kFrame);
  EXPECT_EQ(out.request_id, 1u);
  size_t first_size = consumed;
  ASSERT_EQ(ExtractFrame(stream.data() + first_size,
                         stream.size() - first_size, &consumed, &out),
            ExtractResult::kFrame);
  EXPECT_EQ(out.type, MsgType::kStats);
  EXPECT_EQ(out.request_id, 2u);
  EXPECT_EQ(first_size + consumed, stream.size());
}

TEST(RpcWireTest, RequestsRoundTrip) {
  {
    std::vector<std::vector<uint32_t>> bundles = {{1, 2}, {}, {9}};
    std::vector<uint8_t> bytes = EncodeQuoteBatchRequest(7, bundles);
    Frame f = MustExtract(bytes);
    std::vector<std::vector<uint32_t>> out;
    EXPECT_TRUE(DecodeQuoteBatchRequest(f.body, &out));
    EXPECT_EQ(out, bundles);
  }
  {
    std::vector<uint8_t> bytes =
        EncodePurchaseRequest(8, "select * from T", 3.5);
    Frame f = MustExtract(bytes);
    std::string sql;
    double valuation = 0.0;
    EXPECT_TRUE(DecodePurchaseRequest(f.body, &sql, &valuation));
    EXPECT_EQ(sql, "select * from T");
    EXPECT_EQ(valuation, 3.5);
  }
  {
    std::vector<WireBuyer> buyers = {{"select A from T", 1.0},
                                     {"select B from T", 2.0}};
    std::vector<uint8_t> bytes = EncodeAppendRequest(9, buyers);
    Frame f = MustExtract(bytes);
    std::vector<WireBuyer> out;
    EXPECT_TRUE(DecodeAppendRequest(f.body, &out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].sql, buyers[0].sql);
    EXPECT_EQ(out[1].valuation, buyers[1].valuation);
  }
}

TEST(RpcWireTest, RepliesRoundTrip) {
  {
    std::vector<uint8_t> bytes = EncodeQuoteReply(1, MakeQuote());
    Frame f = MustExtract(bytes);
    Quote out;
    EXPECT_TRUE(DecodeQuoteReply(f.body, &out));
    ExpectQuoteEq(out, MakeQuote());
  }
  {
    std::vector<Quote> quotes = {MakeQuote(), MakeQuote()};
    quotes[1].price = 99.0;
    quotes[1].shard_versions.clear();
    std::vector<uint8_t> bytes = EncodeQuoteBatchReply(2, quotes);
    Frame f = MustExtract(bytes);
    std::vector<Quote> out;
    EXPECT_TRUE(DecodeQuoteBatchReply(f.body, &out));
    ASSERT_EQ(out.size(), 2u);
    ExpectQuoteEq(out[0], quotes[0]);
    ExpectQuoteEq(out[1], quotes[1]);
  }
  {
    WirePurchase purchase;
    purchase.accepted = true;
    purchase.valuation = 5.0;
    purchase.quote = MakeQuote();
    purchase.bundle = {0, 3, 8};
    std::vector<uint8_t> bytes = EncodePurchaseReply(3, purchase);
    Frame f = MustExtract(bytes);
    WirePurchase out;
    EXPECT_TRUE(DecodePurchaseReply(f.body, &out));
    EXPECT_EQ(out.accepted, true);
    EXPECT_EQ(out.bundle, purchase.bundle);
    ExpectQuoteEq(out.quote, purchase.quote);
  }
  {
    WireAppendResult result{WireCode::kOk, "", 11};
    std::vector<uint8_t> bytes = EncodeAppendReply(4, result);
    Frame f = MustExtract(bytes);
    WireAppendResult out;
    EXPECT_TRUE(DecodeAppendReply(f.body, &out));
    EXPECT_EQ(out.code, WireCode::kOk);
    EXPECT_EQ(out.version, 11u);
  }
  {
    WireStats stats;
    stats.num_shards = 2;
    stats.version = 5;
    stats.shard_versions = {2, 3};
    stats.quotes_served = 100;
    stats.sale_revenue = 12.25;
    stats.batched_quotes = 60;
    std::vector<uint8_t> bytes = EncodeStatsReply(5, stats);
    Frame f = MustExtract(bytes);
    WireStats out;
    EXPECT_TRUE(DecodeStatsReply(f.body, &out));
    EXPECT_EQ(out.num_shards, 2u);
    EXPECT_EQ(out.shard_versions, stats.shard_versions);
    EXPECT_EQ(out.sale_revenue, 12.25);
    EXPECT_EQ(out.batched_quotes, 60u);
  }
  {
    std::vector<uint8_t> bytes =
        EncodeErrorReply(6, WireCode::kBackpressure, "full");
    Frame f = MustExtract(bytes);
    WireCode code = WireCode::kOk;
    std::string message;
    EXPECT_TRUE(DecodeErrorReply(f.body, &code, &message));
    EXPECT_EQ(code, WireCode::kBackpressure);
    EXPECT_EQ(message, "full");
  }
}

TEST(RpcWireTest, ApplySellerDeltaRoundTrips) {
  market::CellDelta delta;
  delta.table = 1;
  delta.row = 42;
  delta.column = 3;
  delta.new_value = db::Value::Int(987654321);
  std::vector<uint8_t> bytes = EncodeApplySellerDeltaRequest(17, delta);
  Frame f = MustExtract(bytes);
  EXPECT_EQ(f.type, MsgType::kApplySellerDelta);
  market::CellDelta out;
  ASSERT_TRUE(DecodeApplySellerDeltaRequest(f.body, &out));
  EXPECT_EQ(out.table, 1);
  EXPECT_EQ(out.row, 42);
  EXPECT_EQ(out.column, 3);
  EXPECT_EQ(out.new_value.as_int(), 987654321);
  // String-valued cells ride the same encoding.
  delta.new_value = db::Value::Str("rewritten");
  bytes = EncodeApplySellerDeltaRequest(18, delta);
  f = MustExtract(bytes);
  ASSERT_TRUE(DecodeApplySellerDeltaRequest(f.body, &out));
  EXPECT_EQ(out.new_value.as_string(), "rewritten");
  // Truncations of the body never decode.
  for (size_t n = 0; n < f.body.size(); ++n) {
    market::CellDelta cut;
    EXPECT_FALSE(
        DecodeApplySellerDeltaRequest(f.body.subspan(0, n), &cut));
  }

  WireDeltaResult result{WireCode::kOk, "", 29};
  std::vector<uint8_t> reply = EncodeApplySellerDeltaReply(19, result);
  Frame rf = MustExtract(reply);
  EXPECT_EQ(rf.type, MsgType::kApplySellerDeltaReply);
  WireDeltaResult decoded;
  ASSERT_TRUE(DecodeApplySellerDeltaReply(rf.body, &decoded));
  EXPECT_EQ(decoded.code, WireCode::kOk);
  EXPECT_EQ(decoded.generation, 29u);
}

TEST(RpcWireTest, StatsReplyCarriesCatalogCounters) {
  WireStats stats;
  stats.num_shards = 1;
  stats.catalog_generation = 12;
  stats.generations_published = 12;
  stats.folds = 3;
  stats.fold_retries = 1;
  stats.deltas_pending = 2;
  stats.deltas_folded = 10;
  stats.fold_nanos = 55555;
  stats.staleness_samples = 100;
  stats.staleness_sum = 7;
  stats.staleness_max = 2;
  std::vector<uint8_t> bytes = EncodeStatsReply(20, stats);
  Frame f = MustExtract(bytes);
  WireStats out;
  ASSERT_TRUE(DecodeStatsReply(f.body, &out));
  EXPECT_EQ(out.catalog_generation, 12u);
  EXPECT_EQ(out.generations_published, 12u);
  EXPECT_EQ(out.folds, 3u);
  EXPECT_EQ(out.fold_retries, 1u);
  EXPECT_EQ(out.deltas_pending, 2u);
  EXPECT_EQ(out.deltas_folded, 10u);
  EXPECT_EQ(out.fold_nanos, 55555u);
  EXPECT_EQ(out.staleness_samples, 100u);
  EXPECT_EQ(out.staleness_sum, 7u);
  EXPECT_EQ(out.staleness_max, 2u);
}

TEST(RpcWireTest, TruncatedBodiesNeverDecode) {
  // Chop every well-formed body at every length: no prefix may decode
  // successfully (or crash). Exhaustive over the interesting encoders.
  std::vector<std::vector<uint8_t>> frames = {
      EncodeQuoteRequest(1, {1, 2, 3}),
      EncodeQuoteBatchRequest(2, std::vector<std::vector<uint32_t>>{{1}, {}}),
      EncodePurchaseRequest(3, "select * from T", 1.0),
      EncodeAppendRequest(4, std::vector<WireBuyer>{{"select A from T", 2.0}}),
      EncodeQuoteReply(5, MakeQuote()),
  };
  for (const std::vector<uint8_t>& bytes : frames) {
    Frame frame = MustExtract(bytes);
    for (size_t n = 0; n < frame.body.size(); ++n) {
      std::span<const uint8_t> cut = frame.body.subspan(0, n);
      std::vector<uint32_t> bundle;
      std::vector<std::vector<uint32_t>> bundles;
      std::string sql;
      double valuation;
      std::vector<WireBuyer> buyers;
      Quote quote;
      switch (frame.type) {
        case MsgType::kQuote:
          EXPECT_FALSE(DecodeQuoteRequest(cut, &bundle));
          break;
        case MsgType::kQuoteBatch:
          EXPECT_FALSE(DecodeQuoteBatchRequest(cut, &bundles));
          break;
        case MsgType::kPurchase:
          EXPECT_FALSE(DecodePurchaseRequest(cut, &sql, &valuation));
          break;
        case MsgType::kAppendBuyers:
          EXPECT_FALSE(DecodeAppendRequest(cut, &buyers));
          break;
        case MsgType::kQuoteReply:
          EXPECT_FALSE(DecodeQuoteReply(cut, &quote));
          break;
        default:
          break;
      }
    }
  }
}

TEST(RpcWireTest, TrailingGarbageIsRejected) {
  std::vector<uint8_t> frame = EncodeQuoteRequest(1, {1});
  // Grow the payload by one byte and patch the length prefix to match:
  // the decoder must reject the now-oversized body.
  frame.push_back(0xAB);
  uint32_t payload = static_cast<uint32_t>(frame.size() - kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<size_t>(i)] = static_cast<uint8_t>(payload >> (8 * i));
  }
  Frame out = MustExtract(frame);
  std::vector<uint32_t> bundle;
  EXPECT_FALSE(DecodeQuoteRequest(out.body, &bundle));
}

TEST(RpcWireTest, HostileCountsCannotDriveAllocation) {
  // A count claiming ~4 billion elements inside a tiny body must fail
  // before any reserve() sees it.
  std::vector<uint8_t> body;
  WireWriter w(&body);
  w.U32(0xFFFFFFFFu);
  WireReader r32(body.data(), body.size());
  EXPECT_TRUE(r32.U32Vec().empty());
  EXPECT_FALSE(r32.ok());
  WireReader r64(body.data(), body.size());
  EXPECT_TRUE(r64.U64Vec().empty());
  EXPECT_FALSE(r64.ok());
  WireReader rs(body.data(), body.size());
  EXPECT_TRUE(rs.String().empty());
  EXPECT_FALSE(rs.ok());
  // Nested flavor: a QuoteBatch whose inner vector lies about its size.
  std::vector<uint8_t> batch;
  WireWriter wb(&batch);
  wb.U32(2);            // two bundles...
  wb.U32(0xFFFFFF00u);  // ...the first claiming 4 billion items
  std::vector<std::vector<uint32_t>> bundles;
  EXPECT_FALSE(DecodeQuoteBatchRequest(
      std::span<const uint8_t>(batch.data(), batch.size()), &bundles));
}

}  // namespace
}  // namespace qp::serve::rpc
