// Multi-reactor RPC suite (RpcServerOptions::num_loops > 1). The
// contracts pinned here:
//  (a) wire quotes, batches, purchases and appends are bit-identical to
//      the in-process engine AND invariant to num_loops — a 4-loop
//      server, a 1-loop server and the engine itself agree exactly;
//  (b) the SO_REUSEPORT accept path and the round-robin handoff
//      fallback (force_accept_handoff) both spread connections across
//      loops and serve identical answers;
//  (c) catalog churn and appends racing quotes across all loops stay
//      coherent: every reply is well-formed, versions only advance, and
//      the quiesced state matches the engine;
//  (d) Stop() drains EVERY loop: writer ops admitted on any loop's
//      connections get real replies (ok or kShuttingDown), never
//      silence, and queued responses flush before the close;
//  (e) ServerStats aggregation over per-loop counters is exact, and the
//      writev/pool gauges behave (coalescing factor >= 1, pooled
//      buffers are hit on steady-state traffic).
// The ASan/TSan jobs run this file under label `rpc`.
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/parser.h"
#include "market/support.h"
#include "market/support_partitioner.h"
#include "serve/rpc/client.h"
#include "serve/rpc/server.h"
#include "serve/sharded_engine.h"
#include "tests/testing/test_db.h"

namespace qp::serve::rpc {
namespace {

struct Buyer {
  const char* sql;
  double valuation;
};

const std::vector<Buyer>& InitialBuyers() {
  static const std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 6.0},
      {"select max(Population) from Country", 8.0},
      {"select CountryCode, sum(Population) from City group by CountryCode",
       35.0},
  };
  return buyers;
}

/// Engine + server on an ephemeral loopback port, seeded with the
/// initial buyers.
struct Harness {
  std::unique_ptr<db::Database> db;
  market::SupportSet support;
  std::unique_ptr<ShardedPricingEngine> engine;
  std::unique_ptr<RpcServer> server;

  explicit Harness(RpcServerOptions options = {}) {
    db = db::testing::MakeTestDatabase();
    Rng rng(7);
    auto generated =
        market::GenerateSupport(*db, {.size = 120, .max_retries = 32}, rng);
    QP_CHECK_OK(generated.status());
    support = *generated;
    std::vector<db::BoundQuery> queries;
    core::Valuations valuations;
    for (const Buyer& buyer : InitialBuyers()) {
      auto q = db::ParseQuery(buyer.sql, *db);
      QP_CHECK_OK(q.status());
      queries.push_back(*q);
      valuations.push_back(buyer.valuation);
    }
    market::SupportPartition partition = market::SupportPartitioner::FromQueries(
        db.get(), support, queries, {}, {.num_shards = 2});
    engine =
        std::make_unique<ShardedPricingEngine>(db.get(), std::move(partition));
    QP_CHECK_OK(engine->AppendBuyers(queries, valuations));
    server = std::make_unique<RpcServer>(engine.get(), db.get(), options);
    QP_CHECK_OK(server->Start());
  }

  RpcClient Connect() {
    RpcClient client;
    QP_CHECK_OK(client.Connect("127.0.0.1", server->port()));
    return client;
  }

  std::vector<std::vector<uint32_t>> SampleBundles() const {
    std::vector<std::vector<uint32_t>> bundles;
    bundles.push_back({});
    const market::SupportPartition& partition = engine->partition();
    std::vector<uint32_t> crossing;
    for (int s = 0; s < partition.num_shards; ++s) {
      const auto& items = partition.shard_items[static_cast<size_t>(s)];
      for (size_t k = 0; k < std::min<size_t>(2, items.size()); ++k) {
        crossing.push_back(items[k]);
      }
    }
    bundles.push_back(std::move(crossing));
    for (uint32_t i = 0; i < std::min<uint32_t>(6, partition.num_items());
         ++i) {
      bundles.push_back({i, (i + 3) % partition.num_items()});
    }
    return bundles;
  }
};

void ExpectQuoteEq(const Quote& wire, const Quote& local) {
  EXPECT_EQ(wire.price, local.price);
  EXPECT_EQ(wire.version, local.version);
  EXPECT_EQ(wire.shard_versions, local.shard_versions);
  EXPECT_EQ(wire.algorithm, local.algorithm);
}

// --- (a)+(b) loop-count invariance ---------------------------------------

TEST(RpcMultiLoopTest, QuotesInvariantToLoopCountAndBitIdentical) {
  // Two servers over ONE engine: 4 loops (deterministic handoff spread)
  // and the reference single loop. Nothing writes, so all three parties
  // must agree bit for bit — price, merged version, per-shard version
  // vector, and algorithm label.
  Harness h({.num_loops = 4, .force_accept_handoff = true});
  RpcServer single(h.engine.get(), h.db.get(), {.num_loops = 1});
  QP_CHECK_OK(single.Start());

  // 8 connections on the 4-loop server: round-robin lands 2 per loop, so
  // every loop serves this workload, not just the lucky ones.
  std::vector<RpcClient> multi(8);
  for (RpcClient& client : multi) {
    QP_CHECK_OK(client.Connect("127.0.0.1", h.server->port()));
  }
  RpcClient ref;
  QP_CHECK_OK(ref.Connect("127.0.0.1", single.port()));

  for (const std::vector<uint32_t>& bundle : h.SampleBundles()) {
    Quote local = h.engine->QuoteBundle(bundle);
    RpcReply single_reply;
    QP_CHECK_OK(ref.Quote(bundle, &single_reply));
    ASSERT_TRUE(single_reply.ok()) << single_reply.message;
    ExpectQuoteEq(single_reply.quote, local);
    for (RpcClient& client : multi) {
      RpcReply reply;
      QP_CHECK_OK(client.Quote(bundle, &reply));
      ASSERT_TRUE(reply.ok()) << reply.message;
      ExpectQuoteEq(reply.quote, local);
    }
  }

  // Batches too: one request, every quote from the same tick snapshot.
  std::vector<std::vector<uint32_t>> bundles = h.SampleBundles();
  std::vector<Quote> local = h.engine->QuoteBatch(bundles);
  for (RpcClient& client : multi) {
    RpcReply reply;
    QP_CHECK_OK(client.QuoteBatch(bundles, &reply));
    ASSERT_TRUE(reply.ok()) << reply.message;
    ASSERT_EQ(reply.quotes.size(), local.size());
    for (size_t i = 0; i < local.size(); ++i) {
      ExpectQuoteEq(reply.quotes[i], local[i]);
    }
  }

  RpcServerStats stats = h.server->stats();
  EXPECT_EQ(stats.loops, 4u);
  EXPECT_EQ(stats.connections_accepted, 8u);
  single.Stop();
}

TEST(RpcMultiLoopTest, ReuseportAcceptPathServesIdentically) {
  // Default accept sharding (per-loop SO_REUSEPORT listeners where the
  // platform has them; the automatic fallback otherwise). Either way the
  // answers must be the engine's, from every connection.
  Harness h({.num_loops = 4});
  EXPECT_EQ(h.server->stats().loops, 4u);
  std::vector<RpcClient> clients(8);
  for (RpcClient& client : clients) {
    QP_CHECK_OK(client.Connect("127.0.0.1", h.server->port()));
  }
  for (const std::vector<uint32_t>& bundle : h.SampleBundles()) {
    Quote local = h.engine->QuoteBundle(bundle);
    for (RpcClient& client : clients) {
      RpcReply reply;
      QP_CHECK_OK(client.Quote(bundle, &reply));
      ASSERT_TRUE(reply.ok()) << reply.message;
      ExpectQuoteEq(reply.quote, local);
    }
  }
}

TEST(RpcMultiLoopTest, PurchasesAndAppendsLandFromEveryLoop) {
  Harness h({.num_loops = 4, .force_accept_handoff = true});
  // 4 connections: exactly one per loop under round-robin handoff.
  std::vector<RpcClient> clients(4);
  for (RpcClient& client : clients) {
    QP_CHECK_OK(client.Connect("127.0.0.1", h.server->port()));
  }

  // A purchase through each loop: same decision the engine would make.
  for (RpcClient& client : clients) {
    RpcReply reply;
    QP_CHECK_OK(client.Purchase("select distinct Continent from Country", 1e9,
                                &reply));
    ASSERT_TRUE(reply.ok()) << reply.message;
    EXPECT_TRUE(reply.purchase.accepted);
  }

  // An append admitted via each loop's connection: all funnel into the
  // one writer, so the version advances exactly once per append and the
  // reply carries the engine's version at commit.
  uint64_t version = h.engine->snapshot().version();
  for (RpcClient& client : clients) {
    RpcReply reply;
    QP_CHECK_OK(client.AppendBuyers(
        {{"select min(LifeExpectancy) from Country", 0.6}}, &reply));
    ASSERT_TRUE(reply.ok()) << reply.message;
    EXPECT_EQ(reply.append.version, version + 1);
    version = reply.append.version;
  }
  EXPECT_EQ(h.engine->snapshot().version(), version);

  // And a seller delta via the last loop, visible to quotes everywhere.
  RpcReply delta_reply;
  QP_CHECK_OK(clients[3].ApplySellerDelta(h.support[0], &delta_reply));
  ASSERT_TRUE(delta_reply.ok()) << delta_reply.message;
  EXPECT_EQ(delta_reply.seller_delta.generation,
            h.engine->catalog().head_generation());
}

// --- (c) churn racing quotes across loops --------------------------------

TEST(RpcMultiLoopTest, ChurnAndAppendsRacingQuotesAcrossLoopsStayCoherent) {
  Harness h({.num_loops = 4, .force_accept_handoff = true,
             .writer_queue_depth = 64});
  std::vector<std::vector<uint32_t>> bundles = h.SampleBundles();

  constexpr int kQuoteClients = 4;
  constexpr int kIterations = 60;
  std::atomic<bool> failed{false};
  std::atomic<bool> stop_writers{false};
  std::vector<std::thread> threads;
  threads.reserve(kQuoteClients + 2);
  for (int c = 0; c < kQuoteClients; ++c) {
    threads.emplace_back([&, c]() {
      RpcClient client;
      if (!client.Connect("127.0.0.1", h.server->port()).ok()) {
        failed.store(true);
        return;
      }
      uint64_t last_version = 0;
      for (int i = 0; i < kIterations; ++i) {
        size_t idx = static_cast<size_t>(c + i) % bundles.size();
        RpcReply reply;
        if (!client.Quote(bundles[idx], &reply).ok() || !reply.ok()) {
          failed.store(true);
          return;
        }
        // Appends race these quotes, so prices move — but the merged
        // version must never regress on one connection (each loop-tick
        // pins a fresh snapshot).
        if (reply.quote.version < last_version) {
          failed.store(true);
          return;
        }
        last_version = reply.quote.version;
      }
    });
  }
  threads.emplace_back([&]() {  // appends
    RpcClient client;
    if (!client.Connect("127.0.0.1", h.server->port()).ok()) {
      failed.store(true);
      return;
    }
    while (!stop_writers.load()) {
      RpcReply reply;
      if (!client.AppendBuyers({{"select count(*) from CountryLanguage", 0.3}},
                               &reply)
               .ok()) {
        failed.store(true);
        return;
      }
      // kBackpressure is legal under load; anything else must be ok.
      if (!reply.ok() && reply.code != WireCode::kBackpressure) {
        failed.store(true);
        return;
      }
    }
  });
  threads.emplace_back([&]() {  // seller-delta churn
    RpcClient client;
    if (!client.Connect("127.0.0.1", h.server->port()).ok()) {
      failed.store(true);
      return;
    }
    size_t next = 0;
    while (!stop_writers.load()) {
      RpcReply reply;
      if (!client.ApplySellerDelta(h.support[next % h.support.size()], &reply)
               .ok()) {
        failed.store(true);
        return;
      }
      if (!reply.ok() && reply.code != WireCode::kBackpressure) {
        failed.store(true);
        return;
      }
      ++next;
    }
  });
  for (int c = 0; c < kQuoteClients; ++c) threads[static_cast<size_t>(c)].join();
  stop_writers.store(true);
  threads[kQuoteClients].join();
  threads[kQuoteClients + 1].join();
  ASSERT_FALSE(failed.load());

  // Quiesced: the wire agrees with the engine exactly again.
  RpcClient client = h.Connect();
  for (const std::vector<uint32_t>& bundle : bundles) {
    Quote local = h.engine->QuoteBundle(bundle);
    RpcReply reply;
    QP_CHECK_OK(client.Quote(bundle, &reply));
    ASSERT_TRUE(reply.ok()) << reply.message;
    ExpectQuoteEq(reply.quote, local);
  }
}

// --- (d) Stop() drains every loop ----------------------------------------

TEST(RpcMultiLoopTest, StopDrainsAdmittedWritesOnEveryLoop) {
  Harness h({.num_loops = 4, .force_accept_handoff = true,
             .writer_queue_depth = 64, .drain_timeout_ms = 5000});
  // One connection per loop, each with appends in flight when Stop()
  // lands: every loop must deliver its connections' replies (the drain
  // is per loop — a drained loop 0 does not excuse loop 3).
  constexpr int kClients = 4;
  constexpr int kAppendsEach = 4;
  std::vector<RpcClient> clients(kClients);
  for (RpcClient& client : clients) {
    QP_CHECK_OK(client.Connect("127.0.0.1", h.server->port()));
  }
  uint64_t version_before = h.engine->snapshot().version();
  for (RpcClient& client : clients) {
    for (int i = 0; i < kAppendsEach; ++i) {
      auto id = client.SendAppendBuyers(
          {{"select count(*) from CountryLanguage", 0.25}});
      QP_CHECK_OK(id.status());
    }
  }
  h.server->Stop();

  int ok_count = 0, shutdown_count = 0;
  for (RpcClient& client : clients) {
    for (int i = 0; i < kAppendsEach; ++i) {
      RpcReply reply;
      QP_CHECK_OK(client.Receive(&reply));
      if (reply.ok()) {
        ++ok_count;
      } else {
        ASSERT_EQ(reply.code, WireCode::kShuttingDown) << reply.message;
        ++shutdown_count;
      }
    }
  }
  // No silence on any loop, and the engine advanced exactly once per ok.
  EXPECT_EQ(ok_count + shutdown_count, kClients * kAppendsEach);
  EXPECT_EQ(h.engine->snapshot().version(),
            version_before + static_cast<uint64_t>(ok_count));
}

TEST(RpcMultiLoopTest, StopWithTrafficOnAllLoopsShutsDownCleanly) {
  for (int round = 0; round < 2; ++round) {
    Harness h({.num_loops = 4, .force_accept_handoff = true});
    std::atomic<bool> go{false};
    constexpr int kClients = 6;
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c]() {
        RpcClient client;
        if (!client.Connect("127.0.0.1", h.server->port()).ok()) return;
        while (!go.load()) {
        }
        // Any outcome is legal — a reply, kShuttingDown, a transport
        // error once the fd closes — as long as nothing crashes,
        // deadlocks, or trips TSan on the per-loop teardown.
        for (int i = 0; i < 150; ++i) {
          RpcReply reply;
          Status status =
              (c == 0 && i % 10 == 0)
                  ? client.AppendBuyers(
                        {{"select count(*) from City", 0.5}}, &reply)
                  : client.Quote({}, &reply);
          if (!status.ok()) return;
        }
      });
    }
    go.store(true);
    h.server->Stop();
    for (std::thread& t : threads) t.join();
    h.server->Stop();  // idempotent; the destructor may run it again
  }
}

// --- (e) stats aggregation ------------------------------------------------

TEST(RpcMultiLoopTest, StatsAggregateExactlyAcrossLoops) {
  Harness h({.num_loops = 4, .force_accept_handoff = true});
  constexpr int kClients = 8;
  constexpr int kQuotesEach = 5;
  constexpr int kBatchesEach = 2;
  std::vector<std::vector<uint32_t>> bundles = h.SampleBundles();
  std::vector<RpcClient> clients(kClients);
  for (RpcClient& client : clients) {
    QP_CHECK_OK(client.Connect("127.0.0.1", h.server->port()));
  }
  for (RpcClient& client : clients) {
    for (int i = 0; i < kQuotesEach; ++i) {
      RpcReply reply;
      QP_CHECK_OK(client.Quote(bundles[static_cast<size_t>(i) % bundles.size()],
                               &reply));
      ASSERT_TRUE(reply.ok());
    }
    for (int i = 0; i < kBatchesEach; ++i) {
      RpcReply reply;
      QP_CHECK_OK(client.QuoteBatch(bundles, &reply));
      ASSERT_TRUE(reply.ok());
    }
  }

  // The request counters are spread over 4 loops' atomics; aggregation
  // must lose nothing.
  RpcServerStats stats = h.server->stats();
  EXPECT_EQ(stats.loops, 4u);
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.quote_requests,
            static_cast<uint64_t>(kClients * kQuotesEach));
  EXPECT_EQ(stats.quote_batch_requests,
            static_cast<uint64_t>(kClients * kBatchesEach));
  EXPECT_EQ(stats.frames_received,
            static_cast<uint64_t>(kClients * (kQuotesEach + kBatchesEach)));
  EXPECT_EQ(stats.batched_quotes,
            static_cast<uint64_t>(kClients) *
                (kQuotesEach + kBatchesEach * bundles.size()));
  EXPECT_GE(stats.quote_ticks, 1u);
  EXPECT_LE(stats.quote_ticks, stats.batched_quotes);

  // Flush/pool gauges: every reply left through a vectored write, the
  // coalescing factor is >= 1 by construction, and steady-state traffic
  // reuses pooled encode buffers (first frame per connection allocates,
  // later ones must hit the pool).
  EXPECT_GE(stats.writev_calls, 1u);
  EXPECT_GE(stats.writev_frames, stats.writev_calls);
  EXPECT_GE(stats.writev_frames,
            static_cast<uint64_t>(kClients * (kQuotesEach + kBatchesEach)));
  EXPECT_GE(stats.pool_hits,
            static_cast<uint64_t>(kClients) *
                (kQuotesEach + kBatchesEach - 1));
  EXPECT_GT(stats.pool_bytes, 0u);

  // The wire-visible stats carry the same aggregation.
  RpcReply wire;
  QP_CHECK_OK(clients[0].Stats(&wire));
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire.stats.loops, 4u);
  EXPECT_EQ(wire.stats.batched_quotes, stats.batched_quotes);
  EXPECT_GE(wire.stats.writev_calls, stats.writev_calls);
  EXPECT_GE(wire.stats.pool_hits, stats.pool_hits);
  EXPECT_EQ(wire.stats.connections_accepted,
            static_cast<uint64_t>(kClients));
}

}  // namespace
}  // namespace qp::serve::rpc
