// ShardedPricingEngine parity suite. The contracts pinned here:
//  (a) one shard == the monolithic PricingEngine, bit for bit;
//  (b) with many shards, each shard == a monolithic engine running on
//      that shard's sub-instance (same batches), bit for bit, and the
//      router's routing matches an independent NaiveConflictSet oracle;
//  (c) cross-shard bundles price additively in ascending shard order;
//  (d) books are bit-identical for every router/build/LP thread count;
//  (e) on symmetric (identical-copy) instances the per-algorithm revenue
//      sums match a single monolithic engine on the full instance within
//      1e-9 — the documented LP-vertex tolerance;
//  (f) concurrent QuoteBundle/QuoteBatch/Purchase race shard-parallel
//      AppendBuyers publishes safely (the TSan job runs this file).
#include "serve/sharded_engine.h"

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/algorithms.h"
#include "db/parser.h"
#include "market/conflict.h"
#include "market/support.h"
#include "market/support_partitioner.h"
#include "serve/pricing_engine.h"
#include "tests/testing/random_instances.h"
#include "tests/testing/test_db.h"

namespace qp::serve {
namespace {

struct Buyer {
  const char* sql;
  double valuation;
};

const std::vector<Buyer>& InitialBuyers() {
  static const std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 6.0},
      {"select max(Population) from Country", 8.0},
      {"select CountryCode, sum(Population) from City group by CountryCode",
       35.0},
  };
  return buyers;
}

const std::vector<Buyer>& LateBuyers() {
  static const std::vector<Buyer> buyers = {
      {"select distinct Continent from Country", 1.5},
      {"select Name from City where Population > 10000000", 2.5},
      {"select min(LifeExpectancy) from Country", 0.75},
  };
  return buyers;
}

struct Market {
  std::unique_ptr<db::Database> db;
  market::SupportSet support;
  std::vector<db::BoundQuery> initial_queries, late_queries;
  core::Valuations initial_valuations, late_valuations;

  std::vector<db::BoundQuery> all_queries() const {
    std::vector<db::BoundQuery> all = initial_queries;
    all.insert(all.end(), late_queries.begin(), late_queries.end());
    return all;
  }
};

Market MakeMarket(int support_size = 150) {
  Market m;
  m.db = db::testing::MakeTestDatabase();
  Rng rng(7);
  auto support = market::GenerateSupport(
      *m.db, {.size = support_size, .max_retries = 32}, rng);
  QP_CHECK_OK(support.status());
  m.support = *support;
  for (const Buyer& buyer : InitialBuyers()) {
    auto q = db::ParseQuery(buyer.sql, *m.db);
    QP_CHECK_OK(q.status());
    m.initial_queries.push_back(*q);
    m.initial_valuations.push_back(buyer.valuation);
  }
  for (const Buyer& buyer : LateBuyers()) {
    auto q = db::ParseQuery(buyer.sql, *m.db);
    QP_CHECK_OK(q.status());
    m.late_queries.push_back(*q);
    m.late_valuations.push_back(buyer.valuation);
  }
  return m;
}

// Replay-identical geometry (see core/reprice.h): every LPIP threshold,
// solved standalone.
EngineOptions MatchedEngineOptions() {
  EngineOptions options;
  options.algorithms.lpip.max_candidates = 0;
  options.algorithms.lpip.chain_length = 1;
  return options;
}

ShardedEngineOptions MatchedShardedOptions(int num_threads = 1) {
  ShardedEngineOptions options;
  options.engine = MatchedEngineOptions();
  options.num_threads = num_threads;
  return options;
}

market::SupportPartition PartitionFor(const Market& m, int num_shards) {
  return market::SupportPartitioner::FromQueries(
      m.db.get(), m.support, m.all_queries(), {},
      {.num_shards = num_shards});
}

TEST(ShardedEngineTest, SingleShardMatchesMonolithicBitForBit) {
  Market m = MakeMarket();
  PricingEngine mono(m.db.get(), m.support, MatchedEngineOptions());
  ShardedPricingEngine sharded(m.db.get(), PartitionFor(m, 1),
                               MatchedShardedOptions());

  QP_CHECK_OK(mono.AppendBuyers(m.initial_queries, m.initial_valuations));
  QP_CHECK_OK(sharded.AppendBuyers(m.initial_queries, m.initial_valuations));
  QP_CHECK_OK(mono.AppendBuyers(m.late_queries, m.late_valuations));
  QP_CHECK_OK(sharded.AppendBuyers(m.late_queries, m.late_valuations));

  // Same instance, bit for bit: edges, every algorithm's revenue, LP
  // counts, versions.
  const PricingEngine& shard = sharded.shard(0);
  ASSERT_EQ(shard.hypergraph().num_edges(), mono.hypergraph().num_edges());
  for (int e = 0; e < mono.hypergraph().num_edges(); ++e) {
    EXPECT_EQ(shard.hypergraph().edge(e), mono.hypergraph().edge(e));
  }
  auto mono_book = mono.snapshot();
  MergedBookView view = sharded.snapshot();
  EXPECT_EQ(view.version(), mono_book->version());
  ASSERT_EQ(view.shard(0).results().size(), mono_book->results().size());
  for (size_t i = 0; i < mono_book->results().size(); ++i) {
    const core::PricingResult& a = mono_book->results()[i];
    const core::PricingResult& b = view.shard(0).results()[i];
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.revenue, b.revenue) << a.algorithm;
    EXPECT_EQ(a.lps_solved, b.lps_solved) << a.algorithm;
  }
  EXPECT_EQ(sharded.stats().merged.total_lps_solved,
            mono.stats().total_lps_solved);

  // Quotes agree bit for bit, including the empty bundle.
  for (int e = 0; e < mono.hypergraph().num_edges(); ++e) {
    Quote mq = mono.QuoteBundle(mono.hypergraph().edge(e));
    Quote sq = sharded.QuoteBundle(mono.hypergraph().edge(e));
    EXPECT_EQ(sq.price, mq.price);
    EXPECT_EQ(sq.version, mq.version);
    EXPECT_EQ(sq.algorithm, mq.algorithm);
  }
  EXPECT_EQ(sharded.QuoteBundle({}).algorithm, mono.QuoteBundle({}).algorithm);
  EXPECT_EQ(sharded.stats().cross_shard_appends, 0u);
  EXPECT_EQ(sharded.stats().cross_shard_quotes, 0u);
}

TEST(ShardedEngineTest, ShardsMatchMonolithicEnginesOnSubInstances) {
  Market m = MakeMarket();
  const int kShards = 3;
  market::SupportPartition partition = PartitionFor(m, kShards);
  ShardedPricingEngine sharded(m.db.get(), partition,
                               MatchedShardedOptions());

  // Independent routing oracle: NaiveConflictSet against the global
  // support, split by the partition maps, owner = largest part (ties to
  // the lowest shard), empty sets to the least-edged shard.
  std::vector<std::vector<std::vector<uint32_t>>> expected_initial(kShards),
      expected_late(kShards);
  std::vector<core::Valuations> expected_initial_v(kShards),
      expected_late_v(kShards);
  std::vector<int> edge_counts(kShards, 0);
  auto route = [&](const std::vector<db::BoundQuery>& queries,
                   const core::Valuations& valuations,
                   std::vector<std::vector<std::vector<uint32_t>>>& edges,
                   std::vector<core::Valuations>& vals) {
    for (size_t i = 0; i < queries.size(); ++i) {
      std::vector<uint32_t> global =
          market::NaiveConflictSet(*m.db, queries[i], m.support);
      std::vector<std::vector<uint32_t>> parts =
          partition.SplitBundle(global);
      size_t owner = 0;
      bool any = false;
      for (size_t s = 0; s < parts.size(); ++s) {
        if (parts[s].empty()) continue;
        // The seed corpus covers every query: partition-respecting means
        // exactly one touched shard.
        ASSERT_FALSE(any) << "query " << i << " crosses shards";
        owner = s;
        any = true;
      }
      if (!any) {
        for (size_t s = 1; s < parts.size(); ++s) {
          if (edge_counts[s] < edge_counts[owner]) owner = s;
        }
      }
      edges[owner].push_back(std::move(parts[owner]));
      vals[owner].push_back(valuations[i]);
      ++edge_counts[owner];
    }
  };
  route(m.initial_queries, m.initial_valuations, expected_initial,
        expected_initial_v);
  route(m.late_queries, m.late_valuations, expected_late, expected_late_v);

  QP_CHECK_OK(sharded.AppendBuyers(m.initial_queries, m.initial_valuations));
  QP_CHECK_OK(sharded.AppendBuyers(m.late_queries, m.late_valuations));
  EXPECT_EQ(sharded.stats().cross_shard_appends, 0u);

  int total_lps = 0;
  for (int s = 0; s < kShards; ++s) {
    // Reference: a standalone monolithic engine on this shard's support,
    // fed the expected local edges with the same batch boundaries.
    PricingEngine reference(m.db.get(),
                            partition.shard_support[static_cast<size_t>(s)],
                            MatchedEngineOptions());
    if (!expected_initial[s].empty()) {
      QP_CHECK_OK(reference.AppendBuyersPrecomputed(expected_initial[s],
                                                    expected_initial_v[s]));
    }
    if (!expected_late[s].empty()) {
      QP_CHECK_OK(reference.AppendBuyersPrecomputed(expected_late[s],
                                                    expected_late_v[s]));
    }

    const PricingEngine& shard = sharded.shard(s);
    ASSERT_EQ(shard.hypergraph().num_edges(),
              reference.hypergraph().num_edges())
        << "shard " << s;
    for (int e = 0; e < reference.hypergraph().num_edges(); ++e) {
      EXPECT_EQ(shard.hypergraph().edge(e), reference.hypergraph().edge(e));
    }
    auto ref_book = reference.snapshot();
    auto shard_book = shard.snapshot();
    EXPECT_EQ(shard_book->version(), ref_book->version()) << "shard " << s;
    ASSERT_EQ(shard_book->results().size(), ref_book->results().size());
    for (size_t i = 0; i < ref_book->results().size(); ++i) {
      EXPECT_EQ(shard_book->results()[i].revenue,
                ref_book->results()[i].revenue)
          << "shard " << s << " " << ref_book->results()[i].algorithm;
      EXPECT_EQ(shard_book->results()[i].lps_solved,
                ref_book->results()[i].lps_solved)
          << "shard " << s << " " << ref_book->results()[i].algorithm;
    }
    total_lps += shard.stats().total_lps_solved;
    EXPECT_EQ(shard.stats().total_lps_solved,
              reference.stats().total_lps_solved);
  }
  EXPECT_EQ(sharded.stats().merged.total_lps_solved, total_lps);
}

TEST(ShardedEngineTest, CrossShardBundlesPriceAdditively) {
  Market m = MakeMarket();
  market::SupportPartition partition = PartitionFor(m, 3);
  ShardedPricingEngine sharded(m.db.get(), partition,
                               MatchedShardedOptions());
  QP_CHECK_OK(sharded.AppendBuyers(m.initial_queries, m.initial_valuations));

  // A bundle mixing items from every shard: price must be the ascending-
  // shard-order sum of the per-shard local quotes.
  std::vector<uint32_t> bundle;
  for (int s = 0; s < partition.num_shards; ++s) {
    const auto& items = partition.shard_items[static_cast<size_t>(s)];
    for (size_t k = 0; k < std::min<size_t>(3, items.size()); ++k) {
      bundle.push_back(items[k]);
    }
  }
  MergedBookView view = sharded.snapshot();
  std::vector<std::vector<uint32_t>> parts = partition.SplitBundle(bundle);
  double expected = 0.0;
  int touched = 0;
  for (int s = 0; s < partition.num_shards; ++s) {
    if (parts[static_cast<size_t>(s)].empty()) continue;
    expected += view.shard(s).QuoteBundle(parts[static_cast<size_t>(s)]).price;
    ++touched;
  }
  ASSERT_GT(touched, 1);
  Quote quote = sharded.QuoteBundle(bundle);
  EXPECT_EQ(quote.price, expected);
  EXPECT_GE(sharded.stats().cross_shard_quotes, 1u);

  // A bundle inside one shard prices exactly as that shard does.
  const auto& shard0 = partition.shard_items[0];
  std::vector<uint32_t> inside(shard0.begin(),
                               shard0.begin() +
                                   std::min<size_t>(4, shard0.size()));
  Quote inside_quote = sharded.QuoteBundle(inside);
  EXPECT_EQ(inside_quote.price,
            view.shard(0).QuoteBundle(partition.SplitBundle(inside)[0]).price);
  EXPECT_EQ(inside_quote.algorithm, view.shard(0).best().algorithm);
}

TEST(ShardedEngineTest, BooksAreBitIdenticalForEveryThreadCount) {
  Market m = MakeMarket();
  market::SupportPartition partition = PartitionFor(m, 3);
  ShardedEngineOptions serial = MatchedShardedOptions(1);
  ShardedEngineOptions threaded = MatchedShardedOptions(4);
  threaded.engine.build.num_threads = 4;
  threaded.engine.algorithms.lpip.num_threads = 4;
  threaded.engine.algorithms.cip.num_threads = 4;

  ShardedPricingEngine a(m.db.get(), partition, serial);
  ShardedPricingEngine b(m.db.get(), partition, threaded);
  for (ShardedPricingEngine* engine : {&a, &b}) {
    QP_CHECK_OK(engine->AppendBuyers(m.initial_queries, m.initial_valuations));
    QP_CHECK_OK(engine->AppendBuyers(m.late_queries, m.late_valuations));
  }

  MergedBookView va = a.snapshot(), vb = b.snapshot();
  EXPECT_EQ(vb.version(), va.version());
  EXPECT_EQ(vb.best_revenue(), va.best_revenue());
  for (int s = 0; s < a.num_shards(); ++s) {
    ASSERT_EQ(vb.shard(s).results().size(), va.shard(s).results().size());
    for (size_t i = 0; i < va.shard(s).results().size(); ++i) {
      EXPECT_EQ(vb.shard(s).results()[i].revenue,
                va.shard(s).results()[i].revenue)
          << "shard " << s << " " << va.shard(s).results()[i].algorithm;
    }
  }
  for (int e = 0; e < a.shard(0).hypergraph().num_edges(); ++e) {
    std::vector<uint32_t> bundle;
    for (uint32_t local : a.shard(0).hypergraph().edge(e)) {
      bundle.push_back(partition.shard_items[0][local]);
    }
    EXPECT_EQ(b.QuoteBundle(bundle).price, a.QuoteBundle(bundle).price);
  }
}

TEST(ShardedEngineTest, SymmetricCopiesMatchMonolithicWithinTolerance) {
  // K identical, connected copies of one random component laid out
  // disjointly. Every algorithm's global optimum decomposes per copy, so
  // the sharded per-algorithm revenue sums must match a single
  // monolithic engine on the union — within 1e-9 relative, the
  // documented tolerance for LP-derived prices (equally-optimal vertices
  // may realize out-of-family sales differently).
  const uint32_t kItems = 12;
  const int kEdges = 10;
  const int kCopies = 3;
  Rng rng(97);
  core::Hypergraph base =
      qp::testing::RandomHypergraph(rng, kItems, kEdges, 4);
  core::Valuations base_v =
      qp::testing::RandomValuations(rng, kEdges + 1, 0.5, 20.0);
  // Connector edge: makes each copy a single connected component, so the
  // partitioner assigns whole copies to shards.
  std::vector<std::vector<uint32_t>> base_edges;
  for (int e = 0; e < base.num_edges(); ++e) base_edges.push_back(base.edge(e));
  {
    std::vector<uint32_t> connector(kItems);
    for (uint32_t i = 0; i < kItems; ++i) connector[i] = i;
    base_edges.push_back(std::move(connector));
  }

  std::vector<std::vector<uint32_t>> global_edges;
  core::Valuations global_v;
  for (int c = 0; c < kCopies; ++c) {
    for (size_t e = 0; e < base_edges.size(); ++e) {
      std::vector<uint32_t> edge = base_edges[e];
      for (uint32_t& item : edge) item += static_cast<uint32_t>(c) * kItems;
      global_edges.push_back(std::move(edge));
      global_v.push_back(base_v[e]);
    }
  }

  // Fabricated support over an empty database: the precomputed-append
  // path never probes, so only the support size matters.
  db::Database empty_db;
  market::SupportSet support(kItems * kCopies);
  for (size_t i = 0; i < support.size(); ++i) {
    support[i].row = static_cast<int>(i);
  }

  PricingEngine mono(&empty_db, support, MatchedEngineOptions());
  QP_CHECK_OK(mono.AppendBuyersPrecomputed(global_edges, global_v));

  market::SupportPartition partition = market::SupportPartitioner::Partition(
      support, global_edges, {.num_shards = kCopies});
  // Whole copies land on distinct shards (equal sizes, LPT order).
  for (int s = 0; s < kCopies; ++s) {
    EXPECT_EQ(partition.shard_items[static_cast<size_t>(s)].size(), kItems);
  }
  ShardedPricingEngine sharded(&empty_db, partition, MatchedShardedOptions());
  QP_CHECK_OK(sharded.AppendBuyersPrecomputed(global_edges, global_v));
  EXPECT_EQ(sharded.stats().cross_shard_appends, 0u);

  auto mono_book = mono.snapshot();
  MergedBookView view = sharded.snapshot();
  for (size_t i = 0; i < mono_book->results().size(); ++i) {
    const core::PricingResult& target = mono_book->results()[i];
    double sum = 0.0;
    for (int s = 0; s < kCopies; ++s) {
      sum += view.shard(s).results()[i].revenue;
    }
    EXPECT_NEAR(sum, target.revenue, 1e-9 * (1.0 + std::abs(target.revenue)))
        << target.algorithm;
  }
  // LPIP thresholds dedupe by value and the copies share valuations, so
  // every shard sweeps exactly the distinct thresholds the monolithic
  // engine sweeps (on generic instances with distinct valuations the
  // per-shard counts instead sum to the monolithic count — pinned by
  // ShardsMatchMonolithicEnginesOnSubInstances).
  for (int s = 0; s < kCopies; ++s) {
    EXPECT_EQ(view.shard(s).Find("LPIP")->lps_solved,
              mono_book->Find("LPIP")->lps_solved);
  }
}

TEST(ShardedEngineTest, VersionVectorDisambiguatesAliasedScalarVersions) {
  Market m = MakeMarket();
  market::SupportPartition partition = PartitionFor(m, 3);
  ShardedPricingEngine sharded(m.db.get(), partition,
                               MatchedShardedOptions());
  QP_CHECK_OK(sharded.AppendBuyers(m.initial_queries, m.initial_valuations));

  MergedBookView before = sharded.snapshot();
  std::vector<uint64_t> vector_before = before.version_vector();
  ASSERT_EQ(vector_before.size(), 3u);
  uint64_t sum = 0;
  for (uint64_t v : vector_before) sum += v;
  EXPECT_EQ(before.version(), sum);

  // One more append bumps SOME shard's version. The scalar version is
  // only monotone — two different vectors can share a sum — but the
  // vector itself must change whenever any shard publishes.
  QP_CHECK_OK(sharded.AppendBuyers({m.late_queries[0]},
                                   {m.late_valuations[0]}));
  MergedBookView after = sharded.snapshot();
  std::vector<uint64_t> vector_after = after.version_vector();
  EXPECT_NE(vector_after, vector_before);
  EXPECT_GE(after.version(), before.version());
  for (size_t s = 0; s < vector_after.size(); ++s) {
    EXPECT_GE(vector_after[s], vector_before[s]) << "shard " << s;
  }

  // Quotes from a merged view carry the vector; single-engine quotes
  // leave it empty (the monolithic scalar version cannot alias).
  Quote merged_quote = sharded.QuoteBundle({});
  EXPECT_EQ(merged_quote.shard_versions, vector_after);
  PricingEngine mono(m.db.get(), m.support, MatchedEngineOptions());
  EXPECT_TRUE(mono.QuoteBundle({}).shard_versions.empty());
}

TEST(ShardedEngineTest, PurchaseMatchesMonolithicBundlesAndCountsSales) {
  Market m = MakeMarket();
  PricingEngine mono(m.db.get(), m.support, MatchedEngineOptions());
  ShardedPricingEngine sharded(m.db.get(), PartitionFor(m, 3),
                               MatchedShardedOptions());
  QP_CHECK_OK(mono.AppendBuyers(m.initial_queries, m.initial_valuations));
  QP_CHECK_OK(sharded.AppendBuyers(m.initial_queries, m.initial_valuations));

  for (size_t i = 0; i < m.late_queries.size(); ++i) {
    PurchaseOutcome mo = mono.Purchase(m.late_queries[i], 1e9);
    PurchaseOutcome so = sharded.Purchase(m.late_queries[i], 1e9);
    // The buyer's bundle is the GLOBAL conflict set either way.
    EXPECT_EQ(so.bundle, mo.bundle);
    EXPECT_TRUE(so.accepted);
    EXPECT_GE(so.quote.price, 0.0);
  }
  ShardedEngineStats stats = sharded.stats();
  EXPECT_EQ(stats.merged.purchases, m.late_queries.size());
  EXPECT_EQ(stats.merged.purchases_accepted, m.late_queries.size());
  // Repeat purchases of the same SQL hit the router's prepared cache.
  uint64_t misses_before = stats.merged.prepared.misses;
  sharded.Purchase(m.late_queries[0], 1e9);
  ShardedEngineStats after = sharded.stats();
  EXPECT_EQ(after.merged.prepared.misses, misses_before);
  EXPECT_GT(after.merged.prepared.hits, stats.merged.prepared.hits);
}

TEST(ShardedEngineTest, ConcurrentReadersRaceShardParallelAppends) {
  Market m = MakeMarket(/*support_size=*/100);
  market::SupportPartition partition = PartitionFor(m, 2);
  ShardedPricingEngine engine(m.db.get(), partition,
                              MatchedShardedOptions(2));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));

  // Global-id bundles captured before the readers start, including one
  // that deliberately spans both shards.
  std::vector<std::vector<uint32_t>> bundles;
  bundles.push_back({});
  {
    std::vector<uint32_t> crossing;
    for (int s = 0; s < partition.num_shards; ++s) {
      const auto& items = partition.shard_items[static_cast<size_t>(s)];
      for (size_t k = 0; k < std::min<size_t>(2, items.size()); ++k) {
        crossing.push_back(items[k]);
      }
    }
    bundles.push_back(std::move(crossing));
  }
  for (uint32_t i = 0; i < std::min<uint32_t>(8, partition.num_items());
       ++i) {
    bundles.push_back({i});
  }

  constexpr int kReaders = 4;
  constexpr int kIterations = 150;
  std::atomic<bool> failed{false};
  std::atomic<int64_t> accepted{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r]() {
      uint64_t last_version = 0;
      for (int i = 0; i < kIterations; ++i) {
        const std::vector<uint32_t>& bundle =
            bundles[static_cast<size_t>(r + i) % bundles.size()];
        MergedBookView view = engine.snapshot();
        Quote direct = engine.QuoteBundle(bundle);
        const std::vector<uint32_t> pair[] = {bundle, bundle};
        std::vector<Quote> batch = engine.QuoteBatch(
            std::span<const std::vector<uint32_t>>(pair, 2));
        PurchaseOutcome outcome = engine.Purchase(
            m.late_queries[static_cast<size_t>(r + i) %
                           m.late_queries.size()],
            (r + i) % 3 == 0 ? 1e9 : 1e-9);
        if (outcome.accepted) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
        // Merged versions only move forward; every pin (the explicit
        // view, the batch's internal pin) is internally consistent —
        // same bundle, same price within one pin. Prices are NOT
        // compared across pins: a writer publish in between legitimately
        // changes them.
        if (view.version() < last_version ||
            batch[0].price != batch[1].price ||
            batch[0].version != batch[1].version ||
            view.QuoteBundle(bundle).price != view.QuoteBundle(bundle).price ||
            !std::isfinite(direct.price) || direct.price < 0.0 ||
            !std::isfinite(outcome.quote.price)) {
          failed.store(true);
          return;
        }
        last_version = view.version();
      }
    });
  }

  // Writer: keep publishing shard generations while the readers hammer.
  for (size_t b = 0; b < m.late_queries.size(); ++b) {
    QP_CHECK_OK(
        engine.AppendBuyers({m.late_queries[b]}, {m.late_valuations[b]}));
  }
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  ShardedEngineStats stats = engine.stats();
  EXPECT_EQ(stats.merged.purchases,
            static_cast<uint64_t>(kReaders) * kIterations);
  EXPECT_EQ(stats.merged.purchases_accepted,
            static_cast<uint64_t>(accepted.load()));
}

}  // namespace
}  // namespace qp::serve
