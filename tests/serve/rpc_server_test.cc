// RPC front-end integration suite. The contracts pinned here:
//  (a) wire quotes are bit-identical to in-process QuoteBundle/QuoteBatch
//      against the same snapshot, per-shard version vector included;
//  (b) concurrent multi-client quote storms stay bit-identical to the
//      in-process answers while nothing writes;
//  (c) AppendBuyers over the wire lands exactly like an in-process
//      append, and a full writer queue rejects with kBackpressure
//      WITHOUT applying the request;
//  (d) framing abuse over a real socket — drip-fed bytes, malformed
//      bodies, bad length prefixes, mid-message disconnects — never takes
//      the server down for other clients;
//  (e) Stop() with in-flight requests shuts down cleanly (the TSan job
//      runs this file).
#include "serve/rpc/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/parser.h"
#include "market/support.h"
#include "market/support_partitioner.h"
#include "serve/rpc/client.h"
#include "serve/sharded_engine.h"
#include "tests/testing/test_db.h"

namespace qp::serve::rpc {
namespace {

struct Buyer {
  const char* sql;
  double valuation;
};

const std::vector<Buyer>& InitialBuyers() {
  static const std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 6.0},
      {"select max(Population) from Country", 8.0},
      {"select CountryCode, sum(Population) from City group by CountryCode",
       35.0},
  };
  return buyers;
}

/// Engine + server on an ephemeral loopback port, seeded with the
/// initial buyers.
struct Harness {
  std::unique_ptr<db::Database> db;
  market::SupportSet support;
  std::unique_ptr<ShardedPricingEngine> engine;
  std::unique_ptr<RpcServer> server;

  explicit Harness(int num_shards = 2, RpcServerOptions options = {}) {
    db = db::testing::MakeTestDatabase();
    Rng rng(7);
    auto generated = market::GenerateSupport(
        *db, {.size = 120, .max_retries = 32}, rng);
    QP_CHECK_OK(generated.status());
    support = *generated;

    std::vector<db::BoundQuery> queries;
    core::Valuations valuations;
    for (const Buyer& buyer : InitialBuyers()) {
      auto q = db::ParseQuery(buyer.sql, *db);
      QP_CHECK_OK(q.status());
      queries.push_back(*q);
      valuations.push_back(buyer.valuation);
    }
    market::SupportPartition partition =
        market::SupportPartitioner::FromQueries(db.get(), support, queries, {},
                                                {.num_shards = num_shards});
    engine = std::make_unique<ShardedPricingEngine>(db.get(),
                                                    std::move(partition));
    QP_CHECK_OK(engine->AppendBuyers(queries, valuations));

    server = std::make_unique<RpcServer>(engine.get(), db.get(), options);
    QP_CHECK_OK(server->Start());
  }

  RpcClient Connect() {
    RpcClient client;
    QP_CHECK_OK(client.Connect("127.0.0.1", server->port()));
    return client;
  }

  std::vector<std::vector<uint32_t>> SampleBundles() const {
    std::vector<std::vector<uint32_t>> bundles;
    bundles.push_back({});
    const market::SupportPartition& partition = engine->partition();
    std::vector<uint32_t> crossing;
    for (int s = 0; s < partition.num_shards; ++s) {
      const auto& items = partition.shard_items[static_cast<size_t>(s)];
      for (size_t k = 0; k < std::min<size_t>(2, items.size()); ++k) {
        crossing.push_back(items[k]);
      }
    }
    bundles.push_back(std::move(crossing));
    for (uint32_t i = 0; i < std::min<uint32_t>(6, partition.num_items());
         ++i) {
      bundles.push_back({i, (i + 3) % partition.num_items()});
    }
    return bundles;
  }
};

void ExpectQuoteEq(const Quote& wire, const Quote& local) {
  EXPECT_EQ(wire.price, local.price);
  EXPECT_EQ(wire.version, local.version);
  EXPECT_EQ(wire.shard_versions, local.shard_versions);
  EXPECT_EQ(wire.algorithm, local.algorithm);
}

TEST(RpcServerTest, WireQuotesMatchInProcessBitForBit) {
  Harness h;
  RpcClient client = h.Connect();
  // Nothing writes during this test, so the snapshot is stable and wire
  // answers must equal in-process answers exactly.
  for (const std::vector<uint32_t>& bundle : h.SampleBundles()) {
    Quote local = h.engine->QuoteBundle(bundle);
    RpcReply reply;
    QP_CHECK_OK(client.Quote(bundle, &reply));
    ASSERT_TRUE(reply.ok()) << reply.message;
    ASSERT_EQ(reply.type, MsgType::kQuoteReply);
    ExpectQuoteEq(reply.quote, local);
    // The wire quote carries the collision-free per-shard stamp.
    EXPECT_EQ(reply.quote.shard_versions.size(),
              static_cast<size_t>(h.engine->num_shards()));
  }
}

TEST(RpcServerTest, WireQuoteBatchMatchesInProcessBatch) {
  Harness h;
  RpcClient client = h.Connect();
  std::vector<std::vector<uint32_t>> bundles = h.SampleBundles();
  std::vector<Quote> local = h.engine->QuoteBatch(bundles);
  RpcReply reply;
  QP_CHECK_OK(client.QuoteBatch(bundles, &reply));
  ASSERT_TRUE(reply.ok()) << reply.message;
  ASSERT_EQ(reply.quotes.size(), local.size());
  for (size_t i = 0; i < local.size(); ++i) {
    ExpectQuoteEq(reply.quotes[i], local[i]);
  }
}

TEST(RpcServerTest, PipelinedQuotesAutoBatchAndStillMatch) {
  Harness h;
  RpcClient client = h.Connect();
  std::vector<std::vector<uint32_t>> bundles = h.SampleBundles();
  // Fire the whole set without waiting: requests that land in one event-
  // loop tick coalesce into a single engine QuoteBatch. Replies still
  // match per-request ids and in-process answers.
  std::vector<uint64_t> ids;
  for (const std::vector<uint32_t>& bundle : bundles) {
    auto id = client.SendQuote(bundle);
    QP_CHECK_OK(id.status());
    ids.push_back(*id);
  }
  std::vector<Quote> local = h.engine->QuoteBatch(bundles);
  size_t received = 0;
  std::vector<bool> seen(bundles.size(), false);
  while (received < bundles.size()) {
    RpcReply reply;
    QP_CHECK_OK(client.Receive(&reply));
    ASSERT_TRUE(reply.ok()) << reply.message;
    size_t idx = bundles.size();
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == reply.request_id) idx = i;
    }
    ASSERT_LT(idx, bundles.size());
    ASSERT_FALSE(seen[idx]);
    seen[idx] = true;
    ExpectQuoteEq(reply.quote, local[idx]);
    ++received;
  }
  // The server observed at least one multi-quote tick... or at minimum
  // every quote was answered through the tick path.
  RpcServerStats stats = h.server->stats();
  EXPECT_EQ(stats.batched_quotes, bundles.size());
  EXPECT_GE(stats.quote_ticks, 1u);
  EXPECT_LE(stats.quote_ticks, stats.batched_quotes);
}

TEST(RpcServerTest, ConcurrentClientsStayBitIdentical) {
  Harness h;
  std::vector<std::vector<uint32_t>> bundles = h.SampleBundles();
  std::vector<Quote> local = h.engine->QuoteBatch(bundles);

  constexpr int kClients = 4;
  constexpr int kIterations = 40;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c]() {
      RpcClient client;
      if (!client.Connect("127.0.0.1", h.server->port()).ok()) {
        failed.store(true);
        return;
      }
      for (int i = 0; i < kIterations; ++i) {
        size_t idx = static_cast<size_t>(c + i) % bundles.size();
        RpcReply reply;
        if (!client.Quote(bundles[idx], &reply).ok() || !reply.ok() ||
            reply.quote.price != local[idx].price ||
            reply.quote.version != local[idx].version ||
            reply.quote.shard_versions != local[idx].shard_versions ||
            reply.quote.algorithm != local[idx].algorithm) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

TEST(RpcServerTest, PurchaseAndAppendWorkOverTheWire) {
  Harness h;
  RpcClient client = h.Connect();

  // Purchase: same bundle and acceptance as the in-process call.
  auto query = db::ParseQuery("select distinct Continent from Country", *h.db);
  QP_CHECK_OK(query.status());
  std::vector<uint32_t> expected_bundle =
      h.engine->Purchase(*query, 1e-12).bundle;  // rejected: price > epsilon
  RpcReply purchase;
  QP_CHECK_OK(client.Purchase("select distinct Continent from Country", 1e9,
                              &purchase));
  ASSERT_TRUE(purchase.ok()) << purchase.message;
  EXPECT_TRUE(purchase.purchase.accepted);
  EXPECT_EQ(purchase.purchase.bundle, expected_bundle);

  // Append: the merged version advances and subsequent quotes see it.
  uint64_t version_before = h.engine->snapshot().version();
  RpcReply append;
  QP_CHECK_OK(client.AppendBuyers(
      {{"select min(LifeExpectancy) from Country", 0.75}}, &append));
  ASSERT_TRUE(append.ok()) << append.message;
  EXPECT_GT(append.append.version, version_before);
  EXPECT_EQ(append.append.version, h.engine->snapshot().version());

  RpcReply quote;
  QP_CHECK_OK(client.Quote({}, &quote));
  EXPECT_EQ(quote.quote.version, append.append.version);

  // Bad SQL is a kBadRequest, not a partial append.
  uint64_t version_mid = h.engine->snapshot().version();
  RpcReply bad;
  QP_CHECK_OK(client.AppendBuyers({{"select Name from Country", 1.0},
                                   {"select nonsense from Nowhere", 1.0}},
                                  &bad));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code, WireCode::kBadRequest);
  EXPECT_EQ(h.engine->snapshot().version(), version_mid);

  // Stats reflect the traffic.
  RpcReply stats;
  QP_CHECK_OK(client.Stats(&stats));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.stats.num_shards,
            static_cast<uint32_t>(h.engine->num_shards()));
  EXPECT_EQ(stats.stats.version, h.engine->snapshot().version());
  EXPECT_EQ(stats.stats.shard_versions,
            h.engine->snapshot().version_vector());
  EXPECT_GE(stats.stats.purchases, 1u);
}

TEST(RpcServerTest, SellerDeltaLandsOverTheWire) {
  Harness h;
  RpcClient client = h.Connect();

  const market::CellDelta& delta = h.support[0];
  db::Value base_before =
      h.db->table(delta.table).cell(delta.row, delta.column);
  uint64_t generation_before = h.engine->catalog().head_generation();

  RpcReply reply;
  QP_CHECK_OK(client.ApplySellerDelta(delta, &reply));
  ASSERT_TRUE(reply.ok()) << reply.message;
  EXPECT_EQ(reply.seller_delta.generation, generation_before + 1);
  EXPECT_EQ(h.engine->catalog().head_generation(), generation_before + 1);
  // The edit is visible through the catalog's logical view; the base
  // cell stays untouched until a fold.
  EXPECT_EQ(h.engine->catalog()
                .LogicalCell(delta.table, delta.row, delta.column)
                .Compare(delta.new_value),
            0);
  EXPECT_EQ(h.db->table(delta.table)
                .cell(delta.row, delta.column)
                .Compare(base_before),
            0);

  // Reads keep serving on the same connection.
  RpcReply quote;
  QP_CHECK_OK(client.Quote({}, &quote));
  EXPECT_TRUE(quote.ok());

  // An out-of-range delta is a kBadRequest and commits nothing.
  market::CellDelta bogus;
  bogus.table = h.db->num_tables();
  QP_CHECK_OK(client.ApplySellerDelta(bogus, &reply));
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.code, WireCode::kBadRequest);
  EXPECT_EQ(h.engine->catalog().head_generation(), generation_before + 1);

  // Stats surface the catalog counters over the wire.
  RpcReply stats;
  QP_CHECK_OK(client.Stats(&stats));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.stats.catalog_generation, generation_before + 1);
  EXPECT_GE(stats.stats.generations_published, 1u);
  EXPECT_EQ(stats.stats.deltas_pending, 1u);
  EXPECT_EQ(stats.stats.folds, 0u);
  EXPECT_GE(h.server->stats().seller_delta_requests, 2u);
}

TEST(RpcServerTest, FullWriterQueueRejectsWithBackpressure) {
  // Depth 0: every writer op rejects immediately — deterministic, and
  // pins the contract that a rejected request is NOT applied.
  RpcServerOptions options;
  options.writer_queue_depth = 0;
  Harness h(/*num_shards=*/2, options);
  RpcClient client = h.Connect();
  uint64_t version_before = h.engine->snapshot().version();

  RpcReply reply;
  QP_CHECK_OK(
      client.AppendBuyers({{"select Name from Country", 1.0}}, &reply));
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(reply.backpressure());
  EXPECT_EQ(h.engine->snapshot().version(), version_before);
  EXPECT_GE(h.server->stats().writer_rejected, 1u);

  // Seller deltas share the admission queue and its NOT-applied
  // contract.
  uint64_t generation_before = h.engine->catalog().head_generation();
  RpcReply delta_reply;
  QP_CHECK_OK(client.ApplySellerDelta(h.support[0], &delta_reply));
  EXPECT_FALSE(delta_reply.ok());
  EXPECT_TRUE(delta_reply.backpressure());
  EXPECT_EQ(h.engine->catalog().head_generation(), generation_before);

  // The connection survives rejection: reads still work.
  RpcReply quote;
  QP_CHECK_OK(client.Quote({}, &quote));
  EXPECT_TRUE(quote.ok());
}

TEST(RpcServerTest, DripFedFramesDecodeAcrossPartialReads) {
  Harness h;
  // Raw socket, one byte per send: the server must reassemble.
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(h.server->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::vector<uint8_t> frame = EncodeQuoteRequest(77, {0, 1});
  for (uint8_t byte : frame) {
    ASSERT_EQ(send(fd, &byte, 1, 0), 1);
  }
  // Collect the reply (blocking socket).
  std::vector<uint8_t> in;
  Frame reply;
  for (;;) {
    uint8_t buf[4096];
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    in.insert(in.end(), buf, buf + n);
    size_t consumed = 0;
    ExtractResult result =
        ExtractFrame(in.data(), in.size(), &consumed, &reply);
    ASSERT_NE(result, ExtractResult::kError);
    if (result == ExtractResult::kFrame) break;
  }
  EXPECT_EQ(reply.type, MsgType::kQuoteReply);
  EXPECT_EQ(reply.request_id, 77u);
  Quote quote;
  EXPECT_TRUE(DecodeQuoteReply(reply.body, &quote));
  ExpectQuoteEq(quote, h.engine->QuoteBundle({0, 1}));
  close(fd);
}

TEST(RpcServerTest, AbuseDoesNotTakeTheServerDown) {
  Harness h;
  auto raw_connect = [&]() {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(h.server->port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  };

  // (1) Mid-message disconnect: half a frame, then gone.
  {
    int fd = raw_connect();
    std::vector<uint8_t> frame = EncodePurchaseRequest(1, "select 1", 1.0);
    ASSERT_EQ(send(fd, frame.data(), frame.size() / 2, 0),
              static_cast<ssize_t>(frame.size() / 2));
    close(fd);
  }
  // (2) Hostile length prefix: the server closes the connection.
  {
    int fd = raw_connect();
    uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_EQ(send(fd, huge, sizeof(huge), 0), 4);
    uint8_t buf[64];
    EXPECT_EQ(recv(fd, buf, sizeof(buf), 0), 0);  // orderly close
    close(fd);
  }
  // (3) Malformed body on a known type: kBadRequest, connection lives.
  {
    RpcClient client = h.Connect();
    int fd = raw_connect();
    std::vector<uint8_t> truncated_body = {0x05, 0x00, 0x00, 0x00};  // 5 items, none present
    std::vector<uint8_t> frame =
        BuildFrame(MsgType::kQuote, 9, truncated_body);
    ASSERT_EQ(send(fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
    std::vector<uint8_t> in;
    Frame reply;
    for (;;) {
      uint8_t buf[4096];
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0);
      in.insert(in.end(), buf, buf + n);
      size_t consumed = 0;
      if (ExtractFrame(in.data(), in.size(), &consumed, &reply) ==
          ExtractResult::kFrame) {
        break;
      }
    }
    EXPECT_EQ(reply.type, MsgType::kErrorReply);
    WireCode code;
    std::string message;
    EXPECT_TRUE(DecodeErrorReply(reply.body, &code, &message));
    EXPECT_EQ(code, WireCode::kBadRequest);
    close(fd);
  }
  // (4) Unknown message type: error reply, server up.
  {
    int fd = raw_connect();
    std::vector<uint8_t> frame = BuildFrame(static_cast<MsgType>(42), 3, {});
    ASSERT_EQ(send(fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
    close(fd);
  }

  // After all of it, a well-behaved client still gets exact answers.
  RpcClient client = h.Connect();
  RpcReply reply;
  QP_CHECK_OK(client.Quote({}, &reply));
  ASSERT_TRUE(reply.ok());
  ExpectQuoteEq(reply.quote, h.engine->QuoteBundle({}));
  EXPECT_GE(h.server->stats().protocol_errors, 2u);
}

TEST(RpcServerTest, StopWithInFlightRequestsShutsDownCleanly) {
  for (int round = 0; round < 3; ++round) {
    Harness h;
    std::atomic<bool> go{false};
    constexpr int kClients = 3;
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c]() {
        RpcClient client;
        if (!client.Connect("127.0.0.1", h.server->port()).ok()) return;
        while (!go.load()) {
        }
        // Hammer quotes and appends until the server goes away. Every
        // outcome is legal — a reply, kShuttingDown, or a transport
        // error once the connection is closed — as long as nothing
        // crashes, deadlocks, or trips TSan.
        for (int i = 0; i < 200; ++i) {
          RpcReply reply;
          Status status =
              (c == 0 && i % 10 == 0)
                  ? client.AppendBuyers(
                        {{"select count(*) from City", 0.5}}, &reply)
                  : client.Quote({}, &reply);
          if (!status.ok()) return;
        }
      });
    }
    go.store(true);
    h.server->Stop();
    for (std::thread& t : threads) t.join();
    // Stop() is idempotent and the destructor may run it again.
    h.server->Stop();
  }
}

}  // namespace
}  // namespace qp::serve::rpc
