// Catalog-churn hammer: concurrent seller deltas vs live quote/purchase
// traffic, checked bit-for-bit against a serially-applied reference.
//
// The contract under test (the whole point of the versioned catalog):
// ApplySellerDelta is fully concurrent with readers — no quiescence —
// and the interleaving is *unobservable* in the final state. Two writer
// threads race disjoint-cell deltas through the router while four
// reader threads quote and purchase continuously; afterwards every
// logical cell, every quote and every purchase outcome must be
// bit-identical to a twin engine that applied the same deltas serially
// with no traffic at all. Run under TSan in CI (label: churn).
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/algorithms.h"
#include "db/parser.h"
#include "db/value.h"
#include "market/support.h"
#include "market/support_partitioner.h"
#include "serve/pricing_engine.h"
#include "serve/sharded_engine.h"
#include "tests/testing/test_db.h"

namespace qp::serve {
namespace {

constexpr int kWriters = 2;
constexpr int kReaders = 4;
// Readers keep hammering until the writers finish AND each reader has
// made at least this many passes, so staleness sampling always sees
// traffic even if the writers win the race.
constexpr int kMinReaderIters = 25;

struct Buyer {
  const char* sql;
  double valuation;
};

const std::vector<Buyer>& Buyers() {
  static const std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 6.0},
      {"select max(Population) from Country", 8.0},
      {"select CountryCode, sum(Population) from City group by CountryCode",
       35.0},
      {"select distinct Continent from Country", 1.5},
      {"select Name from City where Population > 10000000", 2.5},
      {"select min(LifeExpectancy) from Country", 0.75},
      {"select Language from CountryLanguage where IsOfficial = 'T'", 4.0},
      {"select avg(Percentage) from CountryLanguage", 3.0},
  };
  return buyers;
}

// One complete market + sharded engine, reproducible from scratch: the
// reference twin is built by calling this again (same seed, same
// pristine database) and applying the deltas serially.
struct Market {
  std::unique_ptr<db::Database> db;
  market::SupportSet support;
  std::vector<db::BoundQuery> queries;
  core::Valuations valuations;
  std::unique_ptr<ShardedPricingEngine> engine;
};

Market MakeMarket(int fold_every) {
  Market m;
  m.db = db::testing::MakeTestDatabase();
  Rng rng(7);
  auto support =
      market::GenerateSupport(*m.db, {.size = 120, .max_retries = 32}, rng);
  QP_CHECK_OK(support.status());
  m.support = *support;
  for (const Buyer& buyer : Buyers()) {
    auto q = db::ParseQuery(buyer.sql, *m.db);
    QP_CHECK_OK(q.status());
    m.queries.push_back(*q);
    m.valuations.push_back(buyer.valuation);
  }
  ShardedEngineOptions options;
  options.engine.algorithms.lpip.max_candidates = 0;
  options.engine.algorithms.lpip.chain_length = 1;
  options.engine.consolidate_every = 4;
  options.engine.fold_every = fold_every;
  m.engine = std::make_unique<ShardedPricingEngine>(
      m.db.get(),
      market::SupportPartitioner::FromQueries(m.db.get(), m.support, m.queries,
                                              {}, {.num_shards = 2}),
      options);
  QP_CHECK_OK(m.engine->AppendBuyers(m.queries, m.valuations));
  return m;
}

// The support set may perturb one cell several times; the writers need
// disjoint *cell* sets so the final state is interleaving-independent.
// Keep the last delta per cell — the value a serial tail-wins apply
// would leave — then deal cells round-robin across writers.
std::vector<market::CellDelta> DistinctCellDeltas(
    const market::SupportSet& support) {
  std::vector<market::CellDelta> out;
  for (const market::CellDelta& d : support) {
    bool replaced = false;
    for (market::CellDelta& seen : out) {
      if (seen.table == d.table && seen.row == d.row &&
          seen.column == d.column) {
        seen = d;
        replaced = true;
        break;
      }
    }
    if (!replaced) out.push_back(d);
  }
  return out;
}

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

std::vector<std::vector<uint32_t>> ProbeBundles(uint32_t num_items) {
  std::vector<std::vector<uint32_t>> bundles;
  for (uint32_t i = 0; i < num_items; i += 17) bundles.push_back({i});
  std::vector<uint32_t> strided;
  for (uint32_t i = 0; i < num_items; i += 11) strided.push_back(i);
  bundles.push_back(strided);
  return bundles;
}

TEST(CatalogChurnTest, ConcurrentDeltasMatchSerialReferenceBitForBit) {
  Market churned = MakeMarket(/*fold_every=*/4);

  std::vector<market::CellDelta> deltas = DistinctCellDeltas(churned.support);
  ASSERT_GE(deltas.size(), 2u * kWriters);
  std::vector<std::vector<market::CellDelta>> per_writer(kWriters);
  for (size_t i = 0; i < deltas.size(); ++i) {
    per_writer[i % kWriters].push_back(deltas[i]);
  }

  // --- churn phase: writers race deltas against live readers ----------
  std::atomic<bool> writers_done{false};
  std::atomic<uint64_t> deltas_applied{0};
  std::atomic<bool> writer_failed{false};
  std::atomic<bool> reader_failed{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  std::atomic<int> writers_running{kWriters};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (const market::CellDelta& d : per_writer[w]) {
        if (!churned.engine->ApplySellerDelta(*churned.db, d).ok()) {
          writer_failed.store(true);
        }
        deltas_applied.fetch_add(1);
      }
      if (writers_running.fetch_sub(1) == 1) writers_done.store(true);
    });
  }

  auto probes = ProbeBundles(static_cast<uint32_t>(churned.support.size()));
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      int iters = 0;
      while (!writers_done.load() || iters < kMinReaderIters) {
        Quote q = churned.engine->QuoteBundle(probes[iters % probes.size()]);
        if (q.version == 0) reader_failed.store(true);
        size_t b = static_cast<size_t>(r + iters) % churned.queries.size();
        PurchaseOutcome p = churned.engine->Purchase(churned.queries[b],
                                                     churned.valuations[b]);
        if (!p.status.ok()) reader_failed.store(true);
        ++iters;
      }
    });
  }

  for (std::thread& t : writers) t.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(writer_failed.load());
  EXPECT_FALSE(reader_failed.load());
  ASSERT_EQ(deltas_applied.load(), deltas.size());

  // --- reference twin: same market, deltas applied serially, no load --
  Market reference = MakeMarket(/*fold_every=*/4);
  for (const market::CellDelta& d : deltas) {
    QP_CHECK_OK(reference.engine->ApplySellerDelta(*reference.db, d));
  }

  // Generations count commits identically (one per delta).
  EXPECT_EQ(churned.engine->catalog().head_generation(), deltas.size());
  EXPECT_EQ(reference.engine->catalog().head_generation(), deltas.size());

  // Every logical cell matches the reference AND the directly computed
  // expectation (delta value where a delta landed, pristine base bytes
  // everywhere else).
  std::unique_ptr<db::Database> pristine = db::testing::MakeTestDatabase();
  for (int t = 0; t < pristine->num_tables(); ++t) {
    const db::Table& table = pristine->table(t);
    for (int row = 0; row < table.num_rows(); ++row) {
      for (int col = 0; col < table.schema().num_columns(); ++col) {
        const db::Value* expected = nullptr;
        for (const market::CellDelta& d : deltas) {
          if (d.table == t && d.row == row && d.column == col) {
            expected = &d.new_value;
            break;
          }
        }
        db::Value churned_cell =
            churned.engine->catalog().LogicalCell(t, row, col);
        db::Value reference_cell =
            reference.engine->catalog().LogicalCell(t, row, col);
        ASSERT_EQ(churned_cell,
                  expected != nullptr ? *expected : table.cell(row, col))
            << "cell (" << t << "," << row << "," << col << ")";
        ASSERT_EQ(churned_cell, reference_cell)
            << "cell (" << t << "," << row << "," << col << ")";
      }
    }
  }

  // Post-churn quotes and purchases are bit-identical to the reference.
  for (const std::vector<uint32_t>& bundle : probes) {
    Quote a = churned.engine->QuoteBundle(bundle);
    Quote b = reference.engine->QuoteBundle(bundle);
    EXPECT_EQ(Bits(a.price), Bits(b.price));
    EXPECT_EQ(a.version, b.version);
  }
  for (size_t i = 0; i < churned.queries.size(); ++i) {
    PurchaseOutcome a =
        churned.engine->Purchase(churned.queries[i], churned.valuations[i]);
    PurchaseOutcome b = reference.engine->Purchase(reference.queries[i],
                                                   reference.valuations[i]);
    QP_CHECK_OK(a.status);
    QP_CHECK_OK(b.status);
    EXPECT_EQ(Bits(a.quote.price), Bits(b.quote.price)) << "buyer " << i;
    EXPECT_EQ(a.accepted, b.accepted) << "buyer " << i;
    EXPECT_EQ(a.bundle, b.bundle) << "buyer " << i;
  }

  // Churn accounting: the catalog saw every commit, attempted folds on
  // the cadence (a fold either lands or defers to pinned readers — under
  // live traffic both are legal), and nothing leaked: pending + folded
  // always equals the distinct cells committed. Purchases during the
  // churn sampled staleness.
  EngineStats::CatalogStats cs = churned.engine->reader_stats().catalog;
  EXPECT_EQ(cs.generations_published, deltas.size());
  EXPECT_GE(cs.folds + cs.fold_retries, 1u);
  EXPECT_EQ(cs.deltas_pending + cs.deltas_folded, deltas.size());
  EXPECT_GT(cs.staleness_samples, 0u);

  // The serial reference has no pinned readers at commit time: every
  // cadence-triggered fold must land, never retry.
  EngineStats::CatalogStats ref = reference.engine->reader_stats().catalog;
  EXPECT_EQ(ref.generations_published, deltas.size());
  EXPECT_GE(ref.folds, 1u);
  EXPECT_EQ(ref.fold_retries, 0u);
  EXPECT_EQ(ref.deltas_pending + ref.deltas_folded, deltas.size());
}

}  // namespace
}  // namespace qp::serve
