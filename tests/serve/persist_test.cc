// Durability suite (serve/persist). The contracts pinned here:
//  (a) the checkpoint/journal format detects corruption: section CRCs,
//      file-kind tags, torn journal tails;
//  (b) crash recovery (checkpoint + write-ahead journal replay into a
//      fresh engine) reproduces the pre-crash books BIT FOR BIT —
//      versions, prices, serialized shard state — including seller
//      deltas and a journal that ends in a torn record;
//  (c) a corrupt or uncommitted newest checkpoint falls back to an
//      older one, with the longer journal replay closing the gap;
//  (d) while shards warm after a restore, TryQuote*/Purchase answer
//      Unavailable instead of serving cold prices.
#include "serve/persist/checkpoint.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/parser.h"
#include "market/support.h"
#include "market/support_partitioner.h"
#include "serve/persist/format.h"
#include "serve/persist/state_io.h"
#include "serve/sharded_engine.h"
#include "tests/testing/test_db.h"

namespace qp::serve::persist {
namespace {

namespace fs = std::filesystem;

struct Buyer {
  const char* sql;
  double valuation;
};

const std::vector<Buyer>& AllBuyers() {
  static const std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 6.0},
      {"select max(Population) from Country", 8.0},
      {"select CountryCode, sum(Population) from City group by CountryCode",
       35.0},
      {"select min(LifeExpectancy) from Country", 0.75},
      {"select distinct Continent from Country", 3.5},
  };
  return buyers;
}

/// A database + fresh sharded engine over a deterministic support.
/// Every World built with the same shard count is identical, so two
/// Worlds stand in for "the process before the crash" and "the process
/// after restart" (each process re-creates its db and engine).
struct World {
  std::unique_ptr<db::Database> db;
  market::SupportSet support;
  std::unique_ptr<ShardedPricingEngine> engine;

  explicit World(int num_shards = 2) {
    db = db::testing::MakeTestDatabase();
    Rng rng(7);
    auto generated =
        market::GenerateSupport(*db, {.size = 120, .max_retries = 32}, rng);
    QP_CHECK_OK(generated.status());
    support = *generated;
    std::vector<db::BoundQuery> queries;
    for (const Buyer& buyer : AllBuyers()) {
      auto q = db::ParseQuery(buyer.sql, *db);
      QP_CHECK_OK(q.status());
      queries.push_back(*q);
    }
    market::SupportPartition partition = market::SupportPartitioner::FromQueries(
        db.get(), support, queries, {}, {.num_shards = num_shards});
    engine =
        std::make_unique<ShardedPricingEngine>(db.get(), std::move(partition));
  }

  /// Appends buyers [first, first+count) of AllBuyers() through the
  /// engine's normal (probing, logged) writer path.
  void Append(size_t first, size_t count) {
    std::vector<db::BoundQuery> queries;
    core::Valuations valuations;
    for (size_t i = first; i < first + count; ++i) {
      auto q = db::ParseQuery(AllBuyers()[i].sql, *db);
      QP_CHECK_OK(q.status());
      queries.push_back(*q);
      valuations.push_back(AllBuyers()[i].valuation);
    }
    QP_CHECK_OK(engine->AppendBuyers(queries, valuations));
  }
};

/// Fresh (pre-cleaned) per-test scratch directory.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "qp_persist_" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<std::vector<uint32_t>> SampleBundles(
    const ShardedPricingEngine& engine) {
  const market::SupportPartition& partition = engine.partition();
  std::vector<std::vector<uint32_t>> bundles;
  bundles.push_back({});
  std::vector<uint32_t> crossing;
  for (int s = 0; s < partition.num_shards; ++s) {
    const auto& items = partition.shard_items[static_cast<size_t>(s)];
    for (size_t k = 0; k < std::min<size_t>(2, items.size()); ++k) {
      crossing.push_back(items[k]);
    }
  }
  bundles.push_back(std::move(crossing));
  for (uint32_t i = 0; i < std::min<uint32_t>(8, partition.num_items()); ++i) {
    bundles.push_back({i, (i + 5) % partition.num_items()});
  }
  return bundles;
}

/// Books equal bit for bit: per-shard version vector and exact (double-
/// equality) prices + algorithm labels across a bundle sample.
void ExpectEnginesIdentical(const ShardedPricingEngine& a,
                            const ShardedPricingEngine& b) {
  ASSERT_EQ(a.num_shards(), b.num_shards());
  EXPECT_EQ(a.snapshot().version_vector(), b.snapshot().version_vector());
  std::vector<std::vector<uint32_t>> bundles = SampleBundles(a);
  std::vector<Quote> qa = a.QuoteBatch(bundles);
  std::vector<Quote> qb = b.QuoteBatch(bundles);
  ASSERT_EQ(qa.size(), qb.size());
  for (size_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(qa[i].price, qb[i].price) << "bundle " << i;
    EXPECT_EQ(qa[i].version, qb[i].version) << "bundle " << i;
    EXPECT_EQ(qa[i].shard_versions, qb[i].shard_versions) << "bundle " << i;
    EXPECT_EQ(qa[i].algorithm, qb[i].algorithm) << "bundle " << i;
  }
}

/// The strongest equality: checkpoint both engines into scratch dirs and
/// compare the serialized shard files byte for byte (serialization is
/// deterministic, so identical bytes == identical writer state: edges,
/// valuations, reprice state, LP counts, published books).
void ExpectSerializedStateIdentical(ShardedPricingEngine& a,
                                    ShardedPricingEngine& b,
                                    const std::string& tag) {
  std::string dir_a = FreshDir("bitcmp_a_" + tag);
  std::string dir_b = FreshDir("bitcmp_b_" + tag);
  CheckpointManager ma({.dir = dir_a});
  CheckpointManager mb({.dir = dir_b});
  QP_CHECK_OK(ma.Attach(&a));
  QP_CHECK_OK(mb.Attach(&b));
  for (int s = 0; s < a.num_shards(); ++s) {
    std::string name = "/checkpoint-1/shard-" + std::to_string(s) + ".ckpt";
    auto bytes_a = ReadFile(dir_a + name);
    auto bytes_b = ReadFile(dir_b + name);
    QP_CHECK_OK(bytes_a.status());
    QP_CHECK_OK(bytes_b.status());
    EXPECT_EQ(*bytes_a, *bytes_b) << "shard " << s << " (" << tag << ")";
  }
}

void AppendRawBytes(const std::string& path, const std::vector<uint8_t>& bytes,
                    size_t count) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(count));
  ASSERT_TRUE(out.good());
}

void FlipByteInFile(const std::string& path, size_t offset_from_mid) {
  auto bytes = ReadFile(path);
  QP_CHECK_OK(bytes.status());
  size_t pos = bytes->size() / 2 + offset_from_mid;
  ASSERT_LT(pos, bytes->size());
  (*bytes)[pos] ^= 0xFF;
  QP_CHECK_OK(WriteFileAtomic(path, *bytes, /*fsync_file=*/false));
}

// --- (a) format --------------------------------------------------------

TEST(PersistFormatTest, SectionsRoundTripAndDetectCorruption) {
  std::vector<uint8_t> file;
  AppendFileHeader(kShardFileKind, &file);
  AppendSection(7, {1, 2, 3, 4, 5}, &file);
  AppendSection(9, {}, &file);

  auto offset = CheckFileHeader(file, kShardFileKind);
  QP_CHECK_OK(offset.status());
  SectionReader reader(file.data() + *offset, file.size() - *offset);
  Section section;
  QP_CHECK_OK(reader.Next(&section));
  EXPECT_EQ(section.tag, 7u);
  ASSERT_EQ(section.size, 5u);
  EXPECT_EQ(section.payload[4], 5);
  QP_CHECK_OK(reader.Next(&section));
  EXPECT_EQ(section.tag, 9u);
  EXPECT_EQ(section.size, 0u);
  EXPECT_TRUE(reader.AtEnd());

  // The manifest kind must not load as a shard file.
  EXPECT_EQ(CheckFileHeader(file, kManifestFileKind).status().code(),
            StatusCode::kInternal);

  // One flipped payload byte fails that section's CRC.
  std::vector<uint8_t> corrupt = file;
  corrupt[*offset + 8 + 2] ^= 0x01;  // inside section 7's payload
  SectionReader bad(corrupt.data() + *offset, corrupt.size() - *offset);
  EXPECT_FALSE(bad.Next(&section).ok());

  // Truncation mid-section fails too.
  SectionReader truncated(file.data() + *offset, file.size() - *offset - 3);
  QP_CHECK_OK(truncated.Next(&section));
  EXPECT_FALSE(truncated.Next(&section).ok());
}

TEST(PersistFormatTest, AtomicWriteReadRoundTrip) {
  std::string dir = FreshDir("format_io");
  fs::create_directories(dir);
  std::string path = dir + "/blob";
  EXPECT_EQ(ReadFile(path).status().code(), StatusCode::kNotFound);
  std::vector<uint8_t> payload = {0, 255, 7, 42};
  QP_CHECK_OK(WriteFileAtomic(path, payload, /*fsync_file=*/false));
  auto back = ReadFile(path);
  QP_CHECK_OK(back.status());
  EXPECT_EQ(*back, payload);
  // Overwrite is atomic-rename too; no .tmp survivors.
  QP_CHECK_OK(WriteFileAtomic(path, {9}, /*fsync_file=*/false));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_EQ(ReadFile(path)->size(), 1u);
}

// --- journal edge cases ------------------------------------------------

TEST(PersistJournalTest, TornAndCorruptTailsEndReplay) {
  std::string dir = FreshDir("journal");
  fs::create_directories(dir);
  std::string path = dir + "/journal-1.log";

  JournalOp op1{kAppendOp, 1, {{0, 1, 2}, {3}}, {5.0, 7.0}, {}};
  JournalOp op2{kSellerDeltaOp, 2, {}, {}, {0, 1, 3, db::Value::Int(42)}};
  JournalOp op3{kAppendOp, 3, {{4, 5}}, {1.0}, {}};
  std::vector<uint8_t> r1 = EncodeJournalRecord(op1);
  std::vector<uint8_t> r2 = EncodeJournalRecord(op2);
  std::vector<uint8_t> r3 = EncodeJournalRecord(op3);

  // Missing file is NotFound (recovery treats it as an empty segment).
  EXPECT_EQ(ReadJournal(path).status().code(), StatusCode::kNotFound);

  // Two whole records + a torn third: the torn tail ends the journal.
  AppendRawBytes(path, r1, r1.size());
  AppendRawBytes(path, r2, r2.size());
  AppendRawBytes(path, r3, r3.size() / 2);
  auto journal = ReadJournal(path);
  QP_CHECK_OK(journal.status());
  EXPECT_TRUE(journal->torn_tail);
  ASSERT_EQ(journal->ops.size(), 2u);
  EXPECT_EQ(journal->ops[0].op_id, 1u);
  EXPECT_EQ(journal->ops[0].conflict_sets, op1.conflict_sets);
  EXPECT_EQ(journal->ops[0].valuations, op1.valuations);
  EXPECT_EQ(journal->ops[1].type, kSellerDeltaOp);
  EXPECT_EQ(journal->ops[1].delta.column, 3);
  EXPECT_EQ(journal->ops[1].delta.new_value.as_int(), 42);

  // A flipped byte inside record 2 fails its CRC: record 1 survives,
  // everything after the corruption is dropped.
  fs::remove(path);
  AppendRawBytes(path, r1, r1.size());
  std::vector<uint8_t> bad = r2;
  bad[bad.size() / 2] ^= 0x10;
  AppendRawBytes(path, bad, bad.size());
  AppendRawBytes(path, r3, r3.size());
  journal = ReadJournal(path);
  QP_CHECK_OK(journal.status());
  EXPECT_TRUE(journal->torn_tail);
  ASSERT_EQ(journal->ops.size(), 1u);

  // A CRC-VALID record with an unknown op type is a format
  // incompatibility, not a crash signature: hard error, no silent drop.
  fs::remove(path);
  std::vector<uint8_t> unknown;
  std::vector<uint8_t> body = {/*type=*/9, /*op_id u64*/ 1, 0, 0, 0,
                               0,          0,              0, 0};
  uint32_t len = static_cast<uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    unknown.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  unknown.insert(unknown.end(), body.begin(), body.end());
  uint32_t crc = Crc32(body);
  for (int i = 0; i < 4; ++i) {
    unknown.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  AppendRawBytes(path, unknown, unknown.size());
  EXPECT_EQ(ReadJournal(path).status().code(), StatusCode::kInternal);
}

// --- (b) crash recovery round trip -------------------------------------

TEST(PersistRecoveryTest, CrashRecoveryIsBitIdenticalIncludingTornTail) {
  std::string dir = FreshDir("roundtrip");

  // "Process 1": engine + manager, mixed appends / seller delta, then a
  // simulated crash mid-journal-write.
  World a;
  CheckpointManager manager({.dir = dir, .checkpoint_every = 2, .keep = 2});
  QP_CHECK_OK(manager.Attach(a.engine.get()));
  a.engine->SetWriterLog(&manager);

  a.Append(0, 2);  // publish 1
  a.Append(2, 2);  // publish 2 -> periodic checkpoint (seq 2)
  EXPECT_EQ(manager.stats().last_checkpoint_seq, 2u);
  // A seller edit, then appends that probe the EDITED database: replay
  // must reproduce them without re-probing (it uses the journaled
  // global conflict sets), so a recovery of this journal is immune to
  // when the database view is rebuilt.
  market::CellDelta delta{0, 1, 3, db::Value::Int(500000000)};
  QP_CHECK_OK(a.engine->ApplySellerDelta(*a.db, delta));
  a.Append(4, 3);  // publish 3 -> journal op after checkpoint 2

  // Crash signature: a torn (half-written) record at the journal tail.
  JournalOp torn{kAppendOp, 999, {{0, 1}}, {1.0}, {}};
  std::vector<uint8_t> torn_bytes = EncodeJournalRecord(torn);
  AppendRawBytes(dir + "/journal-2.log", torn_bytes, torn_bytes.size() / 2);

  // "Process 2": recover from disk into a fresh world.
  auto recovered = Recover(dir);
  QP_CHECK_OK(recovered.status());
  EXPECT_EQ(recovered->checkpoint_seq, 2);
  EXPECT_EQ(recovered->corrupt_checkpoints_skipped, 0);
  EXPECT_TRUE(recovered->journal_torn_tail);
  ASSERT_EQ(recovered->seller_deltas.size() +
                static_cast<size_t>(std::count_if(
                    recovered->ops.begin(), recovered->ops.end(),
                    [](const JournalOp& op) {
                      return op.type == kSellerDeltaOp;
                    })),
            1u);

  World b;
  QP_CHECK_OK(b.engine->RestoreFromCheckpoint(*recovered, b.db.get()));
  ExpectEnginesIdentical(*a.engine, *b.engine);
  ExpectSerializedStateIdentical(*a.engine, *b.engine, "post_restore");

  // The recovered engine saw the seller delta — as a committed catalog
  // generation, exactly like the live engine: the logical view carries
  // the new value while the base cell keeps its seed bytes (one delta is
  // far below the fold cadence on both sides).
  EXPECT_EQ(b.engine->catalog().LogicalCell(0, 1, 3).as_int(), 500000000);
  EXPECT_EQ(b.db->table(0).cell(1, 3).as_int(),
            a.db->table(0).cell(1, 3).as_int());
  EXPECT_EQ(b.engine->catalog().head_generation(),
            a.engine->catalog().head_generation());

  // "Process 2" keeps running: attach a manager to the SAME directory
  // (fresh checkpoint, fresh journal segment — never appends after the
  // torn tail) and keep writing; op ids continue past the recovered max.
  CheckpointManager manager_b({.dir = dir, .checkpoint_every = 2, .keep = 2});
  QP_CHECK_OK(manager_b.Attach(b.engine.get(), &*recovered));
  EXPECT_GE(manager_b.next_op_id(), recovered->next_op_id);
  b.engine->SetWriterLog(&manager_b);
  a.engine->SetWriterLog(nullptr);  // process 1 is dead; stop logging
  a.Append(5, 2);
  b.Append(5, 2);
  ExpectEnginesIdentical(*a.engine, *b.engine);

  // "Process 3": one more recovery sees process 2's journal.
  auto again = Recover(dir);
  QP_CHECK_OK(again.status());
  EXPECT_FALSE(again->journal_torn_tail);
  World c;
  QP_CHECK_OK(c.engine->RestoreFromCheckpoint(*again, c.db.get()));
  ExpectEnginesIdentical(*b.engine, *c.engine);
  ExpectSerializedStateIdentical(*b.engine, *c.engine, "second_cycle");
}

// A journal that interleaves AppendBuyers and ApplySellerDelta —
// written while reader threads hammer quotes against the live engine —
// recovers bit-identical: serialized shard state, quotes, logical cell
// views and the catalog generation all match the live engine.
TEST(PersistRecoveryTest, InterleavedChurnJournalRecoversBitIdentical) {
  std::string dir = FreshDir("churn_journal");
  World a;
  CheckpointManager manager({.dir = dir, .checkpoint_every = 3, .keep = 2});
  QP_CHECK_OK(manager.Attach(a.engine.get()));
  a.engine->SetWriterLog(&manager);

  // Readers quote throughout the churn: the writer path needs no
  // quiescence, so the log/commit interleavings land under live load.
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&a, &stop] {
      const std::vector<uint32_t> bundle = {0, 1, 2};
      while (!stop.load(std::memory_order_relaxed)) {
        a.engine->QuoteBundle(bundle);
      }
    });
  }

  // Strict interleaving, one append then one seller delta per round; the
  // deltas straddle the periodic checkpoints (seq 3, 6), so recovery
  // must stitch manifest-carried deltas and journal-replayed ones in op
  // order.
  const size_t rounds = AllBuyers().size();
  for (size_t i = 0; i < rounds; ++i) {
    a.Append(i, 1);
    QP_CHECK_OK(a.engine->ApplySellerDelta(*a.db, a.support[i]));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) th.join();

  auto recovered = Recover(dir);
  QP_CHECK_OK(recovered.status());
  World b;
  QP_CHECK_OK(b.engine->RestoreFromCheckpoint(*recovered, b.db.get()));
  ExpectEnginesIdentical(*a.engine, *b.engine);
  ExpectSerializedStateIdentical(*a.engine, *b.engine, "churn");
  for (size_t i = 0; i < rounds; ++i) {
    const market::CellDelta& d = a.support[i];
    EXPECT_EQ(b.engine->catalog()
                  .LogicalCell(d.table, d.row, d.column)
                  .Compare(a.engine->catalog().LogicalCell(d.table, d.row,
                                                           d.column)),
              0)
        << "cell " << i;
  }
  EXPECT_EQ(b.engine->catalog().head_generation(),
            a.engine->catalog().head_generation());
}

TEST(PersistRecoveryTest, EmptyDirectoryRecoversToEmptyEngine) {
  std::string dir = FreshDir("empty");
  auto recovered = Recover(dir);
  QP_CHECK_OK(recovered.status());
  EXPECT_EQ(recovered->checkpoint_seq, -1);
  EXPECT_TRUE(recovered->ops.empty());

  World w;
  QP_CHECK_OK(w.engine->RestoreFromCheckpoint(*recovered));
  CheckpointManager manager({.dir = dir});
  QP_CHECK_OK(manager.Attach(w.engine.get(), &*recovered));
  w.engine->SetWriterLog(&manager);
  w.Append(0, 3);
  EXPECT_EQ(manager.stats().journal_records, 1u);

  World back;
  auto state = Recover(dir);
  QP_CHECK_OK(state.status());
  QP_CHECK_OK(back.engine->RestoreFromCheckpoint(*state, back.db.get()));
  ExpectEnginesIdentical(*w.engine, *back.engine);
}

TEST(PersistRecoveryTest, RestoreRefusesNonFreshEngineAndWrongPartition) {
  std::string dir = FreshDir("refuse");
  World a;
  CheckpointManager manager({.dir = dir, .checkpoint_every = 1});
  QP_CHECK_OK(manager.Attach(a.engine.get()));
  a.engine->SetWriterLog(&manager);
  a.Append(0, 2);

  auto recovered = Recover(dir);
  QP_CHECK_OK(recovered.status());

  // Not fresh: an engine that already appended refuses the restore.
  World dirty;
  dirty.Append(0, 1);
  EXPECT_EQ(dirty.engine->RestoreFromCheckpoint(*recovered, dirty.db.get())
                .code(),
            StatusCode::kFailedPrecondition);

  // Different partition: the fingerprint check refuses.
  World other(/*num_shards=*/3);
  EXPECT_EQ(other.engine->RestoreFromCheckpoint(*recovered, other.db.get())
                .code(),
            StatusCode::kFailedPrecondition);
}

// --- (c) corrupt-checkpoint fallback -----------------------------------

TEST(PersistRecoveryTest, FallsBackPastCorruptAndUncommittedCheckpoints) {
  std::string dir = FreshDir("fallback");
  World a;
  CheckpointManager manager({.dir = dir, .checkpoint_every = 1, .keep = 3});
  QP_CHECK_OK(manager.Attach(a.engine.get()));
  a.engine->SetWriterLog(&manager);
  a.Append(0, 2);  // checkpoint 2
  a.Append(2, 2);  // checkpoint 3
  a.Append(4, 2);  // checkpoint 4
  EXPECT_EQ(manager.stats().last_checkpoint_seq, 4u);

  // Bit-rot the newest checkpoint's shard file: its whole-file CRC no
  // longer matches the manifest, so recovery falls back to seq 3 and
  // replays that checkpoint's (longer) journal to the same end state.
  FlipByteInFile(dir + "/checkpoint-4/shard-0.ckpt", 0);
  auto recovered = Recover(dir);
  QP_CHECK_OK(recovered.status());
  EXPECT_EQ(recovered->checkpoint_seq, 3);
  EXPECT_EQ(recovered->corrupt_checkpoints_skipped, 1);
  World b;
  QP_CHECK_OK(b.engine->RestoreFromCheckpoint(*recovered, b.db.get()));
  ExpectEnginesIdentical(*a.engine, *b.engine);

  // Also drop seq 3's MANIFEST (a crash mid-checkpoint leaves exactly
  // this: shard files without the commit record). Recovery now reaches
  // back to seq 2 and still reproduces the same books.
  fs::remove(dir + "/checkpoint-3/MANIFEST");
  recovered = Recover(dir);
  QP_CHECK_OK(recovered.status());
  EXPECT_EQ(recovered->checkpoint_seq, 2);
  EXPECT_EQ(recovered->corrupt_checkpoints_skipped, 2);
  World c;
  QP_CHECK_OK(c.engine->RestoreFromCheckpoint(*recovered, c.db.get()));
  ExpectEnginesIdentical(*a.engine, *c.engine);
  ExpectSerializedStateIdentical(*a.engine, *c.engine, "fallback");
}

// --- (d) graceful degradation while warming ----------------------------

TEST(PersistRecoveryTest, WarmingShardsAnswerUnavailable) {
  World w;
  w.Append(0, 4);
  const market::SupportPartition& partition = w.engine->partition();
  ASSERT_GE(partition.num_shards, 2);
  std::vector<uint32_t> in_shard0 = {partition.shard_items[0][0]};
  std::vector<uint32_t> crossing = {partition.shard_items[0][0],
                                    partition.shard_items[1][0]};

  w.engine->BeginRestore();
  // Everything cold: per-item readiness refuses, empty bundles (which
  // touch no shard) still serve.
  EXPECT_EQ(w.engine->TryQuoteBundle(in_shard0).status().code(),
            StatusCode::kUnavailable);
  QP_CHECK_OK(w.engine->TryQuoteBundle({}).status());
  // A buyer whose probed bundle is empty conflicts with nothing and may
  // serve even while cold, so find one whose bundle actually touches a
  // shard: that purchase must refuse.
  bool purchase_refused = false;
  for (const Buyer& buyer : AllBuyers()) {
    auto query = db::ParseQuery(buyer.sql, *w.db);
    QP_CHECK_OK(query.status());
    PurchaseOutcome outcome = w.engine->Purchase(*query, 1e9);
    if (outcome.bundle.empty()) continue;
    EXPECT_EQ(outcome.status.code(), StatusCode::kUnavailable);
    EXPECT_FALSE(outcome.accepted);
    purchase_refused = true;
    break;
  }
  EXPECT_TRUE(purchase_refused) << "no buyer probed a non-empty bundle";

  // Warm shard 0: bundles inside it serve, crossing bundles still wait.
  w.engine->FinishShardRestore(0);
  EXPECT_TRUE(w.engine->shard_ready(0));
  QP_CHECK_OK(w.engine->TryQuoteBundle(in_shard0).status());
  EXPECT_EQ(w.engine->TryQuoteBundle(crossing).status().code(),
            StatusCode::kUnavailable);
  std::vector<Result<Quote>> batch =
      w.engine->TryQuoteBatch(std::vector<std::vector<uint32_t>>{
          in_shard0, crossing});
  QP_CHECK_OK(batch[0].status());
  EXPECT_EQ(batch[1].status().code(), StatusCode::kUnavailable);

  // All warm: behavior is exactly QuoteBundle again.
  for (int s = 1; s < w.engine->num_shards(); ++s) {
    w.engine->FinishShardRestore(s);
  }
  auto quote = w.engine->TryQuoteBundle(crossing);
  QP_CHECK_OK(quote.status());
  Quote direct = w.engine->QuoteBundle(crossing);
  EXPECT_EQ(quote->price, direct.price);
  EXPECT_GE(w.engine->reader_stats().unavailable, 3u);
}

}  // namespace
}  // namespace qp::serve::persist
