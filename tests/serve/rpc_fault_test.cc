// RPC resilience suite: retries, deadlines, graceful drain, and
// injected transport faults (tests/testing/fault_proxy.h). The
// contracts pinned here:
//  (a) kBackpressure replies drive AppendBuyersWithRetry's exponential
//      backoff, with attempts/retries/backoff observable in RetryStats;
//  (b) a recv deadline surfaces DeadlineExceeded and leaves the
//      connection (and any buffered partial frame) usable; a refused
//      connection surfaces Unavailable;
//  (c) Stop() drains: every writer op (append or seller delta) admitted
//      before shutdown gets a real reply (ok or kShuttingDown), never
//      silence;
//  (d) warming shards surface kUnavailable over the wire and
//      QuoteWithRetry rides the warm-up out;
//  (e) mangled streams — tiny delayed chunks, duplicated chunks, hard
//      RSTs — never take the server down, and MSG_NOSIGNAL keeps
//      peer resets from killing the process (the ASan/TSan jobs run
//      this file under label `fault`).
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/parser.h"
#include "market/support.h"
#include "market/support_partitioner.h"
#include "serve/rpc/client.h"
#include "serve/rpc/server.h"
#include "serve/sharded_engine.h"
#include "tests/testing/fault_proxy.h"
#include "tests/testing/test_db.h"

namespace qp::serve::rpc {
namespace {

struct Buyer {
  const char* sql;
  double valuation;
};

const std::vector<Buyer>& InitialBuyers() {
  static const std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 6.0},
      {"select max(Population) from Country", 8.0},
  };
  return buyers;
}

struct Harness {
  std::unique_ptr<db::Database> db;
  market::SupportSet support;
  std::unique_ptr<ShardedPricingEngine> engine;
  std::unique_ptr<RpcServer> server;

  explicit Harness(RpcServerOptions options = {}) {
    db = db::testing::MakeTestDatabase();
    Rng rng(7);
    auto generated =
        market::GenerateSupport(*db, {.size = 120, .max_retries = 32}, rng);
    QP_CHECK_OK(generated.status());
    support = *generated;
    std::vector<db::BoundQuery> queries;
    core::Valuations valuations;
    for (const Buyer& buyer : InitialBuyers()) {
      auto q = db::ParseQuery(buyer.sql, *db);
      QP_CHECK_OK(q.status());
      queries.push_back(*q);
      valuations.push_back(buyer.valuation);
    }
    market::SupportPartition partition = market::SupportPartitioner::FromQueries(
        db.get(), support, queries, {}, {.num_shards = 2});
    engine =
        std::make_unique<ShardedPricingEngine>(db.get(), std::move(partition));
    QP_CHECK_OK(engine->AppendBuyers(queries, valuations));
    server = std::make_unique<RpcServer>(engine.get(), db.get(), options);
    QP_CHECK_OK(server->Start());
  }
};

// --- (a) backpressure drives backoff ------------------------------------

TEST(RpcFaultTest, BackoffScheduleIsExponentialJitteredAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 4;
  policy.max_backoff_ms = 20;
  policy.backoff_multiplier = 2.0;
  policy.jitter = 0.5;
  Rng rng(17);
  double prev_base = 0.0;
  for (int retry = 0; retry < 6; ++retry) {
    double base = std::min(4.0 * (1 << retry), 20.0);
    double ms = RetryBackoffMs(policy, retry, rng);
    // Jitter scales into [base/2, base]; the cap holds throughout.
    EXPECT_GE(ms, base * 0.5 - 1e-9) << retry;
    EXPECT_LE(ms, base + 1e-9) << retry;
    EXPECT_GE(base, prev_base);
    prev_base = base;
  }
  // Deterministic given the seed.
  Rng r1(5), r2(5);
  EXPECT_EQ(RetryBackoffMs(policy, 3, r1), RetryBackoffMs(policy, 3, r2));
  // jitter = 0 is exactly the base schedule.
  policy.jitter = 0.0;
  Rng r3(5);
  EXPECT_EQ(RetryBackoffMs(policy, 0, r3), 4.0);
  EXPECT_EQ(RetryBackoffMs(policy, 10, r3), 20.0);
}

TEST(RpcFaultTest, BackpressureRepliesDriveRetryWithBackoff) {
  // Depth 0: every append is rejected, deterministically — the retry
  // loop must back off between attempts and report what it did.
  RpcServerOptions options;
  options.writer_queue_depth = 0;
  Harness h(options);
  RpcClient client;
  QP_CHECK_OK(client.Connect("127.0.0.1", h.server->port()));

  uint64_t version_before = h.engine->snapshot().version();
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 8;
  RpcReply reply;
  RetryStats stats;
  QP_CHECK_OK(client.AppendBuyersWithRetry(
      {{"select min(LifeExpectancy) from Country", 0.5}}, policy, &reply,
      &stats));
  // Still rejected after every attempt — and NOT applied.
  EXPECT_TRUE(reply.backpressure());
  EXPECT_EQ(stats.attempts, 4);
  EXPECT_EQ(stats.backpressure_retries, 3);
  EXPECT_GT(stats.backoff_ms, 0.0);
  EXPECT_EQ(h.engine->snapshot().version(), version_before);
  EXPECT_GE(h.server->stats().writer_rejected, 4u);

  // With room in the queue the same call lands on the first attempt.
  Harness ok;
  RpcClient client2;
  QP_CHECK_OK(client2.Connect("127.0.0.1", ok.server->port()));
  QP_CHECK_OK(client2.AppendBuyersWithRetry(
      {{"select min(LifeExpectancy) from Country", 0.5}}, policy, &reply,
      &stats));
  EXPECT_TRUE(reply.ok());
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.backpressure_retries, 0);
  EXPECT_EQ(stats.backoff_ms, 0.0);
}

TEST(RpcFaultTest, SellerDeltaBackpressureDrivesRetryWithBackoff) {
  // Same contract as appends: depth 0 rejects every delta, the retry
  // loop backs off, and the catalog never advances.
  RpcServerOptions options;
  options.writer_queue_depth = 0;
  Harness h(options);
  RpcClient client;
  QP_CHECK_OK(client.Connect("127.0.0.1", h.server->port()));

  uint64_t generation_before = h.engine->catalog().head_generation();
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 8;
  RpcReply reply;
  RetryStats stats;
  QP_CHECK_OK(
      client.ApplySellerDeltaWithRetry(h.support[0], policy, &reply, &stats));
  EXPECT_TRUE(reply.backpressure());
  EXPECT_EQ(stats.attempts, 4);
  EXPECT_EQ(stats.backpressure_retries, 3);
  EXPECT_GT(stats.backoff_ms, 0.0);
  EXPECT_EQ(h.engine->catalog().head_generation(), generation_before);
  EXPECT_GE(h.server->stats().writer_rejected, 4u);

  // With room in the queue the delta lands on the first attempt and the
  // reply carries the committed generation.
  Harness ok;
  RpcClient client2;
  QP_CHECK_OK(client2.Connect("127.0.0.1", ok.server->port()));
  QP_CHECK_OK(
      client2.ApplySellerDeltaWithRetry(ok.support[0], policy, &reply, &stats));
  EXPECT_TRUE(reply.ok()) << reply.message;
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.backpressure_retries, 0);
  EXPECT_EQ(reply.seller_delta.generation,
            ok.engine->catalog().head_generation());
  const market::CellDelta& applied = ok.support[0];
  EXPECT_EQ(ok.engine->catalog()
                .LogicalCell(applied.table, applied.row, applied.column)
                .Compare(applied.new_value),
            0);
}

// --- (b) deadlines and refused connections ------------------------------

TEST(RpcFaultTest, RecvDeadlineAndRefusedConnect) {
  // Refused: nothing listens on an ephemeral port we bound and closed.
  uint16_t dead_port;
  {
    Harness probe;
    dead_port = probe.server->port();
  }  // server fully stopped; the port is now refused
  RpcClient refused({.connect_timeout_ms = 2000});
  Status status = refused.Connect("127.0.0.1", dead_port);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(refused.connected());

  // Recv deadline: a server that is alive but has nothing to say for
  // this request id. Use a proxy to a live server with a huge chunk
  // delay, so the reply exists but cannot arrive inside the deadline.
  Harness h;
  qp::testing::FaultProxy proxy({.target_address = "127.0.0.1",
                                 .target_port = h.server->port(),
                                 .chunk_bytes = 1,
                                 .chunk_delay_us = 5000});
  QP_CHECK_OK(proxy.Start());
  RpcClient slow({.connect_timeout_ms = 2000, .recv_timeout_ms = 60});
  QP_CHECK_OK(slow.Connect("127.0.0.1", proxy.port()));
  RpcReply reply;
  Status quote = slow.Quote({}, &reply);
  EXPECT_EQ(quote.code(), StatusCode::kDeadlineExceeded);
  // The connection survives the deadline: the partial frame keeps
  // accumulating and a later Receive() collects the same reply.
  EXPECT_TRUE(slow.connected());
  for (int tries = 0; tries < 50 && !quote.ok(); ++tries) {
    quote = slow.Receive(&reply);
    if (quote.code() != StatusCode::kDeadlineExceeded) break;
  }
  QP_CHECK_OK(quote);
  EXPECT_TRUE(reply.ok());
  EXPECT_EQ(reply.quote.version, h.engine->snapshot().version());
  proxy.Stop();
}

// --- (c) graceful drain -------------------------------------------------

TEST(RpcFaultTest, StopDrainsAdmittedAppendsToRealReplies) {
  RpcServerOptions options;
  options.writer_queue_depth = 64;
  options.drain_timeout_ms = 5000;
  Harness h(options);
  RpcClient client;
  QP_CHECK_OK(client.Connect("127.0.0.1", h.server->port()));

  uint64_t version_before = h.engine->snapshot().version();
  constexpr int kAppends = 12;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kAppends; ++i) {
    auto id = client.SendAppendBuyers(
        {{"select count(*) from CountryLanguage", 0.25}});
    QP_CHECK_OK(id.status());
    ids.push_back(*id);
  }
  // Stop while (some of) those appends are still queued: the drain must
  // execute everything already admitted and flush every reply before
  // closing the connection.
  h.server->Stop();

  int ok_count = 0, shutdown_count = 0;
  for (int i = 0; i < kAppends; ++i) {
    RpcReply reply;
    QP_CHECK_OK(client.Receive(&reply));
    if (reply.ok()) {
      ++ok_count;
    } else {
      ASSERT_EQ(reply.code, WireCode::kShuttingDown) << reply.message;
      ++shutdown_count;
    }
  }
  // No silence: every admitted request was answered one way or the
  // other, and the engine advanced exactly once per ok reply.
  EXPECT_EQ(ok_count + shutdown_count, kAppends);
  EXPECT_EQ(h.engine->snapshot().version(),
            version_before + static_cast<uint64_t>(ok_count));
}

TEST(RpcFaultTest, StopDrainsAdmittedSellerDeltasToRealReplies) {
  RpcServerOptions options;
  options.writer_queue_depth = 64;
  options.drain_timeout_ms = 5000;
  Harness h(options);
  RpcClient client;
  QP_CHECK_OK(client.Connect("127.0.0.1", h.server->port()));

  uint64_t generation_before = h.engine->catalog().head_generation();
  constexpr int kDeltas = 8;
  for (int i = 0; i < kDeltas; ++i) {
    auto id = client.SendApplySellerDelta(h.support[static_cast<size_t>(i)]);
    QP_CHECK_OK(id.status());
  }
  // Stop with deltas still queued: each admitted one either executes
  // (the catalog generation counts it) or is failed with kShuttingDown
  // — never silence, never a half-applied delta.
  h.server->Stop();

  int ok_count = 0, shutdown_count = 0;
  for (int i = 0; i < kDeltas; ++i) {
    RpcReply reply;
    QP_CHECK_OK(client.Receive(&reply));
    if (reply.ok()) {
      ++ok_count;
    } else {
      ASSERT_EQ(reply.code, WireCode::kShuttingDown) << reply.message;
      ++shutdown_count;
    }
  }
  EXPECT_EQ(ok_count + shutdown_count, kDeltas);
  EXPECT_EQ(h.engine->catalog().head_generation(),
            generation_before + static_cast<uint64_t>(ok_count));
}

// --- (d) kUnavailable over the wire -------------------------------------

TEST(RpcFaultTest, WarmingShardsSurfaceUnavailableAndRetriesRideItOut) {
  Harness h;
  RpcClient client;
  QP_CHECK_OK(client.Connect("127.0.0.1", h.server->port()));
  const market::SupportPartition& partition = h.engine->partition();
  std::vector<uint32_t> bundle = {partition.shard_items[0][0],
                                  partition.shard_items[1][0]};

  h.engine->BeginRestore();
  RpcReply reply;
  QP_CHECK_OK(client.Quote(bundle, &reply));
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.code, WireCode::kUnavailable);
  QP_CHECK_OK(client.QuoteBatch({bundle, {}}, &reply));
  EXPECT_EQ(reply.code, WireCode::kUnavailable);
  // A buyer with an EMPTY conflict set serves even while cold (it touches
  // no shard), so probe in-process for one whose bundle is non-empty and
  // purchase that over the wire.
  const char* conflicting_sql = nullptr;
  for (const Buyer& buyer : InitialBuyers()) {
    auto q = db::ParseQuery(buyer.sql, *h.db);
    QP_CHECK_OK(q.status());
    if (!h.engine->Purchase(*q, 1e9).bundle.empty()) {
      conflicting_sql = buyer.sql;
      break;
    }
  }
  ASSERT_NE(conflicting_sql, nullptr) << "no buyer probes a non-empty bundle";
  QP_CHECK_OK(client.Purchase(conflicting_sql, 1e9, &reply));
  EXPECT_EQ(reply.code, WireCode::kUnavailable);

  // A warm-up finishing mid-retry: QuoteWithRetry backs off on the
  // kUnavailable replies and succeeds once the shards are ready.
  std::thread warmer([&h] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    for (int s = 0; s < h.engine->num_shards(); ++s) {
      h.engine->FinishShardRestore(s);
    }
  });
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 20;
  RetryStats stats;
  QP_CHECK_OK(client.QuoteWithRetry(bundle, policy, &reply, &stats));
  warmer.join();
  EXPECT_TRUE(reply.ok()) << reply.message;
  EXPECT_GE(stats.unavailable_retries, 1);
  EXPECT_GT(stats.backoff_ms, 0.0);
  EXPECT_EQ(reply.quote.price, h.engine->QuoteBundle(bundle).price);
  EXPECT_GE(h.engine->reader_stats().unavailable, 2u);
}

// --- (e) mangled streams ------------------------------------------------

TEST(RpcFaultTest, ChunkedAndDelayedStreamStaysExact) {
  Harness h;
  qp::testing::FaultProxy proxy({.target_address = "127.0.0.1",
                                 .target_port = h.server->port(),
                                 .chunk_bytes = 3,
                                 .chunk_delay_us = 200});
  QP_CHECK_OK(proxy.Start());
  RpcClient client({.connect_timeout_ms = 2000, .recv_timeout_ms = 5000});
  QP_CHECK_OK(client.Connect("127.0.0.1", proxy.port()));
  for (const std::vector<uint32_t>& bundle :
       std::vector<std::vector<uint32_t>>{{}, {0, 1}, {2}}) {
    RpcReply reply;
    QP_CHECK_OK(client.Quote(bundle, &reply));
    ASSERT_TRUE(reply.ok()) << reply.message;
    Quote local = h.engine->QuoteBundle(bundle);
    EXPECT_EQ(reply.quote.price, local.price);
    EXPECT_EQ(reply.quote.version, local.version);
  }
  EXPECT_GT(proxy.stats().bytes_forwarded, 0u);
  proxy.Stop();
}

TEST(RpcFaultTest, HardResetsReconnectAndNeverKillTheServer) {
  Harness h;
  // Every proxied connection is RST after the first forwarded byte: no
  // quote can complete, but each attempt must reconnect (fresh proxy
  // connection) rather than give up on the dead socket.
  qp::testing::FaultProxy proxy({.target_address = "127.0.0.1",
                                 .target_port = h.server->port(),
                                 .reset_after_bytes = 1});
  QP_CHECK_OK(proxy.Start());
  RpcClient client({.connect_timeout_ms = 2000, .recv_timeout_ms = 2000});
  QP_CHECK_OK(client.Connect("127.0.0.1", proxy.port()));
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  RpcReply reply;
  RetryStats stats;
  Status status = client.QuoteWithRetry({0}, policy, &reply, &stats);
  EXPECT_FALSE(status.ok());
  EXPECT_LE(stats.attempts, 3);
  EXPECT_GE(stats.reconnects, 1);
  EXPECT_GE(proxy.stats().resets_injected, 1u);
  proxy.Stop();

  // The server took RSTs mid-conversation and must still be fully up —
  // this is the MSG_NOSIGNAL + robustness contract end to end.
  RpcClient direct;
  QP_CHECK_OK(direct.Connect("127.0.0.1", h.server->port()));
  QP_CHECK_OK(direct.Quote({}, &reply));
  EXPECT_TRUE(reply.ok());
  EXPECT_EQ(reply.quote.version, h.engine->snapshot().version());
}

TEST(RpcFaultTest, MultiLoopServerSurvivesDelayedChunksAndHardResets) {
  // Same mangled-stream contracts with 4 reactor loops: the fault lands
  // on whichever loop owns the proxied connection, and no loop's damage
  // may leak into another loop's connections.
  Harness h({.num_loops = 4, .force_accept_handoff = true});

  // Tiny delayed chunks: frames reassemble across many partial reads on
  // the owning loop and the answers stay exact.
  qp::testing::FaultProxy slow({.target_address = "127.0.0.1",
                                .target_port = h.server->port(),
                                .chunk_bytes = 3,
                                .chunk_delay_us = 200});
  QP_CHECK_OK(slow.Start());
  RpcClient chunked({.connect_timeout_ms = 2000, .recv_timeout_ms = 5000});
  QP_CHECK_OK(chunked.Connect("127.0.0.1", slow.port()));
  for (const std::vector<uint32_t>& bundle :
       std::vector<std::vector<uint32_t>>{{}, {0, 1}, {2}}) {
    RpcReply reply;
    QP_CHECK_OK(chunked.Quote(bundle, &reply));
    ASSERT_TRUE(reply.ok()) << reply.message;
    EXPECT_EQ(reply.quote.price, h.engine->QuoteBundle(bundle).price);
  }
  slow.Stop();

  // Hard RSTs after the first byte, several connections' worth — spread
  // round-robin so multiple loops take one.
  qp::testing::FaultProxy reset({.target_address = "127.0.0.1",
                                 .target_port = h.server->port(),
                                 .reset_after_bytes = 1});
  QP_CHECK_OK(reset.Start());
  for (int i = 0; i < 4; ++i) {
    RpcClient victim({.connect_timeout_ms = 2000, .recv_timeout_ms = 500});
    QP_CHECK_OK(victim.Connect("127.0.0.1", reset.port()));
    RpcReply reply;
    EXPECT_FALSE(victim.Quote({0}, &reply).ok());
  }
  EXPECT_GE(reset.stats().resets_injected, 1u);
  reset.Stop();

  // Every loop is still serving exact quotes afterwards.
  for (int i = 0; i < 4; ++i) {
    RpcClient direct;
    QP_CHECK_OK(direct.Connect("127.0.0.1", h.server->port()));
    RpcReply reply;
    QP_CHECK_OK(direct.Quote({0, 1}, &reply));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.quote.price, h.engine->QuoteBundle({0, 1}).price);
  }
}

TEST(RpcFaultTest, DuplicatedChunksCorruptOneConnectionNotTheServer) {
  Harness h;
  qp::testing::FaultProxy proxy({.target_address = "127.0.0.1",
                                 .target_port = h.server->port(),
                                 .chunk_bytes = 7,
                                 .duplicate_chunks = true});
  QP_CHECK_OK(proxy.Start());
  RpcClient client({.connect_timeout_ms = 2000, .recv_timeout_ms = 300});
  QP_CHECK_OK(client.Connect("127.0.0.1", proxy.port()));
  RpcReply reply;
  Status status = client.Quote({0, 1}, &reply);
  // The duplicated bytes corrupt the stream somewhere: the call fails
  // (transport, deadline, or a bad-request reply to a garbled frame) —
  // anything but a silently wrong quote.
  if (status.ok()) {
    EXPECT_FALSE(reply.ok());
  }
  proxy.Stop();

  // Other clients are untouched.
  RpcClient direct;
  QP_CHECK_OK(direct.Connect("127.0.0.1", h.server->port()));
  QP_CHECK_OK(direct.Quote({0, 1}, &reply));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.quote.price, h.engine->QuoteBundle({0, 1}).price);
}

}  // namespace
}  // namespace qp::serve::rpc
