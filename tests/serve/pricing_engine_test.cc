// PricingEngine acceptance tests: (a) concurrent quoting against
// atomically swapped snapshots is safe while the writer republishes,
// (b) incremental repricing after a buyer append matches a cold
// RunAllAlgorithms on the grown instance within 1e-9, and (c) the
// incremental path solves strictly fewer LPs than full recompute.
#include "serve/pricing_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/algorithms.h"
#include "db/parser.h"
#include "market/support.h"
#include "tests/testing/test_db.h"

namespace qp::serve {
namespace {

struct Buyer {
  const char* sql;
  double valuation;
};

const std::vector<Buyer>& InitialBuyers() {
  static const std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 6.0},
      {"select max(Population) from Country", 8.0},
      {"select CountryCode, sum(Population) from City group by CountryCode",
       35.0},
  };
  return buyers;
}

// Late arrivals with valuations *below* every initial threshold, the
// regime where LPIP's retained book answers most candidates.
const std::vector<Buyer>& LateBuyers() {
  static const std::vector<Buyer> buyers = {
      {"select distinct Continent from Country", 1.5},
      {"select Name from City where Population > 10000000", 2.5},
      {"select min(LifeExpectancy) from Country", 0.75},
  };
  return buyers;
}

struct Market {
  std::unique_ptr<db::Database> db;
  market::SupportSet support;
  std::vector<db::BoundQuery> initial_queries, late_queries;
  core::Valuations initial_valuations, late_valuations;
};

Market MakeMarket(int support_size = 150) {
  Market m;
  m.db = db::testing::MakeTestDatabase();
  Rng rng(7);
  auto support = market::GenerateSupport(
      *m.db, {.size = support_size, .max_retries = 32}, rng);
  QP_CHECK_OK(support.status());
  m.support = *support;
  for (const Buyer& buyer : InitialBuyers()) {
    auto q = db::ParseQuery(buyer.sql, *m.db);
    QP_CHECK_OK(q.status());
    m.initial_queries.push_back(*q);
    m.initial_valuations.push_back(buyer.valuation);
  }
  for (const Buyer& buyer : LateBuyers()) {
    auto q = db::ParseQuery(buyer.sql, *m.db);
    QP_CHECK_OK(q.status());
    m.late_queries.push_back(*q);
    m.late_valuations.push_back(buyer.valuation);
  }
  return m;
}

// Replay-identical geometry: every LPIP threshold, solved standalone
// (see core/reprice.h).
EngineOptions MatchedOptions(bool incremental) {
  EngineOptions options;
  options.algorithms.lpip.max_candidates = 0;
  options.algorithms.lpip.chain_length = 1;
  options.incremental_reprice = incremental;
  return options;
}

TEST(PricingEngineTest, PublishesBooksAndServesQuotes) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));

  // The constructor publishes an (empty) generation so readers can quote
  // immediately.
  auto empty_book = engine.snapshot();
  ASSERT_NE(empty_book, nullptr);
  EXPECT_EQ(empty_book->version(), 1u);
  EXPECT_EQ(empty_book->num_edges(), 0);
  EXPECT_DOUBLE_EQ(engine.QuoteBundle({0, 1, 2}).price, 0.0);

  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));
  auto book = engine.snapshot();
  EXPECT_EQ(book->version(), 2u);
  EXPECT_EQ(book->num_edges(), 5);
  EXPECT_EQ(book->results().size(), 6u);
  EXPECT_GT(book->best().revenue, 0.0);
  EXPECT_NE(book->Find("LPIP"), nullptr);
  EXPECT_EQ(book->Find("nope"), nullptr);

  // A quote for a real conflict set carries the serving algorithm and the
  // published generation.
  Quote quote = engine.QuoteBundle(engine.hypergraph().edge(0));
  EXPECT_EQ(quote.version, 2u);
  EXPECT_EQ(quote.algorithm, book->best().algorithm);
  EXPECT_GE(quote.price, 0.0);

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.version, 2u);
  EXPECT_EQ(stats.num_edges, 5);
  EXPECT_GE(stats.quotes_served, 2u);
  EXPECT_GT(stats.total_lps_solved, 0);
}

TEST(PricingEngineTest, RepriceAfterAppendMatchesColdRunAllAlgorithms) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));
  QP_CHECK_OK(engine.AppendBuyers(m.late_queries, m.late_valuations));

  // Cold reference: RunAllAlgorithms from scratch on the grown instance
  // under the same options.
  core::AlgorithmOptions options = MatchedOptions(true).algorithms;
  std::vector<core::PricingResult> cold = core::RunAllAlgorithms(
      engine.hypergraph(), engine.valuations(), options);

  auto book = engine.snapshot();
  ASSERT_EQ(book->results().size(), cold.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].algorithm, book->results()[i].algorithm);
    EXPECT_NEAR(cold[i].revenue, book->results()[i].revenue,
                1e-9 * (1.0 + std::abs(cold[i].revenue)))
        << cold[i].algorithm;
  }
  // CIP replays the cold trajectory on bit-equal refined classes.
  EXPECT_DOUBLE_EQ(cold[3].revenue, book->results()[3].revenue);
}

TEST(PricingEngineTest, IncrementalRepriceSolvesStrictlyFewerLps) {
  Market m = MakeMarket();
  PricingEngine incremental(m.db.get(), m.support, MatchedOptions(true));
  PricingEngine full(m.db.get(), m.support, MatchedOptions(false));

  QP_CHECK_OK(
      incremental.AppendBuyers(m.initial_queries, m.initial_valuations));
  QP_CHECK_OK(full.AppendBuyers(m.initial_queries, m.initial_valuations));
  QP_CHECK_OK(incremental.AppendBuyers(m.late_queries, m.late_valuations));
  QP_CHECK_OK(full.AppendBuyers(m.late_queries, m.late_valuations));

  core::RepriceStats inc_stats = incremental.stats().last_reprice;
  core::RepriceStats full_stats = full.stats().last_reprice;
  EXPECT_LT(inc_stats.lps_solved, full_stats.lps_solved);
  EXPECT_GT(inc_stats.lpip_reused, 0);
  EXPECT_EQ(full_stats.lpip_reused, 0);

  // Same books regardless of the path taken.
  auto inc_book = incremental.snapshot();
  auto full_book = full.snapshot();
  for (size_t i = 0; i < inc_book->results().size(); ++i) {
    EXPECT_NEAR(inc_book->results()[i].revenue, full_book->results()[i].revenue,
                1e-9 * (1.0 + std::abs(full_book->results()[i].revenue)))
        << inc_book->results()[i].algorithm;
  }

  // The appends took the incidence merge path, not full rebuilds.
  EXPECT_GT(incremental.stats().incidence.merges, 0);
}

TEST(PricingEngineTest, PurchaseQuotesTheConflictSetAndRecordsSales) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));

  db::BoundQuery query = m.late_queries[0];
  PurchaseOutcome rich = engine.Purchase(query, 1e9);
  EXPECT_TRUE(rich.accepted);
  EXPECT_FALSE(rich.bundle.empty());
  EXPECT_GE(rich.quote.price, 0.0);

  PurchaseOutcome broke = engine.Purchase(query, -1.0);
  EXPECT_FALSE(broke.accepted);
  EXPECT_EQ(broke.bundle, rich.bundle);  // same query, same conflict set
  EXPECT_DOUBLE_EQ(broke.quote.price, rich.quote.price);

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.purchases, 2u);
  EXPECT_EQ(stats.purchases_accepted, 1u);
  EXPECT_DOUBLE_EQ(stats.sale_revenue, rich.quote.price);
}

TEST(PricingEngineTest, SnapshotsAreImmutableAcrossPublishes) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));

  auto pinned = engine.snapshot();
  std::vector<uint32_t> bundle = engine.hypergraph().edge(0);
  Quote before = pinned->QuoteBundle(bundle);

  QP_CHECK_OK(engine.AppendBuyers(m.late_queries, m.late_valuations));
  EXPECT_EQ(engine.snapshot()->version(), pinned->version() + 1);

  // The pinned generation still answers, unchanged — readers holding it
  // keep a consistent book while the writer moves on.
  Quote after = pinned->QuoteBundle(bundle);
  EXPECT_EQ(after.version, before.version);
  EXPECT_DOUBLE_EQ(after.price, before.price);
}

TEST(PricingEngineTest, ConcurrentQuotesAreRaceFreeWhileWriterPublishes) {
  Market m = MakeMarket(/*support_size=*/100);
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));

  // Bundles to hammer, captured before the readers start (the writer-side
  // hypergraph is not safe to read concurrently with appends).
  std::vector<std::vector<uint32_t>> bundles;
  for (int e = 0; e < engine.hypergraph().num_edges(); ++e) {
    bundles.push_back(engine.hypergraph().edge(e));
  }
  bundles.push_back({0, 1, 2, 3});
  bundles.push_back({});

  constexpr int kReaders = 4;
  constexpr int kIterations = 400;
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r]() {
      uint64_t last_version = 0;
      for (int i = 0; i < kIterations; ++i) {
        const std::vector<uint32_t>& bundle =
            bundles[static_cast<size_t>(r + i) % bundles.size()];
        auto book = engine.snapshot();
        Quote direct = engine.QuoteBundle(bundle);
        Quote via_book = book->QuoteBundle(bundle);
        // Versions only move forward, and a held snapshot is internally
        // consistent: same bundle, same price, every time.
        if (book->version() < last_version ||
            via_book.price != book->QuoteBundle(bundle).price ||
            !std::isfinite(direct.price) || direct.price < 0.0) {
          failed.store(true);
          return;
        }
        last_version = book->version();
      }
    });
  }

  // Writer: keep publishing generations while the readers quote.
  for (size_t b = 0; b < m.late_queries.size(); ++b) {
    QP_CHECK_OK(engine.AppendBuyers({m.late_queries[b]},
                                    {m.late_valuations[b]}));
  }
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  EngineStats stats = engine.stats();
  EXPECT_GE(stats.quotes_served,
            static_cast<uint64_t>(kReaders) * kIterations);
  EXPECT_EQ(stats.version, 2u + m.late_queries.size());
}

TEST(PricingEngineTest, QuoteBatchPinsOneGenerationAndCountsExactly) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));

  std::vector<std::vector<uint32_t>> bundles;
  for (int e = 0; e < engine.hypergraph().num_edges(); ++e) {
    bundles.push_back(engine.hypergraph().edge(e));
  }
  bundles.push_back({});

  uint64_t before = engine.stats().quotes_served;
  std::vector<Quote> batch = engine.QuoteBatch(bundles);
  ASSERT_EQ(batch.size(), bundles.size());
  // One snapshot pin: every quote carries the same generation and agrees
  // with the per-bundle path.
  for (size_t i = 0; i < bundles.size(); ++i) {
    EXPECT_EQ(batch[i].version, batch[0].version);
    EXPECT_DOUBLE_EQ(batch[i].price, engine.QuoteBundle(bundles[i]).price);
  }
  // The batch counts once per bundle (plus the QuoteBundle calls above).
  EXPECT_EQ(engine.stats().quotes_served,
            before + 2 * static_cast<uint64_t>(bundles.size()));
}

TEST(PricingEngineTest, ConcurrentPurchasesRaceAppendBuyersPublishes) {
  // Purchase is reader-side now: buyers purchase from many threads while
  // the writer keeps appending and publishing. Every outcome must be
  // internally consistent (bundle priced under some published
  // generation), the database must stay untouched, and the atomic sale
  // accounting must aggregate exactly.
  Market m = MakeMarket(/*support_size=*/100);
  auto reference_db = db::testing::MakeTestDatabase();
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));

  constexpr int kBuyers = 4;
  constexpr int kPurchases = 60;
  std::atomic<int> failures{0};
  std::atomic<int64_t> accepted{0};
  std::vector<double> spent(kBuyers, 0.0);
  std::vector<std::thread> buyers;
  buyers.reserve(kBuyers);
  for (int b = 0; b < kBuyers; ++b) {
    buyers.emplace_back([&, b]() {
      for (int i = 0; i < kPurchases; ++i) {
        const db::BoundQuery& query =
            m.late_queries[static_cast<size_t>(b + i) % m.late_queries.size()];
        double valuation = (b + i) % 3 == 0 ? 1e9 : 1e-9;
        PurchaseOutcome outcome = engine.Purchase(query, valuation);
        if (!std::isfinite(outcome.quote.price) || outcome.quote.price < 0.0 ||
            outcome.quote.version == 0) {
          failures.fetch_add(1);
          return;
        }
        if (outcome.accepted) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          spent[b] += outcome.quote.price;
        }
      }
    });
  }

  // Writer: publish a new generation per late buyer while purchases run.
  for (size_t i = 0; i < m.late_queries.size(); ++i) {
    QP_CHECK_OK(
        engine.AppendBuyers({m.late_queries[i]}, {m.late_valuations[i]}));
  }
  for (std::thread& t : buyers) t.join();
  EXPECT_EQ(failures.load(), 0);

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.purchases, static_cast<uint64_t>(kBuyers) * kPurchases);
  EXPECT_EQ(stats.purchases_accepted, static_cast<uint64_t>(accepted.load()));
  double spent_total = 0.0;
  for (double d : spent) spent_total += d;
  // Same multiset of prices, possibly summed in a different order.
  EXPECT_NEAR(stats.sale_revenue, spent_total,
              1e-9 * (1.0 + std::abs(spent_total)));

  // The shared database saw reader traffic only: still bit-identical to
  // an untouched copy.
  for (int t = 0; t < m.db->num_tables(); ++t) {
    for (int r = 0; r < m.db->table(t).num_rows(); ++r) {
      for (int c = 0; c < m.db->table(t).schema().num_columns(); ++c) {
        ASSERT_EQ(m.db->table(t).cell(r, c).Compare(
                      reference_db->table(t).cell(r, c)),
                  0);
      }
    }
  }
}

TEST(PricingEngineTest, PreparedQueryCacheHitsOnRepeatPurchases) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));
  // The append prepared each (distinct) initial query once.
  market::PreparedQueryCache::Stats seeded = engine.stats().prepared;
  EXPECT_EQ(seeded.misses, m.initial_queries.size());
  EXPECT_EQ(seeded.hits, 0u);

  // First purchase of a new query misses; repeats hit, and the cached
  // probes return the identical conflict set.
  PurchaseOutcome first = engine.Purchase(m.late_queries[0], 1e9);
  EXPECT_EQ(engine.stats().prepared.misses, seeded.misses + 1);
  PurchaseOutcome second = engine.Purchase(m.late_queries[0], 1e9);
  EXPECT_EQ(engine.stats().prepared.misses, seeded.misses + 1);
  EXPECT_EQ(engine.stats().prepared.hits, 1u);
  EXPECT_EQ(second.bundle, first.bundle);
  EXPECT_DOUBLE_EQ(second.quote.price, first.quote.price);

  // Re-appending a known query hits too (same SQL text).
  QP_CHECK_OK(engine.AppendBuyers({m.initial_queries[0]}, {4.0}));
  EXPECT_EQ(engine.stats().prepared.hits, 2u);

  // Explicit invalidation flushes: the next purchase re-prepares.
  engine.InvalidatePreparedQueries();
  EXPECT_EQ(engine.stats().prepared.invalidations, 1u);
  engine.Purchase(m.late_queries[0], 1e9);
  EXPECT_EQ(engine.stats().prepared.misses, seeded.misses + 2);
}

TEST(PricingEngineTest, ApplySellerDeltaEditsDataAndInvalidatesSelectively) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));
  engine.Purchase(m.late_queries[0], 1e9);
  uint64_t misses = engine.stats().prepared.misses;

  // The prepared cache holds every appended initial query plus the
  // purchased late query. Partition cells by who reads them.
  std::vector<const db::BoundQuery*> cached;
  for (const db::BoundQuery& q : m.initial_queries) cached.push_back(&q);
  cached.push_back(&m.late_queries[0]);
  auto readers_of = [&](int table, int column) {
    size_t n = 0;
    for (const db::BoundQuery* q : cached) {
      std::vector<std::pair<int, int>> cols = q->SensitiveColumns();
      if (std::find(cols.begin(), cols.end(), std::make_pair(table, column)) !=
          cols.end()) {
        ++n;
      }
    }
    return n;
  };
  std::vector<std::pair<int, int>> sensitive =
      m.late_queries[0].SensitiveColumns();
  ASSERT_FALSE(sensitive.empty());

  // A foreign database is rejected; nothing is invalidated.
  auto other = db::testing::MakeTestDatabase();
  market::CellDelta untouched;
  untouched.table = -1;
  for (const market::CellDelta& cell : m.support) {
    if (readers_of(cell.table, cell.column) == 0) {
      untouched = cell;
      break;
    }
  }
  ASSERT_NE(untouched.table, -1);  // some support cell no cached query reads
  market::CellDelta delta = untouched;
  EXPECT_FALSE(engine.ApplySellerDelta(*other, delta).ok());
  EXPECT_EQ(engine.stats().prepared.selective_invalidations, 0u);

  // An edit to a cell no cached query reads: a new catalog generation is
  // committed (the base cell keeps its old bytes until a fold — default
  // fold_every is far away), the selective scan runs, but every entry
  // survives — the next purchase still hits instead of re-probing (the
  // point of satellite invalidation). No full flush is counted.
  db::Value before = m.db->table(delta.table).cell(delta.row, delta.column);
  QP_CHECK_OK(engine.ApplySellerDelta(*m.db, delta));
  EXPECT_EQ(
      m.db->table(delta.table).cell(delta.row, delta.column).Compare(before),
      0);
  EXPECT_EQ(engine.catalog()
                .LogicalCell(delta.table, delta.row, delta.column)
                .Compare(delta.new_value),
            0);
  EXPECT_EQ(engine.stats().catalog.generations_published, 1u);
  EXPECT_EQ(engine.stats().catalog.deltas_pending, 1u);
  EXPECT_EQ(engine.stats().catalog.folds, 0u);
  EXPECT_EQ(engine.stats().prepared.selective_invalidations, 1u);
  EXPECT_EQ(engine.stats().prepared.selective_dropped, 0u);
  EXPECT_EQ(engine.stats().prepared.invalidations, 0u);
  engine.Purchase(m.late_queries[0], 1e9);
  EXPECT_EQ(engine.stats().prepared.misses, misses);

  // An edit to a column the late query IS sensitive to drops its entry
  // (and exactly the other cached entries reading that column): the next
  // purchase re-prepares against the edited logical contents.
  market::CellDelta hit;
  hit.table = sensitive[0].first;
  hit.column = sensitive[0].second;
  hit.row = 0;
  const db::Table& table = m.db->table(hit.table);
  hit.new_value = table.cell(table.num_rows() > 1 ? 1 : 0, hit.column);
  QP_CHECK_OK(engine.ApplySellerDelta(*m.db, hit));
  EXPECT_EQ(engine.stats().catalog.generations_published, 2u);
  EXPECT_EQ(engine.stats().prepared.selective_invalidations, 2u);
  EXPECT_EQ(engine.stats().prepared.selective_dropped,
            readers_of(hit.table, hit.column));
  engine.Purchase(m.late_queries[0], 1e9);
  EXPECT_EQ(engine.stats().prepared.misses, misses + 1);
  // Every Purchase sampled its probe's staleness (all 0 here: no commit
  // raced the probes).
  EXPECT_GE(engine.stats().catalog.staleness_samples, 3u);
  EXPECT_EQ(engine.stats().catalog.staleness_max, 0u);
}

TEST(PricingEngineTest, ApplySellerDeltaFoldsIntoBaseOnCadence) {
  Market m = MakeMarket();
  EngineOptions options = MatchedOptions(true);
  options.fold_every = 2;
  PricingEngine engine(m.db.get(), m.support, options);
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));

  // Two commits to distinct cells: the first stays pending in the
  // overlay, the second reaches fold_every and (no reader is pinned)
  // folds both into the base in place.
  const market::CellDelta& a = m.support[0];
  const market::CellDelta* b = nullptr;
  for (const market::CellDelta& cell : m.support) {
    if (cell.table != a.table || cell.row != a.row ||
        cell.column != a.column) {
      b = &cell;
      break;
    }
  }
  ASSERT_NE(b, nullptr);

  QP_CHECK_OK(engine.ApplySellerDelta(*m.db, a));
  EngineStats mid = engine.stats();
  EXPECT_EQ(mid.catalog.deltas_pending, 1u);
  EXPECT_EQ(mid.catalog.folds, 0u);

  QP_CHECK_OK(engine.ApplySellerDelta(*m.db, *b));
  EngineStats folded = engine.stats();
  EXPECT_EQ(folded.catalog.generations_published, 2u);
  EXPECT_EQ(folded.catalog.folds, 1u);
  EXPECT_EQ(folded.catalog.deltas_folded, 2u);
  EXPECT_EQ(folded.catalog.deltas_pending, 0u);
  // The fold wrote the committed values into the base tables...
  EXPECT_EQ(m.db->table(a.table).cell(a.row, a.column).Compare(a.new_value),
            0);
  EXPECT_EQ(
      m.db->table(b->table).cell(b->row, b->column).Compare(b->new_value), 0);
  // ...without changing any logical read or the generation number (a
  // fold commits nothing).
  EXPECT_EQ(engine.catalog()
                .LogicalCell(a.table, a.row, a.column)
                .Compare(a.new_value),
            0);
  EXPECT_EQ(engine.catalog().head_generation(), 2u);
}

TEST(PricingEngineTest, ParallelBuildMatchesSerialBooks) {
  // AppendBuyers with build parallelism: conflict sets are bit-identical
  // for every thread count, so the published books match the serial
  // engine's exactly (same edges -> same LPs -> same prices).
  Market m = MakeMarket();
  EngineOptions serial_options = MatchedOptions(true);
  EngineOptions parallel_options = serial_options;
  parallel_options.build.num_threads = 4;
  PricingEngine serial(m.db.get(), m.support, serial_options);
  PricingEngine parallel(m.db.get(), m.support, parallel_options);
  QP_CHECK_OK(serial.AppendBuyers(m.initial_queries, m.initial_valuations));
  QP_CHECK_OK(parallel.AppendBuyers(m.initial_queries, m.initial_valuations));
  QP_CHECK_OK(serial.AppendBuyers(m.late_queries, m.late_valuations));
  QP_CHECK_OK(parallel.AppendBuyers(m.late_queries, m.late_valuations));

  ASSERT_EQ(parallel.hypergraph().num_edges(), serial.hypergraph().num_edges());
  for (int e = 0; e < serial.hypergraph().num_edges(); ++e) {
    EXPECT_EQ(parallel.hypergraph().edge(e), serial.hypergraph().edge(e));
  }
  auto serial_book = serial.snapshot();
  auto parallel_book = parallel.snapshot();
  ASSERT_EQ(parallel_book->results().size(), serial_book->results().size());
  for (size_t i = 0; i < serial_book->results().size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel_book->results()[i].revenue,
                     serial_book->results()[i].revenue)
        << serial_book->results()[i].algorithm;
  }
  // Per-query stats merged in index order: identical accounting too.
  EngineStats ss = serial.stats(), ps = parallel.stats();
  EXPECT_EQ(ps.conflict.probes, ss.conflict.probes);
  EXPECT_EQ(ps.conflict.pruned, ss.conflict.pruned);
  EXPECT_EQ(ps.conflict.fallback_queries, ss.conflict.fallback_queries);
}

}  // namespace
}  // namespace qp::serve
