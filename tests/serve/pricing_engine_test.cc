// PricingEngine acceptance tests: (a) concurrent quoting against
// atomically swapped snapshots is safe while the writer republishes,
// (b) incremental repricing after a buyer append matches a cold
// RunAllAlgorithms on the grown instance within 1e-9, and (c) the
// incremental path solves strictly fewer LPs than full recompute.
#include "serve/pricing_engine.h"

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/algorithms.h"
#include "db/parser.h"
#include "market/support.h"
#include "tests/testing/test_db.h"

namespace qp::serve {
namespace {

struct Buyer {
  const char* sql;
  double valuation;
};

const std::vector<Buyer>& InitialBuyers() {
  static const std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 6.0},
      {"select max(Population) from Country", 8.0},
      {"select CountryCode, sum(Population) from City group by CountryCode",
       35.0},
  };
  return buyers;
}

// Late arrivals with valuations *below* every initial threshold, the
// regime where LPIP's retained book answers most candidates.
const std::vector<Buyer>& LateBuyers() {
  static const std::vector<Buyer> buyers = {
      {"select distinct Continent from Country", 1.5},
      {"select Name from City where Population > 10000000", 2.5},
      {"select min(LifeExpectancy) from Country", 0.75},
  };
  return buyers;
}

struct Market {
  std::unique_ptr<db::Database> db;
  market::SupportSet support;
  std::vector<db::BoundQuery> initial_queries, late_queries;
  core::Valuations initial_valuations, late_valuations;
};

Market MakeMarket(int support_size = 150) {
  Market m;
  m.db = db::testing::MakeTestDatabase();
  Rng rng(7);
  auto support = market::GenerateSupport(
      *m.db, {.size = support_size, .max_retries = 32}, rng);
  QP_CHECK_OK(support.status());
  m.support = *support;
  for (const Buyer& buyer : InitialBuyers()) {
    auto q = db::ParseQuery(buyer.sql, *m.db);
    QP_CHECK_OK(q.status());
    m.initial_queries.push_back(*q);
    m.initial_valuations.push_back(buyer.valuation);
  }
  for (const Buyer& buyer : LateBuyers()) {
    auto q = db::ParseQuery(buyer.sql, *m.db);
    QP_CHECK_OK(q.status());
    m.late_queries.push_back(*q);
    m.late_valuations.push_back(buyer.valuation);
  }
  return m;
}

// Replay-identical geometry: every LPIP threshold, solved standalone
// (see core/reprice.h).
EngineOptions MatchedOptions(bool incremental) {
  EngineOptions options;
  options.algorithms.lpip.max_candidates = 0;
  options.algorithms.lpip.chain_length = 1;
  options.incremental_reprice = incremental;
  return options;
}

TEST(PricingEngineTest, PublishesBooksAndServesQuotes) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));

  // The constructor publishes an (empty) generation so readers can quote
  // immediately.
  auto empty_book = engine.snapshot();
  ASSERT_NE(empty_book, nullptr);
  EXPECT_EQ(empty_book->version(), 1u);
  EXPECT_EQ(empty_book->num_edges(), 0);
  EXPECT_DOUBLE_EQ(engine.QuoteBundle({0, 1, 2}).price, 0.0);

  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));
  auto book = engine.snapshot();
  EXPECT_EQ(book->version(), 2u);
  EXPECT_EQ(book->num_edges(), 5);
  EXPECT_EQ(book->results().size(), 6u);
  EXPECT_GT(book->best().revenue, 0.0);
  EXPECT_NE(book->Find("LPIP"), nullptr);
  EXPECT_EQ(book->Find("nope"), nullptr);

  // A quote for a real conflict set carries the serving algorithm and the
  // published generation.
  Quote quote = engine.QuoteBundle(engine.hypergraph().edge(0));
  EXPECT_EQ(quote.version, 2u);
  EXPECT_EQ(quote.algorithm, book->best().algorithm);
  EXPECT_GE(quote.price, 0.0);

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.version, 2u);
  EXPECT_EQ(stats.num_edges, 5);
  EXPECT_GE(stats.quotes_served, 2u);
  EXPECT_GT(stats.total_lps_solved, 0);
}

TEST(PricingEngineTest, RepriceAfterAppendMatchesColdRunAllAlgorithms) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));
  QP_CHECK_OK(engine.AppendBuyers(m.late_queries, m.late_valuations));

  // Cold reference: RunAllAlgorithms from scratch on the grown instance
  // under the same options.
  core::AlgorithmOptions options = MatchedOptions(true).algorithms;
  std::vector<core::PricingResult> cold = core::RunAllAlgorithms(
      engine.hypergraph(), engine.valuations(), options);

  auto book = engine.snapshot();
  ASSERT_EQ(book->results().size(), cold.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].algorithm, book->results()[i].algorithm);
    EXPECT_NEAR(cold[i].revenue, book->results()[i].revenue,
                1e-9 * (1.0 + std::abs(cold[i].revenue)))
        << cold[i].algorithm;
  }
  // CIP replays the cold trajectory on bit-equal refined classes.
  EXPECT_DOUBLE_EQ(cold[3].revenue, book->results()[3].revenue);
}

TEST(PricingEngineTest, IncrementalRepriceSolvesStrictlyFewerLps) {
  Market m = MakeMarket();
  PricingEngine incremental(m.db.get(), m.support, MatchedOptions(true));
  PricingEngine full(m.db.get(), m.support, MatchedOptions(false));

  QP_CHECK_OK(
      incremental.AppendBuyers(m.initial_queries, m.initial_valuations));
  QP_CHECK_OK(full.AppendBuyers(m.initial_queries, m.initial_valuations));
  QP_CHECK_OK(incremental.AppendBuyers(m.late_queries, m.late_valuations));
  QP_CHECK_OK(full.AppendBuyers(m.late_queries, m.late_valuations));

  core::RepriceStats inc_stats = incremental.stats().last_reprice;
  core::RepriceStats full_stats = full.stats().last_reprice;
  EXPECT_LT(inc_stats.lps_solved, full_stats.lps_solved);
  EXPECT_GT(inc_stats.lpip_reused, 0);
  EXPECT_EQ(full_stats.lpip_reused, 0);

  // Same books regardless of the path taken.
  auto inc_book = incremental.snapshot();
  auto full_book = full.snapshot();
  for (size_t i = 0; i < inc_book->results().size(); ++i) {
    EXPECT_NEAR(inc_book->results()[i].revenue, full_book->results()[i].revenue,
                1e-9 * (1.0 + std::abs(full_book->results()[i].revenue)))
        << inc_book->results()[i].algorithm;
  }

  // The appends took the incidence merge path, not full rebuilds.
  EXPECT_GT(incremental.stats().incidence.merges, 0);
}

TEST(PricingEngineTest, PurchaseQuotesTheConflictSetAndRecordsSales) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));

  db::BoundQuery query = m.late_queries[0];
  PurchaseOutcome rich = engine.Purchase(query, 1e9);
  EXPECT_TRUE(rich.accepted);
  EXPECT_FALSE(rich.bundle.empty());
  EXPECT_GE(rich.quote.price, 0.0);

  PurchaseOutcome broke = engine.Purchase(query, -1.0);
  EXPECT_FALSE(broke.accepted);
  EXPECT_EQ(broke.bundle, rich.bundle);  // same query, same conflict set
  EXPECT_DOUBLE_EQ(broke.quote.price, rich.quote.price);

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.purchases, 2u);
  EXPECT_EQ(stats.purchases_accepted, 1u);
  EXPECT_DOUBLE_EQ(stats.sale_revenue, rich.quote.price);
}

TEST(PricingEngineTest, SnapshotsAreImmutableAcrossPublishes) {
  Market m = MakeMarket();
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));

  auto pinned = engine.snapshot();
  std::vector<uint32_t> bundle = engine.hypergraph().edge(0);
  Quote before = pinned->QuoteBundle(bundle);

  QP_CHECK_OK(engine.AppendBuyers(m.late_queries, m.late_valuations));
  EXPECT_EQ(engine.snapshot()->version(), pinned->version() + 1);

  // The pinned generation still answers, unchanged — readers holding it
  // keep a consistent book while the writer moves on.
  Quote after = pinned->QuoteBundle(bundle);
  EXPECT_EQ(after.version, before.version);
  EXPECT_DOUBLE_EQ(after.price, before.price);
}

TEST(PricingEngineTest, ConcurrentQuotesAreRaceFreeWhileWriterPublishes) {
  Market m = MakeMarket(/*support_size=*/100);
  PricingEngine engine(m.db.get(), m.support, MatchedOptions(true));
  QP_CHECK_OK(engine.AppendBuyers(m.initial_queries, m.initial_valuations));

  // Bundles to hammer, captured before the readers start (the writer-side
  // hypergraph is not safe to read concurrently with appends).
  std::vector<std::vector<uint32_t>> bundles;
  for (int e = 0; e < engine.hypergraph().num_edges(); ++e) {
    bundles.push_back(engine.hypergraph().edge(e));
  }
  bundles.push_back({0, 1, 2, 3});
  bundles.push_back({});

  constexpr int kReaders = 4;
  constexpr int kIterations = 400;
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r]() {
      uint64_t last_version = 0;
      for (int i = 0; i < kIterations; ++i) {
        const std::vector<uint32_t>& bundle =
            bundles[static_cast<size_t>(r + i) % bundles.size()];
        auto book = engine.snapshot();
        Quote direct = engine.QuoteBundle(bundle);
        Quote via_book = book->QuoteBundle(bundle);
        // Versions only move forward, and a held snapshot is internally
        // consistent: same bundle, same price, every time.
        if (book->version() < last_version ||
            via_book.price != book->QuoteBundle(bundle).price ||
            !std::isfinite(direct.price) || direct.price < 0.0) {
          failed.store(true);
          return;
        }
        last_version = book->version();
      }
    });
  }

  // Writer: keep publishing generations while the readers quote.
  for (size_t b = 0; b < m.late_queries.size(); ++b) {
    QP_CHECK_OK(engine.AppendBuyers({m.late_queries[b]},
                                    {m.late_valuations[b]}));
  }
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  EngineStats stats = engine.stats();
  EXPECT_GE(stats.quotes_served,
            static_cast<uint64_t>(kReaders) * kIterations);
  EXPECT_EQ(stats.version, 2u + m.late_queries.size());
}

}  // namespace
}  // namespace qp::serve
