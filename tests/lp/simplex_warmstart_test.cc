// Warm-start correctness: Simplex::ResolveFrom(basis) must agree with a
// cold solve of the same (edited) model — same optimal objective, valid
// duals — across the edit patterns the pricing pipeline performs:
// RHS-only changes (CIP's capacity grid, the dual-simplex path),
// objective-only changes, appended constraints/variables (growing
// threshold families) and truncation (the shrinking-F sweep), plus
// adversarial garbage bases that must fall back gracefully.
#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/lp_model.h"
#include "lp/simplex.h"

namespace qp::lp {
namespace {

// Random bounded-feasible LP (all variables boxed, constraints anchored on
// an interior point so the instance is feasible by construction).
LpModel MakeRandomBoundedLp(Rng& rng, int num_vars, int num_cons) {
  LpModel model(ObjectiveSense::kMaximize);
  std::vector<double> point(num_vars);
  for (int j = 0; j < num_vars; ++j) {
    double lo = rng.UniformReal(-4, 1);
    double hi = lo + rng.UniformReal(0.5, 7);
    model.AddVariable(lo, hi, rng.UniformReal(-3, 3));
    point[j] = rng.UniformReal(lo, hi);
  }
  for (int i = 0; i < num_cons; ++i) {
    std::vector<std::pair<int, double>> terms;
    double lhs = 0.0;
    for (int j = 0; j < num_vars; ++j) {
      if (rng.NextDouble() < 0.6) {
        double coeff = rng.UniformReal(-2, 2);
        if (coeff != 0.0) {
          terms.emplace_back(j, coeff);
          lhs += coeff * point[j];
        }
      }
    }
    double roll = rng.NextDouble();
    ConstraintSense sense = roll < 0.6   ? ConstraintSense::kLe
                            : roll < 0.9 ? ConstraintSense::kGe
                                         : ConstraintSense::kEq;
    double rhs = sense == ConstraintSense::kLe   ? lhs + rng.UniformReal(0, 3)
                 : sense == ConstraintSense::kGe ? lhs - rng.UniformReal(0, 3)
                                                 : lhs;
    model.AddConstraint(sense, rhs, std::move(terms));
  }
  return model;
}

void ExpectSameOptimum(const LpModel& model, const LpSolution& warm,
                       const char* what) {
  LpSolution cold = SolveLp(model);
  ASSERT_EQ(cold.status, warm.status) << what;
  if (!cold.ok()) return;
  double scale = 1.0 + std::abs(cold.objective);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6 * scale) << what;
  // Both solutions must be feasible; duals must certify optimality via
  // strong duality on their own solve (objective equality above pins the
  // optimum, b'y + bound terms is checked by simplex_property_test).
  EXPECT_LE(model.MaxInfeasibility(warm.primal), 1e-5) << what;
  ASSERT_EQ(warm.dual.size(), cold.dual.size()) << what;
}

TEST(SimplexWarmStartTest, RhsOnlyChangesMatchColdSolves) {
  Rng rng(2024);
  int solved = 0;
  for (int trial = 0; trial < 60; ++trial) {
    int nv = static_cast<int>(rng.UniformInt(2, 8));
    int nc = static_cast<int>(rng.UniformInt(1, 10));
    LpModel model = MakeRandomBoundedLp(rng, nv, nc);
    Simplex solver(model);
    LpSolution base = solver.Solve();
    if (!base.ok()) continue;
    ++solved;
    // Perturb every RHS (the CIP capacity-grid pattern: dual simplex).
    for (int i = 0; i < nc; ++i) {
      model.SetRhs(i, model.constraint(i).rhs + rng.UniformReal(-1.5, 1.5));
    }
    LpSolution warm = solver.ResolveFrom(base.basis);
    LpSolution cold = SolveLp(model);
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    if (cold.ok()) {
      EXPECT_NEAR(warm.objective, cold.objective,
                  1e-6 * (1.0 + std::abs(cold.objective)))
          << "trial " << trial;
      EXPECT_LE(model.MaxInfeasibility(warm.primal), 1e-5);
    }
  }
  EXPECT_GT(solved, 20);  // the generator must actually exercise the path
}

TEST(SimplexWarmStartTest, ObjectiveOnlyChangesMatchColdSolves) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    int nv = static_cast<int>(rng.UniformInt(2, 8));
    int nc = static_cast<int>(rng.UniformInt(1, 8));
    LpModel model = MakeRandomBoundedLp(rng, nv, nc);
    Simplex solver(model);
    LpSolution base = solver.Solve();
    if (!base.ok()) continue;
    for (int j = 0; j < nv; ++j) {
      model.SetObjectiveCoefficient(j, rng.UniformReal(-3, 3));
    }
    LpSolution warm = solver.ResolveFrom(base.basis);
    ExpectSameOptimum(model, warm, "objective-only");
  }
}

TEST(SimplexWarmStartTest, AppendedConstraintsAndVariablesMatchColdSolves) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    int nv = static_cast<int>(rng.UniformInt(2, 6));
    int nc = static_cast<int>(rng.UniformInt(1, 6));
    LpModel model = MakeRandomBoundedLp(rng, nv, nc);
    Simplex solver(model);
    LpSolution base = solver.Solve();
    if (!base.ok()) continue;
    // Append a variable and a couple of constraints over all variables —
    // the growing-threshold-family pattern (localized phase-1 repair).
    int extra = model.AddVariable(0.0, 4.0, rng.UniformReal(0, 2));
    for (int k = 0; k < 2; ++k) {
      std::vector<std::pair<int, double>> terms;
      for (int j = 0; j <= extra; ++j) {
        if (rng.NextDouble() < 0.7) terms.emplace_back(j, rng.UniformReal(0, 2));
      }
      model.AddConstraint(ConstraintSense::kLe, rng.UniformReal(0.5, 6),
                          std::move(terms));
    }
    LpSolution warm = solver.ResolveFrom(base.basis);
    ExpectSameOptimum(model, warm, "appended");
  }
}

TEST(SimplexWarmStartTest, TruncatedModelsMatchColdSolves) {
  Rng rng(1234);
  for (int trial = 0; trial < 40; ++trial) {
    int nv = static_cast<int>(rng.UniformInt(3, 8));
    int nc = static_cast<int>(rng.UniformInt(3, 10));
    LpModel model = MakeRandomBoundedLp(rng, nv, nc);
    Simplex solver(model);
    LpSolution base = solver.Solve();
    if (!base.ok()) continue;
    // Drop trailing constraints (the shrinking-F sweep; variables kept so
    // surviving rows stay valid).
    int keep = static_cast<int>(rng.UniformInt(1, nc));
    model.TruncateTo(nv, keep);
    LpSolution warm = solver.ResolveFrom(base.basis);
    ExpectSameOptimum(model, warm, "truncated");
  }
}

TEST(SimplexWarmStartTest, InfeasibleAfterRhsChangeIsDetected) {
  // x <= 5 with x >= 0; tighten to x <= -1: infeasible.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0, kInf, 1.0);
  model.AddConstraint(ConstraintSense::kLe, 5, {{x, 1.0}});
  Simplex solver(model);
  LpSolution base = solver.Solve();
  ASSERT_TRUE(base.ok());
  model.SetRhs(0, -1.0);
  EXPECT_EQ(solver.ResolveFrom(base.basis).status, SolveStatus::kInfeasible);
}

TEST(SimplexWarmStartTest, GarbageBasisStillSolvesCorrectly) {
  Rng rng(555);
  for (int trial = 0; trial < 30; ++trial) {
    int nv = static_cast<int>(rng.UniformInt(2, 7));
    int nc = static_cast<int>(rng.UniformInt(1, 8));
    LpModel model = MakeRandomBoundedLp(rng, nv, nc);
    // Random (likely inconsistent) basis snapshot.
    Basis garbage;
    for (int j = 0; j < nv; ++j) {
      garbage.variables.push_back(
          static_cast<BasisStatus>(rng.UniformInt(0, 3)));
    }
    for (int i = 0; i < nc; ++i) {
      garbage.slacks.push_back(static_cast<BasisStatus>(rng.UniformInt(0, 3)));
      // Random row assignment: structural, slack, or unknown.
      double roll = rng.NextDouble();
      garbage.basic_of_row.push_back(
          roll < 0.4   ? static_cast<int32_t>(rng.UniformInt(0, nv - 1))
          : roll < 0.8 ? Basis::EncodeSlack(static_cast<int>(
                             rng.UniformInt(0, nc - 1)))
                       : Basis::kNoBasic);
    }
    Simplex solver(model);
    LpSolution warm = solver.ResolveFrom(garbage);
    ExpectSameOptimum(model, warm, "garbage basis");
  }
}

TEST(SimplexWarmStartTest, EmptyBasisFallsBackToColdSolve) {
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0, 3, 1.0);
  model.AddConstraint(ConstraintSense::kLe, 2, {{x, 1.0}});
  Simplex solver(model);
  LpSolution warm = solver.ResolveFrom(Basis{});
  ASSERT_TRUE(warm.ok());
  EXPECT_NEAR(warm.objective, 2.0, 1e-9);
}

TEST(SimplexWarmStartTest, OptimalSolutionsExportReusableBases) {
  // A second ResolveFrom with an unchanged model must terminate at the
  // same optimum immediately (no pivots beyond the reinstall).
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    LpModel model = MakeRandomBoundedLp(rng, 5, 6);
    Simplex solver(model);
    LpSolution base = solver.Solve();
    if (!base.ok()) continue;
    ASSERT_EQ(base.basis.variables.size(), 5u);
    ASSERT_EQ(base.basis.slacks.size(), 6u);
    ASSERT_EQ(base.basis.basic_of_row.size(), 6u);
    LpSolution again = solver.ResolveFrom(base.basis);
    ASSERT_TRUE(again.ok());
    EXPECT_NEAR(again.objective, base.objective,
                1e-9 * (1.0 + std::abs(base.objective)));
  }
}

}  // namespace
}  // namespace qp::lp
