// Property-based tests for the simplex solver.
//
// Two oracles:
//  1. Certificate checking on random bounded LPs: optimal solutions must be
//     primal feasible and satisfy strong duality / complementary slackness
//     (duality closes the loop without needing a reference solver).
//  2. Exact vertex enumeration on random 2-variable LPs.
#include <cmath>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/lp_model.h"
#include "lp/simplex.h"

namespace qp::lp {
namespace {

struct RandomLp {
  LpModel model;
  bool all_bounded = true;
  std::vector<double> feasible_point;  // empty if unknown
};

RandomLp MakeRandomLp(Rng& rng, int num_vars, int num_cons,
                      bool ensure_feasible) {
  RandomLp out;
  out.model = LpModel(ObjectiveSense::kMaximize);
  std::vector<double> point(num_vars);
  for (int j = 0; j < num_vars; ++j) {
    double lo = rng.UniformReal(-5, 1);
    double hi = lo + rng.UniformReal(0, 8);
    double obj = rng.UniformReal(-3, 3);
    out.model.AddVariable(lo, hi, obj);
    point[j] = rng.UniformReal(lo, hi);
  }
  for (int i = 0; i < num_cons; ++i) {
    std::vector<std::pair<int, double>> terms;
    double lhs_at_point = 0.0;
    for (int j = 0; j < num_vars; ++j) {
      if (rng.NextDouble() < 0.6) {
        double coeff = rng.UniformReal(-2, 2);
        if (coeff != 0.0) {
          terms.emplace_back(j, coeff);
          lhs_at_point += coeff * point[j];
        }
      }
    }
    double roll = rng.NextDouble();
    ConstraintSense sense = roll < 0.5   ? ConstraintSense::kLe
                            : roll < 0.9 ? ConstraintSense::kGe
                                         : ConstraintSense::kEq;
    double rhs;
    if (ensure_feasible) {
      // Choose rhs so `point` satisfies the constraint.
      switch (sense) {
        case ConstraintSense::kLe:
          rhs = lhs_at_point + rng.UniformReal(0, 3);
          break;
        case ConstraintSense::kGe:
          rhs = lhs_at_point - rng.UniformReal(0, 3);
          break;
        case ConstraintSense::kEq:
          rhs = lhs_at_point;
          break;
        default:
          rhs = lhs_at_point;
      }
    } else {
      rhs = rng.UniformReal(-5, 5);
    }
    out.model.AddConstraint(sense, rhs, std::move(terms));
  }
  if (ensure_feasible) out.feasible_point = point;
  return out;
}

// Strong duality for: max c'x, Ax {<=,>=,=} b, l <= x <= u.
// Given optimal y (user sense), reduced costs rc = c - A'y split into bound
// multipliers; dual objective must equal the primal objective.
void CheckOptimalityCertificate(const LpModel& m, const LpSolution& s) {
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LE(m.MaxInfeasibility(s.primal), 1e-5);

  int nv = m.num_variables();
  int nc = m.num_constraints();
  std::vector<double> aty(nv, 0.0);
  for (int i = 0; i < nc; ++i) {
    for (const auto& [var, coeff] : m.constraint(i).terms) {
      aty[var] += coeff * s.dual[i];
    }
  }
  double dual_obj = 0.0;
  for (int i = 0; i < nc; ++i) {
    const Constraint& c = m.constraint(i);
    dual_obj += s.dual[i] * c.rhs;
    // Dual sign (max problem): Le -> y >= 0, Ge -> y <= 0.
    if (c.sense == ConstraintSense::kLe) {
      EXPECT_GT(s.dual[i], -1e-6);
    }
    if (c.sense == ConstraintSense::kGe) {
      EXPECT_LT(s.dual[i], 1e-6);
    }
    // Complementary slackness: nonzero dual => binding row.
    double lhs = 0.0;
    for (const auto& [var, coeff] : c.terms) lhs += coeff * s.primal[var];
    if (std::abs(s.dual[i]) > 1e-6 && c.sense != ConstraintSense::kEq) {
      EXPECT_NEAR(lhs, c.rhs, 1e-5) << "dual " << s.dual[i] << " row " << i;
    }
  }
  for (int j = 0; j < nv; ++j) {
    const Variable& v = m.variable(j);
    double rc = v.objective - aty[j];
    if (rc > 1e-7) {
      // Positive reduced cost: variable must sit at its upper bound.
      ASSERT_TRUE(std::isfinite(v.upper));
      EXPECT_NEAR(s.primal[j], v.upper, 1e-5) << "var " << j << " rc " << rc;
      dual_obj += rc * v.upper;
    } else if (rc < -1e-7) {
      ASSERT_TRUE(std::isfinite(v.lower));
      EXPECT_NEAR(s.primal[j], v.lower, 1e-5) << "var " << j << " rc " << rc;
      dual_obj += rc * v.lower;
    }
  }
  EXPECT_NEAR(dual_obj, s.objective, 1e-4 * (1.0 + std::abs(s.objective)));
}

class RandomBoundedLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomBoundedLpTest, OptimalSolutionsCarryValidCertificates) {
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    int nv = static_cast<int>(rng.UniformInt(1, 8));
    int nc = static_cast<int>(rng.UniformInt(1, 10));
    RandomLp lp = MakeRandomLp(rng, nv, nc, /*ensure_feasible=*/true);
    LpSolution s = SolveLp(lp.model);
    // Feasible by construction and all variables bounded: must be optimal.
    ASSERT_EQ(s.status, SolveStatus::kOptimal)
        << "trial " << trial << " status " << SolveStatusToString(s.status);
    CheckOptimalityCertificate(lp.model, s);
    // Optimal must be at least as good as the known feasible point.
    EXPECT_GE(s.objective,
              lp.model.ObjectiveValue(lp.feasible_point) - 1e-5);
  }
}

TEST_P(RandomBoundedLpTest, ArbitraryRhsNeverMisclassified) {
  Rng rng(9000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    int nv = static_cast<int>(rng.UniformInt(1, 6));
    int nc = static_cast<int>(rng.UniformInt(1, 8));
    RandomLp lp = MakeRandomLp(rng, nv, nc, /*ensure_feasible=*/false);
    LpSolution s = SolveLp(lp.model);
    // All variables have finite bounds: unbounded is impossible.
    ASSERT_NE(s.status, SolveStatus::kUnbounded);
    if (s.status == SolveStatus::kOptimal) {
      CheckOptimalityCertificate(lp.model, s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBoundedLpTest, ::testing::Range(0, 8));

// --- 2D exact reference ------------------------------------------------------

struct Line {
  // a*x + b*y <= c after normalization (Eq handled as two lines).
  double a, b, c;
};

// Enumerates all intersection points of constraint/bound boundary lines and
// returns the best feasible objective, or nullopt if nothing feasible found.
std::optional<double> BruteForce2D(const LpModel& m) {
  std::vector<Line> lines;
  for (int i = 0; i < m.num_constraints(); ++i) {
    const Constraint& c = m.constraint(i);
    double a = 0, b = 0;
    for (const auto& [var, coeff] : c.terms) {
      if (var == 0) a = coeff;
      if (var == 1) b = coeff;
    }
    if (c.sense == ConstraintSense::kLe || c.sense == ConstraintSense::kEq) {
      lines.push_back({a, b, c.rhs});
    }
    if (c.sense == ConstraintSense::kGe || c.sense == ConstraintSense::kEq) {
      lines.push_back({-a, -b, -c.rhs});
    }
  }
  for (int j = 0; j < 2; ++j) {
    const Variable& v = m.variable(j);
    Line lo{j == 0 ? -1.0 : 0.0, j == 1 ? -1.0 : 0.0, -v.lower};
    Line hi{j == 0 ? 1.0 : 0.0, j == 1 ? 1.0 : 0.0, v.upper};
    lines.push_back(lo);
    lines.push_back(hi);
  }
  auto feasible = [&](double x, double y) {
    for (const Line& l : lines) {
      if (l.a * x + l.b * y > l.c + 1e-7) return false;
    }
    return true;
  };
  std::optional<double> best;
  auto consider = [&](double x, double y) {
    if (!std::isfinite(x) || !std::isfinite(y)) return;
    if (!feasible(x, y)) return;
    double obj = m.variable(0).objective * x + m.variable(1).objective * y;
    if (!best || obj > *best) best = obj;
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    for (size_t j = i + 1; j < lines.size(); ++j) {
      double det = lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (std::abs(det) < 1e-9) continue;
      double x = (lines[i].c * lines[j].b - lines[j].c * lines[i].b) / det;
      double y = (lines[i].a * lines[j].c - lines[j].a * lines[i].c) / det;
      consider(x, y);
    }
  }
  return best;
}

class TwoVarReferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoVarReferenceTest, MatchesVertexEnumeration) {
  Rng rng(4000 + GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    int nc = static_cast<int>(rng.UniformInt(1, 6));
    RandomLp lp = MakeRandomLp(rng, 2, nc, /*ensure_feasible=*/true);
    LpSolution s = SolveLp(lp.model);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    std::optional<double> reference = BruteForce2D(lp.model);
    ASSERT_TRUE(reference.has_value());
    // A max over vertices equals the LP optimum for bounded feasible LPs.
    EXPECT_NEAR(s.objective, *reference, 1e-4 * (1.0 + std::abs(*reference)))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoVarReferenceTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace qp::lp
