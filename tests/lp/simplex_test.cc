#include "lp/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "lp/lp_model.h"
#include "tests/testing/tolerance.h"

namespace qp::lp {
namespace {

using qp::testing::kTol;

TEST(SimplexTest, TextbookMax2D) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; x,y >= 0.
  // Optimum: x=2, y=6, obj=36 (classic Dantzig example).
  LpModel m(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, kInf, 3.0);
  int y = m.AddVariable(0, kInf, 5.0);
  m.AddConstraint(ConstraintSense::kLe, 4, {{x, 1.0}});
  m.AddConstraint(ConstraintSense::kLe, 12, {{y, 2.0}});
  m.AddConstraint(ConstraintSense::kLe, 18, {{x, 3.0}, {y, 2.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, kTol);
  EXPECT_NEAR(s.primal[x], 2.0, kTol);
  EXPECT_NEAR(s.primal[y], 6.0, kTol);
}

TEST(SimplexTest, MinimizationWithGeConstraints) {
  // min 2x + 3y  s.t. x + y >= 4, x + 3y >= 6; x,y >= 0.
  // Vertices: (4,0) -> 8; (3,1) -> 9; (0,4)... optimum is (4,0)? Check (4,0):
  // x+3y = 4 < 6 infeasible. Feasible vertices: (6,0) obj 12, (3,1) obj 9,
  // (0,4) obj 12. Optimum (3,1) with obj 9.
  LpModel m(ObjectiveSense::kMinimize);
  int x = m.AddVariable(0, kInf, 2.0);
  int y = m.AddVariable(0, kInf, 3.0);
  m.AddConstraint(ConstraintSense::kGe, 4, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintSense::kGe, 6, {{x, 1.0}, {y, 3.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, kTol);
  EXPECT_NEAR(s.primal[x], 3.0, kTol);
  EXPECT_NEAR(s.primal[y], 1.0, kTol);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x + y  s.t. x + y = 5, x <= 3. Optimum 5 with x <= 3.
  LpModel m(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, 3, 1.0);
  int y = m.AddVariable(0, kInf, 1.0);
  m.AddConstraint(ConstraintSense::kEq, 5, {{x, 1.0}, {y, 1.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, kTol);
  EXPECT_NEAR(s.primal[x] + s.primal[y], 5.0, kTol);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= 1 and x >= 3.
  LpModel m(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, kInf, 1.0);
  m.AddConstraint(ConstraintSense::kLe, 1, {{x, 1.0}});
  m.AddConstraint(ConstraintSense::kGe, 3, {{x, 1.0}});
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleEqualitySystem) {
  // x + y = 1, x + y = 2.
  LpModel m(ObjectiveSense::kMinimize);
  int x = m.AddVariable(0, kInf, 1.0);
  int y = m.AddVariable(0, kInf, 1.0);
  m.AddConstraint(ConstraintSense::kEq, 1, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintSense::kEq, 2, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // max x + y  s.t. x - y <= 1; x,y >= 0 — ray (t, t).
  LpModel m(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, kInf, 1.0);
  int y = m.AddVariable(0, kInf, 1.0);
  m.AddConstraint(ConstraintSense::kLe, 1, {{x, 1.0}, {y, -1.0}});
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, BoundedVariablesOnlyNoConstraints) {
  LpModel m(ObjectiveSense::kMaximize);
  int x = m.AddVariable(-2, 5, 3.0);
  int y = m.AddVariable(-4, 1, -2.0);
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.primal[x], 5.0, kTol);
  EXPECT_NEAR(s.primal[y], -4.0, kTol);
  EXPECT_NEAR(s.objective, 23.0, kTol);
}

TEST(SimplexTest, UnboundedWithoutConstraints) {
  LpModel m(ObjectiveSense::kMaximize);
  m.AddVariable(0, kInf, 1.0);
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // max x  s.t. x + y <= 0, y >= -3  ->  x = 3 (y = -3).
  LpModel m(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, kInf, 1.0);
  int y = m.AddVariable(-3, kInf, 0.0);
  m.AddConstraint(ConstraintSense::kLe, 0, {{x, 1.0}, {y, 1.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, kTol);
}

TEST(SimplexTest, FreeVariable) {
  // min x + 2y  s.t. x + y = 3, x free, 0 <= y <= 1.
  // Optimum: y at... obj = x + 2y = (3 - y) + 2y = 3 + y, minimize -> y = 0,
  // x = 3, obj 3.
  LpModel m(ObjectiveSense::kMinimize);
  int x = m.AddVariable(-kInf, kInf, 1.0);
  int y = m.AddVariable(0, 1, 2.0);
  m.AddConstraint(ConstraintSense::kEq, 3, {{x, 1.0}, {y, 1.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, kTol);
  EXPECT_NEAR(s.primal[x], 3.0, kTol);
  EXPECT_NEAR(s.primal[y], 0.0, kTol);
}

TEST(SimplexTest, FreeVariableGoesNegative) {
  // min x  s.t. x >= -5 via constraint (x free).
  LpModel m(ObjectiveSense::kMinimize);
  int x = m.AddVariable(-kInf, kInf, 1.0);
  m.AddConstraint(ConstraintSense::kGe, -5, {{x, 1.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -5.0, kTol);
}

TEST(SimplexTest, UpperBoundedVariableFlips) {
  // max x + y  s.t. x + y <= 10; x <= 3, y <= 4 (as bounds). Optimum 7.
  LpModel m(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, 3, 1.0);
  int y = m.AddVariable(0, 4, 1.0);
  m.AddConstraint(ConstraintSense::kLe, 10, {{x, 1.0}, {y, 1.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 7.0, kTol);
}

TEST(SimplexTest, DegenerateInstanceTerminates) {
  // Beale's classic cycling example (terminates with anti-cycling).
  // min -0.75x1 + 150x2 - 0.02x3 + 6x4
  // s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
  //      0.5x1 - 90x2 - 0.02x3 + 3x4 <= 0
  //      x3 <= 1, x >= 0. Optimum -0.05 at x3=1... known value -1/20.
  LpModel m(ObjectiveSense::kMinimize);
  int x1 = m.AddVariable(0, kInf, -0.75);
  int x2 = m.AddVariable(0, kInf, 150.0);
  int x3 = m.AddVariable(0, kInf, -0.02);
  int x4 = m.AddVariable(0, kInf, 6.0);
  m.AddConstraint(ConstraintSense::kLe, 0,
                  {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}});
  m.AddConstraint(ConstraintSense::kLe, 0,
                  {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}});
  m.AddConstraint(ConstraintSense::kLe, 1, {{x3, 1.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, kTol);
}

TEST(SimplexTest, DualValuesForLeMaxProblem) {
  // max 3x + 5y (same as TextbookMax2D). Known duals: y1=0, y2=1.5, y3=1.
  LpModel m(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, kInf, 3.0);
  int y = m.AddVariable(0, kInf, 5.0);
  m.AddConstraint(ConstraintSense::kLe, 4, {{x, 1.0}});
  m.AddConstraint(ConstraintSense::kLe, 12, {{y, 2.0}});
  m.AddConstraint(ConstraintSense::kLe, 18, {{x, 3.0}, {y, 2.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  ASSERT_EQ(s.dual.size(), 3u);
  EXPECT_NEAR(s.dual[0], 0.0, kTol);
  EXPECT_NEAR(s.dual[1], 1.5, kTol);
  EXPECT_NEAR(s.dual[2], 1.0, kTol);
  // Strong duality: b'y equals the optimum for this all-Le problem.
  EXPECT_NEAR(4 * s.dual[0] + 12 * s.dual[1] + 18 * s.dual[2], 36.0, kTol);
}

TEST(SimplexTest, DualSignForGeMinProblem) {
  // min 2x s.t. x >= 3 -> dual (shadow price of rhs) = 2 in min sense.
  LpModel m(ObjectiveSense::kMinimize);
  int x = m.AddVariable(0, kInf, 2.0);
  m.AddConstraint(ConstraintSense::kGe, 3, {{x, 1.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 6.0, kTol);
  ASSERT_EQ(s.dual.size(), 1u);
  EXPECT_NEAR(s.dual[0], 2.0, kTol);
}

TEST(SimplexTest, ShadowPricePerturbationMatchesDual) {
  // Perturb each rhs by +delta and compare objective change to the dual.
  LpModel base(ObjectiveSense::kMaximize);
  int x = base.AddVariable(0, kInf, 2.0);
  int y = base.AddVariable(0, kInf, 3.0);
  base.AddConstraint(ConstraintSense::kLe, 8, {{x, 1.0}, {y, 2.0}});
  base.AddConstraint(ConstraintSense::kLe, 7, {{x, 2.0}, {y, 1.0}});
  LpSolution s0 = SolveLp(base);
  ASSERT_EQ(s0.status, SolveStatus::kOptimal);
  const double delta = 1e-3;
  for (int ci = 0; ci < 2; ++ci) {
    LpModel pert(ObjectiveSense::kMaximize);
    int px = pert.AddVariable(0, kInf, 2.0);
    int py = pert.AddVariable(0, kInf, 3.0);
    pert.AddConstraint(ConstraintSense::kLe, 8 + (ci == 0 ? delta : 0.0),
                       {{px, 1.0}, {py, 2.0}});
    pert.AddConstraint(ConstraintSense::kLe, 7 + (ci == 1 ? delta : 0.0),
                       {{px, 2.0}, {py, 1.0}});
    LpSolution s1 = SolveLp(pert);
    ASSERT_EQ(s1.status, SolveStatus::kOptimal);
    EXPECT_NEAR((s1.objective - s0.objective) / delta, s0.dual[ci], 1e-4);
  }
}

TEST(SimplexTest, RedundantConstraintsHandled) {
  // Duplicate rows produce a singular-ish basis during phase transitions.
  LpModel m(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, kInf, 1.0);
  m.AddConstraint(ConstraintSense::kEq, 2, {{x, 1.0}});
  m.AddConstraint(ConstraintSense::kEq, 2, {{x, 1.0}});
  m.AddConstraint(ConstraintSense::kLe, 5, {{x, 1.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, kTol);
}

TEST(SimplexTest, EmptyConstraintFeasible) {
  LpModel m(ObjectiveSense::kMaximize);
  m.AddVariable(0, 1, 1.0);
  m.AddConstraint(ConstraintSense::kLe, 5, {});  // 0 <= 5, trivially true
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, kTol);
}

TEST(SimplexTest, EmptyConstraintInfeasible) {
  LpModel m(ObjectiveSense::kMaximize);
  m.AddVariable(0, 1, 1.0);
  m.AddConstraint(ConstraintSense::kGe, 5, {});  // 0 >= 5, impossible
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, FixedVariablesRespected) {
  LpModel m(ObjectiveSense::kMaximize);
  int x = m.AddVariable(2, 2, 10.0);  // fixed at 2
  int y = m.AddVariable(0, kInf, 1.0);
  m.AddConstraint(ConstraintSense::kLe, 5, {{x, 1.0}, {y, 1.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.primal[x], 2.0, kTol);
  EXPECT_NEAR(s.primal[y], 3.0, kTol);
  EXPECT_NEAR(s.objective, 23.0, kTol);
}

TEST(SimplexTest, LpipShapedProblem) {
  // The LPIP LP shape: max sum of edge prices subject to each edge selling.
  // Items {0,1,2}; edges e1={0,1} v=4, e2={1,2} v=3, e3={0} v=2.
  // max (w0+w1) + (w1+w2) + w0 s.t. w0+w1 <= 4, w1+w2 <= 3, w0 <= 2.
  // = max 2w0 + 2w1 + w2. Optimum: w0=2, w1=2, w2=1 -> obj 9.
  LpModel m(ObjectiveSense::kMaximize);
  int w0 = m.AddVariable(0, kInf, 2.0);
  int w1 = m.AddVariable(0, kInf, 2.0);
  int w2 = m.AddVariable(0, kInf, 1.0);
  m.AddConstraint(ConstraintSense::kLe, 4, {{w0, 1.0}, {w1, 1.0}});
  m.AddConstraint(ConstraintSense::kLe, 3, {{w1, 1.0}, {w2, 1.0}});
  m.AddConstraint(ConstraintSense::kLe, 2, {{w0, 1.0}});
  LpSolution s = SolveLp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, kTol);
}

TEST(SimplexTest, IterationLimitReported) {
  LpModel m(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, kInf, 1.0);
  int y = m.AddVariable(0, kInf, 1.0);
  m.AddConstraint(ConstraintSense::kLe, 10, {{x, 1.0}, {y, 1.0}});
  SimplexOptions opts;
  opts.max_iterations = 0;  // default cap: plenty
  EXPECT_EQ(SolveLp(m, opts).status, SolveStatus::kOptimal);
}

TEST(SimplexTest, RejectsInvalidModel) {
  LpModel m;
  m.AddVariable(1, 0, 1.0);  // crossed bounds
  EXPECT_EQ(SolveLp(m).status, SolveStatus::kNumericalFailure);
}

}  // namespace
}  // namespace qp::lp
