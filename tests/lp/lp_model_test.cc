#include "lp/lp_model.h"

#include <gtest/gtest.h>

namespace qp::lp {
namespace {

TEST(LpModelTest, AddVariableAndConstraint) {
  LpModel m(ObjectiveSense::kMaximize);
  int x = m.AddVariable(0, 10, 1.0);
  int y = m.AddVariable(0, kInf, 2.0);
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 1);
  int c = m.AddConstraint(ConstraintSense::kLe, 5, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(c, 0);
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_EQ(m.num_constraints(), 1);
}

TEST(LpModelTest, DuplicateTermsAreMerged) {
  LpModel m;
  int x = m.AddVariable(0, 1, 1.0);
  m.AddConstraint(ConstraintSense::kLe, 3, {{x, 1.0}, {x, 2.0}});
  ASSERT_EQ(m.constraint(0).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.constraint(0).terms[0].second, 3.0);
}

TEST(LpModelTest, ZeroCoefficientsDropped) {
  LpModel m;
  int x = m.AddVariable(0, 1, 1.0);
  int y = m.AddVariable(0, 1, 1.0);
  m.AddConstraint(ConstraintSense::kLe, 3, {{x, 1.0}, {y, 0.0}});
  EXPECT_EQ(m.constraint(0).terms.size(), 1u);
  // Exact cancellation also drops the term.
  m.AddConstraint(ConstraintSense::kLe, 3, {{x, 1.0}, {x, -1.0}});
  EXPECT_TRUE(m.constraint(1).terms.empty());
}

TEST(LpModelTest, ValidateCatchesBadBounds) {
  LpModel m;
  m.AddVariable(2, 1, 0.0);
  EXPECT_FALSE(m.Validate().ok());
}

TEST(LpModelTest, ValidateCatchesBadVariableIndex) {
  LpModel m;
  m.AddVariable(0, 1, 0.0);
  m.AddConstraint(ConstraintSense::kLe, 1, {{5, 1.0}});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(LpModelTest, ValidateOkOnWellFormed) {
  LpModel m;
  int x = m.AddVariable(0, 1, 1.0);
  m.AddConstraint(ConstraintSense::kGe, 0.5, {{x, 2.0}});
  EXPECT_TRUE(m.Validate().ok());
}

TEST(LpModelTest, ObjectiveValue) {
  LpModel m(ObjectiveSense::kMaximize);
  m.AddVariable(0, 10, 2.0);
  m.AddVariable(0, 10, -1.0);
  EXPECT_DOUBLE_EQ(m.ObjectiveValue({3.0, 4.0}), 2.0);
}

TEST(LpModelTest, MaxInfeasibilityMeasuresWorstViolation) {
  LpModel m;
  int x = m.AddVariable(0, 1, 0.0);
  m.AddConstraint(ConstraintSense::kLe, 1, {{x, 1.0}});
  m.AddConstraint(ConstraintSense::kGe, 3, {{x, 1.0}});
  m.AddConstraint(ConstraintSense::kEq, 0.5, {{x, 1.0}});
  EXPECT_DOUBLE_EQ(m.MaxInfeasibility({1.0}), 2.0);   // Ge violated by 2
  EXPECT_DOUBLE_EQ(m.MaxInfeasibility({-1.0}), 4.0);  // bound violated by 1, Ge by 4
  EXPECT_DOUBLE_EQ(m.MaxInfeasibility({0.5}), 2.5);
}

}  // namespace
}  // namespace qp::lp
