#include "common/distributions.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace qp {
namespace {

// Empirical frequencies of a Zipf sampler should match the normalized
// power-law mass function.
TEST(ZipfTest, MatchesPmfSmallSupport) {
  const uint64_t kN = 10;
  const double kA = 1.5;
  ZipfDistribution zipf(kN, kA);
  Rng rng(101);
  std::vector<int> counts(kN + 1, 0);
  const int kDraws = 300000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t x = zipf.Sample(rng);
    ASSERT_GE(x, 1u);
    ASSERT_LE(x, kN);
    counts[x]++;
  }
  double norm = 0;
  for (uint64_t x = 1; x <= kN; ++x) norm += std::pow(static_cast<double>(x), -kA);
  for (uint64_t x = 1; x <= kN; ++x) {
    double expected = std::pow(static_cast<double>(x), -kA) / norm;
    double observed = static_cast<double>(counts[x]) / kDraws;
    EXPECT_NEAR(observed, expected, 0.01) << "x=" << x;
  }
}

TEST(ZipfTest, StaysInRangeLargeSupport) {
  ZipfDistribution zipf(1000000, 2.0);
  Rng rng(103);
  for (int i = 0; i < 20000; ++i) {
    uint64_t x = zipf.Sample(rng);
    EXPECT_GE(x, 1u);
    EXPECT_LE(x, 1000000u);
  }
}

TEST(ZipfTest, HigherExponentConcentratesAtOne) {
  Rng rng(107);
  ZipfDistribution mild(1000, 1.5), steep(1000, 2.5);
  int mild_ones = 0, steep_ones = 0;
  for (int i = 0; i < 50000; ++i) {
    mild_ones += (mild.Sample(rng) == 1);
    steep_ones += (steep.Sample(rng) == 1);
  }
  EXPECT_GT(steep_ones, mild_ones);
}

TEST(ZipfTest, SupportOfOneAlwaysReturnsOne) {
  ZipfDistribution zipf(1, 2.0);
  Rng rng(109);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 1u);
}

TEST(ZipfTest, ExponentNearOneIsHandled) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(113);
  for (int i = 0; i < 10000; ++i) {
    uint64_t x = zipf.Sample(rng);
    EXPECT_GE(x, 1u);
    EXPECT_LE(x, 100u);
  }
}

class BinomialMomentsTest
    : public ::testing::TestWithParam<std::pair<uint64_t, double>> {};

TEST_P(BinomialMomentsTest, MeanAndVarianceMatch) {
  auto [n, p] = GetParam();
  BinomialDistribution binom(n, p);
  Rng rng(127);
  const int kDraws = 120000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kDraws; ++i) {
    double x = static_cast<double>(binom.Sample(rng));
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, static_cast<double>(n));
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  double expect_mean = static_cast<double>(n) * p;
  double expect_var = expect_mean * (1 - p);
  EXPECT_NEAR(mean, expect_mean, std::max(0.05, 0.02 * expect_mean));
  EXPECT_NEAR(var, expect_var, std::max(0.1, 0.05 * expect_var));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BinomialMomentsTest,
    ::testing::Values(std::pair<uint64_t, double>{10, 0.5},    // exact bitwise
                      std::pair<uint64_t, double>{64, 0.1},    // exact bitwise
                      std::pair<uint64_t, double>{500, 0.01},  // waiting time
                      std::pair<uint64_t, double>{1000, 0.5},  // normal approx
                      std::pair<uint64_t, double>{10000, 0.5}));

TEST(BinomialTest, DegenerateProbabilities) {
  Rng rng(131);
  BinomialDistribution zero(100, 0.0), one(100, 1.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(zero.Sample(rng), 0u);
    EXPECT_EQ(one.Sample(rng), 100u);
  }
}

}  // namespace
}  // namespace qp
