#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace qp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all 9 values hit
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformIntMeanIsCentered) {
  Rng rng(13);
  double sum = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.UniformInt(1, 100));
  double mean = sum / kN;
  EXPECT_NEAR(mean, 50.5, 0.5);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0, sum_sq = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Normal(10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kN;
  double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(19);
  double sum = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.08);
}

TEST(RngTest, ExponentialIsNonNegative) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.Exponential(0.1), 0.0);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(29);
  int hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, SampleWithoutReplacementSortedUnique) {
  Rng rng(31);
  auto sample = rng.SampleWithoutReplacement(100, 20);
  ASSERT_EQ(sample.size(), 20u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_EQ(std::set<uint32_t>(sample.begin(), sample.end()).size(), 20u);
  for (uint32_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullAndEmpty) {
  Rng rng(37);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
  auto all = rng.SampleWithoutReplacement(5, 5);
  ASSERT_EQ(all.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(all[i], i);
}

TEST(RngTest, SampleWithoutReplacementIsUniformish) {
  Rng rng(41);
  std::vector<int> counts(10, 0);
  for (int trial = 0; trial < 20000; ++trial) {
    for (uint32_t v : rng.SampleWithoutReplacement(10, 3)) counts[v]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 6000, 300);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng a(99), b(99);
  Rng fa = a.Fork(1), fb = b.Fork(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
  Rng f2 = a.Fork(2);
  EXPECT_NE(a.Fork(1).NextUint64(), f2.NextUint64());
}

TEST(Mix64Test, IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
  // Low bits of sequential inputs should not be sequential.
  EXPECT_NE(Mix64(2) - Mix64(1), Mix64(3) - Mix64(2));
}

}  // namespace
}  // namespace qp
