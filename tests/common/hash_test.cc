#include "common/hash.h"

#include <gtest/gtest.h>

namespace qp {
namespace {

TEST(HashBytesTest, DeterministicAndSensitive) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashBytes("abc"), HashBytes("ab"));
  EXPECT_NE(HashBytes("abc", 1), HashBytes("abc", 2));
}

TEST(FingerprintTest, EmptyEqualsEmpty) {
  Fingerprint128 a, b;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.lo, 0u);
  EXPECT_EQ(a.hi, 0u);
}

TEST(FingerprintTest, OrderIndependent) {
  Fingerprint128 a, b;
  a.Add(1);
  a.Add(2);
  a.Add(3);
  b.Add(3);
  b.Add(1);
  b.Add(2);
  EXPECT_EQ(a, b);
}

TEST(FingerprintTest, MultisetSemantics) {
  Fingerprint128 a, b;
  a.Add(5);
  a.Add(5);
  b.Add(5);
  EXPECT_NE(a, b);
  b.Add(5);
  EXPECT_EQ(a, b);
}

TEST(FingerprintTest, RemoveInvertsAdd) {
  Fingerprint128 a;
  a.Add(10);
  a.Add(20);
  a.Add(30);
  a.Remove(20);
  Fingerprint128 b;
  b.Add(10);
  b.Add(30);
  EXPECT_EQ(a, b);
  a.Remove(10);
  a.Remove(30);
  EXPECT_EQ(a, Fingerprint128{});
}

TEST(FingerprintTest, MergeIsUnion) {
  Fingerprint128 a, b, both;
  a.Add(1);
  a.Add(2);
  b.Add(3);
  both.Add(1);
  both.Add(2);
  both.Add(3);
  a.Merge(b);
  EXPECT_EQ(a, both);
}

TEST(FingerprintTest, DifferentElementsDiffer) {
  Fingerprint128 a, b;
  a.Add(1);
  b.Add(2);
  EXPECT_NE(a, b);
  // Sum-collision probe: {1,4} vs {2,3} must differ after mixing.
  Fingerprint128 c, d;
  c.Add(1);
  c.Add(4);
  d.Add(2);
  d.Add(3);
  EXPECT_NE(c, d);
}

TEST(HashCombineTest, OrderSensitive) {
  uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

}  // namespace
}  // namespace qp
