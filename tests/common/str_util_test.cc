#include "common/str_util.h"

#include <gtest/gtest.h>

namespace qp {
namespace {

TEST(StrUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("AbC1"), "ABC1");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("lo", "hello"));
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(LikeMatchTest, ExactAndWildcards) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_TRUE(LikeMatch("abc", "a%"));
  EXPECT_TRUE(LikeMatch("abc", "%c"));
  EXPECT_TRUE(LikeMatch("abc", "%b%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abc", "a_d"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("anything", "%%"));
}

TEST(LikeMatchTest, BacktrackingCases) {
  EXPECT_TRUE(LikeMatch("aXbXc", "a%c"));
  EXPECT_TRUE(LikeMatch("mississippi", "m%iss%ppi"));
  EXPECT_FALSE(LikeMatch("mississippi", "m%issx%ppi"));
  EXPECT_TRUE(LikeMatch("Argentina", "A%"));
  EXPECT_FALSE(LikeMatch("Brazil", "A%"));
}

TEST(FormatDoubleTest, TrimsZeros) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 3), "0.333");
}

}  // namespace
}  // namespace qp
