// EpochManager acceptance tests: the reclamation guarantee (nothing a
// pinned reader can reach is freed), Guard RAII/move semantics, the
// overflow path when slots run out, and a concurrent retire/pin hammer
// that TSan checks for the happens-before edge between a node's last
// possible reader and its deleter.
#include "common/epoch.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace qp::common {
namespace {

// A retirable payload that counts its deletions.
struct Tracked {
  explicit Tracked(std::atomic<int>* counter) : counter(counter) {}
  ~Tracked() { counter->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* counter;
};

void DeleteTracked(void* p) { delete static_cast<Tracked*>(p); }

TEST(EpochManagerTest, RetireWithoutReadersReclaimsAfterBump) {
  EpochManager epochs;
  std::atomic<int> deleted{0};
  epochs.Retire(new Tracked(&deleted), &DeleteTracked);
  EXPECT_EQ(epochs.stats().retired, 1u);

  // Same epoch: the node stays pending (a reader could still pin it).
  epochs.Reclaim();
  EXPECT_EQ(deleted.load(), 0);
  EXPECT_EQ(epochs.stats().pending, 1u);

  // After the epoch advances past the retire stamp, it frees.
  epochs.BumpEpoch();
  epochs.Reclaim();
  EXPECT_EQ(deleted.load(), 1);
  EXPECT_EQ(epochs.stats().reclaimed, 1u);
  EXPECT_EQ(epochs.stats().pending, 0u);
}

TEST(EpochManagerTest, PinnedReaderBlocksReclamationUntilRelease) {
  EpochManager epochs;
  std::atomic<int> deleted{0};
  {
    EpochManager::Guard guard(epochs);
    EXPECT_EQ(epochs.stats().pins, 1u);
    epochs.Retire(new Tracked(&deleted), &DeleteTracked);
    epochs.BumpEpoch();
    epochs.Reclaim();
    // The guard pinned the pre-retire epoch: the node must survive.
    EXPECT_EQ(deleted.load(), 0);
  }
  epochs.Reclaim();
  EXPECT_EQ(deleted.load(), 1);
}

TEST(EpochManagerTest, GuardMoveTransfersThePin) {
  EpochManager epochs;
  EpochManager::Guard outer(epochs);
  {
    EpochManager::Guard inner = std::move(outer);
    EXPECT_FALSE(outer.pinned());
    EXPECT_TRUE(inner.pinned());
    EXPECT_EQ(epochs.stats().pins, 1u);  // moved, not duplicated
  }
  // inner released the (single) pin — reclamation proves it (and outer,
  // now empty, must not double-release at scope exit).
  std::atomic<int> deleted{0};
  epochs.Retire(new Tracked(&deleted), &DeleteTracked);
  epochs.BumpEpoch();
  epochs.Reclaim();
  EXPECT_EQ(deleted.load(), 1);
}

TEST(EpochManagerTest, OverflowPinsStillBlockReclamation) {
  // More simultaneous guards than slots: the excess registers through
  // the mutexed overflow list but must be just as protective.
  EpochManager epochs(/*num_slots=*/2);
  std::vector<std::unique_ptr<EpochManager::Guard>> guards;
  for (int i = 0; i < 6; ++i) {
    guards.push_back(std::make_unique<EpochManager::Guard>(epochs));
  }
  EXPECT_EQ(epochs.stats().pins, 6u);
  EXPECT_GE(epochs.stats().overflow_pins, 4u);

  std::atomic<int> deleted{0};
  epochs.Retire(new Tracked(&deleted), &DeleteTracked);
  epochs.BumpEpoch();
  epochs.Reclaim();
  EXPECT_EQ(deleted.load(), 0);

  // Release all but the last overflow guard: still blocked.
  while (guards.size() > 1) guards.pop_back();
  epochs.Reclaim();
  EXPECT_EQ(deleted.load(), 0);

  guards.clear();
  epochs.Reclaim();
  EXPECT_EQ(deleted.load(), 1);
}

TEST(EpochManagerTest, DestructorFreesPendingNodes) {
  std::atomic<int> deleted{0};
  {
    EpochManager epochs;
    epochs.Retire(new Tracked(&deleted), &DeleteTracked);
    epochs.Retire(new Tracked(&deleted), &DeleteTracked);
    // No bump, no reclaim: both still pending at destruction.
  }
  EXPECT_EQ(deleted.load(), 2);
}

// Readers pin, read a shared published value, and assert the node they
// reached is not yet destroyed; the writer republishes and retires. Run
// under TSan (label `epoch` is in the TSan CI matrix) this exercises the
// release/acquire edges of the slot protocol; run normally it checks the
// guarantee itself via the alive flag.
TEST(EpochManagerTest, ConcurrentRetireHammer) {
  struct Node {
    explicit Node(int value) : value(value) {}
    ~Node() { alive.store(false, std::memory_order_seq_cst); }
    int value;
    std::atomic<bool> alive{true};
  };
  static auto delete_node = [](void* p) { delete static_cast<Node*>(p); };

  EpochManager epochs(/*num_slots=*/4);  // force some overflow traffic
  std::atomic<Node*> head{new Node(0)};
  std::atomic<bool> stop{false};

  const int kReaders = 6;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochManager::Guard guard(epochs);
        Node* node = head.load(std::memory_order_acquire);
        // The pin precedes the load, so the node cannot have been freed.
        ASSERT_TRUE(node->alive.load(std::memory_order_seq_cst));
        ASSERT_GE(node->value, 0);
      }
    });
  }

  for (int i = 1; i <= 2000; ++i) {
    Node* replaced = head.exchange(new Node(i), std::memory_order_acq_rel);
    epochs.Retire(replaced, delete_node);
    epochs.BumpEpoch();
    epochs.Reclaim();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  delete head.load(std::memory_order_relaxed);
  epochs.BumpEpoch();
  epochs.Reclaim();
  EXPECT_EQ(epochs.stats().pending, 0u);
  EXPECT_EQ(epochs.stats().retired, 2000u);
  EXPECT_EQ(epochs.stats().reclaimed, 2000u);
}

}  // namespace
}  // namespace qp::common
