#include "common/status.h"

#include <memory>

#include <gtest/gtest.h>

namespace qp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, NewCodesHaveStableNames) {
  EXPECT_EQ(Status::Unavailable("shard 2 warming").ToString(),
            "Unavailable: shard 2 warming");
  EXPECT_EQ(Status::DeadlineExceeded("recv timed out").ToString(),
            "DeadlineExceeded: recv timed out");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  QP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Status UseAssign(int x, int* out) {
  QP_ASSIGN_OR_RETURN(int doubled, Doubled(x));
  *out = doubled;
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturnBindsValue) {
  int out = 0;
  ASSERT_TRUE(UseAssign(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(UseAssign(-1, &out).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace qp
