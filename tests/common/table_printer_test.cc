#include "common/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace qp {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name   v"), std::string::npos);
  EXPECT_NE(s.find("alpha  1"), std::string::npos);
  EXPECT_NE(s.find("b      22"), std::string::npos);
}

TEST(TablePrinterTest, HeaderOnly) {
  TablePrinter t({"a", "bb"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("a  bb"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TablePrinterTest, AddRowValuesFormats) {
  TablePrinter t({"alg", "rev", "n"});
  t.AddRowValues("UBP", 0.75, 42);
  std::string s = t.ToString();
  EXPECT_NE(s.find("UBP"), std::string::npos);
  EXPECT_NE(s.find("0.75"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(TablePrinterTest, PrintWritesToStream) {
  TablePrinter t({"x"});
  t.AddRow({"1"});
  std::ostringstream oss;
  t.Print(oss);
  EXPECT_EQ(oss.str(), t.ToString());
}

}  // namespace
}  // namespace qp
