// CI smoke for the durability path: a child process builds a sharded
// engine with a CheckpointManager attached, runs a deterministic op
// sequence (appends + a seller delta), appends a torn half-record to the
// live journal — exactly what a crash mid-write leaves behind — and
// SIGKILLs itself. The parent then recovers from the directory and
// requires the recovered books to match an in-process reference replay
// BIT FOR BIT: version vectors, quote prices, and serialized shard state.
//
// Exit codes: 0 = recovered state is bit-identical; 1 = mismatch or
// recovery failure; 2 = child setup failure (not a durability bug).
//
// The fork happens before any engine (and thus any thread) exists, so
// the child is a plain single-threaded process until it builds its own.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "db/parser.h"
#include "market/support.h"
#include "market/support_partitioner.h"
#include "serve/persist/checkpoint.h"
#include "serve/sharded_engine.h"
#include "tests/testing/test_db.h"

namespace qp::serve::persist {
namespace {

namespace fs = std::filesystem;

struct Buyer {
  const char* sql;
  double valuation;
};

const std::vector<Buyer>& AllBuyers() {
  static const std::vector<Buyer> buyers = {
      {"select * from Country", 90.0},
      {"select Name from Country where Continent = 'Europe'", 12.0},
      {"select count(*) from City", 6.0},
      {"select max(Population) from Country", 8.0},
      {"select CountryCode, sum(Population) from City group by CountryCode",
       35.0},
      {"select min(LifeExpectancy) from Country", 0.75},
      {"select distinct Continent from Country", 3.5},
  };
  return buyers;
}

/// Same deterministic world as the persist test suite: db + support +
/// sharded engine, identical across processes.
struct World {
  std::unique_ptr<db::Database> db;
  market::SupportSet support;
  std::unique_ptr<ShardedPricingEngine> engine;

  World() {
    db = db::testing::MakeTestDatabase();
    Rng rng(7);
    auto generated =
        market::GenerateSupport(*db, {.size = 120, .max_retries = 32}, rng);
    QP_CHECK_OK(generated.status());
    support = *generated;
    std::vector<db::BoundQuery> queries;
    for (const Buyer& buyer : AllBuyers()) {
      auto q = db::ParseQuery(buyer.sql, *db);
      QP_CHECK_OK(q.status());
      queries.push_back(*q);
    }
    market::SupportPartition partition = market::SupportPartitioner::FromQueries(
        db.get(), support, queries, {}, {.num_shards = 2});
    engine =
        std::make_unique<ShardedPricingEngine>(db.get(), std::move(partition));
  }

  Status Append(size_t index) {
    auto q = db::ParseQuery(AllBuyers()[index].sql, *db);
    QP_RETURN_IF_ERROR(q.status());
    return engine->AppendBuyers({*q}, {AllBuyers()[index].valuation});
  }
};

market::CellDelta TheDelta() {
  // Country row 1 (FRA), Population column.
  return {0, 1, 3, db::Value::Int(500000000)};
}

/// The op sequence both the child (journaled, then killed) and the
/// parent's reference engine (in-process) execute. checkpoint_every=2
/// puts checkpoints in the middle of it, so recovery exercises both the
/// checkpoint image and journal replay on top.
Status RunOps(World& world) {
  QP_RETURN_IF_ERROR(world.Append(0));
  QP_RETURN_IF_ERROR(world.Append(1));
  QP_RETURN_IF_ERROR(world.engine->ApplySellerDelta(*world.db, TheDelta()));
  QP_RETURN_IF_ERROR(world.Append(2));
  QP_RETURN_IF_ERROR(world.Append(3));
  QP_RETURN_IF_ERROR(world.Append(4));
  return Status::OK();
}

[[noreturn]] void ChildMain(const std::string& dir) {
  World world;
  CheckpointManager manager({.dir = dir, .checkpoint_every = 2, .keep = 2});
  Status status = manager.Attach(world.engine.get());
  if (!status.ok()) {
    std::fprintf(stderr, "child: attach failed: %s\n",
                 status.ToString().c_str());
    _exit(2);
  }
  world.engine->SetWriterLog(&manager);
  status = RunOps(world);
  if (!status.ok()) {
    std::fprintf(stderr, "child: ops failed: %s\n", status.ToString().c_str());
    _exit(2);
  }
  // A crash mid-journal-write leaves a torn record at the tail. Forge
  // one (a plausible length prefix, then silence) on the live segment.
  std::string journal =
      dir + "/journal-" + std::to_string(manager.stats().last_checkpoint_seq) +
      ".log";
  {
    std::ofstream out(journal, std::ios::binary | std::ios::app);
    const uint32_t len = 64;
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write("\x01torn", 5);
  }
  kill(getpid(), SIGKILL);
  _exit(2);  // unreachable
}

/// Serializes an engine's full state through a fresh CheckpointManager
/// in `scratch` and returns the shard files' raw bytes.
std::vector<std::vector<char>> DumpShardFiles(ShardedPricingEngine& engine,
                                              const std::string& scratch) {
  fs::remove_all(scratch);
  CheckpointManager dumper({.dir = scratch, .checkpoint_every = 0});
  QP_CHECK_OK(dumper.Attach(&engine));
  std::vector<std::vector<char>> files;
  for (int s = 0; s < engine.num_shards(); ++s) {
    std::ifstream in(scratch + "/checkpoint-1/shard-" + std::to_string(s) +
                         ".ckpt",
                     std::ios::binary);
    files.emplace_back(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }
  return files;
}

int ParentMain(const std::string& dir, pid_t child) {
  int wstatus = 0;
  if (waitpid(child, &wstatus, 0) != child) {
    std::perror("waitpid");
    return 2;
  }
  if (!WIFSIGNALED(wstatus) || WTERMSIG(wstatus) != SIGKILL) {
    std::fprintf(stderr, "child did not die by SIGKILL (status %d)\n",
                 wstatus);
    return 2;
  }

  // Reference: the same ops, replayed live in this process.
  World reference;
  Status status = RunOps(reference);
  if (!status.ok()) {
    std::fprintf(stderr, "reference ops failed: %s\n",
                 status.ToString().c_str());
    return 2;
  }

  auto recovered = Recover(dir);
  if (!recovered.ok()) {
    std::fprintf(stderr, "FAIL: recovery: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  if (!recovered->journal_torn_tail) {
    std::fprintf(stderr, "FAIL: torn journal tail not detected\n");
    return 1;
  }
  World restored;
  status = restored.engine->RestoreFromCheckpoint(*recovered,
                                                  restored.db.get());
  if (!status.ok()) {
    std::fprintf(stderr, "FAIL: restore: %s\n", status.ToString().c_str());
    return 1;
  }

  int failures = 0;
  if (restored.engine->snapshot().version_vector() !=
      reference.engine->snapshot().version_vector()) {
    std::fprintf(stderr, "FAIL: version vectors differ\n");
    ++failures;
  }
  if (restored.db->table(0).cell(1, 3).as_int() !=
      reference.db->table(0).cell(1, 3).as_int()) {
    std::fprintf(stderr, "FAIL: seller delta not reapplied\n");
    ++failures;
  }
  const market::SupportPartition& partition = reference.engine->partition();
  for (uint32_t item = 0; item < partition.num_items(); ++item) {
    Quote a = reference.engine->QuoteBundle({item});
    Quote b = restored.engine->QuoteBundle({item});
    if (std::memcmp(&a.price, &b.price, sizeof(a.price)) != 0) {
      std::fprintf(stderr, "FAIL: item %u priced %.17g vs %.17g\n", item,
                   a.price, b.price);
      ++failures;
      break;
    }
  }
  std::vector<std::vector<char>> want =
      DumpShardFiles(*reference.engine, dir + "/.smoke-ref");
  std::vector<std::vector<char>> got =
      DumpShardFiles(*restored.engine, dir + "/.smoke-got");
  for (size_t s = 0; s < want.size(); ++s) {
    if (want[s] != got[s]) {
      std::fprintf(stderr, "FAIL: shard %zu serialized state differs\n", s);
      ++failures;
    }
  }

  if (failures > 0) return 1;
  std::printf(
      "crash_recovery_smoke: OK (checkpoint %lld, %zu replayed ops, torn "
      "tail, %u items bit-identical)\n",
      static_cast<long long>(recovered->checkpoint_seq),
      recovered->ops.size(), partition.num_items());
  return 0;
}

int Main(int argc, char** argv) {
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dir=", 6) == 0) dir = argv[i] + 6;
  }
  bool own_dir = dir.empty();
  if (own_dir) {
    char tmpl[] = "/tmp/qp_crash_smoke_XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      std::perror("mkdtemp");
      return 2;
    }
    dir = tmpl;
  }
  pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return 2;
  }
  if (child == 0) ChildMain(dir);
  int rc = ParentMain(dir, child);
  if (rc == 0 && own_dir) fs::remove_all(dir);
  return rc;
}

}  // namespace
}  // namespace qp::serve::persist

int main(int argc, char** argv) {
  return qp::serve::persist::Main(argc, argv);
}
