#!/usr/bin/env python3
"""Compare a bench --json run against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [CURRENT2.json ...]
        [--tolerance 0.25] [--min-seconds 0.005] [--check-revenues]

Multiple CURRENT files (repeated runs of the same driver) are merged by
taking the per-pair minimum seconds — the standard de-noising for shared
CI runners — while revenues must agree bit-for-bit across the runs.

The baseline and the current run must cover the SAME (instance,
algorithm) pairs: a baseline row missing from the run fails as a vanished
phase, and a run row missing from the baseline fails as an ungated one
(add the row to the baseline file).

Per (instance, algorithm) pair present in both files the script flags a
regression when the current seconds exceed baseline * (1 + tolerance),
after normalizing for machine speed: raw ratios are divided by the median
current/baseline ratio across all timed pairs, so a uniformly slower CI
runner does not fail the gate while a single algorithm regressing
relative to the others does. The normalization factor is clamped to
[1/max-machine-factor, max-machine-factor] so a slowdown shared by all
timed pairs still fails once it exceeds tolerance * max-machine-factor.
Pairs whose baseline time is below --min-seconds are skipped (timer
noise). With --check-revenues, lps_solved must match the baseline
exactly and revenues must match within --revenue-rtol (default 1e-9 —
tight enough to flag any alternate-vertex or algorithmic drift, loose
enough for last-ulp libm differences across machines; repeated CURRENT
runs are still compared bit-for-bit against each other).

Exit status: 0 clean, 1 regression(s), 2 usage/IO error.
"""

import argparse
import json
import statistics
import sys


def load(path):
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for r in records:
        # Negative seconds (e.g. a wall-minus-probe-delta phase that went
        # below zero before the benches clamped) poison the median
        # machine-speed normalization; refuse the file outright.
        if not (r["seconds"] >= 0.0):
            print(f"error: {path} record ({r['instance']!r},"
                  f" {r['algorithm']!r}) has invalid seconds"
                  f" {r['seconds']!r} (negative or NaN)", file=sys.stderr)
            sys.exit(2)
    return {(r["instance"], r["algorithm"]): r for r in records}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--min-seconds", type=float, default=0.005,
                        help="skip pairs with baseline below this (noise)")
    parser.add_argument("--check-revenues", action="store_true",
                        help="also require bit-identical revenues/lps_solved")
    parser.add_argument("--max-machine-factor", type=float, default=3.0,
                        help="cap on the machine-speed normalization factor; "
                             "slowdowns beyond tolerance * this always fail")
    parser.add_argument("--revenue-rtol", type=float, default=1e-9,
                        help="relative tolerance for baseline revenue "
                             "comparison (cross-machine libm last-ulp drift; "
                             "repeated runs on one machine must still match "
                             "bit-for-bit)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    runs = [load(path) for path in args.current]
    current = runs[0]
    for extra in runs[1:]:
        for key, record in extra.items():
            if key not in current:
                current[key] = record
                continue
            if record["revenue"] != current[key]["revenue"]:
                print(f"error: revenue differs between runs for {key}"
                      f" ({record['revenue']!r} vs"
                      f" {current[key]['revenue']!r}) — nondeterminism",
                      file=sys.stderr)
                sys.exit(1)
            current[key] = dict(current[key],
                                seconds=min(current[key]["seconds"],
                                            record["seconds"]))
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: no overlapping (instance, algorithm) records",
              file=sys.stderr)
        sys.exit(2)
    missing = sorted(set(baseline) - set(current))
    if missing:
        # A vanished record is a regression of its own (dropped algorithm,
        # renamed instance, skipped workload) — never let it pass silently.
        for key in missing:
            print(f"{key[0]:>12} {key[1]:>9}: present in baseline, missing "
                  "from current run  <-- MISSING")
        print(f"error: {len(missing)} baseline record(s) missing",
              file=sys.stderr)
        sys.exit(1)
    unbaselined = sorted(set(current) - set(baseline))
    if unbaselined:
        # The mirror failure: a bench emitting a record with no baseline
        # row means a new phase shipped ungated. Fail with the fix spelled
        # out instead of silently skipping (or KeyError-ing) the row.
        for key in unbaselined:
            print(f"{key[0]:>12} {key[1]:>9}: produced by the current run but "
                  "absent from the baseline  <-- UNBASELINED")
        print(f"error: {len(unbaselined)} current record(s) have no baseline"
              f" row; add them to {args.baseline} (seconds from a trusted"
              " machine, revenues/lps bit-exact from the run)",
              file=sys.stderr)
        sys.exit(1)

    timed = [k for k in shared if baseline[k]["seconds"] >= args.min_seconds]
    ratios = {k: current[k]["seconds"] / baseline[k]["seconds"] for k in timed}
    # Machine-speed normalization: a uniformly faster/slower runner shifts
    # every ratio by the same factor; the median estimates that factor.
    # Clamped to --max-machine-factor so a uniform slowdown of the timed
    # pairs (which are mostly the LP pipeline this gate protects) cannot
    # normalize itself away entirely.
    scale = statistics.median(ratios.values()) if ratios else 1.0
    if scale <= 0:
        scale = 1.0
    scale = min(max(scale, 1.0 / args.max_machine_factor),
                args.max_machine_factor)

    failures = []
    for key in timed:
        normalized = ratios[key] / scale
        marker = ""
        if normalized > 1.0 + args.tolerance:
            failures.append(key)
            marker = "  <-- REGRESSION"
        print(f"{key[0]:>12} {key[1]:>9}: baseline {baseline[key]['seconds']:.4f}s"
              f" current {current[key]['seconds']:.4f}s"
              f" normalized x{normalized:.2f}{marker}")

    if args.check_revenues:
        for key in shared:
            b, c = baseline[key], current[key]
            rev_drift = abs(c["revenue"] - b["revenue"]) > (
                args.revenue_rtol * (1.0 + abs(b["revenue"])))
            if rev_drift or b["lps_solved"] != c["lps_solved"]:
                failures.append(key)
                print(f"{key[0]:>12} {key[1]:>9}: revenue/lps mismatch"
                      f" (baseline {b['revenue']!r}/{b['lps_solved']},"
                      f" current {c['revenue']!r}/{c['lps_solved']})"
                      "  <-- MISMATCH")

    print(f"checked {len(timed)} timed pairs (median machine-speed ratio"
          f" x{scale:.2f}), {len(failures)} failure(s)")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
