// Table 3: hypergraph characteristics of the four query workloads
// (#queries m, max degree B, average edge size), plus the auxiliary shape
// facts Section 6.2 quotes (zero-size edges, edges with a unique item).
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions load = LoadOptionsFromFlags(flags);
  std::cout << "=== Table 3: hypergraph characteristics (build threads: "
            << load.build_threads << ") ===\n";
  TablePrinter table({"workload", "queries (m)", "support (n)",
                      "max degree (B)", "avg edge size", "zero edges",
                      "unique-item edges", "build (s)"});
  for (const char* name : {"uniform", "skewed", "ssb", "tpch"}) {
    WorkloadHypergraph wh = LoadWorkloadHypergraph(name, load);
    int zero = 0;
    for (int e = 0; e < wh.hypergraph.num_edges(); ++e) {
      zero += wh.hypergraph.edge_size(e) == 0;
    }
    table.AddRow({wh.name, std::to_string(wh.hypergraph.num_edges()),
                  std::to_string(wh.support_size),
                  std::to_string(wh.hypergraph.MaxDegree()),
                  StrFormat("%.2f", wh.hypergraph.AvgEdgeSize()),
                  std::to_string(zero),
                  std::to_string(wh.hypergraph.NumEdgesWithUniqueItem()),
                  StrFormat("%.3f", wh.build_seconds)});
  }
  table.Print(std::cout);
  std::cout << "(paper, SF 1 / support 15000 & 100000: uniform m=1000 B=400 "
               "avg=5982; skewed m=986 B=22 avg=41.7; SSB m=701 B=257 "
               "avg=278.7; TPC-H m=220 B=151 avg=375.5)\n";
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
