// Ablation: item-class compression (DESIGN.md Section 2). Items with
// identical edge membership collapse into one LP variable; this bench
// shows the class counts and the LPIP / CIP speedups on real workloads.
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/stopwatch.h"
#include "core/valuation.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions load = LoadOptionsFromFlags(flags);
  std::cout << "=== Ablation: item-class compression ===\n";
  TablePrinter table({"workload", "items", "classes", "algorithm",
                      "compressed-s", "uncompressed-s", "revenue-delta"});
  for (const char* name : {"skewed", "tpch"}) {
    WorkloadHypergraph wh = LoadWorkloadHypergraph(name, load);
    Rng rng(Mix64(load.seed ^ 0xc0));
    core::Valuations v = core::SampleUniformValuations(wh.hypergraph, 100, rng);

    core::LpipOptions on, off;
    on.classes = &wh.classes;
    on.max_candidates = 8;
    off.use_compression = false;
    off.max_candidates = 8;
    core::PricingResult lpip_on = core::RunLpip(wh.hypergraph, v, on);
    core::PricingResult lpip_off = core::RunLpip(wh.hypergraph, v, off);
    table.AddRow({wh.name, std::to_string(wh.hypergraph.num_items()),
                  std::to_string(wh.classes.num_classes()), "LPIP",
                  StrFormat("%.3f", lpip_on.seconds),
                  StrFormat("%.3f", lpip_off.seconds),
                  StrFormat("%.5f", lpip_on.revenue - lpip_off.revenue)});

    core::CipOptions cip_on, cip_off;
    cip_on.classes = &wh.classes;
    cip_on.eps = 3.0;
    cip_off.use_compression = false;
    cip_off.eps = 3.0;
    core::PricingResult on_result = core::RunCip(wh.hypergraph, v, cip_on);
    core::PricingResult off_result = core::RunCip(wh.hypergraph, v, cip_off);
    table.AddRow({wh.name, std::to_string(wh.hypergraph.num_items()),
                  std::to_string(wh.classes.num_classes()), "CIP",
                  StrFormat("%.3f", on_result.seconds),
                  StrFormat("%.3f", off_result.seconds),
                  StrFormat("%.5f", on_result.revenue - off_result.revenue)});
  }
  table.Print(std::cout);
  std::cout << "(compression is revenue-neutral: the LPs are equivalent)\n";
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
