// Table 6: running times (seconds) for the SSB workload as a function of
// the support set size, *excluding* hypergraph construction time (reported
// in its own column), as in the paper.
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "core/valuation.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions base = LoadOptionsFromFlags(flags);
  std::cout << "=== Table 6: runtimes vs support size "
               "(SSB, excl. construction) ===\n";
  TablePrinter table({"|S|", "construction", "LPIP", "UBP", "UIP", "CIP",
                      "Layering"});
  std::vector<int> sizes =
      flags.paper() ? std::vector<int>{1000, 5000, 10000, 50000, 100000}
                    : std::vector<int>{500, 1000, 3000, 6000};
  for (int support : sizes) {
    LoadOptions load = base;
    load.support = support;
    WorkloadHypergraph wh = LoadWorkloadHypergraph("ssb", load);
    core::AlgorithmOptions options = AlgorithmOptionsFor(wh, flags);
    Rng rng(Mix64(load.seed ^ 0x66));
    core::Valuations v = core::SampleUniformValuations(wh.hypergraph, 100, rng);
    auto results = core::RunAllAlgorithms(wh.hypergraph, v, options);
    auto seconds_of = [&](const char* alg) {
      for (const auto& r : results) {
        if (r.algorithm == alg) return StrFormat("%.3f", r.seconds);
      }
      return std::string("-");
    };
    table.AddRow({std::to_string(support), StrFormat("%.2f", wh.build_seconds),
                  seconds_of("LPIP"), seconds_of("UBP"), seconds_of("UIP"),
                  seconds_of("CIP"), seconds_of("Layering")});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
