// Figure 6(b): scaled bundle valuations (Exponential / Normal of
// |e|^kappa) on the SSB and TPC-H workloads.
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "core/valuation.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions load = LoadOptionsFromFlags(flags);
  int runs = flags.GetInt("runs", 1);
  std::cout << "=== Figure 6b: scaled bundle valuations (SSB + TPC-H) ===\n";
  TablePrinter table({"workload", "config", "algorithm", "norm-revenue",
                      "seconds"});
  const double kappas[] = {2.0, 1.5, 1.0, 0.5, 0.25};
  for (const char* name : {"ssb", "tpch"}) {
    WorkloadHypergraph wh = LoadWorkloadHypergraph(name, load);
    core::AlgorithmOptions options = AlgorithmOptionsFor(wh, flags);
    for (double kappa : kappas) {
      RunConfigRow(table, wh, StrCat("exp k=", FormatDouble(kappa, 2)),
                   [&](Rng& rng) {
                     return core::ScaleExponentialValuations(wh.hypergraph,
                                                             kappa, rng);
                   },
                   runs, options, load.seed);
    }
    for (double kappa : kappas) {
      RunConfigRow(table, wh, StrCat("normal k=", FormatDouble(kappa, 2)),
                   [&](Rng& rng) {
                     return core::ScaleNormalValuations(wh.hypergraph, kappa,
                                                        rng);
                   },
                   runs, options, load.seed);
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
