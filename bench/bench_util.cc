#include "bench/bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "core/bounds.h"
#include "market/hypergraph_builder.h"
#include "market/support.h"
#include "workloads/ssb.h"
#include "workloads/tpch.h"
#include "workloads/world_queries.h"

namespace qp::bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) continue;
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

int Flags::GetInt(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atoi(it->second.c_str());
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

std::string Flags::GetString(const std::string& key,
                             std::string fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1";
}

LoadOptions LoadOptionsFromFlags(const Flags& flags) {
  LoadOptions options;
  options.support = flags.GetInt("support", 0);
  options.sf = flags.GetDouble("sf", 0.0);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  options.paper_scale = flags.paper();
  options.build_threads = flags.GetInt("threads", 1);
  return options;
}

namespace {

int DefaultSupport(const std::string& name, bool paper_scale) {
  if (paper_scale) {
    // Paper: 15000 for world workloads, 100000 for SSB / TPC-H.
    return (name == "skewed" || name == "uniform") ? 15000 : 100000;
  }
  if (name == "skewed") return 6000;
  if (name == "uniform") return 1500;
  return 6000;  // tpch / ssb
}

double DefaultScaleFactor(bool paper_scale) {
  return paper_scale ? 1.0 : 0.005;
}

}  // namespace

WorkloadMarket LoadWorkloadMarket(const std::string& name,
                                  const LoadOptions& options) {
  int support_size = options.support > 0
                         ? options.support
                         : DefaultSupport(name, options.paper_scale);
  double sf = options.sf > 0.0 ? options.sf
                               : DefaultScaleFactor(options.paper_scale);

  Result<workload::WorkloadInstance> instance =
      Status::InvalidArgument("unknown workload " + name);
  if (name == "skewed") {
    instance = workload::MakeSkewedWorkload(options.seed);
  } else if (name == "uniform") {
    instance = workload::MakeUniformWorkload(options.seed);
  } else if (name == "tpch") {
    instance = workload::MakeTpchWorkload({.scale_factor = sf,
                                           .seed = options.seed});
  } else if (name == "ssb") {
    instance = workload::MakeSsbWorkload({.scale_factor = sf,
                                          .seed = options.seed});
  }
  if (!instance.ok()) {
    std::cerr << "failed to load workload " << name << ": "
              << instance.status() << std::endl;
    std::abort();
  }

  Rng rng(Mix64(options.seed ^ 0x5eedULL));
  market::SupportOptions support_options;
  support_options.size = support_size;
  auto support =
      market::GenerateSupport(*instance->database, support_options, rng);
  if (!support.ok()) {
    std::cerr << "support generation failed: " << support.status() << std::endl;
    std::abort();
  }

  WorkloadMarket out;
  out.instance = std::move(*instance);
  out.support = std::move(*support);
  out.support_size = support_size;
  return out;
}

WorkloadHypergraph LoadWorkloadHypergraph(const std::string& name,
                                          const LoadOptions& options) {
  WorkloadMarket market = LoadWorkloadMarket(name, options);
  WorkloadHypergraph out;
  out.name = name;
  out.support_size = market.support_size;
  market::BuildResult built = market::BuildHypergraph(
      *market.instance.database, market.instance.queries, market.support,
      {.incremental = true, .num_threads = options.build_threads});
  out.hypergraph = std::move(built.hypergraph);
  out.build_seconds = built.seconds;
  out.classes = core::ItemClasses::Compute(out.hypergraph);
  return out;
}

core::AlgorithmOptions AlgorithmOptionsFor(const WorkloadHypergraph& wh,
                                           const Flags& flags) {
  core::AlgorithmOptions options;
  options.lpip.classes = &wh.classes;
  options.cip.classes = &wh.classes;
  // Paper Section 6.4: epsilon tuned per workload to cap CIP runtime; the
  // paper used 0.2 (skewed), 4 (uniform), 3 (SSB / TPC-H).
  double default_eps = 1.0;
  if (wh.name == "uniform") default_eps = 4.0;
  if (wh.name == "ssb" || wh.name == "tpch") default_eps = 3.0;
  if (flags.paper() && wh.name == "skewed") default_eps = 0.2;
  options.cip.eps = flags.GetDouble("eps", default_eps);
  // LPIP threshold candidates: the paper solves one LP per edge; benches
  // default to a spread of 12 (ablation_lpip_candidates shows the sweep
  // saturates well before that). --candidates=0 restores every-edge LPs.
  options.lpip.max_candidates =
      flags.GetInt("candidates", flags.paper() ? 0 : 12);
  // LP pipeline knobs: --warm=0 cold-solves every candidate LP (the
  // pre-warm-start behavior), --threads=N runs candidate chains on N
  // threads (results are bit-identical for every N).
  options.lpip.warm_start = flags.GetBool("warm", true);
  options.cip.warm_start = options.lpip.warm_start;
  options.lpip.num_threads = flags.GetInt("threads", 1);
  options.cip.num_threads = options.lpip.num_threads;
  return options;
}

void BenchRecorder::Add(const std::string& instance,
                        const std::string& algorithm, double seconds,
                        int lps_solved, double revenue) {
  // Derived timings (wall minus overlapping-probe delta) can dip below
  // zero on fast runs; a negative baseline entry poisons the regression
  // gate's medians, and the gate rejects such files outright.
  records_.push_back({instance, algorithm, std::max(0.0, seconds), lps_solved,
                      revenue});
}

void BenchRecorder::AddAll(const std::string& instance,
                           const std::vector<core::PricingResult>& results) {
  for (const core::PricingResult& r : results) {
    Add(instance, r.algorithm, r.seconds, r.lps_solved, r.revenue);
  }
}

bool BenchRecorder::WriteJson(const std::string& path) const {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write bench json to " << path << std::endl;
    return false;
  }
  // Revenues use %.17g so a baseline comparison can check bit-identity.
  out << "[\n";
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    out << StrFormat(
        "  {\"instance\": \"%s\", \"algorithm\": \"%s\", \"seconds\": %.6f, "
        "\"lps_solved\": %d, \"revenue\": %.17g}%s\n",
        r.instance.c_str(), r.algorithm.c_str(), r.seconds, r.lps_solved,
        r.revenue, i + 1 == records_.size() ? "" : ",");
  }
  out << "]\n";
  return out.good();
}

void RunConfigRow(TablePrinter& table, const WorkloadHypergraph& wh,
                  const std::string& config_label,
                  const std::function<core::Valuations(Rng&)>& draw,
                  int runs, const core::AlgorithmOptions& options,
                  uint64_t seed) {
  // Averages over `runs` valuation draws.
  std::map<std::string, double> revenue_sum;
  std::map<std::string, double> seconds_sum;
  double bound_sum = 0.0;
  for (int run = 0; run < runs; ++run) {
    Rng rng(Mix64(seed ^ (0xabc0 + run)));
    core::Valuations v = draw(rng);
    double total = core::SumOfValuations(v);
    if (total <= 0) total = 1.0;
    auto results = core::RunAllAlgorithms(wh.hypergraph, v, options);
    for (const auto& r : results) {
      revenue_sum[r.algorithm] += r.revenue / total;
      seconds_sum[r.algorithm] += r.seconds;
    }
    bound_sum += core::SubadditiveBound(wh.hypergraph, v) / total;
  }
  const char* order[] = {"UBP", "UIP", "LPIP", "CIP", "Layering", "XOS"};
  for (const char* alg : order) {
    table.AddRow({wh.name, config_label, alg,
                  StrFormat("%.4f", revenue_sum[alg] / runs),
                  StrFormat("%.3f", seconds_sum[alg] / runs)});
  }
  table.AddRow({wh.name, config_label, "subadditive-bound",
                StrFormat("%.4f", bound_sum / runs), "-"});
}

}  // namespace qp::bench
