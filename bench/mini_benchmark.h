// Minimal stand-in for the subset of the google-benchmark API that
// bench/micro_algorithms.cc uses, so the target builds and runs even when
// no system google-benchmark is installed (it used to be skipped
// silently). Timing model: each benchmark iterates until ~0.2 s or 1e6
// iterations and reports mean wall time per iteration (no warmup, no
// statistics beyond the mean — install google-benchmark for real
// microbenchmarking; CMake picks it automatically when present).
#ifndef QP_BENCH_MINI_BENCHMARK_H_
#define QP_BENCH_MINI_BENCHMARK_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

class State {
 public:
  explicit State(std::vector<int64_t> ranges)
      : ranges_(std::move(ranges)) {}

  int64_t range(size_t i = 0) const { return ranges_[i]; }

  // `for (auto _ : state)` support: the iterator drives the timing loop.
  // The dereferenced value has a user-provided destructor so the idiomatic
  // unused `_` does not trip -Werror=unused-variable.
  struct Tick {
    ~Tick() {}
  };
  struct iterator {
    State* state;
    bool operator!=(const iterator&) const { return state->KeepRunning(); }
    void operator++() {}
    Tick operator*() const { return {}; }
  };
  iterator begin() {
    start_ = Clock::now();
    return {this};
  }
  iterator end() { return {this}; }

  int64_t iterations_done() const { return done_; }
  double elapsed_seconds() const { return elapsed_; }

 private:
  using Clock = std::chrono::steady_clock;

  bool KeepRunning() {
    // Clock reads are trivial next to any iteration worth benchmarking,
    // so check the budget every iteration: slow benchmarks (one full
    // LPIP run per iteration) stop right after the budget expires.
    if (done_ > 0) {
      elapsed_ = std::chrono::duration<double>(Clock::now() - start_).count();
      if (elapsed_ >= kMinSeconds || done_ >= kMaxIterations) return false;
    }
    ++done_;
    return true;
  }

  static constexpr double kMinSeconds = 0.2;
  static constexpr int64_t kMaxIterations = 1000000;

  std::vector<int64_t> ranges_;
  int64_t done_ = 0;
  double elapsed_ = 0.0;
  Clock::time_point start_;
};

template <typename T>
inline void DoNotOptimize(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

namespace internal {

struct Registered {
  std::string name;
  void (*fn)(State&);
  std::vector<std::vector<int64_t>> arg_sets;
};

inline std::vector<Registered>& Registry() {
  static std::vector<Registered> registry;
  return registry;
}

class Benchmark {
 public:
  explicit Benchmark(size_t index) : index_(index) {}
  Benchmark* Arg(int64_t value) {
    Registry()[index_].arg_sets.push_back({value});
    return this;
  }

 private:
  size_t index_;
};

inline Benchmark* Register(const char* name, void (*fn)(State&)) {
  Registry().push_back({name, fn, {}});
  // Leaked on purpose: registration objects live for the process, exactly
  // like google-benchmark's.
  return new Benchmark(Registry().size() - 1);
}

inline int RunAll() {
  std::printf("%-40s %15s %12s   (mini harness; install google-benchmark "
              "for real stats)\n",
              "benchmark", "time/iter", "iters");
  for (const Registered& b : Registry()) {
    std::vector<std::vector<int64_t>> arg_sets = b.arg_sets;
    if (arg_sets.empty()) arg_sets.push_back({});
    for (const std::vector<int64_t>& args : arg_sets) {
      std::string label = b.name;
      for (int64_t a : args) label += "/" + std::to_string(a);
      State state(args);
      b.fn(state);
      double per_iter =
          state.iterations_done() > 0
              ? state.elapsed_seconds() /
                    static_cast<double>(state.iterations_done())
              : 0.0;
      const char* unit = "s ";
      double value = per_iter;
      if (value < 1e-6) {
        value *= 1e9;
        unit = "ns";
      } else if (value < 1e-3) {
        value *= 1e6;
        unit = "us";
      } else if (value < 1.0) {
        value *= 1e3;
        unit = "ms";
      }
      std::printf("%-40s %13.2f %s %12lld\n", label.c_str(), value, unit,
                  static_cast<long long>(state.iterations_done()));
    }
  }
  return 0;
}

}  // namespace internal

}  // namespace benchmark

#define BENCHMARK(fn) \
  static ::benchmark::internal::Benchmark* fn##_mini_registration = \
      ::benchmark::internal::Register(#fn, fn)

#define BENCHMARK_MAIN() \
  int main() { return ::benchmark::internal::RunAll(); }

#endif  // QP_BENCH_MINI_BENCHMARK_H_
