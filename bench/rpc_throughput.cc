// RPC front-end bench: quote/purchase throughput and latency through the
// epoll serving layer (serve/rpc/) against an in-process baseline.
//
//   ./build/bench/rpc_throughput
//   ./build/bench/rpc_throughput --workload=skewed --support=1200
//       --initial=300 --clients=4 --requests=2500 --window=32
//       --purchases=600 --shards=2 --json=out.json
//
// Two load shapes, both over real loopback sockets:
//
//   closed loop  --clients threads, one blocking Quote at a time each;
//                measures the un-pipelined round-trip floor.
//   open loop    the same threads keep --window requests outstanding
//                (pipelined sends, replies matched by request id) — the
//                regime that exercises the server's tick auto-batching:
//                every quote decoded in one event-loop tick prices
//                through a single engine QuoteBatch call.
//
// Every wire quote is checked bit-identical to the in-process quote for
// the same bundle (price, version, per-shard version vector, algorithm);
// any mismatch aborts the bench.
//
// JSON records (regression-gated like the engine bench):
//   quotes-closed   wall seconds for clients*requests blocking quotes
//   quotes-open     the same volume pipelined (window per client)
//   purchases-wire  posted-price purchases over the wire (lps_solved =
//                   accepted sales, deterministic against a static book)
//   p50/p99 rows    per-shape latency percentiles, in seconds — pinned
//                   for trend tracking; they sit under the CI gate's
//                   --min-seconds floor, so only their revenue bits gate
//
// Loop-scaling phases (multi-reactor serving, see docs/rpc_multiloop.md):
// a fresh server per loop count (--loops, plus the 1-loop reference)
// takes --connections pipelined connections spread round-robin across
// its loops. Wire quotes are hard-checked bit-identical here too, and
// the steady-state quote path is asserted to perform ZERO heap
// allocations on the loop threads (operator-new accounting below, wired
// into RpcServerOptions::alloc_probe) — the buffer-pooling contract.
//   rpc-loops<N> / quotes-closed, quotes-open   wall seconds as above
#include <stdlib.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "db/parser.h"
#include "market/support_partitioner.h"
#include "serve/rpc/client.h"
#include "serve/rpc/server.h"
#include "serve/sharded_engine.h"

// Operator-new accounting for the zero-allocation assertion: counters
// are thread-local, so the probe (called by each loop thread at the end
// of its ticks) counts only that loop thread's allocations — client
// threads hammering the sockets never pollute the measurement.
namespace {
thread_local uint64_t tl_alloc_calls = 0;

void* CountedAlloc(std::size_t size) {
  ++tl_alloc_calls;
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::align_val_t alignment) {
  ++tl_alloc_calls;
  void* p = nullptr;
  std::size_t align =
      std::max(sizeof(void*), static_cast<std::size_t>(alignment));
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

uint64_t LoopAllocProbe() { return tl_alloc_calls; }
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t alignment) {
  return CountedAlignedAlloc(size, alignment);
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return CountedAlignedAlloc(size, alignment);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace qp::bench {
namespace {

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

bool QuotesEqual(const serve::Quote& a, const serve::Quote& b) {
  return a.price == b.price && a.version == b.version &&
         a.shard_versions == b.shard_versions && a.algorithm == b.algorithm;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string workload = flags.GetString("workload", "skewed");
  LoadOptions load = LoadOptionsFromFlags(flags);
  if (load.support == 0) load.support = 1200;
  int initial = flags.GetInt("initial", 300);
  int clients = flags.GetInt("clients", 4);
  int requests = flags.GetInt("requests", 2500);
  int window = flags.GetInt("window", 32);
  int purchases = flags.GetInt("purchases", 600);
  int shards = flags.GetInt("shards", 2);
  int loops = flags.GetInt("loops", 4);
  int connections = flags.GetInt("connections", 8);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  std::string json = flags.GetString("json", "");

  WorkloadMarket market = LoadWorkloadMarket(workload, load);
  const auto& queries = market.instance.queries;
  initial = std::min<int>(initial, static_cast<int>(queries.size()));

  Rng rng(Mix64(seed ^ 0xe17eULL));
  core::Valuations initial_v;
  for (int i = 0; i < initial; ++i) initial_v.push_back(rng.UniformReal(1, 20));

  // Same matched-replay engine options as the engine bench.
  serve::ShardedEngineOptions sharded_options;
  sharded_options.engine.algorithms.lpip.max_candidates = 0;
  sharded_options.num_threads = shards;

  std::vector<db::BoundQuery> initial_q(queries.begin(),
                                        queries.begin() + initial);
  market::SupportPartition partition = market::SupportPartitioner::FromQueries(
      market.instance.database.get(), market.support, initial_q, {},
      {.num_shards = shards});
  serve::ShardedPricingEngine engine(market.instance.database.get(), partition,
                                     sharded_options);
  QP_CHECK_OK(engine.AppendBuyers(initial_q, initial_v));
  double book_revenue = engine.snapshot().best_revenue();

  serve::rpc::RpcServer server(&engine, market.instance.database.get());
  QP_CHECK_OK(server.Start());

  BenchRecorder recorder;
  const std::string instance_name = "rpc-" + workload;
  std::cout << "=== RPC front-end: " << workload << " support="
            << market.support_size << " initial=" << initial << " shards="
            << shards << " port=" << server.port() << " ===\n";

  // Quote-able bundles: every shard edge, mapped back to global ids.
  std::vector<std::vector<uint32_t>> bundles;
  for (int s = 0; s < engine.num_shards(); ++s) {
    const auto& items = partition.shard_items[static_cast<size_t>(s)];
    const core::Hypergraph& graph = engine.shard(s).hypergraph();
    for (int e = 0; e < graph.num_edges(); ++e) {
      std::vector<uint32_t> bundle;
      for (uint32_t local : graph.edge(e)) bundle.push_back(items[local]);
      bundles.push_back(std::move(bundle));
    }
  }
  QP_CHECK_OK(bundles.empty()
                  ? Status::FailedPrecondition("no bundles to quote")
                  : Status::OK());

  // In-process reference answers: the book is static for the whole quote
  // phase, so every wire quote must match these bit for bit.
  std::vector<serve::Quote> reference;
  reference.reserve(bundles.size());
  for (const auto& bundle : bundles) {
    reference.push_back(engine.QuoteBundle(bundle));
  }

  const uint16_t port = server.port();
  std::atomic<bool> mismatch{false};

  // --- closed loop: one blocking round trip at a time per client -------
  std::vector<double> closed_latencies;
  double closed_seconds = 0.0;
  {
    std::vector<std::vector<double>> per_client(
        static_cast<size_t>(clients));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    Stopwatch wall;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c]() {
        serve::rpc::RpcClient client;
        QP_CHECK_OK(client.Connect("127.0.0.1", port));
        std::vector<double>& latencies =
            per_client[static_cast<size_t>(c)];
        latencies.reserve(static_cast<size_t>(requests));
        for (int i = 0; i < requests; ++i) {
          size_t idx = static_cast<size_t>(c * 31 + i) % bundles.size();
          serve::rpc::RpcReply reply;
          Stopwatch timer;
          QP_CHECK_OK(client.Quote(bundles[idx], &reply));
          latencies.push_back(timer.ElapsedSeconds());
          if (!reply.ok() || !QuotesEqual(reply.quote, reference[idx])) {
            mismatch.store(true);
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    closed_seconds = wall.ElapsedSeconds();
    for (auto& v : per_client) {
      closed_latencies.insert(closed_latencies.end(), v.begin(), v.end());
    }
  }
  QP_CHECK_OK(mismatch.load() ? Status::Internal(
                                    "wire quote diverged from in-process")
                              : Status::OK());
  std::sort(closed_latencies.begin(), closed_latencies.end());
  const int total_quotes = clients * requests;
  double closed_p50 = Percentile(closed_latencies, 0.50);
  double closed_p99 = Percentile(closed_latencies, 0.99);
  recorder.Add(instance_name, "quotes-closed", closed_seconds, total_quotes,
               book_revenue);
  recorder.Add(instance_name, "quotes-closed-p50", closed_p50, 0,
               book_revenue);
  recorder.Add(instance_name, "quotes-closed-p99", closed_p99, 0,
               book_revenue);
  std::cout << StrFormat(
      "closed loop: %d quotes x %d clients in %.3fs (%.0f/s, p50 %.0fus, "
      "p99 %.0fus)\n",
      requests, clients, closed_seconds,
      closed_seconds > 0 ? total_quotes / closed_seconds : 0.0,
      closed_p50 * 1e6, closed_p99 * 1e6);

  // --- open loop: --window outstanding per client, pipelined -----------
  std::vector<double> open_latencies;
  double open_seconds = 0.0;
  {
    std::vector<std::vector<double>> per_client(
        static_cast<size_t>(clients));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    Stopwatch wall;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c]() {
        serve::rpc::RpcClient client;
        QP_CHECK_OK(client.Connect("127.0.0.1", port));
        std::vector<double>& latencies =
            per_client[static_cast<size_t>(c)];
        latencies.reserve(static_cast<size_t>(requests));
        // id -> (bundle index, send time); replies arrive in server
        // order, which interleaves across the window.
        std::unordered_map<uint64_t, std::pair<size_t, Stopwatch>> inflight;
        int sent = 0, received = 0;
        while (received < requests) {
          while (sent < requests &&
                 inflight.size() < static_cast<size_t>(window)) {
            size_t idx =
                static_cast<size_t>(c * 37 + sent) % bundles.size();
            auto id = client.SendQuote(bundles[idx]);
            QP_CHECK_OK(id.status());
            inflight.emplace(*id, std::make_pair(idx, Stopwatch()));
            ++sent;
          }
          serve::rpc::RpcReply reply;
          QP_CHECK_OK(client.Receive(&reply));
          auto it = inflight.find(reply.request_id);
          if (it == inflight.end() || !reply.ok() ||
              !QuotesEqual(reply.quote, reference[it->second.first])) {
            mismatch.store(true);
            return;
          }
          latencies.push_back(it->second.second.ElapsedSeconds());
          inflight.erase(it);
          ++received;
        }
      });
    }
    for (auto& t : threads) t.join();
    open_seconds = wall.ElapsedSeconds();
    for (auto& v : per_client) {
      open_latencies.insert(open_latencies.end(), v.begin(), v.end());
    }
  }
  QP_CHECK_OK(mismatch.load() ? Status::Internal(
                                    "wire quote diverged from in-process")
                              : Status::OK());
  std::sort(open_latencies.begin(), open_latencies.end());
  double open_p50 = Percentile(open_latencies, 0.50);
  double open_p99 = Percentile(open_latencies, 0.99);
  recorder.Add(instance_name, "quotes-open", open_seconds, total_quotes,
               book_revenue);
  recorder.Add(instance_name, "quotes-open-p50", open_p50, 0, book_revenue);
  recorder.Add(instance_name, "quotes-open-p99", open_p99, 0, book_revenue);
  serve::rpc::RpcServerStats mid_stats = server.stats();
  std::cout << StrFormat(
      "open loop: %d quotes x %d clients (window %d) in %.3fs (%.0f/s, "
      "%.2fx closed, p50 %.0fus, p99 %.0fus)\n",
      requests, clients, window, open_seconds,
      open_seconds > 0 ? total_quotes / open_seconds : 0.0,
      open_seconds > 0 ? closed_seconds / open_seconds : 0.0, open_p50 * 1e6,
      open_p99 * 1e6);
  std::cout << StrFormat(
      "auto-batching: %llu quotes over %llu ticks (%.1f per engine "
      "QuoteBatch call)\n",
      static_cast<unsigned long long>(mid_stats.batched_quotes),
      static_cast<unsigned long long>(mid_stats.quote_ticks),
      mid_stats.quote_ticks > 0
          ? static_cast<double>(mid_stats.batched_quotes) /
                static_cast<double>(mid_stats.quote_ticks)
          : 0.0);

  // --- posted-price purchases over the wire ----------------------------
  // Valuations drawn once; acceptance is deterministic against the
  // static book, so the accepted count is gate-checkable.
  const int num_queries = static_cast<int>(queries.size());
  core::Valuations purchase_v;
  for (int i = 0; i < purchases; ++i) {
    purchase_v.push_back(rng.UniformReal(0.5, 60.0));
  }
  double purchase_seconds = 0.0;
  std::atomic<int64_t> accepted{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    std::atomic<int> next{0};
    Stopwatch wall;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&]() {
        serve::rpc::RpcClient client;
        QP_CHECK_OK(client.Connect("127.0.0.1", port));
        for (;;) {
          int i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= purchases) return;
          const db::BoundQuery& query =
              queries[static_cast<size_t>(i) % num_queries];
          serve::rpc::RpcReply reply;
          QP_CHECK_OK(client.Purchase(query.text, purchase_v[i], &reply));
          if (!reply.ok()) {
            mismatch.store(true);
            return;
          }
          if (reply.purchase.accepted) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    purchase_seconds = wall.ElapsedSeconds();
  }
  QP_CHECK_OK(mismatch.load()
                  ? Status::Internal("wire purchase failed")
                  : Status::OK());
  recorder.Add(instance_name, "purchases-wire", purchase_seconds,
               static_cast<int>(accepted.load()), book_revenue);
  std::cout << StrFormat(
      "purchases: %d over the wire on %d client(s) in %.3fs (%.0f/s, %d "
      "accepted)\n",
      purchases, clients, purchase_seconds,
      purchase_seconds > 0 ? purchases / purchase_seconds : 0.0,
      static_cast<int>(accepted.load()));

  serve::rpc::RpcServerStats stats = server.stats();
  std::cout << StrFormat(
      "server: %llu frames, %llu connections, %llu protocol errors, %llu "
      "writer rejections\n",
      static_cast<unsigned long long>(stats.frames_received),
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.protocol_errors),
      static_cast<unsigned long long>(stats.writer_rejected));
  server.Stop();

  // --- loop scaling: N reactors x --connections pipelined clients ------
  // One fresh server per loop count over the SAME (now static) engine.
  // Round-robin handoff makes the connection spread deterministic —
  // connections/loops per reactor regardless of kernel REUSEPORT
  // hashing — so the scaling numbers measure the reactors, not luck.
  // The book no longer changes, so the in-process reference answers are
  // recomputed once and every wire quote is hard-checked against them.
  reference.clear();
  for (const auto& bundle : bundles) {
    reference.push_back(engine.QuoteBundle(bundle));
  }
  double loops1_closed_qps = 0.0;

  for (int num_loops : std::vector<int>{1, loops}) {
    if (num_loops < 1) continue;
    serve::rpc::RpcServerOptions scaled_options;
    scaled_options.num_loops = num_loops;
    scaled_options.force_accept_handoff = true;
    scaled_options.alloc_probe = &LoopAllocProbe;
    serve::rpc::RpcServer scaled(&engine, market.instance.database.get(),
                                 scaled_options);
    QP_CHECK_OK(scaled.Start());
    const uint16_t scaled_port = scaled.port();
    const std::string scaled_name = "rpc-loops" + std::to_string(num_loops);

    // Persistent connections reused across warmup and both measured
    // phases: the per-connection buffer pools must reach their high-
    // water marks during warmup and then serve allocation-free.
    std::vector<serve::rpc::RpcClient> conns(
        static_cast<size_t>(connections));
    for (auto& conn : conns) {
      QP_CHECK_OK(conn.Connect("127.0.0.1", scaled_port));
    }

    // Warmup: (1) one oversized QuoteBatch per connection forces the
    // per-loop bundle arena, batch scratch and encode slots past any
    // tick the measured phases can produce (a measured tick batches at
    // most window * connections-per-loop quotes); (2) a full-volume
    // pipelined run matches the measured traffic shape so every grow-
    // only scratch reaches its steady state.
    {
      const size_t prime =
          std::min<size_t>(static_cast<size_t>(window) *
                               static_cast<size_t>(connections) + 1,
                           2048);
      // Every slot gets the LARGEST bundle: per-loop arena slots and
      // batch-scratch entries grow independently per index, so priming
      // them all to the workload's maximum is what guarantees the
      // measured phases never find an undersized slot.
      const std::vector<uint32_t>* largest = &bundles[0];
      for (const auto& bundle : bundles) {
        if (bundle.size() > largest->size()) largest = &bundle;
      }
      std::vector<std::vector<uint32_t>> prime_bundles(prime, *largest);
      for (auto& conn : conns) {
        serve::rpc::RpcReply reply;
        QP_CHECK_OK(conn.QuoteBatch(prime_bundles, &reply));
        QP_CHECK_OK(reply.ok() ? Status::OK()
                               : Status::Internal(reply.message));
      }
      std::vector<std::thread> threads;
      threads.reserve(conns.size());
      for (size_t c = 0; c < conns.size(); ++c) {
        threads.emplace_back([&, c]() {
          serve::rpc::RpcClient& conn = conns[c];
          std::unordered_map<uint64_t, size_t> inflight;
          int sent = 0, received = 0;
          while (received < requests) {
            while (sent < requests &&
                   inflight.size() < static_cast<size_t>(window)) {
              size_t idx = (c * 41 + static_cast<size_t>(sent)) %
                           bundles.size();
              auto id = conn.SendQuote(bundles[idx]);
              QP_CHECK_OK(id.status());
              inflight.emplace(*id, idx);
              ++sent;
            }
            serve::rpc::RpcReply reply;
            QP_CHECK_OK(conn.Receive(&reply));
            auto it = inflight.find(reply.request_id);
            if (it == inflight.end() || !reply.ok() ||
                !QuotesEqual(reply.quote, reference[it->second])) {
              mismatch.store(true);
              return;
            }
            inflight.erase(it);
            ++received;
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    QP_CHECK_OK(mismatch.load()
                    ? Status::Internal("wire quote diverged from in-process")
                    : Status::OK());

    // Allocation baseline: loop ticks store their thread's counter after
    // flushing, so once traffic quiesces the sums are stable.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const uint64_t allocs_before = scaled.alloc_probe_total();

    // Closed loop: one blocking round trip at a time per connection.
    std::vector<std::vector<double>> per_conn(conns.size());
    double scaled_closed_seconds = 0.0;
    {
      std::vector<std::thread> threads;
      threads.reserve(conns.size());
      Stopwatch wall;
      for (size_t c = 0; c < conns.size(); ++c) {
        threads.emplace_back([&, c]() {
          serve::rpc::RpcClient& conn = conns[c];
          std::vector<double>& latencies = per_conn[c];
          latencies.reserve(static_cast<size_t>(requests));
          for (int i = 0; i < requests; ++i) {
            size_t idx =
                (c * 31 + static_cast<size_t>(i)) % bundles.size();
            serve::rpc::RpcReply reply;
            Stopwatch timer;
            QP_CHECK_OK(conn.Quote(bundles[idx], &reply));
            latencies.push_back(timer.ElapsedSeconds());
            if (!reply.ok() || !QuotesEqual(reply.quote, reference[idx])) {
              mismatch.store(true);
              return;
            }
          }
        });
      }
      for (auto& t : threads) t.join();
      scaled_closed_seconds = wall.ElapsedSeconds();
    }
    QP_CHECK_OK(mismatch.load()
                    ? Status::Internal("wire quote diverged from in-process")
                    : Status::OK());
    const int scaled_total = connections * requests;
    recorder.Add(scaled_name, "quotes-closed", scaled_closed_seconds,
                 scaled_total, book_revenue);
    double scaled_closed_qps =
        scaled_closed_seconds > 0 ? scaled_total / scaled_closed_seconds : 0.0;
    if (num_loops == 1) loops1_closed_qps = scaled_closed_qps;
    std::cout << StrFormat(
        "loops=%d closed: %d quotes x %d connections in %.3fs (%.0f/s%s)\n",
        num_loops, requests, connections, scaled_closed_seconds,
        scaled_closed_qps,
        num_loops > 1 && loops1_closed_qps > 0
            ? StrFormat(", %.2fx loops=1", scaled_closed_qps / loops1_closed_qps)
                  .c_str()
            : "");
    for (size_t c = 0; c < per_conn.size(); ++c) {
      std::sort(per_conn[c].begin(), per_conn[c].end());
      std::cout << StrFormat("  conn %d: p50 %.0fus p99 %.0fus\n",
                             static_cast<int>(c),
                             Percentile(per_conn[c], 0.50) * 1e6,
                             Percentile(per_conn[c], 0.99) * 1e6);
    }

    // Open loop: --window outstanding per connection.
    for (auto& v : per_conn) v.clear();
    double scaled_open_seconds = 0.0;
    {
      std::vector<std::thread> threads;
      threads.reserve(conns.size());
      Stopwatch wall;
      for (size_t c = 0; c < conns.size(); ++c) {
        threads.emplace_back([&, c]() {
          serve::rpc::RpcClient& conn = conns[c];
          std::vector<double>& latencies = per_conn[c];
          latencies.reserve(static_cast<size_t>(requests));
          std::unordered_map<uint64_t, std::pair<size_t, Stopwatch>> inflight;
          int sent = 0, received = 0;
          while (received < requests) {
            while (sent < requests &&
                   inflight.size() < static_cast<size_t>(window)) {
              size_t idx =
                  (c * 37 + static_cast<size_t>(sent)) % bundles.size();
              auto id = conn.SendQuote(bundles[idx]);
              QP_CHECK_OK(id.status());
              inflight.emplace(*id, std::make_pair(idx, Stopwatch()));
              ++sent;
            }
            serve::rpc::RpcReply reply;
            QP_CHECK_OK(conn.Receive(&reply));
            auto it = inflight.find(reply.request_id);
            if (it == inflight.end() || !reply.ok() ||
                !QuotesEqual(reply.quote, reference[it->second.first])) {
              mismatch.store(true);
              return;
            }
            latencies.push_back(it->second.second.ElapsedSeconds());
            inflight.erase(it);
            ++received;
          }
        });
      }
      for (auto& t : threads) t.join();
      scaled_open_seconds = wall.ElapsedSeconds();
    }
    QP_CHECK_OK(mismatch.load()
                    ? Status::Internal("wire quote diverged from in-process")
                    : Status::OK());
    recorder.Add(scaled_name, "quotes-open", scaled_open_seconds, scaled_total,
                 book_revenue);
    std::cout << StrFormat(
        "loops=%d open: %d quotes x %d connections (window %d) in %.3fs "
        "(%.0f/s)\n",
        num_loops, requests, connections, window, scaled_open_seconds,
        scaled_open_seconds > 0 ? scaled_total / scaled_open_seconds : 0.0);
    for (size_t c = 0; c < per_conn.size(); ++c) {
      std::sort(per_conn[c].begin(), per_conn[c].end());
      std::cout << StrFormat("  conn %d: p50 %.0fus p99 %.0fus\n",
                             static_cast<int>(c),
                             Percentile(per_conn[c], 0.50) * 1e6,
                             Percentile(per_conn[c], 0.99) * 1e6);
    }

    // Zero-allocation assertion: across BOTH measured phases no loop
    // thread may have allocated — decode, batch pricing, encode and
    // flush all ran out of pooled/grow-only storage primed by warmup.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const uint64_t allocs_after = scaled.alloc_probe_total();
    serve::rpc::RpcServerStats scaled_stats = scaled.stats();
    std::cout << StrFormat(
        "loops=%d server: %llu writev calls (%.1f frames each), %llu pool "
        "hits, %llu pooled bytes, %llu loop-thread allocs in measured "
        "phases\n",
        num_loops, static_cast<unsigned long long>(scaled_stats.writev_calls),
        scaled_stats.writev_calls > 0
            ? static_cast<double>(scaled_stats.writev_frames) /
                  static_cast<double>(scaled_stats.writev_calls)
            : 0.0,
        static_cast<unsigned long long>(scaled_stats.pool_hits),
        static_cast<unsigned long long>(scaled_stats.pool_bytes),
        static_cast<unsigned long long>(allocs_after - allocs_before));
    QP_CHECK_OK(allocs_after == allocs_before
                    ? Status::OK()
                    : Status::Internal(StrFormat(
                          "steady-state quote path allocated %llu times on "
                          "loop threads (loops=%d)",
                          static_cast<unsigned long long>(allocs_after -
                                                          allocs_before),
                          num_loops)));
    scaled.Stop();
  }

  if (!recorder.WriteJson(json)) return 1;
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
