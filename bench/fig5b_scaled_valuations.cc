// Figure 5(b): normalized revenue under *scaled* bundle valuations
// (Exponential(mean=|e|^kappa) and Normal(mu=|e|^kappa, sigma^2=10)) on
// the skewed and uniform workloads, kappa in {2, 3/2, 1, 1/2, 1/4}.
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "core/valuation.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions load = LoadOptionsFromFlags(flags);
  int runs = flags.GetInt("runs", 1);
  std::cout << "=== Figure 5b: scaled bundle valuations "
               "(skewed + uniform workloads) ===\n";
  TablePrinter table({"workload", "config", "algorithm", "norm-revenue",
                      "seconds"});
  const double kappas[] = {2.0, 1.5, 1.0, 0.5, 0.25};
  for (const char* name : {"skewed", "uniform"}) {
    WorkloadHypergraph wh = LoadWorkloadHypergraph(name, load);
    core::AlgorithmOptions options = AlgorithmOptionsFor(wh, flags);
    for (double kappa : kappas) {
      RunConfigRow(table, wh, StrCat("exp k=", FormatDouble(kappa, 2)),
                   [&](Rng& rng) {
                     return core::ScaleExponentialValuations(wh.hypergraph,
                                                             kappa, rng);
                   },
                   runs, options, load.seed);
    }
    for (double kappa : kappas) {
      RunConfigRow(table, wh, StrCat("normal k=", FormatDouble(kappa, 2)),
                   [&](Rng& rng) {
                     return core::ScaleNormalValuations(wh.hypergraph, kappa,
                                                        rng);
                   },
                   runs, options, load.seed);
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
