// Figure 7(b): the additive item-price valuation model on SSB and TPC-H,
// plus the Section-6.3 post-processing experiment: refining the best
// uniform bundle price into an item pricing via one LP (the paper reports
// 0.78 -> 0.99 normalized revenue on TPC-H, k = 1, Uniform levels).
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "core/bounds.h"
#include "core/valuation.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions load = LoadOptionsFromFlags(flags);
  int runs = flags.GetInt("runs", 1);
  std::cout << "=== Figure 7b: sampled item prices (SSB + TPC-H) ===\n";
  TablePrinter table({"workload", "config", "algorithm", "norm-revenue",
                      "seconds"});
  const uint64_t ks[] = {1, 10, 100, 1000, 5000, 10000};
  for (const char* name : {"ssb", "tpch"}) {
    WorkloadHypergraph wh = LoadWorkloadHypergraph(name, load);
    core::AlgorithmOptions options = AlgorithmOptionsFor(wh, flags);
    for (uint64_t k : ks) {
      RunConfigRow(table, wh, StrCat("D~unif[1,", k, "]"),
                   [&](Rng& rng) {
                     return core::AdditiveItemValuations(
                         wh.hypergraph, core::LevelDistribution::kUniform, k,
                         rng);
                   },
                   runs, options, load.seed);
    }
    for (uint64_t k : ks) {
      RunConfigRow(table, wh, StrCat("D~bin(", k, ",0.5)"),
                   [&](Rng& rng) {
                     return core::AdditiveItemValuations(
                         wh.hypergraph, core::LevelDistribution::kBinomial, k,
                         rng);
                   },
                   runs, options, load.seed);
    }
    // UBP -> item LP refinement (k = 1, uniform levels), Section 6.3.
    Rng rng(Mix64(load.seed ^ 0x7b));
    core::Valuations v = core::AdditiveItemValuations(
        wh.hypergraph, core::LevelDistribution::kUniform, 1, rng);
    double total = core::SumOfValuations(v);
    core::PricingResult ubp = core::RunUbp(wh.hypergraph, v);
    auto refined = core::RefineUbpWithItemLp(wh.hypergraph, v);
    table.AddRow({wh.name, "refine k=1", "UBP",
                  StrFormat("%.4f", ubp.revenue / total),
                  StrFormat("%.3f", ubp.seconds)});
    if (refined.has_value()) {
      table.AddRow({wh.name, "refine k=1", "UBP+LP",
                    StrFormat("%.4f", refined->revenue / total),
                    StrFormat("%.3f", refined->seconds)});
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
