// Figure 8: normalized revenue as a function of the support set size, with
// valuations ~ Uniform[1,100]: (a) skewed workload, (b) SSB.
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "core/valuation.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions base = LoadOptionsFromFlags(flags);
  int runs = flags.GetInt("runs", 1);
  std::cout << "=== Figure 8: revenue vs support set size "
               "(valuations Uniform[1,100]) ===\n";
  TablePrinter table({"workload", "config", "algorithm", "norm-revenue",
                      "seconds"});
  struct Sweep {
    const char* workload;
    std::vector<int> sizes;
  };
  // Paper: skewed sweeps 100..15000; SSB sweeps 1000..100000 (scaled here;
  // pass --paper for the full grid).
  std::vector<Sweep> sweeps = {
      {"skewed", flags.paper() ? std::vector<int>{100, 500, 1000, 5000, 15000}
                               : std::vector<int>{100, 500, 1000, 3000, 6000}},
      {"ssb", flags.paper()
                  ? std::vector<int>{1000, 5000, 10000, 50000, 100000}
                  : std::vector<int>{500, 1000, 3000, 6000}},
  };
  for (const Sweep& sweep : sweeps) {
    for (int support : sweep.sizes) {
      LoadOptions load = base;
      load.support = support;
      WorkloadHypergraph wh = LoadWorkloadHypergraph(sweep.workload, load);
      core::AlgorithmOptions options = AlgorithmOptionsFor(wh, flags);
      RunConfigRow(table, wh, StrCat("|S|=", support),
                   [&](Rng& rng) {
                     return core::SampleUniformValuations(wh.hypergraph, 100,
                                                          rng);
                   },
                   runs, options, load.seed);
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
