// Table 4: algorithm running times per workload (seconds), with the
// hypergraph-construction time reported separately — the paper folds it
// into the item-pricing columns for SSB / TPC-H ("1300 + 13" style).
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "core/valuation.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions load = LoadOptionsFromFlags(flags);
  std::string json_path = flags.GetString("json", "");
  BenchRecorder recorder;
  std::cout << "=== Table 4: algorithm running times (seconds) ===\n";
  TablePrinter table({"workload", "construction", "LPIP", "UBP", "UIP", "CIP",
                      "Layering"});
  for (const char* name : {"skewed", "uniform", "ssb", "tpch"}) {
    WorkloadHypergraph wh = LoadWorkloadHypergraph(name, load);
    core::AlgorithmOptions options = AlgorithmOptionsFor(wh, flags);
    Rng rng(Mix64(load.seed ^ 0x44));
    core::Valuations v = core::SampleUniformValuations(wh.hypergraph, 100, rng);
    auto results = core::RunAllAlgorithms(wh.hypergraph, v, options);
    recorder.AddAll(wh.name, results);
    auto seconds_of = [&](const char* alg) {
      for (const auto& r : results) {
        if (r.algorithm == alg) return StrFormat("%.3f", r.seconds);
      }
      return std::string("-");
    };
    table.AddRow({wh.name, StrFormat("%.2f", wh.build_seconds),
                  seconds_of("LPIP"), seconds_of("UBP"), seconds_of("UIP"),
                  seconds_of("CIP"), seconds_of("Layering")});
  }
  table.Print(std::cout);
  std::cout << "(relative ordering in the paper: UBP < Layering ~ UIP < LPIP "
               "< CIP; construction dominates for SSB/TPC-H)\n";
  if (!recorder.WriteJson(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
