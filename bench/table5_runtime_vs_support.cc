// Table 5: running times (seconds) for the skewed workload as a function
// of the support set size, *including* hypergraph construction time,
// exactly as the paper reports it.
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "core/valuation.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions base = LoadOptionsFromFlags(flags);
  std::string json_path = flags.GetString("json", "");
  BenchRecorder recorder;
  std::cout << "=== Table 5: runtimes vs support size "
               "(skewed, incl. construction) ===\n";
  TablePrinter table({"|S|", "construction", "LPIP", "UBP", "UIP", "CIP",
                      "Layering"});
  std::vector<int> sizes = flags.paper()
                               ? std::vector<int>{100, 500, 1000, 5000, 15000}
                               : std::vector<int>{100, 500, 1000, 3000, 6000};
  for (int support : sizes) {
    LoadOptions load = base;
    load.support = support;
    WorkloadHypergraph wh = LoadWorkloadHypergraph("skewed", load);
    core::AlgorithmOptions options = AlgorithmOptionsFor(wh, flags);
    Rng rng(Mix64(load.seed ^ 0x55));
    core::Valuations v = core::SampleUniformValuations(wh.hypergraph, 100, rng);
    auto results = core::RunAllAlgorithms(wh.hypergraph, v, options);
    recorder.AddAll(StrFormat("skewed-s%d", support), results);
    auto with_build = [&](const char* alg, bool include_build) {
      for (const auto& r : results) {
        if (r.algorithm == alg) {
          return StrFormat("%.2f",
                           r.seconds + (include_build ? wh.build_seconds : 0));
        }
      }
      return std::string("-");
    };
    // Item-pricing algorithms need the conflict sets; UBP does not
    // (Section 6.4: "for uniform bundle pricing, we need not take that
    // into account").
    table.AddRow({std::to_string(support), StrFormat("%.2f", wh.build_seconds),
                  with_build("LPIP", true), with_build("UBP", false),
                  with_build("UIP", true), with_build("CIP", true),
                  with_build("Layering", true)});
  }
  table.Print(std::cout);
  if (!recorder.WriteJson(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
