// Ablation: LPIP threshold-candidate subsampling. The paper solves one LP
// per edge; this bench shows revenue as a function of the candidate budget
// (log-spread over the sorted valuations) — justifying the bench default.
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "core/bounds.h"
#include "core/valuation.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions load = LoadOptionsFromFlags(flags);
  std::cout << "=== Ablation: LPIP candidate budget ===\n";
  TablePrinter table({"workload", "candidates", "lps-solved", "norm-revenue",
                      "seconds"});
  for (const char* name : {"skewed", "tpch"}) {
    WorkloadHypergraph wh = LoadWorkloadHypergraph(name, load);
    Rng rng(Mix64(load.seed ^ 0xa1));
    core::Valuations v = core::SampleUniformValuations(wh.hypergraph, 100, rng);
    double total = core::SumOfValuations(v);
    for (int candidates : {2, 4, 8, 16, 32, 64}) {
      core::LpipOptions options;
      options.classes = &wh.classes;
      options.max_candidates = candidates;
      core::PricingResult r = core::RunLpip(wh.hypergraph, v, options);
      table.AddRow({wh.name, std::to_string(candidates),
                    std::to_string(r.lps_solved),
                    StrFormat("%.4f", r.revenue / total),
                    StrFormat("%.3f", r.seconds)});
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
