// Figure 5(a): normalized revenue under *sampled* bundle valuations
// (Uniform[1,k] for k in {100..500} and Zipf(a) for a in {1.5..2.5}) on
// the skewed and uniform workloads.
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "core/valuation.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions load = LoadOptionsFromFlags(flags);
  int runs = flags.GetInt("runs", 1);
  std::cout << "=== Figure 5a: sampled bundle valuations "
               "(skewed + uniform workloads) ===\n";
  TablePrinter table({"workload", "config", "algorithm", "norm-revenue",
                      "seconds"});
  for (const char* name : {"skewed", "uniform"}) {
    WorkloadHypergraph wh = LoadWorkloadHypergraph(name, load);
    core::AlgorithmOptions options = AlgorithmOptionsFor(wh, flags);
    for (int k : {100, 200, 300, 400, 500}) {
      RunConfigRow(table, wh, StrCat("uniform[1,", k, "]"),
                   [&](Rng& rng) {
                     return core::SampleUniformValuations(wh.hypergraph, k, rng);
                   },
                   runs, options, load.seed);
    }
    for (double a : {1.5, 1.75, 2.0, 2.25, 2.5}) {
      RunConfigRow(table, wh, StrCat("zipf a=", FormatDouble(a, 2)),
                   [&](Rng& rng) {
                     return core::SampleZipfValuations(wh.hypergraph, a, rng);
                   },
                   runs, options, load.seed);
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
