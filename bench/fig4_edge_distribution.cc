// Figure 4: hyperedge (conflict-set) size distribution for the four query
// workloads. Prints a bucketed histogram per workload plus the summary
// statistics that Table 3 reads off this distribution.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"

namespace qp::bench {
namespace {

void Histogram(const WorkloadHypergraph& wh, TablePrinter& table) {
  std::vector<int> sizes;
  for (int e = 0; e < wh.hypergraph.num_edges(); ++e) {
    sizes.push_back(wh.hypergraph.edge_size(e));
  }
  int max_size = sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  // 12 equal-width buckets (the paper plots raw histograms; buckets keep
  // the text output readable).
  int buckets = 12;
  int width = std::max(1, (max_size + buckets - 1) / buckets);
  std::vector<int> counts(buckets + 1, 0);
  int zero_edges = 0;
  for (int s : sizes) {
    if (s == 0) ++zero_edges;
    counts[std::min(buckets, s / width)]++;
  }
  table.AddRow({wh.name, "edges", std::to_string(sizes.size()), "", ""});
  table.AddRow({wh.name, "zero-size edges", std::to_string(zero_edges), "", ""});
  for (int b = 0; b <= buckets; ++b) {
    if (counts[b] == 0) continue;
    table.AddRow({wh.name,
                  StrCat("|e| in [", b * width, ",", (b + 1) * width, ")"),
                  std::to_string(counts[b]), "", ""});
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions load = LoadOptionsFromFlags(flags);
  std::cout << "=== Figure 4: hyperedge size distribution ===\n";
  TablePrinter table({"workload", "bucket", "count", "", ""});
  for (const char* name : {"skewed", "uniform", "tpch", "ssb"}) {
    WorkloadHypergraph wh = LoadWorkloadHypergraph(name, load);
    Histogram(wh, table);
    std::cout << wh.name << ": n=" << wh.hypergraph.num_items()
              << " " << wh.hypergraph.StatsString()
              << " (built in " << StrFormat("%.2f", wh.build_seconds)
              << "s)\n";
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
