// Extension bench (paper Section 7.2, "Learning buyer valuations"):
// EXP3 posted-price learning against single-minded buyer streams, with
// regret measured against the best fixed grid price in hindsight — plus
// the same streams priced by the serving engine's published book, which
// knows the market's valuations and therefore bounds what bandit
// feedback alone can hope to recover.
#include <iostream>

#include "bench/bench_util.h"
#include "common/distributions.h"
#include "common/hash.h"
#include "common/str_util.h"
#include "core/online.h"
#include "serve/pricing_engine.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  int rounds = flags.GetInt("rounds", 20000);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  std::cout << "=== Extension: online posted pricing (EXP3) ===\n";
  TablePrinter table({"buyer stream", "rounds", "best fixed price",
                      "best fixed revenue", "EXP3 revenue", "regret %"});

  core::OnlinePricingOptions options;
  options.min_price = 1.0;
  options.max_price = 1024.0;
  options.grid_size = 11;
  options.gamma = flags.GetDouble("gamma", 0.2);

  struct Stream {
    const char* label;
    std::function<double(Rng&)> draw;
  };
  ZipfDistribution zipf(1024, 1.8);
  std::vector<Stream> streams = {
      {"fixed v=64", [](Rng&) { return 64.0; }},
      {"uniform[1,512]", [](Rng& r) { return r.UniformReal(1, 512); }},
      {"zipf(1.8)", [&](Rng& r) { return double(zipf.Sample(r)); }},
      {"bimodal 8/256",
       [](Rng& r) { return r.Bernoulli(0.7) ? 8.0 : 256.0; }},
  };
  for (const Stream& stream : streams) {
    Rng rng(Mix64(seed ^ HashBytes(stream.label)));
    std::vector<double> buyers;
    buyers.reserve(rounds);
    for (int t = 0; t < rounds; ++t) buyers.push_back(stream.draw(rng));
    core::OnlineSimulationResult result =
        core::SimulateOnlinePricing(buyers, options, seed);
    table.AddRow({stream.label, std::to_string(rounds),
                  StrFormat("%.1f", result.best_fixed_price),
                  StrFormat("%.0f", result.best_fixed_revenue),
                  StrFormat("%.0f", result.learner_revenue),
                  StrFormat("%.1f%%",
                            100.0 * result.regret /
                                std::max(1.0, result.best_fixed_revenue))});
  }
  table.Print(std::cout);
  std::cout << "(regret shrinks with horizon; rerun with --rounds=100000)\n\n";

  // Engine-backed act: repeat buyers of one bundle against the serving
  // engine's *published* book — the informed-broker upper line the bandit
  // chases. The engine knows each cohort's valuations (AppendBuyers), so
  // its posted price is the revenue-maximal one for the realized market,
  // while EXP3 sees accept/reject bits only.
  std::cout << "=== Same streams vs the serving engine's posted book ===\n";
  WorkloadMarket market =
      LoadWorkloadMarket("skewed", {.support = 400, .seed = seed});
  const int cohort = std::min<int>(60, market.instance.queries.size());
  serve::PricingEngine engine(market.instance.database.get(), market.support,
                              {});
  {
    std::vector<db::BoundQuery> queries(market.instance.queries.begin(),
                                        market.instance.queries.begin() +
                                            cohort);
    Rng vrng(Mix64(seed ^ 0xc0ffeeULL));
    core::Valuations valuations;
    for (int i = 0; i < cohort; ++i) {
      valuations.push_back(vrng.UniformReal(1, 256));
    }
    QP_CHECK_OK(engine.AppendBuyers(queries, valuations));
  }
  TablePrinter engine_table({"buyer stream", "bundle price (book)",
                             "engine revenue", "EXP3 revenue",
                             "EXP3 / engine"});
  const std::vector<uint32_t> bundle = engine.hypergraph().edge(0);
  const double posted = engine.QuoteBundle(bundle).price;
  for (const Stream& stream : streams) {
    Rng rng(Mix64(seed ^ HashBytes(stream.label)));
    double engine_revenue = 0.0;
    std::vector<double> buyers;
    buyers.reserve(rounds);
    for (int t = 0; t < rounds; ++t) {
      double valuation = stream.draw(rng);
      buyers.push_back(valuation);
      if (posted <= valuation + core::kSellTolerance) {
        engine_revenue += posted;
      }
    }
    core::OnlineSimulationResult exp3 =
        core::SimulateOnlinePricing(buyers, options, seed);
    engine_table.AddRow(
        {stream.label, StrFormat("%.2f", posted),
         StrFormat("%.0f", engine_revenue),
         StrFormat("%.0f", exp3.learner_revenue),
         StrFormat("%.2f", exp3.learner_revenue /
                               std::max(1.0, engine_revenue))});
  }
  engine_table.Print(std::cout);
  std::cout << "(book price fixed per market; EXP3 must find it from "
               "accept/reject feedback alone)\n";
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
