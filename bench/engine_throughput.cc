// Serving-engine bench: concurrent quote/purchase throughput against a
// published PriceBookSnapshot, and incremental reprice latency after
// buyer-batch arrivals versus full recompute.
//
//   ./build/bench/engine_throughput
//   ./build/bench/engine_throughput --workload=skewed --support=1200
//       --initial=300 --batches=4 --batch=25 --quotes=200000
//       --purchases=600 --pthreads=8 --threads=2 --json=out.json
//
// JSON records (one per phase, regression-gated like Table 4):
//   solve-initial        seed the engine with the initial buyer set
//                        (--threads > 1 parallelizes the hypergraph build)
//   quotes               serve --quotes bundle quotes (seconds = wall time)
//   quote-batch          the same quotes through QuoteBatch (--qbatch per
//                        call: one snapshot pin + stats update per batch)
//   purchases-serial     --purchases posted-price interactions, 1 thread
//   purchases-concurrent the same purchases on --pthreads threads — the
//                        read-only overlay probe path; versus the PR 3
//                        engine these no longer serialize on the writer
//                        mutex (lps_solved records accepted sales, which
//                        are deterministic; revenue reports the book)
//   reprice-incremental  total reprice latency across the arrival batches
//   reprice-cold         the same batches re-priced by cold RunAllAlgorithms
//   solve-sharded        the initial buyer set through the sharded router
//                        (--shards engines over a support partition seeded
//                        with the corpus's conflict sets; --sthreads fans
//                        appends/solves across shards, default = --shards)
//   purchases-sharded    the purchase stream against the sharded router on
//                        --pthreads threads (accepted sales as lps_solved)
//   reprice-sharded      the arrival batches through the router — shard-
//                        local incremental reprices running in parallel
//   checkpoint-write     serialize the grown sharded book (all shards +
//                        manifest) through CheckpointManager::Attach
//   restore-warm         recover the checkpoint into a fresh router:
//                        lps_solved pins at 0 (nothing repriced) and the
//                        revenue bits match the live book exactly, at a
//                        fraction of solve-sharded's cost
//   publish-deepcopy     --publishes single-buyer appends through a
//                        consolidate_every=1 engine — every generation
//                        deep-copies a full PriceBookSnapshot (the
//                        pre-delta publish path)
//   publish-delta        the same appends through the delta-chain engine
//                        (default consolidate cadence): compact delta
//                        records between consolidations. The bench
//                        hard-fails unless the two engines' final books
//                        quote bit-identically over every corpus bundle
//                        AND the delta run allocated strictly fewer
//                        bytes (global operator-new accounting)
//   mixed-readwrite-deepcopy / mixed-readwrite
//                        the same publish stream with --qthreads reader
//                        threads hammering QuoteBundle throughout (the
//                        sustained mixed update+quote regime); seconds
//                        is the writer's wall clock, quote throughput
//                        and epoch-pin counters are printed, and the
//                        final books are again checked bit-identical
//   churn-updates        sustained catalog churn: --churn-writers threads
//                        race --churn-updates seller deltas (the
//                        workload's own support cells) through
//                        ApplySellerDelta while --churn-readers threads
//                        quote + purchase throughout — fully concurrent,
//                        no quiescence. seconds is the writers' wall
//                        clock; lps_solved pins the delta count. The
//                        bench hard-fails unless every logical cell AND
//                        every corpus quote afterwards is bit-identical
//                        to a twin engine that applied the same deltas
//                        serially with no traffic
//   churn-quotes         the same window from the readers' side (quote +
//                        purchase throughput is printed; the row pins
//                        the window and the book revenue)
//   churn-fold           cumulative wall time inside catalog folds,
//                        measured on the serial reference twin where
//                        every cadence-triggered fold lands (lps_solved
//                        pins the fold count; under saturated read load
//                        the churned run legitimately defers its folds —
//                        both runs' fold/retry counts and the purchase
//                        staleness are printed)
//
// Sharded revenues are the merged (sum of per-shard best) book revenue;
// they are deterministic and pinned, but deliberately NOT compared to the
// monolithic rows — per-shard optimization is allowed to beat the single
// global book.
#include <stdlib.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "market/support.h"
#include "market/support_partitioner.h"
#include "serve/persist/checkpoint.h"
#include "serve/pricing_engine.h"
#include "serve/sharded_engine.h"

// Operator-new accounting for the publish-cost phases: the bench
// compares bytes allocated by delta-chain publishes against deep-copy
// publishes. The counters are thread-local — uncontended, so the
// instrumentation does not perturb the allocation-heavy timed phases —
// and the publish loops run (and read them) on the main thread.
namespace {
thread_local uint64_t tl_alloc_bytes = 0;
thread_local uint64_t tl_alloc_calls = 0;

void* CountedAlloc(std::size_t size) {
  tl_alloc_bytes += size;
  ++tl_alloc_calls;
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::align_val_t alignment) {
  tl_alloc_bytes += size;
  ++tl_alloc_calls;
  void* p = nullptr;
  std::size_t align =
      std::max(sizeof(void*), static_cast<std::size_t>(alignment));
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t alignment) {
  return CountedAlignedAlloc(size, alignment);
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return CountedAlignedAlloc(size, alignment);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string workload = flags.GetString("workload", "skewed");
  LoadOptions load = LoadOptionsFromFlags(flags);
  if (load.support == 0) load.support = 1200;
  int initial = flags.GetInt("initial", 300);
  int batches = flags.GetInt("batches", 4);
  int batch = flags.GetInt("batch", 25);
  int quotes = flags.GetInt("quotes", 200000);
  int quote_threads = flags.GetInt("qthreads", 2);
  int quote_batch = flags.GetInt("qbatch", 64);
  int purchases = flags.GetInt("purchases", 600);
  int purchase_threads = flags.GetInt("pthreads", 8);
  int shards = flags.GetInt("shards", 4);
  int shard_threads = flags.GetInt("sthreads", shards);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  std::string json = flags.GetString("json", "");

  WorkloadMarket market = LoadWorkloadMarket(workload, load);
  const auto& queries = market.instance.queries;
  initial = std::min<int>(initial, static_cast<int>(queries.size()));
  const int arrivals =
      std::min<int>(batches * batch, static_cast<int>(queries.size()) - initial);
  batches = batch > 0 ? (arrivals + batch - 1) / std::max(1, batch) : 0;

  // Buyer valuations: the initial market draws from the usual sampled
  // range; late arrivals are long-tail buyers below the initial
  // thresholds — the regime incremental repricing exploits.
  Rng rng(Mix64(seed ^ 0xe17eULL));
  core::Valuations initial_v, arrival_v;
  for (int i = 0; i < initial; ++i) initial_v.push_back(rng.UniformReal(1, 20));
  for (int i = 0; i < arrivals; ++i) {
    arrival_v.push_back(rng.UniformReal(0.25, 4.0));
  }

  serve::EngineOptions engine_options;
  engine_options.algorithms.lpip.max_candidates = 0;
  engine_options.algorithms.lpip.num_threads = flags.GetInt("threads", 1);
  engine_options.algorithms.cip.num_threads =
      engine_options.algorithms.lpip.num_threads;
  // --threads also fans out hypergraph (conflict set) construction;
  // conflict sets — and therefore revenues — are bit-identical for every
  // value.
  engine_options.build.num_threads = engine_options.algorithms.lpip.num_threads;
  // Prepared-query cache bound (0 = unbounded); eviction counts land in
  // the prepared stats printed with the purchase phases.
  engine_options.build.prepared_cache_entries = static_cast<size_t>(
      flags.GetInt("cache-entries",
                   static_cast<int>(engine_options.build.prepared_cache_entries)));

  BenchRecorder recorder;
  const std::string instance_name = "engine-" + workload;
  std::cout << "=== Serving engine: " << workload << " support="
            << market.support_size << " initial=" << initial << " arrivals="
            << arrivals << " ===\n";

  // Phase 1: seed the engine with the initial buyer set.
  serve::PricingEngine engine(market.instance.database.get(), market.support,
                              engine_options);
  {
    std::vector<db::BoundQuery> q(queries.begin(), queries.begin() + initial);
    QP_CHECK_OK(engine.AppendBuyers(q, initial_v));
  }
  auto seeded = engine.snapshot();
  core::RepriceStats seed_stats = engine.stats().last_reprice;
  recorder.Add(instance_name, "solve-initial", seed_stats.seconds,
               seed_stats.lps_solved, seeded->best().revenue);
  std::cout << StrFormat(
      "initial solve: %.3fs, %d LPs, best %s revenue %.2f (hypergraph: %s)\n",
      seed_stats.seconds, seed_stats.lps_solved,
      seeded->best().algorithm.c_str(), seeded->best().revenue,
      engine.hypergraph().StatsString().c_str());

  // Phase 2: concurrent quote serving against the published snapshot.
  std::vector<std::vector<uint32_t>> bundles;
  for (int e = 0; e < engine.hypergraph().num_edges(); ++e) {
    bundles.push_back(engine.hypergraph().edge(e));
  }
  double quote_seconds = 0.0;
  if (!bundles.empty() && quotes > 0) {
    common::ThreadPool pool(quote_threads);
    Stopwatch timer;
    pool.ParallelFor(quotes, [&](int i) {
      engine.QuoteBundle(bundles[static_cast<size_t>(i) % bundles.size()]);
    });
    quote_seconds = timer.ElapsedSeconds();
  }
  recorder.Add(instance_name, "quotes", quote_seconds, 0,
               seeded->best().revenue);
  std::cout << StrFormat("quotes: %d on %d thread(s) in %.3fs (%.0f/s)\n",
                         quotes, quote_threads, quote_seconds,
                         quote_seconds > 0 ? quotes / quote_seconds : 0.0);

  // Phase 2b: the same quote volume through QuoteBatch — one snapshot pin
  // and one stats update per --qbatch bundles.
  double batch_seconds = 0.0;
  if (!bundles.empty() && quotes > 0 && quote_batch > 0) {
    std::vector<std::vector<uint32_t>> batch;
    batch.reserve(quote_batch);
    for (int i = 0; i < quote_batch; ++i) {
      batch.push_back(bundles[static_cast<size_t>(i) % bundles.size()]);
    }
    const int calls = (quotes + quote_batch - 1) / quote_batch;
    common::ThreadPool pool(quote_threads);
    Stopwatch timer;
    pool.ParallelFor(calls, [&](int) { engine.QuoteBatch(batch); });
    batch_seconds = timer.ElapsedSeconds();
  }
  recorder.Add(instance_name, "quote-batch", batch_seconds, 0,
               seeded->best().revenue);
  std::cout << StrFormat(
      "quote-batch: %d quotes in batches of %d in %.3fs (%.0f/s, %.2fx "
      "unbatched)\n",
      quotes, quote_batch, batch_seconds,
      batch_seconds > 0 ? quotes / batch_seconds : 0.0,
      batch_seconds > 0 ? quote_seconds / batch_seconds : 0.0);

  // Phase 2c: posted-price purchases — the full reader path (overlay
  // conflict probe + quote + atomic sale accounting), serial then
  // concurrent. Purchases do not grow the market, so the later reprice
  // phases see the same instance either way. Valuations are drawn once;
  // accepted counts are deterministic because every purchase prices
  // against the same pinned generation.
  const int num_queries = static_cast<int>(queries.size());
  core::Valuations purchase_v;
  for (int i = 0; i < purchases; ++i) {
    purchase_v.push_back(rng.UniformReal(0.5, 60.0));
  }
  auto run_purchases = [&](int threads) {
    common::ThreadPool pool(threads);
    std::atomic<int64_t> accepted{0};
    Stopwatch timer;
    pool.ParallelFor(purchases, [&](int i) {
      serve::PurchaseOutcome outcome = engine.Purchase(
          queries[static_cast<size_t>(i) % num_queries], purchase_v[i]);
      if (outcome.accepted) accepted.fetch_add(1, std::memory_order_relaxed);
    });
    return std::pair<double, int64_t>(timer.ElapsedSeconds(), accepted.load());
  };
  auto [serial_seconds, serial_accepted] = run_purchases(1);
  recorder.Add(instance_name, "purchases-serial", serial_seconds,
               static_cast<int>(serial_accepted), seeded->best().revenue);
  std::cout << StrFormat("purchases: %d serial in %.3fs (%.0f/s, %d accepted)\n",
                         purchases, serial_seconds,
                         serial_seconds > 0 ? purchases / serial_seconds : 0.0,
                         static_cast<int>(serial_accepted));
  auto [conc_seconds, conc_accepted] = run_purchases(purchase_threads);
  recorder.Add(instance_name, "purchases-concurrent", conc_seconds,
               static_cast<int>(conc_accepted), seeded->best().revenue);
  std::cout << StrFormat(
      "purchases: %d on %d thread(s) in %.3fs (%.0f/s, %.2fx serial, %d "
      "accepted)\n",
      purchases, purchase_threads, conc_seconds,
      conc_seconds > 0 ? purchases / conc_seconds : 0.0,
      conc_seconds > 0 ? serial_seconds / conc_seconds : 0.0,
      static_cast<int>(conc_accepted));
  market::PreparedQueryCache::Stats prepared = engine.stats().prepared;
  std::cout << StrFormat(
      "prepared cache: %d hits, %d misses, %d evictions, %d entries "
      "(cap %d)\n",
      static_cast<int>(prepared.hits), static_cast<int>(prepared.misses),
      static_cast<int>(prepared.evictions),
      static_cast<int>(prepared.entries),
      static_cast<int>(engine_options.build.prepared_cache_entries));

  // Phase 3: buyer-batch arrivals, repriced incrementally.
  double reprice_seconds = 0.0;
  int reprice_lps = 0, reused = 0;
  for (int b = 0; b < batches; ++b) {
    int begin = initial + b * batch;
    int end = std::min(initial + arrivals, begin + batch);
    std::vector<db::BoundQuery> q(queries.begin() + begin,
                                  queries.begin() + end);
    core::Valuations v(arrival_v.begin() + (begin - initial),
                       arrival_v.begin() + (end - initial));
    QP_CHECK_OK(engine.AppendBuyers(q, v));
    core::RepriceStats stats = engine.stats().last_reprice;
    reprice_seconds += stats.seconds;
    reprice_lps += stats.lps_solved;
    reused += stats.lpip_reused;
  }
  recorder.Add(instance_name, "reprice-incremental", reprice_seconds,
               reprice_lps, engine.snapshot()->best().revenue);
  std::cout << StrFormat(
      "incremental reprice: %d batches in %.3fs, %d LPs (%d thresholds "
      "reused)\n",
      batches, reprice_seconds, reprice_lps, reused);

  // Phase 4: the cold baseline — RunAllAlgorithms from scratch at every
  // batch boundary, on the same grown instances (conflict sets reused).
  double cold_seconds = 0.0;
  int cold_lps = 0;
  double cold_revenue = 0.0;
  {
    const core::Hypergraph& grown = engine.hypergraph();
    const core::Valuations& all_v = engine.valuations();
    for (int b = 0; b < batches; ++b) {
      int end = initial + std::min(arrivals, (b + 1) * batch);
      core::Hypergraph prefix(grown.num_items());
      for (int e = 0; e < end; ++e) prefix.AddEdge(grown.edge(e));
      core::Valuations v(all_v.begin(), all_v.begin() + end);
      Stopwatch timer;
      std::vector<core::PricingResult> results =
          core::RunAllAlgorithms(prefix, v, engine_options.algorithms);
      cold_seconds += timer.ElapsedSeconds();
      double best = 0.0;
      for (const core::PricingResult& r : results) {
        cold_lps += r.lps_solved;
        best = std::max(best, r.revenue);
      }
      cold_revenue = best;
    }
  }
  recorder.Add(instance_name, "reprice-cold", cold_seconds, cold_lps,
               cold_revenue);
  std::cout << StrFormat(
      "cold recompute:      %d batches in %.3fs, %d LPs (%.1fx reprice "
      "latency)\n",
      batches, cold_seconds, cold_lps,
      reprice_seconds > 0 ? cold_seconds / reprice_seconds : 0.0);

  // Phase 5: the same market through the sharded router. The partition
  // is seeded with the full corpus's conflict sets (the grown monolithic
  // engine's edges), so every query — initial and arrival — is
  // partition-respecting and routing never clips an edge.
  if (shards > 1) {
    std::vector<std::vector<uint32_t>> seed_edges;
    seed_edges.reserve(static_cast<size_t>(engine.hypergraph().num_edges()));
    for (int e = 0; e < engine.hypergraph().num_edges(); ++e) {
      seed_edges.push_back(engine.hypergraph().edge(e));
    }
    market::SupportPartition partition =
        market::SupportPartitioner::Partition(market.support, seed_edges,
                                              {.num_shards = shards});
    serve::ShardedEngineOptions sharded_options;
    sharded_options.engine = engine_options;
    sharded_options.num_threads = shard_threads;

    serve::ShardedPricingEngine sharded(market.instance.database.get(),
                                        partition, sharded_options);
    // The monolithic solve/reprice rows report pure pricing seconds
    // (conflict probing excluded); subtract the probe/build delta from
    // the wall clock so the sharded rows measure the same thing —
    // routing + shard-parallel pricing latency. Probe work is identical
    // on both sides (one global probe per query).
    double probe_mark = sharded.stats().merged.build_seconds;
    double ssolve_wall = 0.0;
    {
      std::vector<db::BoundQuery> q(queries.begin(),
                                    queries.begin() + initial);
      Stopwatch timer;
      QP_CHECK_OK(sharded.AppendBuyers(q, initial_v));
      ssolve_wall = timer.ElapsedSeconds();
    }
    serve::ShardedEngineStats sstats = sharded.stats();
    double ssolve_seconds =
        std::max(0.0, ssolve_wall -
                          (sstats.merged.build_seconds - probe_mark));
    int ssolve_lps = sstats.merged.total_lps_solved;
    double sbook_revenue = sharded.snapshot().best_revenue();
    recorder.Add(instance_name, "solve-sharded", ssolve_seconds, ssolve_lps,
                 sbook_revenue);
    std::cout << StrFormat(
        "sharded solve: %d shards on %d thread(s) in %.3fs (%.2fx "
        "monolithic), %d LPs, merged revenue %.2f\n",
        shards, shard_threads, ssolve_seconds,
        ssolve_seconds > 0 ? seed_stats.seconds / ssolve_seconds : 0.0,
        ssolve_lps, sbook_revenue);

    double spurchase_seconds = 0.0;
    int64_t spurchase_accepted = 0;
    {
      common::ThreadPool pool(purchase_threads);
      std::atomic<int64_t> accepted{0};
      Stopwatch timer;
      pool.ParallelFor(purchases, [&](int i) {
        serve::PurchaseOutcome outcome = sharded.Purchase(
            queries[static_cast<size_t>(i) % num_queries], purchase_v[i]);
        if (outcome.accepted) accepted.fetch_add(1, std::memory_order_relaxed);
      });
      spurchase_seconds = timer.ElapsedSeconds();
      spurchase_accepted = accepted.load();
    }
    recorder.Add(instance_name, "purchases-sharded", spurchase_seconds,
                 static_cast<int>(spurchase_accepted), sbook_revenue);
    std::cout << StrFormat(
        "sharded purchases: %d on %d thread(s) in %.3fs (%.0f/s, %d "
        "accepted)\n",
        purchases, purchase_threads, spurchase_seconds,
        spurchase_seconds > 0 ? purchases / spurchase_seconds : 0.0,
        static_cast<int>(spurchase_accepted));

    double sreprice_seconds = 0.0;
    probe_mark = sharded.stats().merged.build_seconds;
    for (int b = 0; b < batches; ++b) {
      int begin = initial + b * batch;
      int end = std::min(initial + arrivals, begin + batch);
      std::vector<db::BoundQuery> q(queries.begin() + begin,
                                    queries.begin() + end);
      core::Valuations v(arrival_v.begin() + (begin - initial),
                         arrival_v.begin() + (end - initial));
      Stopwatch timer;
      QP_CHECK_OK(sharded.AppendBuyers(q, v));
      sreprice_seconds += timer.ElapsedSeconds();
    }
    sstats = sharded.stats();
    sreprice_seconds =
        std::max(0.0, sreprice_seconds -
                          (sstats.merged.build_seconds - probe_mark));
    int sreprice_lps = sstats.merged.total_lps_solved - ssolve_lps;
    recorder.Add(instance_name, "reprice-sharded", sreprice_seconds,
                 sreprice_lps, sharded.snapshot().best_revenue());
    std::cout << StrFormat(
        "sharded reprice: %d batches in %.3fs, %d LPs (%.2fx monolithic "
        "reprice latency; %llu cross-shard appends)\n",
        batches, sreprice_seconds, sreprice_lps,
        sreprice_seconds > 0 ? reprice_seconds / sreprice_seconds : 0.0,
        static_cast<unsigned long long>(sstats.cross_shard_appends));

    // Phase 6: durability — checkpoint the grown sharded book, then warm
    // a fresh engine from the checkpoint. The restore row pins the
    // durability claims: zero LPs solved (nothing repriced) and the SAME
    // revenue bits as the live book, at a fraction of the solve cost.
    char ckpt_tmpl[] = "/tmp/qp_engine_bench_ckpt_XXXXXX";
    if (mkdtemp(ckpt_tmpl) == nullptr) {
      std::cerr << "mkdtemp failed for checkpoint phase\n";
      return 1;
    }
    const std::string ckpt_dir = ckpt_tmpl;
    double grown_revenue = sharded.snapshot().best_revenue();
    double ckpt_seconds = 0.0;
    {
      serve::persist::CheckpointManager manager(
          {.dir = ckpt_dir, .checkpoint_every = 0});
      Stopwatch timer;
      QP_CHECK_OK(manager.Attach(&sharded));
      ckpt_seconds = timer.ElapsedSeconds();
    }
    recorder.Add(instance_name, "checkpoint-write", ckpt_seconds, 0,
                 grown_revenue);
    std::cout << StrFormat("checkpoint write: %d shards in %.3fs\n", shards,
                           ckpt_seconds);

    double restore_seconds = 0.0;
    int restore_lps = 0;
    {
      serve::ShardedPricingEngine warmed(market.instance.database.get(),
                                         partition, sharded_options);
      Stopwatch timer;
      auto recovered = serve::persist::Recover(ckpt_dir);
      QP_CHECK_OK(recovered.status());
      QP_CHECK_OK(warmed.RestoreFromCheckpoint(*recovered));
      restore_seconds = timer.ElapsedSeconds();
      restore_lps = warmed.stats().merged.total_lps_solved -
                    sstats.merged.total_lps_solved;
      // Bit-identical or bust: the restored book must publish the exact
      // revenue (and versions) the live book had at checkpoint time.
      if (warmed.snapshot().best_revenue() != grown_revenue ||
          warmed.snapshot().version_vector() !=
              sharded.snapshot().version_vector()) {
        std::cerr << "restore-warm: recovered book diverges from the live "
                     "book (revenue or version vector)\n";
        return 1;
      }
    }
    recorder.Add(instance_name, "restore-warm", restore_seconds, restore_lps,
                 grown_revenue);
    // The honest restart comparison is the full cold path — conflict
    // probing + hypergraph build + pricing (ssolve_wall) — since the
    // checkpoint subsumes all three.
    std::cout << StrFormat(
        "warm restore: %d shards in %.3fs (%.2fx cheaper than cold restart's "
        "probe+build+solve %.3fs), %d LPs, revenue bits identical\n",
        shards, restore_seconds,
        restore_seconds > 0 ? ssolve_wall / restore_seconds : 0.0,
        ssolve_wall, restore_lps);
    std::error_code ec;
    std::filesystem::remove_all(ckpt_dir, ec);
  }

  // Phase 7: publish cost, delta-chain vs deep-copy. Two fresh engines
  // replay the same deterministic stream — the grown corpus's initial
  // edges, then --publishes single-buyer appends cycling the arrival
  // edges — differing ONLY in consolidate cadence. Books are
  // bit-identical by contract; the bench hard-fails if they are not, or
  // if the delta path did not allocate strictly fewer bytes.
  const int publishes = flags.GetInt("publishes", 64);
  std::vector<std::vector<uint32_t>> corpus;
  corpus.reserve(static_cast<size_t>(engine.hypergraph().num_edges()));
  for (int e = 0; e < engine.hypergraph().num_edges(); ++e) {
    corpus.push_back(engine.hypergraph().edge(e));
  }
  // One publish = one appended buyer: edge and valuation at stream
  // position i (cycling the arrival window when it exists).
  auto stream_edge = [&](int i) -> const std::vector<uint32_t>& {
    if (arrivals > 0) return corpus[static_cast<size_t>(initial + i % arrivals)];
    return corpus[static_cast<size_t>(i) % corpus.size()];
  };
  auto stream_valuation = [&](int i) {
    return arrivals > 0 ? arrival_v[static_cast<size_t>(i % arrivals)] : 1.0;
  };
  auto make_seeded = [&](uint32_t consolidate_every) {
    serve::EngineOptions opts = engine_options;
    opts.consolidate_every = consolidate_every;
    auto e = std::make_unique<serve::PricingEngine>(
        market.instance.database.get(), market.support, opts);
    std::vector<std::vector<uint32_t>> seed_edges(
        corpus.begin(), corpus.begin() + initial);
    QP_CHECK_OK(e->AppendBuyersPrecomputed(std::move(seed_edges), initial_v));
    return e;
  };
  struct PublishRun {
    std::unique_ptr<serve::PricingEngine> engine;
    double seconds = 0.0;
    uint64_t bytes = 0;
    uint64_t allocs = 0;
  };
  auto run_publishes = [&](uint32_t consolidate_every) {
    PublishRun run;
    run.engine = make_seeded(consolidate_every);
    uint64_t bytes0 = tl_alloc_bytes;
    uint64_t allocs0 = tl_alloc_calls;
    Stopwatch timer;
    for (int i = 0; i < publishes; ++i) {
      QP_CHECK_OK(run.engine->AppendBuyersPrecomputed(
          {stream_edge(i)}, {stream_valuation(i)}));
    }
    run.seconds = timer.ElapsedSeconds();
    run.bytes = tl_alloc_bytes - bytes0;
    run.allocs = tl_alloc_calls - allocs0;
    return run;
  };
  // Bit-identity or bust: every corpus bundle must quote the same bits
  // from both engines (price, generation, serving algorithm).
  auto check_books_identical = [&](const serve::PricingEngine& a,
                                   const serve::PricingEngine& b,
                                   const char* phase) {
    for (const std::vector<uint32_t>& bundle : corpus) {
      serve::Quote qa = a.QuoteBundle(bundle);
      serve::Quote qb = b.QuoteBundle(bundle);
      if (std::bit_cast<uint64_t>(qa.price) !=
              std::bit_cast<uint64_t>(qb.price) ||
          qa.version != qb.version || qa.algorithm != qb.algorithm) {
        std::cerr << phase
                  << ": delta-chain book diverges from deep-copy book\n";
        return false;
      }
    }
    return true;
  };

  PublishRun deep = run_publishes(1);
  PublishRun delta = run_publishes(engine_options.consolidate_every);
  if (!check_books_identical(*delta.engine, *deep.engine, "publish-delta")) {
    return 1;
  }
  if (delta.bytes >= deep.bytes) {
    std::cerr << StrFormat(
        "publish-delta: expected fewer allocated bytes than deep-copy "
        "(%llu >= %llu)\n",
        static_cast<unsigned long long>(delta.bytes),
        static_cast<unsigned long long>(deep.bytes));
    return 1;
  }
  double publish_revenue = deep.engine->snapshot()->best().revenue;
  recorder.Add(instance_name, "publish-deepcopy", deep.seconds, publishes,
               publish_revenue);
  recorder.Add(instance_name, "publish-delta", delta.seconds, publishes,
               publish_revenue);
  serve::EngineStats delta_stats = delta.engine->stats();
  std::cout << StrFormat(
      "publish cost: %d publishes deep-copy %.3fs / %.0f KB vs delta %.3fs "
      "/ %.0f KB (%llu bases + %llu deltas, %llu fallbacks)\n",
      publishes, deep.seconds, deep.bytes / 1024.0, delta.seconds,
      delta.bytes / 1024.0,
      static_cast<unsigned long long>(delta_stats.publish.bases),
      static_cast<unsigned long long>(delta_stats.publish.deltas),
      static_cast<unsigned long long>(delta_stats.publish.fallbacks));
  // Both runs reprice identically (bit-identical solves), so the byte
  // difference is publish cost alone; wall clock is dominated by the
  // (identical) reprice work and reported per publish for both.
  std::cout << StrFormat(
      "publish cost: delta chains save %.1f KB and %.1f allocations per "
      "publish (append wall %.2f ms/publish vs %.2f deep-copy)\n",
      (deep.bytes - delta.bytes) / 1024.0 / publishes,
      static_cast<double>(deep.allocs > delta.allocs
                              ? deep.allocs - delta.allocs
                              : 0) /
          publishes,
      delta.seconds * 1e3 / publishes, deep.seconds * 1e3 / publishes);

  // Phase 8: the sustained mixed regime — the same publish stream with
  // --qthreads readers quoting throughout. Seconds is the writer's wall
  // clock (the readers never block it); quote throughput and the
  // epoch-pin counters (the refcount-free hot path) are printed.
  struct MixedRun {
    std::unique_ptr<serve::PricingEngine> engine;
    double seconds = 0.0;
    uint64_t quotes = 0;
  };
  auto run_mixed = [&](uint32_t consolidate_every) {
    MixedRun run;
    run.engine = make_seeded(consolidate_every);
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> served{0};
    std::vector<std::thread> readers;
    readers.reserve(static_cast<size_t>(quote_threads));
    for (int t = 0; t < quote_threads; ++t) {
      readers.emplace_back([&, t] {
        uint64_t local = 0;
        for (size_t i = static_cast<size_t>(t);
             !stop.load(std::memory_order_acquire); ++i) {
          run.engine->QuoteBundle(corpus[i % corpus.size()]);
          ++local;
        }
        served.fetch_add(local, std::memory_order_relaxed);
      });
    }
    Stopwatch timer;
    for (int i = 0; i < publishes; ++i) {
      QP_CHECK_OK(run.engine->AppendBuyersPrecomputed(
          {stream_edge(i)}, {stream_valuation(i)}));
    }
    run.seconds = timer.ElapsedSeconds();
    stop.store(true, std::memory_order_release);
    for (std::thread& r : readers) r.join();
    run.quotes = served.load();
    return run;
  };
  MixedRun mixed_deep = run_mixed(1);
  MixedRun mixed_delta = run_mixed(engine_options.consolidate_every);
  if (!check_books_identical(*mixed_delta.engine, *mixed_deep.engine,
                             "mixed-readwrite")) {
    return 1;
  }
  recorder.Add(instance_name, "mixed-readwrite-deepcopy", mixed_deep.seconds,
               publishes, publish_revenue);
  recorder.Add(instance_name, "mixed-readwrite", mixed_delta.seconds,
               publishes, publish_revenue);
  serve::EngineStats mixed_stats = mixed_delta.engine->stats();
  std::cout << StrFormat(
      "mixed read/write: %d publishes under %d reader thread(s): deep-copy "
      "%.3fs (%.0f quotes/s) vs delta %.3fs (%.0f quotes/s)\n",
      publishes, quote_threads, mixed_deep.seconds,
      mixed_deep.seconds > 0 ? mixed_deep.quotes / mixed_deep.seconds : 0.0,
      mixed_delta.seconds,
      mixed_delta.seconds > 0 ? mixed_delta.quotes / mixed_delta.seconds : 0.0);
  std::cout << StrFormat(
      "mixed read/write: delta engine served %llu quotes via %llu epoch "
      "pins (%llu chains retired, %llu reclaimed, %llu pending)\n",
      static_cast<unsigned long long>(mixed_delta.quotes),
      static_cast<unsigned long long>(mixed_stats.epoch.pins),
      static_cast<unsigned long long>(mixed_stats.epoch.retired),
      static_cast<unsigned long long>(mixed_stats.epoch.reclaimed),
      static_cast<unsigned long long>(mixed_stats.epoch.pending));

  // Phase 9: sustained catalog churn — concurrent seller-delta writers
  // against free-running quote/purchase readers, no quiescence. The
  // deltas are the workload's own support cells (distinct cells,
  // tail-wins on duplicates), dealt round-robin across the writers so
  // their cell sets are disjoint and the final state is interleaving-
  // independent. Both the churned run and its serial reference get a
  // pristine database copy (folds mutate the base in place; the loaders
  // are deterministic).
  {
    const int churn_writers = std::max(1, flags.GetInt("churn-writers", 2));
    const int churn_readers = std::max(1, flags.GetInt("churn-readers", 4));
    const int churn_updates = flags.GetInt("churn-updates", 256);

    std::vector<market::CellDelta> deltas;
    for (const market::CellDelta& d : market.support) {
      bool replaced = false;
      for (market::CellDelta& seen : deltas) {
        if (seen.table == d.table && seen.row == d.row &&
            seen.column == d.column) {
          seen = d;
          replaced = true;
          break;
        }
      }
      if (!replaced) deltas.push_back(d);
    }
    if (static_cast<int>(deltas.size()) > churn_updates) {
      deltas.resize(static_cast<size_t>(churn_updates));
    }
    std::vector<std::vector<market::CellDelta>> per_writer(
        static_cast<size_t>(churn_writers));
    for (size_t i = 0; i < deltas.size(); ++i) {
      per_writer[i % per_writer.size()].push_back(deltas[i]);
    }

    WorkloadMarket churn_market = LoadWorkloadMarket(workload, load);
    WorkloadMarket ref_market = LoadWorkloadMarket(workload, load);
    // Conflict sets are a pure function of (db, query, support), so the
    // corpus edges probed against the original market seed these twins'
    // bit-identical copies too.
    auto seed_engine = [&](WorkloadMarket& m) {
      auto e = std::make_unique<serve::PricingEngine>(
          m.instance.database.get(), m.support, engine_options);
      std::vector<std::vector<uint32_t>> seed_edges(
          corpus.begin(), corpus.begin() + initial);
      QP_CHECK_OK(e->AppendBuyersPrecomputed(std::move(seed_edges),
                                             initial_v));
      return e;
    };
    auto churned = seed_engine(churn_market);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> churn_quotes{0};
    std::atomic<uint64_t> churn_purchases{0};
    std::vector<std::thread> readers;
    readers.reserve(static_cast<size_t>(churn_readers));
    for (int t = 0; t < churn_readers; ++t) {
      readers.emplace_back([&, t] {
        uint64_t quotes_local = 0, purchases_local = 0;
        for (size_t i = static_cast<size_t>(t);
             !stop.load(std::memory_order_acquire); ++i) {
          churned->QuoteBundle(corpus[i % corpus.size()]);
          ++quotes_local;
          if (!purchase_v.empty() && i % 4 == 0) {
            churned->Purchase(
                queries[i % static_cast<size_t>(num_queries)],
                purchase_v[i % purchase_v.size()]);
            ++purchases_local;
          }
        }
        churn_quotes.fetch_add(quotes_local, std::memory_order_relaxed);
        churn_purchases.fetch_add(purchases_local, std::memory_order_relaxed);
      });
    }
    std::vector<std::thread> delta_writers;
    delta_writers.reserve(static_cast<size_t>(churn_writers));
    Stopwatch churn_timer;
    for (int w = 0; w < churn_writers; ++w) {
      delta_writers.emplace_back([&, w] {
        for (const market::CellDelta& d : per_writer[static_cast<size_t>(w)]) {
          QP_CHECK_OK(
              churned->ApplySellerDelta(*churn_market.instance.database, d));
        }
      });
    }
    for (std::thread& w : delta_writers) w.join();
    double churn_wall = churn_timer.ElapsedSeconds();
    stop.store(true, std::memory_order_release);
    for (std::thread& r : readers) r.join();

    // Bit-identity or bust: a twin engine applies the same deltas
    // serially with no reader traffic; every logical cell and every
    // corpus quote must match exactly.
    auto reference = seed_engine(ref_market);
    for (const market::CellDelta& d : deltas) {
      QP_CHECK_OK(
          reference->ApplySellerDelta(*ref_market.instance.database, d));
    }
    if (churned->catalog().head_generation() !=
        reference->catalog().head_generation()) {
      std::cerr << "churn-updates: generation count diverges from the "
                   "serial reference\n";
      return 1;
    }
    const db::Database& ref_db = *ref_market.instance.database;
    for (int t = 0; t < ref_db.num_tables(); ++t) {
      const db::Table& table = ref_db.table(t);
      for (int r = 0; r < table.num_rows(); ++r) {
        for (int c = 0; c < table.schema().num_columns(); ++c) {
          if (churned->catalog().LogicalCell(t, r, c) !=
              reference->catalog().LogicalCell(t, r, c)) {
            std::cerr << StrFormat(
                "churn-updates: logical cell (%d,%d,%d) diverges from the "
                "serial reference\n",
                t, r, c);
            return 1;
          }
        }
      }
    }
    if (!check_books_identical(*churned, *reference, "churn-updates")) {
      return 1;
    }

    serve::EngineStats::CatalogStats cat = churned->stats().catalog;
    serve::EngineStats::CatalogStats ref_cat = reference->stats().catalog;
    double churn_revenue = churned->snapshot()->best().revenue;
    recorder.Add(instance_name, "churn-updates", churn_wall,
                 static_cast<int>(deltas.size()), churn_revenue);
    recorder.Add(instance_name, "churn-quotes", churn_wall, 0, churn_revenue);
    // Fold cost from the serial twin: with no pinned readers every
    // cadence-triggered fold lands, so the count is deterministic.
    recorder.Add(instance_name, "churn-fold", ref_cat.fold_nanos * 1e-9,
                 static_cast<int>(ref_cat.folds), churn_revenue);
    std::cout << StrFormat(
        "catalog churn: %d deltas by %d writer(s) in %.3fs (%.0f/s) vs %d "
        "reader(s) serving %.0f quotes/s + %.0f purchases/s\n",
        static_cast<int>(deltas.size()), churn_writers, churn_wall,
        churn_wall > 0 ? deltas.size() / churn_wall : 0.0, churn_readers,
        churn_wall > 0 ? churn_quotes.load() / churn_wall : 0.0,
        churn_wall > 0 ? churn_purchases.load() / churn_wall : 0.0);
    std::cout << StrFormat(
        "catalog churn: %llu folds (%llu retries) folded %llu cells in "
        "%.2f ms, %llu pending (serial twin: %llu folds in %.2f ms); "
        "purchase staleness mean %.2f max %llu over "
        "%llu samples; books bit-identical to serial reference\n",
        static_cast<unsigned long long>(cat.folds),
        static_cast<unsigned long long>(cat.fold_retries),
        static_cast<unsigned long long>(cat.deltas_folded),
        cat.fold_nanos * 1e-6,
        static_cast<unsigned long long>(cat.deltas_pending),
        static_cast<unsigned long long>(ref_cat.folds),
        ref_cat.fold_nanos * 1e-6,
        cat.staleness_samples > 0
            ? static_cast<double>(cat.staleness_sum) / cat.staleness_samples
            : 0.0,
        static_cast<unsigned long long>(cat.staleness_max),
        static_cast<unsigned long long>(cat.staleness_samples));
  }

  serve::EngineStats stats = engine.stats();
  std::cout << StrFormat(
      "engine: version %llu, %llu quotes served, %d LPs total, incidence "
      "%d merge(s)/%d build(s)\n",
      static_cast<unsigned long long>(stats.version),
      static_cast<unsigned long long>(stats.quotes_served),
      stats.total_lps_solved, stats.incidence.merges,
      stats.incidence.full_builds);
  std::cout << StrFormat(
      "engine: %llu purchases (%llu accepted, %.2f revenue), %lld probes / "
      "%lld pruned across build+purchase\n",
      static_cast<unsigned long long>(stats.purchases),
      static_cast<unsigned long long>(stats.purchases_accepted),
      stats.sale_revenue, static_cast<long long>(stats.conflict.probes),
      static_cast<long long>(stats.conflict.pruned));

  if (!recorder.WriteJson(json)) return 1;
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
