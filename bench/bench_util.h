// Shared experiment-harness plumbing for the per-figure/table bench
// binaries: flag parsing, workload/hypergraph loading with scaled-down
// defaults (every bench accepts --support= / --sf= / --runs= / --seed= and
// --paper for paper-scale parameters), and the normalized-revenue row
// runner used by every figure.
#ifndef QP_BENCH_BENCH_UTIL_H_
#define QP_BENCH_BENCH_UTIL_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table_printer.h"
#include "core/algorithms.h"
#include "core/hypergraph.h"
#include "market/support.h"
#include "workloads/workload.h"

namespace qp::bench {

/// --key=value command-line flags with typed accessors.
class Flags {
 public:
  Flags(int argc, char** argv);

  int GetInt(const std::string& key, int fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key, std::string fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// True when --paper was passed: run paper-scale parameters.
  bool paper() const { return GetBool("paper", false); }

 private:
  std::map<std::string, std::string> values_;
};

/// A workload's hypergraph, produced end-to-end from data + SQL + support.
struct WorkloadHypergraph {
  std::string name;
  core::Hypergraph hypergraph{0};
  core::ItemClasses classes;
  double build_seconds = 0.0;   // conflict-set computation time
  int support_size = 0;
};

struct LoadOptions {
  int support = 0;      // 0 = per-workload default
  double sf = 0.0;      // 0 = default (0.005; paper-scale 1.0 via --paper)
  uint64_t seed = 7;
  bool paper_scale = false;
  // Hypergraph-build (conflict set) parallelism, --threads; conflict
  // sets are bit-identical for every value.
  int build_threads = 1;
};

/// A workload's raw market inputs: the generated database + bound query
/// set plus the support, *before* conflict-set computation — what the
/// serving-engine benches feed to serve::PricingEngine query by query.
struct WorkloadMarket {
  workload::WorkloadInstance instance;
  market::SupportSet support;
  int support_size = 0;
};

/// Loads "skewed" | "uniform" | "tpch" | "ssb" and generates the support.
/// Aborts on generator errors (benches are applications).
WorkloadMarket LoadWorkloadMarket(const std::string& name,
                                  const LoadOptions& options);

/// Same, then builds the conflict-set hypergraph (one-shot drivers).
WorkloadHypergraph LoadWorkloadHypergraph(const std::string& name,
                                          const LoadOptions& options);

/// Per-workload default experiment parameters derived from flags.
LoadOptions LoadOptionsFromFlags(const Flags& flags);

/// Default algorithm options used in benches: LPIP candidate cap and CIP
/// epsilon tuned per workload exactly as the paper tunes epsilon
/// (Section 6.4); flags override.
core::AlgorithmOptions AlgorithmOptionsFor(const WorkloadHypergraph& wh,
                                           const Flags& flags);

/// Runs all six algorithms plus the subadditive bound over `runs`
/// valuation draws and appends one row per algorithm:
///   [workload, config, algorithm, normalized revenue, seconds]
/// Normalization is by the sum of valuations, as in every paper figure.
void RunConfigRow(TablePrinter& table, const WorkloadHypergraph& wh,
                  const std::string& config_label,
                  const std::function<core::Valuations(Rng&)>& draw,
                  int runs, const core::AlgorithmOptions& options,
                  uint64_t seed);

/// Machine-readable bench output (--json=out.json): one record per
/// (instance, algorithm) run. The pinned-seed records committed under
/// bench/baselines/ are the repo's perf trajectory; CI re-runs the
/// drivers and compares against them (tools/check_bench_regression.py).
class BenchRecorder {
 public:
  void Add(const std::string& instance, const std::string& algorithm,
           double seconds, int lps_solved, double revenue);

  /// Adds one record per PricingResult, e.g. straight from
  /// RunAllAlgorithms' output.
  void AddAll(const std::string& instance,
              const std::vector<core::PricingResult>& results);

  /// Writes the records as a JSON array. No-op when `path` is empty;
  /// returns false (with a message on stderr) when the file cannot be
  /// written.
  bool WriteJson(const std::string& path) const;

 private:
  struct Record {
    std::string instance;
    std::string algorithm;
    double seconds;
    int lps_solved;
    double revenue;
  };
  std::vector<Record> records_;
};

}  // namespace qp::bench

#endif  // QP_BENCH_BENCH_UTIL_H_
