// Figure 7(a): the additive item-price valuation model on the skewed and
// uniform workloads. Levels from Dtilde = Uniform{1..k} or Binomial(k, 1/2)
// for k in {1, 10, 100, 1000, 5000, 10000}.
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "core/valuation.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  LoadOptions load = LoadOptionsFromFlags(flags);
  int runs = flags.GetInt("runs", 1);
  std::cout << "=== Figure 7a: sampled item prices (skewed + uniform) ===\n";
  TablePrinter table({"workload", "config", "algorithm", "norm-revenue",
                      "seconds"});
  const uint64_t ks[] = {1, 10, 100, 1000, 5000, 10000};
  for (const char* name : {"skewed", "uniform"}) {
    WorkloadHypergraph wh = LoadWorkloadHypergraph(name, load);
    core::AlgorithmOptions options = AlgorithmOptionsFor(wh, flags);
    for (uint64_t k : ks) {
      RunConfigRow(table, wh, StrCat("D~unif[1,", k, "]"),
                   [&](Rng& rng) {
                     return core::AdditiveItemValuations(
                         wh.hypergraph, core::LevelDistribution::kUniform, k,
                         rng);
                   },
                   runs, options, load.seed);
    }
    for (uint64_t k : ks) {
      RunConfigRow(table, wh, StrCat("D~bin(", k, ",0.5)"),
                   [&](Rng& rng) {
                     return core::AdditiveItemValuations(
                         wh.hypergraph, core::LevelDistribution::kBinomial, k,
                         rng);
                   },
                   runs, options, load.seed);
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
