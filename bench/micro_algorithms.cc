// Microbenchmarks: per-algorithm scaling on synthetic random hypergraphs
// (items = 4m, edge size ~ sqrt(m)); complements the wall-clock
// Tables 4-6 with statistically stable per-call numbers. Uses system
// google-benchmark when available; otherwise the built-in mini harness
// (bench/mini_benchmark.h) keeps the target building and running.
#include <algorithm>
#include <cmath>

#ifdef QP_HAVE_GOOGLE_BENCHMARK
#include <benchmark/benchmark.h>
#else
#include "bench/mini_benchmark.h"
#endif

#include "common/rng.h"
#include "core/algorithms.h"
#include "core/valuation.h"

namespace qp::core {
namespace {

struct Instance {
  Hypergraph hypergraph{0};
  Valuations valuations;
};

Instance MakeInstance(int m) {
  Rng rng(static_cast<uint64_t>(m) * 77 + 5);
  uint32_t n = static_cast<uint32_t>(4 * m);
  Hypergraph h(n);
  int edge_size = std::max(2, static_cast<int>(std::sqrt(m)));
  for (int e = 0; e < m; ++e) {
    std::vector<uint32_t> items;
    for (int s = 0; s < edge_size; ++s) {
      items.push_back(static_cast<uint32_t>(rng.UniformInt(0, n - 1)));
    }
    h.AddEdge(std::move(items));
  }
  Instance out;
  out.valuations = SampleUniformValuations(h, 100, rng);
  out.hypergraph = std::move(h);
  return out;
}

void BM_Ubp(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunUbp(inst.hypergraph, inst.valuations).revenue);
  }
}
BENCHMARK(BM_Ubp)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Uip(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunUip(inst.hypergraph, inst.valuations).revenue);
  }
}
BENCHMARK(BM_Uip)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Layering(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunLayering(inst.hypergraph, inst.valuations).revenue);
  }
}
BENCHMARK(BM_Layering)->Arg(100)->Arg(1000)->Arg(4000);

void BM_Lpip(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)));
  LpipOptions options;
  options.max_candidates = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunLpip(inst.hypergraph, inst.valuations, options).revenue);
  }
}
BENCHMARK(BM_Lpip)->Arg(50)->Arg(200)->Arg(400);

void BM_Cip(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)));
  CipOptions options;
  options.eps = 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunCip(inst.hypergraph, inst.valuations, options).revenue);
  }
}
BENCHMARK(BM_Cip)->Arg(50)->Arg(200)->Arg(400);

void BM_ItemClassCompression(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ItemClasses::Compute(inst.hypergraph).num_classes());
  }
}
BENCHMARK(BM_ItemClassCompression)->Arg(1000)->Arg(10000);

void BM_Revenue(benchmark::State& state) {
  Instance inst = MakeInstance(static_cast<int>(state.range(0)));
  ItemPricing pricing(
      std::vector<double>(inst.hypergraph.num_items(), 1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Revenue(pricing, inst.hypergraph, inst.valuations));
  }
}
BENCHMARK(BM_Revenue)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace qp::core

BENCHMARK_MAIN();
