// Ablation: the paper's worst-case gap instances (Lemmas 2-4). Measures
// the revenue each simple pricing family extracts against the optimal
// subadditive revenue, demonstrating the Omega(log m) separations grow
// with instance size.
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "core/lower_bounds.h"

namespace qp::bench {
namespace {

void Report(TablePrinter& table, const std::string& label,
            const core::GapInstance& instance) {
  core::PricingResult ubp = core::RunUbp(instance.hypergraph,
                                         instance.valuations);
  core::PricingResult uip = core::RunUip(instance.hypergraph,
                                         instance.valuations);
  core::PricingResult lpip = core::RunLpip(instance.hypergraph,
                                           instance.valuations,
                                           {.max_candidates = 16});
  double opt = instance.optimal_revenue;
  table.AddRow({label, std::to_string(instance.hypergraph.num_edges()),
                StrFormat("%.3f", opt), StrFormat("%.3f", ubp.revenue),
                StrFormat("%.2f", opt / std::max(1e-9, ubp.revenue)),
                StrFormat("%.3f", uip.revenue),
                StrFormat("%.2f", opt / std::max(1e-9, uip.revenue)),
                StrFormat("%.3f", lpip.revenue)});
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  (void)flags;
  std::cout << "=== Ablation: Lemma 2/3/4 gap instances ===\n";
  TablePrinter table({"instance", "m", "OPT", "UBP", "OPT/UBP", "UIP",
                      "OPT/UIP", "LPIP"});
  for (int m : {16, 64, 256, 1024}) {
    Report(table, StrCat("lemma2 m=", m), core::MakeLemma2Instance(m));
  }
  for (int n : {8, 16, 32, 64}) {
    Report(table, StrCat("lemma3 n=", n), core::MakeLemma3Instance(n));
  }
  for (int t : {2, 3, 4, 5}) {
    Report(table, StrCat("lemma4 t=", t), core::MakeLemma4Instance(t));
  }
  table.Print(std::cout);
  std::cout << "(lemma2: OPT/UBP grows ~ H_m; lemma3: OPT/UIP grows ~ ln n; "
               "lemma4: both ratios grow ~ (t+1)/4)\n";
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
