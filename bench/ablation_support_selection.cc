// Ablation: support-set selection (paper Section 7.2). Compares random
// supports against the same supports augmented with one private delta per
// query — with every edge owning a unique item, item pricing extracts the
// full revenue of the fixed queries.
#include <iostream>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "core/bounds.h"
#include "core/valuation.h"
#include "market/hypergraph_builder.h"
#include "market/support_selection.h"
#include "workloads/world_queries.h"

namespace qp::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  int support_size = flags.GetInt("support", 1000);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  std::cout << "=== Ablation: support-set selection (Section 7.2) ===\n";

  auto workload = workload::MakeSkewedWorkload(seed);
  QP_CHECK_OK(workload.status());
  // A slice of the skewed workload keeps the probe cost modest.
  std::vector<db::BoundQuery> queries;
  for (size_t i = 0; i < workload->queries.size(); i += 9) {
    queries.push_back(workload->queries[i]);
  }
  Rng rng(Mix64(seed ^ 0x5151));
  auto base = market::GenerateSupport(
      *workload->database, {.size = support_size, .max_retries = 32}, rng);
  QP_CHECK_OK(base.status());

  market::SupportSelectionResult augmented =
      market::AugmentSupportWithUniqueItems(*workload->database, queries,
                                            *base, {.candidates_per_query = 48},
                                            rng);

  TablePrinter table({"support", "|S|", "unique-item edges", "algorithm",
                      "norm-revenue"});
  for (const auto& [label, support] :
       {std::pair<std::string, const market::SupportSet*>{"random", &*base},
        {"random+selected", &augmented.support}}) {
    market::BuildResult built =
        market::BuildHypergraph(*workload->database, queries, *support);
    Rng vrng(Mix64(seed ^ 0x7777));
    core::Valuations v =
        core::SampleUniformValuations(built.hypergraph, 100, vrng);
    double total = core::SumOfValuations(v);
    core::ItemClasses classes = core::ItemClasses::Compute(built.hypergraph);
    core::PricingResult lpip = core::RunLpip(
        built.hypergraph, v, {.max_candidates = 12, .classes = &classes});
    core::PricingResult layering = core::RunLayering(built.hypergraph, v);
    for (const auto& r : {&lpip, &layering}) {
      table.AddRow({label, std::to_string(support->size()),
                    std::to_string(built.hypergraph.NumEdgesWithUniqueItem()),
                    r->algorithm, StrFormat("%.4f", r->revenue / total)});
    }
  }
  table.Print(std::cout);
  std::cout << "(queries fixed: " << augmented.queries_fixed
            << ", unfixable: " << augmented.queries_unfixable << ")\n";
  return 0;
}

}  // namespace
}  // namespace qp::bench

int main(int argc, char** argv) { return qp::bench::Main(argc, argv); }
