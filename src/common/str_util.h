// Small string helpers (no std::format on this toolchain).
#ifndef QP_COMMON_STR_UTIL_H_
#define QP_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace qp {

/// Concatenates all arguments with operator<<.
template <typename... Args>
std::string StrCat(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return std::string();
  } else {
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
  }
}

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// ASCII lower-case copy.
std::string ToLower(std::string_view text);

/// ASCII upper-case copy.
std::string ToUpper(std::string_view text);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// SQL LIKE matching: '%' matches any run (including empty), '_' matches
/// exactly one character. Case-sensitive, no escape support.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Formats a double trimming trailing zeros ("1.5", "2", "0.25").
std::string FormatDouble(double value, int max_decimals = 6);

}  // namespace qp

#endif  // QP_COMMON_STR_UTIL_H_
