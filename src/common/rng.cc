#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace qp {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(state);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Debiased modulo (Lemire-style rejection).
  const uint64_t threshold = (-range) % range;
  uint64_t r;
  do {
    r = NextUint64();
  } while (r < threshold);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::UniformReal(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::StandardNormal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * StandardNormal();
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = 1.0 - NextDouble();  // (0, 1]
  return -mean * std::log(u);
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  assert(k <= n);
  std::vector<uint32_t> out;
  out.reserve(k);
  // Selection sampling (Knuth 3.4.2 Algorithm S): O(n), emits sorted indices.
  // For k much smaller than n, a hash-set rejection loop would be faster,
  // but callers here always have k within a small factor of n.
  uint32_t seen = 0;
  uint32_t chosen = 0;
  while (chosen < k) {
    double u = NextDouble();
    if (static_cast<double>(n - seen) * u < static_cast<double>(k - chosen)) {
      out.push_back(seen);
      ++chosen;
    }
    ++seen;
  }
  return out;
}

Rng Rng::Fork(uint64_t key) const {
  return Rng(Mix64(seed_ ^ Mix64(key)));
}

}  // namespace qp
