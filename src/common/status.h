// Status and Result<T>: exception-free error handling in the style of
// Arrow/RocksDB. Library code returns Status (or Result<T>) instead of
// throwing; callers either handle errors or use the QP_CHECK* macros at
// the application boundary.
#ifndef QP_COMMON_STATUS_H_
#define QP_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace qp {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  /// The target exists but cannot serve right now (a shard still warming
  /// after restore, a refused connection); retrying later may succeed.
  kUnavailable,
  /// A caller-supplied deadline elapsed before the operation finished.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); carries a message only when not OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Modeled after
/// arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::value() on error: " << status_.ToString()
                << std::endl;
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_ = Status::OK();
};

// Propagates an error Status from an expression returning Status.
#define QP_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::qp::Status _qp_st = (expr);           \
    if (!_qp_st.ok()) return _qp_st;        \
  } while (0)

// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define QP_ASSIGN_OR_RETURN(lhs, expr)        \
  auto QP_CONCAT_(_qp_res, __LINE__) = (expr);  \
  if (!QP_CONCAT_(_qp_res, __LINE__).ok())      \
    return QP_CONCAT_(_qp_res, __LINE__).status(); \
  lhs = std::move(QP_CONCAT_(_qp_res, __LINE__)).value()

#define QP_CONCAT_IMPL_(a, b) a##b
#define QP_CONCAT_(a, b) QP_CONCAT_IMPL_(a, b)

// Aborts if `expr` (a Status) is not OK. For application code / tests.
#define QP_CHECK_OK(expr)                                              \
  do {                                                                 \
    ::qp::Status _qp_st = (expr);                                      \
    if (!_qp_st.ok()) {                                                \
      std::cerr << __FILE__ << ":" << __LINE__                         \
                << " QP_CHECK_OK failed: " << _qp_st.ToString()        \
                << std::endl;                                          \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

}  // namespace qp

#endif  // QP_COMMON_STATUS_H_
