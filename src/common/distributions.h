// Heavier-tailed / discrete samplers used by the paper's valuation models
// (Section 6.3): Zipf(a) for "sampling bundle valuations" and
// Binomial(k, 1/2) for the additive item-price model's level distribution.
#ifndef QP_COMMON_DISTRIBUTIONS_H_
#define QP_COMMON_DISTRIBUTIONS_H_

#include <cstdint>

#include "common/rng.h"

namespace qp {

/// Zipf distribution over {1, ..., n} with Pr[X = x] proportional to
/// x^{-a}, a > 1 typically. Uses Hormann's rejection-inversion sampler,
/// which is O(1) per draw with no per-instance tables.
class ZipfDistribution {
 public:
  /// Requires n >= 1 and a > 0 (a != 1 handled; a == 1 uses the limit form).
  ZipfDistribution(uint64_t n, double a);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double a() const { return a_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double a_;
  double h_x1_;        // H(1.5) - 1
  double h_n_;         // H(n + 0.5)
  double s_;           // 2 - HInverse(H(2.5) - 2^{-a})
};

/// Binomial(n, p) sampler. Exact inversion for small n; BTPE-free
/// waiting-time method for moderate n; normal approximation with
/// continuity correction for very large n*p (documented tolerance —
/// valuation models only need distributional shape, not exactness
/// beyond n = 10^4).
class BinomialDistribution {
 public:
  BinomialDistribution(uint64_t n, double p);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double p() const { return p_; }

 private:
  uint64_t n_;
  double p_;
};

}  // namespace qp

#endif  // QP_COMMON_DISTRIBUTIONS_H_
