#include "common/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qp {

// --- ZipfDistribution -------------------------------------------------------
//
// Rejection-inversion for discrete power laws, after W. Hormann and
// G. Derflinger, "Rejection-inversion to generate variates from monotone
// discrete distributions" (1996). H is an antiderivative of x^{-a}.

ZipfDistribution::ZipfDistribution(uint64_t n, double a) : n_(n), a_(a) {
  assert(n >= 1);
  assert(a > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -a_));
}

double ZipfDistribution::H(double x) const {
  if (std::abs(a_ - 1.0) < 1e-12) return std::log(x);
  return std::pow(x, 1.0 - a_) / (1.0 - a_);
}

double ZipfDistribution::HInverse(double x) const {
  if (std::abs(a_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow((1.0 - a_) * x, 1.0 / (1.0 - a_));
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(
        std::clamp(x + 0.5, 1.0, static_cast<double>(n_)));
    if (static_cast<double>(k) - x <= s_) return k;
    if (u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -a_)) {
      return k;
    }
  }
}

// --- BinomialDistribution ----------------------------------------------------

BinomialDistribution::BinomialDistribution(uint64_t n, double p)
    : n_(n), p_(std::clamp(p, 0.0, 1.0)) {}

uint64_t BinomialDistribution::Sample(Rng& rng) const {
  if (p_ <= 0.0 || n_ == 0) return 0;
  if (p_ >= 1.0) return n_;
  const double np = static_cast<double>(n_) * p_;
  if (n_ <= 64) {
    // Exact: count successes bit by bit.
    uint64_t count = 0;
    for (uint64_t i = 0; i < n_; ++i) count += rng.Bernoulli(p_) ? 1 : 0;
    return count;
  }
  if (np < 32.0) {
    // Waiting-time (geometric skips): exact, O(np) expected.
    const double log_q = std::log1p(-p_);
    uint64_t count = 0;
    double sum = 0.0;
    while (true) {
      double u = 1.0 - rng.NextDouble();  // (0,1]
      sum += std::log(u) / log_q;
      if (sum > static_cast<double>(n_)) break;
      ++count;
      if (count > n_) return n_;
    }
    return count;
  }
  // Large n*p: normal approximation with continuity correction. Relative
  // error is far below the noise floor of the valuation experiments.
  const double mean = np;
  const double sd = std::sqrt(np * (1.0 - p_));
  double x = std::round(rng.Normal(mean, sd));
  if (x < 0.0) x = 0.0;
  if (x > static_cast<double>(n_)) x = static_cast<double>(n_);
  return static_cast<uint64_t>(x);
}

}  // namespace qp
