#include "common/table_printer.h"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "common/str_util.h"

namespace qp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToCell(double v) { return FormatDouble(v, 4); }
std::string TablePrinter::ToCell(int v) { return std::to_string(v); }
std::string TablePrinter::ToCell(long v) { return std::to_string(v); }
std::string TablePrinter::ToCell(unsigned long v) { return std::to_string(v); }
std::string TablePrinter::ToCell(unsigned int v) { return std::to_string(v); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    size_t end = line.find_last_not_of(' ');
    line.erase(end == std::string::npos ? 0 : end + 1);
    return line + "\n";
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c > 0 ? 2 : 0);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

}  // namespace qp
