#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace qp::common {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {}

void ThreadPool::ParallelFor(int count,
                             const std::function<void(int)>& fn) const {
  if (count <= 0) return;
  int workers = std::min(num_threads_, count);
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  auto drain = [&]() {
    while (true) {
      int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };

  // Workers are cheap relative to the chains they run (each chain is a
  // sequence of LP solves); spawning per call keeps the pool stateless.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers) - 1);
  for (int t = 1; t < workers; ++t) threads.emplace_back(drain);
  drain();  // the calling thread is worker 0
  for (std::thread& t : threads) t.join();
}

}  // namespace qp::common
