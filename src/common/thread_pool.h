// Small work-stealing thread pool for the LP candidate sweeps.
//
// Scope is deliberately narrow: the pricing algorithms fan out a modest
// number of coarse, independent work units (warm-start chains of candidate
// LPs) and join before reducing. ParallelFor hands out indices through a
// shared atomic cursor — an idle worker "steals" whatever index the busy
// ones have not claimed yet — which load-balances uneven chains without
// per-task queues. The calling thread participates, so `threads = 1`
// spawns nothing and runs inline; callers get bit-identical results for
// every thread count as long as each index writes only its own slot and
// the reduction happens index-ordered after the join.
#ifndef QP_COMMON_THREAD_POOL_H_
#define QP_COMMON_THREAD_POOL_H_

#include <functional>

namespace qp::common {

class ThreadPool {
 public:
  /// A pool that runs ParallelFor on up to `num_threads` threads in total
  /// (the caller counts as one). Values <= 1 mean "run everything inline".
  explicit ThreadPool(int num_threads);

  int num_threads() const { return num_threads_; }

  /// Invokes fn(0), ..., fn(count - 1), distributing indices dynamically
  /// across the pool, and returns once every call finished. fn must not
  /// throw; distinct indices may run concurrently, so fn must only touch
  /// index-private state (e.g. preallocated result slots).
  void ParallelFor(int count, const std::function<void(int)>& fn) const;

 private:
  int num_threads_;
};

}  // namespace qp::common

#endif  // QP_COMMON_THREAD_POOL_H_
