// Deterministic pseudo-random number generation.
//
// All randomness in qpricer flows through Rng (xoshiro256**, seeded via
// SplitMix64) so that every dataset, workload, support set and valuation
// draw is reproducible from a single 64-bit seed. std::mt19937 is avoided
// because its streams are not portable across standard library versions.
#ifndef QP_COMMON_RNG_H_
#define QP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qp {

/// SplitMix64 step: used for seeding and cheap stateless mixing.
uint64_t SplitMix64(uint64_t& state);

/// Mixes a 64-bit value into a well-distributed hash (stateless).
uint64_t Mix64(uint64_t x);

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// reimplemented here. Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  /// Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (cached second value).
  double StandardNormal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential with the given mean (mean = 1/lambda). Requires mean > 0.
  double Exponential(double mean);

  /// Returns a uniformly random subset of size k from {0, ..., n-1},
  /// in sorted order. Requires 0 <= k <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Creates an independent child generator; deterministic in (seed, key).
  Rng Fork(uint64_t key) const;

 private:
  uint64_t s_[4];
  uint64_t seed_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace qp

#endif  // QP_COMMON_RNG_H_
