#include "common/str_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace qp {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string FormatDouble(double value, int max_decimals) {
  std::string out = StrFormat("%.*f", max_decimals, value);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace qp
