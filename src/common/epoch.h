// Epoch-based memory reclamation for single-writer / many-reader
// structures (the serving engine's delta-chain price books).
//
// The problem: a writer unlinks a node that lock-free readers may still
// be traversing. shared_ptr solves it with two atomic refcount updates
// per reader pin — contended cache-line traffic on the hottest read
// path. Epochs solve it with one uncontended store per pin:
//
//  * The manager keeps a global epoch counter and a fixed array of
//    cache-line-padded reader slots.
//  * A reader entering a read-side critical section constructs a Guard:
//    it claims a free slot (CAS kIdle -> observed epoch) and then
//    re-checks the global epoch, republishing until the two agree. On
//    exit the Guard stores kIdle back. No shared counter is touched.
//  * The writer unlinks a node, hands it to Retire() stamped with the
//    current epoch, bumps the epoch, and calls Reclaim(), which frees
//    every retired node whose stamp is older than the minimum epoch
//    pinned by any active reader.
//
// Reclamation guarantee (the Dekker argument, all epoch operations
// seq_cst): a reader's final pinned epoch e is the last global value it
// observed after publishing its slot. If e <= R (the retire stamp), the
// slot publication precedes the writer's post-bump slot scan in the
// single total order, so the scan sees e and holds the node (min pinned
// <= R). If e > R, the reader observed the post-retire bump, which the
// unlink happens-before — the reader can only reach the replacement
// node, never the retired one. Either way no node is freed while a
// reader that could reach it is pinned. Freeing itself is ordered after
// every reader's accesses through the release slot-store / acquire
// slot-scan pair (unbroken release sequence through slot CAS claims).
//
// Slot exhaustion (more concurrent readers than slots) falls back to a
// mutex-registered overflow list — correct, just not lock-free; size the
// slot array above the reader thread count to stay on the fast path.
//
// Thread safety: Guard construction/destruction from any thread.
// Retire / BumpEpoch / Reclaim may race each other (shard writers fan
// out over a shared manager); a node must be retired at most once.
#ifndef QP_COMMON_EPOCH_H_
#define QP_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace qp::common {

class EpochManager {
 public:
  /// Slot value meaning "no reader": all-ones, never a real epoch.
  static constexpr uint64_t kIdle = ~0ull;

  struct Stats {
    uint64_t epoch = 0;
    /// Cumulative Guard claims — the reader-pin counter serving paths
    /// report instead of shared_ptr refcounts.
    uint64_t pins = 0;
    uint64_t retired = 0;
    uint64_t reclaimed = 0;
    /// Retired but not yet freed.
    uint64_t pending = 0;
    /// Pins that overflowed the slot array onto the mutex path.
    uint64_t overflow_pins = 0;
  };

  /// `num_slots` bounds the number of concurrent lock-free readers;
  /// further readers take the (correct, slower) overflow path.
  explicit EpochManager(int num_slots = 128);

  /// Frees everything still pending. No Guard may outlive the manager.
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII read-side critical section: while alive, no node retired at an
  /// epoch >= the epoch observed at construction is freed. Movable so
  /// views can carry their pin.
  class Guard {
   public:
    Guard() = default;
    explicit Guard(EpochManager& manager) { manager.Pin(*this); }
    ~Guard() { Release(); }

    Guard(Guard&& other) noexcept
        : manager_(other.manager_), slot_(other.slot_), epoch_(other.epoch_) {
      other.manager_ = nullptr;
    }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = other.manager_;
        slot_ = other.slot_;
        epoch_ = other.epoch_;
        other.manager_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    bool pinned() const { return manager_ != nullptr; }
    uint64_t epoch() const { return epoch_; }

    /// Unpins early (idempotent).
    void Release() {
      if (manager_ != nullptr) {
        manager_->Unpin(*this);
        manager_ = nullptr;
      }
    }

   private:
    friend class EpochManager;
    EpochManager* manager_ = nullptr;
    int slot_ = -1;  // -1: registered on the overflow list
    uint64_t epoch_ = 0;
  };

  /// Hands an unlinked node to the manager, stamped with the current
  /// epoch. `deleter(node)` runs once no reader pinned at or before the
  /// stamp remains — from a later Reclaim() or the destructor. The node
  /// must already be unreachable from the published structure.
  void Retire(void* node, void (*deleter)(void*));

  /// Advances the global epoch. Call after Retire so the retired stamp
  /// becomes strictly older than every future pin.
  void BumpEpoch();

  /// Frees every retired node older than the minimum pinned epoch.
  void Reclaim();

  uint64_t epoch() const { return epoch_.load(std::memory_order_seq_cst); }

  /// True when every currently-pinned reader observed an epoch strictly
  /// newer than `epoch` — i.e. every reader that could have seen state
  /// published at or before `epoch` has since unpinned. Writers use this
  /// as a drain gate before mutating memory those readers might still
  /// reference (the versioned catalog's fold). The answer is
  /// instantaneous: a reader pinning after the check pins at a newer
  /// epoch and cannot invalidate it (see the Dekker argument above).
  bool DrainedAfter(uint64_t epoch) const { return MinPinnedEpoch() > epoch; }

  Stats stats() const;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };
  struct RetiredNode {
    void* node;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  void Pin(Guard& guard);
  void Unpin(Guard& guard);
  /// Minimum epoch pinned by any reader; current epoch when none.
  uint64_t MinPinnedEpoch() const;

  const int num_slots_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> epoch_{1};

  std::atomic<uint64_t> pins_{0};
  std::atomic<uint64_t> overflow_pins_{0};
  std::atomic<uint64_t> retired_total_{0};
  std::atomic<uint64_t> reclaimed_total_{0};

  mutable std::mutex retired_mutex_;
  std::vector<RetiredNode> retired_;

  /// Multiset of epochs pinned past the slot array (rare).
  mutable std::mutex overflow_mutex_;
  std::vector<uint64_t> overflow_;
};

}  // namespace qp::common

#endif  // QP_COMMON_EPOCH_H_
