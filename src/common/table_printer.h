// Column-aligned ASCII tables: every bench binary prints the rows/series
// behind the paper's figures and tables through this.
#ifndef QP_COMMON_TABLE_PRINTER_H_
#define QP_COMMON_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace qp {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: builds the row by formatting each value.
  template <typename... Args>
  void AddRowValues(const Args&... args) {
    std::vector<std::string> row;
    (row.push_back(ToCell(args)), ...);
    AddRow(std::move(row));
  }

  /// Renders the table with a separator line under the header.
  std::string ToString() const;

  /// Prints to the stream (used by benches: stdout).
  void Print(std::ostream& os) const;

 private:
  static std::string ToCell(const std::string& s) { return s; }
  static std::string ToCell(const char* s) { return s; }
  static std::string ToCell(double v);
  static std::string ToCell(int v);
  static std::string ToCell(long v);
  static std::string ToCell(unsigned long v);
  static std::string ToCell(unsigned int v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qp

#endif  // QP_COMMON_TABLE_PRINTER_H_
