// Monotonic wall-clock stopwatch for the runtime tables (Tables 4-6).
#ifndef QP_COMMON_STOPWATCH_H_
#define QP_COMMON_STOPWATCH_H_

#include <chrono>

namespace qp {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qp

#endif  // QP_COMMON_STOPWATCH_H_
