// Hashing utilities, including an order-independent multiset fingerprint.
//
// Fingerprint128 represents a multiset of elements as the componentwise
// 64-bit sum of two independent per-element hashes. Sums form a commutative
// group, so elements can be added AND removed in O(1) — the property the
// incremental conflict-set engine (src/market) relies on to process a cell
// delta without re-running the query.
#ifndef QP_COMMON_HASH_H_
#define QP_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

#include "common/rng.h"

namespace qp {

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// FNV-1a 64-bit hash of a byte string.
inline uint64_t HashBytes(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Order-independent multiset fingerprint (two independent 64-bit sums).
/// Equal multisets always produce equal fingerprints; distinct multisets
/// collide with probability ~2^-128 (each element hash is mixed twice
/// with different constants before summing).
struct Fingerprint128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  /// Adds one element (given by its 64-bit hash) to the multiset.
  void Add(uint64_t element_hash) {
    lo += Mix64(element_hash ^ 0x6a09e667f3bcc909ULL);
    hi += Mix64(element_hash ^ 0xbb67ae8584caa73bULL);
  }

  /// Removes one element previously added.
  void Remove(uint64_t element_hash) {
    lo -= Mix64(element_hash ^ 0x6a09e667f3bcc909ULL);
    hi -= Mix64(element_hash ^ 0xbb67ae8584caa73bULL);
  }

  /// Merges another multiset fingerprint into this one.
  void Merge(const Fingerprint128& other) {
    lo += other.lo;
    hi += other.hi;
  }

  bool operator==(const Fingerprint128& other) const {
    return lo == other.lo && hi == other.hi;
  }
  bool operator!=(const Fingerprint128& other) const { return !(*this == other); }
};

}  // namespace qp

#endif  // QP_COMMON_HASH_H_
