#include "common/epoch.h"

#include <algorithm>

namespace qp::common {

namespace {
// Per-thread slot hint so repeat pins from the same thread land on the
// same (cached, uncontended) slot. Seeded from a global counter; spread
// by a small odd stride so consecutive threads start on distinct slots.
std::atomic<uint32_t> hint_seed{0};
uint32_t& MutableHint() {
  static thread_local uint32_t hint =
      hint_seed.fetch_add(1, std::memory_order_relaxed) * 7u;
  return hint;
}
}  // namespace

EpochManager::EpochManager(int num_slots)
    : num_slots_(num_slots < 1 ? 1 : num_slots),
      slots_(std::make_unique<Slot[]>(static_cast<size_t>(num_slots_))) {}

EpochManager::~EpochManager() {
  // Contract: no Guard outlives the manager, so everything pending is
  // unreachable and frees unconditionally.
  for (const RetiredNode& r : retired_) r.deleter(r.node);
  reclaimed_total_.fetch_add(retired_.size(), std::memory_order_relaxed);
  retired_.clear();
}

void EpochManager::Pin(Guard& guard) {
  guard.manager_ = this;
  pins_.fetch_add(1, std::memory_order_relaxed);
  uint64_t e = epoch_.load(std::memory_order_seq_cst);
  uint32_t& hint = MutableHint();
  for (int attempt = 0; attempt < num_slots_; ++attempt) {
    int s = static_cast<int>((hint + static_cast<uint32_t>(attempt)) %
                             static_cast<uint32_t>(num_slots_));
    uint64_t expected = kIdle;
    if (slots_[static_cast<size_t>(s)].epoch.compare_exchange_strong(
            expected, e, std::memory_order_seq_cst)) {
      hint = static_cast<uint32_t>(s);
      // Republish until the global epoch agrees with what we pinned:
      // closes the race where a writer bumps between our epoch load and
      // the slot claim (the Dekker re-check in the header comment).
      while (true) {
        uint64_t latest = epoch_.load(std::memory_order_seq_cst);
        if (latest == e) break;
        slots_[static_cast<size_t>(s)].epoch.store(latest,
                                                   std::memory_order_seq_cst);
        e = latest;
      }
      guard.slot_ = s;
      guard.epoch_ = e;
      return;
    }
  }
  // Every slot busy: register on the overflow list (mutex-ordered against
  // MinPinnedEpoch's scan, so the same publish/re-check protocol holds).
  overflow_pins_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    overflow_.push_back(e);
  }
  while (true) {
    uint64_t latest = epoch_.load(std::memory_order_seq_cst);
    if (latest == e) break;
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    *std::find(overflow_.begin(), overflow_.end(), e) = latest;
    e = latest;
  }
  guard.slot_ = -1;
  guard.epoch_ = e;
}

void EpochManager::Unpin(Guard& guard) {
  if (guard.slot_ >= 0) {
    slots_[static_cast<size_t>(guard.slot_)].epoch.store(
        kIdle, std::memory_order_seq_cst);
    return;
  }
  std::lock_guard<std::mutex> lock(overflow_mutex_);
  overflow_.erase(std::find(overflow_.begin(), overflow_.end(), guard.epoch_));
}

void EpochManager::Retire(void* node, void (*deleter)(void*)) {
  const uint64_t stamp = epoch_.load(std::memory_order_seq_cst);
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(retired_mutex_);
  retired_.push_back(RetiredNode{node, deleter, stamp});
}

void EpochManager::BumpEpoch() {
  epoch_.fetch_add(1, std::memory_order_seq_cst);
}

uint64_t EpochManager::MinPinnedEpoch() const {
  uint64_t min = epoch_.load(std::memory_order_seq_cst);
  for (int s = 0; s < num_slots_; ++s) {
    const uint64_t pinned =
        slots_[static_cast<size_t>(s)].epoch.load(std::memory_order_seq_cst);
    if (pinned != kIdle && pinned < min) min = pinned;
  }
  std::lock_guard<std::mutex> lock(overflow_mutex_);
  for (uint64_t pinned : overflow_) {
    if (pinned < min) min = pinned;
  }
  return min;
}

void EpochManager::Reclaim() {
  std::vector<RetiredNode> free_list;
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    if (retired_.empty()) return;
    const uint64_t min = MinPinnedEpoch();
    auto keep = std::partition(
        retired_.begin(), retired_.end(),
        [min](const RetiredNode& r) { return r.epoch >= min; });
    free_list.assign(std::make_move_iterator(keep),
                     std::make_move_iterator(retired_.end()));
    retired_.erase(keep, retired_.end());
  }
  for (const RetiredNode& r : free_list) r.deleter(r.node);
  reclaimed_total_.fetch_add(free_list.size(), std::memory_order_relaxed);
}

EpochManager::Stats EpochManager::stats() const {
  Stats out;
  out.epoch = epoch_.load(std::memory_order_relaxed);
  out.pins = pins_.load(std::memory_order_relaxed);
  out.retired = retired_total_.load(std::memory_order_relaxed);
  out.reclaimed = reclaimed_total_.load(std::memory_order_relaxed);
  out.overflow_pins = overflow_pins_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    out.pending = retired_.size();
  }
  return out;
}

}  // namespace qp::common
