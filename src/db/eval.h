// Reference (naive) query evaluator with deterministic, canonical results.
//
// Q(D) is treated as a *function* of the database (paper Section 3): two
// result tables are equal iff their canonical forms match. The engine
// therefore canonically sorts every result; LIMIT is applied after the
// sort, making LIMIT queries deterministic functions as well.
//
// This evaluator is the correctness oracle for the O(1)-per-delta
// incremental conflict engine in src/market/conflict.h, which re-implements
// the same semantics via per-row contribution bookkeeping.
#ifndef QP_DB_EVAL_H_
#define QP_DB_EVAL_H_

#include <vector>

#include "common/hash.h"
#include "db/database.h"
#include "db/delta_overlay.h"
#include "db/query.h"

namespace qp::db {

/// Materialized, canonically-sorted query result.
struct ResultTable {
  std::vector<Row> rows;

  /// Lexicographic sort by Value::Compare.
  void CanonicalSort();

  bool Equals(const ResultTable& other) const;

  /// Order-independent multiset fingerprint of the rows.
  Fingerprint128 Fingerprint() const;

  /// 64-bit hash of one row (order-sensitive within the row).
  static uint64_t RowHash(const Row& row);

  std::string ToString(int max_rows = 20) const;
};

/// Evaluates a bound query. The query must Validate() against `db`.
ResultTable Evaluate(const BoundQuery& query, const Database& db);

/// Evaluates a bound query against `db` with `overlay`'s patched cells in
/// effect — bit-identical to mutating the cells in place, evaluating, and
/// reverting, but without ever writing to `db`. This is the read path
/// conflict probing uses to stay const over the shared database.
ResultTable Evaluate(const BoundQuery& query, const Database& db,
                     const DeltaOverlay& overlay);

/// Computes one aggregate over `rows` (pointers into the joined input),
/// visiting rows in the given order. Exposed so the incremental engine
/// reproduces identical values (including double accumulation order).
Value ComputeAggregate(AggFunc func, int arg_col,
                       const std::vector<const Row*>& rows);

/// The joined + filtered input rows of a query, before projection /
/// grouping, in deterministic order (left row index, then right row
/// index). Exposed for the incremental engine's initial state build.
std::vector<Row> GatherInputRows(const BoundQuery& query, const Database& db);

/// Overlay-aware variant: gathers the input rows of the query against
/// `db` with `overlay`'s patched cells in effect.
std::vector<Row> GatherInputRows(const BoundQuery& query, const Database& db,
                                 const DeltaOverlay& overlay);

/// Projects one input row through the query's select list (aggregate items
/// yield NULL; only meaningful for non-aggregate queries). Exposed so the
/// incremental conflict engine shares projection semantics byte-for-byte.
Row ProjectInputRow(const BoundQuery& query, const Row& input);

}  // namespace qp::db

#endif  // QP_DB_EVAL_H_
