// A named collection of tables (the seller's instance D).
#ifndef QP_DB_DATABASE_H_
#define QP_DB_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/table.h"

namespace qp::db {

class Database {
 public:
  /// Adds a table; fails on duplicate (case-insensitive) names.
  Status AddTable(Table table);

  /// Case-insensitive lookup; nullptr when absent.
  const Table* FindTable(const std::string& name) const;
  Table* FindTable(const std::string& name);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const Table& table(int idx) const { return *tables_[idx]; }
  Table& table(int idx) { return *tables_[idx]; }

  /// Index of a table by name, -1 if absent.
  int FindTableIndex(const std::string& name) const;

  /// Total number of rows across tables.
  int64_t TotalRows() const;

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, int> index_;  // lower-cased name -> idx
};

}  // namespace qp::db

#endif  // QP_DB_DATABASE_H_
