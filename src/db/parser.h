// Recursive-descent parser + binder for the SQL subset:
//
//   SELECT [DISTINCT] select_list
//   FROM table [alias] [, table [alias]]
//   [WHERE predicate]
//   [GROUP BY column_list]
//   [LIMIT n]
//
// select_list: '*' | items; item: column | literal |
//   COUNT(*) | COUNT([DISTINCT] col) | SUM/AVG/MIN/MAX(col)
// predicate: AND/OR/NOT over comparisons (= <> < <= > >=), BETWEEN,
//   LIKE, IN (...); parenthesized subexpressions allowed.
//
// Two-table queries follow the workloads' implicit-join style: the first
// top-level `colA = colB` conjunct whose columns come from different
// tables becomes the equi-join; remaining conditions stay as the residual
// predicate. Names bind case-insensitively against the Database, with
// optional table aliases (e.g. "from Country C ... where C.Code = ...").
#ifndef QP_DB_PARSER_H_
#define QP_DB_PARSER_H_

#include <string>

#include "common/status.h"
#include "db/database.h"
#include "db/query.h"

namespace qp::db {

/// Parses and binds `sql` against `db`. The returned query passes
/// BoundQuery::Validate.
Result<BoundQuery> ParseQuery(const std::string& sql, const Database& db);

}  // namespace qp::db

#endif  // QP_DB_PARSER_H_
