// SQL value: NULL, 64-bit integer, double, or string.
//
// The engine favors integer columns for all dataset numerics (scaled
// decimals such as cents / tenths) so that aggregate accumulators stay
// exact; this is what lets the incremental conflict-set engine update
// SUM/AVG in O(1) without floating-point drift relative to the naive
// evaluator (see src/market/conflict.h).
#ifndef QP_DB_VALUE_H_
#define QP_DB_VALUE_H_

#include <cstdint>
#include <string>

namespace qp::db {

enum class ValueType : uint8_t { kNull = 0, kInt, kDouble, kString };

const char* ValueTypeToString(ValueType type);

class Value {
 public:
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt;
    out.int_ = v;
    return out;
  }
  static Value Real(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.double_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = std::move(v);
    return out;
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  /// Preconditions: matching type() (checked only by assert in debug).
  int64_t as_int() const { return int_; }
  double as_double() const { return double_; }
  const std::string& as_string() const { return string_; }

  /// Numeric coercion: kInt/kDouble as double; 0.0 for others.
  double ToNumeric() const;

  /// Total order used for canonical result sorting and comparisons:
  /// NULL < numerics (kInt and kDouble compared by numeric value) < strings.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable 64-bit hash; equal values (including int 2 == double 2.0)
  /// hash equally.
  uint64_t Hash() const;

  /// Display form ("NULL", "42", "1.5", "abc").
  std::string ToString() const;

 private:
  ValueType type_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

}  // namespace qp::db

#endif  // QP_DB_VALUE_H_
