#include "db/table.h"

#include "common/str_util.h"

namespace qp::db {

Status Table::AppendRow(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrCat("row arity ", row.size(), " != schema arity ",
               schema_.num_columns(), " for table ", name_));
  }
  for (int c = 0; c < schema_.num_columns(); ++c) {
    if (row[c].is_null()) continue;
    if (row[c].type() != schema_.column(c).type) {
      return Status::InvalidArgument(
          StrCat("column ", schema_.column(c).name, " expects ",
                 ValueTypeToString(schema_.column(c).type), " got ",
                 ValueTypeToString(row[c].type())));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

}  // namespace qp::db
