#include "db/eval.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/str_util.h"

namespace qp::db {

void ResultTable::CanonicalSort() {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
}

bool ResultTable::Equals(const ResultTable& other) const {
  if (rows.size() != other.rows.size()) return false;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != other.rows[i].size()) return false;
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (rows[i][j].Compare(other.rows[i][j]) != 0) return false;
    }
  }
  return true;
}

uint64_t ResultTable::RowHash(const Row& row) {
  uint64_t h = 0x12345678u;
  for (const Value& v : row) h = HashCombine(h, v.Hash());
  return h;
}

Fingerprint128 ResultTable::Fingerprint() const {
  Fingerprint128 fp;
  for (const Row& row : rows) fp.Add(RowHash(row));
  return fp;
}

std::string ResultTable::ToString(int max_rows) const {
  std::string out;
  int shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= max_rows) {
      out += StrCat("... (", rows.size(), " rows total)\n");
      break;
    }
    std::vector<std::string> cells;
    for (const Value& v : row) cells.push_back(v.ToString());
    out += Join(cells, " | ") + "\n";
  }
  if (rows.empty()) out = "(empty)\n";
  return out;
}

namespace {

// Overlay-aware row reads for one table slot. `row(r)` hands back a
// reference into the base table for untouched rows and a reference to a
// local patched copy for rows the overlay rewrites; the reference is
// valid until the next row(r) call on the same source.
class RowSource {
 public:
  RowSource(const Database& db, int table_idx, const DeltaOverlay* overlay)
      : db_(db),
        table_(db.table(table_idx)),
        table_idx_(table_idx),
        patched_(overlay != nullptr && overlay->TouchesTable(table_idx)
                     ? overlay
                     : nullptr) {}

  int num_rows() const { return table_.num_rows(); }

  const Row& row(int r) {
    if (patched_ == nullptr || !patched_->TouchesRow(table_idx_, r)) {
      return table_.row(r);
    }
    scratch_ = patched_->PatchedRow(db_, table_idx_, r);
    return scratch_;
  }

  const Value& cell(int r, int c) {
    if (patched_ == nullptr) return table_.cell(r, c);
    return patched_->Cell(db_, table_idx_, r, c);
  }

 private:
  const Database& db_;
  const Table& table_;
  int table_idx_;
  const DeltaOverlay* patched_;
  Row scratch_;
};

std::vector<Row> GatherInputRowsImpl(const BoundQuery& query,
                                     const Database& db,
                                     const DeltaOverlay* overlay) {
  std::vector<Row> input;
  RowSource src0(db, query.table_indices[0], overlay);
  if (query.table_indices.size() == 1) {
    for (int r = 0; r < src0.num_rows(); ++r) {
      const Row& row = src0.row(r);
      if (query.predicate && !query.predicate->EvaluateBool(row)) continue;
      input.push_back(row);
    }
    return input;
  }
  // Hash equi-join; output ordered by (left row index, right row index).
  // Self-joins are rejected by BoundQuery::Validate, so the two sources
  // never alias one scratch row.
  RowSource src1(db, query.table_indices[1], overlay);
  int right_col = query.join_right - query.column_offsets[1];
  std::unordered_map<uint64_t, std::vector<int>> right_index;
  for (int r = 0; r < src1.num_rows(); ++r) {
    right_index[src1.cell(r, right_col).Hash()].push_back(r);
  }
  for (int l = 0; l < src0.num_rows(); ++l) {
    const Value& key = src0.cell(l, query.join_left);
    auto it = right_index.find(key.Hash());
    if (it == right_index.end()) continue;
    for (int r : it->second) {
      // Hash buckets can collide; confirm real equality.
      if (key.Compare(src1.cell(r, right_col)) != 0) continue;
      Row joined = src0.row(l);
      const Row& rrow = src1.row(r);
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      if (query.predicate && !query.predicate->EvaluateBool(joined)) continue;
      input.push_back(std::move(joined));
    }
  }
  return input;
}

}  // namespace

std::vector<Row> GatherInputRows(const BoundQuery& query, const Database& db) {
  return GatherInputRowsImpl(query, db, nullptr);
}

std::vector<Row> GatherInputRows(const BoundQuery& query, const Database& db,
                                 const DeltaOverlay& overlay) {
  return GatherInputRowsImpl(query, db, &overlay);
}

Value ComputeAggregate(AggFunc func, int arg_col,
                       const std::vector<const Row*>& rows) {
  switch (func) {
    case AggFunc::kCount: {
      if (arg_col < 0) return Value::Int(static_cast<int64_t>(rows.size()));
      int64_t n = 0;
      for (const Row* r : rows) n += (*r)[arg_col].is_null() ? 0 : 1;
      return Value::Int(n);
    }
    case AggFunc::kCountDistinct: {
      std::set<Value> seen;
      for (const Row* r : rows) {
        const Value& v = (*r)[arg_col];
        if (!v.is_null()) seen.insert(v);
      }
      return Value::Int(static_cast<int64_t>(seen.size()));
    }
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      bool all_int = true;
      int64_t int_sum = 0;
      double dbl_sum = 0.0;
      int64_t count = 0;
      for (const Row* r : rows) {
        const Value& v = (*r)[arg_col];
        if (v.is_null()) continue;
        ++count;
        if (v.type() == ValueType::kInt && all_int) {
          int_sum += v.as_int();
        } else {
          if (all_int) {
            // Switch to double accumulation from the integer prefix.
            dbl_sum = static_cast<double>(int_sum);
            all_int = false;
          }
          dbl_sum += v.ToNumeric();
        }
      }
      if (count == 0) return Value::Null();  // SQL: SUM/AVG of empty is NULL
      if (func == AggFunc::kSum) {
        return all_int ? Value::Int(int_sum) : Value::Real(dbl_sum);
      }
      double total = all_int ? static_cast<double>(int_sum) : dbl_sum;
      return Value::Real(total / static_cast<double>(count));
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      const Value* best = nullptr;
      for (const Row* r : rows) {
        const Value& v = (*r)[arg_col];
        if (v.is_null()) continue;
        if (best == nullptr) {
          best = &v;
        } else if (func == AggFunc::kMin ? v.Compare(*best) < 0
                                         : v.Compare(*best) > 0) {
          best = &v;
        }
      }
      return best == nullptr ? Value::Null() : *best;
    }
  }
  return Value::Null();
}

Row ProjectInputRow(const BoundQuery& query, const Row& input) {
  Row out;
  out.reserve(query.select.size());
  for (const SelectItem& item : query.select) {
    switch (item.kind) {
      case SelectItem::Kind::kColumn:
        out.push_back(input[item.column]);
        break;
      case SelectItem::Kind::kLiteral:
        out.push_back(item.literal);
        break;
      case SelectItem::Kind::kAggregate:
        out.push_back(Value::Null());  // unreachable in non-agg path
        break;
    }
  }
  return out;
}

namespace {

struct GroupKeyLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  }
};

ResultTable EvaluateRows(const BoundQuery& query, std::vector<Row> input) {
  ResultTable result;

  bool grouped = query.has_aggregates() || !query.group_by.empty();
  if (grouped) {
    // Group input rows by group-by key (ordered map => deterministic).
    std::map<Row, std::vector<const Row*>, GroupKeyLess> groups;
    if (query.group_by.empty()) {
      // Global aggregate: single group, present even for empty input.
      std::vector<const Row*>& g = groups[Row{}];
      for (const Row& r : input) g.push_back(&r);
    } else {
      for (const Row& r : input) {
        Row key;
        key.reserve(query.group_by.size());
        for (int c : query.group_by) key.push_back(r[c]);
        groups[std::move(key)].push_back(&r);
      }
    }
    for (const auto& [key, rows] : groups) {
      Row out;
      out.reserve(query.select.size());
      for (const SelectItem& item : query.select) {
        switch (item.kind) {
          case SelectItem::Kind::kColumn: {
            // Validated: the column is part of the group-by key.
            auto it = std::find(query.group_by.begin(), query.group_by.end(),
                                item.column);
            out.push_back(key[it - query.group_by.begin()]);
            break;
          }
          case SelectItem::Kind::kAggregate:
            out.push_back(ComputeAggregate(item.agg, item.column, rows));
            break;
          case SelectItem::Kind::kLiteral:
            out.push_back(item.literal);
            break;
        }
      }
      result.rows.push_back(std::move(out));
    }
    // GROUP BY without aggregates = DISTINCT over group columns; the
    // grouping above already deduplicated.
  } else {
    result.rows.reserve(input.size());
    for (const Row& r : input) result.rows.push_back(ProjectInputRow(query, r));
    if (query.distinct) {
      std::set<Row, GroupKeyLess> dedup(result.rows.begin(), result.rows.end());
      result.rows.assign(dedup.begin(), dedup.end());
    }
  }

  result.CanonicalSort();
  if (query.limit >= 0 &&
      static_cast<int64_t>(result.rows.size()) > query.limit) {
    result.rows.resize(query.limit);
  }
  return result;
}

}  // namespace

ResultTable Evaluate(const BoundQuery& query, const Database& db) {
  return EvaluateRows(query, GatherInputRows(query, db));
}

ResultTable Evaluate(const BoundQuery& query, const Database& db,
                     const DeltaOverlay& overlay) {
  return EvaluateRows(query, GatherInputRows(query, db, overlay));
}

}  // namespace qp::db
