#include "db/versioned_database.h"

#include <cassert>
#include <chrono>
#include <utility>

namespace qp::db {

VersionedDatabase::VersionedDatabase(const Database* base,
                                     common::EpochManager* epochs,
                                     int fold_every)
    : base_(base), epochs_(epochs), fold_every_(fold_every) {
  auto* root = new Generation;
  root->number = 0;
  root->publish_epoch.store(epochs_->epoch(), std::memory_order_seq_cst);
  head_.store(root, std::memory_order_seq_cst);
}

VersionedDatabase::~VersionedDatabase() {
  // Retired generations belong to the epoch manager; only the live head
  // is ours to free. No reader may outlive the catalog.
  delete head_.load(std::memory_order_seq_cst);
}

void VersionedDatabase::DeleteGeneration(void* p) {
  delete static_cast<Generation*>(p);
}

Value VersionedDatabase::LogicalCell(int table, int row, int column) const {
  common::EpochManager::Guard guard(*epochs_);
  return head()->overlay.Cell(*base_, table, row, column);
}

void VersionedDatabase::Publish(Generation* next, Generation* old) {
  // Mirror stores BEFORE the head store: the seq_cst head store/load
  // pair orders them, so a reader that pinned any published generation
  // reads mirrors at least as new — head_generation() minus a pinned
  // number never underflows.
  head_number_.store(next->number, std::memory_order_seq_cst);
  pending_cells_.store(next->overlay.entries().size(),
                       std::memory_order_seq_cst);
  head_.store(next, std::memory_order_seq_cst);
  // Stamp after the head store: every reader that observed an older
  // head loaded its pin epoch before this load (seq_cst total order),
  // so its pinned epoch is <= this stamp — the fold gate's premise.
  next->publish_epoch.store(epochs_->epoch(), std::memory_order_seq_cst);
  epochs_->Retire(old, &DeleteGeneration);
  epochs_->BumpEpoch();
  epochs_->Reclaim();
}

void VersionedDatabase::Commit(Database& base_mut, int table, int row,
                               int column, Value value) {
  assert(&base_mut == base_ && "Commit requires the catalog's own base");
  Generation* cur = head_.load(std::memory_order_seq_cst);
  auto* next = new Generation;
  next->number = cur->number + 1;
  next->overlay = cur->overlay;
  next->overlay.Set(table, row, column, std::move(value));
  const size_t pending = next->overlay.entries().size();
  Publish(next, cur);
  generations_published_.fetch_add(1, std::memory_order_relaxed);
  if (fold_every_ > 0 && pending >= static_cast<size_t>(fold_every_)) {
    TryFold(base_mut);
  }
}

bool VersionedDatabase::TryFold(Database& base_mut) {
  assert(&base_mut == base_ && "TryFold requires the catalog's own base");
  Generation* cur = head_.load(std::memory_order_seq_cst);
  if (cur->overlay.entries().empty()) return false;
  // Drain gate: run only when every pinned reader pinned *after* this
  // generation became head — such readers hold exactly cur's overlay,
  // which shadows every cell written below, so the in-place base writes
  // race no reader load. Readers arriving mid-fold pin a newer epoch
  // and load either cur (still covered) or the post-fold head (base
  // writes ordered before its seq_cst store).
  if (!epochs_->DrainedAfter(
          cur->publish_epoch.load(std::memory_order_seq_cst))) {
    fold_retries_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const auto start = std::chrono::steady_clock::now();
  const size_t folded = cur->overlay.entries().size();
  for (const DeltaOverlay::Entry& e : cur->overlay.entries()) {
    base_mut.table(e.table).SetCell(e.row, e.column, e.value);
  }
  auto* next = new Generation;
  next->number = cur->number;  // A fold commits nothing.
  Publish(next, cur);  // May free cur: no touching it past this line.
  const auto elapsed = std::chrono::steady_clock::now() - start;
  folds_.fetch_add(1, std::memory_order_relaxed);
  deltas_folded_.fetch_add(folded, std::memory_order_relaxed);
  fold_nanos_.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()),
      std::memory_order_relaxed);
  return true;
}

VersionedDatabase::Stats VersionedDatabase::stats() const {
  Stats out;
  out.generations_published =
      generations_published_.load(std::memory_order_relaxed);
  out.folds = folds_.load(std::memory_order_relaxed);
  out.fold_retries = fold_retries_.load(std::memory_order_relaxed);
  out.deltas_folded = deltas_folded_.load(std::memory_order_relaxed);
  out.fold_nanos = fold_nanos_.load(std::memory_order_relaxed);
  // Pin-free by design: quote paths assert exact epoch-pin counts, so a
  // stats gauge must not pin. The mirror is the head's exact count.
  out.deltas_pending = pending_cells_.load(std::memory_order_seq_cst);
  return out;
}

}  // namespace qp::db
