// In-memory row-oriented table.
#ifndef QP_DB_TABLE_H_
#define QP_DB_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/schema.h"
#include "db/value.h"

namespace qp::db {

using Row = std::vector<Value>;

class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  const Row& row(int idx) const { return rows_[idx]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row after checking arity and type compatibility
  /// (NULL allowed in any column).
  Status AppendRow(Row row);

  const Value& cell(int row, int col) const { return rows_[row][col]; }

  /// Overwrites one cell; used by the conflict engine's apply/undo of
  /// support deltas. No type checking (the support generator only produces
  /// same-type perturbations; tests cover mixed types explicitly).
  void SetCell(int row, int col, Value value) {
    rows_[row][col] = std::move(value);
  }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace qp::db

#endif  // QP_DB_TABLE_H_
