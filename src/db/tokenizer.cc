#include "db/tokenizer.h"

#include <cctype>

#include "common/str_util.h"

namespace qp::db {

bool Token::IsSymbol(const char* s) const {
  return type == TokenType::kSymbol && text == s;
}

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tok.type = TokenType::kIdentifier;
      tok.text = sql.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i + 1 < n && sql[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string num = sql.substr(start, i - start);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::stod(num);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::stoll(num);
      }
      tok.text = std::move(num);
    } else if (c == '\'') {
      ++i;
      std::string contents;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // doubled quote escape
            contents.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        contents.push_back(sql[i++]);
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrCat("unterminated string literal at offset ", tok.position));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(contents);
    } else {
      // Multi-char operators first.
      auto two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tok.type = TokenType::kSymbol;
        tok.text = two == "!=" ? "<>" : two;  // normalize != to <>
        i += 2;
      } else if (c == '(' || c == ')' || c == ',' || c == '.' || c == '*' ||
                 c == '=' || c == '<' || c == '>' || c == '+' || c == '-' ||
                 c == '/' || c == '%') {
        tok.type = TokenType::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      } else {
        return Status::InvalidArgument(
            StrCat("unexpected character '", std::string(1, c), "' at offset ",
                   i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace qp::db
