// Sparse cell overlay: a read-only "database D with a few cells
// overwritten" view.
//
// Conflict probing asks what Q(D') is for a neighboring instance D' that
// differs from the seller's D in a single cell. Historically that was
// answered by mutating D in place (apply / evaluate / revert), which
// forced every prober to serialize on the one shared database. A
// DeltaOverlay instead carries the patched cells *next to* a const
// Database: readers consult the overlay first and fall through to the
// base table, so any number of probes can run concurrently against one
// immutable D. The evaluator (db/eval.h) accepts an overlay for full
// re-evaluation; the incremental conflict engine patches rows through
// PatchedRow for its per-row contribution updates.
//
// Overlays chain: set_parent() links a probe-local overlay (one delta)
// over a published catalog generation's overlay (committed seller
// deltas, see db/versioned_database.h). Lookups consult own entries
// first, then the parent — the child shadows the parent cell-by-cell.
// entries() stays own-only: it is the folding writer's view of exactly
// what this overlay adds.
//
// Fold-safety contract: every read helper here resolves patched cells
// from the overlay chain and touches the base table only for cells no
// chained entry covers. The catalog's fold writes precisely the cells of
// a generation's overlay into the base while readers pinned on that
// generation may still be probing — those readers never load a base cell
// the fold is writing, because the overlay shadows it. PatchedRow
// therefore builds its copy cell by cell rather than copying the base
// row wholesale.
#ifndef QP_DB_DELTA_OVERLAY_H_
#define QP_DB_DELTA_OVERLAY_H_

#include <vector>

#include "db/database.h"
#include "db/table.h"
#include "db/value.h"

namespace qp::db {

class DeltaOverlay {
 public:
  struct Entry {
    int table = 0;
    int row = 0;
    int column = 0;
    Value value;
  };

  DeltaOverlay() = default;

  /// Convenience: an overlay of exactly one patched cell (the common
  /// conflict-probe shape).
  DeltaOverlay(int table, int row, int column, Value value) {
    Set(table, row, column, std::move(value));
  }

  /// Adds or replaces one patched cell (in this overlay; the parent is
  /// never mutated through the child).
  void Set(int table, int row, int column, Value value) {
    for (Entry& e : entries_) {
      if (e.table == table && e.row == row && e.column == column) {
        e.value = std::move(value);
        return;
      }
    }
    entries_.push_back(Entry{table, row, column, std::move(value)});
  }

  /// Chains this overlay over `parent`: lookups that miss here fall
  /// through to the parent before reaching the base table. The parent
  /// must outlive every read through this overlay (callers pin the
  /// owning generation via an epoch guard).
  void set_parent(const DeltaOverlay* parent) { parent_ = parent; }
  const DeltaOverlay* parent() const { return parent_; }

  bool empty() const {
    return entries_.empty() && (parent_ == nullptr || parent_->empty());
  }
  /// Own entries only — excludes the parent chain.
  const std::vector<Entry>& entries() const { return entries_; }

  /// The patched value of a cell, or nullptr when the base table's value
  /// is in effect. Own entries shadow the parent's.
  const Value* Find(int table, int row, int column) const {
    for (const Entry& e : entries_) {
      if (e.table == table && e.row == row && e.column == column) {
        return &e.value;
      }
    }
    return parent_ != nullptr ? parent_->Find(table, row, column) : nullptr;
  }

  bool TouchesTable(int table) const {
    for (const Entry& e : entries_) {
      if (e.table == table) return true;
    }
    return parent_ != nullptr && parent_->TouchesTable(table);
  }

  bool TouchesRow(int table, int row) const {
    for (const Entry& e : entries_) {
      if (e.table == table && e.row == row) return true;
    }
    return parent_ != nullptr && parent_->TouchesRow(table, row);
  }

  /// Overlay-aware cell read.
  const Value& Cell(const Database& db, int table, int row, int column) const {
    const Value* patched = Find(table, row, column);
    return patched != nullptr ? *patched : db.table(table).cell(row, column);
  }

  /// A copy of the row with every patch for (table, row) applied. Built
  /// cell by cell so base cells shadowed anywhere in the chain are never
  /// loaded (see the fold-safety contract above).
  Row PatchedRow(const Database& db, int table, int row) const {
    const Row& base = db.table(table).row(row);
    Row out;
    out.reserve(base.size());
    for (size_t c = 0; c < base.size(); ++c) {
      const Value* patched = Find(table, row, static_cast<int>(c));
      out.push_back(patched != nullptr ? *patched : base[c]);
    }
    return out;
  }

 private:
  // Linear scans: overlays hold one (occasionally a handful of) entries,
  // so a flat vector beats any hashed container.
  std::vector<Entry> entries_;
  const DeltaOverlay* parent_ = nullptr;
};

}  // namespace qp::db

#endif  // QP_DB_DELTA_OVERLAY_H_
