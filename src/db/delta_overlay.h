// Sparse cell overlay: a read-only "database D with a few cells
// overwritten" view.
//
// Conflict probing asks what Q(D') is for a neighboring instance D' that
// differs from the seller's D in a single cell. Historically that was
// answered by mutating D in place (apply / evaluate / revert), which
// forced every prober to serialize on the one shared database. A
// DeltaOverlay instead carries the patched cells *next to* a const
// Database: readers consult the overlay first and fall through to the
// base table, so any number of probes can run concurrently against one
// immutable D. The evaluator (db/eval.h) accepts an overlay for full
// re-evaluation; the incremental conflict engine patches rows through
// PatchedRow for its per-row contribution updates.
#ifndef QP_DB_DELTA_OVERLAY_H_
#define QP_DB_DELTA_OVERLAY_H_

#include <vector>

#include "db/database.h"
#include "db/table.h"
#include "db/value.h"

namespace qp::db {

class DeltaOverlay {
 public:
  struct Entry {
    int table = 0;
    int row = 0;
    int column = 0;
    Value value;
  };

  DeltaOverlay() = default;

  /// Convenience: an overlay of exactly one patched cell (the common
  /// conflict-probe shape).
  DeltaOverlay(int table, int row, int column, Value value) {
    Set(table, row, column, std::move(value));
  }

  /// Adds or replaces one patched cell.
  void Set(int table, int row, int column, Value value) {
    for (Entry& e : entries_) {
      if (e.table == table && e.row == row && e.column == column) {
        e.value = std::move(value);
        return;
      }
    }
    entries_.push_back(Entry{table, row, column, std::move(value)});
  }

  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// The patched value of a cell, or nullptr when the base table's value
  /// is in effect.
  const Value* Find(int table, int row, int column) const {
    for (const Entry& e : entries_) {
      if (e.table == table && e.row == row && e.column == column) {
        return &e.value;
      }
    }
    return nullptr;
  }

  bool TouchesTable(int table) const {
    for (const Entry& e : entries_) {
      if (e.table == table) return true;
    }
    return false;
  }

  bool TouchesRow(int table, int row) const {
    for (const Entry& e : entries_) {
      if (e.table == table && e.row == row) return true;
    }
    return false;
  }

  /// Overlay-aware cell read.
  const Value& Cell(const Database& db, int table, int row, int column) const {
    const Value* patched = Find(table, row, column);
    return patched != nullptr ? *patched : db.table(table).cell(row, column);
  }

  /// A copy of the row with every patch for (table, row) applied.
  Row PatchedRow(const Database& db, int table, int row) const {
    Row out = db.table(table).row(row);
    for (const Entry& e : entries_) {
      if (e.table == table && e.row == row) {
        out[static_cast<size_t>(e.column)] = e.value;
      }
    }
    return out;
  }

 private:
  // Linear scans: overlays hold one (occasionally a handful of) entries,
  // so a flat vector beats any hashed container.
  std::vector<Entry> entries_;
};

}  // namespace qp::db

#endif  // QP_DB_DELTA_OVERLAY_H_
