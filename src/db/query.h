// Bound query representation.
//
// A BoundQuery is a fully-resolved select/project/equi-join/aggregate query
// over a Database: every column reference is a *flat* index into the
// concatenation of the referenced tables' schemas (table 0's columns first,
// then table 1's). Queries are produced either by the SQL parser
// (db/parser.h) or programmatically.
#ifndef QP_DB_QUERY_H_
#define QP_DB_QUERY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "db/database.h"
#include "db/expr.h"

namespace qp::db {

enum class AggFunc : uint8_t { kCount, kCountDistinct, kSum, kAvg, kMin, kMax };

const char* AggFuncToString(AggFunc func);

/// One item of the SELECT list.
struct SelectItem {
  enum class Kind : uint8_t { kColumn, kAggregate, kLiteral } kind = Kind::kColumn;
  /// kColumn: flat column; kAggregate: aggregate argument (-1 = COUNT(*)).
  int column = -1;
  AggFunc agg = AggFunc::kCount;
  Value literal;

  static SelectItem Column(int flat_col) {
    SelectItem item;
    item.kind = Kind::kColumn;
    item.column = flat_col;
    return item;
  }
  static SelectItem Aggregate(AggFunc func, int flat_col) {
    SelectItem item;
    item.kind = Kind::kAggregate;
    item.agg = func;
    item.column = flat_col;
    return item;
  }
  static SelectItem LiteralValue(Value v) {
    SelectItem item;
    item.kind = Kind::kLiteral;
    item.literal = std::move(v);
    return item;
  }
};

/// A resolved query. `table_indices` holds 1 or 2 indices into the Database;
/// two-table queries must have an equi-join pair (join_left from table 0,
/// join_right from table 1, both as flat indices).
struct BoundQuery {
  /// Original SQL when parsed; empty for programmatically built queries.
  /// Also the prepared-probe cache key (market::PreparedQueryCache): when
  /// non-empty it must uniquely identify the query's structure, so clear
  /// it if you mutate a parsed query's fields.
  std::string text;

  std::vector<int> table_indices;
  std::vector<int> column_offsets;  // flat offset of each table's columns
  int total_columns = 0;

  int join_left = -1;
  int join_right = -1;

  ExprPtr predicate;  // nullptr = always true (residual conditions included)

  std::vector<SelectItem> select;
  std::vector<int> group_by;
  bool distinct = false;
  int64_t limit = -1;  // -1 = no limit

  bool has_aggregates() const;

  /// (database table index, column index) pairs whose cell changes can
  /// affect the query result; deduplicated. Cell deltas never add/remove
  /// rows, so bare COUNT(*) contributes nothing.
  std::vector<std::pair<int, int>> SensitiveColumns() const;

  /// Maps a flat column index back to (database table index, column).
  std::pair<int, int> FlatToTableColumn(int flat) const;

  /// Structural validation against `db` (arity, ranges, aggregate rules:
  /// with aggregates present every plain select column must be grouped).
  Status Validate(const Database& db) const;
};

/// Convenience builder used by tests and programmatic workload generation.
class QueryBuilder {
 public:
  explicit QueryBuilder(const Database* db) : db_(db) {}

  /// Sets 1 or 2 tables by name. Must be called first.
  Status SetTables(const std::vector<std::string>& names);

  /// Flat index of `table.column`; -1 when unknown.
  int Col(const std::string& table, const std::string& column) const;
  /// Flat index of an unqualified column (must be unique across tables).
  int Col(const std::string& column) const;

  QueryBuilder& Join(int left_flat, int right_flat);
  QueryBuilder& Where(ExprPtr predicate);
  QueryBuilder& Select(SelectItem item);
  QueryBuilder& SelectAll();
  QueryBuilder& GroupBy(int flat_col);
  QueryBuilder& Distinct();
  QueryBuilder& Limit(int64_t n);

  /// Validates and returns the query.
  Result<BoundQuery> Build() const;

 private:
  const Database* db_;
  BoundQuery query_;
  Status tables_status_ = Status::OK();
};

}  // namespace qp::db

#endif  // QP_DB_QUERY_H_
