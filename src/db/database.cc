#include "db/database.h"

#include "common/str_util.h"

namespace qp::db {

Status Database::AddTable(Table table) {
  std::string key = ToLower(table.name());
  if (index_.count(key) > 0) {
    return Status::AlreadyExists(StrCat("table ", table.name()));
  }
  index_.emplace(key, static_cast<int>(tables_.size()));
  tables_.push_back(std::make_unique<Table>(std::move(table)));
  return Status::OK();
}

const Table* Database::FindTable(const std::string& name) const {
  int idx = FindTableIndex(name);
  return idx < 0 ? nullptr : tables_[idx].get();
}

Table* Database::FindTable(const std::string& name) {
  int idx = FindTableIndex(name);
  return idx < 0 ? nullptr : tables_[idx].get();
}

int Database::FindTableIndex(const std::string& name) const {
  auto it = index_.find(ToLower(name));
  return it == index_.end() ? -1 : it->second;
}

int64_t Database::TotalRows() const {
  int64_t total = 0;
  for (const auto& t : tables_) total += t->num_rows();
  return total;
}

}  // namespace qp::db
