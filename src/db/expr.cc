#include "db/expr.h"

#include <cassert>

#include "common/str_util.h"

namespace qp::db {

// Grants the factory functions access to the private constructor.
struct ExprBuilder {
  static std::shared_ptr<Expr> Make() {
    return std::shared_ptr<Expr>(new Expr());
  }
};

ExprPtr Expr::Column(int flat_index) {
  auto e = ExprBuilder::Make();
  e->kind_ = ExprKind::kColumn;
  e->column_index_ = flat_index;
  return e;
}

ExprPtr Expr::Literal(Value value) {
  auto e = ExprBuilder::Make();
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(value);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprBuilder::Make();
  e->kind_ = ExprKind::kCompare;
  e->compare_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Between(ExprPtr operand, Value lo, Value hi) {
  auto e = ExprBuilder::Make();
  e->kind_ = ExprKind::kBetween;
  e->lhs_ = std::move(operand);
  e->values_ = {std::move(lo), std::move(hi)};
  return e;
}

ExprPtr Expr::Like(ExprPtr operand, std::string pattern) {
  auto e = ExprBuilder::Make();
  e->kind_ = ExprKind::kLike;
  e->lhs_ = std::move(operand);
  e->pattern_ = std::move(pattern);
  return e;
}

ExprPtr Expr::InList(ExprPtr operand, std::vector<Value> values) {
  auto e = ExprBuilder::Make();
  e->kind_ = ExprKind::kInList;
  e->lhs_ = std::move(operand);
  e->values_ = std::move(values);
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprBuilder::Make();
  e->kind_ = ExprKind::kAnd;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprBuilder::Make();
  e->kind_ = ExprKind::kOr;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = ExprBuilder::Make();
  e->kind_ = ExprKind::kNot;
  e->lhs_ = std::move(operand);
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprBuilder::Make();
  e->kind_ = ExprKind::kArith;
  e->arith_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

Value Expr::Evaluate(const Row& row) const {
  switch (kind_) {
    case ExprKind::kColumn:
      return row[column_index_];
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kArith: {
      Value a = lhs_->Evaluate(row);
      Value b = rhs_->Evaluate(row);
      if (a.is_null() || b.is_null()) return Value::Null();
      bool both_int =
          a.type() == ValueType::kInt && b.type() == ValueType::kInt;
      if (both_int && arith_op_ != ArithOp::kDiv) {
        int64_t x = a.as_int(), y = b.as_int();
        switch (arith_op_) {
          case ArithOp::kAdd:
            return Value::Int(x + y);
          case ArithOp::kSub:
            return Value::Int(x - y);
          case ArithOp::kMul:
            return Value::Int(x * y);
          case ArithOp::kDiv:
            break;
        }
      }
      double x = a.ToNumeric(), y = b.ToNumeric();
      switch (arith_op_) {
        case ArithOp::kAdd:
          return Value::Real(x + y);
        case ArithOp::kSub:
          return Value::Real(x - y);
        case ArithOp::kMul:
          return Value::Real(x * y);
        case ArithOp::kDiv:
          if (y == 0.0) return Value::Null();
          return Value::Real(x / y);
      }
      return Value::Null();
    }
    default:
      return Value::Int(EvaluateBool(row) ? 1 : 0);
  }
}

bool Expr::EvaluateBool(const Row& row) const {
  switch (kind_) {
    case ExprKind::kCompare: {
      Value a = lhs_->Evaluate(row);
      Value b = rhs_->Evaluate(row);
      if (a.is_null() || b.is_null()) return false;
      int c = a.Compare(b);
      switch (compare_op_) {
        case CompareOp::kEq:
          return c == 0;
        case CompareOp::kNe:
          return c != 0;
        case CompareOp::kLt:
          return c < 0;
        case CompareOp::kLe:
          return c <= 0;
        case CompareOp::kGt:
          return c > 0;
        case CompareOp::kGe:
          return c >= 0;
      }
      return false;
    }
    case ExprKind::kBetween: {
      Value v = lhs_->Evaluate(row);
      if (v.is_null()) return false;
      return v.Compare(values_[0]) >= 0 && v.Compare(values_[1]) <= 0;
    }
    case ExprKind::kLike: {
      Value v = lhs_->Evaluate(row);
      if (v.type() != ValueType::kString) return false;
      return LikeMatch(v.as_string(), pattern_);
    }
    case ExprKind::kInList: {
      Value v = lhs_->Evaluate(row);
      if (v.is_null()) return false;
      for (const Value& candidate : values_) {
        if (v.Compare(candidate) == 0) return true;
      }
      return false;
    }
    case ExprKind::kAnd:
      return lhs_->EvaluateBool(row) && rhs_->EvaluateBool(row);
    case ExprKind::kOr:
      return lhs_->EvaluateBool(row) || rhs_->EvaluateBool(row);
    case ExprKind::kNot:
      return !lhs_->EvaluateBool(row);
    case ExprKind::kColumn:
    case ExprKind::kLiteral:
    case ExprKind::kArith: {
      Value v = Evaluate(row);
      if (v.is_null()) return false;
      if (v.type() == ValueType::kString) return !v.as_string().empty();
      return v.ToNumeric() != 0.0;
    }
  }
  return false;
}

void Expr::CollectColumns(std::vector<int>* columns) const {
  if (kind_ == ExprKind::kColumn) {
    columns->push_back(column_index_);
    return;
  }
  if (lhs_) lhs_->CollectColumns(columns);
  if (rhs_) rhs_->CollectColumns(columns);
}

std::string Expr::ToString(const std::vector<std::string>* column_names) const {
  auto col_name = [&](int idx) {
    if (column_names != nullptr && idx < static_cast<int>(column_names->size())) {
      return (*column_names)[idx];
    }
    return StrCat("c", idx);
  };
  switch (kind_) {
    case ExprKind::kColumn:
      return col_name(column_index_);
    case ExprKind::kLiteral:
      return literal_.type() == ValueType::kString
                 ? StrCat("'", literal_.ToString(), "'")
                 : literal_.ToString();
    case ExprKind::kCompare: {
      const char* op = "=";
      switch (compare_op_) {
        case CompareOp::kEq:
          op = "=";
          break;
        case CompareOp::kNe:
          op = "<>";
          break;
        case CompareOp::kLt:
          op = "<";
          break;
        case CompareOp::kLe:
          op = "<=";
          break;
        case CompareOp::kGt:
          op = ">";
          break;
        case CompareOp::kGe:
          op = ">=";
          break;
      }
      return StrCat(lhs_->ToString(column_names), " ", op, " ",
                    rhs_->ToString(column_names));
    }
    case ExprKind::kBetween:
      return StrCat(lhs_->ToString(column_names), " BETWEEN ",
                    values_[0].ToString(), " AND ", values_[1].ToString());
    case ExprKind::kLike:
      return StrCat(lhs_->ToString(column_names), " LIKE '", pattern_, "'");
    case ExprKind::kInList: {
      std::vector<std::string> parts;
      for (const Value& v : values_) parts.push_back(v.ToString());
      return StrCat(lhs_->ToString(column_names), " IN (", Join(parts, ", "),
                    ")");
    }
    case ExprKind::kAnd:
      return StrCat("(", lhs_->ToString(column_names), " AND ",
                    rhs_->ToString(column_names), ")");
    case ExprKind::kOr:
      return StrCat("(", lhs_->ToString(column_names), " OR ",
                    rhs_->ToString(column_names), ")");
    case ExprKind::kNot:
      return StrCat("NOT (", lhs_->ToString(column_names), ")");
    case ExprKind::kArith: {
      const char* op = "+";
      switch (arith_op_) {
        case ArithOp::kAdd:
          op = "+";
          break;
        case ArithOp::kSub:
          op = "-";
          break;
        case ArithOp::kMul:
          op = "*";
          break;
        case ArithOp::kDiv:
          op = "/";
          break;
      }
      return StrCat("(", lhs_->ToString(column_names), " ", op, " ",
                    rhs_->ToString(column_names), ")");
    }
  }
  return "?";
}

}  // namespace qp::db
