#include "db/query.h"

#include <algorithm>

#include "common/str_util.h"

namespace qp::db {

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kCountDistinct:
      return "count distinct";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

bool BoundQuery::has_aggregates() const {
  for (const SelectItem& item : select) {
    if (item.kind == SelectItem::Kind::kAggregate) return true;
  }
  return false;
}

std::pair<int, int> BoundQuery::FlatToTableColumn(int flat) const {
  for (int t = static_cast<int>(table_indices.size()) - 1; t >= 0; --t) {
    if (flat >= column_offsets[t]) {
      return {table_indices[t], flat - column_offsets[t]};
    }
  }
  return {-1, -1};
}

std::vector<std::pair<int, int>> BoundQuery::SensitiveColumns() const {
  std::vector<int> flats;
  if (predicate) predicate->CollectColumns(&flats);
  if (join_left >= 0) flats.push_back(join_left);
  if (join_right >= 0) flats.push_back(join_right);
  for (int g : group_by) flats.push_back(g);
  for (const SelectItem& item : select) {
    if (item.kind == SelectItem::Kind::kLiteral) continue;
    if (item.column >= 0) flats.push_back(item.column);
  }
  std::sort(flats.begin(), flats.end());
  flats.erase(std::unique(flats.begin(), flats.end()), flats.end());
  std::vector<std::pair<int, int>> out;
  out.reserve(flats.size());
  for (int f : flats) out.push_back(FlatToTableColumn(f));
  return out;
}

Status BoundQuery::Validate(const Database& db) const {
  if (table_indices.empty() || table_indices.size() > 2) {
    return Status::InvalidArgument("queries must reference 1 or 2 tables");
  }
  if (table_indices.size() == 2 &&
      table_indices[0] == table_indices[1]) {
    return Status::Unimplemented("self-joins are not supported");
  }
  int expected_offset = 0;
  if (column_offsets.size() != table_indices.size()) {
    return Status::InvalidArgument("column_offsets arity mismatch");
  }
  for (size_t t = 0; t < table_indices.size(); ++t) {
    int ti = table_indices[t];
    if (ti < 0 || ti >= db.num_tables()) {
      return Status::InvalidArgument(StrCat("bad table index ", ti));
    }
    if (column_offsets[t] != expected_offset) {
      return Status::InvalidArgument("column offsets are inconsistent");
    }
    expected_offset += db.table(ti).schema().num_columns();
  }
  if (total_columns != expected_offset) {
    return Status::InvalidArgument("total_columns mismatch");
  }
  auto check_flat = [&](int flat, const char* what) {
    if (flat < 0 || flat >= total_columns) {
      return Status::InvalidArgument(StrCat("bad ", what, " column ", flat));
    }
    return Status::OK();
  };
  if (table_indices.size() == 2) {
    if (join_left < 0 || join_right < 0) {
      return Status::InvalidArgument("two-table queries need an equi-join");
    }
    QP_RETURN_IF_ERROR(check_flat(join_left, "join-left"));
    QP_RETURN_IF_ERROR(check_flat(join_right, "join-right"));
    int n0 = db.table(table_indices[0]).schema().num_columns();
    if (join_left >= n0 || join_right < n0) {
      return Status::InvalidArgument(
          "join_left must come from table 0 and join_right from table 1");
    }
  }
  std::vector<int> pred_cols;
  if (predicate) predicate->CollectColumns(&pred_cols);
  for (int c : pred_cols) QP_RETURN_IF_ERROR(check_flat(c, "predicate"));
  for (int c : group_by) QP_RETURN_IF_ERROR(check_flat(c, "group-by"));
  if (select.empty()) {
    return Status::InvalidArgument("empty select list");
  }
  bool has_agg = has_aggregates();
  for (const SelectItem& item : select) {
    switch (item.kind) {
      case SelectItem::Kind::kColumn: {
        QP_RETURN_IF_ERROR(check_flat(item.column, "select"));
        if (has_agg || !group_by.empty()) {
          bool grouped = std::find(group_by.begin(), group_by.end(),
                                   item.column) != group_by.end();
          if (!grouped) {
            return Status::InvalidArgument(
                StrCat("select column ", item.column,
                       " must appear in GROUP BY alongside aggregates"));
          }
        }
        break;
      }
      case SelectItem::Kind::kAggregate:
        if (item.column != -1) {
          QP_RETURN_IF_ERROR(check_flat(item.column, "aggregate"));
        } else if (item.agg != AggFunc::kCount) {
          return Status::InvalidArgument("only COUNT(*) may omit its argument");
        }
        break;
      case SelectItem::Kind::kLiteral:
        break;
    }
  }
  if (!group_by.empty() && !has_agg) {
    // GROUP BY without aggregates behaves like DISTINCT over the group
    // columns; allowed, as in MySQL.
  }
  return Status::OK();
}

Status QueryBuilder::SetTables(const std::vector<std::string>& names) {
  query_.table_indices.clear();
  query_.column_offsets.clear();
  query_.total_columns = 0;
  for (const std::string& name : names) {
    int idx = db_->FindTableIndex(name);
    if (idx < 0) {
      tables_status_ = Status::NotFound(StrCat("table ", name));
      return tables_status_;
    }
    query_.table_indices.push_back(idx);
    query_.column_offsets.push_back(query_.total_columns);
    query_.total_columns += db_->table(idx).schema().num_columns();
  }
  tables_status_ = Status::OK();
  return tables_status_;
}

int QueryBuilder::Col(const std::string& table, const std::string& column) const {
  for (size_t t = 0; t < query_.table_indices.size(); ++t) {
    const Table& tab = db_->table(query_.table_indices[t]);
    if (!EqualsIgnoreCase(tab.name(), table)) continue;
    int c = tab.schema().FindColumn(column);
    if (c >= 0) return query_.column_offsets[t] + c;
  }
  return -1;
}

int QueryBuilder::Col(const std::string& column) const {
  int found = -1;
  for (size_t t = 0; t < query_.table_indices.size(); ++t) {
    const Table& tab = db_->table(query_.table_indices[t]);
    int c = tab.schema().FindColumn(column);
    if (c >= 0) {
      if (found >= 0) return -1;  // ambiguous
      found = query_.column_offsets[t] + c;
    }
  }
  return found;
}

QueryBuilder& QueryBuilder::Join(int left_flat, int right_flat) {
  query_.join_left = left_flat;
  query_.join_right = right_flat;
  return *this;
}

QueryBuilder& QueryBuilder::Where(ExprPtr predicate) {
  query_.predicate = std::move(predicate);
  return *this;
}

QueryBuilder& QueryBuilder::Select(SelectItem item) {
  query_.select.push_back(std::move(item));
  return *this;
}

QueryBuilder& QueryBuilder::SelectAll() {
  for (int f = 0; f < query_.total_columns; ++f) {
    query_.select.push_back(SelectItem::Column(f));
  }
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(int flat_col) {
  query_.group_by.push_back(flat_col);
  return *this;
}

QueryBuilder& QueryBuilder::Distinct() {
  query_.distinct = true;
  return *this;
}

QueryBuilder& QueryBuilder::Limit(int64_t n) {
  query_.limit = n;
  return *this;
}

Result<BoundQuery> QueryBuilder::Build() const {
  if (!tables_status_.ok()) return tables_status_;
  QP_RETURN_IF_ERROR(query_.Validate(*db_));
  return query_;
}

}  // namespace qp::db
