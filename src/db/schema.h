// Column and table schema.
#ifndef QP_DB_SCHEMA_H_
#define QP_DB_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "db/value.h"

namespace qp::db {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
};

/// Ordered list of columns with case-insensitive name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int idx) const { return columns_[idx]; }

  /// Returns the column index, or -1 if absent. Case-insensitive.
  int FindColumn(const std::string& name) const;

  const std::vector<ColumnDef>& columns() const { return columns_; }

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, int> index_;  // lower-cased name -> idx
};

}  // namespace qp::db

#endif  // QP_DB_SCHEMA_H_
