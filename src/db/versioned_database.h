// Versioned catalog: a const base Database plus an atomically-published
// overlay of committed seller deltas, folded back into the base on an
// epoch-drained schedule.
//
// The problem this solves: `ApplySellerDelta` used to mutate the shared
// `db::Database` in place, which forced a quiescence contract — no
// concurrent Quote/Purchase while a delta landed, because probers read
// base cells lock-free. VersionedDatabase makes catalog churn a
// publish, not a mutation, reusing the exact shape the delta-chain
// price books use (serve/delta_book.h):
//
//  * The base Database object is immortal and, between folds, const.
//  * Committed deltas accumulate in a `Generation`: an immutable
//    DeltaOverlay (all committed cells so far) plus a generation
//    number, published by a single seq_cst store of the head pointer.
//  * Readers pin a common::EpochManager guard, load `head()`, and
//    resolve every cell read through base+overlay — exactly how probe
//    overlays already work (db/delta_overlay.h). They hold the guard
//    for the duration of the probe; retired generations are reclaimed
//    through the epoch manager, so a reader never dereferences a freed
//    overlay.
//  * Every `fold_every` distinct pending cells, the writer *folds*: it
//    writes the head overlay's cells into the base tables and publishes
//    a fresh empty-overlay generation. The fold is gated on
//    EpochManager::DrainedAfter(head's publish epoch) — it runs only
//    when every pinned reader is pinned on the head generation itself.
//    Such readers resolve every folded cell from their pinned overlay
//    (DeltaOverlay reads never touch a base cell the chain shadows),
//    so the in-place base writes race no reader load. When readers on
//    older generations are still draining, the fold is skipped (counted
//    in `fold_retries`) and retried at the next commit — the writer
//    never spins.
//
// Generation numbers count commits: a fold republishes the same number
// with an empty overlay, because it changes no logical cell value.
// "Staleness" of a reader is therefore head_generation() minus its
// pinned generation's number — the number of committed deltas it cannot
// yet see.
//
// Thread safety: Commit/TryFold form the single-writer side — callers
// serialize them (the engines run them under their writer mutex, which
// also serializes them against writer-side probes that read `head()`
// unguarded). head()/LogicalCell()/stats() are safe from any thread;
// head() requires a live epoch guard for the returned pointer to stay
// valid.
#ifndef QP_DB_VERSIONED_DATABASE_H_
#define QP_DB_VERSIONED_DATABASE_H_

#include <atomic>
#include <cstdint>

#include "common/epoch.h"
#include "db/database.h"
#include "db/delta_overlay.h"
#include "db/value.h"

namespace qp::db {

class VersionedDatabase {
 public:
  /// One published catalog state. Immutable after publication; readers
  /// hold it through an epoch guard.
  struct Generation {
    /// Commit count at publication (folds republish the same number).
    uint64_t number = 0;
    /// Every committed cell not yet folded into the base. No parent.
    DeltaOverlay overlay;
    /// Global epoch observed just after this generation became head.
    /// Any reader that saw an *older* head is pinned at an epoch <=
    /// this value (seq_cst total order + monotone epochs), which is
    /// what the fold gate checks. Atomic only for data-race hygiene:
    /// the single writer is the only reader of it.
    std::atomic<uint64_t> publish_epoch{0};
  };

  struct Stats {
    uint64_t generations_published = 0;  ///< Commits (not folds).
    uint64_t folds = 0;
    uint64_t fold_retries = 0;  ///< Folds skipped awaiting reader drain.
    uint64_t deltas_pending = 0;  ///< Distinct cells in the head overlay.
    uint64_t deltas_folded = 0;   ///< Cells written to base by folds.
    uint64_t fold_nanos = 0;      ///< Cumulative wall time inside folds.
  };

  /// `base` and `epochs` must outlive this object. `fold_every` is the
  /// pending-cell threshold that triggers a fold attempt on commit
  /// (<= 0 disables folding entirely).
  VersionedDatabase(const Database* base, common::EpochManager* epochs,
                    int fold_every = 32);
  ~VersionedDatabase();

  VersionedDatabase(const VersionedDatabase&) = delete;
  VersionedDatabase& operator=(const VersionedDatabase&) = delete;

  const Database& base() const { return *base_; }
  common::EpochManager& epochs() const { return *epochs_; }
  int fold_every() const { return fold_every_; }

  /// Current head generation. The pointer stays valid only while the
  /// caller holds an EpochManager::Guard pinned before the load.
  const Generation* head() const {
    return head_.load(std::memory_order_seq_cst);
  }

  /// Head generation number without pinning: a writer-maintained atomic
  /// mirror, stored before each head publish, so the value is always >=
  /// the number of any generation a reader has pinned (the staleness
  /// subtraction never underflows). Monotone.
  uint64_t head_generation() const {
    return head_number_.load(std::memory_order_seq_cst);
  }

  /// One logical cell read through the current head (pins internally).
  /// Returns by value so the result outlives the pin.
  Value LogicalCell(int table, int row, int column) const;

  /// Commits one seller delta: publishes a new generation whose overlay
  /// is the head's plus this cell, then attempts a fold when the
  /// pending-cell count reaches `fold_every`. Writer-side; callers
  /// serialize. `base_mut` must be the same object as `base()` — the
  /// caller owns mutation authority over it, this class never casts
  /// const away.
  void Commit(Database& base_mut, int table, int row, int column,
              Value value);

  /// Attempts to fold the head overlay into the base. Returns true when
  /// the fold ran; false when there was nothing to fold or readers on
  /// older generations have not drained yet (counted in fold_retries).
  /// Writer-side; callers serialize with Commit.
  bool TryFold(Database& base_mut);

  Stats stats() const;

 private:
  static void DeleteGeneration(void* p);

  /// Stores `next` as head, stamps its publish epoch, retires `old`.
  void Publish(Generation* next, Generation* old);

  const Database* base_;
  common::EpochManager* epochs_;
  const int fold_every_;

  std::atomic<Generation*> head_;
  /// Writer-maintained mirrors of head()->number and the head overlay's
  /// entry count, stored before each publish — stats() and
  /// head_generation() read them without an epoch pin (quote paths count
  /// pins; gauges must not add any).
  std::atomic<uint64_t> head_number_{0};
  std::atomic<uint64_t> pending_cells_{0};

  std::atomic<uint64_t> generations_published_{0};
  std::atomic<uint64_t> folds_{0};
  std::atomic<uint64_t> fold_retries_{0};
  std::atomic<uint64_t> deltas_folded_{0};
  std::atomic<uint64_t> fold_nanos_{0};
};

}  // namespace qp::db

#endif  // QP_DB_VERSIONED_DATABASE_H_
