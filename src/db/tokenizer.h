// SQL tokenizer for the query subset used by the paper's workloads.
#ifndef QP_DB_TOKENIZER_H_
#define QP_DB_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace qp::db {

enum class TokenType : uint8_t {
  kIdentifier,  // table / column / function names (case preserved)
  kInteger,
  kFloat,
  kString,      // 'quoted' (quotes stripped)
  kSymbol,      // ( ) , . * = <> != < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier/symbol text or string contents
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;  // byte offset in the input, for error messages

  bool IsSymbol(const char* s) const;
  /// Case-insensitive keyword match for identifiers.
  bool IsKeyword(const char* kw) const;
};

/// Splits `sql` into tokens; a kEnd token is always appended.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace qp::db

#endif  // QP_DB_TOKENIZER_H_
