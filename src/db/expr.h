// Scalar / boolean expression AST evaluated against a (possibly
// concatenated, for joins) row of values.
//
// NULL semantics are simplified two-valued logic: any comparison with a
// NULL operand is false (documented deviation from SQL's three-valued
// logic; the generated datasets contain no NULLs and tests pin the
// behavior for engine-level completeness).
#ifndef QP_DB_EXPR_H_
#define QP_DB_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "db/table.h"
#include "db/value.h"

namespace qp::db {

enum class ExprKind : uint8_t {
  kColumn,
  kLiteral,
  kCompare,
  kBetween,
  kLike,
  kInList,
  kAnd,
  kOr,
  kNot,
  kArith,
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  // Factory constructors.
  static ExprPtr Column(int flat_index);
  static ExprPtr Literal(Value value);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Between(ExprPtr operand, Value lo, Value hi);
  static ExprPtr Like(ExprPtr operand, std::string pattern);
  static ExprPtr InList(ExprPtr operand, std::vector<Value> values);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);

  /// Scalar value of the expression on `row`. Boolean nodes yield
  /// Int(0/1); arithmetic with NULL operands or division by zero
  /// yields NULL.
  Value Evaluate(const Row& row) const;

  /// Predicate evaluation (NULL-involved comparisons are false).
  bool EvaluateBool(const Row& row) const;

  /// Appends every referenced flat column index (with duplicates).
  void CollectColumns(std::vector<int>* columns) const;

  ExprKind kind() const { return kind_; }
  int column_index() const { return column_index_; }
  const Value& literal() const { return literal_; }
  CompareOp compare_op() const { return compare_op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }
  const std::string& pattern() const { return pattern_; }
  const std::vector<Value>& values() const { return values_; }

  /// SQL-ish rendering; `column_names` (flat) is optional.
  std::string ToString(const std::vector<std::string>* column_names = nullptr) const;

 private:
  friend struct ExprBuilder;
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  int column_index_ = -1;
  Value literal_;
  CompareOp compare_op_ = CompareOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  ExprPtr lhs_, rhs_;         // also operand for unary nodes (lhs_)
  std::string pattern_;       // kLike
  std::vector<Value> values_; // kInList; kBetween uses values_[0], values_[1]
};

}  // namespace qp::db

#endif  // QP_DB_EXPR_H_
