#include "db/parser.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/str_util.h"
#include "db/tokenizer.h"

namespace qp::db {

namespace {

bool IsReservedKeyword(const Token& t) {
  static const char* kKeywords[] = {"select", "from",  "where", "group",
                                    "by",     "limit", "and",   "or",
                                    "not",    "like",  "between", "in",
                                    "distinct"};
  for (const char* kw : kKeywords) {
    if (t.IsKeyword(kw)) return true;
  }
  return false;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Database& db, std::string sql)
      : tokens_(std::move(tokens)), db_(db), sql_(std::move(sql)) {}

  Result<BoundQuery> Parse();

 private:
  // -- token helpers ----------------------------------------------------
  const Token& Peek(int ahead = 0) const {
    size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool AcceptKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrCat("parse error at offset ", Peek().position, ": ", message,
               " (query: ", sql_, ")"));
  }

  // -- binding helpers --------------------------------------------------
  struct TableRef {
    int db_index = -1;
    std::string alias;  // lower-cased alias or table name
    int offset = 0;
  };

  /// Resolves [qualifier.]column to a flat index.
  Result<int> BindColumn(const std::string& qualifier, const std::string& name) {
    if (!qualifier.empty()) {
      for (const TableRef& ref : tables_) {
        if (ToLower(qualifier) != ref.alias &&
            !EqualsIgnoreCase(qualifier, db_.table(ref.db_index).name())) {
          continue;
        }
        int c = db_.table(ref.db_index).schema().FindColumn(name);
        if (c >= 0) return ref.offset + c;
        return Status::NotFound(
            StrCat("column ", qualifier, ".", name, " not found"));
      }
      return Status::NotFound(StrCat("unknown table or alias ", qualifier));
    }
    int found = -1;
    for (const TableRef& ref : tables_) {
      int c = db_.table(ref.db_index).schema().FindColumn(name);
      if (c < 0) continue;
      if (found >= 0) {
        return Status::InvalidArgument(StrCat("ambiguous column ", name));
      }
      found = ref.offset + c;
    }
    if (found < 0) return Status::NotFound(StrCat("column ", name, " not found"));
    return found;
  }

  /// Parses `[qualifier.]name`; returns flat column index.
  Result<int> ParseColumnRef() {
    if (Peek().type != TokenType::kIdentifier) return Error("expected column");
    std::string first = Advance().text;
    std::string qualifier, name;
    if (Peek().IsSymbol(".")) {
      Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column after '.'");
      }
      qualifier = first;
      name = Advance().text;
    } else {
      name = first;
    }
    return BindColumn(qualifier, name);
  }

  std::optional<Value> ParseLiteralOpt() {
    if (Peek().IsSymbol("-") &&
        (Peek(1).type == TokenType::kInteger ||
         Peek(1).type == TokenType::kFloat)) {
      Advance();
      const Token& num = Advance();
      return num.type == TokenType::kInteger ? Value::Int(-num.int_value)
                                             : Value::Real(-num.float_value);
    }
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger:
        Advance();
        return Value::Int(t.int_value);
      case TokenType::kFloat:
        Advance();
        return Value::Real(t.float_value);
      case TokenType::kString:
        Advance();
        return Value::Str(t.text);
      default:
        return std::nullopt;
    }
  }

  // -- grammar ----------------------------------------------------------
  Status ParseFromClause();
  Status ParseSelectList();
  Result<ExprPtr> ParseDisjunction(bool allow_join_extraction);
  Result<ExprPtr> ParseConjunction(bool allow_join_extraction);
  Result<ExprPtr> ParseCondition(bool allow_join_extraction);
  Result<ExprPtr> ParseComparisonTail(ExprPtr operand, bool operand_is_column,
                                      int column_flat,
                                      bool allow_join_extraction);
  Result<ExprPtr> ParseOperand(bool* is_column, int* column_flat);

  std::vector<Token> tokens_;
  const Database& db_;
  std::string sql_;
  size_t pos_ = 0;

  std::vector<TableRef> tables_;
  BoundQuery query_;
  bool select_star_ = false;
  size_t select_clause_begin_ = 0, select_clause_end_ = 0;
};

Status Parser::ParseFromClause() {
  while (true) {
    if (Peek().type != TokenType::kIdentifier || IsReservedKeyword(Peek())) {
      return Error("expected table name");
    }
    std::string table_name = Advance().text;
    int idx = db_.FindTableIndex(table_name);
    if (idx < 0) return Status::NotFound(StrCat("table ", table_name));
    TableRef ref;
    ref.db_index = idx;
    ref.alias = ToLower(table_name);
    // Optional alias (an identifier that is not a keyword).
    if (Peek().type == TokenType::kIdentifier && !IsReservedKeyword(Peek())) {
      ref.alias = ToLower(Advance().text);
    }
    tables_.push_back(ref);
    if (!AcceptSymbol(",")) break;
  }
  if (tables_.size() > 2) {
    return Status::Unimplemented("queries over more than two tables");
  }
  int offset = 0;
  query_.table_indices.clear();
  query_.column_offsets.clear();
  for (TableRef& ref : tables_) {
    ref.offset = offset;
    query_.table_indices.push_back(ref.db_index);
    query_.column_offsets.push_back(offset);
    offset += db_.table(ref.db_index).schema().num_columns();
  }
  query_.total_columns = offset;
  return Status::OK();
}

Status Parser::ParseSelectList() {
  // Re-parse the saved select-clause token range now that tables are bound.
  size_t saved = pos_;
  pos_ = select_clause_begin_;
  if (AcceptSymbol("*")) {
    select_star_ = true;
    for (int f = 0; f < query_.total_columns; ++f) {
      query_.select.push_back(SelectItem::Column(f));
    }
  } else {
    while (true) {
      const Token& t = Peek();
      bool is_agg_kw = t.IsKeyword("count") || t.IsKeyword("sum") ||
                       t.IsKeyword("avg") || t.IsKeyword("min") ||
                       t.IsKeyword("max");
      if (is_agg_kw && Peek(1).IsSymbol("(")) {
        AggFunc func = AggFunc::kCount;
        if (t.IsKeyword("count")) func = AggFunc::kCount;
        if (t.IsKeyword("sum")) func = AggFunc::kSum;
        if (t.IsKeyword("avg")) func = AggFunc::kAvg;
        if (t.IsKeyword("min")) func = AggFunc::kMin;
        if (t.IsKeyword("max")) func = AggFunc::kMax;
        Advance();  // function name
        Advance();  // '('
        bool agg_distinct = AcceptKeyword("distinct");
        int arg = -1;
        if (AcceptSymbol("*")) {
          if (func != AggFunc::kCount) return Error("only COUNT(*) allowed");
        } else {
          QP_ASSIGN_OR_RETURN(arg, ParseColumnRef());
        }
        if (agg_distinct) {
          if (func != AggFunc::kCount || arg < 0) {
            return Error("DISTINCT only supported inside COUNT(col)");
          }
          func = AggFunc::kCountDistinct;
        }
        if (!AcceptSymbol(")")) return Error("expected ')' after aggregate");
        query_.select.push_back(SelectItem::Aggregate(func, arg));
      } else if (auto lit = ParseLiteralOpt()) {
        query_.select.push_back(SelectItem::LiteralValue(*lit));
      } else {
        QP_ASSIGN_OR_RETURN(int col, ParseColumnRef());
        query_.select.push_back(SelectItem::Column(col));
      }
      if (!AcceptSymbol(",")) break;
    }
  }
  if (pos_ != select_clause_end_) return Error("trailing tokens in SELECT list");
  pos_ = saved;
  return Status::OK();
}

Result<ExprPtr> Parser::ParseOperand(bool* is_column, int* column_flat) {
  *is_column = false;
  *column_flat = -1;
  if (auto lit = ParseLiteralOpt()) {
    return Expr::Literal(*lit);
  }
  if (Peek().type == TokenType::kIdentifier && !IsReservedKeyword(Peek())) {
    QP_ASSIGN_OR_RETURN(int col, ParseColumnRef());
    *is_column = true;
    *column_flat = col;
    return Expr::Column(col);
  }
  return Error("expected column or literal");
}

Result<ExprPtr> Parser::ParseComparisonTail(ExprPtr operand,
                                            bool operand_is_column,
                                            int column_flat,
                                            bool allow_join_extraction) {
  if (AcceptKeyword("between")) {
    auto lo = ParseLiteralOpt();
    if (!lo) return Error("expected literal after BETWEEN");
    if (!AcceptKeyword("and")) return Error("expected AND in BETWEEN");
    auto hi = ParseLiteralOpt();
    if (!hi) return Error("expected literal after AND");
    return Expr::Between(std::move(operand), *lo, *hi);
  }
  if (AcceptKeyword("like")) {
    if (Peek().type != TokenType::kString) {
      return Error("expected string pattern after LIKE");
    }
    return Expr::Like(std::move(operand), Advance().text);
  }
  if (AcceptKeyword("in")) {
    if (!AcceptSymbol("(")) return Error("expected '(' after IN");
    std::vector<Value> values;
    while (true) {
      auto lit = ParseLiteralOpt();
      if (!lit) return Error("expected literal in IN list");
      values.push_back(*lit);
      if (!AcceptSymbol(",")) break;
    }
    if (!AcceptSymbol(")")) return Error("expected ')' after IN list");
    return Expr::InList(std::move(operand), std::move(values));
  }
  CompareOp op;
  if (AcceptSymbol("=")) {
    op = CompareOp::kEq;
  } else if (AcceptSymbol("<>")) {
    op = CompareOp::kNe;
  } else if (AcceptSymbol("<=")) {
    op = CompareOp::kLe;
  } else if (AcceptSymbol(">=")) {
    op = CompareOp::kGe;
  } else if (AcceptSymbol("<")) {
    op = CompareOp::kLt;
  } else if (AcceptSymbol(">")) {
    op = CompareOp::kGt;
  } else {
    return Error("expected comparison operator");
  }
  bool rhs_is_column = false;
  int rhs_flat = -1;
  QP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOperand(&rhs_is_column, &rhs_flat));

  // Equi-join extraction: first top-level cross-table column equality.
  if (allow_join_extraction && op == CompareOp::kEq && operand_is_column &&
      rhs_is_column && tables_.size() == 2 && query_.join_left < 0) {
    int n0 = db_.table(tables_[0].db_index).schema().num_columns();
    int lhs_flat = column_flat;
    bool lhs_in_t0 = lhs_flat < n0;
    bool rhs_in_t0 = rhs_flat < n0;
    if (lhs_in_t0 != rhs_in_t0) {
      query_.join_left = lhs_in_t0 ? lhs_flat : rhs_flat;
      query_.join_right = lhs_in_t0 ? rhs_flat : lhs_flat;
      return ExprPtr(nullptr);  // consumed as the join condition
    }
  }
  return Expr::Compare(op, std::move(operand), std::move(rhs));
}

Result<ExprPtr> Parser::ParseCondition(bool allow_join_extraction) {
  if (AcceptKeyword("not")) {
    QP_ASSIGN_OR_RETURN(ExprPtr inner, ParseCondition(false));
    if (!inner) return Error("NOT cannot wrap the join condition");
    return Expr::Not(std::move(inner));
  }
  if (AcceptSymbol("(")) {
    QP_ASSIGN_OR_RETURN(ExprPtr inner, ParseDisjunction(false));
    if (!AcceptSymbol(")")) return Error("expected ')'");
    return inner;
  }
  bool is_column = false;
  int column_flat = -1;
  QP_ASSIGN_OR_RETURN(ExprPtr operand, ParseOperand(&is_column, &column_flat));
  return ParseComparisonTail(std::move(operand), is_column, column_flat,
                             allow_join_extraction);
}

Result<ExprPtr> Parser::ParseConjunction(bool allow_join_extraction) {
  QP_ASSIGN_OR_RETURN(ExprPtr left, ParseCondition(allow_join_extraction));
  while (AcceptKeyword("and")) {
    QP_ASSIGN_OR_RETURN(ExprPtr right, ParseCondition(allow_join_extraction));
    if (!left) {
      left = std::move(right);  // previous conjunct was the join condition
    } else if (right) {
      left = Expr::And(std::move(left), std::move(right));
    }
  }
  return left;  // may be nullptr if everything was the join condition
}

Result<ExprPtr> Parser::ParseDisjunction(bool allow_join_extraction) {
  // Join extraction is only sound when the equality is a top-level
  // conjunct; an OR-context must keep it as a plain condition.
  QP_ASSIGN_OR_RETURN(ExprPtr left,
                      ParseConjunction(allow_join_extraction &&
                                       !Peek().IsKeyword("or")));
  bool saw_or = false;
  while (AcceptKeyword("or")) {
    saw_or = true;
    QP_ASSIGN_OR_RETURN(ExprPtr right, ParseConjunction(false));
    if (!left || !right) {
      return Error("OR cannot combine with the join condition");
    }
    left = Expr::Or(std::move(left), std::move(right));
  }
  (void)saw_or;
  return left;
}

Result<BoundQuery> Parser::Parse() {
  if (!AcceptKeyword("select")) return Error("expected SELECT");
  query_.distinct = AcceptKeyword("distinct");

  // Skip the select list for now; it binds after FROM is known.
  select_clause_begin_ = pos_;
  int depth = 0;
  while (Peek().type != TokenType::kEnd &&
         !(depth == 0 && Peek().IsKeyword("from"))) {
    if (Peek().IsSymbol("(")) ++depth;
    if (Peek().IsSymbol(")")) --depth;
    Advance();
  }
  select_clause_end_ = pos_;
  if (!AcceptKeyword("from")) return Error("expected FROM");

  QP_RETURN_IF_ERROR(ParseFromClause());
  QP_RETURN_IF_ERROR(ParseSelectList());

  if (AcceptKeyword("where")) {
    QP_ASSIGN_OR_RETURN(ExprPtr predicate,
                        ParseDisjunction(/*allow_join_extraction=*/true));
    query_.predicate = std::move(predicate);  // may be null (join only)
  }
  if (AcceptKeyword("group")) {
    if (!AcceptKeyword("by")) return Error("expected BY after GROUP");
    while (true) {
      QP_ASSIGN_OR_RETURN(int col, ParseColumnRef());
      query_.group_by.push_back(col);
      if (!AcceptSymbol(",")) break;
    }
  }
  if (AcceptKeyword("limit")) {
    if (Peek().type != TokenType::kInteger) return Error("expected LIMIT count");
    query_.limit = Advance().int_value;
  }
  if (Peek().type != TokenType::kEnd) return Error("unexpected trailing tokens");

  if (tables_.size() == 2 && query_.join_left < 0) {
    return Status::Unimplemented(
        StrCat("two-table query without an equi-join: ", sql_));
  }
  query_.text = sql_;
  QP_RETURN_IF_ERROR(query_.Validate(db_));
  return query_;
}

}  // namespace

Result<BoundQuery> ParseQuery(const std::string& sql, const Database& db) {
  QP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), db, sql);
  return parser.Parse();
}

}  // namespace qp::db
