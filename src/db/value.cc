#include "db/value.h"

#include <cmath>

#include "common/hash.h"
#include "common/str_util.h"

namespace qp::db {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

double Value::ToNumeric() const {
  switch (type_) {
    case ValueType::kInt:
      return static_cast<double>(int_);
    case ValueType::kDouble:
      return double_;
    default:
      return 0.0;
  }
}

int Value::Compare(const Value& other) const {
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt:
      case ValueType::kDouble:
        return 1;  // numerics compare with each other
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  int ra = rank(type_), rb = rank(other.type_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type_) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt:
      if (other.type_ == ValueType::kInt) {
        if (int_ != other.int_) return int_ < other.int_ ? -1 : 1;
        return 0;
      }
      break;
    case ValueType::kDouble:
    case ValueType::kString:
      break;
  }
  if (type_ == ValueType::kString) {
    int c = string_.compare(other.string_);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Mixed or double numerics.
  double a = ToNumeric(), b = other.ToNumeric();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

uint64_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kInt:
      return Mix64(0x1000 ^ static_cast<uint64_t>(int_));
    case ValueType::kDouble: {
      // Hash doubles representing integers identically to the integer,
      // preserving Hash-consistency with Compare's numeric equality.
      double d = double_;
      if (d == 0.0) d = 0.0;  // normalize -0.0
      int64_t as_i = static_cast<int64_t>(d);
      if (static_cast<double>(as_i) == d) {
        return Mix64(0x1000 ^ static_cast<uint64_t>(as_i));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(0x2000 ^ bits);
    }
    case ValueType::kString:
      return HashBytes(string_, 0x3000);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(int_);
    case ValueType::kDouble:
      return FormatDouble(double_, 6);
    case ValueType::kString:
      return string_;
  }
  return "?";
}

}  // namespace qp::db
