#include "db/schema.h"

#include "common/str_util.h"

namespace qp::db {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (int i = 0; i < static_cast<int>(columns_.size()); ++i) {
    index_.emplace(ToLower(columns_[i].name), i);
  }
}

int Schema::FindColumn(const std::string& name) const {
  auto it = index_.find(ToLower(name));
  return it == index_.end() ? -1 : it->second;
}

}  // namespace qp::db
