#include "core/book_merge.h"

#include <algorithm>

namespace qp::core {

double AdditivePrice(const std::vector<double>& shard_prices) {
  double total = 0.0;
  for (double price : shard_prices) total += price;
  return total;
}

std::string MergeAlgorithmLabels(const std::vector<std::string>& labels) {
  std::string merged;
  std::vector<const std::string*> seen;
  for (const std::string& label : labels) {
    bool duplicate = false;
    for (const std::string* s : seen) {
      if (*s == label) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen.push_back(&label);
    if (!merged.empty()) merged += '+';
    merged += label;
  }
  return merged;
}

}  // namespace qp::core
