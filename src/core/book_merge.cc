#include "core/book_merge.h"

#include <algorithm>

namespace qp::core {

double AdditivePrice(const std::vector<double>& shard_prices) {
  double total = 0.0;
  for (double price : shard_prices) total += price;
  return total;
}

std::string MergeAlgorithmLabels(const std::vector<std::string>& labels) {
  std::vector<const std::string*> ptrs;
  ptrs.reserve(labels.size());
  for (const std::string& label : labels) ptrs.push_back(&label);
  std::string merged;
  MergeAlgorithmLabelsInto(ptrs, &merged);
  return merged;
}

void MergeAlgorithmLabelsInto(std::span<const std::string* const> labels,
                              std::string* out) {
  out->clear();
  for (size_t i = 0; i < labels.size(); ++i) {
    // First-appearance dedup over the span itself — no side storage, so
    // the function allocates only if `out` must grow past its capacity.
    bool duplicate = false;
    for (size_t j = 0; j < i; ++j) {
      if (*labels[j] == *labels[i]) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    if (!out->empty()) *out += '+';
    *out += *labels[i];
  }
}

}  // namespace qp::core
