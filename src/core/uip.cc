#include <algorithm>
#include <vector>

#include "common/stopwatch.h"
#include "core/algorithms.h"

namespace qp::core {

// Guruswami et al.: set every item weight to the same w. Bundle e sells iff
// w * |e| <= v_e, i.e. w <= q_e = v_e / |e|. Sorting by q_e descending makes
// the sold set a prefix, so each candidate w = q_(i) is evaluated in O(1)
// with a running size sum. Empty bundles always sell, at price 0.
PricingResult RunUip(const Hypergraph& hypergraph, const Valuations& v) {
  Stopwatch timer;
  struct Candidate {
    double q;
    double size;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(v.size());
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    int size = hypergraph.edge_size(e);
    if (size == 0) continue;
    candidates.push_back(
        {v[e] / static_cast<double>(size), static_cast<double>(size)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.q > b.q; });

  double best_w = 0.0;
  double best_revenue = 0.0;
  double size_prefix = 0.0;
  for (const Candidate& c : candidates) {
    size_prefix += c.size;
    double revenue = c.q * size_prefix;
    if (revenue > best_revenue) {
      best_revenue = revenue;
      best_w = c.q;
    }
  }

  PricingResult result;
  result.algorithm = "UIP";
  result.pricing = std::make_unique<ItemPricing>(
      std::vector<double>(hypergraph.num_items(), best_w));
  result.revenue = Revenue(*result.pricing, hypergraph, v);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace qp::core
