#include "core/valuation.h"

#include <algorithm>
#include <cmath>

#include "common/distributions.h"

namespace qp::core {

Valuations SampleUniformValuations(const Hypergraph& hypergraph, double k,
                                   Rng& rng) {
  Valuations v(hypergraph.num_edges());
  for (double& x : v) x = rng.UniformReal(1.0, k);
  return v;
}

Valuations SampleZipfValuations(const Hypergraph& hypergraph, double a,
                                Rng& rng, uint64_t zipf_support) {
  ZipfDistribution zipf(zipf_support, a);
  Valuations v(hypergraph.num_edges());
  for (double& x : v) x = static_cast<double>(zipf.Sample(rng));
  return v;
}

Valuations ScaleExponentialValuations(const Hypergraph& hypergraph,
                                      double kappa, Rng& rng) {
  Valuations v(hypergraph.num_edges());
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    int size = hypergraph.edge_size(e);
    if (size == 0) {
      v[e] = 0.0;
      continue;
    }
    double mean = std::pow(static_cast<double>(size), kappa);
    v[e] = rng.Exponential(mean);
  }
  return v;
}

Valuations ScaleNormalValuations(const Hypergraph& hypergraph, double kappa,
                                 Rng& rng, double variance) {
  double sigma = std::sqrt(variance);
  Valuations v(hypergraph.num_edges());
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    int size = hypergraph.edge_size(e);
    if (size == 0) {
      v[e] = 0.0;
      continue;
    }
    double mu = std::pow(static_cast<double>(size), kappa);
    v[e] = std::max(0.0, rng.Normal(mu, sigma));
  }
  return v;
}

Valuations AdditiveItemValuations(const Hypergraph& hypergraph,
                                  LevelDistribution levels, uint64_t k,
                                  Rng& rng) {
  const uint32_t n = hypergraph.num_items();
  std::vector<double> item_price(n);
  BinomialDistribution binomial(k, 0.5);
  for (uint32_t j = 0; j < n; ++j) {
    uint64_t level = levels == LevelDistribution::kUniform
                         ? static_cast<uint64_t>(
                               rng.UniformInt(1, std::max<int64_t>(1, k)))
                         : binomial.Sample(rng);
    item_price[j] =
        rng.UniformReal(static_cast<double>(level), static_cast<double>(level) + 1.0);
  }
  Valuations v(hypergraph.num_edges(), 0.0);
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    double total = 0.0;
    for (uint32_t j : hypergraph.edge(e)) total += item_price[j];
    v[e] = total;
  }
  return v;
}

}  // namespace qp::core
