// Revenue upper bounds used to normalize the experiment plots.
//
//  * SumOfValuations — the weak bound sum_e v_e every plot normalizes by.
//  * SubadditiveBound — the paper's LP bound (Section 6.1): maximize
//    sum_e p_e with 0 <= p_e <= v_e plus greedily generated arbitrage
//    constraints p_e <= sum_{e' in C} p_{e'} for covers C of e by other
//    edges. As the paper itself notes (Section 6.3), this is a *heuristic*
//    estimate: constraint generation is greedy, and cover members capped at
//    their valuations may model unsold edges too pessimistically, so the
//    estimate can occasionally fall below what an algorithm achieves. The
//    only universal invariant is SubadditiveBound <= SumOfValuations.
#ifndef QP_CORE_BOUNDS_H_
#define QP_CORE_BOUNDS_H_

#include "core/hypergraph.h"

namespace qp::core {

double SumOfValuations(const Valuations& v);

struct SubadditiveBoundOptions {
  /// Cap on cover constraints generated (<=0: one per edge where possible).
  int max_constraints = 0;
};

double SubadditiveBound(const Hypergraph& hypergraph, const Valuations& v,
                        const SubadditiveBoundOptions& options = {});

}  // namespace qp::core

#endif  // QP_CORE_BOUNDS_H_
