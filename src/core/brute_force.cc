#include "core/brute_force.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "core/pricing.h"
#include "lp/lp_model.h"
#include "lp/simplex.h"

namespace qp::core {

double BruteForceUniformBundleRevenue(const Valuations& v) {
  double best = 0.0;
  for (double candidate : v) {
    double revenue = 0.0;
    for (double value : v) {
      if (candidate <= value + kSellTolerance) revenue += candidate;
    }
    best = std::max(best, revenue);
  }
  return best;
}

double BruteForceItemPricingRevenue(const Hypergraph& hypergraph,
                                    const Valuations& v) {
  const int m = hypergraph.num_edges();
  assert(m <= 16);
  double best = 0.0;
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    // LP: maximize the total price of the subset, all of it selling.
    lp::LpModel model(lp::ObjectiveSense::kMaximize);
    std::vector<int> var_of_item(hypergraph.num_items(), -1);
    std::vector<double> obj(hypergraph.num_items(), 0.0);
    bool any = false;
    for (int e = 0; e < m; ++e) {
      if (!(mask & (1u << e))) continue;
      any = true;
      for (uint32_t j : hypergraph.edge(e)) obj[j] += 1.0;
    }
    if (!any) continue;
    for (uint32_t j = 0; j < hypergraph.num_items(); ++j) {
      if (obj[j] > 0.0) var_of_item[j] = model.AddVariable(0.0, lp::kInf, obj[j]);
    }
    for (int e = 0; e < m; ++e) {
      if (!(mask & (1u << e))) continue;
      std::vector<std::pair<int, double>> terms;
      for (uint32_t j : hypergraph.edge(e)) {
        terms.emplace_back(var_of_item[j], 1.0);
      }
      model.AddConstraint(lp::ConstraintSense::kLe, v[e], std::move(terms));
    }
    lp::LpSolution solution = lp::SolveLp(model);
    if (!solution.ok()) continue;
    // Realized revenue of the optimizer (incidental extra sales included).
    std::vector<double> weights(hypergraph.num_items(), 0.0);
    for (uint32_t j = 0; j < hypergraph.num_items(); ++j) {
      if (var_of_item[j] >= 0) weights[j] = solution.primal[var_of_item[j]];
    }
    best = std::max(best, Revenue(ItemPricing(weights), hypergraph, v));
  }
  return best;
}

double BruteForceUniformItemRevenue(const Hypergraph& hypergraph,
                                    const Valuations& v) {
  double best = 0.0;
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    int size = hypergraph.edge_size(e);
    if (size == 0) continue;
    double w = v[e] / static_cast<double>(size);
    double revenue = 0.0;
    for (int e2 = 0; e2 < hypergraph.num_edges(); ++e2) {
      double price = w * hypergraph.edge_size(e2);
      if (price <= v[e2] + kSellTolerance) revenue += price;
    }
    best = std::max(best, revenue);
  }
  return best;
}

}  // namespace qp::core
