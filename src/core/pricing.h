// Succinct pricing functions (paper Section 3.4) and revenue computation.
//
// All three families are monotone and subadditive set functions, hence
// arbitrage-free by Theorem 1; tests/market/arbitrage_test.cc verifies the
// property on every pricing the algorithms emit.
#ifndef QP_CORE_PRICING_H_
#define QP_CORE_PRICING_H_

#include <memory>
#include <string>
#include <vector>

#include "core/hypergraph.h"

namespace qp::core {

/// Tolerance for the "sells" test: edge e sells iff p(e) <= v_e +
/// kSellTolerance. This is the single place the contract lives.
///
/// LP-derived prices (LPIP, CIP, the UBP refinement) satisfy p(e) <= v_e
/// only up to the simplex feasibility tolerance (SimplexOptions::
/// feasibility_tol, 1e-7 by default), scaled by the usual accumulation of
/// rounding over basis solves — not to 1e-9. kSellTolerance is therefore
/// held an order of magnitude above the solver's feasibility tolerance so
/// every edge an LP *constrained to sell* actually counts as sold;
/// tests/core/pricing_test.cc pins both the ordering against the solver
/// default and the end-to-end behavior on LP-derived prices.
inline constexpr double kSellTolerance = 1e-6;

class PricingFunction {
 public:
  virtual ~PricingFunction() = default;

  /// Price of a bundle of items (sorted or not; duplicates ignored by
  /// construction of bundles).
  virtual double Price(const std::vector<uint32_t>& bundle) const = 0;

  /// Short human-readable description ("uniform bundle P=3.5", ...).
  virtual std::string Describe() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<PricingFunction> Clone() const = 0;
};

/// pb(e) = P for every bundle (the data-market default scheme).
class UniformBundlePricing : public PricingFunction {
 public:
  explicit UniformBundlePricing(double price) : price_(price) {}

  double Price(const std::vector<uint32_t>& bundle) const override;
  std::string Describe() const override;
  std::unique_ptr<PricingFunction> Clone() const override {
    return std::make_unique<UniformBundlePricing>(price_);
  }

  double bundle_price() const { return price_; }

 private:
  double price_;
};

/// pa(e) = sum of item weights (additive / item pricing).
class ItemPricing : public PricingFunction {
 public:
  explicit ItemPricing(std::vector<double> weights)
      : weights_(std::move(weights)) {}

  double Price(const std::vector<uint32_t>& bundle) const override;
  std::string Describe() const override;
  std::unique_ptr<PricingFunction> Clone() const override {
    return std::make_unique<ItemPricing>(weights_);
  }

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
};

/// px(e) = max over component additive pricings (fractionally subadditive).
class XosPricing : public PricingFunction {
 public:
  explicit XosPricing(std::vector<std::vector<double>> components)
      : components_(std::move(components)) {}

  double Price(const std::vector<uint32_t>& bundle) const override;
  std::string Describe() const override;
  std::unique_ptr<PricingFunction> Clone() const override {
    return std::make_unique<XosPricing>(components_);
  }

  const std::vector<std::vector<double>>& components() const {
    return components_;
  }

 private:
  std::vector<std::vector<double>> components_;
};

/// R(p) = sum of p(e_i) over buyers with v_i >= p(e_i) (paper Section 3.3).
double Revenue(const PricingFunction& pricing, const Hypergraph& hypergraph,
               const Valuations& valuations);

/// Same, for an explicit per-edge price vector.
double RevenueFromPrices(const std::vector<double>& edge_prices,
                         const Valuations& valuations);

/// Prices of all edges under `pricing`.
std::vector<double> EdgePrices(const PricingFunction& pricing,
                               const Hypergraph& hypergraph);

}  // namespace qp::core

#endif  // QP_CORE_PRICING_H_
