// Online revenue maximization (paper Section 7.2, "Learning buyer
// valuations"): buyers arrive one at a time; the broker posts a price for
// the requested bundle and only observes whether the buyer accepted —
// bandit feedback. This module implements the EXP3 bandit over a
// geometric grid of uniform bundle prices, the classic baseline the paper
// proposes investigating, plus an explicit regret accounting against the
// best fixed grid price in hindsight.
#ifndef QP_CORE_ONLINE_H_
#define QP_CORE_ONLINE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/hypergraph.h"

namespace qp::core {

struct OnlinePricingOptions {
  /// Price grid: geometric from min_price to max_price with `grid_size`
  /// points (covers a [1, H] valuation range with O(log H) arms, the
  /// standard discretization for posted-price bandits).
  double min_price = 1.0;
  double max_price = 1024.0;
  int grid_size = 11;
  /// EXP3 exploration rate; <= 0 picks sqrt(ln K / (K T)) per round
  /// internally with T unknown (anytime variant).
  double gamma = 0.05;
};

/// EXP3 posted-price learner over a uniform bundle price grid.
class Exp3PriceLearner {
 public:
  Exp3PriceLearner(const OnlinePricingOptions& options, uint64_t seed);

  /// Price to post for the next buyer.
  double PostPrice();

  /// Reports whether the buyer at the last posted price accepted;
  /// updates the arm weights (reward = price if accepted, else 0,
  /// importance-weighted as in EXP3).
  void Observe(bool accepted);

  double total_revenue() const { return total_revenue_; }
  int rounds() const { return rounds_; }
  const std::vector<double>& grid() const { return grid_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> Probabilities() const;

  OnlinePricingOptions options_;
  std::vector<double> grid_;
  std::vector<double> weights_;
  Rng rng_;
  int last_arm_ = -1;
  int rounds_ = 0;
  double total_revenue_ = 0.0;
};

struct OnlineSimulationResult {
  double learner_revenue = 0.0;
  /// Revenue of the best *fixed* grid price in hindsight.
  double best_fixed_revenue = 0.0;
  /// best_fixed_revenue - learner_revenue (>= 0 up to noise).
  double regret = 0.0;
  double best_fixed_price = 0.0;
};

/// Replays a buyer sequence (bundle index + valuation drawn by `draw`)
/// against the learner and the best fixed price in hindsight. Buyers are
/// single-minded: buyer t accepts iff posted price <= v_t.
OnlineSimulationResult SimulateOnlinePricing(
    const std::vector<double>& buyer_valuations,
    const OnlinePricingOptions& options, uint64_t seed);

}  // namespace qp::core

#endif  // QP_CORE_ONLINE_H_
