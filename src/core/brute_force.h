// Exact oracles for tiny instances, used by tests to validate the
// approximation algorithms.
#ifndef QP_CORE_BRUTE_FORCE_H_
#define QP_CORE_BRUTE_FORCE_H_

#include "core/hypergraph.h"

namespace qp::core {

/// Exact optimal uniform-bundle revenue (UBP is already exact; this is an
/// independent O(m^2) reference).
double BruteForceUniformBundleRevenue(const Valuations& v);

/// Exact optimal item-pricing revenue via one LP per sold-subset
/// (2^m LPs; requires m <= 16). For any pricing w with sold set T,
/// revenue(w) <= LP(T) <= realized revenue of LP(T)'s optimizer, so the
/// max over subsets is exactly the item-pricing optimum.
double BruteForceItemPricingRevenue(const Hypergraph& hypergraph,
                                    const Valuations& v);

/// Exact optimal uniform item price (w constant across items) by sweeping
/// all candidate thresholds; independent O(m^2) reference for UIP.
double BruteForceUniformItemRevenue(const Hypergraph& hypergraph,
                                    const Valuations& v);

}  // namespace qp::core

#endif  // QP_CORE_BRUTE_FORCE_H_
