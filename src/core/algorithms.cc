#include "core/algorithms.h"

#include <vector>

#include "common/stopwatch.h"
#include "core/class_util.h"
#include "lp/lp_model.h"
#include "lp/simplex.h"

namespace qp::core {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kUbp:
      return "UBP";
    case Algorithm::kUip:
      return "UIP";
    case Algorithm::kLpip:
      return "LPIP";
    case Algorithm::kCip:
      return "CIP";
    case Algorithm::kLayering:
      return "Layering";
    case Algorithm::kXos:
      return "XOS";
  }
  return "?";
}

std::vector<PricingResult> RunAllAlgorithms(const Hypergraph& hypergraph,
                                            const Valuations& v,
                                            const AlgorithmOptions& options) {
  // Share one compressed class structure across the LP algorithms.
  ItemClasses classes = ItemClasses::Compute(hypergraph);
  LpipOptions lpip_options = options.lpip;
  CipOptions cip_options = options.cip;
  if (lpip_options.use_compression && lpip_options.classes == nullptr) {
    lpip_options.classes = &classes;
  }
  if (cip_options.use_compression && cip_options.classes == nullptr) {
    cip_options.classes = &classes;
  }

  std::vector<PricingResult> results;
  results.push_back(RunUbp(hypergraph, v));
  results.push_back(RunUip(hypergraph, v));
  results.push_back(RunLpip(hypergraph, v, lpip_options));
  results.push_back(RunCip(hypergraph, v, cip_options));
  results.push_back(RunLayering(hypergraph, v));
  const auto* lpip_pricing =
      static_cast<const ItemPricing*>(results[2].pricing.get());
  const auto* cip_pricing =
      static_cast<const ItemPricing*>(results[3].pricing.get());
  results.push_back(RunXos(hypergraph, v, *lpip_pricing, *cip_pricing));
  return results;
}

std::optional<PricingResult> RefineUbpWithItemLp(const Hypergraph& hypergraph,
                                                 const Valuations& v) {
  Stopwatch timer;
  PricingResult ubp = RunUbp(hypergraph, v);
  double bundle_price =
      static_cast<const UniformBundlePricing*>(ubp.pricing.get())
          ->bundle_price();

  // Edges UBP sells; the LP must keep selling all of them.
  std::vector<int> sold;
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    if (bundle_price <= v[e] + kSellTolerance) sold.push_back(e);
  }
  if (sold.empty()) return std::nullopt;

  ItemClasses storage;
  const ItemClasses& classes =
      ResolveClasses(hypergraph, nullptr, /*use_compression=*/true, storage);

  std::vector<int> class_to_var(classes.num_classes(), -1);
  std::vector<uint32_t> used_classes;
  std::vector<double> obj_coeff;
  for (int e : sold) {
    for (uint32_t cls : classes.edge_classes[e]) {
      if (class_to_var[cls] < 0) {
        class_to_var[cls] = static_cast<int>(used_classes.size());
        used_classes.push_back(cls);
        obj_coeff.push_back(0.0);
      }
      obj_coeff[class_to_var[cls]] += 1.0;
    }
  }
  lp::LpModel model(lp::ObjectiveSense::kMaximize);
  for (size_t u = 0; u < used_classes.size(); ++u) {
    model.AddVariable(0.0, lp::kInf, obj_coeff[u]);
  }
  for (int e : sold) {
    if (classes.edge_classes[e].empty()) continue;
    std::vector<std::pair<int, double>> terms;
    for (uint32_t cls : classes.edge_classes[e]) {
      terms.emplace_back(class_to_var[cls], 1.0);
    }
    model.AddConstraint(lp::ConstraintSense::kLe, v[e], std::move(terms));
  }
  lp::LpSolution solution = lp::SolveLp(model);
  if (!solution.ok()) return std::nullopt;

  std::vector<double> class_weights(classes.num_classes(), 0.0);
  for (size_t u = 0; u < used_classes.size(); ++u) {
    class_weights[used_classes[u]] = solution.primal[u];
  }
  PricingResult refined;
  refined.algorithm = "UBP+LP";
  refined.lps_solved = 1;
  refined.pricing = std::make_unique<ItemPricing>(
      classes.ExpandClassWeights(class_weights, hypergraph.num_items()));
  refined.revenue = Revenue(*refined.pricing, hypergraph, v);
  refined.seconds = timer.ElapsedSeconds();
  return refined;
}

}  // namespace qp::core
