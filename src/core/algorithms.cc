#include "core/algorithms.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/stopwatch.h"
#include "core/class_util.h"
#include "lp/lp_model.h"
#include "lp/simplex.h"

namespace qp::core {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kUbp:
      return "UBP";
    case Algorithm::kUip:
      return "UIP";
    case Algorithm::kLpip:
      return "LPIP";
    case Algorithm::kCip:
      return "CIP";
    case Algorithm::kLayering:
      return "Layering";
    case Algorithm::kXos:
      return "XOS";
  }
  return "?";
}

std::vector<int> OrderByDescendingValuation(const Valuations& v) {
  std::vector<int> order(v.size());
  std::iota(order.begin(), order.end(), 0);
  // Explicit index tie-break: the order must not depend on the standard
  // library's (unstable) sort implementation, because LP row/column
  // construction order — and therefore the committed bit-identity
  // baseline — follows from it.
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return v[a] > v[b] || (v[a] == v[b] && a < b);
  });
  return order;
}

SharedPrecompute ComputeShared(const Hypergraph& hypergraph,
                               const Valuations& v) {
  SharedPrecompute shared;
  shared.classes = ItemClasses::Compute(hypergraph);
  shared.order_by_valuation = OrderByDescendingValuation(v);
  return shared;
}

AlgorithmOptions WithShared(const AlgorithmOptions& options,
                            const SharedPrecompute& shared) {
  AlgorithmOptions out = options;
  if (out.lpip.use_compression && out.lpip.classes == nullptr) {
    out.lpip.classes = &shared.classes;
  }
  if (out.cip.use_compression && out.cip.classes == nullptr) {
    out.cip.classes = &shared.classes;
  }
  // Only install an order that was actually computed: RunAllAlgorithms
  // skips the sort when the caller already supplied one.
  if (out.sorted_order == nullptr && !shared.order_by_valuation.empty()) {
    out.sorted_order = &shared.order_by_valuation;
  }
  if (out.lpip.sorted_order == nullptr) {
    out.lpip.sorted_order = out.sorted_order;
  }
  return out;
}

std::vector<PricingResult> RunAllAlgorithms(const Hypergraph& hypergraph,
                                            const Valuations& v,
                                            const AlgorithmOptions& options) {
  // Compute the item classes and the descending valuation order once and
  // share them across every algorithm of this instance — skipping
  // whatever the caller precomputed (the bench harness passes classes
  // per workload) so nothing is derived twice.
  SharedPrecompute shared;
  bool need_classes =
      (options.lpip.use_compression && options.lpip.classes == nullptr) ||
      (options.cip.use_compression && options.cip.classes == nullptr);
  if (need_classes) shared.classes = ItemClasses::Compute(hypergraph);
  if (options.sorted_order == nullptr &&
      options.lpip.sorted_order == nullptr) {
    shared.order_by_valuation = OrderByDescendingValuation(v);
  }
  AlgorithmOptions resolved = WithShared(options, shared);

  return AssembleAllResults(hypergraph, v,
                            RunLpip(hypergraph, v, resolved.lpip),
                            RunCip(hypergraph, v, resolved.cip));
}

std::vector<PricingResult> AssembleAllResults(const Hypergraph& hypergraph,
                                              const Valuations& v,
                                              PricingResult lpip,
                                              PricingResult cip) {
  std::vector<PricingResult> results;
  results.push_back(RunUbp(hypergraph, v));
  results.push_back(RunUip(hypergraph, v));
  results.push_back(std::move(lpip));
  results.push_back(std::move(cip));
  results.push_back(RunLayering(hypergraph, v));
  const auto* lpip_pricing =
      static_cast<const ItemPricing*>(results[2].pricing.get());
  const auto* cip_pricing =
      static_cast<const ItemPricing*>(results[3].pricing.get());
  results.push_back(RunXos(hypergraph, v, *lpip_pricing, *cip_pricing));
  return results;
}

std::optional<PricingResult> RefineUbpWithItemLp(const Hypergraph& hypergraph,
                                                 const Valuations& v) {
  Stopwatch timer;
  PricingResult ubp = RunUbp(hypergraph, v);
  double bundle_price =
      static_cast<const UniformBundlePricing*>(ubp.pricing.get())
          ->bundle_price();

  // Edges UBP sells; the LP must keep selling all of them.
  std::vector<int> sold;
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    if (bundle_price <= v[e] + kSellTolerance) sold.push_back(e);
  }
  if (sold.empty()) return std::nullopt;

  ItemClasses storage;
  const ItemClasses& classes =
      ResolveClasses(hypergraph, nullptr, /*use_compression=*/true, storage);

  std::vector<int> class_to_var(classes.num_classes(), -1);
  std::vector<uint32_t> used_classes;
  std::vector<double> obj_coeff;
  for (int e : sold) {
    for (uint32_t cls : classes.edge_classes[e]) {
      if (class_to_var[cls] < 0) {
        class_to_var[cls] = static_cast<int>(used_classes.size());
        used_classes.push_back(cls);
        obj_coeff.push_back(0.0);
      }
      obj_coeff[class_to_var[cls]] += 1.0;
    }
  }
  lp::LpModel model(lp::ObjectiveSense::kMaximize);
  for (size_t u = 0; u < used_classes.size(); ++u) {
    model.AddVariable(0.0, lp::kInf, obj_coeff[u]);
  }
  for (int e : sold) {
    if (classes.edge_classes[e].empty()) continue;
    std::vector<std::pair<int, double>> terms;
    for (uint32_t cls : classes.edge_classes[e]) {
      terms.emplace_back(class_to_var[cls], 1.0);
    }
    model.AddConstraint(lp::ConstraintSense::kLe, v[e], std::move(terms));
  }
  lp::LpSolution solution = lp::SolveLp(model);
  if (!solution.ok()) return std::nullopt;

  std::vector<double> class_weights(classes.num_classes(), 0.0);
  for (size_t u = 0; u < used_classes.size(); ++u) {
    class_weights[used_classes[u]] = solution.primal[u];
  }
  PricingResult refined;
  refined.algorithm = "UBP+LP";
  refined.lps_solved = 1;
  refined.pricing = std::make_unique<ItemPricing>(
      classes.ExpandClassWeights(class_weights, hypergraph.num_items()));
  refined.revenue = Revenue(*refined.pricing, hypergraph, v);
  refined.seconds = timer.ElapsedSeconds();
  return refined;
}

}  // namespace qp::core
