// The paper's worst-case gap instances (Lemmas 2-4, Appendix A).
//
// Each constructor returns the hypergraph together with its valuations and
// the instance's known optimal (subadditive) revenue, so tests and the
// ablation bench can measure the Omega(log m) gaps directly.
#ifndef QP_CORE_LOWER_BOUNDS_H_
#define QP_CORE_LOWER_BOUNDS_H_

#include <utility>

#include "core/hypergraph.h"

namespace qp::core {

struct GapInstance {
  Hypergraph hypergraph{0};
  Valuations valuations;
  /// Revenue of the optimal monotone subadditive pricing on this instance.
  double optimal_revenue = 0.0;
};

/// Lemma 2: m singleton buyers, buyer i wants item i at value 1/i.
/// Additive valuations; OPT = H_m = Theta(log m); any uniform bundle
/// price extracts O(1).
GapInstance MakeLemma2Instance(int m);

/// Lemma 3: customer classes C_i (i = 1..n), |C_i| = ceil(n/i), each buyer
/// in C_i gets a block of i items disjoint within the class; all
/// valuations 1. OPT = m = Theta(n log n); any item pricing extracts O(n).
GapInstance MakeLemma3Instance(int n);

/// Lemma 4: laminar binary-tree family over n = 2^t items; a set at depth
/// l has value (3/4)^l and (2/3)^l * 3^t copies. The valuation is
/// submodular; OPT = (t+1) * 3^t while both uniform bundle pricing and
/// item pricing are O(3^t).
GapInstance MakeLemma4Instance(int t);

}  // namespace qp::core

#endif  // QP_CORE_LOWER_BOUNDS_H_
