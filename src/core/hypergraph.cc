#include "core/hypergraph.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/str_util.h"

namespace qp::core {

int Hypergraph::AddEdge(std::vector<uint32_t> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  assert(items.empty() || items.back() < num_items_);
  edges_.push_back(std::move(items));
  // The cached incidence (if any) now lags by this edge; incidence()
  // merges the pending suffix instead of rebuilding.
  return static_cast<int>(edges_.size()) - 1;
}

const ItemIncidence& Hypergraph::incidence() const {
  const int m = num_edges();
  const bool have_index =
      incidence_.start.size() == static_cast<size_t>(num_items_) + 1;
  if (have_index && incidence_edges_ == m) return incidence_;

  if (!have_index || incidence_edges_ == 0) {
    // Cold build: scan every edge.
    ItemIncidence out;
    out.start.assign(num_items_ + 1, 0);
    for (const auto& e : edges_) {
      for (uint32_t j : e) out.start[j + 1]++;
    }
    for (uint32_t j = 0; j < num_items_; ++j) out.start[j + 1] += out.start[j];
    out.edge.resize(out.start[num_items_]);
    std::vector<int> fill(num_items_, 0);
    for (int e = 0; e < m; ++e) {
      for (uint32_t j : edges_[e]) {
        out.edge[out.start[j] + fill[j]++] = e;  // ascending: edges in order
      }
    }
    incidence_ = std::move(out);
    incidence_edges_ = m;
    maintenance_.full_builds++;
    return incidence_;
  }

  // Merge path: edges [incidence_edges_, m) are appended, so within every
  // item's list they land *after* the existing (smaller) edge ids — one
  // slice-copy pass preserves the ascending order without touching the
  // old edges' item lists.
  std::vector<int> extra(num_items_, 0);
  for (int e = incidence_edges_; e < m; ++e) {
    for (uint32_t j : edges_[e]) extra[j]++;
  }
  ItemIncidence out;
  out.start.resize(num_items_ + 1);
  out.start[0] = 0;
  for (uint32_t j = 0; j < num_items_; ++j) {
    out.start[j + 1] = out.start[j] + incidence_.degree(j) + extra[j];
  }
  out.edge.resize(out.start[num_items_]);
  std::vector<int> fill(num_items_, 0);
  for (uint32_t j = 0; j < num_items_; ++j) {
    std::copy(incidence_.begin(j), incidence_.end(j),
              out.edge.begin() + out.start[j]);
    fill[j] = incidence_.degree(j);
  }
  for (int e = incidence_edges_; e < m; ++e) {
    for (uint32_t j : edges_[e]) {
      out.edge[out.start[j] + fill[j]++] = e;
    }
  }
  incidence_ = std::move(out);
  incidence_edges_ = m;
  maintenance_.merges++;
  return incidence_;
}

std::vector<uint32_t> Hypergraph::ItemDegrees() const {
  const ItemIncidence& inc = incidence();
  std::vector<uint32_t> degree(num_items_, 0);
  for (uint32_t j = 0; j < num_items_; ++j) {
    degree[j] = static_cast<uint32_t>(inc.degree(j));
  }
  return degree;
}

uint32_t Hypergraph::MaxDegree() const {
  uint32_t best = 0;
  for (uint32_t d : ItemDegrees()) best = std::max(best, d);
  return best;
}

uint32_t Hypergraph::MaxEdgeSize() const {
  size_t best = 0;
  for (const auto& e : edges_) best = std::max(best, e.size());
  return static_cast<uint32_t>(best);
}

double Hypergraph::AvgEdgeSize() const {
  if (edges_.empty()) return 0.0;
  double total = 0;
  for (const auto& e : edges_) total += static_cast<double>(e.size());
  return total / static_cast<double>(edges_.size());
}

int Hypergraph::NumEdgesWithUniqueItem() const {
  std::vector<uint32_t> degree = ItemDegrees();
  int count = 0;
  for (const auto& e : edges_) {
    for (uint32_t j : e) {
      if (degree[j] == 1) {
        ++count;
        break;
      }
    }
  }
  return count;
}

std::string Hypergraph::StatsString() const {
  return StrFormat(
      "n=%u m=%d B=%u max|e|=%u avg|e|=%.2f unique-item edges=%d",
      num_items_, num_edges(), MaxDegree(), MaxEdgeSize(), AvgEdgeSize(),
      NumEdgesWithUniqueItem());
}

ItemClasses ItemClasses::Compute(const Hypergraph& hypergraph) {
  const uint32_t n = hypergraph.num_items();
  // Signature of an item = the (sorted) list of edges containing it, which
  // is exactly its slice of the incidence index.
  const ItemIncidence& inc = hypergraph.incidence();
  auto same_signature = [&](uint32_t a, uint32_t b) {
    return inc.degree(a) == inc.degree(b) &&
           std::equal(inc.begin(a), inc.end(a), inc.begin(b));
  };

  ItemClasses out;
  out.class_of_item.assign(n, kNoClass);
  // Group by signature hash, verifying exact equality within buckets.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;  // hash -> reps
  for (uint32_t j = 0; j < n; ++j) {
    if (inc.degree(j) == 0) continue;
    uint64_t h = 0xabcdef12u;
    for (const int* e = inc.begin(j); e != inc.end(j); ++e) {
      h = HashCombine(h, static_cast<uint32_t>(*e));
    }
    auto& reps = buckets[h];
    uint32_t cls = kNoClass;
    for (uint32_t rep : reps) {
      if (same_signature(rep, j)) {
        cls = out.class_of_item[rep];
        break;
      }
    }
    if (cls == kNoClass) {
      cls = static_cast<uint32_t>(out.class_size.size());
      out.class_size.push_back(0);
      out.class_rep.push_back(j);
      reps.push_back(j);
    }
    out.class_of_item[j] = cls;
    out.class_size[cls]++;
  }

  // Per-edge class lists (each class is all-or-nothing inside an edge, so
  // dedup is enough).
  out.edge_classes.resize(hypergraph.num_edges());
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    std::vector<uint32_t>& classes = out.edge_classes[e];
    for (uint32_t j : hypergraph.edge(e)) {
      classes.push_back(out.class_of_item[j]);
    }
    std::sort(classes.begin(), classes.end());
    classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  }
  return out;
}

void ItemClasses::Refine(const Hypergraph& hypergraph, int first_new_edge) {
  const int m = hypergraph.num_edges();
  if (first_new_edge >= m) return;

  // Touch list: (item, new edge) pairs, grouped per item below. Within an
  // item the edges stay ascending because new edges are scanned in order.
  std::vector<std::pair<uint32_t, int>> touches;
  for (int e = first_new_edge; e < m; ++e) {
    for (uint32_t j : hypergraph.edge(e)) touches.emplace_back(j, e);
  }
  if (touches.empty()) {
    // Appended edges are all empty: classes are unchanged, only the
    // per-edge lists grow (empty for empty edges).
    edge_classes.resize(m);
    return;
  }
  std::sort(touches.begin(), touches.end());

  // Per touched item: its slice [sig_start, sig_end) of `touches` is the
  // item's new-edge signature. Items of one old class whose signatures
  // agree stay together; differing signatures split the class.
  struct TouchedItem {
    uint32_t item;
    size_t sig_start;
    size_t sig_end;
  };
  std::vector<TouchedItem> touched;
  for (size_t i = 0; i < touches.size();) {
    size_t k = i;
    while (k < touches.size() && touches[k].first == touches[i].first) ++k;
    touched.push_back({touches[i].first, i, k});
    i = k;
  }

  auto same_signature = [&](const TouchedItem& a, const TouchedItem& b) {
    if (a.sig_end - a.sig_start != b.sig_end - b.sig_start) return false;
    for (size_t i = 0; i < a.sig_end - a.sig_start; ++i) {
      if (touches[a.sig_start + i].second != touches[b.sig_start + i].second)
        return false;
    }
    return true;
  };
  auto signature_less = [&](const TouchedItem& a, const TouchedItem& b) {
    return std::lexicographical_compare(
        touches.begin() + static_cast<ptrdiff_t>(a.sig_start),
        touches.begin() + static_cast<ptrdiff_t>(a.sig_end),
        touches.begin() + static_cast<ptrdiff_t>(b.sig_start),
        touches.begin() + static_cast<ptrdiff_t>(b.sig_end),
        [](const auto& x, const auto& y) { return x.second < y.second; });
  };

  // Group touched items by (old class, signature). kNoClass items (first
  // appearance in any edge) group among themselves the same way.
  std::sort(touched.begin(), touched.end(),
            [&](const TouchedItem& a, const TouchedItem& b) {
              uint32_t ca = class_of_item[a.item], cb = class_of_item[b.item];
              if (ca != cb) return ca < cb;
              if (signature_less(a, b)) return true;
              if (signature_less(b, a)) return false;
              return a.item < b.item;
            });

  struct Group {
    uint32_t old_class;            // kNoClass for first-appearance items
    std::vector<uint32_t> members;  // ascending
  };
  std::vector<Group> groups;
  std::vector<uint32_t> touched_of_class(class_size.size(), 0);
  for (size_t i = 0; i < touched.size();) {
    size_t k = i;
    while (k < touched.size() &&
           class_of_item[touched[k].item] == class_of_item[touched[i].item] &&
           same_signature(touched[k], touched[i])) {
      ++k;
    }
    Group g;
    g.old_class = class_of_item[touched[i].item];
    for (size_t t = i; t < k; ++t) g.members.push_back(touched[t].item);
    if (g.old_class != kNoClass) {
      touched_of_class[g.old_class] +=
          static_cast<uint32_t>(g.members.size());
    }
    groups.push_back(std::move(g));
    i = k;
  }

  // Decide which group (if any) inherits each old class id: the class's
  // untouched remainder when one exists, otherwise the touched group
  // holding the smallest member (covers the whole-class-moved-together
  // case, where that is the only group). Everything else gets a fresh id,
  // assigned in ascending order of smallest member for determinism.
  const uint32_t old_num_classes = static_cast<uint32_t>(class_size.size());
  std::vector<char> has_remainder(old_num_classes, 0);
  for (uint32_t c = 0; c < old_num_classes; ++c) {
    has_remainder[c] = touched_of_class[c] < class_size[c] ? 1 : 0;
  }
  std::vector<int> keeper(old_num_classes, -1);  // group index keeping id
  for (size_t g = 0; g < groups.size(); ++g) {
    uint32_t c = groups[g].old_class;
    if (c == kNoClass || has_remainder[c]) continue;
    if (keeper[c] < 0 || groups[g].members[0] <
                             groups[static_cast<size_t>(keeper[c])].members[0]) {
      keeper[c] = static_cast<int>(g);
    }
  }

  std::vector<size_t> fresh;  // group indices needing new ids
  for (size_t g = 0; g < groups.size(); ++g) {
    uint32_t c = groups[g].old_class;
    if (c != kNoClass && keeper[c] == static_cast<int>(g)) continue;
    fresh.push_back(g);
  }
  std::sort(fresh.begin(), fresh.end(), [&](size_t a, size_t b) {
    return groups[a].members[0] < groups[b].members[0];
  });

  // Split-off groups must be advertised to the old edges that contain
  // them; remember one member per split before rewriting memberships (the
  // old-edge list of a split class is any member's incidence slice
  // restricted to pre-append edges — all members share it).
  std::vector<std::pair<uint32_t, uint32_t>> splits;  // (member, new id)
  for (size_t f : fresh) {
    Group& g = groups[f];
    uint32_t id = static_cast<uint32_t>(class_size.size());
    class_size.push_back(static_cast<uint32_t>(g.members.size()));
    class_rep.push_back(g.members[0]);
    if (g.old_class != kNoClass) {
      splits.emplace_back(g.members[0], id);
      class_size[g.old_class] -= static_cast<uint32_t>(g.members.size());
    }
    for (uint32_t j : g.members) class_of_item[j] = id;
  }
  // Keeper groups retain their id but may have lost the old rep to a
  // split; remainder classes may have lost theirs to any touched group.
  // Reset keepers directly and repair remainder reps in one item scan
  // (after the rewrite above, items still carrying an old id are exactly
  // the untouched remainder).
  std::vector<char> rep_dirty(old_num_classes, 0);
  for (size_t g = 0; g < groups.size(); ++g) {
    uint32_t c = groups[g].old_class;
    if (c == kNoClass) continue;
    if (keeper[c] == static_cast<int>(g)) {
      class_rep[c] = groups[g].members[0];
    } else if (has_remainder[c]) {
      rep_dirty[c] = 1;
    }
  }
  for (uint32_t j = 0; j < static_cast<uint32_t>(class_of_item.size()); ++j) {
    uint32_t c = class_of_item[j];
    if (c == kNoClass || c >= old_num_classes) continue;
    if (rep_dirty[c]) {
      class_rep[c] = j;
      rep_dirty[c] = 0;
    }
  }

  // Per-edge class lists. New edges are computed from the rewritten
  // memberships; old edges gain the split-off ids (appended in ascending
  // id order, which keeps the lists sorted since fresh ids exceed every
  // old id).
  std::sort(splits.begin(), splits.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  const ItemIncidence& inc = hypergraph.incidence();
  for (const auto& [member, id] : splits) {
    for (const int* e = inc.begin(member); e != inc.end(member); ++e) {
      if (*e >= first_new_edge) break;  // ascending: old edges first
      edge_classes[*e].push_back(id);
    }
  }
  edge_classes.resize(m);
  for (int e = first_new_edge; e < m; ++e) {
    std::vector<uint32_t>& classes = edge_classes[e];
    classes.clear();
    for (uint32_t j : hypergraph.edge(e)) classes.push_back(class_of_item[j]);
    std::sort(classes.begin(), classes.end());
    classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  }

  // Canonical renumbering: Compute() hands out ids in ascending order of
  // a class's smallest member (its representative), so one permutation
  // makes the refined partition bit-indistinguishable from a fresh
  // Compute on the grown hypergraph — which is what lets the incremental
  // reprice path feed refined classes into the LP algorithms and land on
  // exactly the LPs a cold run would build. Reps are distinct items, so
  // the order is total.
  const uint32_t num_cls = static_cast<uint32_t>(class_size.size());
  std::vector<uint32_t> by_rep(num_cls);
  for (uint32_t c = 0; c < num_cls; ++c) by_rep[c] = c;
  std::sort(by_rep.begin(), by_rep.end(), [&](uint32_t a, uint32_t b) {
    return class_rep[a] < class_rep[b];
  });
  std::vector<uint32_t> remap(num_cls);
  bool identity = true;
  for (uint32_t rank = 0; rank < num_cls; ++rank) {
    remap[by_rep[rank]] = rank;
    identity = identity && by_rep[rank] == rank;
  }
  if (identity) return;
  for (uint32_t& c : class_of_item) {
    if (c != kNoClass) c = remap[c];
  }
  std::vector<uint32_t> new_size(num_cls), new_rep(num_cls);
  for (uint32_t c = 0; c < num_cls; ++c) {
    new_size[remap[c]] = class_size[c];
    new_rep[remap[c]] = class_rep[c];
  }
  class_size = std::move(new_size);
  class_rep = std::move(new_rep);
  for (std::vector<uint32_t>& classes : edge_classes) {
    for (uint32_t& c : classes) c = remap[c];
    std::sort(classes.begin(), classes.end());
  }
}

std::vector<double> ItemClasses::ExpandClassWeights(
    const std::vector<double>& class_weights, uint32_t num_items) const {
  std::vector<double> weights(num_items, 0.0);
  for (uint32_t j = 0; j < num_items; ++j) {
    uint32_t cls = class_of_item[j];
    if (cls == kNoClass) continue;
    weights[j] = class_weights[cls] / static_cast<double>(class_size[cls]);
  }
  return weights;
}

}  // namespace qp::core
