#include "core/hypergraph.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/hash.h"
#include "common/str_util.h"

namespace qp::core {

int Hypergraph::AddEdge(std::vector<uint32_t> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  assert(items.empty() || items.back() < num_items_);
  edges_.push_back(std::move(items));
  incidence_built_ = false;
  return static_cast<int>(edges_.size()) - 1;
}

const ItemIncidence& Hypergraph::incidence() const {
  if (incidence_built_) return incidence_;
  ItemIncidence out;
  out.start.assign(num_items_ + 1, 0);
  for (const auto& e : edges_) {
    for (uint32_t j : e) out.start[j + 1]++;
  }
  for (uint32_t j = 0; j < num_items_; ++j) out.start[j + 1] += out.start[j];
  out.edge.resize(out.start[num_items_]);
  std::vector<int> fill(num_items_, 0);
  for (int e = 0; e < num_edges(); ++e) {
    for (uint32_t j : edges_[e]) {
      out.edge[out.start[j] + fill[j]++] = e;  // ascending: edges scanned in order
    }
  }
  incidence_ = std::move(out);
  incidence_built_ = true;
  return incidence_;
}

std::vector<uint32_t> Hypergraph::ItemDegrees() const {
  const ItemIncidence& inc = incidence();
  std::vector<uint32_t> degree(num_items_, 0);
  for (uint32_t j = 0; j < num_items_; ++j) {
    degree[j] = static_cast<uint32_t>(inc.degree(j));
  }
  return degree;
}

uint32_t Hypergraph::MaxDegree() const {
  uint32_t best = 0;
  for (uint32_t d : ItemDegrees()) best = std::max(best, d);
  return best;
}

uint32_t Hypergraph::MaxEdgeSize() const {
  size_t best = 0;
  for (const auto& e : edges_) best = std::max(best, e.size());
  return static_cast<uint32_t>(best);
}

double Hypergraph::AvgEdgeSize() const {
  if (edges_.empty()) return 0.0;
  double total = 0;
  for (const auto& e : edges_) total += static_cast<double>(e.size());
  return total / static_cast<double>(edges_.size());
}

int Hypergraph::NumEdgesWithUniqueItem() const {
  std::vector<uint32_t> degree = ItemDegrees();
  int count = 0;
  for (const auto& e : edges_) {
    for (uint32_t j : e) {
      if (degree[j] == 1) {
        ++count;
        break;
      }
    }
  }
  return count;
}

std::string Hypergraph::StatsString() const {
  return StrFormat(
      "n=%u m=%d B=%u max|e|=%u avg|e|=%.2f unique-item edges=%d",
      num_items_, num_edges(), MaxDegree(), MaxEdgeSize(), AvgEdgeSize(),
      NumEdgesWithUniqueItem());
}

ItemClasses ItemClasses::Compute(const Hypergraph& hypergraph) {
  const uint32_t n = hypergraph.num_items();
  // Signature of an item = the (sorted) list of edges containing it, which
  // is exactly its slice of the incidence index.
  const ItemIncidence& inc = hypergraph.incidence();
  auto same_signature = [&](uint32_t a, uint32_t b) {
    return inc.degree(a) == inc.degree(b) &&
           std::equal(inc.begin(a), inc.end(a), inc.begin(b));
  };

  ItemClasses out;
  out.class_of_item.assign(n, kNoClass);
  // Group by signature hash, verifying exact equality within buckets.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;  // hash -> reps
  for (uint32_t j = 0; j < n; ++j) {
    if (inc.degree(j) == 0) continue;
    uint64_t h = 0xabcdef12u;
    for (const int* e = inc.begin(j); e != inc.end(j); ++e) {
      h = HashCombine(h, static_cast<uint32_t>(*e));
    }
    auto& reps = buckets[h];
    uint32_t cls = kNoClass;
    for (uint32_t rep : reps) {
      if (same_signature(rep, j)) {
        cls = out.class_of_item[rep];
        break;
      }
    }
    if (cls == kNoClass) {
      cls = static_cast<uint32_t>(out.class_size.size());
      out.class_size.push_back(0);
      out.class_rep.push_back(j);
      reps.push_back(j);
    }
    out.class_of_item[j] = cls;
    out.class_size[cls]++;
  }

  // Per-edge class lists (each class is all-or-nothing inside an edge, so
  // dedup is enough).
  out.edge_classes.resize(hypergraph.num_edges());
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    std::vector<uint32_t>& classes = out.edge_classes[e];
    for (uint32_t j : hypergraph.edge(e)) {
      classes.push_back(out.class_of_item[j]);
    }
    std::sort(classes.begin(), classes.end());
    classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  }
  return out;
}

std::vector<double> ItemClasses::ExpandClassWeights(
    const std::vector<double>& class_weights, uint32_t num_items) const {
  std::vector<double> weights(num_items, 0.0);
  for (uint32_t j = 0; j < num_items; ++j) {
    uint32_t cls = class_of_item[j];
    if (cls == kNoClass) continue;
    weights[j] = class_weights[cls] / static_cast<double>(class_size[cls]);
  }
  return weights;
}

}  // namespace qp::core
