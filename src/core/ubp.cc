#include <algorithm>

#include "common/stopwatch.h"
#include "core/algorithms.h"

namespace qp::core {

// Sorts valuations in decreasing order; price candidate v_(i) sells exactly
// the i highest-valued bundles, so a single pass finds the maximizer.
PricingResult RunUbp(const Hypergraph& hypergraph, const Valuations& v) {
  Stopwatch timer;
  Valuations sorted = v;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  double best_price = 0.0;
  double best_revenue = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    double revenue = sorted[i] * static_cast<double>(i + 1);
    if (revenue > best_revenue) {
      best_revenue = revenue;
      best_price = sorted[i];
    }
  }

  PricingResult result;
  result.algorithm = "UBP";
  result.pricing = std::make_unique<UniformBundlePricing>(best_price);
  result.revenue = Revenue(*result.pricing, hypergraph, v);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace qp::core
