#include <algorithm>
#include <numeric>
#include <vector>

#include "common/stopwatch.h"
#include "core/algorithms.h"
#include "core/class_util.h"
#include "lp/lp_model.h"
#include "lp/simplex.h"

namespace qp::core {

namespace {

// Identity classes (one per item that appears in some edge) for the
// compression ablation.
ItemClasses IdentityClasses(const Hypergraph& hypergraph) {
  ItemClasses out;
  out.class_of_item.assign(hypergraph.num_items(), ItemClasses::kNoClass);
  out.edge_classes.resize(hypergraph.num_edges());
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    for (uint32_t j : hypergraph.edge(e)) {
      if (out.class_of_item[j] == ItemClasses::kNoClass) {
        out.class_of_item[j] = static_cast<uint32_t>(out.class_size.size());
        out.class_size.push_back(1);
      }
      out.edge_classes[e].push_back(out.class_of_item[j]);
    }
    std::sort(out.edge_classes[e].begin(), out.edge_classes[e].end());
  }
  return out;
}

}  // namespace

const ItemClasses& ResolveClasses(const Hypergraph& hypergraph,
                                  const ItemClasses* provided,
                                  bool use_compression,
                                  ItemClasses& storage) {
  if (provided != nullptr) return *provided;
  storage = use_compression ? ItemClasses::Compute(hypergraph)
                            : IdentityClasses(hypergraph);
  return storage;
}

// LPIP (Section 5.2): for each candidate threshold edge e, solve
//   maximize   sum_{e' in F_e} price(e')
//   subject to price(e') <= v_{e'}  for every e' in F_e,   weights >= 0
// where F_e = { e' : v_{e'} >= v_e }, and keep the best item pricing by
// realized revenue. Weights of items outside F_e's edges are set to 0,
// which weakly dominates any other choice (extra sales only add revenue).
PricingResult RunLpip(const Hypergraph& hypergraph, const Valuations& v,
                      const LpipOptions& options) {
  Stopwatch timer;
  PricingResult result;
  result.algorithm = "LPIP";

  ItemClasses storage;
  const ItemClasses& classes = ResolveClasses(
      hypergraph, options.classes, options.use_compression, storage);

  const int m = hypergraph.num_edges();
  std::vector<int> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return v[a] > v[b]; });

  // Candidate thresholds: the last index of every run of equal valuations
  // (ties produce identical F sets).
  std::vector<int> candidates;
  for (int i = 0; i < m; ++i) {
    if (i + 1 == m || v[order[i + 1]] < v[order[i]]) candidates.push_back(i);
  }
  if (options.max_candidates > 1 &&
      static_cast<int>(candidates.size()) > options.max_candidates) {
    std::vector<int> sampled;
    int want = options.max_candidates;
    for (int s = 0; s < want; ++s) {
      size_t idx = static_cast<size_t>(
          (static_cast<double>(s) / (want - 1)) * (candidates.size() - 1));
      sampled.push_back(candidates[idx]);
    }
    sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());
    candidates.swap(sampled);
  }

  std::vector<double> best_weights(hypergraph.num_items(), 0.0);
  double best_revenue = 0.0;

  std::vector<int> class_to_var(classes.num_classes(), -1);
  for (int cutoff : candidates) {
    // Collect the classes present in F = order[0..cutoff] and the
    // objective coefficient of each (= number of F-edges containing it).
    std::vector<uint32_t> used_classes;
    std::vector<double> obj_coeff;
    for (int i = 0; i <= cutoff; ++i) {
      for (uint32_t cls : classes.edge_classes[order[i]]) {
        if (class_to_var[cls] < 0) {
          class_to_var[cls] = static_cast<int>(used_classes.size());
          used_classes.push_back(cls);
          obj_coeff.push_back(0.0);
        }
        obj_coeff[class_to_var[cls]] += 1.0;
      }
    }

    lp::LpModel model(lp::ObjectiveSense::kMaximize);
    for (size_t u = 0; u < used_classes.size(); ++u) {
      model.AddVariable(0.0, lp::kInf, obj_coeff[u]);
    }
    for (int i = 0; i <= cutoff; ++i) {
      int e = order[i];
      if (classes.edge_classes[e].empty()) continue;  // empty edge: trivial
      std::vector<std::pair<int, double>> terms;
      terms.reserve(classes.edge_classes[e].size());
      for (uint32_t cls : classes.edge_classes[e]) {
        terms.emplace_back(class_to_var[cls], 1.0);
      }
      model.AddConstraint(lp::ConstraintSense::kLe, v[e], std::move(terms));
    }

    lp::LpSolution solution = lp::SolveLp(model);
    ++result.lps_solved;
    if (solution.ok()) {
      std::vector<double> class_weights(classes.num_classes(), 0.0);
      for (size_t u = 0; u < used_classes.size(); ++u) {
        class_weights[used_classes[u]] = solution.primal[u];
      }
      std::vector<double> weights =
          classes.ExpandClassWeights(class_weights, hypergraph.num_items());
      double revenue = Revenue(ItemPricing(weights), hypergraph, v);
      if (revenue > best_revenue) {
        best_revenue = revenue;
        best_weights = std::move(weights);
      }
    }
    for (uint32_t cls : used_classes) class_to_var[cls] = -1;
  }

  result.pricing = std::make_unique<ItemPricing>(std::move(best_weights));
  result.revenue = Revenue(*result.pricing, hypergraph, v);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace qp::core
