#include <algorithm>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/algorithms.h"
#include "core/class_util.h"
#include "core/lpip_sweep.h"
#include "lp/lp_model.h"
#include "lp/simplex.h"

namespace qp::core {

namespace {

// Identity classes (one per item that appears in some edge) for the
// compression ablation.
ItemClasses IdentityClasses(const Hypergraph& hypergraph) {
  ItemClasses out;
  out.class_of_item.assign(hypergraph.num_items(), ItemClasses::kNoClass);
  out.edge_classes.resize(hypergraph.num_edges());
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    for (uint32_t j : hypergraph.edge(e)) {
      if (out.class_of_item[j] == ItemClasses::kNoClass) {
        out.class_of_item[j] = static_cast<uint32_t>(out.class_size.size());
        out.class_size.push_back(1);
        out.class_rep.push_back(j);
      }
      out.edge_classes[e].push_back(out.class_of_item[j]);
    }
    std::sort(out.edge_classes[e].begin(), out.edge_classes[e].end());
  }
  return out;
}

// Best pricing found by one warm-start chain of candidate LPs.
struct ChainResult {
  double best_revenue = 0.0;
  std::vector<double> best_weights;
  int best_candidate = -1;
  int lps_solved = 0;
};

}  // namespace

const ItemClasses& ResolveClasses(const Hypergraph& hypergraph,
                                  const ItemClasses* provided,
                                  bool use_compression,
                                  ItemClasses& storage) {
  if (provided != nullptr) return *provided;
  storage = use_compression ? ItemClasses::Compute(hypergraph)
                            : IdentityClasses(hypergraph);
  return storage;
}

std::vector<int> LpipCandidatePositions(const Valuations& v,
                                        const std::vector<int>& order,
                                        int max_candidates) {
  const int m = static_cast<int>(order.size());
  // Candidate thresholds: the last index of every run of equal valuations
  // (ties produce identical F sets).
  std::vector<int> candidates;
  for (int i = 0; i < m; ++i) {
    if (i + 1 == m || v[order[i + 1]] < v[order[i]]) candidates.push_back(i);
  }
  if (max_candidates > 1 &&
      static_cast<int>(candidates.size()) > max_candidates) {
    std::vector<int> sampled;
    int want = max_candidates;
    for (int s = 0; s < want; ++s) {
      size_t idx = static_cast<size_t>(
          (static_cast<double>(s) / (want - 1)) * (candidates.size() - 1));
      sampled.push_back(candidates[idx]);
    }
    sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());
    candidates.swap(sampled);
  }
  return candidates;
}

// The LPIP chain sweep (Section 5.2): for each candidate threshold
// position p, solve
//   maximize   sum_{e' in F_p} price(e')
//   subject to price(e') <= v_{e'}  for every e' in F_p,   weights >= 0
// where F_p = { order[0..p] }, and keep the best item pricing by realized
// revenue. Weights of items outside F_p's edges are set to 0, which
// weakly dominates any other choice (extra sales only add revenue).
//
// The threshold families are nested (F grows as the cutoff descends), so
// candidates are processed in chains that reuse one LpModel and
// warm-start every solve after the first from the previous optimal basis
// (Simplex::ResolveFrom). Each chain builds the model up to its largest
// family once, solves that cold, then sweeps *shrinking-F*: truncate back
// to each earlier candidate (LpModel::TruncateTo) and resolve warm.
// Shrinking is the direction that keeps warm starts cheap: dropping
// Le-rows and pinning dropped price variables to 0 leaves the previous
// optimum primal feasible, so every resolve is a phase-2 reoptimization
// from a basis that is already mostly right (the exported basis header
// keeps each surviving row's basic column).
PricingResult RunLpipSweep(const Hypergraph& hypergraph, const Valuations& v,
                           const ItemClasses& classes,
                           const std::vector<int>& order,
                           const std::vector<int>& positions,
                           const LpipOptions& options,
                           LpipSweepCapture* capture) {
  Stopwatch timer;
  PricingResult result;
  result.algorithm = "LPIP";

  const int num_candidates = static_cast<int>(positions.size());
  const int chain_length = std::max(1, options.chain_length);
  const int num_chains = (num_candidates + chain_length - 1) / chain_length;
  std::vector<ChainResult> chains(std::max(num_chains, 0));
  if (capture != nullptr) {
    capture->item_weights.assign(static_cast<size_t>(num_candidates), {});
    capture->revenues.assign(static_cast<size_t>(num_candidates), 0.0);
  }

  common::ThreadPool pool(options.num_threads);
  pool.ParallelFor(num_chains, [&](int ci) {
    const int begin = ci * chain_length;
    const int end = std::min(begin + chain_length, num_candidates);
    ChainResult& out = chains[ci];

    lp::LpModel model(lp::ObjectiveSense::kMaximize);
    lp::Simplex solver(model);
    lp::Basis basis;
    std::vector<int> class_to_var(classes.num_classes(), -1);
    std::vector<double> obj_coeff;  // per model variable
    std::vector<std::pair<int, int>> dims(end - begin);  // (vars, rows)
    int built = -1;  // edges order[0..built] are in the model

    auto append_edges_up_to = [&](int cutoff) {
      for (int i = built + 1; i <= cutoff; ++i) {
        const int e = order[i];
        for (uint32_t cls : classes.edge_classes[e]) {
          int& var = class_to_var[cls];
          if (var < 0) {
            var = model.AddVariable(0.0, lp::kInf, 0.0);
            obj_coeff.push_back(0.0);
          }
          obj_coeff[var] += 1.0;
          model.SetObjectiveCoefficient(var, obj_coeff[var]);
        }
        if (classes.edge_classes[e].empty()) continue;  // empty edge: trivial
        std::vector<std::pair<int, double>> terms;
        terms.reserve(classes.edge_classes[e].size());
        for (uint32_t cls : classes.edge_classes[e]) {
          terms.emplace_back(class_to_var[cls], 1.0);
        }
        model.AddConstraint(lp::ConstraintSense::kLe, v[e], std::move(terms));
      }
      built = cutoff;
    };

    auto solve_and_score = [&](int candidate_index) {
      lp::LpSolution solution = (options.warm_start && !basis.empty())
                                    ? solver.ResolveFrom(basis)
                                    : solver.Solve();
      ++out.lps_solved;
      if (!solution.ok()) return;
      if (options.warm_start) basis = std::move(solution.basis);

      std::vector<double> class_weights(classes.num_classes(), 0.0);
      for (uint32_t cls = 0; cls < classes.num_classes(); ++cls) {
        int var = class_to_var[cls];
        if (var >= 0 && var < static_cast<int>(solution.primal.size())) {
          class_weights[cls] = solution.primal[var];
        }
      }
      std::vector<double> weights =
          classes.ExpandClassWeights(class_weights, hypergraph.num_items());
      double revenue = Revenue(ItemPricing(weights), hypergraph, v);
      if (capture != nullptr) {
        capture->item_weights[candidate_index] = weights;
        capture->revenues[candidate_index] = revenue;
      }
      // "Earliest candidate wins ties", in either sweep direction: the
      // ascending sweep takes strictly-greater, the descending one takes
      // greater-or-equal (so an equal, earlier candidate overwrites).
      bool better = candidate_index == out.best_candidate
                        ? false
                        : (candidate_index > out.best_candidate
                               ? revenue > out.best_revenue
                               : revenue > 0.0 && revenue >= out.best_revenue);
      if (better) {
        out.best_revenue = revenue;
        out.best_weights = std::move(weights);
        out.best_candidate = candidate_index;
      }
    };

    // Shrinking-F sweep: build the chain's largest family, solve cold,
    // then truncate back to each earlier candidate and resolve warm. With
    // warm_start off every candidate is an independent cold solve of the
    // identical truncated model, i.e. the paper's original sweep.
    for (int c = begin; c < end; ++c) {
      append_edges_up_to(positions[c]);
      dims[c - begin] = {model.num_variables(), model.num_constraints()};
    }
    for (int c = end - 1; c >= begin; --c) {
      if (c < end - 1) {
        const auto [num_vars, num_rows] = dims[c - begin];
        for (int i = positions[c] + 1; i <= positions[c + 1]; ++i) {
          for (uint32_t cls : classes.edge_classes[order[i]]) {
            int var = class_to_var[cls];
            obj_coeff[var] -= 1.0;
            if (var < num_vars) {
              model.SetObjectiveCoefficient(var, obj_coeff[var]);
            }
          }
        }
        model.TruncateTo(num_vars, num_rows);
      }
      solve_and_score(c);
    }
  });

  // Index-ordered reduction: identical to the sequential sweep's
  // "strictly greater wins" rule regardless of how chains were scheduled.
  std::vector<double> best_weights(hypergraph.num_items(), 0.0);
  double best_revenue = 0.0;
  for (ChainResult& chain : chains) {
    result.lps_solved += chain.lps_solved;
    if (chain.best_revenue > best_revenue) {
      best_revenue = chain.best_revenue;
      best_weights = std::move(chain.best_weights);
    }
  }

  result.pricing = std::make_unique<ItemPricing>(std::move(best_weights));
  result.revenue = Revenue(*result.pricing, hypergraph, v);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

PricingResult RunLpip(const Hypergraph& hypergraph, const Valuations& v,
                      const LpipOptions& options) {
  Stopwatch timer;
  ItemClasses storage;
  const ItemClasses& classes = ResolveClasses(
      hypergraph, options.classes, options.use_compression, storage);

  std::vector<int> local_order;
  if (options.sorted_order == nullptr) {
    local_order = OrderByDescendingValuation(v);
  }
  const std::vector<int>& order =
      options.sorted_order ? *options.sorted_order : local_order;

  std::vector<int> positions =
      LpipCandidatePositions(v, order, options.max_candidates);
  PricingResult result = RunLpipSweep(hypergraph, v, classes, order,
                                      positions, options, nullptr);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace qp::core
