#include "core/online.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qp::core {

Exp3PriceLearner::Exp3PriceLearner(const OnlinePricingOptions& options,
                                   uint64_t seed)
    : options_(options), rng_(Mix64(seed ^ 0x0e3ULL)) {
  assert(options.grid_size >= 2);
  assert(options.max_price > options.min_price);
  double ratio = std::pow(options.max_price / options.min_price,
                          1.0 / (options.grid_size - 1));
  double price = options.min_price;
  for (int i = 0; i < options.grid_size; ++i) {
    grid_.push_back(price);
    price *= ratio;
  }
  weights_.assign(grid_.size(), 1.0);
}

std::vector<double> Exp3PriceLearner::Probabilities() const {
  double gamma = options_.gamma;
  if (gamma <= 0.0) {
    // Anytime exploration rate ~ sqrt(K ln K / t).
    double k = static_cast<double>(grid_.size());
    gamma = std::min(
        1.0, std::sqrt(k * std::log(k) / std::max(1.0, double(rounds_ + 1))));
  }
  double total = 0.0;
  for (double w : weights_) total += w;
  std::vector<double> probs(grid_.size());
  for (size_t i = 0; i < grid_.size(); ++i) {
    probs[i] = (1.0 - gamma) * weights_[i] / total +
               gamma / static_cast<double>(grid_.size());
  }
  return probs;
}

double Exp3PriceLearner::PostPrice() {
  std::vector<double> probs = Probabilities();
  double roll = rng_.NextDouble();
  double acc = 0.0;
  last_arm_ = static_cast<int>(grid_.size()) - 1;
  for (size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (roll < acc) {
      last_arm_ = static_cast<int>(i);
      break;
    }
  }
  return grid_[last_arm_];
}

void Exp3PriceLearner::Observe(bool accepted) {
  assert(last_arm_ >= 0);
  std::vector<double> probs = Probabilities();
  double reward = accepted ? grid_[last_arm_] : 0.0;
  total_revenue_ += reward;
  ++rounds_;
  // Importance-weighted reward, normalized by the max grid price so the
  // exponent stays in [0, 1/p].
  double normalized = reward / grid_.back();
  double estimate = normalized / probs[last_arm_];
  double gamma = options_.gamma > 0 ? options_.gamma : 0.1;
  double k = static_cast<double>(grid_.size());
  weights_[last_arm_] *= std::exp(gamma * estimate / k);
  // Guard against overflow by renormalizing when weights grow large.
  double max_weight = *std::max_element(weights_.begin(), weights_.end());
  if (max_weight > 1e200) {
    for (double& w : weights_) w /= max_weight;
  }
  last_arm_ = -1;
}

OnlineSimulationResult SimulateOnlinePricing(
    const std::vector<double>& buyer_valuations,
    const OnlinePricingOptions& options, uint64_t seed) {
  Exp3PriceLearner learner(options, seed);
  for (double valuation : buyer_valuations) {
    double price = learner.PostPrice();
    learner.Observe(price <= valuation);
  }
  OnlineSimulationResult out;
  out.learner_revenue = learner.total_revenue();
  // Best fixed grid price in hindsight.
  for (double price : learner.grid()) {
    double revenue = 0.0;
    for (double valuation : buyer_valuations) {
      if (price <= valuation) revenue += price;
    }
    if (revenue > out.best_fixed_revenue) {
      out.best_fixed_revenue = revenue;
      out.best_fixed_price = price;
    }
  }
  out.regret = out.best_fixed_revenue - out.learner_revenue;
  return out;
}

}  // namespace qp::core
