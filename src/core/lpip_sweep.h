// Internal LPIP machinery shared by RunLpip and the incremental reprice
// path (core/reprice.h): candidate-threshold enumeration and the
// warm-start chain sweep, with an optional per-candidate capture so a
// caller can retain every candidate's solution — the raw material
// incremental repricing reuses for thresholds whose families a buyer
// append did not change.
#ifndef QP_CORE_LPIP_SWEEP_H_
#define QP_CORE_LPIP_SWEEP_H_

#include <vector>

#include "core/algorithms.h"
#include "core/hypergraph.h"

namespace qp::core {

/// Per-candidate solutions of one sweep, parallel to the `positions`
/// argument of RunLpipSweep: expanded per-item weights and the realized
/// revenue of each candidate's LP optimum (empty weights / 0 revenue for
/// failed solves).
struct LpipSweepCapture {
  std::vector<std::vector<double>> item_weights;
  std::vector<double> revenues;
};

/// Candidate threshold positions into `order` (edge indices sorted by
/// descending valuation): the last index of every run of equal
/// valuations, optionally subsampled to `max_candidates` evenly spread
/// picks (0 keeps every candidate, exactly as in the paper).
std::vector<int> LpipCandidatePositions(const Valuations& v,
                                        const std::vector<int>& order,
                                        int max_candidates);

/// The LPIP chain sweep over an arbitrary (ascending) subset of candidate
/// positions. Chains are fixed-size slices of `positions` run on the
/// thread pool; the partition and the index-ordered reduction depend only
/// on `positions`, never on num_threads, so results are bit-identical for
/// every thread count. `options.max_candidates` and `options.classes` /
/// `options.sorted_order` are ignored here (the caller already resolved
/// them); chain_length / warm_start / num_threads apply.
PricingResult RunLpipSweep(const Hypergraph& hypergraph, const Valuations& v,
                           const ItemClasses& classes,
                           const std::vector<int>& order,
                           const std::vector<int>& positions,
                           const LpipOptions& options,
                           LpipSweepCapture* capture);

}  // namespace qp::core

#endif  // QP_CORE_LPIP_SWEEP_H_
