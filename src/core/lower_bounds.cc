#include "core/lower_bounds.h"

#include <cassert>
#include <cmath>

namespace qp::core {

GapInstance MakeLemma2Instance(int m) {
  GapInstance out;
  out.hypergraph = Hypergraph(static_cast<uint32_t>(m));
  for (int i = 1; i <= m; ++i) {
    out.hypergraph.AddEdge({static_cast<uint32_t>(i - 1)});
    out.valuations.push_back(1.0 / static_cast<double>(i));
    out.optimal_revenue += 1.0 / static_cast<double>(i);
  }
  return out;
}

GapInstance MakeLemma3Instance(int n) {
  GapInstance out;
  out.hypergraph = Hypergraph(static_cast<uint32_t>(n));
  for (int i = 1; i <= n; ++i) {
    int buyers = (n + i - 1) / i;  // ceil(n/i)
    for (int b = 0; b < buyers; ++b) {
      std::vector<uint32_t> items;
      for (int j = b * i; j < (b + 1) * i && j < n; ++j) {
        items.push_back(static_cast<uint32_t>(j));
      }
      if (items.empty()) continue;
      out.hypergraph.AddEdge(std::move(items));
      out.valuations.push_back(1.0);
      out.optimal_revenue += 1.0;
    }
  }
  return out;
}

GapInstance MakeLemma4Instance(int t) {
  assert(t >= 0 && t <= 12);
  GapInstance out;
  uint32_t n = 1u << t;
  out.hypergraph = Hypergraph(n);
  // Depth l: 2^l sets of size n / 2^l; value (3/4)^l; copies 2^l * 3^(t-l)
  // (an integer form of (2/3)^l * 3^t).
  for (int depth = 0; depth <= t; ++depth) {
    uint32_t num_sets = 1u << depth;
    uint32_t set_size = n >> depth;
    double value = std::pow(0.75, depth);
    int64_t copies = static_cast<int64_t>(std::llround(
        std::pow(2.0, depth) * std::pow(3.0, t - depth)));
    for (uint32_t s = 0; s < num_sets; ++s) {
      std::vector<uint32_t> items;
      items.reserve(set_size);
      for (uint32_t j = s * set_size; j < (s + 1) * set_size; ++j) {
        items.push_back(j);
      }
      for (int64_t c = 0; c < copies; ++c) {
        out.hypergraph.AddEdge(items);
        out.valuations.push_back(value);
      }
    }
  }
  // OPT = (t+1) * 3^t (pricing every bundle at its value).
  out.optimal_revenue =
      static_cast<double>(t + 1) * std::pow(3.0, t);
  return out;
}

}  // namespace qp::core
