#include <algorithm>
#include <vector>

#include "common/stopwatch.h"
#include "core/algorithms.h"

namespace qp::core {

namespace {

// One minimal set cover of the items still present in `alive` edges:
// greedily add edges that cover a new item, then prune back-to-front so
// every kept edge retains a private item (minimality — this is what
// guarantees each layer extracts its full value, Theorem 2).
std::vector<int> MinimalSetCover(const Hypergraph& hypergraph,
                                 const std::vector<int>& alive,
                                 std::vector<int>& cover_count) {
  std::vector<int> selected;
  for (int e : alive) {
    bool covers_new = false;
    for (uint32_t j : hypergraph.edge(e)) {
      if (cover_count[j] == 0) {
        covers_new = true;
        break;
      }
    }
    if (!covers_new) continue;
    selected.push_back(e);
    for (uint32_t j : hypergraph.edge(e)) cover_count[j]++;
  }
  // Prune redundant edges (reverse order), keeping the cover a cover.
  std::vector<int> pruned;
  std::vector<char> keep(selected.size(), 1);
  for (int i = static_cast<int>(selected.size()) - 1; i >= 0; --i) {
    int e = selected[i];
    bool redundant = true;
    for (uint32_t j : hypergraph.edge(e)) {
      if (cover_count[j] == 1) {
        redundant = false;
        break;
      }
    }
    if (redundant) {
      keep[i] = 0;
      for (uint32_t j : hypergraph.edge(e)) cover_count[j]--;
    }
  }
  for (size_t i = 0; i < selected.size(); ++i) {
    if (keep[i]) pruned.push_back(selected[i]);
  }
  // Reset cover counts for the caller.
  for (int e : pruned) {
    for (uint32_t j : hypergraph.edge(e)) cover_count[j]--;
  }
  return pruned;
}

}  // namespace

// Algorithm 1 of the paper. Empty edges can never be covered or priced by
// item weights (their price is always 0; they sell and contribute 0), so
// they are excluded from the layering loop.
PricingResult RunLayering(const Hypergraph& hypergraph, const Valuations& v) {
  Stopwatch timer;
  std::vector<int> alive;
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    if (hypergraph.edge_size(e) > 0) alive.push_back(e);
  }

  std::vector<int> cover_count(hypergraph.num_items(), 0);
  std::vector<int> best_layer;
  double best_value = 0.0;
  while (!alive.empty()) {
    std::vector<int> layer = MinimalSetCover(hypergraph, alive, cover_count);
    double layer_value = 0.0;
    for (int e : layer) layer_value += v[e];
    if (layer_value > best_value) {
      best_value = layer_value;
      best_layer = layer;
    }
    // Remove the layer from the alive set.
    std::vector<char> in_layer_lookup(hypergraph.num_edges(), 0);
    for (int e : layer) in_layer_lookup[e] = 1;
    std::vector<int> next_alive;
    next_alive.reserve(alive.size() - layer.size());
    for (int e : alive) {
      if (!in_layer_lookup[e]) next_alive.push_back(e);
    }
    alive.swap(next_alive);
  }

  // Price the private item of every best-layer edge at the edge's value;
  // all other items at 0 (extracting the layer's full value).
  std::vector<double> weights(hypergraph.num_items(), 0.0);
  std::vector<int> layer_degree(hypergraph.num_items(), 0);
  for (int e : best_layer) {
    for (uint32_t j : hypergraph.edge(e)) layer_degree[j]++;
  }
  for (int e : best_layer) {
    for (uint32_t j : hypergraph.edge(e)) {
      if (layer_degree[j] == 1) {
        weights[j] = v[e];
        break;
      }
    }
  }

  PricingResult result;
  result.algorithm = "Layering";
  result.pricing = std::make_unique<ItemPricing>(std::move(weights));
  result.revenue = Revenue(*result.pricing, hypergraph, v);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace qp::core
