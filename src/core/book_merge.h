// Book-merge helpers for sharded serving (serve::ShardedPricingEngine).
//
// Conflict-set hypergraphs over item-disjoint support shards never share
// edges, so per-shard price books compose into the global book: a bundle
// that spans shards is priced *additively* — the sum of each owning
// shard's price for its local sub-bundle. Each shard pricing is monotone
// and subadditive (paper Theorem 1), and both properties are closed under
// the disjoint additive composition, so the merged pricing stays
// arbitrage-free. These helpers pin the merge arithmetic the router
// depends on: sums in ascending shard order (bit-deterministic regardless
// of which thread produced which part) and a canonical serving-algorithm
// label for cross-shard quotes.
#ifndef QP_CORE_BOOK_MERGE_H_
#define QP_CORE_BOOK_MERGE_H_

#include <span>
#include <string>
#include <vector>

namespace qp::core {

/// Sum of per-shard bundle prices, accumulated in index (= ascending
/// shard) order. The fixed order is the determinism contract: the same
/// parts always produce the same bits, independent of thread schedule.
double AdditivePrice(const std::vector<double>& shard_prices);

/// Canonical label for a quote assembled from several shards' serving
/// algorithms: the shared name when every part agrees ("LPIP"), otherwise
/// the distinct names joined with '+' in first-appearance (= shard)
/// order ("LPIP+CIP"). Empty input yields "".
std::string MergeAlgorithmLabels(const std::vector<std::string>& labels);

/// Allocation-free form for the steady-state quote path: same merge,
/// labels passed by pointer (no copies), result written into `out`
/// (cleared first; existing capacity reused). MergeAlgorithmLabels
/// delegates here, so the two can never drift.
void MergeAlgorithmLabelsInto(std::span<const std::string* const> labels,
                              std::string* out);

}  // namespace qp::core

#endif  // QP_CORE_BOOK_MERGE_H_
