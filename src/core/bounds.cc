#include "core/bounds.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "lp/lp_model.h"
#include "lp/simplex.h"

namespace qp::core {

double SumOfValuations(const Valuations& v) {
  double total = 0.0;
  for (double x : v) total += x;
  return total;
}

namespace {

// Greedy cover of edge `target`'s items by other edges, preferring cheap
// coverage (smallest valuation per newly covered item). Returns the cover
// or an empty vector when some item of `target` is private to it.
std::vector<int> GreedyCover(const Hypergraph& hypergraph, const Valuations& v,
                             int target,
                             const std::vector<std::vector<int>>& item_edges) {
  const auto& items = hypergraph.edge(target);
  std::vector<char> covered(items.size(), 0);
  size_t remaining = items.size();
  // Candidate edges: all edges sharing an item with target.
  std::vector<int> candidates;
  for (uint32_t j : items) {
    for (int e : item_edges[j]) {
      if (e != target) candidates.push_back(e);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<int> cover;
  while (remaining > 0) {
    int best_edge = -1;
    double best_score = 0.0;
    int best_new = 0;
    for (int e : candidates) {
      int newly = 0;
      const auto& other = hypergraph.edge(e);
      // `items` and `other` are sorted: count intersection with uncovered.
      size_t a = 0, b = 0;
      while (a < items.size() && b < other.size()) {
        if (items[a] == other[b]) {
          newly += !covered[a];
          ++a;
          ++b;
        } else if (items[a] < other[b]) {
          ++a;
        } else {
          ++b;
        }
      }
      if (newly == 0) continue;
      double score = v[e] / static_cast<double>(newly);
      if (best_edge < 0 || score < best_score) {
        best_edge = e;
        best_score = score;
        best_new = newly;
      }
    }
    if (best_edge < 0) return {};  // some item is private to target
    (void)best_new;
    cover.push_back(best_edge);
    const auto& other = hypergraph.edge(best_edge);
    size_t a = 0, b = 0;
    while (a < items.size() && b < other.size()) {
      if (items[a] == other[b]) {
        if (!covered[a]) {
          covered[a] = 1;
          --remaining;
        }
        ++a;
        ++b;
      } else if (items[a] < other[b]) {
        ++a;
      } else {
        ++b;
      }
    }
  }
  return cover;
}

}  // namespace

double SubadditiveBound(const Hypergraph& hypergraph, const Valuations& v,
                        const SubadditiveBoundOptions& options) {
  const int m = hypergraph.num_edges();
  if (m == 0) return 0.0;

  std::vector<std::vector<int>> item_edges(hypergraph.num_items());
  for (int e = 0; e < m; ++e) {
    for (uint32_t j : hypergraph.edge(e)) item_edges[j].push_back(e);
  }

  lp::LpModel model(lp::ObjectiveSense::kMaximize);
  for (int e = 0; e < m; ++e) {
    model.AddVariable(0.0, std::max(0.0, v[e]), 1.0);
  }

  // Generate cover constraints for the highest-valuation edges first —
  // those are the ones whose price the bound would otherwise push to v_e.
  std::vector<int> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return v[a] > v[b]; });
  int budget = options.max_constraints > 0 ? options.max_constraints : m;
  for (int e : order) {
    if (budget <= 0) break;
    if (hypergraph.edge_size(e) == 0) continue;
    // Skip when a cover cannot beat v_e anyway (cheap pre-check: the sum
    // over covering values of the greedy cover is compared inside the LP,
    // so only generate the constraint when the cover exists).
    std::vector<int> cover = GreedyCover(hypergraph, v, e, item_edges);
    if (cover.empty()) continue;
    std::vector<std::pair<int, double>> terms;
    terms.reserve(cover.size() + 1);
    terms.emplace_back(e, 1.0);
    for (int c : cover) terms.emplace_back(c, -1.0);
    model.AddConstraint(lp::ConstraintSense::kLe, 0.0, std::move(terms));
    --budget;
  }

  lp::LpSolution solution = lp::SolveLp(model);
  if (!solution.ok()) return SumOfValuations(v);  // conservative fallback
  return solution.objective;
}

}  // namespace qp::core
