#include "common/stopwatch.h"
#include "core/algorithms.h"

namespace qp::core {

// XOS (Section 5.2): combine the LPIP and CIP price vectors, offering each
// bundle at the higher of the two additive prices. More expressive than
// either component, but — as the paper observes (Section 6.3) — the max
// can overshoot v_e on bundles either component alone would have sold.
PricingResult RunXos(const Hypergraph& hypergraph, const Valuations& v,
                     const ItemPricing& lpip_component,
                     const ItemPricing& cip_component) {
  Stopwatch timer;
  PricingResult result;
  result.algorithm = "XOS";
  result.pricing = std::make_unique<XosPricing>(std::vector<std::vector<double>>{
      lpip_component.weights(), cip_component.weights()});
  result.revenue = Revenue(*result.pricing, hypergraph, v);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace qp::core
