// Incremental repricing for a long-lived market (the serving engine's
// writer path).
//
// A broker that runs as a service sees its instance *grow*: new buyers
// arrive, each contributing one hyperedge (their query's conflict set)
// and one valuation. Cold `RunAllAlgorithms` treats every arrival as a
// brand-new instance; the entry points here retain cross-generation
// state (RepriceState) and skip the work an append provably cannot
// change:
//
//  * Shared precompute — the item classes are *refined in place*
//    (ItemClasses::Refine, bit-equal to a fresh Compute) and the
//    descending valuation order is merged, never re-sorted from scratch.
//  * LPIP — a threshold family F_t = { e : v_e >= t } gains exactly the
//    appended edges with v >= t. Thresholds strictly above the largest
//    appended valuation keep their exact LP, so the retained
//    per-candidate optima answer them with *zero* LP solves; only
//    thresholds at or below it (plus brand-new thresholds) are swept.
//    When the retained book wins, one standalone solve refreshes the
//    winning threshold so the published weights come from the grown
//    instance, not from history.
//  * CIP re-solves its capacity grid through RunCip but *reuses* the
//    refined classes (the expensive shared precompute) instead of
//    recompressing the instance.
//  * UBP / UIP / Layering are LP-free and near-linear; they are simply
//    recomputed. XOS is rebuilt from the fresh LPIP/CIP components.
//
// Why CIP is not warm-started across generations: the welfare LP is
// routinely dual-degenerate, and a warm-started simplex run lands on a
// different optimal *vertex* than the cold chain — same LP objective,
// different dual prices, different realized revenue. Replaying the cold
// trajectory on the (bit-equal) refined classes is what makes the
// incremental path's CIP answer identical to a cold RunAllAlgorithms,
// which tests/core/reprice_test.cc and tests/serve/pricing_engine_test.cc
// pin. The same argument is why the LPIP *winner* is refreshed with a
// standalone solve: reused weight vectors are equally optimal but can
// distribute weight across split item classes differently than a cold
// run would.
#ifndef QP_CORE_REPRICE_H_
#define QP_CORE_REPRICE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/algorithms.h"
#include "core/hypergraph.h"

namespace qp::core {

/// What one pricing generation cost; the engine's bench and stats report
/// these to show the incremental path's advantage over full recompute.
struct RepriceStats {
  /// LPs actually solved this generation (LPIP sweep + winner refresh +
  /// CIP grid).
  int lps_solved = 0;
  /// LPIP thresholds considered / answered from the retained book.
  int lpip_candidates = 0;
  int lpip_reused = 0;
  /// 1 when the winning LPIP threshold came from the retained book and
  /// was re-solved standalone to publish replay-identical weights.
  int lpip_winner_refreshes = 0;
  /// CIP capacity-grid size (every capacity re-solves; see header note).
  int cip_capacities = 0;
  double seconds = 0.0;

  /// Field-wise sum, used by the sharded router to report one generation's
  /// cost across shards (seconds add up even when shards solved in
  /// parallel wall-clock — this is total work, not latency).
  RepriceStats& Merge(const RepriceStats& other) {
    lps_solved += other.lps_solved;
    lpip_candidates += other.lpip_candidates;
    lpip_reused += other.lpip_reused;
    lpip_winner_refreshes += other.lpip_winner_refreshes;
    cip_capacities += other.cip_capacities;
    seconds += other.seconds;
    return *this;
  }
};

/// Cross-generation state retained between pricing calls. Owned by one
/// writer (the engine serializes appends); not safe to share across
/// concurrent repricing calls.
struct RepriceState {
  /// Shared precompute of the current instance, delta-maintained:
  /// canonical item classes (== ItemClasses::Compute bit for bit) and the
  /// descending valuation order (ties by edge index).
  ItemClasses classes;
  std::vector<int> order;

  /// Per LPIP threshold candidate, descending by threshold: the
  /// candidate's optimal per-item weights. Thresholds whose families an
  /// append leaves untouched are answered from here without an LP.
  struct LpipCandidate {
    double threshold = 0.0;
    std::vector<double> item_weights;
  };
  std::vector<LpipCandidate> lpip;

  /// 0 until the first SolveAllWithState seeded the state.
  int generation = 0;
  RepriceStats last;

  bool seeded() const { return generation > 0; }
};

/// Full (cold) solve of the instance that also (re)seeds `state` so later
/// appends can go through RepriceAfterAppend. Results come back in
/// RunAllAlgorithms order (UBP, UIP, LPIP, CIP, Layering, XOS) and are
/// bit-identical to RunAllAlgorithms under the same options.
/// `options.lpip/cip.classes` and sorted orders are ignored — the state
/// owns the shared precompute (always compressed).
std::vector<PricingResult> SolveAllWithState(const Hypergraph& hypergraph,
                                             const Valuations& v,
                                             const AlgorithmOptions& options,
                                             RepriceState& state);

/// Incremental reprice after edges [first_new_edge, num_edges) and their
/// valuations were appended to the instance `state` was last solved on.
/// Same result contract as SolveAllWithState; `state.last` reports how
/// much work was reused. With `options.lpip.chain_length == 1` (every
/// candidate solved standalone) each changed candidate's solve and the
/// winner refresh are bit-identical to the cold path's solves of the
/// same thresholds; longer chains keep the cold path's *objective* but
/// may pick a different equally-optimal vertex for candidates solved
/// mid-chain. One residual freedom remains in either geometry: winner
/// *selection* ranks reused thresholds by their retained vertex's
/// realized revenue, which — when an append split item classes inside a
/// reused family — can drift from what a fresh solve of that threshold
/// would realize (equal LP objective, different weight split). Results
/// then diverge from cold only if that drift flips a near-tie at the
/// top of the ranking; the parity tests pin instances where it does
/// not, and the engine's published book is always self-consistent.
std::vector<PricingResult> RepriceAfterAppend(const Hypergraph& hypergraph,
                                              const Valuations& v,
                                              int first_new_edge,
                                              const AlgorithmOptions& options,
                                              RepriceState& state);

// --- structured book deltas (the serving layer's delta-chain publishes) --
//
// A reprice usually moves only a few numbers: most appends leave most
// LPIP thresholds, item weights and XOS components bit-for-bit unchanged
// (that reuse is the whole point of RepriceAfterAppend). DiffResults
// turns two consecutive generations into a sparse per-result patch so
// the serving layer can publish a compact delta record instead of
// deep-copying all six PricingResults; ApplyResultPatch replays a patch
// onto the previous generation, reproducing the next generation exactly
// (bit-identical pricing parameters and scalars).

/// Patch taking one PricingResult from generation g to g+1. The scalar
/// fields (revenue / seconds / lps_solved) always carry g+1's values;
/// `kind` says how the pricing function's parameters changed. Equality
/// is bitwise (via the double's bit pattern), so an applied patch — and
/// any lazy resolution over a chain of patches — reproduces g+1's
/// prices bit for bit.
struct ResultPatch {
  enum class Kind : uint8_t {
    kNone = 0,       // pricing parameters unchanged
    kBundlePrice,    // UniformBundlePricing: replacement scalar
    kSparseWeights,  // ItemPricing: (item, weight) pairs, ascending items
    kFullWeights,    // ItemPricing: dense replacement (most items moved)
    kXos,            // XosPricing: full component replacement
  };
  Kind kind = Kind::kNone;
  double bundle_price = 0.0;
  std::vector<std::pair<uint32_t, double>> sparse;
  std::vector<double> weights;
  std::vector<std::vector<double>> components;
  double revenue = 0.0;
  double seconds = 0.0;
  int lps_solved = 0;
};

/// One generation's patches: one ResultPatch per result, in result
/// order, plus the serving pick over the patched generation so readers
/// never re-scan revenues.
struct BookDelta {
  std::vector<ResultPatch> patches;
  /// argmax revenue over the patched generation, first result wins ties
  /// — the same rule PriceBookSnapshot applies at construction.
  int best = -1;
};

/// Diffs consecutive generations of the same instance. Returns nullopt
/// when the vectors are not patchable — size or algorithm mismatch, an
/// unrecognized pricing type, or an ItemPricing whose item count changed
/// — in which case the caller should publish a full snapshot instead.
/// Sparse weight patches fall back to dense replacement when more than a
/// quarter of the items moved (a (item, weight) pair costs two dense
/// slots; UIP's uniform weight moves every item at once).
std::optional<BookDelta> DiffResults(const std::vector<PricingResult>& prev,
                                     const std::vector<PricingResult>& next);

/// Replays `patch` onto `result` in place (pricing parameters and
/// scalars). After ApplyResultPatch(DiffResults(prev, next)->patches[i],
/// prev[i]), prev[i] prices every bundle bit-identically to next[i].
void ApplyResultPatch(const ResultPatch& patch, PricingResult& result);

}  // namespace qp::core

#endif  // QP_CORE_REPRICE_H_
