#include "core/pricing.h"

#include <algorithm>

#include "common/str_util.h"

namespace qp::core {

double UniformBundlePricing::Price(const std::vector<uint32_t>&) const {
  return price_;
}

std::string UniformBundlePricing::Describe() const {
  return StrFormat("uniform bundle P=%g", price_);
}

double ItemPricing::Price(const std::vector<uint32_t>& bundle) const {
  double total = 0.0;
  for (uint32_t j : bundle) total += weights_[j];
  return total;
}

std::string ItemPricing::Describe() const {
  int nonzero = 0;
  for (double w : weights_) nonzero += (w != 0.0);
  return StrFormat("item pricing (%d/%zu nonzero weights)", nonzero,
                   weights_.size());
}

double XosPricing::Price(const std::vector<uint32_t>& bundle) const {
  double best = 0.0;
  for (const auto& component : components_) {
    double total = 0.0;
    for (uint32_t j : bundle) total += component[j];
    best = std::max(best, total);
  }
  return best;
}

std::string XosPricing::Describe() const {
  return StrFormat("XOS pricing (%zu additive components)", components_.size());
}

double RevenueFromPrices(const std::vector<double>& edge_prices,
                         const Valuations& valuations) {
  double revenue = 0.0;
  for (size_t e = 0; e < edge_prices.size(); ++e) {
    double p = edge_prices[e];
    if (p <= valuations[e] + kSellTolerance * (1.0 + std::abs(valuations[e]))) {
      revenue += p;
    }
  }
  return revenue;
}

std::vector<double> EdgePrices(const PricingFunction& pricing,
                               const Hypergraph& hypergraph) {
  std::vector<double> prices(hypergraph.num_edges());
  for (int e = 0; e < hypergraph.num_edges(); ++e) {
    prices[e] = pricing.Price(hypergraph.edge(e));
  }
  return prices;
}

double Revenue(const PricingFunction& pricing, const Hypergraph& hypergraph,
               const Valuations& valuations) {
  return RevenueFromPrices(EdgePrices(pricing, hypergraph), valuations);
}

}  // namespace qp::core
