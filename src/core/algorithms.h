// Revenue-maximization algorithms (paper Section 5).
//
//   UBP      optimal uniform bundle price          O(m log m), O(log m)-approx
//   UIP      uniform item price (Guruswami et al.) O(m log m), O(log n + log m)
//   LPIP     per-threshold LP item pricing         m LPs,      O(log m)
//   CIP      Cheung-Swamy capacity primal-dual     LPs over k, O((1+eps) log B)
//   Layering Algorithm 1 (set-cover layers)        O(B m),     O(B)
//   XOS      max(LPIP, CIP) additive components
//
// All entry points are pure functions of (hypergraph, valuations, options)
// and return a PricingResult carrying the pricing function, its revenue and
// the wall-clock time spent, which is what the runtime tables report.
#ifndef QP_CORE_ALGORITHMS_H_
#define QP_CORE_ALGORITHMS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/hypergraph.h"
#include "core/pricing.h"

namespace qp::core {

struct PricingResult {
  std::string algorithm;
  std::unique_ptr<PricingFunction> pricing;
  double revenue = 0.0;
  double seconds = 0.0;
  int lps_solved = 0;

  PricingResult() = default;
  PricingResult(PricingResult&&) = default;
  PricingResult& operator=(PricingResult&&) = default;

  /// Deep copy via PricingFunction::Clone, so long-lived holders (the
  /// serving engine's snapshots, result caches) can retain a result
  /// without moving it out of caller state. Copy construction stays
  /// deleted to keep accidental deep copies explicit.
  PricingResult Clone() const {
    PricingResult out;
    out.algorithm = algorithm;
    out.pricing = pricing ? pricing->Clone() : nullptr;
    out.revenue = revenue;
    out.seconds = seconds;
    out.lps_solved = lps_solved;
    return out;
  }
};

/// UBP: sort bundles by valuation, sweep the uniform price (Section 5.1).
PricingResult RunUbp(const Hypergraph& hypergraph, const Valuations& v);

/// UIP: uniform item weight swept over q_e = v_e / |e| (Section 5.2).
PricingResult RunUip(const Hypergraph& hypergraph, const Valuations& v);

struct LpipOptions {
  /// Number of threshold candidates (edges e defining F_e = {e' : v_{e'}
  /// >= v_e}) to solve LPs for; 0 = every edge, exactly as in the paper.
  /// bench/ablation_lpip_candidates measures the revenue impact.
  int max_candidates = 0;
  /// Pre-computed item classes (optional; computed on demand).
  const ItemClasses* classes = nullptr;
  /// Disable item-class compression (ablation).
  bool use_compression = true;
  /// Build each candidate LP incrementally from the previous one (the
  /// families F_e are nested in descending-valuation order) and restart
  /// the simplex from its optimal basis. Off = cold-solve every candidate.
  bool warm_start = true;
  /// Candidates per warm-start chain. Chains are the parallel work units;
  /// the partition depends only on the candidate list — never on
  /// num_threads — so prices are bit-identical for every thread count.
  /// The default trades a little serial speed (each chain cold-solves one
  /// anchor) for parallelism that engages already at the bench default of
  /// 12 candidates; paper-scale runs (max_candidates = 0) produce many
  /// chains regardless.
  int chain_length = 8;
  /// Threads for independent chains; <= 1 runs serially inline.
  int num_threads = 1;
  /// Edge indices sorted by descending valuation (ties by index), e.g.
  /// from RunAllAlgorithms' shared precompute; recomputed when null.
  const std::vector<int>* sorted_order = nullptr;
};

/// LPIP: for each candidate edge e, maximize revenue subject to every
/// edge in F_e selling; keep the best resulting item pricing.
PricingResult RunLpip(const Hypergraph& hypergraph, const Valuations& v,
                      const LpipOptions& options = {});

struct CipOptions {
  /// Capacity grid step: k = 1, (1+eps), (1+eps)^2, ..., B.
  double eps = 1.0;
  const ItemClasses* classes = nullptr;
  bool use_compression = true;
  /// Reuse one LP across the capacity grid: consecutive capacities only
  /// move the RHS (primal form) or the objective (dual form), so each
  /// solve warm-starts from the previous optimal basis — a pure
  /// dual-simplex (resp. phase-2) reoptimization.
  bool warm_start = true;
  /// Capacities per warm-start chain; fixed partition, see LpipOptions.
  int chain_length = 4;
  /// Threads for independent chains; <= 1 runs serially inline.
  int num_threads = 1;
};

/// CIP: welfare LP with per-item capacity k; dual prices as item prices;
/// best over the capacity grid (Cheung & Swamy).
PricingResult RunCip(const Hypergraph& hypergraph, const Valuations& v,
                     const CipOptions& options = {});

/// Layering: Algorithm 1 of the paper (minimal set-cover layers; unique
/// items of the best layer priced at their edge's valuation).
PricingResult RunLayering(const Hypergraph& hypergraph, const Valuations& v);

/// XOS over the LPIP and CIP weight vectors (price = max of the two).
/// Reuses already-computed component pricings.
PricingResult RunXos(const Hypergraph& hypergraph, const Valuations& v,
                     const ItemPricing& lpip_component,
                     const ItemPricing& cip_component);

enum class Algorithm { kUbp, kUip, kLpip, kCip, kLayering, kXos };

const char* AlgorithmName(Algorithm algorithm);

struct AlgorithmOptions {
  LpipOptions lpip;
  CipOptions cip;
  /// Edge order by descending valuation; forwarded to LpipOptions (the
  /// only consumer of the valuation order today). RunAllAlgorithms fills
  /// it (with the item classes) once per instance instead of once per
  /// algorithm. Callers normally leave it null.
  const std::vector<int>* sorted_order = nullptr;
};

/// Edge indices sorted by descending valuation. Every consumer must use
/// this one helper: the (unstable-sort) tie behavior is part of the
/// bit-identity contract the committed bench baseline pins.
std::vector<int> OrderByDescendingValuation(const Valuations& v);

/// Shared per-instance precompute: item classes and the descending
/// valuation order, computed once and threaded through AlgorithmOptions so
/// LPIP, CIP and XOS (via its components) agree on — and stop
/// recomputing — the same structures.
struct SharedPrecompute {
  ItemClasses classes;
  std::vector<int> order_by_valuation;  // descending, ties by edge index
};

SharedPrecompute ComputeShared(const Hypergraph& hypergraph,
                               const Valuations& v);

/// Applies `shared` to any options field the caller left unset.
AlgorithmOptions WithShared(const AlgorithmOptions& options,
                            const SharedPrecompute& shared);

/// Runs every algorithm (XOS last, reusing LPIP/CIP components), in the
/// order UBP, UIP, LPIP, CIP, Layering, XOS.
std::vector<PricingResult> RunAllAlgorithms(const Hypergraph& hypergraph,
                                            const Valuations& v,
                                            const AlgorithmOptions& options = {});

/// Assembles the canonical all-algorithms result vector around pre-solved
/// LPIP and CIP results: UBP, UIP, LPIP, CIP, Layering, then XOS built
/// from the two components. RunAllAlgorithms and the incremental reprice
/// path (core/reprice.h) both go through this, so the result order — the
/// contract every consumer indexes by — lives in exactly one place.
std::vector<PricingResult> AssembleAllResults(const Hypergraph& hypergraph,
                                              const Valuations& v,
                                              PricingResult lpip,
                                              PricingResult cip);

/// Post-processing step from Section 6.3: given the best uniform bundle
/// price, solve an LP that maximizes item-pricing revenue subject to
/// selling every edge the bundle price sold. Returns the refined pricing
/// (or nullopt when UBP sells nothing).
std::optional<PricingResult> RefineUbpWithItemLp(const Hypergraph& hypergraph,
                                                 const Valuations& v);

}  // namespace qp::core

#endif  // QP_CORE_ALGORITHMS_H_
