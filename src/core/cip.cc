#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/algorithms.h"
#include "core/class_util.h"
#include "lp/lp_model.h"
#include "lp/simplex.h"

namespace qp::core {

namespace {

// Best pricing found by one warm-start chain of capacity LPs.
struct ChainResult {
  double best_revenue = 0.0;
  std::vector<double> best_weights;
  int lps_solved = 0;
};

}  // namespace

// CIP solves the capacity-k welfare LP and prices items by the dual y_c.
//
//   (P)  max sum_e v_e x_e    s.t.  sum_{e : c in e} x_e <= k  (class c),
//                                   0 <= x_e <= 1
//
// Items in a class have identical constraints, so one row per class
// suffices; the class dual y_c then equals the *sum* of the per-item duals,
// and the Cheung-Swamy edge price sum_{j in e} y_j = sum_{c in e} y_c.
//
// When the class count exceeds the edge count we solve the dual LP instead
// (its simplex basis is m x m):
//
//   (D)  min sum_c k y_c + sum_e z_e   s.t.  sum_{c in e} y_c + z_e >= v_e,
//        y, z >= 0
//
// and read y_c off the primal variables of (D).
//
// Across the capacity grid only k moves: the RHS of every class row in (P),
// or the objective coefficient of every y_c in (D). Each chain therefore
// builds its LP once and reoptimizes it per capacity from the previous
// optimal basis — a pure dual-simplex step for (P), a phase-2-only primal
// step for (D). Chains are fixed slices of the grid and run on the thread
// pool; partition and reduction order never depend on num_threads.
PricingResult RunCip(const Hypergraph& hypergraph, const Valuations& v,
                     const CipOptions& options) {
  Stopwatch timer;
  PricingResult result;
  result.algorithm = "CIP";

  ItemClasses storage;
  const ItemClasses& classes = ResolveClasses(
      hypergraph, options.classes, options.use_compression, storage);

  // Capacity grid k = 1, (1+eps), (1+eps)^2, ..., capped at B.
  double max_degree = static_cast<double>(hypergraph.MaxDegree());
  std::vector<double> capacities;
  double step = 1.0 + std::max(1e-3, options.eps);
  for (double k = 1.0; k < max_degree; k *= step) capacities.push_back(k);
  if (max_degree >= 1.0) capacities.push_back(max_degree);

  const int m = hypergraph.num_edges();
  const uint32_t num_classes = classes.num_classes();
  const bool primal_form = num_classes <= static_cast<uint32_t>(m);
  // Per-class edge lists come straight off the incidence index via each
  // class's representative item; force the (cached) build before fan-out.
  const ItemIncidence& incidence = hypergraph.incidence();

  const int num_capacities = static_cast<int>(capacities.size());
  const int chain_length = std::max(1, options.chain_length);
  const int num_chains = (num_capacities + chain_length - 1) / chain_length;
  std::vector<ChainResult> chains(std::max(num_chains, 0));

  common::ThreadPool pool(options.num_threads);
  pool.ParallelFor(num_chains, [&](int ci) {
    const int begin = ci * chain_length;
    const int end = std::min(begin + chain_length, num_capacities);
    ChainResult& out = chains[ci];

    lp::LpModel model(primal_form ? lp::ObjectiveSense::kMaximize
                                  : lp::ObjectiveSense::kMinimize);
    if (primal_form) {
      // One row per class; RHS (the capacity) is set per solve.
      for (int e = 0; e < m; ++e) model.AddVariable(0.0, 1.0, v[e]);
      for (uint32_t cls = 0; cls < num_classes; ++cls) {
        uint32_t rep = classes.class_rep[cls];
        std::vector<std::pair<int, double>> terms;
        terms.reserve(static_cast<size_t>(incidence.degree(rep)));
        for (const int* e = incidence.begin(rep); e != incidence.end(rep); ++e) {
          terms.emplace_back(*e, 1.0);
        }
        model.AddConstraint(lp::ConstraintSense::kLe, 0.0, std::move(terms));
      }
    } else {
      // Dual form: variables y_c (objective k, set per solve) then z_e.
      for (uint32_t cls = 0; cls < num_classes; ++cls) {
        model.AddVariable(0.0, lp::kInf, 0.0);
      }
      for (int e = 0; e < m; ++e) model.AddVariable(0.0, lp::kInf, 1.0);
      for (int e = 0; e < m; ++e) {
        std::vector<std::pair<int, double>> terms;
        terms.reserve(classes.edge_classes[e].size() + 1);
        for (uint32_t cls : classes.edge_classes[e]) {
          terms.emplace_back(static_cast<int>(cls), 1.0);
        }
        terms.emplace_back(static_cast<int>(num_classes) + e, 1.0);
        model.AddConstraint(lp::ConstraintSense::kGe, v[e], std::move(terms));
      }
    }

    lp::Simplex solver(model);
    lp::Basis basis;
    std::vector<double> class_duals(num_classes, 0.0);
    for (int c = begin; c < end; ++c) {
      const double capacity = capacities[c];
      if (primal_form) {
        for (uint32_t cls = 0; cls < num_classes; ++cls) {
          model.SetRhs(static_cast<int>(cls), capacity);
        }
      } else {
        for (uint32_t cls = 0; cls < num_classes; ++cls) {
          model.SetObjectiveCoefficient(static_cast<int>(cls), capacity);
        }
      }

      lp::LpSolution solution = (options.warm_start && !basis.empty())
                                    ? solver.ResolveFrom(basis)
                                    : solver.Solve();
      ++out.lps_solved;
      if (!solution.ok()) continue;
      if (options.warm_start) basis = std::move(solution.basis);

      for (uint32_t cls = 0; cls < num_classes; ++cls) {
        class_duals[cls] = primal_form ? std::max(0.0, solution.dual[cls])
                                       : std::max(0.0, solution.primal[cls]);
      }
      std::vector<double> weights =
          classes.ExpandClassWeights(class_duals, hypergraph.num_items());
      double revenue = Revenue(ItemPricing(weights), hypergraph, v);
      if (revenue > out.best_revenue) {
        out.best_revenue = revenue;
        out.best_weights = std::move(weights);
      }
    }
  });

  std::vector<double> best_weights(hypergraph.num_items(), 0.0);
  double best_revenue = 0.0;
  for (ChainResult& chain : chains) {
    result.lps_solved += chain.lps_solved;
    if (chain.best_revenue > best_revenue) {
      best_revenue = chain.best_revenue;
      best_weights = std::move(chain.best_weights);
    }
  }

  result.pricing = std::make_unique<ItemPricing>(std::move(best_weights));
  result.revenue = Revenue(*result.pricing, hypergraph, v);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace qp::core
