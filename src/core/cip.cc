#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stopwatch.h"
#include "core/algorithms.h"
#include "core/class_util.h"
#include "lp/lp_model.h"
#include "lp/simplex.h"

namespace qp::core {

namespace {

// Solves the capacity-k welfare LP and returns per-class dual prices y_c.
//
//   (P)  max sum_e v_e x_e    s.t.  sum_{e : c in e} x_e <= k  (class c),
//                                   0 <= x_e <= 1
//
// Items in a class have identical constraints, so one row per class
// suffices; the class dual y_c then equals the *sum* of the per-item duals,
// and the Cheung-Swamy edge price sum_{j in e} y_j = sum_{c in e} y_c.
//
// When the class count exceeds the edge count we solve the dual LP instead
// (its simplex basis is m x m):
//
//   (D)  min sum_c k y_c + sum_e z_e   s.t.  sum_{c in e} y_c + z_e >= v_e,
//        y, z >= 0
//
// and read y_c off the primal variables of (D).
bool SolveCapacityLp(const Hypergraph& hypergraph, const Valuations& v,
                     const ItemClasses& classes, double capacity,
                     std::vector<double>* class_duals, int* lps_solved) {
  const int m = hypergraph.num_edges();
  const uint32_t num_classes = classes.num_classes();
  class_duals->assign(num_classes, 0.0);

  // Per-class edge lists.
  std::vector<std::vector<int>> class_edges(num_classes);
  for (int e = 0; e < m; ++e) {
    for (uint32_t cls : classes.edge_classes[e]) class_edges[cls].push_back(e);
  }

  ++*lps_solved;
  if (num_classes <= static_cast<uint32_t>(m)) {
    // Primal form: one row per class.
    lp::LpModel model(lp::ObjectiveSense::kMaximize);
    for (int e = 0; e < m; ++e) model.AddVariable(0.0, 1.0, v[e]);
    for (uint32_t cls = 0; cls < num_classes; ++cls) {
      std::vector<std::pair<int, double>> terms;
      terms.reserve(class_edges[cls].size());
      for (int e : class_edges[cls]) terms.emplace_back(e, 1.0);
      model.AddConstraint(lp::ConstraintSense::kLe, capacity, std::move(terms));
    }
    lp::LpSolution solution = lp::SolveLp(model);
    if (!solution.ok()) return false;
    for (uint32_t cls = 0; cls < num_classes; ++cls) {
      (*class_duals)[cls] = std::max(0.0, solution.dual[cls]);
    }
    return true;
  }

  // Dual form: one row per edge; variables y_c then z_e.
  lp::LpModel model(lp::ObjectiveSense::kMinimize);
  for (uint32_t cls = 0; cls < num_classes; ++cls) {
    model.AddVariable(0.0, lp::kInf, capacity);
  }
  for (int e = 0; e < m; ++e) model.AddVariable(0.0, lp::kInf, 1.0);
  for (int e = 0; e < m; ++e) {
    std::vector<std::pair<int, double>> terms;
    terms.reserve(classes.edge_classes[e].size() + 1);
    for (uint32_t cls : classes.edge_classes[e]) terms.emplace_back(cls, 1.0);
    terms.emplace_back(static_cast<int>(num_classes) + e, 1.0);
    model.AddConstraint(lp::ConstraintSense::kGe, v[e], std::move(terms));
  }
  lp::LpSolution solution = lp::SolveLp(model);
  if (!solution.ok()) return false;
  for (uint32_t cls = 0; cls < num_classes; ++cls) {
    (*class_duals)[cls] = std::max(0.0, solution.primal[cls]);
  }
  return true;
}

}  // namespace

PricingResult RunCip(const Hypergraph& hypergraph, const Valuations& v,
                     const CipOptions& options) {
  Stopwatch timer;
  PricingResult result;
  result.algorithm = "CIP";

  ItemClasses storage;
  const ItemClasses& classes = ResolveClasses(
      hypergraph, options.classes, options.use_compression, storage);

  // Capacity grid k = 1, (1+eps), (1+eps)^2, ..., capped at B.
  double max_degree = static_cast<double>(hypergraph.MaxDegree());
  std::vector<double> capacities;
  double step = 1.0 + std::max(1e-3, options.eps);
  for (double k = 1.0; k < max_degree; k *= step) capacities.push_back(k);
  if (max_degree >= 1.0) capacities.push_back(max_degree);

  std::vector<double> best_weights(hypergraph.num_items(), 0.0);
  double best_revenue = 0.0;
  std::vector<double> class_duals;
  for (double capacity : capacities) {
    if (!SolveCapacityLp(hypergraph, v, classes, capacity, &class_duals,
                         &result.lps_solved)) {
      continue;
    }
    std::vector<double> weights =
        classes.ExpandClassWeights(class_duals, hypergraph.num_items());
    double revenue = Revenue(ItemPricing(weights), hypergraph, v);
    if (revenue > best_revenue) {
      best_revenue = revenue;
      best_weights = std::move(weights);
    }
  }

  result.pricing = std::make_unique<ItemPricing>(std::move(best_weights));
  result.revenue = Revenue(*result.pricing, hypergraph, v);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace qp::core
