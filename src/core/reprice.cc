#include "core/reprice.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/pricing.h"

#include "common/stopwatch.h"
#include "core/lpip_sweep.h"

namespace qp::core {

namespace {

// Options forwarded to the LP algorithms with the state's shared
// precompute installed (and any caller-side precompute dropped — it may
// describe a previous generation).
AlgorithmOptions WithStatePrecompute(const AlgorithmOptions& options,
                                     const RepriceState& state) {
  AlgorithmOptions out = options;
  out.lpip.classes = &state.classes;
  out.lpip.use_compression = true;
  out.lpip.sorted_order = &state.order;
  out.cip.classes = &state.classes;
  out.cip.use_compression = true;
  out.sorted_order = &state.order;
  return out;
}

// Rebuilds state.lpip from this generation's per-candidate solutions and
// returns the LPIP result (earliest candidate wins revenue ties, matching
// the sweep's reduction rule). When the winner's weights came from the
// retained book, one standalone solve refreshes them so the published
// pricing is a function of the grown instance alone.
PricingResult FinishLpip(RepriceState& state, const Hypergraph& hypergraph,
                         const Valuations& v, const LpipOptions& lpip_options,
                         const std::vector<int>& positions,
                         std::vector<RepriceState::LpipCandidate> candidates,
                         const std::vector<double>& revenues,
                         const std::vector<bool>& reused, int lps_solved) {
  Stopwatch timer;
  PricingResult result;
  result.algorithm = "LPIP";
  result.lps_solved = lps_solved;

  int best = -1;
  double best_revenue = 0.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (revenues[i] > best_revenue) {
      best_revenue = revenues[i];
      best = static_cast<int>(i);
    }
  }

  std::vector<double> best_weights(hypergraph.num_items(), 0.0);
  if (best >= 0) {
    size_t b = static_cast<size_t>(best);
    if (reused[b]) {
      // Refresh: solve the winning threshold standalone on the grown
      // instance (one LP) instead of publishing the retained vertex.
      LpipSweepCapture capture;
      std::vector<int> winner = {positions[b]};
      RunLpipSweep(hypergraph, v, state.classes, state.order, winner,
                   lpip_options, &capture);
      ++result.lps_solved;
      state.last.lpip_winner_refreshes = 1;
      if (!capture.item_weights[0].empty()) {
        candidates[b].item_weights = std::move(capture.item_weights[0]);
      }
    }
    best_weights = candidates[b].item_weights;
  }
  state.lpip = std::move(candidates);

  result.pricing = std::make_unique<ItemPricing>(std::move(best_weights));
  result.revenue = Revenue(*result.pricing, hypergraph, v);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

std::vector<PricingResult> SolveAllWithState(const Hypergraph& hypergraph,
                                             const Valuations& v,
                                             const AlgorithmOptions& options,
                                             RepriceState& state) {
  Stopwatch timer;
  state = RepriceState{};
  state.classes = ItemClasses::Compute(hypergraph);
  state.order = OrderByDescendingValuation(v);
  AlgorithmOptions resolved = WithStatePrecompute(options, state);

  // LPIP: the RunLpip sweep, with per-candidate capture seeding the state.
  Stopwatch lpip_timer;
  std::vector<int> positions =
      LpipCandidatePositions(v, state.order, options.lpip.max_candidates);
  LpipSweepCapture capture;
  PricingResult lpip = RunLpipSweep(hypergraph, v, state.classes, state.order,
                                    positions, resolved.lpip, &capture);
  lpip.seconds = lpip_timer.ElapsedSeconds();
  std::vector<RepriceState::LpipCandidate> candidates(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    candidates[i].threshold = v[state.order[static_cast<size_t>(positions[i])]];
    candidates[i].item_weights = std::move(capture.item_weights[i]);
    if (candidates[i].item_weights.empty()) {
      candidates[i].item_weights.assign(hypergraph.num_items(), 0.0);
    }
  }
  state.lpip = std::move(candidates);
  state.last.lpip_candidates = static_cast<int>(positions.size());

  PricingResult cip = RunCip(hypergraph, v, resolved.cip);
  state.last.cip_capacities = cip.lps_solved;

  state.last.lps_solved = lpip.lps_solved + cip.lps_solved;
  state.generation = 1;
  std::vector<PricingResult> results =
      AssembleAllResults(hypergraph, v, std::move(lpip), std::move(cip));
  state.last.seconds = timer.ElapsedSeconds();
  return results;
}

std::vector<PricingResult> RepriceAfterAppend(const Hypergraph& hypergraph,
                                              const Valuations& v,
                                              int first_new_edge,
                                              const AlgorithmOptions& options,
                                              RepriceState& state) {
  if (!state.seeded()) {
    return SolveAllWithState(hypergraph, v, options, state);
  }
  Stopwatch timer;
  const int m = hypergraph.num_edges();
  state.last = RepriceStats{};

  // Shared precompute, delta-maintained: refine the classes in place and
  // merge the appended edges into the valuation order (both halves are
  // sorted under the same comparator, and new indices exceed old ones, so
  // a stable merge reproduces OrderByDescendingValuation exactly).
  state.classes.Refine(hypergraph, first_new_edge);
  std::vector<int> appended(static_cast<size_t>(m - first_new_edge));
  for (int e = first_new_edge; e < m; ++e) {
    appended[static_cast<size_t>(e - first_new_edge)] = e;
  }
  auto by_valuation = [&](int a, int b) {
    return v[a] > v[b] || (v[a] == v[b] && a < b);
  };
  std::sort(appended.begin(), appended.end(), by_valuation);
  std::vector<int> merged(static_cast<size_t>(m));
  std::merge(state.order.begin(), state.order.end(), appended.begin(),
             appended.end(), merged.begin(), by_valuation);
  state.order = std::move(merged);
  AlgorithmOptions resolved = WithStatePrecompute(options, state);

  double max_new_valuation = -std::numeric_limits<double>::infinity();
  for (int e = first_new_edge; e < m; ++e) {
    max_new_valuation = std::max(max_new_valuation, v[e]);
  }

  // LPIP: thresholds strictly above every appended valuation keep their
  // exact family, hence their retained optimum; the rest re-solve.
  Stopwatch lpip_timer;
  std::vector<int> positions =
      LpipCandidatePositions(v, state.order, options.lpip.max_candidates);
  std::vector<int> changed;                            // positions needing an LP
  std::vector<int> reused_from(positions.size(), -1);  // index into state.lpip
  {
    size_t stored = 0;
    for (size_t i = 0; i < positions.size(); ++i) {
      double threshold = v[state.order[static_cast<size_t>(positions[i])]];
      if (threshold <= max_new_valuation) {
        changed.push_back(positions[i]);
        continue;
      }
      while (stored < state.lpip.size() &&
             state.lpip[stored].threshold > threshold) {
        ++stored;
      }
      if (stored < state.lpip.size() &&
          state.lpip[stored].threshold == threshold) {
        reused_from[i] = static_cast<int>(stored);
      } else {
        // Candidate unseen last generation (e.g. subsampling picked a
        // different spread): solve it like a changed one.
        changed.push_back(positions[i]);
      }
    }
  }
  LpipSweepCapture capture;
  PricingResult swept = RunLpipSweep(hypergraph, v, state.classes, state.order,
                                     changed, resolved.lpip, &capture);

  std::vector<RepriceState::LpipCandidate> candidates(positions.size());
  std::vector<double> revenues(positions.size(), 0.0);
  std::vector<bool> reused(positions.size(), false);
  {
    size_t ci = 0;
    for (size_t i = 0; i < positions.size(); ++i) {
      candidates[i].threshold =
          v[state.order[static_cast<size_t>(positions[i])]];
      if (reused_from[i] >= 0) {
        candidates[i].item_weights = std::move(
            state.lpip[static_cast<size_t>(reused_from[i])].item_weights);
        // The weights are unchanged but the instance grew: re-evaluate
        // the realized revenue over all edges (no LP involved).
        revenues[i] =
            Revenue(ItemPricing(candidates[i].item_weights), hypergraph, v);
        reused[i] = true;
      } else {
        candidates[i].item_weights = std::move(capture.item_weights[ci]);
        if (candidates[i].item_weights.empty()) {
          candidates[i].item_weights.assign(hypergraph.num_items(), 0.0);
        }
        revenues[i] = capture.revenues[ci];
        ++ci;
      }
    }
  }
  state.last.lpip_candidates = static_cast<int>(positions.size());
  state.last.lpip_reused = static_cast<int>(positions.size() - changed.size());
  PricingResult lpip =
      FinishLpip(state, hypergraph, v, resolved.lpip, positions,
                 std::move(candidates), revenues, reused, swept.lps_solved);
  lpip.seconds = lpip_timer.ElapsedSeconds();

  // CIP: replay the cold capacity grid on the refined (bit-equal)
  // classes. Warm-starting from previous-generation bases was evaluated
  // and rejected — see the header note on dual degeneracy.
  PricingResult cip = RunCip(hypergraph, v, resolved.cip);
  state.last.cip_capacities = cip.lps_solved;

  state.last.lps_solved = lpip.lps_solved + cip.lps_solved;
  state.generation++;
  std::vector<PricingResult> results =
      AssembleAllResults(hypergraph, v, std::move(lpip), std::move(cip));
  state.last.seconds = timer.ElapsedSeconds();
  return results;
}

// --- structured book deltas ---------------------------------------------

namespace {

// Bitwise double equality: the delta-chain contract is bit-identity, so
// -0.0 != +0.0 here (value-equal but not bit-equal) and a patch is
// emitted whenever the stored representation moved.
bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

bool BitEqual(const std::vector<std::vector<double>>& a,
              const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (!BitEqual(a[i][j], b[i][j])) return false;
    }
  }
  return true;
}

}  // namespace

std::optional<BookDelta> DiffResults(const std::vector<PricingResult>& prev,
                                     const std::vector<PricingResult>& next) {
  if (prev.size() != next.size() || next.empty()) return std::nullopt;
  BookDelta delta;
  delta.patches.resize(next.size());
  for (size_t i = 0; i < next.size(); ++i) {
    if (prev[i].algorithm != next[i].algorithm) return std::nullopt;
    if (prev[i].pricing == nullptr || next[i].pricing == nullptr) {
      return std::nullopt;
    }
    ResultPatch& patch = delta.patches[i];
    patch.revenue = next[i].revenue;
    patch.seconds = next[i].seconds;
    patch.lps_solved = next[i].lps_solved;
    const PricingFunction* a = prev[i].pricing.get();
    const PricingFunction* b = next[i].pricing.get();
    if (const auto* ub = dynamic_cast<const UniformBundlePricing*>(b)) {
      const auto* ua = dynamic_cast<const UniformBundlePricing*>(a);
      if (ua == nullptr) return std::nullopt;
      if (!BitEqual(ua->bundle_price(), ub->bundle_price())) {
        patch.kind = ResultPatch::Kind::kBundlePrice;
        patch.bundle_price = ub->bundle_price();
      }
    } else if (const auto* ib = dynamic_cast<const ItemPricing*>(b)) {
      const auto* ia = dynamic_cast<const ItemPricing*>(a);
      if (ia == nullptr || ia->weights().size() != ib->weights().size()) {
        return std::nullopt;
      }
      const std::vector<double>& wa = ia->weights();
      const std::vector<double>& wb = ib->weights();
      size_t changed = 0;
      for (size_t j = 0; j < wb.size(); ++j) {
        changed += BitEqual(wa[j], wb[j]) ? 0 : 1;
      }
      if (changed == 0) {
        // kNone
      } else if (changed * 4 <= wb.size()) {
        patch.kind = ResultPatch::Kind::kSparseWeights;
        patch.sparse.reserve(changed);
        for (size_t j = 0; j < wb.size(); ++j) {
          if (!BitEqual(wa[j], wb[j])) {
            patch.sparse.emplace_back(static_cast<uint32_t>(j), wb[j]);
          }
        }
      } else {
        patch.kind = ResultPatch::Kind::kFullWeights;
        patch.weights = wb;
      }
    } else if (const auto* xb = dynamic_cast<const XosPricing*>(b)) {
      const auto* xa = dynamic_cast<const XosPricing*>(a);
      if (xa == nullptr) return std::nullopt;
      if (!BitEqual(xa->components(), xb->components())) {
        patch.kind = ResultPatch::Kind::kXos;
        patch.components = xb->components();
      }
    } else {
      return std::nullopt;
    }
  }
  for (size_t i = 0; i < next.size(); ++i) {
    if (delta.best < 0 ||
        next[i].revenue > next[static_cast<size_t>(delta.best)].revenue) {
      delta.best = static_cast<int>(i);
    }
  }
  return delta;
}

void ApplyResultPatch(const ResultPatch& patch, PricingResult& result) {
  result.revenue = patch.revenue;
  result.seconds = patch.seconds;
  result.lps_solved = patch.lps_solved;
  switch (patch.kind) {
    case ResultPatch::Kind::kNone:
      break;
    case ResultPatch::Kind::kBundlePrice:
      result.pricing = std::make_unique<UniformBundlePricing>(
          patch.bundle_price);
      break;
    case ResultPatch::Kind::kSparseWeights: {
      const auto* ip = dynamic_cast<const ItemPricing*>(result.pricing.get());
      if (ip == nullptr) std::abort();  // patch/result type mismatch
      std::vector<double> weights = ip->weights();
      for (const auto& [item, weight] : patch.sparse) {
        weights[item] = weight;
      }
      result.pricing = std::make_unique<ItemPricing>(std::move(weights));
      break;
    }
    case ResultPatch::Kind::kFullWeights:
      result.pricing = std::make_unique<ItemPricing>(patch.weights);
      break;
    case ResultPatch::Kind::kXos:
      result.pricing = std::make_unique<XosPricing>(patch.components);
      break;
  }
}

}  // namespace qp::core
