#include "core/reprice.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "core/lpip_sweep.h"

namespace qp::core {

namespace {

// Options forwarded to the LP algorithms with the state's shared
// precompute installed (and any caller-side precompute dropped — it may
// describe a previous generation).
AlgorithmOptions WithStatePrecompute(const AlgorithmOptions& options,
                                     const RepriceState& state) {
  AlgorithmOptions out = options;
  out.lpip.classes = &state.classes;
  out.lpip.use_compression = true;
  out.lpip.sorted_order = &state.order;
  out.cip.classes = &state.classes;
  out.cip.use_compression = true;
  out.sorted_order = &state.order;
  return out;
}

// Rebuilds state.lpip from this generation's per-candidate solutions and
// returns the LPIP result (earliest candidate wins revenue ties, matching
// the sweep's reduction rule). When the winner's weights came from the
// retained book, one standalone solve refreshes them so the published
// pricing is a function of the grown instance alone.
PricingResult FinishLpip(RepriceState& state, const Hypergraph& hypergraph,
                         const Valuations& v, const LpipOptions& lpip_options,
                         const std::vector<int>& positions,
                         std::vector<RepriceState::LpipCandidate> candidates,
                         const std::vector<double>& revenues,
                         const std::vector<bool>& reused, int lps_solved) {
  Stopwatch timer;
  PricingResult result;
  result.algorithm = "LPIP";
  result.lps_solved = lps_solved;

  int best = -1;
  double best_revenue = 0.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (revenues[i] > best_revenue) {
      best_revenue = revenues[i];
      best = static_cast<int>(i);
    }
  }

  std::vector<double> best_weights(hypergraph.num_items(), 0.0);
  if (best >= 0) {
    size_t b = static_cast<size_t>(best);
    if (reused[b]) {
      // Refresh: solve the winning threshold standalone on the grown
      // instance (one LP) instead of publishing the retained vertex.
      LpipSweepCapture capture;
      std::vector<int> winner = {positions[b]};
      RunLpipSweep(hypergraph, v, state.classes, state.order, winner,
                   lpip_options, &capture);
      ++result.lps_solved;
      state.last.lpip_winner_refreshes = 1;
      if (!capture.item_weights[0].empty()) {
        candidates[b].item_weights = std::move(capture.item_weights[0]);
      }
    }
    best_weights = candidates[b].item_weights;
  }
  state.lpip = std::move(candidates);

  result.pricing = std::make_unique<ItemPricing>(std::move(best_weights));
  result.revenue = Revenue(*result.pricing, hypergraph, v);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

std::vector<PricingResult> SolveAllWithState(const Hypergraph& hypergraph,
                                             const Valuations& v,
                                             const AlgorithmOptions& options,
                                             RepriceState& state) {
  Stopwatch timer;
  state = RepriceState{};
  state.classes = ItemClasses::Compute(hypergraph);
  state.order = OrderByDescendingValuation(v);
  AlgorithmOptions resolved = WithStatePrecompute(options, state);

  // LPIP: the RunLpip sweep, with per-candidate capture seeding the state.
  Stopwatch lpip_timer;
  std::vector<int> positions =
      LpipCandidatePositions(v, state.order, options.lpip.max_candidates);
  LpipSweepCapture capture;
  PricingResult lpip = RunLpipSweep(hypergraph, v, state.classes, state.order,
                                    positions, resolved.lpip, &capture);
  lpip.seconds = lpip_timer.ElapsedSeconds();
  std::vector<RepriceState::LpipCandidate> candidates(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    candidates[i].threshold = v[state.order[static_cast<size_t>(positions[i])]];
    candidates[i].item_weights = std::move(capture.item_weights[i]);
    if (candidates[i].item_weights.empty()) {
      candidates[i].item_weights.assign(hypergraph.num_items(), 0.0);
    }
  }
  state.lpip = std::move(candidates);
  state.last.lpip_candidates = static_cast<int>(positions.size());

  PricingResult cip = RunCip(hypergraph, v, resolved.cip);
  state.last.cip_capacities = cip.lps_solved;

  state.last.lps_solved = lpip.lps_solved + cip.lps_solved;
  state.generation = 1;
  std::vector<PricingResult> results =
      AssembleAllResults(hypergraph, v, std::move(lpip), std::move(cip));
  state.last.seconds = timer.ElapsedSeconds();
  return results;
}

std::vector<PricingResult> RepriceAfterAppend(const Hypergraph& hypergraph,
                                              const Valuations& v,
                                              int first_new_edge,
                                              const AlgorithmOptions& options,
                                              RepriceState& state) {
  if (!state.seeded()) {
    return SolveAllWithState(hypergraph, v, options, state);
  }
  Stopwatch timer;
  const int m = hypergraph.num_edges();
  state.last = RepriceStats{};

  // Shared precompute, delta-maintained: refine the classes in place and
  // merge the appended edges into the valuation order (both halves are
  // sorted under the same comparator, and new indices exceed old ones, so
  // a stable merge reproduces OrderByDescendingValuation exactly).
  state.classes.Refine(hypergraph, first_new_edge);
  std::vector<int> appended(static_cast<size_t>(m - first_new_edge));
  for (int e = first_new_edge; e < m; ++e) {
    appended[static_cast<size_t>(e - first_new_edge)] = e;
  }
  auto by_valuation = [&](int a, int b) {
    return v[a] > v[b] || (v[a] == v[b] && a < b);
  };
  std::sort(appended.begin(), appended.end(), by_valuation);
  std::vector<int> merged(static_cast<size_t>(m));
  std::merge(state.order.begin(), state.order.end(), appended.begin(),
             appended.end(), merged.begin(), by_valuation);
  state.order = std::move(merged);
  AlgorithmOptions resolved = WithStatePrecompute(options, state);

  double max_new_valuation = -std::numeric_limits<double>::infinity();
  for (int e = first_new_edge; e < m; ++e) {
    max_new_valuation = std::max(max_new_valuation, v[e]);
  }

  // LPIP: thresholds strictly above every appended valuation keep their
  // exact family, hence their retained optimum; the rest re-solve.
  Stopwatch lpip_timer;
  std::vector<int> positions =
      LpipCandidatePositions(v, state.order, options.lpip.max_candidates);
  std::vector<int> changed;                            // positions needing an LP
  std::vector<int> reused_from(positions.size(), -1);  // index into state.lpip
  {
    size_t stored = 0;
    for (size_t i = 0; i < positions.size(); ++i) {
      double threshold = v[state.order[static_cast<size_t>(positions[i])]];
      if (threshold <= max_new_valuation) {
        changed.push_back(positions[i]);
        continue;
      }
      while (stored < state.lpip.size() &&
             state.lpip[stored].threshold > threshold) {
        ++stored;
      }
      if (stored < state.lpip.size() &&
          state.lpip[stored].threshold == threshold) {
        reused_from[i] = static_cast<int>(stored);
      } else {
        // Candidate unseen last generation (e.g. subsampling picked a
        // different spread): solve it like a changed one.
        changed.push_back(positions[i]);
      }
    }
  }
  LpipSweepCapture capture;
  PricingResult swept = RunLpipSweep(hypergraph, v, state.classes, state.order,
                                     changed, resolved.lpip, &capture);

  std::vector<RepriceState::LpipCandidate> candidates(positions.size());
  std::vector<double> revenues(positions.size(), 0.0);
  std::vector<bool> reused(positions.size(), false);
  {
    size_t ci = 0;
    for (size_t i = 0; i < positions.size(); ++i) {
      candidates[i].threshold =
          v[state.order[static_cast<size_t>(positions[i])]];
      if (reused_from[i] >= 0) {
        candidates[i].item_weights = std::move(
            state.lpip[static_cast<size_t>(reused_from[i])].item_weights);
        // The weights are unchanged but the instance grew: re-evaluate
        // the realized revenue over all edges (no LP involved).
        revenues[i] =
            Revenue(ItemPricing(candidates[i].item_weights), hypergraph, v);
        reused[i] = true;
      } else {
        candidates[i].item_weights = std::move(capture.item_weights[ci]);
        if (candidates[i].item_weights.empty()) {
          candidates[i].item_weights.assign(hypergraph.num_items(), 0.0);
        }
        revenues[i] = capture.revenues[ci];
        ++ci;
      }
    }
  }
  state.last.lpip_candidates = static_cast<int>(positions.size());
  state.last.lpip_reused = static_cast<int>(positions.size() - changed.size());
  PricingResult lpip =
      FinishLpip(state, hypergraph, v, resolved.lpip, positions,
                 std::move(candidates), revenues, reused, swept.lps_solved);
  lpip.seconds = lpip_timer.ElapsedSeconds();

  // CIP: replay the cold capacity grid on the refined (bit-equal)
  // classes. Warm-starting from previous-generation bases was evaluated
  // and rejected — see the header note on dual degeneracy.
  PricingResult cip = RunCip(hypergraph, v, resolved.cip);
  state.last.cip_capacities = cip.lps_solved;

  state.last.lps_solved = lpip.lps_solved + cip.lps_solved;
  state.generation++;
  std::vector<PricingResult> results =
      AssembleAllResults(hypergraph, v, std::move(lpip), std::move(cip));
  state.last.seconds = timer.ElapsedSeconds();
  return results;
}

}  // namespace qp::core
