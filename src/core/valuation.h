// Buyer-valuation generative models (paper Section 6.3).
//
//  * Sampling bundle valuations:  v_e ~ Uniform[1,k]  or  v_e ~ Zipf(a).
//  * Scaling bundle valuations:   v_e ~ Exponential(mean = |e|^kappa)  or
//                                 v_e ~ Normal(mu = |e|^kappa, sigma^2 = 10),
//    clamped at 0; empty edges get v = 0.
//  * Sampling item prices (additive model): item j draws a level
//    l_j ~ Dtilde (Uniform{1..k} or Binomial(k, 1/2)), then a price
//    x_j ~ Uniform[l_j, l_j + 1]; v_e = sum of x_j over j in e.
#ifndef QP_CORE_VALUATION_H_
#define QP_CORE_VALUATION_H_

#include <string>

#include "common/rng.h"
#include "core/hypergraph.h"

namespace qp::core {

/// v_e ~ Uniform[1, k], independent of the edge.
Valuations SampleUniformValuations(const Hypergraph& hypergraph, double k,
                                   Rng& rng);

/// v_e ~ Zipf(a) over {1, ..., zipf_support}.
Valuations SampleZipfValuations(const Hypergraph& hypergraph, double a,
                                Rng& rng, uint64_t zipf_support = 1000000);

/// v_e ~ Exponential(mean = |e|^kappa); empty edges get 0.
Valuations ScaleExponentialValuations(const Hypergraph& hypergraph,
                                      double kappa, Rng& rng);

/// v_e ~ Normal(mu = |e|^kappa, sigma^2 = variance), clamped at 0;
/// empty edges get 0.
Valuations ScaleNormalValuations(const Hypergraph& hypergraph, double kappa,
                                 Rng& rng, double variance = 10.0);

enum class LevelDistribution { kUniform, kBinomial };

/// Additive item-price model: levels from Uniform{1..k} or Binomial(k, 1/2).
Valuations AdditiveItemValuations(const Hypergraph& hypergraph,
                                  LevelDistribution levels, uint64_t k,
                                  Rng& rng);

}  // namespace qp::core

#endif  // QP_CORE_VALUATION_H_
