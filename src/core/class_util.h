// Internal helper shared by the LP-based algorithms (LPIP, CIP): resolves
// the item classes to use — caller-provided, freshly compressed, or the
// identity mapping for the compression ablation.
#ifndef QP_CORE_CLASS_UTIL_H_
#define QP_CORE_CLASS_UTIL_H_

#include "core/hypergraph.h"

namespace qp::core {

const ItemClasses& ResolveClasses(const Hypergraph& hypergraph,
                                  const ItemClasses* provided,
                                  bool use_compression, ItemClasses& storage);

}  // namespace qp::core

#endif  // QP_CORE_CLASS_UTIL_H_
