// Hypergraph model of a query-pricing instance (paper Section 3.3).
//
// Items (vertices) are support-set database instances; hyperedges are the
// conflict sets of buyer queries. Valuations are kept separate from the
// structure because every experiment re-draws them from a generative model
// over the same hypergraph.
#ifndef QP_CORE_HYPERGRAPH_H_
#define QP_CORE_HYPERGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qp::core {

/// Buyer valuations, one per hyperedge.
using Valuations = std::vector<double>;

/// CSR item -> edges incidence index: the edges containing item j are
/// `edge[start[j]], ..., edge[start[j+1] - 1]`, in ascending edge order.
/// Built once per hypergraph (see Hypergraph::incidence()) so LP
/// construction, class compression and degree queries stop re-scanning
/// every edge per item.
struct ItemIncidence {
  std::vector<int> start;  // size num_items + 1
  std::vector<int> edge;   // concatenated ascending edge ids

  int degree(uint32_t item) const { return start[item + 1] - start[item]; }
  const int* begin(uint32_t item) const { return edge.data() + start[item]; }
  const int* end(uint32_t item) const { return edge.data() + start[item + 1]; }
};

class Hypergraph {
 public:
  explicit Hypergraph(uint32_t num_items = 0) : num_items_(num_items) {}

  uint32_t num_items() const { return num_items_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds a hyperedge (bundle). Items are sorted and deduplicated; indices
  /// must be < num_items(). Empty edges are allowed (queries whose conflict
  /// set is empty — e.g. TPC-H has eleven of them, paper Section 6.2).
  int AddEdge(std::vector<uint32_t> items);

  const std::vector<uint32_t>& edge(int e) const { return edges_[e]; }
  int edge_size(int e) const { return static_cast<int>(edges_[e].size()); }

  /// The item -> edges index, built on first use and kept current across
  /// AddEdge: edges appended after the last build are *merged* into the
  /// CSR arrays (one slice-copy pass over the old index plus the new
  /// entries) instead of re-scanning every edge — the delta maintenance
  /// the serving engine's append path relies on. Not thread-safe to
  /// *build/merge*: callers that share a hypergraph across threads (the
  /// LPIP/CIP candidate sweeps, the engine's snapshot readers) force the
  /// build before fanning out and only read afterwards.
  const ItemIncidence& incidence() const;

  /// How the incidence index has been (re)built so far; tests and the
  /// engine stats use this to prove appends take the merge path.
  struct IncidenceMaintenance {
    int full_builds = 0;
    int merges = 0;
  };
  IncidenceMaintenance incidence_maintenance() const { return maintenance_; }

  /// Degree of every item (number of edges containing it).
  std::vector<uint32_t> ItemDegrees() const;

  /// B — the maximum item degree (0 for empty hypergraphs).
  uint32_t MaxDegree() const;

  /// k — the largest edge size.
  uint32_t MaxEdgeSize() const;

  double AvgEdgeSize() const;

  /// Number of edges containing at least one item private to them
  /// (degree-1 item); the paper uses this to explain Layering behavior.
  int NumEdgesWithUniqueItem() const;

  std::string StatsString() const;

 private:
  uint32_t num_items_;
  std::vector<std::vector<uint32_t>> edges_;
  // Lazily built incidence cache; edges with index >= incidence_edges_ are
  // not in it yet and get merged on the next incidence() call.
  mutable ItemIncidence incidence_;
  mutable int incidence_edges_ = 0;
  mutable IncidenceMaintenance maintenance_;
};

/// Equivalence classes of items by edge membership. Items contained in
/// exactly the same set of edges are interchangeable for every pricing
/// function considered in the paper, so LPs can work per class instead of
/// per item (a large win on skewed workloads; see bench/ablation_compression).
struct ItemClasses {
  /// item -> class id, or kNoClass for items in no edge.
  static constexpr uint32_t kNoClass = 0xffffffffu;
  std::vector<uint32_t> class_of_item;
  /// Number of items in each class.
  std::vector<uint32_t> class_size;
  /// One representative item per class. All members share the same edge
  /// set, so `incidence().begin(class_rep[c])` is the class's edge list —
  /// CIP reads per-class edge lists straight off the incidence index.
  std::vector<uint32_t> class_rep;
  /// Per edge: sorted list of class ids whose items it contains (each class
  /// is either fully inside or fully outside an edge, by construction).
  std::vector<std::vector<uint32_t>> edge_classes;

  uint32_t num_classes() const {
    return static_cast<uint32_t>(class_size.size());
  }

  static ItemClasses Compute(const Hypergraph& hypergraph);

  /// Delta maintenance for appended edges: updates `*this` — computed for
  /// `hypergraph` restricted to edges [0, first_new_edge) — to bit-equal
  /// what Compute would return on the full hypergraph (tests assert the
  /// equality field by field). The partition is refined locally: only the
  /// appended edges' items are re-grouped (a class splits when part of it
  /// joins a new edge), followed by linear renumber/repair passes —
  /// Compute's per-item signature hashing and bucket probing over the
  /// whole instance never reruns. Bit-equality is the property the
  /// incremental reprice path leans on: LPs built from refined classes
  /// are exactly the LPs a cold run would build.
  void Refine(const Hypergraph& hypergraph, int first_new_edge);

  /// Expands per-class weights into per-item weights, dividing each class
  /// weight equally among its members. Items in no edge get weight 0.
  std::vector<double> ExpandClassWeights(
      const std::vector<double>& class_weights, uint32_t num_items) const;
};

}  // namespace qp::core

#endif  // QP_CORE_HYPERGRAPH_H_
