// Synthetic "world" dataset (paper Section 6.2).
//
// The paper uses the classic MySQL `world` sample database: 3 tables,
// ~5000 tuples, 21 attributes. This generator reproduces those shapes
// deterministically:
//   Country(Code, Name, Continent, Region, SurfaceArea, IndepYear,
//           Population, LifeExpectancy, GNP, GovernmentForm, HeadOfState,
//           Capital)                       -- 235 rows, 12 columns
//   City(ID, Name, CountryCode, District, Population)
//                                          -- 4000 rows, 5 columns
//   CountryLanguage(CountryCode, Language, IsOfficial, Percentage)
//                                          -- 765 rows, 4 columns
// Totals: 5000 tuples, 21 attributes, and domain cardinalities (235
// countries, 7 continents, 120 languages) chosen so the Table-7 template
// expansion yields exactly the paper's 986 skewed queries.
#ifndef QP_WORKLOADS_WORLD_H_
#define QP_WORKLOADS_WORLD_H_

#include <memory>
#include <string>
#include <vector>

#include "db/database.h"

namespace qp::workload {

struct WorldData {
  std::unique_ptr<db::Database> database;
  std::vector<std::string> country_codes;  // 235
  std::vector<std::string> continents;     // 7
  std::vector<std::string> regions;        // 25
  std::vector<std::string> languages;      // 120
};

/// Deterministic world-like dataset.
WorldData MakeWorldData(uint64_t seed = 7);

}  // namespace qp::workload

#endif  // QP_WORKLOADS_WORLD_H_
