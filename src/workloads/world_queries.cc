#include "workloads/world_queries.h"

#include "common/rng.h"
#include "common/str_util.h"
#include "db/parser.h"

namespace qp::workload {

std::vector<std::string> SkewedWorkloadSql(const WorldData& world) {
  std::vector<std::string> sql;

  // Q1: per continent.
  for (const std::string& c : world.continents) {
    sql.push_back(StrCat(
        "select count(Name) from Country where Continent = '", c, "'"));
  }
  // Q2 - Q11 (single-instance templates).
  sql.push_back("select count(distinct Continent) from Country");
  sql.push_back("select avg(Population) from Country");
  sql.push_back("select max(Population) from Country");
  sql.push_back("select min(LifeExpectancy) from Country");
  sql.push_back("select count(Name) from Country where Name like 'A%'");
  sql.push_back(
      "select Region, max(SurfaceArea) from Country group by Region");
  sql.push_back(
      "select Continent, max(Population) from Country group by Continent");
  sql.push_back(
      "select Continent, count(Code) from Country group by Continent");
  sql.push_back("select * from Country");
  sql.push_back("select Name from Country where Name like 'A%'");
  // Q12: per continent.
  for (const std::string& c : world.continents) {
    sql.push_back(StrCat("select * from Country where Continent = '", c,
                         "' and Population > 5000000"));
  }
  // Q13 - Q16.
  const std::string& region0 = world.regions[0];
  sql.push_back(StrCat("select * from Country where Region = '", region0, "'"));
  sql.push_back(
      StrCat("select Name from Country where Region = '", region0, "'"));
  sql.push_back(
      "select Name from Country where Population between 10000000 and "
      "20000000");
  sql.push_back(
      StrCat("select * from Country where Continent = '", world.continents[1],
             "' limit 2"));
  // Q17: per country.
  for (const std::string& code : world.country_codes) {
    sql.push_back(
        StrCat("select Population from Country where Code = '", code, "'"));
  }
  // Q18 - Q26.
  sql.push_back("select GovernmentForm from Country");
  sql.push_back("select distinct GovernmentForm from Country");
  const std::string& code0 = world.country_codes[0];
  sql.push_back(StrCat(
      "select * from City where Population >= 1000000 and CountryCode = '",
      code0, "'"));
  sql.push_back(StrCat(
      "select distinct Language from CountryLanguage where CountryCode = '",
      code0, "'"));
  sql.push_back("select * from CountryLanguage where IsOfficial = 'T'");
  sql.push_back(
      "select Language, count(CountryCode) from CountryLanguage group by "
      "Language");
  sql.push_back(
      StrCat("select count(Language) from CountryLanguage where CountryCode "
             "= '",
             code0, "'"));
  sql.push_back(
      "select CountryCode, sum(Population) from City group by CountryCode");
  sql.push_back(
      "select CountryCode, count(ID) from City group by CountryCode");
  // Q27: per country.
  for (const std::string& code : world.country_codes) {
    sql.push_back(
        StrCat("select * from City where CountryCode = '", code, "'"));
  }
  // Q28.
  sql.push_back(StrCat(
      "select distinct 1 from City where CountryCode = '", code0,
      "' and Population > 10000000"));
  // Q29 / Q30: per language.
  for (const std::string& lang : world.languages) {
    sql.push_back(StrCat(
        "select Name from Country, CountryLanguage where Code = CountryCode "
        "and Language = '",
        lang, "'"));
  }
  for (const std::string& lang : world.languages) {
    sql.push_back(StrCat(
        "select C.Name from Country C, CountryLanguage L where C.Code = "
        "L.CountryCode and L.Language = '",
        lang, "' and L.Percentage >= 50"));
  }
  // Q31: per country.
  for (const std::string& code : world.country_codes) {
    sql.push_back(StrCat(
        "select T.District from Country C, City T where C.Code = '", code,
        "' and C.Capital = T.ID"));
  }
  // Q32 - Q34.
  sql.push_back(StrCat(
      "select * from Country C, CountryLanguage L where C.Code = "
      "L.CountryCode and L.Language = '",
      world.languages[0], "'"));
  sql.push_back(
      "select Name, Language from Country, CountryLanguage where Code = "
      "CountryCode");
  sql.push_back(
      "select * from Country, CountryLanguage where Code = CountryCode");
  return sql;
}

Result<WorkloadInstance> MakeSkewedWorkload(uint64_t seed) {
  WorldData world = MakeWorldData(seed);
  WorkloadInstance out;
  out.name = "skewed";
  out.sql = SkewedWorkloadSql(world);
  out.database = std::move(world.database);
  out.queries.reserve(out.sql.size());
  for (const std::string& statement : out.sql) {
    QP_ASSIGN_OR_RETURN(db::BoundQuery q,
                        db::ParseQuery(statement, *out.database));
    out.queries.push_back(std::move(q));
  }
  return out;
}

Result<WorkloadInstance> MakeUniformWorkload(uint64_t seed, int count,
                                             double selectivity) {
  WorldData world = MakeWorldData(seed);
  WorkloadInstance out;
  out.name = "uniform";
  out.database = std::move(world.database);
  const db::Table* city = out.database->FindTable("City");
  if (city == nullptr) return Status::Internal("world data lacks City");
  int rows = city->num_rows();
  int window = std::max(1, static_cast<int>(rows * selectivity));
  Rng rng(Mix64(seed ^ 0x12f00du));
  for (int i = 0; i < count; ++i) {
    int start = static_cast<int>(rng.UniformInt(1, rows - window + 1));
    out.sql.push_back(StrCat("select * from City where ID between ", start,
                             " and ", start + window - 1));
  }
  out.queries.reserve(out.sql.size());
  for (const std::string& statement : out.sql) {
    QP_ASSIGN_OR_RETURN(db::BoundQuery q,
                        db::ParseQuery(statement, *out.database));
    out.queries.push_back(std::move(q));
  }
  return out;
}

}  // namespace qp::workload
