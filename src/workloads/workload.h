// Common shape of a generated workload: a database plus a bound query set.
#ifndef QP_WORKLOADS_WORKLOAD_H_
#define QP_WORKLOADS_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/query.h"

namespace qp::workload {

struct WorkloadInstance {
  std::unique_ptr<db::Database> database;
  std::vector<db::BoundQuery> queries;
  std::vector<std::string> sql;  // one statement per query, same order
  std::string name;
};

}  // namespace qp::workload

#endif  // QP_WORKLOADS_WORKLOAD_H_
