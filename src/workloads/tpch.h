// TPC-H-shaped dataset + the paper's 220-query workload (Appendix C).
//
// Substitutions vs. the official benchmark (documented in DESIGN.md §4):
//  * scale factor defaults to 0.01 (the paper used SF 1 / ~10M rows); row
//    counts scale linearly with `scale_factor` and the hypergraph *shape*
//    (parameter structure of the templates) is preserved;
//  * date columns are materialized as integer year columns because every
//    template in the workload filters by year only;
//  * monetary decimals are integer cents so aggregate accumulators and the
//    incremental conflict engine stay exact;
//  * multi-way joins in the original templates are reduced to their
//    2-table core with denormalized region/nation names (the query-pricing
//    hypergraph depends on which parameters/columns the predicates touch,
//    not on join arity).
//
// Query counts per template family (exactly the paper's 220):
//   Q1/Q4/Q6/Q12 x 5 years = 20; Q2 x 5 regions = 5; Q16 x 150 p_types =
//   150; Q17 x 40 containers = 40; Q2 x 5 p_type materials = 5.
#ifndef QP_WORKLOADS_TPCH_H_
#define QP_WORKLOADS_TPCH_H_

#include "common/status.h"
#include "workloads/workload.h"

namespace qp::workload {

struct TpchOptions {
  double scale_factor = 0.01;
  uint64_t seed = 7;
};

/// Generates the TPC-H-shaped database (region, nation, supplier, part,
/// partsupp, customer, orders, lineitem).
std::unique_ptr<db::Database> MakeTpchData(const TpchOptions& options);

/// The 220-query workload bound against a freshly generated database.
Result<WorkloadInstance> MakeTpchWorkload(const TpchOptions& options = {});

/// The 150 p_type values (6 prefixes x 5 mids x 5 materials).
std::vector<std::string> TpchPartTypes();

/// The 40 p_container values (5 sizes x 8 kinds).
std::vector<std::string> TpchContainers();

/// The 5 p_type materials used by the Q2 variant.
std::vector<std::string> TpchMaterials();

}  // namespace qp::workload

#endif  // QP_WORKLOADS_TPCH_H_
