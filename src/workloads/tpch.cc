#include "workloads/tpch.h"

#include <algorithm>

#include "common/rng.h"
#include "common/str_util.h"

namespace qp::workload {

namespace {

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
const char* kMaterials[] = {"BRASS", "TIN", "COPPER", "STEEL", "NICKEL"};
const char* kTypePrefixes[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                               "ECONOMY", "PROMO"};
const char* kTypeMids[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                           "BRUSHED"};
const char* kContainerSizes[] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
const char* kContainerKinds[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                                 "CAN", "DRUM"};
const char* kShipModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};

}  // namespace

// The 150 p_type values: 6 prefixes x 5 mids x 5 materials.
std::vector<std::string> TpchPartTypes() {
  std::vector<std::string> types;
  for (const char* p : kTypePrefixes) {
    for (const char* m : kTypeMids) {
      for (const char* mat : kMaterials) {
        types.push_back(StrCat(p, " ", m, " ", mat));
      }
    }
  }
  return types;
}

// The 40 container values: 5 sizes x 8 kinds.
std::vector<std::string> TpchContainers() {
  std::vector<std::string> containers;
  for (const char* s : kContainerSizes) {
    for (const char* k : kContainerKinds) {
      containers.push_back(StrCat(s, " ", k));
    }
  }
  return containers;
}

std::vector<std::string> TpchMaterials() {
  return {kMaterials, kMaterials + 5};
}

std::unique_ptr<db::Database> MakeTpchData(const TpchOptions& options) {
  Rng rng(Mix64(options.seed ^ 0x79c4u));
  auto database = std::make_unique<db::Database>();
  const double sf = options.scale_factor;
  const int num_suppliers = std::max(10, static_cast<int>(10000 * sf));
  const int num_parts = std::max(50, static_cast<int>(200000 * sf));
  const int num_customers = std::max(20, static_cast<int>(150000 * sf));
  const int num_orders = std::max(30, static_cast<int>(1500000 * sf));
  const int num_lineitems = num_orders * 4;
  std::vector<std::string> part_types = TpchPartTypes();
  std::vector<std::string> containers = TpchContainers();

  // region(r_regionkey, r_name)
  db::Table region("region", db::Schema({{"r_regionkey", db::ValueType::kInt},
                                         {"r_name", db::ValueType::kString}}));
  for (int r = 0; r < 5; ++r) {
    QP_CHECK_OK(region.AppendRow({db::Value::Int(r), db::Value::Str(kRegions[r])}));
  }
  QP_CHECK_OK(database->AddTable(std::move(region)));

  // nation(n_nationkey, n_name, n_regionname) — region denormalized.
  db::Table nation("nation",
                   db::Schema({{"n_nationkey", db::ValueType::kInt},
                               {"n_name", db::ValueType::kString},
                               {"n_regionname", db::ValueType::kString}}));
  std::vector<std::string> nation_regions(25);
  for (int n = 0; n < 25; ++n) {
    nation_regions[n] = kRegions[n % 5];
    QP_CHECK_OK(nation.AppendRow({db::Value::Int(n),
                                  db::Value::Str(StrCat("NATION", n)),
                                  db::Value::Str(nation_regions[n])}));
  }
  QP_CHECK_OK(database->AddTable(std::move(nation)));

  // supplier(s_suppkey, s_name, s_nationkey, s_regionname, s_acctbal)
  db::Table supplier("supplier",
                     db::Schema({{"s_suppkey", db::ValueType::kInt},
                                 {"s_name", db::ValueType::kString},
                                 {"s_nationkey", db::ValueType::kInt},
                                 {"s_regionname", db::ValueType::kString},
                                 {"s_acctbal", db::ValueType::kInt}}));
  for (int s = 0; s < num_suppliers; ++s) {
    int nat = static_cast<int>(rng.UniformInt(0, 24));
    QP_CHECK_OK(supplier.AppendRow(
        {db::Value::Int(s), db::Value::Str(StrCat("Supplier#", s)),
         db::Value::Int(nat), db::Value::Str(nation_regions[nat]),
         db::Value::Int(rng.UniformInt(-99999, 999999))}));
  }
  QP_CHECK_OK(database->AddTable(std::move(supplier)));

  // part(p_partkey, p_name, p_type, p_brand, p_container, p_size, p_retailprice)
  db::Table part("part", db::Schema({{"p_partkey", db::ValueType::kInt},
                                     {"p_name", db::ValueType::kString},
                                     {"p_type", db::ValueType::kString},
                                     {"p_brand", db::ValueType::kString},
                                     {"p_container", db::ValueType::kString},
                                     {"p_size", db::ValueType::kInt},
                                     {"p_retailprice", db::ValueType::kInt}}));
  for (int p = 0; p < num_parts; ++p) {
    QP_CHECK_OK(part.AppendRow(
        {db::Value::Int(p), db::Value::Str(StrCat("Part#", p)),
         db::Value::Str(part_types[rng.UniformInt(0, 149)]),
         db::Value::Str(StrCat("Brand#", rng.UniformInt(1, 5),
                               rng.UniformInt(1, 5))),
         db::Value::Str(containers[rng.UniformInt(0, 39)]),
         db::Value::Int(rng.UniformInt(1, 50)),
         db::Value::Int(rng.UniformInt(90000, 200000))}));
  }
  QP_CHECK_OK(database->AddTable(std::move(part)));

  // partsupp(ps_partkey, ps_suppkey, ps_availqty, ps_supplycost)
  db::Table partsupp("partsupp",
                     db::Schema({{"ps_partkey", db::ValueType::kInt},
                                 {"ps_suppkey", db::ValueType::kInt},
                                 {"ps_availqty", db::ValueType::kInt},
                                 {"ps_supplycost", db::ValueType::kInt}}));
  for (int p = 0; p < num_parts; ++p) {
    for (int k = 0; k < 4; ++k) {
      QP_CHECK_OK(partsupp.AppendRow(
          {db::Value::Int(p),
           db::Value::Int(rng.UniformInt(0, num_suppliers - 1)),
           db::Value::Int(rng.UniformInt(1, 9999)),
           db::Value::Int(rng.UniformInt(100, 100000))}));
    }
  }
  QP_CHECK_OK(database->AddTable(std::move(partsupp)));

  // customer(c_custkey, c_name, c_nationkey, c_acctbal, c_mktsegment)
  static const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                    "MACHINERY", "HOUSEHOLD"};
  db::Table customer("customer",
                     db::Schema({{"c_custkey", db::ValueType::kInt},
                                 {"c_name", db::ValueType::kString},
                                 {"c_nationkey", db::ValueType::kInt},
                                 {"c_acctbal", db::ValueType::kInt},
                                 {"c_mktsegment", db::ValueType::kString}}));
  for (int c = 0; c < num_customers; ++c) {
    QP_CHECK_OK(customer.AppendRow(
        {db::Value::Int(c), db::Value::Str(StrCat("Customer#", c)),
         db::Value::Int(rng.UniformInt(0, 24)),
         db::Value::Int(rng.UniformInt(-99999, 999999)),
         db::Value::Str(kSegments[rng.UniformInt(0, 4)])}));
  }
  QP_CHECK_OK(database->AddTable(std::move(customer)));

  // orders(o_orderkey, o_custkey, o_orderstatus, o_totalprice, o_orderyear,
  //        o_orderpriority)
  db::Table orders("orders",
                   db::Schema({{"o_orderkey", db::ValueType::kInt},
                               {"o_custkey", db::ValueType::kInt},
                               {"o_orderstatus", db::ValueType::kString},
                               {"o_totalprice", db::ValueType::kInt},
                               {"o_orderyear", db::ValueType::kInt},
                               {"o_orderpriority", db::ValueType::kString}}));
  static const char* kStatuses[] = {"O", "F", "P"};
  for (int o = 0; o < num_orders; ++o) {
    QP_CHECK_OK(orders.AppendRow(
        {db::Value::Int(o), db::Value::Int(rng.UniformInt(0, num_customers - 1)),
         db::Value::Str(kStatuses[rng.UniformInt(0, 2)]),
         db::Value::Int(rng.UniformInt(100000, 50000000)),
         db::Value::Int(rng.UniformInt(1993, 1998)),
         db::Value::Str(kPriorities[rng.UniformInt(0, 4)])}));
  }
  QP_CHECK_OK(database->AddTable(std::move(orders)));

  // lineitem(l_orderkey, l_partkey, l_quantity, l_extendedprice,
  //          l_discount, l_returnflag, l_linestatus, l_shipyear,
  //          l_receiptyear, l_shipmode)
  db::Table lineitem("lineitem",
                     db::Schema({{"l_orderkey", db::ValueType::kInt},
                                 {"l_partkey", db::ValueType::kInt},
                                 {"l_quantity", db::ValueType::kInt},
                                 {"l_extendedprice", db::ValueType::kInt},
                                 {"l_discount", db::ValueType::kInt},
                                 {"l_returnflag", db::ValueType::kString},
                                 {"l_linestatus", db::ValueType::kString},
                                 {"l_shipyear", db::ValueType::kInt},
                                 {"l_receiptyear", db::ValueType::kInt},
                                 {"l_shipmode", db::ValueType::kString}}));
  static const char* kReturnFlags[] = {"R", "A", "N"};
  for (int l = 0; l < num_lineitems; ++l) {
    int ship_year = static_cast<int>(rng.UniformInt(1993, 1998));
    QP_CHECK_OK(lineitem.AppendRow(
        {db::Value::Int(rng.UniformInt(0, num_orders - 1)),
         db::Value::Int(rng.UniformInt(0, num_parts - 1)),
         db::Value::Int(rng.UniformInt(1, 50)),
         db::Value::Int(rng.UniformInt(100000, 10000000)),
         db::Value::Int(rng.UniformInt(0, 10)),  // percent
         db::Value::Str(kReturnFlags[rng.UniformInt(0, 2)]),
         db::Value::Str(rng.Bernoulli(0.5) ? "O" : "F"),
         db::Value::Int(ship_year),
         db::Value::Int(std::min(1998, ship_year + (rng.Bernoulli(0.3) ? 1 : 0))),
         db::Value::Str(kShipModes[rng.UniformInt(0, 6)])}));
  }
  QP_CHECK_OK(database->AddTable(std::move(lineitem)));
  return database;
}

}  // namespace qp::workload
