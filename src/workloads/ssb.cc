#include "workloads/ssb.h"

#include <algorithm>

#include "common/rng.h"
#include "common/str_util.h"

namespace qp::workload {

namespace {
const char* kSsbRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                             "MIDDLE EAST"};
}  // namespace

std::unique_ptr<db::Database> MakeSsbData(const SsbOptions& options) {
  Rng rng(Mix64(options.seed ^ 0x55bu));
  auto database = std::make_unique<db::Database>();
  const double sf = options.scale_factor;
  const int num_dates = 7 * 365;  // 1992..1998
  const int num_customers = std::max(300, static_cast<int>(30000 * sf));
  const int num_suppliers = std::max(100, static_cast<int>(2000 * sf));
  const int num_parts = std::max(200, static_cast<int>(200000 * sf));
  const int num_lineorders = std::max(1000, static_cast<int>(6000000 * sf));

  // Consistent geography: city i belongs to nation i % 25, nation n to
  // region n % 5.
  auto city_name = [](int i) { return StrCat("CITY", i); };
  auto nation_name = [](int n) { return StrCat("NATION", n); };

  db::Table date("date", db::Schema({{"d_datekey", db::ValueType::kInt},
                                     {"d_year", db::ValueType::kInt},
                                     {"d_month", db::ValueType::kInt},
                                     {"d_weeknum", db::ValueType::kInt}}));
  for (int d = 0; d < num_dates; ++d) {
    QP_CHECK_OK(date.AppendRow({db::Value::Int(d),
                                db::Value::Int(1992 + d / 365),
                                db::Value::Int(1 + (d / 30) % 12),
                                db::Value::Int(1 + (d / 7) % 52)}));
  }
  QP_CHECK_OK(database->AddTable(std::move(date)));

  db::Table customer("customer",
                     db::Schema({{"c_custkey", db::ValueType::kInt},
                                 {"c_name", db::ValueType::kString},
                                 {"c_city", db::ValueType::kString},
                                 {"c_nation", db::ValueType::kString},
                                 {"c_region", db::ValueType::kString}}));
  for (int c = 0; c < num_customers; ++c) {
    int city = static_cast<int>(rng.UniformInt(0, 249));
    int nat = city % 25;
    QP_CHECK_OK(customer.AppendRow(
        {db::Value::Int(c), db::Value::Str(StrCat("Customer#", c)),
         db::Value::Str(city_name(city)), db::Value::Str(nation_name(nat)),
         db::Value::Str(kSsbRegions[nat % 5])}));
  }
  QP_CHECK_OK(database->AddTable(std::move(customer)));

  db::Table supplier("supplier",
                     db::Schema({{"s_suppkey", db::ValueType::kInt},
                                 {"s_name", db::ValueType::kString},
                                 {"s_city", db::ValueType::kString},
                                 {"s_nation", db::ValueType::kString},
                                 {"s_region", db::ValueType::kString}}));
  for (int s = 0; s < num_suppliers; ++s) {
    int city = static_cast<int>(rng.UniformInt(0, 249));
    int nat = city % 25;
    QP_CHECK_OK(supplier.AppendRow(
        {db::Value::Int(s), db::Value::Str(StrCat("Supplier#", s)),
         db::Value::Str(city_name(city)), db::Value::Str(nation_name(nat)),
         db::Value::Str(kSsbRegions[nat % 5])}));
  }
  QP_CHECK_OK(database->AddTable(std::move(supplier)));

  db::Table part("part", db::Schema({{"p_partkey", db::ValueType::kInt},
                                     {"p_name", db::ValueType::kString},
                                     {"p_category", db::ValueType::kString},
                                     {"p_brand", db::ValueType::kString},
                                     {"p_color", db::ValueType::kString}}));
  static const char* kColors[] = {"red", "green", "blue", "ivory", "plum"};
  for (int p = 0; p < num_parts; ++p) {
    int category = static_cast<int>(rng.UniformInt(1, 25));
    QP_CHECK_OK(part.AppendRow(
        {db::Value::Int(p), db::Value::Str(StrCat("Part#", p)),
         db::Value::Str(StrCat("MFGR#", category)),
         db::Value::Str(StrCat("MFGR#", category, "-", rng.UniformInt(1, 40))),
         db::Value::Str(kColors[rng.UniformInt(0, 4)])}));
  }
  QP_CHECK_OK(database->AddTable(std::move(part)));

  db::Table lineorder(
      "lineorder", db::Schema({{"lo_orderkey", db::ValueType::kInt},
                               {"lo_custkey", db::ValueType::kInt},
                               {"lo_suppkey", db::ValueType::kInt},
                               {"lo_partkey", db::ValueType::kInt},
                               {"lo_orderdatekey", db::ValueType::kInt},
                               {"lo_quantity", db::ValueType::kInt},
                               {"lo_extendedprice", db::ValueType::kInt},
                               {"lo_discount", db::ValueType::kInt},
                               {"lo_revenue", db::ValueType::kInt}}));
  for (int l = 0; l < num_lineorders; ++l) {
    QP_CHECK_OK(lineorder.AppendRow(
        {db::Value::Int(l / 4),
         db::Value::Int(rng.UniformInt(0, num_customers - 1)),
         db::Value::Int(rng.UniformInt(0, num_suppliers - 1)),
         db::Value::Int(rng.UniformInt(0, num_parts - 1)),
         db::Value::Int(rng.UniformInt(0, num_dates - 1)),
         db::Value::Int(rng.UniformInt(1, 50)),
         db::Value::Int(rng.UniformInt(100000, 10000000)),
         db::Value::Int(rng.UniformInt(0, 10)),
         db::Value::Int(rng.UniformInt(80000, 9000000))}));
  }
  QP_CHECK_OK(database->AddTable(std::move(lineorder)));
  return database;
}

}  // namespace qp::workload
