// The 220 TPC-H workload queries (paper Appendix C): Q1/Q4/Q6/Q12
// parameterized by year (1993..1997), Q2 by region, Q16 by the 150 p_type
// values, Q17 by the 40 containers, and Q2 by the 5 p_type materials.
#include "common/str_util.h"
#include "db/parser.h"
#include "workloads/tpch.h"

namespace qp::workload {

namespace {

std::vector<std::string> TpchWorkloadSql() {
  std::vector<std::string> sql;
  // Q1/Q4/Q6/Q12 per year: 4 x 5 = 20.
  for (int year = 1993; year <= 1997; ++year) {
    // Q1: pricing summary report (year cutoff instead of shipdate delta).
    sql.push_back(StrCat(
        "select l_returnflag, l_linestatus, sum(l_quantity), "
        "sum(l_extendedprice), count(*) from lineitem where l_shipyear <= ",
        year, " group by l_returnflag, l_linestatus"));
    // Q4: order-priority checking (orders joined with lineitem).
    sql.push_back(StrCat(
        "select o_orderpriority, count(*) from orders, lineitem where "
        "o_orderkey = l_orderkey and o_orderyear = ",
        year, " group by o_orderpriority"));
    // Q6: forecasting revenue change.
    sql.push_back(StrCat(
        "select sum(l_extendedprice) from lineitem where l_shipyear = ", year,
        " and l_discount between 5 and 7 and l_quantity < 24"));
    // Q12: shipping modes and order priority.
    sql.push_back(StrCat(
        "select l_shipmode, count(*) from orders, lineitem where o_orderkey "
        "= l_orderkey and l_receiptyear = ",
        year, " group by l_shipmode"));
  }
  // Q2 per region: 5 (minimum-cost supplier, 2-table core).
  for (const char* region :
       {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}) {
    sql.push_back(StrCat(
        "select min(ps_supplycost) from supplier, partsupp where s_suppkey "
        "= ps_suppkey and s_regionname = '",
        region, "'"));
  }
  // Q16 per p_type: 150 (supplier counts by part type).
  for (const std::string& type : TpchPartTypes()) {
    sql.push_back(StrCat(
        "select count(distinct ps_suppkey) from part, partsupp where "
        "p_partkey = ps_partkey and p_type = '",
        type, "'"));
  }
  // Q17 per container: 40 (small-quantity-order revenue).
  for (const std::string& container : TpchContainers()) {
    sql.push_back(StrCat(
        "select avg(l_quantity) from part, lineitem where p_partkey = "
        "l_partkey and p_container = '",
        container, "'"));
  }
  // Q2 per material: 5 (p_type suffix match).
  for (const std::string& material : TpchMaterials()) {
    sql.push_back(StrCat(
        "select min(ps_supplycost) from part, partsupp where p_partkey = "
        "ps_partkey and p_type like '%",
        material, "'"));
  }
  return sql;
}

}  // namespace

Result<WorkloadInstance> MakeTpchWorkload(const TpchOptions& options) {
  WorkloadInstance out;
  out.name = "TPC-H";
  out.database = MakeTpchData(options);
  out.sql = TpchWorkloadSql();
  out.queries.reserve(out.sql.size());
  for (const std::string& statement : out.sql) {
    QP_ASSIGN_OR_RETURN(db::BoundQuery q,
                        db::ParseQuery(statement, *out.database));
    out.queries.push_back(std::move(q));
  }
  return out;
}

}  // namespace qp::workload
