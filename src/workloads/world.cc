#include "workloads/world.h"

#include <algorithm>

#include "common/rng.h"
#include "common/str_util.h"

namespace qp::workload {

namespace {

constexpr int kNumCountries = 235;
constexpr int kNumCities = 4000;
constexpr int kNumLanguageRows = 765;
constexpr int kNumLanguages = 120;

const char* kContinents[] = {"Asia",          "Europe",       "North America",
                             "Africa",        "Oceania",      "Antarctica",
                             "South America"};

const char* kGovernmentForms[] = {"Republic",
                                  "Constitutional Monarchy",
                                  "Federal Republic",
                                  "Monarchy",
                                  "Federation",
                                  "Parliamentary Democracy"};

uint64_t HashSalt(const char* salt) {
  uint64_t h = 1469598103934665603ULL;
  for (const char* p = salt; *p != 0; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ULL;
  }
  return h;
}

// Pronounceable deterministic names: alternating consonant/vowel syllables
// seeded by an index, with the leading letter cycling A..Z so that LIKE
// 'A%' style predicates select a stable fraction.
std::string SyntheticName(int index, const char* salt) {
  static const char* kOnsets[] = {"b", "c", "d", "f", "g", "k", "l",
                                  "m", "n", "r", "s", "t", "v", "z"};
  static const char* kVowels[] = {"a", "e", "i", "o", "u"};
  uint64_t h = Mix64(static_cast<uint64_t>(index) ^ HashSalt(salt));
  std::string name;
  name.push_back(static_cast<char>('A' + index % 26));
  int syllables = 2 + static_cast<int>(h % 3);
  for (int s = 0; s < syllables; ++s) {
    h = Mix64(h);
    name += kVowels[h % 5];
    h = Mix64(h);
    name += kOnsets[h % 14];
  }
  name += kVowels[Mix64(h) % 5];
  return name;
}

}  // namespace

WorldData MakeWorldData(uint64_t seed) {
  Rng rng(seed);
  WorldData out;
  out.database = std::make_unique<db::Database>();

  for (const char* c : kContinents) out.continents.push_back(c);
  for (int r = 0; r < 25; ++r) {
    out.regions.push_back(SyntheticName(r, "region") + " Region");
  }
  for (int l = 0; l < kNumLanguages; ++l) {
    out.languages.push_back(SyntheticName(l, "language"));
  }

  // --- Country ------------------------------------------------------------
  db::Table country("Country",
                    db::Schema({{"Code", db::ValueType::kString},
                                {"Name", db::ValueType::kString},
                                {"Continent", db::ValueType::kString},
                                {"Region", db::ValueType::kString},
                                {"SurfaceArea", db::ValueType::kInt},
                                {"IndepYear", db::ValueType::kInt},
                                {"Population", db::ValueType::kInt},
                                {"LifeExpectancy", db::ValueType::kDouble},
                                {"GNP", db::ValueType::kInt},
                                {"GovernmentForm", db::ValueType::kString},
                                {"HeadOfState", db::ValueType::kString},
                                {"Capital", db::ValueType::kInt}}));
  std::vector<std::string> names;
  for (int i = 0; i < kNumCountries; ++i) {
    std::string name = SyntheticName(i, "country");
    std::string code = ToUpper(name.substr(0, 2)) +
                       static_cast<char>('A' + (i / 26) % 26);
    // Make codes unique by suffixing the index when the prefix collides.
    code += static_cast<char>('A' + i % 26);
    out.country_codes.push_back(code);
    names.push_back(name);
    int64_t population = rng.UniformInt(50'000, 1'400'000'000 / 500) *
                         (1 + rng.UniformInt(0, 499));
    QP_CHECK_OK(country.AppendRow(
        {db::Value::Str(code), db::Value::Str(name),
         db::Value::Str(out.continents[rng.UniformInt(0, 6)]),
         db::Value::Str(out.regions[rng.UniformInt(0, 24)]),
         db::Value::Int(rng.UniformInt(1'000, 17'000'000)),
         db::Value::Int(rng.UniformInt(1200, 1999)),
         db::Value::Int(population),
         db::Value::Real(
             static_cast<double>(rng.UniformInt(450, 850)) / 10.0),
         db::Value::Int(rng.UniformInt(100, 20'000'000)),
         db::Value::Str(kGovernmentForms[rng.UniformInt(0, 5)]),
         db::Value::Str(SyntheticName(i + 1000, "head")),
         db::Value::Int(1 + rng.UniformInt(0, kNumCities - 1))}));
  }
  QP_CHECK_OK(out.database->AddTable(std::move(country)));

  // --- City ---------------------------------------------------------------
  db::Table city("City", db::Schema({{"ID", db::ValueType::kInt},
                                     {"Name", db::ValueType::kString},
                                     {"CountryCode", db::ValueType::kString},
                                     {"District", db::ValueType::kString},
                                     {"Population", db::ValueType::kInt}}));
  for (int i = 0; i < kNumCities; ++i) {
    // Skewed city populations: many small, a few metropolises.
    int64_t pop = rng.UniformInt(5'000, 200'000);
    if (rng.Bernoulli(0.08)) pop = rng.UniformInt(1'000'000, 25'000'000);
    QP_CHECK_OK(city.AppendRow(
        {db::Value::Int(i + 1), db::Value::Str(SyntheticName(i, "city")),
         db::Value::Str(out.country_codes[rng.UniformInt(0, kNumCountries - 1)]),
         db::Value::Str(SyntheticName(i % 300, "district")),
         db::Value::Int(pop)}));
  }
  QP_CHECK_OK(out.database->AddTable(std::move(city)));

  // --- CountryLanguage ------------------------------------------------------
  db::Table lang("CountryLanguage",
                 db::Schema({{"CountryCode", db::ValueType::kString},
                             {"Language", db::ValueType::kString},
                             {"IsOfficial", db::ValueType::kString},
                             {"Percentage", db::ValueType::kInt}}));
  // Every country gets at least one language; remaining rows are spread
  // randomly, keeping (country, language) pairs unique.
  int rows = 0;
  std::vector<std::vector<int>> used(kNumCountries);
  for (int c = 0; c < kNumCountries && rows < kNumLanguageRows; ++c, ++rows) {
    int l = static_cast<int>(rng.UniformInt(0, kNumLanguages - 1));
    used[c].push_back(l);
    QP_CHECK_OK(lang.AppendRow({db::Value::Str(out.country_codes[c]),
                                db::Value::Str(out.languages[l]),
                                db::Value::Str("T"),
                                db::Value::Int(rng.UniformInt(30, 100))}));
  }
  while (rows < kNumLanguageRows) {
    int c = static_cast<int>(rng.UniformInt(0, kNumCountries - 1));
    int l = static_cast<int>(rng.UniformInt(0, kNumLanguages - 1));
    if (std::find(used[c].begin(), used[c].end(), l) != used[c].end()) continue;
    used[c].push_back(l);
    QP_CHECK_OK(lang.AppendRow({db::Value::Str(out.country_codes[c]),
                                db::Value::Str(out.languages[l]),
                                db::Value::Str(rng.Bernoulli(0.3) ? "T" : "F"),
                                db::Value::Int(rng.UniformInt(1, 60))}));
    ++rows;
  }
  QP_CHECK_OK(out.database->AddTable(std::move(lang)));
  return out;
}

}  // namespace qp::workload
