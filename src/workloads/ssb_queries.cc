// The 701 SSB workload queries (see ssb.h for the flight breakdown).
#include "common/str_util.h"
#include "db/parser.h"
#include "workloads/ssb.h"

namespace qp::workload {

namespace {

std::vector<std::string> SsbWorkloadSql() {
  std::vector<std::string> sql;
  // Flight 1: 3 templates x 7 years = 21 (lineorder x date).
  for (int year = 1992; year <= 1998; ++year) {
    sql.push_back(StrCat(
        "select sum(lo_revenue) from lineorder, date where lo_orderdatekey "
        "= d_datekey and d_year = ",
        year, " and lo_discount between 1 and 3 and lo_quantity < 25"));
    sql.push_back(StrCat(
        "select sum(lo_revenue) from lineorder, date where lo_orderdatekey "
        "= d_datekey and d_year = ",
        year, " and lo_discount between 4 and 6 and lo_quantity between 26 "
              "and 35"));
    sql.push_back(StrCat(
        "select sum(lo_revenue), count(*) from lineorder, date where "
        "lo_orderdatekey = d_datekey and d_year = ",
        year, " and lo_discount between 5 and 7"));
  }
  // Flight 2: 6 templates x 5 regions = 30 (lineorder x supplier).
  for (const char* region :
       {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}) {
    sql.push_back(StrCat(
        "select sum(lo_revenue) from lineorder, supplier where lo_suppkey = "
        "s_suppkey and s_region = '",
        region, "'"));
    sql.push_back(StrCat(
        "select count(*) from lineorder, supplier where lo_suppkey = "
        "s_suppkey and s_region = '",
        region, "'"));
    sql.push_back(StrCat(
        "select s_nation, sum(lo_revenue) from lineorder, supplier where "
        "lo_suppkey = s_suppkey and s_region = '",
        region, "' group by s_nation"));
    sql.push_back(StrCat(
        "select avg(lo_quantity) from lineorder, supplier where lo_suppkey "
        "= s_suppkey and s_region = '",
        region, "'"));
    sql.push_back(StrCat(
        "select max(lo_revenue) from lineorder, supplier where lo_suppkey = "
        "s_suppkey and s_region = '",
        region, "'"));
    sql.push_back(StrCat(
        "select count(distinct lo_custkey) from lineorder, supplier where "
        "lo_suppkey = s_suppkey and s_region = '",
        region, "'"));
  }
  // Flight 3: 2 templates x 250 customer cities = 500.
  for (int city = 0; city < 250; ++city) {
    sql.push_back(StrCat(
        "select sum(lo_revenue) from lineorder, customer where lo_custkey = "
        "c_custkey and c_city = 'CITY",
        city, "'"));
    sql.push_back(StrCat(
        "select count(*) from lineorder, customer where lo_custkey = "
        "c_custkey and c_city = 'CITY",
        city, "'"));
  }
  // Flight 4: every (region, nation) pair = 125.
  for (const char* region :
       {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}) {
    for (int nation = 0; nation < 25; ++nation) {
      sql.push_back(StrCat(
          "select sum(lo_revenue) from lineorder, supplier where lo_suppkey "
          "= s_suppkey and s_region = '",
          region, "' and s_nation = 'NATION", nation, "'"));
    }
  }
  // Flight 4b: per nation = 25.
  for (int nation = 0; nation < 25; ++nation) {
    sql.push_back(StrCat(
        "select count(*) from lineorder, supplier where lo_suppkey = "
        "s_suppkey and s_nation = 'NATION",
        nation, "'"));
  }
  return sql;
}

}  // namespace

Result<WorkloadInstance> MakeSsbWorkload(const SsbOptions& options) {
  WorkloadInstance out;
  out.name = "SSB";
  out.database = MakeSsbData(options);
  out.sql = SsbWorkloadSql();
  out.queries.reserve(out.sql.size());
  for (const std::string& statement : out.sql) {
    QP_ASSIGN_OR_RETURN(db::BoundQuery q,
                        db::ParseQuery(statement, *out.database));
    out.queries.push_back(std::move(q));
  }
  return out;
}

}  // namespace qp::workload
