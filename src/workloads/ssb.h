// Star Schema Benchmark-shaped dataset + the paper's 701-query workload.
//
// Parameterization (paper Appendix C: year 7, region 5, nation 25,
// city 250), mapped onto one-dimension joins (substitutions in DESIGN.md):
//   flight 1: 3 templates x 7 years            = 21   (lineorder x date)
//   flight 2: 6 templates x 5 regions          = 30   (lineorder x supplier)
//   flight 3: 2 templates x 250 customer cities = 500 (lineorder x customer)
//   flight 4: 5 regions x 25 nations            = 125 (lineorder x supplier)
//   flight 4b: 25 nations                       = 25  (lineorder x supplier)
//   total                                       = 701
#ifndef QP_WORKLOADS_SSB_H_
#define QP_WORKLOADS_SSB_H_

#include "common/status.h"
#include "workloads/workload.h"

namespace qp::workload {

struct SsbOptions {
  double scale_factor = 0.01;
  uint64_t seed = 7;
};

/// Generates the SSB-shaped database (date, customer, supplier, part,
/// lineorder).
std::unique_ptr<db::Database> MakeSsbData(const SsbOptions& options);

/// The 701-query workload bound against a freshly generated database.
Result<WorkloadInstance> MakeSsbWorkload(const SsbOptions& options = {});

}  // namespace qp::workload

#endif  // QP_WORKLOADS_SSB_H_
