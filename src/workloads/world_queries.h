// The skewed query workload: the 34 Table-7 queries expanded to exactly
// 986 (paper Appendix B): one query per country for Q17/Q27/Q31, per
// continent for Q1/Q12, per language for Q29/Q30; the other 27 templates
// contribute one query each.
#ifndef QP_WORKLOADS_WORLD_QUERIES_H_
#define QP_WORKLOADS_WORLD_QUERIES_H_

#include "common/status.h"
#include "workloads/workload.h"
#include "workloads/world.h"

namespace qp::workload {

/// SQL text of the 986 skewed-workload queries.
std::vector<std::string> SkewedWorkloadSql(const WorldData& world);

/// Parses and binds the skewed workload against the world database.
Result<WorkloadInstance> MakeSkewedWorkload(uint64_t seed = 7);

/// The uniform query workload (paper Section 6.2): `count` select-star
/// range selections over City with identical selectivity (window covering
/// ~40% of the table), which yields the paper's shape: hyperedge sizes
/// concentrated around 0.3-0.4 n with high overlap.
Result<WorkloadInstance> MakeUniformWorkload(uint64_t seed = 7,
                                             int count = 1000,
                                             double selectivity = 0.4);

}  // namespace qp::workload

#endif  // QP_WORKLOADS_WORLD_QUERIES_H_
