#include "lp/lp_model.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace qp::lp {

int LpModel::AddVariable(double lower, double upper, double objective) {
  variables_.push_back(Variable{lower, upper, objective});
  return static_cast<int>(variables_.size()) - 1;
}

int LpModel::AddConstraint(ConstraintSense sense, double rhs,
                           std::vector<std::pair<int, double>> terms) {
  // Merge duplicate variables so the solver sees each column once per row.
  std::sort(terms.begin(), terms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<int, double>> merged;
  merged.reserve(terms.size());
  for (const auto& [var, coeff] : terms) {
    if (!merged.empty() && merged.back().first == var) {
      merged.back().second += coeff;
    } else {
      merged.emplace_back(var, coeff);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const auto& t) { return t.second == 0.0; }),
               merged.end());
  constraints_.push_back(Constraint{sense, rhs, std::move(merged)});
  return static_cast<int>(constraints_.size()) - 1;
}

Status LpModel::Validate() const {
  for (int j = 0; j < num_variables(); ++j) {
    const Variable& v = variables_[j];
    if (std::isnan(v.lower) || std::isnan(v.upper) || std::isnan(v.objective) ||
        std::isinf(v.objective)) {
      return Status::InvalidArgument(
          StrCat("variable ", j, " has NaN/Inf bound or objective"));
    }
    if (v.lower > v.upper) {
      return Status::InvalidArgument(
          StrCat("variable ", j, " has lower > upper"));
    }
  }
  for (int i = 0; i < num_constraints(); ++i) {
    const Constraint& c = constraints_[i];
    if (std::isnan(c.rhs) || std::isinf(c.rhs)) {
      return Status::InvalidArgument(StrCat("constraint ", i, " has NaN/Inf rhs"));
    }
    for (const auto& [var, coeff] : c.terms) {
      if (var < 0 || var >= num_variables()) {
        return Status::InvalidArgument(
            StrCat("constraint ", i, " references unknown variable ", var));
      }
      if (std::isnan(coeff) || std::isinf(coeff)) {
        return Status::InvalidArgument(
            StrCat("constraint ", i, " has NaN/Inf coefficient"));
      }
    }
  }
  return Status::OK();
}

double LpModel::ObjectiveValue(const std::vector<double>& x) const {
  double obj = 0.0;
  for (int j = 0; j < num_variables(); ++j) obj += variables_[j].objective * x[j];
  return obj;
}

double LpModel::MaxInfeasibility(const std::vector<double>& x) const {
  double worst = 0.0;
  for (int j = 0; j < num_variables(); ++j) {
    worst = std::max(worst, variables_[j].lower - x[j]);
    worst = std::max(worst, x[j] - variables_[j].upper);
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : c.terms) lhs += coeff * x[var];
    switch (c.sense) {
      case ConstraintSense::kLe:
        worst = std::max(worst, lhs - c.rhs);
        break;
      case ConstraintSense::kGe:
        worst = std::max(worst, c.rhs - lhs);
        break;
      case ConstraintSense::kEq:
        worst = std::max(worst, std::abs(lhs - c.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace qp::lp
