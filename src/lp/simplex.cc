#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace qp::lp {

const char* SolveStatusToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "Optimal";
    case SolveStatus::kInfeasible:
      return "Infeasible";
    case SolveStatus::kUnbounded:
      return "Unbounded";
    case SolveStatus::kIterationLimit:
      return "IterationLimit";
    case SolveStatus::kNumericalFailure:
      return "NumericalFailure";
  }
  return "Unknown";
}

namespace {

enum class VarStatus : uint8_t { kBasic, kAtLower, kAtUpper, kFreeZero };

// Internal solver state for one SolveLp call. Computational form:
//   min c'x   s.t.  Ax = b,  lo <= x <= up
// Columns: [0, ns) structural, [ns, ns+m) slacks, [ns+m, ...) artificials.
class Simplex {
 public:
  Simplex(const LpModel& model, const SimplexOptions& options)
      : model_(model), opts_(options) {}

  LpSolution Solve();

 private:
  enum class IterateResult { kOptimal, kUnbounded, kIterLimit, kNumFail };

  void BuildProblem();
  void BuildInitialBasis();
  bool Refactorize();
  void RecomputeBasicValues();
  IterateResult Iterate(int phase);
  bool DriveOutArtificials();
  LpSolution ExtractSolution(SolveStatus status);
  LpSolution SolveWithoutConstraints();

  double NonbasicValue(int j) const {
    switch (status_[j]) {
      case VarStatus::kAtLower:
        return lo_[j];
      case VarStatus::kAtUpper:
        return up_[j];
      case VarStatus::kFreeZero:
        return 0.0;
      case VarStatus::kBasic:
        break;
    }
    assert(false);
    return 0.0;
  }

  // Sparse column access.
  struct ColRange {
    const int* rows;
    const double* vals;
    int size;
  };
  ColRange Col(int j) const {
    int begin = col_start_[j];
    int end = col_start_[j + 1];
    return {col_row_.data() + begin, col_val_.data() + begin, end - begin};
  }

  const LpModel& model_;
  SimplexOptions opts_;

  int m_ = 0;        // rows
  int ns_ = 0;       // structural columns
  int n_price_ = 0;  // columns eligible for pricing (= ns_ + m_)
  int n_total_ = 0;  // including artificials

  // CSC matrix over all columns.
  std::vector<int> col_start_;
  std::vector<int> col_row_;
  std::vector<double> col_val_;

  std::vector<double> lo_, up_;
  std::vector<double> cost_;    // phase-2 (real, internal-min) costs
  std::vector<double> b_;
  std::vector<VarStatus> status_;

  std::vector<int> basic_var_;  // row -> column index
  std::vector<int> basic_pos_;  // column -> row index or -1
  std::vector<double> xb_;      // basic values, aligned with basic_var_
  std::vector<double> binv_;    // dense m x m, row-major

  std::vector<double> work_y_;  // BTRAN result
  std::vector<double> work_w_;  // FTRAN result

  bool maximize_ = false;
  int iterations_ = 0;
  int phase1_iterations_ = 0;
  int pivots_since_refactor_ = 0;
  int max_iterations_ = 0;
};

void Simplex::BuildProblem() {
  m_ = model_.num_constraints();
  ns_ = model_.num_variables();
  n_price_ = ns_ + m_;
  maximize_ = model_.sense() == ObjectiveSense::kMaximize;

  // Row-major -> CSC for structural columns.
  std::vector<int> col_counts(ns_, 0);
  for (int i = 0; i < m_; ++i) {
    for (const auto& [var, coeff] : model_.constraint(i).terms) {
      (void)coeff;
      col_counts[var]++;
    }
  }
  col_start_.assign(n_price_ + 1, 0);
  for (int j = 0; j < ns_; ++j) col_start_[j + 1] = col_start_[j] + col_counts[j];
  for (int j = ns_; j < n_price_; ++j) col_start_[j + 1] = col_start_[j] + 1;
  col_row_.resize(col_start_[n_price_]);
  col_val_.resize(col_start_[n_price_]);
  std::vector<int> fill(ns_, 0);
  for (int i = 0; i < m_; ++i) {
    for (const auto& [var, coeff] : model_.constraint(i).terms) {
      int pos = col_start_[var] + fill[var]++;
      col_row_[pos] = i;
      col_val_[pos] = coeff;
    }
  }
  // Slack columns.
  for (int i = 0; i < m_; ++i) {
    int j = ns_ + i;
    col_row_[col_start_[j]] = i;
    col_val_[col_start_[j]] = 1.0;
  }

  lo_.resize(n_price_);
  up_.resize(n_price_);
  cost_.assign(n_price_, 0.0);
  b_.resize(m_);
  for (int j = 0; j < ns_; ++j) {
    const Variable& v = model_.variable(j);
    lo_[j] = v.lower;
    up_[j] = v.upper;
    cost_[j] = maximize_ ? -v.objective : v.objective;
  }
  for (int i = 0; i < m_; ++i) {
    const Constraint& c = model_.constraint(i);
    b_[i] = c.rhs;
    int j = ns_ + i;
    switch (c.sense) {
      case ConstraintSense::kLe:
        lo_[j] = 0.0;
        up_[j] = kInf;
        break;
      case ConstraintSense::kGe:
        lo_[j] = -kInf;
        up_[j] = 0.0;
        break;
      case ConstraintSense::kEq:
        lo_[j] = 0.0;
        up_[j] = 0.0;
        break;
    }
  }
  n_total_ = n_price_;
}

void Simplex::BuildInitialBasis() {
  status_.assign(n_price_, VarStatus::kAtLower);
  for (int j = 0; j < n_price_; ++j) {
    if (std::isfinite(lo_[j])) {
      status_[j] = VarStatus::kAtLower;
    } else if (std::isfinite(up_[j])) {
      status_[j] = VarStatus::kAtUpper;
    } else {
      status_[j] = VarStatus::kFreeZero;
    }
  }

  // Residual with all structural columns at their start values.
  std::vector<double> residual = b_;
  for (int j = 0; j < ns_; ++j) {
    double xj = NonbasicValue(j);
    if (xj == 0.0) continue;
    ColRange col = Col(j);
    for (int t = 0; t < col.size; ++t) residual[col.rows[t]] -= col.vals[t] * xj;
  }

  basic_var_.assign(m_, -1);
  xb_.assign(m_, 0.0);
  std::vector<double> diag(m_, 1.0);
  for (int i = 0; i < m_; ++i) {
    int slack = ns_ + i;
    double sval = residual[i];
    if (sval >= lo_[slack] - opts_.feasibility_tol &&
        sval <= up_[slack] + opts_.feasibility_tol) {
      // Slack basic and feasible.
      basic_var_[i] = slack;
      status_[slack] = VarStatus::kBasic;
      xb_[i] = sval;
    } else {
      // Slack pinned to its nearest bound; artificial covers the rest.
      double pin = (sval < lo_[slack]) ? lo_[slack] : up_[slack];
      status_[slack] = (pin == lo_[slack] && std::isfinite(lo_[slack]))
                           ? VarStatus::kAtLower
                           : VarStatus::kAtUpper;
      if (!std::isfinite(pin)) pin = 0.0;  // Ge rows pin at upper bound 0.
      double rem = sval - pin;
      int art = n_total_++;
      col_start_.push_back(static_cast<int>(col_row_.size()) + 1);
      col_row_.push_back(i);
      col_val_.push_back(rem >= 0.0 ? 1.0 : -1.0);
      lo_.push_back(0.0);
      up_.push_back(kInf);
      cost_.push_back(0.0);  // phase-2 cost; phase 1 uses its own costs
      status_.push_back(VarStatus::kBasic);
      basic_var_[i] = art;
      xb_[i] = std::abs(rem);
      diag[i] = (rem >= 0.0) ? 1.0 : -1.0;
    }
  }

  basic_pos_.assign(n_total_, -1);
  for (int i = 0; i < m_; ++i) basic_pos_[basic_var_[i]] = i;

  // Initial basis matrix is diagonal (+1 slacks, +/-1 artificials).
  binv_.assign(static_cast<size_t>(m_) * m_, 0.0);
  for (int i = 0; i < m_; ++i) binv_[static_cast<size_t>(i) * m_ + i] = 1.0 / diag[i];
}

bool Simplex::Refactorize() {
  // Dense Gauss-Jordan inversion of B with partial pivoting.
  const int m = m_;
  std::vector<double> mat(static_cast<size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) {
    ColRange col = Col(basic_var_[i]);
    for (int t = 0; t < col.size; ++t) {
      mat[static_cast<size_t>(col.rows[t]) * m + i] = col.vals[t];
    }
  }
  std::vector<double>& inv = binv_;
  inv.assign(static_cast<size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) inv[static_cast<size_t>(i) * m + i] = 1.0;

  for (int c = 0; c < m; ++c) {
    // Partial pivot on column c.
    int pivot_row = -1;
    double best = opts_.pivot_tol;
    for (int r = c; r < m; ++r) {
      double v = std::abs(mat[static_cast<size_t>(r) * m + c]);
      if (v > best) {
        best = v;
        pivot_row = r;
      }
    }
    if (pivot_row < 0) return false;  // singular basis
    if (pivot_row != c) {
      // Row swap is an ordinary row operation: applied to both `mat` and
      // `inv` it preserves inv * B = (row ops applied to I) * B.
      for (int k = 0; k < m; ++k) {
        std::swap(mat[static_cast<size_t>(pivot_row) * m + k],
                  mat[static_cast<size_t>(c) * m + k]);
        std::swap(inv[static_cast<size_t>(pivot_row) * m + k],
                  inv[static_cast<size_t>(c) * m + k]);
      }
    }
    double pivot = mat[static_cast<size_t>(c) * m + c];
    double inv_pivot = 1.0 / pivot;
    for (int k = 0; k < m; ++k) {
      mat[static_cast<size_t>(c) * m + k] *= inv_pivot;
      inv[static_cast<size_t>(c) * m + k] *= inv_pivot;
    }
    for (int r = 0; r < m; ++r) {
      if (r == c) continue;
      double f = mat[static_cast<size_t>(r) * m + c];
      if (f == 0.0) continue;
      double* mrow = &mat[static_cast<size_t>(r) * m];
      double* irow = &inv[static_cast<size_t>(r) * m];
      const double* mcrow = &mat[static_cast<size_t>(c) * m];
      const double* icrow = &inv[static_cast<size_t>(c) * m];
      for (int k = 0; k < m; ++k) {
        mrow[k] -= f * mcrow[k];
        irow[k] -= f * icrow[k];
      }
    }
  }
  pivots_since_refactor_ = 0;
  return true;
}

void Simplex::RecomputeBasicValues() {
  std::vector<double> residual = b_;
  for (int j = 0; j < n_total_; ++j) {
    if (status_[j] == VarStatus::kBasic) continue;
    double xj = NonbasicValue(j);
    if (xj == 0.0) continue;
    ColRange col = Col(j);
    for (int t = 0; t < col.size; ++t) residual[col.rows[t]] -= col.vals[t] * xj;
  }
  for (int i = 0; i < m_; ++i) {
    const double* row = &binv_[static_cast<size_t>(i) * m_];
    double sum = 0.0;
    for (int k = 0; k < m_; ++k) sum += row[k] * residual[k];
    xb_[i] = sum;
  }
}

Simplex::IterateResult Simplex::Iterate(int phase) {
  const double kBigStep = kInf;
  std::vector<double> phase_cost;
  const std::vector<double>* cost = &cost_;
  if (phase == 1) {
    phase_cost.assign(n_total_, 0.0);
    for (int j = n_price_; j < n_total_; ++j) phase_cost[j] = 1.0;
    cost = &phase_cost;
  }

  work_y_.assign(m_, 0.0);
  work_w_.assign(m_, 0.0);

  int iters_no_progress = 0;
  bool bland = false;

  while (true) {
    if (iterations_ >= max_iterations_) return IterateResult::kIterLimit;
    if (pivots_since_refactor_ >= opts_.refactor_interval) {
      if (!Refactorize()) return IterateResult::kNumFail;
      RecomputeBasicValues();
    }

    // BTRAN: y = (B^-1)' c_B, skipping zero basic costs.
    std::fill(work_y_.begin(), work_y_.end(), 0.0);
    for (int r = 0; r < m_; ++r) {
      double cb = (*cost)[basic_var_[r]];
      if (cb == 0.0) continue;
      const double* row = &binv_[static_cast<size_t>(r) * m_];
      for (int i = 0; i < m_; ++i) work_y_[i] += cb * row[i];
    }

    // Pricing (Dantzig, or Bland when stalled).
    int enter = -1;
    int dir = 0;
    double best_score = opts_.optimality_tol;
    for (int j = 0; j < n_price_; ++j) {
      VarStatus st = status_[j];
      if (st == VarStatus::kBasic) continue;
      if (lo_[j] == up_[j]) continue;  // fixed
      ColRange col = Col(j);
      double dj = (*cost)[j];
      for (int t = 0; t < col.size; ++t) dj -= work_y_[col.rows[t]] * col.vals[t];
      int candidate_dir = 0;
      if (st == VarStatus::kAtLower && dj < -opts_.optimality_tol) {
        candidate_dir = +1;
      } else if (st == VarStatus::kAtUpper && dj > opts_.optimality_tol) {
        candidate_dir = -1;
      } else if (st == VarStatus::kFreeZero &&
                 std::abs(dj) > opts_.optimality_tol) {
        candidate_dir = dj < 0 ? +1 : -1;
      }
      if (candidate_dir == 0) continue;
      if (bland) {
        enter = j;
        dir = candidate_dir;
        break;
      }
      double score = std::abs(dj);
      if (score > best_score) {
        best_score = score;
        enter = j;
        dir = candidate_dir;
      }
    }
    if (enter < 0) return IterateResult::kOptimal;

    // FTRAN: w = B^-1 A_enter.
    std::fill(work_w_.begin(), work_w_.end(), 0.0);
    {
      ColRange col = Col(enter);
      for (int t = 0; t < col.size; ++t) {
        double a = col.vals[t];
        int r = col.rows[t];
        for (int i = 0; i < m_; ++i) {
          work_w_[i] += binv_[static_cast<size_t>(i) * m_ + r] * a;
        }
      }
    }

    // Ratio test.
    double t_limit = kBigStep;
    if (std::isfinite(lo_[enter]) && std::isfinite(up_[enter])) {
      t_limit = up_[enter] - lo_[enter];  // bound flip distance
    }
    int leave = -1;
    double leave_alpha = 0.0;
    for (int i = 0; i < m_; ++i) {
      double alpha = dir * work_w_[i];
      if (std::abs(alpha) <= opts_.pivot_tol) continue;
      int bv = basic_var_[i];
      double lim;
      if (alpha > 0.0) {
        if (!std::isfinite(lo_[bv])) continue;
        lim = (xb_[i] - lo_[bv]) / alpha;
      } else {
        if (!std::isfinite(up_[bv])) continue;
        lim = (up_[bv] - xb_[i]) / (-alpha);
      }
      if (lim < 0.0) lim = 0.0;  // tolerate slight infeasibility
      const double tie_tol = 1e-10;
      if (lim < t_limit - tie_tol) {
        t_limit = lim;
        leave = i;
        leave_alpha = alpha;
      } else if (lim < t_limit + tie_tol) {
        if (leave < 0) {
          // Tie with the entering variable's bound-flip distance: prefer a
          // real pivot. Bound flips leave every constraint-row slack basic,
          // which yields all-zero dual prices on degenerate LPs (e.g. the
          // CIP welfare LP); a pivot produces an equally optimal vertex
          // with informative duals.
          t_limit = std::min(t_limit, lim);
          leave = i;
          leave_alpha = alpha;
        } else {
          // Tie among rows: prefer the larger pivot magnitude for
          // stability, or the smallest basic variable index under Bland.
          bool take = bland ? basic_var_[i] < basic_var_[leave]
                            : std::abs(alpha) > std::abs(leave_alpha);
          if (take) {
            t_limit = std::min(t_limit, lim);
            leave = i;
            leave_alpha = alpha;
          }
        }
      }
    }

    if (!std::isfinite(t_limit)) {
      return phase == 1 ? IterateResult::kNumFail : IterateResult::kUnbounded;
    }

    ++iterations_;
    if (phase == 1) ++phase1_iterations_;

    double step = t_limit;
    bool degenerate = step <= 1e-12;
    if (degenerate) {
      ++iters_no_progress;
      if (iters_no_progress >= opts_.stall_threshold) bland = true;
    } else {
      iters_no_progress = 0;
      // Bland's rule is only needed while stalled; drop back to Dantzig.
      bland = false;
    }

    if (leave < 0) {
      // Bound flip: entering variable jumps to its other bound.
      for (int i = 0; i < m_; ++i) xb_[i] -= dir * work_w_[i] * step;
      status_[enter] = (status_[enter] == VarStatus::kAtLower)
                           ? VarStatus::kAtUpper
                           : VarStatus::kAtLower;
      continue;
    }

    // Pivot.
    double enter_val = NonbasicValue(enter) + dir * step;
    int old_basic = basic_var_[leave];
    double alpha_leave = dir * work_w_[leave];
    for (int i = 0; i < m_; ++i) {
      if (i == leave) continue;
      xb_[i] -= dir * work_w_[i] * step;
    }
    // The leaving variable lands exactly on the bound it hit.
    VarStatus leaving_status;
    if (alpha_leave > 0.0) {
      leaving_status = VarStatus::kAtLower;
    } else {
      leaving_status = VarStatus::kAtUpper;
    }
    if (!std::isfinite(lo_[old_basic]) && leaving_status == VarStatus::kAtLower) {
      leaving_status = VarStatus::kFreeZero;  // defensive; cannot happen
    }
    status_[old_basic] = leaving_status;
    basic_pos_[old_basic] = -1;
    basic_var_[leave] = enter;
    basic_pos_[enter] = leave;
    status_[enter] = VarStatus::kBasic;
    xb_[leave] = enter_val;

    // Product-form update of B^-1: eliminate w in all rows but `leave`.
    double pivot = work_w_[leave];
    double* prow = &binv_[static_cast<size_t>(leave) * m_];
    double inv_pivot = 1.0 / pivot;
    for (int k = 0; k < m_; ++k) prow[k] *= inv_pivot;
    for (int i = 0; i < m_; ++i) {
      if (i == leave) continue;
      double f = work_w_[i];
      if (f == 0.0) continue;
      double* row = &binv_[static_cast<size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) row[k] -= f * prow[k];
    }
    ++pivots_since_refactor_;
  }
}

bool Simplex::DriveOutArtificials() {
  for (int r = 0; r < m_; ++r) {
    int bv = basic_var_[r];
    if (bv < n_price_) continue;  // not artificial
    // Row r of B^-1 gives alpha_j = (B^-1 A_j)_r for any column j.
    const double* brow = &binv_[static_cast<size_t>(r) * m_];
    int pivot_col = -1;
    for (int j = 0; j < n_price_ && pivot_col < 0; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      if (lo_[j] == up_[j]) continue;
      ColRange col = Col(j);
      double alpha = 0.0;
      for (int t = 0; t < col.size; ++t) alpha += brow[col.rows[t]] * col.vals[t];
      if (std::abs(alpha) > 1e-7) pivot_col = j;
    }
    if (pivot_col < 0) {
      // Redundant row: keep the artificial basic, pinned to zero.
      lo_[bv] = up_[bv] = 0.0;
      continue;
    }
    // Degenerate pivot (step 0): swap the artificial for pivot_col.
    std::fill(work_w_.begin(), work_w_.end(), 0.0);
    ColRange col = Col(pivot_col);
    for (int t = 0; t < col.size; ++t) {
      double a = col.vals[t];
      int rr = col.rows[t];
      for (int i = 0; i < m_; ++i) {
        work_w_[i] += binv_[static_cast<size_t>(i) * m_ + rr] * a;
      }
    }
    double pivot = work_w_[r];
    if (std::abs(pivot) < 1e-9) {
      lo_[bv] = up_[bv] = 0.0;
      continue;
    }
    double entering_value = NonbasicValue(pivot_col);
    status_[pivot_col] = VarStatus::kBasic;
    status_[bv] = VarStatus::kAtLower;  // excluded from pricing anyway
    basic_pos_[bv] = -1;
    basic_var_[r] = pivot_col;
    basic_pos_[pivot_col] = r;
    xb_[r] = entering_value;

    double* prow = &binv_[static_cast<size_t>(r) * m_];
    double inv_pivot = 1.0 / pivot;
    for (int k = 0; k < m_; ++k) prow[k] *= inv_pivot;
    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      double f = work_w_[i];
      if (f == 0.0) continue;
      double* row = &binv_[static_cast<size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) row[k] -= f * prow[k];
    }
    ++pivots_since_refactor_;
    RecomputeBasicValues();
  }
  return true;
}

LpSolution Simplex::SolveWithoutConstraints() {
  // Pure bound optimization: each variable independently at its best bound.
  LpSolution out;
  out.primal.resize(ns_);
  double obj = 0.0;
  for (int j = 0; j < ns_; ++j) {
    const Variable& v = model_.variable(j);
    double c = maximize_ ? -v.objective : v.objective;
    double x;
    if (c > 0.0) {
      x = v.lower;
    } else if (c < 0.0) {
      x = v.upper;
    } else {
      x = std::isfinite(v.lower) ? v.lower : (std::isfinite(v.upper) ? v.upper : 0.0);
    }
    if (!std::isfinite(x)) {
      out.status = SolveStatus::kUnbounded;
      return out;
    }
    out.primal[j] = x;
    obj += v.objective * x;
  }
  out.status = SolveStatus::kOptimal;
  out.objective = obj;
  return out;
}

LpSolution Simplex::ExtractSolution(SolveStatus status) {
  LpSolution out;
  out.status = status;
  out.iterations = iterations_;
  out.phase1_iterations = phase1_iterations_;
  if (status != SolveStatus::kOptimal) return out;

  out.primal.assign(ns_, 0.0);
  for (int j = 0; j < ns_; ++j) {
    out.primal[j] =
        status_[j] == VarStatus::kBasic ? xb_[basic_pos_[j]] : NonbasicValue(j);
  }
  out.objective = model_.ObjectiveValue(out.primal);

  // Duals: y = (B^-1)' c_B with real costs, flipped back to the user sense.
  out.dual.assign(m_, 0.0);
  for (int r = 0; r < m_; ++r) {
    double cb = cost_[basic_var_[r]];
    if (cb == 0.0) continue;
    const double* row = &binv_[static_cast<size_t>(r) * m_];
    for (int i = 0; i < m_; ++i) out.dual[i] += cb * row[i];
  }
  if (maximize_) {
    for (double& y : out.dual) y = -y;
  }
  return out;
}

LpSolution Simplex::Solve() {
  Status valid = model_.Validate();
  if (!valid.ok()) {
    LpSolution out;
    out.status = SolveStatus::kNumericalFailure;
    return out;
  }
  if (model_.num_constraints() == 0) {
    ns_ = model_.num_variables();
    maximize_ = model_.sense() == ObjectiveSense::kMaximize;
    return SolveWithoutConstraints();
  }

  BuildProblem();
  BuildInitialBasis();
  max_iterations_ = opts_.max_iterations > 0
                        ? opts_.max_iterations
                        : 200 + 40 * (m_ + n_total_);

  bool need_phase1 = n_total_ > n_price_;
  if (need_phase1) {
    IterateResult r1 = Iterate(/*phase=*/1);
    if (r1 == IterateResult::kIterLimit) {
      return ExtractSolution(SolveStatus::kIterationLimit);
    }
    if (r1 == IterateResult::kNumFail) {
      return ExtractSolution(SolveStatus::kNumericalFailure);
    }
    // Phase-1 objective = total infeasibility.
    double infeas = 0.0;
    for (int r = 0; r < m_; ++r) {
      if (basic_var_[r] >= n_price_) infeas += std::max(0.0, xb_[r]);
    }
    if (infeas > 1e-6) {
      return ExtractSolution(SolveStatus::kInfeasible);
    }
    if (!DriveOutArtificials()) {
      return ExtractSolution(SolveStatus::kNumericalFailure);
    }
  }

  IterateResult r2 = Iterate(/*phase=*/2);
  switch (r2) {
    case IterateResult::kOptimal:
      break;
    case IterateResult::kUnbounded:
      return ExtractSolution(SolveStatus::kUnbounded);
    case IterateResult::kIterLimit:
      return ExtractSolution(SolveStatus::kIterationLimit);
    case IterateResult::kNumFail:
      return ExtractSolution(SolveStatus::kNumericalFailure);
  }

  // Final accuracy polish + sanity check.
  if (!Refactorize()) return ExtractSolution(SolveStatus::kNumericalFailure);
  RecomputeBasicValues();
  LpSolution out = ExtractSolution(SolveStatus::kOptimal);
  double infeas = model_.MaxInfeasibility(out.primal);
  if (infeas > 1e-5) {
    out.status = SolveStatus::kNumericalFailure;
  }
  return out;
}

}  // namespace

LpSolution SolveLp(const LpModel& model, const SimplexOptions& options) {
  Simplex solver(model, options);
  return solver.Solve();
}

}  // namespace qp::lp
