#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace qp::lp {

const char* SolveStatusToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "Optimal";
    case SolveStatus::kInfeasible:
      return "Infeasible";
    case SolveStatus::kUnbounded:
      return "Unbounded";
    case SolveStatus::kIterationLimit:
      return "IterationLimit";
    case SolveStatus::kNumericalFailure:
      return "NumericalFailure";
  }
  return "Unknown";
}

namespace {

/// Entries this small are dropped when an eta vector is stored; they are
/// numerical noise and only add fill-in.
constexpr double kEtaDropTol = 1e-13;

// Product-form representation of the basis inverse: B^-1 = E_k ... E_1
// where each eta E pivots one row. A refactorization seeds the file with
// one eta per basis column (sparsest column first, partial pivoting on the
// transformed column); every simplex pivot appends one more.
class EtaFile {
 public:
  void Reset() {
    etas_.clear();
    rows_.clear();
    vals_.clear();
  }

  /// Appends the eta that maps the transformed column `w` (= current
  /// B^-1 A_j) to the unit vector of `pivot_row`. |w[pivot_row]| must
  /// exceed the caller's pivot tolerance.
  void Append(const std::vector<double>& w, int pivot_row) {
    Eta e;
    e.pivot_row = pivot_row;
    e.pivot = w[pivot_row];
    e.begin = static_cast<int>(rows_.size());
    const int m = static_cast<int>(w.size());
    for (int i = 0; i < m; ++i) {
      if (i == pivot_row) continue;
      double v = w[i];
      if (std::abs(v) <= kEtaDropTol) continue;
      rows_.push_back(i);
      vals_.push_back(v);
    }
    e.end = static_cast<int>(rows_.size());
    etas_.push_back(e);
  }

  /// w <- B^-1 w (apply etas oldest first).
  void Ftran(std::vector<double>& w) const {
    for (const Eta& e : etas_) {
      double p = w[e.pivot_row];
      if (p == 0.0) continue;  // sparse shortcut: eta leaves w unchanged
      p /= e.pivot;
      w[e.pivot_row] = p;
      for (int t = e.begin; t < e.end; ++t) w[rows_[t]] -= vals_[t] * p;
    }
  }

  /// y <- B^-T y (apply transposed etas newest first).
  void Btran(std::vector<double>& y) const {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      const Eta& e = *it;
      double acc = y[e.pivot_row];
      for (int t = e.begin; t < e.end; ++t) acc -= vals_[t] * y[rows_[t]];
      y[e.pivot_row] = acc / e.pivot;
    }
  }

  /// Total stored nonzeros — the per-FTRAN/BTRAN cost driver.
  int total_nnz() const { return static_cast<int>(rows_.size()); }

 private:
  struct Eta {
    int pivot_row;
    double pivot;
    int begin;
    int end;
  };
  std::vector<Eta> etas_;
  std::vector<int> rows_;
  std::vector<double> vals_;
};

// Internal solver state for one Solve/ResolveFrom call. Computational form:
//   min c'x   s.t.  Ax = b,  lo <= x <= up
// Columns: [0, ns) structural, [ns, ns+m) slacks, [ns+m, ...) artificials.
class SimplexImpl {
 public:
  SimplexImpl(const LpModel& model, const SimplexOptions& options)
      : model_(model), opts_(options) {}

  LpSolution Solve();
  LpSolution ResolveFrom(const Basis& warm);

 private:
  enum class IterateResult { kOptimal, kUnbounded, kIterLimit, kNumFail };
  enum class DualResult { kPrimalFeasible, kInfeasible, kIterLimit, kNumFail };

  void BuildProblem();
  void BuildInitialBasis();
  bool InstallWarmBasis(const Basis& warm);
  BasisStatus DefaultNonbasicStatus(int j) const;
  int AddArtificial(int row, double sign);
  bool Refactorize();
  void RecomputeBasicValues();
  void FtranColumn(int j, std::vector<double>& w);
  void BtranRow(int r, std::vector<double>& rho);
  void ComputeDuals(const std::vector<double>& cost, std::vector<double>& y);
  double ReducedCost(int j, const std::vector<double>& y) const;
  void AccumulateTransposed(const std::vector<double>& y);
  bool HasPrimalInfeasibility() const;
  bool IsDualFeasible();
  IterateResult Iterate(int phase);
  DualResult DualIterate();
  bool RepairPrimal();
  bool DriveOutArtificials();
  LpSolution RunPhases();
  LpSolution FinishFromFeasibleBasis();
  LpSolution SolveCold();
  LpSolution ExtractSolution(SolveStatus status);
  LpSolution SolveWithoutConstraints();
  void SetIterationBudget();

  double NonbasicValue(int j) const {
    switch (status_[j]) {
      case BasisStatus::kAtLower:
        return lo_[j];
      case BasisStatus::kAtUpper:
        return up_[j];
      case BasisStatus::kFreeZero:
        return 0.0;
      case BasisStatus::kBasic:
        break;
    }
    assert(false);
    return 0.0;
  }

  // Sparse column access.
  struct ColRange {
    const int* rows;
    const double* vals;
    int size;
  };
  ColRange Col(int j) const {
    int begin = col_start_[j];
    int end = col_start_[j + 1];
    return {col_row_.data() + begin, col_val_.data() + begin, end - begin};
  }

  const LpModel& model_;
  SimplexOptions opts_;

  int m_ = 0;        // rows
  int ns_ = 0;       // structural columns
  int n_price_ = 0;  // columns eligible for pricing (= ns_ + m_)
  int n_total_ = 0;  // including artificials

  // CSC matrix over all columns.
  std::vector<int> col_start_;
  std::vector<int> col_row_;
  std::vector<double> col_val_;

  std::vector<double> lo_, up_;
  std::vector<double> cost_;    // phase-2 (real, internal-min) costs
  std::vector<double> b_;
  std::vector<BasisStatus> status_;

  std::vector<int> basic_var_;  // row -> column index
  std::vector<int> basic_pos_;  // column -> row index or -1
  std::vector<double> xb_;      // basic values, aligned with basic_var_
  EtaFile etas_;                // sparse representation of B^-1

  std::vector<double> work_y_;    // BTRAN result (duals)
  std::vector<double> work_w_;    // FTRAN result (transformed column)
  std::vector<double> work_rho_;  // BTRAN result (one row of B^-1)
  std::vector<double> work_acc_;  // A^T y accumulator for pricing

  bool maximize_ = false;
  bool warm_dims_match_ = false;  // warm basis covered every row and column
  bool refactor_substituted_ = false;  // last Refactorize repaired the basis
  int iterations_ = 0;
  int phase1_iterations_ = 0;
  int pivots_since_refactor_ = 0;
  int max_iterations_ = 0;
  int refactor_nnz_ = 0;  // eta nnz right after the last refactorization

  // Refactorize on a pivot-count schedule, or early when update etas have
  // filled in enough that FTRAN/BTRAN cost more than a rebuild would
  // (dense instances produce near-dense update etas).
  bool NeedsRefactor() const {
    if (pivots_since_refactor_ >= opts_.refactor_interval) return true;
    return etas_.total_nnz() > 3 * (refactor_nnz_ + m_);
  }
};

void SimplexImpl::BuildProblem() {
  m_ = model_.num_constraints();
  ns_ = model_.num_variables();
  n_price_ = ns_ + m_;
  maximize_ = model_.sense() == ObjectiveSense::kMaximize;

  // Row-major -> CSC for structural columns.
  std::vector<int> col_counts(ns_, 0);
  for (int i = 0; i < m_; ++i) {
    for (const auto& [var, coeff] : model_.constraint(i).terms) {
      (void)coeff;
      col_counts[var]++;
    }
  }
  col_start_.assign(n_price_ + 1, 0);
  for (int j = 0; j < ns_; ++j) col_start_[j + 1] = col_start_[j] + col_counts[j];
  for (int j = ns_; j < n_price_; ++j) col_start_[j + 1] = col_start_[j] + 1;
  col_row_.resize(col_start_[n_price_]);
  col_val_.resize(col_start_[n_price_]);
  std::vector<int> fill(ns_, 0);
  for (int i = 0; i < m_; ++i) {
    for (const auto& [var, coeff] : model_.constraint(i).terms) {
      int pos = col_start_[var] + fill[var]++;
      col_row_[pos] = i;
      col_val_[pos] = coeff;
    }
  }
  // Slack columns.
  for (int i = 0; i < m_; ++i) {
    int j = ns_ + i;
    col_row_[col_start_[j]] = i;
    col_val_[col_start_[j]] = 1.0;
  }

  lo_.resize(n_price_);
  up_.resize(n_price_);
  cost_.assign(n_price_, 0.0);
  b_.resize(m_);
  for (int j = 0; j < ns_; ++j) {
    const Variable& v = model_.variable(j);
    lo_[j] = v.lower;
    up_[j] = v.upper;
    cost_[j] = maximize_ ? -v.objective : v.objective;
  }
  for (int i = 0; i < m_; ++i) {
    const Constraint& c = model_.constraint(i);
    b_[i] = c.rhs;
    int j = ns_ + i;
    switch (c.sense) {
      case ConstraintSense::kLe:
        lo_[j] = 0.0;
        up_[j] = kInf;
        break;
      case ConstraintSense::kGe:
        lo_[j] = -kInf;
        up_[j] = 0.0;
        break;
      case ConstraintSense::kEq:
        lo_[j] = 0.0;
        up_[j] = 0.0;
        break;
    }
  }
  n_total_ = n_price_;
  work_acc_.assign(ns_, 0.0);
}

BasisStatus SimplexImpl::DefaultNonbasicStatus(int j) const {
  if (std::isfinite(lo_[j])) return BasisStatus::kAtLower;
  if (std::isfinite(up_[j])) return BasisStatus::kAtUpper;
  return BasisStatus::kFreeZero;
}

int SimplexImpl::AddArtificial(int row, double sign) {
  int j = n_total_++;
  col_row_.push_back(row);
  col_val_.push_back(sign);
  col_start_.push_back(static_cast<int>(col_row_.size()));
  lo_.push_back(0.0);
  up_.push_back(kInf);
  cost_.push_back(0.0);  // phase-2 cost; phase 1 uses its own costs
  status_.push_back(BasisStatus::kBasic);
  return j;
}

void SimplexImpl::BuildInitialBasis() {
  status_.assign(n_price_, BasisStatus::kAtLower);
  for (int j = 0; j < n_price_; ++j) status_[j] = DefaultNonbasicStatus(j);

  // Residual with all structural columns at their start values.
  std::vector<double> residual = b_;
  for (int j = 0; j < ns_; ++j) {
    double xj = NonbasicValue(j);
    if (xj == 0.0) continue;
    ColRange col = Col(j);
    for (int t = 0; t < col.size; ++t) residual[col.rows[t]] -= col.vals[t] * xj;
  }

  basic_var_.assign(m_, -1);
  for (int i = 0; i < m_; ++i) {
    int slack = ns_ + i;
    double sval = residual[i];
    if (sval >= lo_[slack] - opts_.feasibility_tol &&
        sval <= up_[slack] + opts_.feasibility_tol) {
      // Slack basic and feasible.
      basic_var_[i] = slack;
      status_[slack] = BasisStatus::kBasic;
    } else {
      // Slack pinned to its nearest bound; artificial covers the rest.
      double pin = (sval < lo_[slack]) ? lo_[slack] : up_[slack];
      status_[slack] = (pin == lo_[slack] && std::isfinite(lo_[slack]))
                           ? BasisStatus::kAtLower
                           : BasisStatus::kAtUpper;
      if (!std::isfinite(pin)) pin = 0.0;  // Ge rows pin at upper bound 0.
      double rem = sval - pin;
      basic_var_[i] = AddArtificial(i, rem >= 0.0 ? 1.0 : -1.0);
    }
  }

  basic_pos_.assign(n_total_, -1);
  for (int i = 0; i < m_; ++i) basic_pos_[basic_var_[i]] = i;
  xb_.assign(m_, 0.0);
}

bool SimplexImpl::Refactorize() {
  // Product-form refactorization: FTRAN each basis column through the etas
  // built so far, pivot on the largest remaining row. Sparsest columns go
  // first (slacks and artificials are unit vectors and produce trivial
  // etas), which keeps fill-in low on the slack-heavy bases the pricing
  // LPs produce. Ordering and pivoting are deterministic.
  //
  // A column with no usable pivot (a dependent set — warm-start repairs
  // and truncated warm bases produce them routinely) is not an error: the
  // column is demoted to its nonbasic default and the uncovered rows are
  // completed afterwards with their slack, or an artificial when the
  // slack is taken. The completion is nonsingular in exact arithmetic
  // (unit columns on unpivoted rows extend any independent set), so false
  // is returned only on genuine numerical breakdown.
  etas_.Reset();
  std::vector<std::pair<int, int>> order;  // (nnz, column)
  order.reserve(m_);
  for (int i = 0; i < m_; ++i) {
    int c = basic_var_[i];
    order.emplace_back(col_start_[c + 1] - col_start_[c], c);
  }
  std::sort(order.begin(), order.end());

  std::vector<uint8_t> pivoted(m_, 0);
  std::vector<int> new_basic(m_, -1);
  std::vector<double>& w = work_w_;
  auto try_pivot = [&](int c) {
    w.assign(m_, 0.0);
    ColRange col = Col(c);
    for (int t = 0; t < col.size; ++t) w[col.rows[t]] = col.vals[t];
    etas_.Ftran(w);
    int pivot_row = -1;
    double best = opts_.pivot_tol;
    for (int i = 0; i < m_; ++i) {
      if (pivoted[i]) continue;
      double v = std::abs(w[i]);
      if (v > best) {
        best = v;
        pivot_row = i;
      }
    }
    if (pivot_row < 0) return false;
    etas_.Append(w, pivot_row);
    pivoted[pivot_row] = 1;
    new_basic[pivot_row] = c;
    return true;
  };

  refactor_substituted_ = false;
  for (const auto& [nnz, c] : order) {
    (void)nnz;
    if (!try_pivot(c)) {
      status_[c] = c < n_price_ ? DefaultNonbasicStatus(c)
                                : BasisStatus::kAtLower;  // artificial at 0
      refactor_substituted_ = true;
    }
  }
  for (int i = 0; i < m_; ++i) {
    if (pivoted[i]) continue;
    int slack = ns_ + i;
    bool slack_free = true;
    for (int r = 0; r < m_; ++r) {
      if (new_basic[r] == slack) {
        slack_free = false;
        break;
      }
    }
    if (slack_free && try_pivot(slack)) {
      status_[slack] = BasisStatus::kBasic;
      continue;
    }
    int art = AddArtificial(i, 1.0);
    if (!try_pivot(art)) return false;  // numerical breakdown
  }

  // The factorization chose its own row assignment; re-align the basis
  // bookkeeping with it. Callers must RecomputeBasicValues() afterwards.
  basic_var_ = std::move(new_basic);
  basic_pos_.assign(n_total_, -1);
  for (int i = 0; i < m_; ++i) basic_pos_[basic_var_[i]] = i;
  pivots_since_refactor_ = 0;
  refactor_nnz_ = etas_.total_nnz();
  return true;
}

void SimplexImpl::RecomputeBasicValues() {
  std::vector<double> residual = b_;
  for (int j = 0; j < n_total_; ++j) {
    if (status_[j] == BasisStatus::kBasic) continue;
    double xj = NonbasicValue(j);
    if (xj == 0.0) continue;
    ColRange col = Col(j);
    for (int t = 0; t < col.size; ++t) residual[col.rows[t]] -= col.vals[t] * xj;
  }
  etas_.Ftran(residual);
  xb_ = std::move(residual);
}

void SimplexImpl::FtranColumn(int j, std::vector<double>& w) {
  w.assign(m_, 0.0);
  ColRange col = Col(j);
  for (int t = 0; t < col.size; ++t) w[col.rows[t]] = col.vals[t];
  etas_.Ftran(w);
}

void SimplexImpl::BtranRow(int r, std::vector<double>& rho) {
  rho.assign(m_, 0.0);
  rho[r] = 1.0;
  etas_.Btran(rho);
}

void SimplexImpl::ComputeDuals(const std::vector<double>& cost,
                               std::vector<double>& y) {
  y.assign(m_, 0.0);
  for (int r = 0; r < m_; ++r) y[r] = cost[basic_var_[r]];
  etas_.Btran(y);
}

double SimplexImpl::ReducedCost(int j, const std::vector<double>& y) const {
  double d = cost_[j];
  ColRange col = Col(j);
  for (int t = 0; t < col.size; ++t) d -= y[col.rows[t]] * col.vals[t];
  return d;
}

// work_acc_ <- A_structural^T y, accumulated row-major over the rows where
// y is nonzero. Duals are sparse on the pricing LPs (few tight rows), so
// this makes a full pricing pass cost O(nnz of tight rows) instead of
// O(nnz of the whole matrix); after it, the reduced cost of structural j
// is cost[j] - work_acc_[j] and of slack i is cost[ns+i] - y[i].
void SimplexImpl::AccumulateTransposed(const std::vector<double>& y) {
  std::fill(work_acc_.begin(), work_acc_.end(), 0.0);
  for (int i = 0; i < m_; ++i) {
    double yi = y[i];
    if (yi == 0.0) continue;
    for (const auto& [var, coeff] : model_.constraint(i).terms) {
      work_acc_[var] += yi * coeff;
    }
  }
}

bool SimplexImpl::HasPrimalInfeasibility() const {
  for (int i = 0; i < m_; ++i) {
    int bv = basic_var_[i];
    if (xb_[i] < lo_[bv] - opts_.feasibility_tol) return true;
    if (xb_[i] > up_[bv] + opts_.feasibility_tol) return true;
  }
  return false;
}

bool SimplexImpl::IsDualFeasible() {
  ComputeDuals(cost_, work_y_);
  AccumulateTransposed(work_y_);
  // A slightly loose tolerance: a warm basis carries its previous solve's
  // rounding, and the dual-simplex path re-verifies optimality at the end.
  const double tol = std::max(opts_.optimality_tol * 100.0, 1e-7);
  for (int j = 0; j < n_price_; ++j) {
    if (status_[j] == BasisStatus::kBasic) continue;
    if (lo_[j] == up_[j]) continue;  // fixed
    double d = cost_[j] - (j < ns_ ? work_acc_[j] : work_y_[j - ns_]);
    switch (status_[j]) {
      case BasisStatus::kAtLower:
        if (d < -tol) return false;
        break;
      case BasisStatus::kAtUpper:
        if (d > tol) return false;
        break;
      case BasisStatus::kFreeZero:
        if (std::abs(d) > tol) return false;
        break;
      case BasisStatus::kBasic:
        break;
    }
  }
  return true;
}

SimplexImpl::IterateResult SimplexImpl::Iterate(int phase) {
  const double kBigStep = kInf;
  std::vector<double> phase_cost;
  const std::vector<double>* cost = &cost_;
  if (phase == 1) {
    phase_cost.assign(n_total_, 0.0);
    for (int j = n_price_; j < n_total_; ++j) phase_cost[j] = 1.0;
    cost = &phase_cost;
  }

  int iters_no_progress = 0;
  bool bland = false;

  while (true) {
    if (iterations_ >= max_iterations_) return IterateResult::kIterLimit;
    if (NeedsRefactor()) {
      if (!Refactorize()) return IterateResult::kNumFail;
      RecomputeBasicValues();
      if (phase == 1 && static_cast<int>(phase_cost.size()) < n_total_) {
        // Refactorization may have repaired the basis with fresh
        // artificials; they carry phase-1 cost like any other.
        phase_cost.resize(static_cast<size_t>(n_total_), 1.0);
      }
    }

    // BTRAN: y = B^-T c_B.
    ComputeDuals(*cost, work_y_);

    // Pricing (Dantzig, or Bland when stalled).
    AccumulateTransposed(work_y_);
    int enter = -1;
    int dir = 0;
    double best_score = opts_.optimality_tol;
    for (int j = 0; j < n_price_; ++j) {
      BasisStatus st = status_[j];
      if (st == BasisStatus::kBasic) continue;
      if (lo_[j] == up_[j]) continue;  // fixed
      double dj = (*cost)[j] - (j < ns_ ? work_acc_[j] : work_y_[j - ns_]);
      int candidate_dir = 0;
      if (st == BasisStatus::kAtLower && dj < -opts_.optimality_tol) {
        candidate_dir = +1;
      } else if (st == BasisStatus::kAtUpper && dj > opts_.optimality_tol) {
        candidate_dir = -1;
      } else if (st == BasisStatus::kFreeZero &&
                 std::abs(dj) > opts_.optimality_tol) {
        candidate_dir = dj < 0 ? +1 : -1;
      }
      if (candidate_dir == 0) continue;
      if (bland) {
        enter = j;
        dir = candidate_dir;
        break;
      }
      double score = std::abs(dj);
      if (score > best_score) {
        best_score = score;
        enter = j;
        dir = candidate_dir;
      }
    }
    if (enter < 0) return IterateResult::kOptimal;

    // FTRAN: w = B^-1 A_enter.
    FtranColumn(enter, work_w_);

    // Ratio test.
    double t_limit = kBigStep;
    if (std::isfinite(lo_[enter]) && std::isfinite(up_[enter])) {
      t_limit = up_[enter] - lo_[enter];  // bound flip distance
    }
    int leave = -1;
    double leave_alpha = 0.0;
    for (int i = 0; i < m_; ++i) {
      double alpha = dir * work_w_[i];
      if (std::abs(alpha) <= opts_.pivot_tol) continue;
      int bv = basic_var_[i];
      double lim;
      if (alpha > 0.0) {
        if (!std::isfinite(lo_[bv])) continue;
        lim = (xb_[i] - lo_[bv]) / alpha;
      } else {
        if (!std::isfinite(up_[bv])) continue;
        lim = (up_[bv] - xb_[i]) / (-alpha);
      }
      if (lim < 0.0) lim = 0.0;  // tolerate slight infeasibility
      const double tie_tol = 1e-10;
      if (lim < t_limit - tie_tol) {
        t_limit = lim;
        leave = i;
        leave_alpha = alpha;
      } else if (lim < t_limit + tie_tol) {
        if (leave < 0) {
          // Tie with the entering variable's bound-flip distance: prefer a
          // real pivot. Bound flips leave every constraint-row slack basic,
          // which yields all-zero dual prices on degenerate LPs (e.g. the
          // CIP welfare LP); a pivot produces an equally optimal vertex
          // with informative duals.
          t_limit = std::min(t_limit, lim);
          leave = i;
          leave_alpha = alpha;
        } else {
          // Tie among rows: prefer the larger pivot magnitude for
          // stability, or the smallest basic variable index under Bland.
          bool take = bland ? basic_var_[i] < basic_var_[leave]
                            : std::abs(alpha) > std::abs(leave_alpha);
          if (take) {
            t_limit = std::min(t_limit, lim);
            leave = i;
            leave_alpha = alpha;
          }
        }
      }
    }

    if (!std::isfinite(t_limit)) {
      return phase == 1 ? IterateResult::kNumFail : IterateResult::kUnbounded;
    }

    ++iterations_;
    if (phase == 1) ++phase1_iterations_;

    double step = t_limit;
    bool degenerate = step <= 1e-12;
    if (degenerate) {
      ++iters_no_progress;
      if (iters_no_progress >= opts_.stall_threshold) bland = true;
    } else {
      iters_no_progress = 0;
      // Bland's rule is only needed while stalled; drop back to Dantzig.
      bland = false;
    }

    if (leave < 0) {
      // Bound flip: entering variable jumps to its other bound.
      for (int i = 0; i < m_; ++i) xb_[i] -= dir * work_w_[i] * step;
      status_[enter] = (status_[enter] == BasisStatus::kAtLower)
                           ? BasisStatus::kAtUpper
                           : BasisStatus::kAtLower;
      continue;
    }

    // Pivot.
    double enter_val = NonbasicValue(enter) + dir * step;
    int old_basic = basic_var_[leave];
    double alpha_leave = dir * work_w_[leave];
    for (int i = 0; i < m_; ++i) {
      if (i == leave) continue;
      xb_[i] -= dir * work_w_[i] * step;
    }
    // The leaving variable lands exactly on the bound it hit.
    BasisStatus leaving_status;
    if (alpha_leave > 0.0) {
      leaving_status = BasisStatus::kAtLower;
    } else {
      leaving_status = BasisStatus::kAtUpper;
    }
    if (!std::isfinite(lo_[old_basic]) &&
        leaving_status == BasisStatus::kAtLower) {
      leaving_status = BasisStatus::kFreeZero;  // defensive; cannot happen
    }
    status_[old_basic] = leaving_status;
    basic_pos_[old_basic] = -1;
    basic_var_[leave] = enter;
    basic_pos_[enter] = leave;
    status_[enter] = BasisStatus::kBasic;
    xb_[leave] = enter_val;

    // Product-form update of B^-1: append the eta that pivots `leave`.
    etas_.Append(work_w_, leave);
    ++pivots_since_refactor_;
  }
}

SimplexImpl::DualResult SimplexImpl::DualIterate() {
  // Dual simplex: the basis is dual feasible (no improving reduced cost)
  // but some basic values violate their bounds — the situation a warm
  // start lands in after an RHS-only change, e.g. CIP's capacity grid.
  // Each pivot evicts the most violated basic variable to the bound it
  // violates, choosing the entering column by the dual ratio test so
  // reduced costs stay feasible. Terminates primal feasible == optimal.
  int stall = 0;
  int consecutive_flips = 0;
  bool bland = false;
  while (true) {
    if (iterations_ >= max_iterations_) return DualResult::kIterLimit;
    if (NeedsRefactor()) {
      if (!Refactorize()) return DualResult::kNumFail;
      RecomputeBasicValues();
    }

    // Leaving row: the most violated basic variable.
    int r = -1;
    double worst = opts_.feasibility_tol;
    bool above = false;
    for (int i = 0; i < m_; ++i) {
      int bv = basic_var_[i];
      if (std::isfinite(lo_[bv]) && lo_[bv] - xb_[i] > worst) {
        worst = lo_[bv] - xb_[i];
        r = i;
        above = false;
      }
      if (std::isfinite(up_[bv]) && xb_[i] - up_[bv] > worst) {
        worst = xb_[i] - up_[bv];
        r = i;
        above = true;
      }
    }
    if (r < 0) return DualResult::kPrimalFeasible;

    ComputeDuals(cost_, work_y_);
    BtranRow(r, work_rho_);

    // Entering column: dual ratio test over eligible nonbasic columns.
    AccumulateTransposed(work_rho_);
    int enter = -1;
    double best_ratio = kInf;
    double best_alpha = 0.0;
    for (int j = 0; j < n_price_; ++j) {
      if (status_[j] == BasisStatus::kBasic) continue;
      if (lo_[j] == up_[j]) continue;  // fixed
      double alpha = j < ns_ ? work_acc_[j] : work_rho_[j - ns_];
      if (std::abs(alpha) <= opts_.pivot_tol) continue;
      // Moving x_j in its allowed direction must push xb_r toward the
      // violated bound: d(xb_r)/d(x_j) = -alpha.
      bool eligible = false;
      switch (status_[j]) {
        case BasisStatus::kAtLower:  // x_j can only increase
          eligible = above ? alpha > 0.0 : alpha < 0.0;
          break;
        case BasisStatus::kAtUpper:  // x_j can only decrease
          eligible = above ? alpha < 0.0 : alpha > 0.0;
          break;
        case BasisStatus::kFreeZero:
          eligible = true;
          break;
        case BasisStatus::kBasic:
          break;
      }
      if (!eligible) continue;
      if (bland) {  // anti-cycling: first eligible (smallest) index
        enter = j;
        break;
      }
      double ratio = std::abs(ReducedCost(j, work_y_)) / std::abs(alpha);
      const double tie_tol = 1e-12;
      if (ratio < best_ratio - tie_tol ||
          (ratio < best_ratio + tie_tol && std::abs(alpha) > std::abs(best_alpha))) {
        best_ratio = ratio;
        best_alpha = alpha;
        enter = j;
      }
    }
    if (enter < 0) {
      // No column can reduce the violation: the row proves infeasibility.
      return DualResult::kInfeasible;
    }

    FtranColumn(enter, work_w_);
    double alpha_r = work_w_[r];
    if (std::abs(alpha_r) <= opts_.pivot_tol * 1e-2) return DualResult::kNumFail;

    int bv = basic_var_[r];
    double target = above ? up_[bv] : lo_[bv];
    double delta = (xb_[r] - target) / alpha_r;  // signed step of x_enter

    // Boxed entering variable whose full step overshoots its own box:
    // bound-flip it instead of making it basic out of bounds. The flip
    // moves xb_r strictly toward its violated bound, so re-selection
    // makes progress — except on (dual-unbounded) infeasible models,
    // where degenerate flips can ping-pong; the cap hands those to the
    // caller's repair path, whose phase 1 settles feasibility exactly.
    if (std::isfinite(lo_[enter]) && std::isfinite(up_[enter]) &&
        std::abs(delta) > up_[enter] - lo_[enter]) {
      if (++consecutive_flips > m_ + 100) return DualResult::kNumFail;
      double flip = (delta > 0 ? 1.0 : -1.0) * (up_[enter] - lo_[enter]);
      ++iterations_;
      for (int i = 0; i < m_; ++i) xb_[i] -= work_w_[i] * flip;
      status_[enter] = status_[enter] == BasisStatus::kAtLower
                           ? BasisStatus::kAtUpper
                           : BasisStatus::kAtLower;
      continue;
    }
    consecutive_flips = 0;

    ++iterations_;
    if (std::abs(delta) <= 1e-12) {
      if (++stall >= opts_.stall_threshold) bland = true;
    } else {
      stall = 0;
      bland = false;
    }

    for (int i = 0; i < m_; ++i) {
      if (i != r) xb_[i] -= work_w_[i] * delta;
    }
    double enter_val = NonbasicValue(enter) + delta;
    status_[bv] = above ? BasisStatus::kAtUpper : BasisStatus::kAtLower;
    basic_pos_[bv] = -1;
    basic_var_[r] = enter;
    basic_pos_[enter] = r;
    status_[enter] = BasisStatus::kBasic;
    xb_[r] = enter_val;

    etas_.Append(work_w_, r);
    ++pivots_since_refactor_;
  }
}

bool SimplexImpl::DriveOutArtificials() {
  for (int r = 0; r < m_; ++r) {
    int bv = basic_var_[r];
    if (bv < n_price_) continue;  // not artificial
    // rho = B^-T e_r gives alpha_j = (B^-1 A_j)_r for any column j.
    BtranRow(r, work_rho_);
    int pivot_col = -1;
    for (int j = 0; j < n_price_ && pivot_col < 0; ++j) {
      if (status_[j] == BasisStatus::kBasic) continue;
      if (lo_[j] == up_[j]) continue;
      ColRange col = Col(j);
      double alpha = 0.0;
      for (int t = 0; t < col.size; ++t) {
        alpha += work_rho_[col.rows[t]] * col.vals[t];
      }
      if (std::abs(alpha) > 1e-7) pivot_col = j;
    }
    if (pivot_col < 0) {
      // Redundant row: keep the artificial basic, pinned to zero.
      lo_[bv] = up_[bv] = 0.0;
      continue;
    }
    // Degenerate pivot (step 0): swap the artificial for pivot_col.
    FtranColumn(pivot_col, work_w_);
    double pivot = work_w_[r];
    if (std::abs(pivot) < 1e-9) {
      lo_[bv] = up_[bv] = 0.0;
      continue;
    }
    double entering_value = NonbasicValue(pivot_col);
    status_[pivot_col] = BasisStatus::kBasic;
    status_[bv] = BasisStatus::kAtLower;  // excluded from pricing anyway
    basic_pos_[bv] = -1;
    basic_var_[r] = pivot_col;
    basic_pos_[pivot_col] = r;
    xb_[r] = entering_value;

    etas_.Append(work_w_, r);
    ++pivots_since_refactor_;
    RecomputeBasicValues();
  }
  return true;
}

bool SimplexImpl::RepairPrimal() {
  // Localized feasibility repair for a warm basis that is neither primal
  // nor dual feasible (LPIP's nested families: appended rows with smaller
  // RHS). Violated basic variables are pinned to the bound they violate
  // and their rows re-covered by the row's slack — or an artificial when
  // the slack is unavailable — leaving the still-feasible part of the
  // basis untouched. Unit-column swaps only perturb the rows they cover,
  // so this converges in a couple of passes on nested-family LPs.
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool violated = false;
    bool changed = false;
    for (int r = 0; r < m_; ++r) {
      int bv = basic_var_[r];
      double x = xb_[r];
      bool below = std::isfinite(lo_[bv]) && x < lo_[bv] - opts_.feasibility_tol;
      bool above = std::isfinite(up_[bv]) && x > up_[bv] + opts_.feasibility_tol;
      if (!below && !above) continue;
      violated = true;
      if (bv >= n_price_) {
        // Artificial gone negative: flip its column so the same residual
        // is covered with a positive (phase-1 measurable) value.
        col_val_[col_start_[bv]] = -col_val_[col_start_[bv]];
        changed = true;
        continue;
      }
      status_[bv] = below ? BasisStatus::kAtLower : BasisStatus::kAtUpper;
      int slack = ns_ + r;
      if (slack != bv && status_[slack] != BasisStatus::kBasic &&
          lo_[slack] < up_[slack]) {
        status_[slack] = BasisStatus::kBasic;
        basic_var_[r] = slack;
      } else {
        // Sign the artificial by the residual the demoted variable leaves
        // behind (exact for unit columns — the common "own slack went
        // negative" case on appended rows — so it lands feasible without
        // a flip pass).
        double rem = x - NonbasicValue(bv);
        basic_var_[r] = AddArtificial(r, rem >= 0.0 ? 1.0 : -1.0);
      }
      changed = true;
    }
    if (!violated) return true;
    if (!changed) return false;
    basic_pos_.assign(n_total_, -1);
    for (int i = 0; i < m_; ++i) basic_pos_[basic_var_[i]] = i;
    if (!Refactorize()) return false;
    RecomputeBasicValues();
  }
  return !HasPrimalInfeasibility();
}

LpSolution SimplexImpl::SolveWithoutConstraints() {
  // Pure bound optimization: each variable independently at its best bound.
  LpSolution out;
  out.primal.resize(ns_);
  out.basis.variables.resize(ns_, BasisStatus::kAtLower);
  double obj = 0.0;
  for (int j = 0; j < ns_; ++j) {
    const Variable& v = model_.variable(j);
    double c = maximize_ ? -v.objective : v.objective;
    double x;
    if (c > 0.0) {
      x = v.lower;
    } else if (c < 0.0) {
      x = v.upper;
    } else {
      x = std::isfinite(v.lower) ? v.lower : (std::isfinite(v.upper) ? v.upper : 0.0);
    }
    if (!std::isfinite(x)) {
      out.status = SolveStatus::kUnbounded;
      out.basis = Basis{};
      return out;
    }
    out.primal[j] = x;
    out.basis.variables[j] = x == v.lower ? BasisStatus::kAtLower
                             : x == v.upper
                                 ? BasisStatus::kAtUpper
                                 : BasisStatus::kFreeZero;
    obj += v.objective * x;
  }
  out.status = SolveStatus::kOptimal;
  out.objective = obj;
  return out;
}

LpSolution SimplexImpl::ExtractSolution(SolveStatus status) {
  LpSolution out;
  out.status = status;
  out.iterations = iterations_;
  out.phase1_iterations = phase1_iterations_;
  if (status != SolveStatus::kOptimal) return out;

  out.primal.assign(ns_, 0.0);
  for (int j = 0; j < ns_; ++j) {
    out.primal[j] = status_[j] == BasisStatus::kBasic ? xb_[basic_pos_[j]]
                                                      : NonbasicValue(j);
  }
  out.objective = model_.ObjectiveValue(out.primal);

  // Duals: y = B^-T c_B with real costs, flipped back to the user sense.
  ComputeDuals(cost_, work_y_);
  out.dual = work_y_;
  if (maximize_) {
    for (double& y : out.dual) y = -y;
  }

  // Basis snapshot for warm restarts. The row assignment uses the
  // resize-stable encoding (artificial columns export as kNoBasic; a
  // redundant row whose artificial stayed basic resolves to a slack on
  // reinstall).
  out.basis.variables.assign(status_.begin(), status_.begin() + ns_);
  out.basis.slacks.assign(status_.begin() + ns_, status_.begin() + n_price_);
  out.basis.basic_of_row.resize(m_);
  for (int i = 0; i < m_; ++i) {
    int bv = basic_var_[i];
    if (bv < ns_) {
      out.basis.basic_of_row[i] = bv;
    } else if (bv < n_price_) {
      out.basis.basic_of_row[i] = Basis::EncodeSlack(bv - ns_);
    } else {
      out.basis.basic_of_row[i] = Basis::kNoBasic;
    }
  }
  return out;
}

LpSolution SimplexImpl::FinishFromFeasibleBasis() {
  // The polish refactorization may *repair* a drifted near-singular basis
  // (demoting a column), which moves the iterate off the vertex phase 2
  // declared optimal — in that case optimality has to be re-established
  // before extracting, or the repaired point would be mislabeled optimal.
  for (int polish = 0; polish < 4; ++polish) {
    IterateResult r2 = Iterate(/*phase=*/2);
    switch (r2) {
      case IterateResult::kOptimal:
        break;
      case IterateResult::kUnbounded:
        return ExtractSolution(SolveStatus::kUnbounded);
      case IterateResult::kIterLimit:
        return ExtractSolution(SolveStatus::kIterationLimit);
      case IterateResult::kNumFail:
        return ExtractSolution(SolveStatus::kNumericalFailure);
    }

    // Final accuracy polish + sanity check.
    if (!Refactorize()) return ExtractSolution(SolveStatus::kNumericalFailure);
    RecomputeBasicValues();
    if (!refactor_substituted_) {
      LpSolution out = ExtractSolution(SolveStatus::kOptimal);
      double infeas = model_.MaxInfeasibility(out.primal);
      if (infeas > 1e-5) {
        out.status = SolveStatus::kNumericalFailure;
      }
      return out;
    }
  }
  return ExtractSolution(SolveStatus::kNumericalFailure);
}

LpSolution SimplexImpl::RunPhases() {
  bool need_phase1 = n_total_ > n_price_;
  if (need_phase1) {
    IterateResult r1 = Iterate(/*phase=*/1);
    if (r1 == IterateResult::kIterLimit) {
      return ExtractSolution(SolveStatus::kIterationLimit);
    }
    if (r1 == IterateResult::kNumFail) {
      return ExtractSolution(SolveStatus::kNumericalFailure);
    }
    // Phase-1 objective = total infeasibility.
    double infeas = 0.0;
    for (int r = 0; r < m_; ++r) {
      if (basic_var_[r] >= n_price_) infeas += std::max(0.0, xb_[r]);
    }
    if (infeas > 1e-6) {
      return ExtractSolution(SolveStatus::kInfeasible);
    }
    if (!DriveOutArtificials()) {
      return ExtractSolution(SolveStatus::kNumericalFailure);
    }
  }
  return FinishFromFeasibleBasis();
}

void SimplexImpl::SetIterationBudget() {
  max_iterations_ = opts_.max_iterations > 0
                        ? opts_.max_iterations
                        : 200 + 40 * (m_ + n_total_);
}

LpSolution SimplexImpl::SolveCold() {
  BuildInitialBasis();
  SetIterationBudget();
  if (!Refactorize()) return ExtractSolution(SolveStatus::kNumericalFailure);
  RecomputeBasicValues();
  return RunPhases();
}

LpSolution SimplexImpl::Solve() {
  Status valid = model_.Validate();
  if (!valid.ok()) {
    LpSolution out;
    out.status = SolveStatus::kNumericalFailure;
    return out;
  }
  if (model_.num_constraints() == 0) {
    ns_ = model_.num_variables();
    maximize_ = model_.sense() == ObjectiveSense::kMaximize;
    return SolveWithoutConstraints();
  }

  BuildProblem();
  return SolveCold();
}

bool SimplexImpl::InstallWarmBasis(const Basis& warm) {
  // Nonbasic statuses first: warm hints where available (sanitized against
  // the current bounds), cold defaults elsewhere. kBasic flags in the
  // status arrays are ignored here — basic membership comes from the row
  // assignment below, so a variable that lost its basis seat after a model
  // edit degrades to its default bound (for the append-only/truncated
  // pricing LPs that is the feasibility-preserving choice).
  auto sanitize = [&](BasisStatus s, int j) {
    switch (s) {
      case BasisStatus::kBasic:
        break;  // resolved via basic_of_row
      case BasisStatus::kAtLower:
        if (std::isfinite(lo_[j])) return BasisStatus::kAtLower;
        break;
      case BasisStatus::kAtUpper:
        if (std::isfinite(up_[j])) return BasisStatus::kAtUpper;
        break;
      case BasisStatus::kFreeZero:
        if (!std::isfinite(lo_[j]) && !std::isfinite(up_[j])) {
          return BasisStatus::kFreeZero;
        }
        break;
    }
    return DefaultNonbasicStatus(j);
  };
  status_.assign(n_price_, BasisStatus::kAtLower);
  for (int j = 0; j < n_price_; ++j) status_[j] = DefaultNonbasicStatus(j);
  int known_vars = std::min<int>(ns_, static_cast<int>(warm.variables.size()));
  for (int j = 0; j < known_vars; ++j) status_[j] = sanitize(warm.variables[j], j);
  int known_rows = std::min<int>(m_, static_cast<int>(warm.slacks.size()));
  for (int i = 0; i < known_rows; ++i) {
    status_[ns_ + i] = sanitize(warm.slacks[i], ns_ + i);
  }

  // Row assignment: keep each surviving row's basic column where it still
  // exists; appended rows and rows whose basic column vanished take their
  // own slack (block-triangular with the kept part of the basis).
  int known_assign =
      std::min<int>(m_, static_cast<int>(warm.basic_of_row.size()));
  warm_dims_match_ = known_assign == m_ && known_rows == m_ &&
                     static_cast<int>(warm.variables.size()) >= ns_;
  std::vector<uint8_t> taken(n_price_, 0);
  std::vector<int> basics;
  basics.reserve(m_);
  auto take = [&](int col) {
    if (col < 0 || col >= n_price_ || taken[col]) return false;
    taken[col] = 1;
    basics.push_back(col);
    status_[col] = BasisStatus::kBasic;
    return true;
  };
  if (!warm.basic_of_row.empty()) {
    for (int i = 0; i < known_assign; ++i) {
      int32_t code = warm.basic_of_row[i];
      if (code >= 0) {
        if (code < ns_) take(code);
      } else if (code <= Basis::kSlackOfRow) {
        int row = Basis::kSlackOfRow - code;
        if (row < m_) take(ns_ + row);
      }
    }
  } else {
    // Legacy snapshot without a row assignment: trust the status flags.
    for (int j = 0; j < known_vars && static_cast<int>(basics.size()) < m_; ++j) {
      if (warm.variables[j] == BasisStatus::kBasic) take(j);
    }
    for (int i = 0; i < known_rows && static_cast<int>(basics.size()) < m_; ++i) {
      if (warm.slacks[i] == BasisStatus::kBasic) take(ns_ + i);
    }
  }
  for (int i = 0; i < m_ && static_cast<int>(basics.size()) < m_; ++i) {
    take(ns_ + i);
  }
  if (static_cast<int>(basics.size()) != m_) return false;

  basic_var_ = std::move(basics);
  basic_pos_.assign(n_total_, -1);
  for (int i = 0; i < m_; ++i) basic_pos_[basic_var_[i]] = i;
  xb_.assign(m_, 0.0);
  if (!Refactorize()) return false;
  RecomputeBasicValues();
  return true;
}

LpSolution SimplexImpl::ResolveFrom(const Basis& warm) {
  if (warm.empty()) return Solve();
  Status valid = model_.Validate();
  if (!valid.ok()) {
    LpSolution out;
    out.status = SolveStatus::kNumericalFailure;
    return out;
  }
  if (model_.num_constraints() == 0) {
    ns_ = model_.num_variables();
    maximize_ = model_.sense() == ObjectiveSense::kMaximize;
    return SolveWithoutConstraints();
  }

  BuildProblem();
  if (!InstallWarmBasis(warm)) {
    BuildProblem();  // reset arrays the failed install may have touched
    return SolveCold();
  }
  SetIterationBudget();

  if (!HasPrimalInfeasibility()) {
    // Objective-only change (or nothing changed): straight to phase 2.
    return FinishFromFeasibleBasis();
  }

  // The dual path only pays off when the warm basis covered the whole
  // model (RHS-only edits); appended rows/columns imply cost changes that
  // break dual feasibility anyway, so skip the O(nnz) check.
  if (warm_dims_match_ && IsDualFeasible()) {
    // RHS-only change: dual simplex walks back to primal feasibility
    // while keeping optimality conditions intact.
    DualResult dr = DualIterate();
    switch (dr) {
      case DualResult::kPrimalFeasible:
        return FinishFromFeasibleBasis();
      case DualResult::kInfeasible:
        return ExtractSolution(SolveStatus::kInfeasible);
      case DualResult::kIterLimit:
        return ExtractSolution(SolveStatus::kIterationLimit);
      case DualResult::kNumFail:
        break;  // fall through to the repair path
    }
  }

  if (!RepairPrimal()) {
    BuildProblem();  // discard repair artificials; restart cold
    return SolveCold();
  }
  return RunPhases();
}

}  // namespace

Simplex::Simplex(const LpModel& model, const SimplexOptions& options)
    : model_(model), options_(options) {}

LpSolution Simplex::Solve() { return SimplexImpl(model_, options_).Solve(); }

LpSolution Simplex::ResolveFrom(const Basis& warm) {
  return SimplexImpl(model_, options_).ResolveFrom(warm);
}

LpSolution SolveLp(const LpModel& model, const SimplexOptions& options) {
  return SimplexImpl(model, options).Solve();
}

}  // namespace qp::lp
