// Two-phase revised simplex for bounded-variable LPs.
//
// Design notes:
//  * Internal computational form: min c'x  s.t.  Ax = b,  l <= x <= u,
//    with one slack column per row (Le: s in [0,inf), Ge: s in (-inf,0],
//    Eq: s fixed to 0) and artificial columns only for rows whose slack
//    start value is out of bounds.
//  * The basis inverse is kept as an explicit dense matrix updated by
//    product-form (eta) pivots and refactorized from scratch every
//    `refactor_interval` pivots — simple, exact at the scales this repo
//    needs (basis dimension = #constraints, at most a few thousand).
//  * Dantzig pricing with a Bland's-rule fallback after a stall, which
//    guarantees termination on degenerate instances.
//  * Dual values (shadow prices in the *user's* objective sense) are
//    reported for optimal solutions; tests check strong duality and
//    complementary slackness.
#ifndef QP_LP_SIMPLEX_H_
#define QP_LP_SIMPLEX_H_

#include <string>
#include <vector>

#include "lp/lp_model.h"

namespace qp::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

const char* SolveStatusToString(SolveStatus status);

struct SimplexOptions {
  /// Feasibility tolerance (bounds / constraint residuals).
  double feasibility_tol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double optimality_tol = 1e-9;
  /// Pivot element magnitude floor.
  double pivot_tol = 1e-8;
  /// Hard iteration cap; <= 0 means 200 + 40 * (rows + cols).
  int max_iterations = 0;
  /// Refactorize the basis inverse every this many pivots.
  int refactor_interval = 120;
  /// Switch to Bland's anti-cycling rule after this many iterations
  /// without objective progress.
  int stall_threshold = 300;
};

struct LpSolution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  /// Objective in the user's sense (max problems report the max value).
  double objective = 0.0;
  /// One value per model variable (empty unless optimal).
  std::vector<double> primal;
  /// One shadow price per constraint, in the user's sense: for a
  /// maximization problem with a <= constraint the dual is >= 0 and equals
  /// d(objective)/d(rhs). Empty unless optimal.
  std::vector<double> dual;
  int iterations = 0;
  int phase1_iterations = 0;

  bool ok() const { return status == SolveStatus::kOptimal; }
};

/// Solves `model` with the revised simplex method.
LpSolution SolveLp(const LpModel& model, const SimplexOptions& options = {});

}  // namespace qp::lp

#endif  // QP_LP_SIMPLEX_H_
