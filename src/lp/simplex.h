// Two-phase revised simplex for bounded-variable LPs, with a sparse
// eta-file basis representation and warm starts.
//
// Design notes:
//  * Internal computational form: min c'x  s.t.  Ax = b,  l <= x <= u,
//    with one slack column per row (Le: s in [0,inf), Ge: s in (-inf,0],
//    Eq: s fixed to 0) and artificial columns only for rows whose slack
//    start value is out of bounds.
//  * The basis inverse is never formed explicitly. It is represented as a
//    product of sparse eta matrices: a product-form refactorization seeds
//    the file (basis columns processed sparsest-first, partial pivoting),
//    and every simplex pivot appends one more eta. FTRAN/BTRAN apply the
//    file forward / transposed-in-reverse; the file is rebuilt every
//    `refactor_interval` pivots to bound fill-in and drift.
//  * Warm starts: an optimal LpSolution carries its Basis (variable and
//    slack statuses). Simplex::ResolveFrom(basis) reinstalls it on a
//    modified model and picks the cheapest correct path: phase 2 only when
//    the basis is still primal feasible (objective-only changes), a dual
//    simplex reoptimization when it is dual feasible (RHS-only changes,
//    e.g. CIP's capacity grid), and a localized phase 1 that pins only the
//    violated rows otherwise (LPIP's nested threshold families, which
//    append rows and grow objective coefficients).
//  * Dantzig pricing with a Bland's-rule fallback after a stall, which
//    guarantees termination on degenerate instances.
//  * Dual values (shadow prices in the *user's* objective sense) are
//    reported for optimal solutions; tests check strong duality and
//    complementary slackness.
#ifndef QP_LP_SIMPLEX_H_
#define QP_LP_SIMPLEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lp/lp_model.h"

namespace qp::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

const char* SolveStatusToString(SolveStatus status);

struct SimplexOptions {
  /// Feasibility tolerance (bounds / constraint residuals).
  double feasibility_tol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double optimality_tol = 1e-9;
  /// Pivot element magnitude floor.
  double pivot_tol = 1e-8;
  /// Hard iteration cap; <= 0 means 200 + 40 * (rows + cols).
  int max_iterations = 0;
  /// Rebuild the eta file from scratch every this many pivots.
  int refactor_interval = 120;
  /// Switch to Bland's anti-cycling rule after this many iterations
  /// without objective progress.
  int stall_threshold = 300;
};

/// Status of one variable relative to an optimal basis. Nonbasic variables
/// rest on a bound (or at zero when free); basic variables are determined
/// by the constraint system.
enum class BasisStatus : uint8_t { kBasic, kAtLower, kAtUpper, kFreeZero };

/// A simplex basis snapshot: one status per structural variable and one per
/// constraint-row slack, plus the row -> basic-column assignment (the basis
/// header), which lets ResolveFrom keep each surviving row's basic variable
/// when the model is edited. Returned with every optimal solution and
/// accepted by Simplex::ResolveFrom. A basis taken from a model with fewer
/// (or more) rows/columns is a valid warm start for a model that appends or
/// truncates variables and constraints — the prefix convention LPIP's
/// nested threshold families rely on; rows and columns outside the snapshot
/// get cold-start defaults.
struct Basis {
  std::vector<BasisStatus> variables;
  std::vector<BasisStatus> slacks;
  /// Per constraint row: the basic column, encoded so it survives model
  /// resizing — j >= 0 is structural variable j, kNoBasic is unknown (an
  /// artificial was basic), and values <= kSlackOfRow encode the slack of
  /// row (kSlackOfRow - value).
  std::vector<int32_t> basic_of_row;

  static constexpr int32_t kNoBasic = -1;
  static constexpr int32_t kSlackOfRow = -2;
  static int32_t EncodeSlack(int row) { return kSlackOfRow - row; }

  bool empty() const { return variables.empty() && slacks.empty(); }
};

struct LpSolution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  /// Objective in the user's sense (max problems report the max value).
  double objective = 0.0;
  /// One value per model variable (empty unless optimal).
  std::vector<double> primal;
  /// One shadow price per constraint, in the user's sense: for a
  /// maximization problem with a <= constraint the dual is >= 0 and equals
  /// d(objective)/d(rhs). Empty unless optimal.
  std::vector<double> dual;
  /// The optimal basis; feed it to Simplex::ResolveFrom to reoptimize a
  /// modified model without solving from scratch. Empty unless optimal.
  Basis basis;
  int iterations = 0;
  int phase1_iterations = 0;

  bool ok() const { return status == SolveStatus::kOptimal; }
};

/// Reusable solver handle: one model, solved cold or warm.
class Simplex {
 public:
  explicit Simplex(const LpModel& model, const SimplexOptions& options = {});

  /// Cold solve (two-phase, slack starting basis).
  LpSolution Solve();

  /// Warm solve from a previous optimal basis (typically of a closely
  /// related model: new rows/columns appended, objective or RHS edited).
  /// Falls back to a cold solve when the basis cannot be repaired, so the
  /// result status is exactly as trustworthy as Solve()'s.
  LpSolution ResolveFrom(const Basis& warm);

 private:
  const LpModel& model_;
  SimplexOptions options_;
};

/// Solves `model` with the revised simplex method (cold start).
LpSolution SolveLp(const LpModel& model, const SimplexOptions& options = {});

}  // namespace qp::lp

#endif  // QP_LP_SIMPLEX_H_
