// Linear program builder.
//
// The paper's algorithms (LPIP, CIP, the subadditive revenue bound and the
// UBP price-refinement step) all reduce to ordinary LPs that the authors
// solved through CVXPY. This module is the in-repo replacement: a small
// modeling API (this file) plus an exact two-phase revised simplex solver
// (simplex.h) that also produces dual values.
#ifndef QP_LP_LP_MODEL_H_
#define QP_LP_LP_MODEL_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace qp::lp {

/// +infinity bound marker.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class ConstraintSense { kLe, kGe, kEq };
enum class ObjectiveSense { kMaximize, kMinimize };

/// One linear constraint: sum(coeff * var) <sense> rhs.
struct Constraint {
  ConstraintSense sense = ConstraintSense::kLe;
  double rhs = 0.0;
  /// (variable index, coefficient); duplicates are merged by AddConstraint.
  std::vector<std::pair<int, double>> terms;
};

/// A decision variable with box bounds and an objective coefficient.
struct Variable {
  double lower = 0.0;
  double upper = kInf;
  double objective = 0.0;
};

/// In-memory LP: variables with bounds, linear constraints, linear objective.
class LpModel {
 public:
  explicit LpModel(ObjectiveSense sense = ObjectiveSense::kMaximize)
      : sense_(sense) {}

  /// Adds a variable with bounds [lower, upper] (use kInf / -kInf for
  /// unbounded) and the given objective coefficient. Returns its index.
  int AddVariable(double lower, double upper, double objective);

  /// Adds `sum(terms) sense rhs`. Duplicate variable entries are summed.
  /// Returns the constraint index.
  int AddConstraint(ConstraintSense sense, double rhs,
                    std::vector<std::pair<int, double>> terms);

  /// Replaces variable `j`'s objective coefficient. Incremental model
  /// edits like this one pair with Simplex::ResolveFrom: LPIP grows the
  /// coefficients of already-present price variables as the threshold
  /// family expands.
  void SetObjectiveCoefficient(int j, double objective) {
    variables_[j].objective = objective;
  }

  /// Replaces constraint `i`'s right-hand side (CIP re-solves the welfare
  /// LP over a capacity grid where only the RHS moves).
  void SetRhs(int i, double rhs) { constraints_[i].rhs = rhs; }

  /// Drops every variable >= num_variables and constraint >= num_constraints.
  /// Only valid when the surviving constraints reference surviving variables
  /// — the natural case for models grown append-only, which LPIP shrinks
  /// back candidate by candidate while warm-starting the simplex.
  void TruncateTo(int num_variables, int num_constraints) {
    variables_.resize(static_cast<size_t>(num_variables));
    constraints_.resize(static_cast<size_t>(num_constraints));
  }

  ObjectiveSense sense() const { return sense_; }
  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }
  const Variable& variable(int j) const { return variables_[j]; }
  const Constraint& constraint(int i) const { return constraints_[i]; }

  /// Structural validation: bound sanity, term indices in range, finite
  /// coefficients. The solver calls this before solving.
  Status Validate() const;

  /// Objective value of a given point (user sense; no feasibility check).
  double ObjectiveValue(const std::vector<double>& x) const;

  /// Max violation of constraints and bounds at `x` (0 when feasible).
  double MaxInfeasibility(const std::vector<double>& x) const;

 private:
  ObjectiveSense sense_;
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace qp::lp

#endif  // QP_LP_LP_MODEL_H_
